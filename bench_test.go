// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (Section VII). Each bench performs the experiment that
// regenerates the corresponding result and reports its headline values as
// custom metrics; the cmd tools print the full tables and EXPERIMENTS.md
// records paper-vs-measured.
//
// Run everything with:
//
//	go test -bench=. -benchmem
package mnsim

import (
	"fmt"
	"math"
	"testing"

	"mnsim/internal/accuracy"
	"mnsim/internal/arch"
	"mnsim/internal/crossbar"
	"mnsim/internal/custom"
	"mnsim/internal/device"
	"mnsim/internal/dse"
	"mnsim/internal/periph"
	"mnsim/internal/tech"
	"mnsim/internal/validate"
)

// largeBankDesign is the Section VII.C reference design: 45 nm CMOS, 4-bit
// signed weights, 8-bit signals.
func largeBankDesign() Design {
	return Design{
		CrossbarSize:      128,
		WeightPolarity:    2,
		TwoCrossbarSigned: true,
		WeightBits:        4,
		DataBits:          8,
		CMOS:              tech.MustNode(45),
		Wire:              tech.MustInterconnect(45),
		Dev:               device.RRAM(),
		ADC:               periph.ADCVariableSA,
		Neuron:            periph.NeuronSigmoid,
		AreaCoefficient:   arch.DefaultAreaCoefficient,
	}
}

var largeBankLayer = []LayerDims{{Rows: 2048, Cols: 1024, Passes: 1}}

// BenchmarkTableII runs the model-validation experiment: behaviour-level
// estimates of power, energy, latency and accuracy versus the circuit-level
// solver on the paper's 3-layer NN. The reported metrics are the absolute
// relative errors in percent (the paper's Table II keeps all under 10%).
func BenchmarkTableII(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := validate.TableII(validate.TableIIOptions{
			WeightSamples: 4, InputSamples: 12, Size: 64, Seed: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				b.ReportMetric(math.Abs(r.Error())*100, shortMetric(r.Metric)+"_%err")
			}
		}
	}
}

func shortMetric(m string) string {
	switch {
	case len(m) >= 11 && m[:11] == "Computation":
		if m[12] == 'P' {
			return "comp_power"
		}
		return "comp_energy"
	case m[:4] == "Read":
		return "read_power"
	case m[:7] == "Latency":
		return "latency"
	default:
		return "accuracy"
	}
}

// BenchmarkTableIII_Circuit and BenchmarkTableIII_MNSIM time the two
// simulators per crossbar size; the speed-up of Table III is their ratio.
func BenchmarkTableIII_Circuit(b *testing.B) {
	for _, size := range []int{16, 32, 64, 128} {
		b.Run(fmt.Sprintf("size%d", size), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rows, err := validate.TableIII([]int{size}, int64(i))
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.ReportMetric(rows[0].SpeedUp, "speedup_x")
				}
			}
		})
	}
}

func BenchmarkTableIII_MNSIM(b *testing.B) {
	dev := device.RRAM()
	wire := tech.MustInterconnect(45)
	for _, size := range []int{16, 32, 64, 128, 256} {
		b.Run(fmt.Sprintf("size%d", size), func(b *testing.B) {
			p := crossbar.New(size, size, dev, wire)
			for i := 0; i < b.N; i++ {
				_ = p.Area()
				_ = p.ComputePower()
				_ = p.Latency()
				if _, err := accuracy.Eval(p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTableIV explores the large computation bank's full design space
// and reports the four per-target optima (Table IV).
func BenchmarkTableIV(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cands, err := Explore(largeBankDesign(), largeBankLayer, DefaultSpace(),
			ExploreOptions{ErrorLimit: 0.25})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(len(cands)), "designs")
			for _, obj := range Objectives() {
				c := Best(cands, obj)
				if c == nil {
					b.Fatalf("no feasible design for %v", obj)
				}
				b.ReportMetric(float64(c.CrossbarSize), "opt_"+obj.String()+"_size")
			}
		}
	}
}

// BenchmarkTableV reports the error/area/energy trade-off versus crossbar
// size (Table V): the per-size best error rate in percent.
func BenchmarkTableV(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cands, err := Explore(largeBankDesign(), largeBankLayer, Space{
			CrossbarSizes: []int{8, 16, 32, 64, 128, 256},
			Parallelisms:  []int{1},
			WireNodes:     []int{18, 22, 28, 36, 45},
		}, ExploreOptions{ErrorLimit: 1})
		if err != nil {
			b.Fatal(err)
		}
		if i != 0 {
			continue
		}
		for _, size := range []int{8, 64, 256} {
			best := math.Inf(1)
			for _, c := range cands {
				if c.CrossbarSize == size && c.Report.ErrorWorst < best {
					best = c.Report.ErrorWorst
				}
			}
			b.ReportMetric(best*100, fmt.Sprintf("err%%_size%d", size))
		}
	}
}

// BenchmarkTableVI explores the VGG-16 accelerator design space (Table VI).
func BenchmarkTableVI(b *testing.B) {
	layers, err := VGG16().Dims()
	if err != nil {
		b.Fatal(err)
	}
	base := largeBankDesign()
	base.WeightBits = 8
	base.Neuron = periph.NeuronReLU
	space := DefaultSpace()
	space.WireNodes = append(space.WireNodes, 90)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cands, err := Explore(base, layers, space, ExploreOptions{ErrorLimit: 0.5})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			acc := Best(cands, MaxAccuracy)
			b.ReportMetric(float64(acc.CrossbarSize), "opt_acc_size")
			b.ReportMetric(acc.Report.ErrorWorst*100, "opt_acc_err%")
			area := Best(cands, MinArea)
			b.ReportMetric(area.Report.AreaMM2, "opt_area_mm2")
		}
	}
}

// BenchmarkTableVII simulates the PRIME FF-subarray and the ISAAC tile.
func BenchmarkTableVII(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := custom.TableVII()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(rows[0].AreaMM2, "prime_mm2")
			b.ReportMetric(rows[1].AreaMM2, "isaac_mm2")
			b.ReportMetric(rows[1].Latency*1e6, "isaac_us")
		}
	}
}

// BenchmarkFig5 regenerates the error-rate fit experiment: model curves vs
// circuit-level scatter across size and interconnect node, reporting the
// fit RMSE (paper: < 0.01).
func BenchmarkFig5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, err := validate.Fig5([]int{8, 16, 32, 64}, []int{90, 45, 28, 18})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			var sumSq float64
			for _, p := range pts {
				d := p.Model - p.Circuit
				sumSq += d * d
			}
			b.ReportMetric(math.Sqrt(sumSq/float64(len(pts))), "rmse")
		}
	}
}

// BenchmarkFig6 regenerates the layout-calibration experiment: the model
// estimate for the 32×32 1T1R crossbar with its computation-oriented
// decoder at 130 nm versus the measured layout area, and the correction
// coefficient MNSIM folds back into area estimation.
func BenchmarkFig6(b *testing.B) {
	n130 := tech.MustNode(130)
	for i := 0; i < b.N; i++ {
		dec, err := periph.Decoder(n130, 32, true)
		if err != nil {
			b.Fatal(err)
		}
		model, measured, coeff := crossbar.LayoutCalibration(dec.Area)
		if i == 0 {
			b.ReportMetric(model, "model_um2")
			b.ReportMetric(measured, "layout_um2")
			b.ReportMetric(coeff, "coefficient")
		}
	}
}

// BenchmarkFig7 sweeps the computation parallelism degree per crossbar size
// and reports the normalized area span (Fig. 7's observation: the area
// reduction from lowering p is larger for small crossbars).
func BenchmarkFig7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cands, err := Explore(largeBankDesign(), largeBankLayer, Space{
			CrossbarSizes: []int{32, 512},
			Parallelisms:  []int{1, 2, 4, 8, 16, 32, 64, 128, 256, 512},
			WireNodes:     []int{45},
		}, ExploreOptions{ErrorLimit: 1})
		if err != nil {
			b.Fatal(err)
		}
		if i != 0 {
			continue
		}
		for _, size := range []int{32, 512} {
			minA, maxA := math.Inf(1), 0.0
			for _, c := range cands {
				if c.CrossbarSize != size {
					continue
				}
				minA = math.Min(minA, c.Report.AreaMM2)
				maxA = math.Max(maxA, c.Report.AreaMM2)
			}
			b.ReportMetric(minA/maxA, fmt.Sprintf("area_min/max_size%d", size))
		}
	}
}

// BenchmarkFig8 builds the area–latency Pareto front of the parallelism
// sweep (Fig. 8's trade-off with its inflection points).
func BenchmarkFig8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cands, err := Explore(largeBankDesign(), largeBankLayer, Space{
			CrossbarSizes: []int{32, 64, 128, 256},
			Parallelisms:  []int{1, 2, 4, 8, 16, 32, 64, 128, 256},
			WireNodes:     []int{45},
		}, ExploreOptions{ErrorLimit: 1})
		if err != nil {
			b.Fatal(err)
		}
		front := dse.Pareto(cands)
		if i == 0 {
			b.ReportMetric(float64(len(front)), "front_size")
			b.ReportMetric(float64(len(cands)), "designs")
		}
	}
}

// BenchmarkFig9 computes the normalized five-factor radar of the four
// optimal designs for (a) the large bank and (b) VGG-16.
func BenchmarkFig9(b *testing.B) {
	vggLayers, err := VGG16().Dims()
	if err != nil {
		b.Fatal(err)
	}
	vggBase := largeBankDesign()
	vggBase.WeightBits = 8
	vggBase.Neuron = periph.NeuronReLU
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for variant, cfg := range map[string]struct {
			layers []LayerDims
			base   Design
			limit  float64
		}{
			"a": {largeBankLayer, largeBankDesign(), 0.25},
			"b": {vggLayers, vggBase, 0.5},
		} {
			cands, err := Explore(cfg.base, cfg.layers, DefaultSpace(), ExploreOptions{ErrorLimit: cfg.limit})
			if err != nil {
				b.Fatal(err)
			}
			var optima []Candidate
			for _, obj := range Objectives() {
				c := Best(cands, obj)
				if c == nil {
					b.Fatalf("no feasible design for %v", obj)
				}
				optima = append(optima, *c)
			}
			radar := dse.RadarFactors(optima)
			if i == 0 {
				// The spread of the accuracy factor across optima:
				// Fig. 9's observation that single-metric optimization
				// sacrifices the others.
				minAcc := 1.0
				for _, row := range radar {
					minAcc = math.Min(minAcc, row[4])
				}
				b.ReportMetric(minAcc, "min_accuracy_factor_"+variant)
			}
		}
	}
}
