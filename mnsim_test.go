package mnsim

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func testConfig() Config {
	cfg := DefaultConfig()
	cfg.NetworkScale = []LayerShape{{Rows: 256, Cols: 128}, {Rows: 128, Cols: 10}}
	cfg.CMOSTech = 45
	cfg.InterconnectTech = 45
	return cfg
}

func TestSimulateEndToEnd(t *testing.T) {
	rep, err := Simulate(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if rep.AreaMM2 <= 0 || rep.Power <= 0 || rep.EnergyPerSample <= 0 {
		t.Fatalf("report: %+v", rep)
	}
	if rep.ErrorWorst <= 0 || rep.ErrorWorst >= 1 {
		t.Fatalf("error rate: %v", rep.ErrorWorst)
	}
}

func TestSimulateRejectsBadConfig(t *testing.T) {
	cfg := DefaultConfig() // no NetworkScale
	if _, err := Simulate(cfg); err == nil {
		t.Fatal("empty network accepted")
	}
}

func TestLoadConfig(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "acc.cfg")
	src := "Network_Scale = 64x32\nCrossbar_Size = 64\nCMOS_Tech = 45\nInterconnect_Tech = 45\n"
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg, err := LoadConfig(path)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.CrossbarSize != 64 || len(cfg.NetworkScale) != 1 {
		t.Fatalf("config: %+v", cfg)
	}
	if _, err := LoadConfig(filepath.Join(dir, "missing.cfg")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestParseConfigFacade(t *testing.T) {
	cfg, err := ParseConfig(strings.NewReader("Network_Scale = 8x8\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.NetworkScale) != 1 {
		t.Fatalf("config: %+v", cfg)
	}
}

func TestBuildAndEvaluateFacade(t *testing.T) {
	cfg := testConfig()
	d, layers, err := DesignFromConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Build(&d, layers, [2]int(cfg.InterfaceNumber))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := a.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	direct, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep != direct {
		t.Fatalf("Build+Evaluate %+v differs from Simulate %+v", rep, direct)
	}
}

func TestExploreFacade(t *testing.T) {
	cfg := testConfig()
	d, layers, err := DesignFromConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cands, err := Explore(d, layers, Space{
		CrossbarSizes: []int{64, 128},
		Parallelisms:  []int{1, 64},
		WireNodes:     []int{45},
	}, ExploreOptions{ErrorLimit: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != 4 {
		t.Fatalf("got %d candidates", len(cands))
	}
	for _, obj := range Objectives() {
		if Best(cands, obj) == nil {
			t.Fatalf("no best for %v", obj)
		}
	}
}

func TestNetworksFacade(t *testing.T) {
	if got := VGG16().NeuromorphicLayers(); got != 16 {
		t.Errorf("VGG16 layers = %d", got)
	}
	if got := CaffeNet().NeuromorphicLayers(); got != 8 {
		t.Errorf("CaffeNet layers = %d", got)
	}
}

func TestCaseStudiesFacade(t *testing.T) {
	prime, err := SimulatePRIME()
	if err != nil {
		t.Fatal(err)
	}
	isaac, err := SimulateISAAC()
	if err != nil {
		t.Fatal(err)
	}
	if prime.Name != "PRIME" || isaac.Name != "ISAAC" {
		t.Fatalf("case studies: %v / %v", prime.Name, isaac.Name)
	}
}

// A whole-flow consistency property: doubling every layer of the network
// roughly doubles area and energy but leaves the pipeline cycle unchanged
// (same per-bank structure).
func TestSimulateScalesWithDepth(t *testing.T) {
	cfg := testConfig()
	cfg.NetworkScale = []LayerShape{{Rows: 256, Cols: 256}}
	one, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.NetworkScale = []LayerShape{{Rows: 256, Cols: 256}, {Rows: 256, Cols: 256}}
	cfg.NetworkDepth = 0
	two, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ratio := two.EnergyPerSample / one.EnergyPerSample
	if ratio < 1.8 || ratio > 2.2 {
		t.Errorf("energy ratio = %v, want ~2", ratio)
	}
	if math.Abs(two.PipelineCycle-one.PipelineCycle)/one.PipelineCycle > 1e-9 {
		t.Errorf("pipeline cycle changed: %v vs %v", two.PipelineCycle, one.PipelineCycle)
	}
	if two.ErrorWorst <= one.ErrorWorst {
		t.Errorf("deeper network should accumulate more error")
	}
}

func TestDefaultSpaceFacade(t *testing.T) {
	s := DefaultSpace()
	if len(s.CrossbarSizes) == 0 || len(s.Parallelisms) == 0 || len(s.WireNodes) == 0 {
		t.Fatalf("space: %+v", s)
	}
}

func TestDefaultConfigValidatesWithScale(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NetworkScale = []LayerShape{{Rows: 8, Cols: 8}}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
}
