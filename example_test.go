package mnsim_test

import (
	"fmt"
	"strings"

	"mnsim"
)

// ExampleSimulate runs the full software flow on a small configuration.
func ExampleSimulate() {
	cfg := mnsim.DefaultConfig()
	cfg.NetworkScale = []mnsim.LayerShape{{Rows: 128, Cols: 128}, {Rows: 128, Cols: 10}}
	cfg.CMOSTech = 45
	cfg.InterconnectTech = 45
	rep, err := mnsim.Simulate(cfg)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("banks: %d, area positive: %v, error in (0,1): %v\n",
		len(cfg.NetworkScale), rep.AreaMM2 > 0, rep.ErrorWorst > 0 && rep.ErrorWorst < 1)
	// Output: banks: 2, area positive: true, error in (0,1): true
}

// ExampleParseConfig reads the paper's Table I key = value format.
func ExampleParseConfig() {
	cfg, err := mnsim.ParseConfig(strings.NewReader(`
Network_Type  = CNN
Network_Scale = 1152x256
Crossbar_Size = 64
`))
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println(cfg.NetworkType, cfg.CrossbarSize, cfg.NetworkScale[0].Rows)
	// Output: CNN 64 1152
}

// ExampleExplore sweeps a small design space and picks the energy optimum.
func ExampleExplore() {
	cfg := mnsim.DefaultConfig()
	cfg.NetworkScale = []mnsim.LayerShape{{Rows: 512, Cols: 512}}
	cfg.CMOSTech = 45
	d, layers, err := mnsim.DesignFromConfig(cfg)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	cands, err := mnsim.Explore(d, layers, mnsim.Space{
		CrossbarSizes: []int{64, 128},
		Parallelisms:  []int{1, 128},
		WireNodes:     []int{45},
	}, mnsim.ExploreOptions{ErrorLimit: 0.25})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	best := mnsim.Best(cands, mnsim.MinEnergy)
	fmt.Printf("%d candidates, energy-optimal crossbar %d\n", len(cands), best.CrossbarSize)
	// Output: 3 candidates, energy-optimal crossbar 128
}

// ExampleVGG16 inspects the deep-CNN case-study workload.
func ExampleVGG16() {
	net := mnsim.VGG16()
	dims, err := net.Dims()
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("%s: %d banks, conv1 weights %dx%d\n",
		net.Name, len(dims), dims[0].Rows, dims[0].Cols)
	// Output: VGG-16: 16 banks, conv1 weights 27x64
}
