// Package mnsim is a behaviour-level simulation platform for
// memristor-crossbar neuromorphic computing accelerators — a Go
// reproduction of "MNSIM: Simulation Platform for Memristor-based
// Neuromorphic Computing System" (Xia et al., DATE 2016 / IEEE TCAD).
//
// The platform models an accelerator as a three-level hierarchy
// (Accelerator → Computation Bank → Computation Unit), estimates area,
// power, latency and computing accuracy from per-module reference designs,
// explores the design space over crossbar size, read parallelism and
// interconnect technology, and validates its models against a built-in
// circuit-level (SPICE-class) solver.
//
// This package is the public facade: the exported names alias the internal
// implementation packages so downstream users need only import "mnsim".
//
//	cfg, _ := mnsim.LoadConfig("accelerator.cfg")
//	rep, _ := mnsim.Simulate(cfg)
//	fmt.Printf("area %.2f mm², %s/sample\n", rep.AreaMM2, report.Joules(rep.EnergyPerSample))
package mnsim

import (
	"context"
	"io"
	"os"

	"mnsim/internal/arch"
	"mnsim/internal/config"
	"mnsim/internal/custom"
	"mnsim/internal/dse"
	"mnsim/internal/nn"
)

// Core configuration and architecture types (see the internal packages for
// full documentation).
type (
	// Config is the Table I configuration list.
	Config = config.Config
	// LayerShape is one layer's weight-matrix shape in a Config.
	LayerShape = config.LayerShape
	// Design carries the unit-level design parameters.
	Design = arch.Design
	// LayerDims describes one neuromorphic layer mapped onto a bank.
	LayerDims = arch.LayerDims
	// Accelerator is the built module tree.
	Accelerator = arch.Accelerator
	// Report is the accelerator performance summary.
	Report = arch.Report
	// Network is a neural-network topology description.
	Network = nn.Network
	// Space is a design-space exploration grid.
	Space = dse.Space
	// Candidate is one evaluated exploration design point.
	Candidate = dse.Candidate
	// Objective selects an optimization target.
	Objective = dse.Objective
	// ExploreOptions tunes an exploration run.
	ExploreOptions = dse.Options
	// CaseStudy is a related-work simulation result (PRIME / ISAAC).
	CaseStudy = custom.Result
	// Instruction is one basic controller operation (WRITE/READ/COMPUTE).
	Instruction = arch.Instruction
	// Controller executes instruction programs on an accelerator.
	Controller = arch.Controller
)

// Exploration objectives (the four case-study optimization targets).
const (
	MinArea     = dse.MinArea
	MinEnergy   = dse.MinEnergy
	MinLatency  = dse.MinLatency
	MaxAccuracy = dse.MaxAccuracy
)

// DefaultConfig returns the Table I defaults.
func DefaultConfig() Config { return config.Default() }

// ParseConfig reads a key = value configuration file.
func ParseConfig(r io.Reader) (Config, error) { return config.Parse(r) }

// LoadConfig parses the configuration file at path.
func LoadConfig(path string) (Config, error) {
	f, err := os.Open(path)
	if err != nil {
		return Config{}, err
	}
	defer f.Close()
	return config.Parse(f)
}

// DesignFromConfig resolves a configuration into a concrete design and its
// layer stack (the module-generation step of the software flow).
func DesignFromConfig(cfg Config) (Design, []LayerDims, error) { return arch.FromConfig(cfg) }

// Build constructs the accelerator module tree for a design.
func Build(d *Design, layers []LayerDims, iface [2]int) (*Accelerator, error) {
	return arch.NewAccelerator(d, layers, iface)
}

// Simulate runs the full flow: configuration → module generation →
// bottom-up performance estimation → accuracy propagation.
func Simulate(cfg Config) (Report, error) {
	d, layers, err := arch.FromConfig(cfg)
	if err != nil {
		return Report{}, err
	}
	a, err := arch.NewAccelerator(&d, layers, [2]int(cfg.InterfaceNumber))
	if err != nil {
		return Report{}, err
	}
	return a.Evaluate()
}

// Explore traverses a design space, evaluating grid points on a bounded
// worker pool (ExploreOptions.Workers; sequential output order is
// preserved for any worker count).
func Explore(base Design, layers []LayerDims, space Space, opt ExploreOptions) ([]Candidate, error) {
	return dse.Explore(context.Background(), base, layers, space, opt)
}

// ExploreContext is Explore with a caller-supplied context: cancelling it
// aborts the sweep, including any circuit-level solve mid-Newton-loop.
func ExploreContext(ctx context.Context, base Design, layers []LayerDims, space Space, opt ExploreOptions) ([]Candidate, error) {
	return dse.Explore(ctx, base, layers, space, opt)
}

// DefaultSpace is the paper's large-bank exploration grid.
func DefaultSpace() Space { return dse.DefaultSpace() }

// Best selects the feasible candidate minimising the objective.
func Best(cands []Candidate, obj Objective) *Candidate { return dse.Best(cands, obj) }

// Objectives lists the four optimization targets in table order.
func Objectives() []Objective { return dse.Objectives() }

// VGG16 returns the VGG-16 topology of the deep-CNN case study.
func VGG16() Network { return nn.VGG16() }

// CaffeNet returns the CaffeNet topology (the paper's 7-computation-bank
// example network).
func CaffeNet() Network { return nn.CaffeNet() }

// SimulatePRIME reproduces the PRIME FF-subarray case study (Table VII).
func SimulatePRIME() (CaseStudy, error) { return custom.PRIME() }

// SimulateISAAC reproduces the ISAAC tile case study (Table VII).
func SimulateISAAC() (CaseStudy, error) { return custom.ISAAC() }
