module mnsim

go 1.22
