package main

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mnsim/internal/bench"
)

const sampleOutput = `goos: linux
goarch: amd64
BenchmarkSolve/64x64-8	1	100000000 ns/op	1000 cg-iters/op
BenchmarkSolve/64x64-8	1	 95000000 ns/op	1000 cg-iters/op
BenchmarkSolve/64x64-8	1	120000000 ns/op	1000 cg-iters/op
PASS
`

func writeBaseline(t *testing.T, path, text string) {
	t.Helper()
	doc, err := bench.Parse(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestJSONSubcommand(t *testing.T) {
	out := filepath.Join(t.TempDir(), "bench.json")
	if err := run([]string{"json", "-out", out}, strings.NewReader(sampleOutput), nil); err != nil {
		t.Fatal(err)
	}
	doc, err := bench.Load(out)
	if err != nil {
		t.Fatal(err)
	}
	b := doc.Find("BenchmarkSolve/64x64")
	if b == nil || b.NsStat == nil || b.NsStat.Min != 95e6 {
		t.Fatalf("json output lost stats: %+v", b)
	}
}

func TestGateSubcommandPassAndFail(t *testing.T) {
	dir := t.TempDir()
	baseline := filepath.Join(dir, "BENCH_base.json")
	writeBaseline(t, baseline, sampleOutput)

	// Same run through stdin: passes.
	var sb strings.Builder
	if err := run([]string{"gate", "-baseline", baseline}, strings.NewReader(sampleOutput), &sb); err != nil {
		t.Fatalf("clean gate failed: %v\n%s", err, sb.String())
	}
	if !strings.Contains(sb.String(), "checks passed") {
		t.Fatalf("gate report:\n%s", sb.String())
	}

	// Injected synthetic regression: 3x wall time and +10% cg iterations.
	slow := strings.NewReader(`BenchmarkSolve/64x64-8	1	300000000 ns/op	1100 cg-iters/op` + "\n")
	sb.Reset()
	err := run([]string{"gate", "-baseline", baseline}, slow, &sb)
	if err == nil {
		t.Fatalf("regressed run passed the gate:\n%s", sb.String())
	}
	if !errors.Is(err, errRegression) {
		t.Fatalf("gate failed with the wrong error: %v", err)
	}
	if !strings.Contains(sb.String(), "FAIL BenchmarkSolve/64x64 ns/op") ||
		!strings.Contains(sb.String(), "FAIL BenchmarkSolve/64x64 cg-iters/op") {
		t.Fatalf("gate report misses the regressions:\n%s", sb.String())
	}

	// The same slow run passes with an explicit generous tolerance.
	slow2 := strings.NewReader(`BenchmarkSolve/64x64-8	1	300000000 ns/op	1100 cg-iters/op` + "\n")
	sb.Reset()
	if err := run([]string{"gate", "-baseline", baseline, "-tol", "3.0", "-metric-tol", "0.2"}, slow2, &sb); err != nil {
		t.Fatalf("wide tolerances still failed: %v\n%s", err, sb.String())
	}
}

func TestTrendSubcommand(t *testing.T) {
	dir := t.TempDir()
	b4 := filepath.Join(dir, "BENCH_pr4.json")
	b6 := filepath.Join(dir, "BENCH_pr6.json")
	writeBaseline(t, b4, "BenchmarkSolve/64x64-8\t1\t100000000 ns/op\n")
	writeBaseline(t, b6, "BenchmarkSolve/64x64-8\t1\t90000000 ns/op\n")
	out := filepath.Join(dir, "trend.json")
	if err := run([]string{"trend", "-out", out, b6, b4}, nil, nil); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var td bench.TrendDoc
	if err := json.Unmarshal(data, &td); err != nil {
		t.Fatalf("trend output not JSON: %v\n%s", err, data)
	}
	if len(td.Labels) != 2 || td.Labels[0] != "pr4" || td.Labels[1] != "pr6" {
		t.Fatalf("labels = %v, want [pr4 pr6]", td.Labels)
	}
	if len(td.Series) != 1 || len(td.Series[0].Points) != 2 {
		t.Fatalf("series = %+v", td.Series)
	}
}

func TestBadInvocations(t *testing.T) {
	if err := run(nil, nil, nil); err == nil {
		t.Error("no subcommand accepted")
	}
	if err := run([]string{"bogus"}, nil, nil); err == nil {
		t.Error("unknown subcommand accepted")
	}
	if err := run([]string{"gate"}, strings.NewReader(""), nil); err == nil {
		t.Error("gate without -baseline accepted")
	}
	if err := run([]string{"trend"}, nil, nil); err == nil {
		t.Error("trend without files accepted")
	}
}
