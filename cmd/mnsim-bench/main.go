// Command mnsim-bench is the benchmark pipeline CLI over internal/bench.
//
//	go test -bench . -benchtime=1x -count=3 ./... | mnsim-bench json -out bench/BENCH_pr6.json
//	mnsim-bench trend -out trend.json BENCH_*.json
//	mnsim-bench gate -baseline BENCH_pr6.json -current fresh.json -tol 0.40 -metric-tol 0.02
//
// json converts `go test -bench` text output into the stable BENCH_*.json
// document (median plus min/max/stddev per metric across -count runs).
//
// trend reads an ordered set of committed baselines and emits
// per-benchmark time series, so a slow drift across PRs is visible even
// when every individual gate passed.
//
// gate compares a fresh run against a committed baseline and exits
// nonzero on regression: wall time is compared min-of-runs vs min-of-runs
// with a generous tolerance (CI runners are noisy), deterministic metrics
// (iteration counts, flops/op) with a tight one. A benchmark or metric
// that vanishes from the current run also fails the gate.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"mnsim/internal/bench"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "mnsim-bench:", err)
		os.Exit(1)
	}
}

var errRegression = fmt.Errorf("benchmark regression")

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: mnsim-bench <json|trend|gate> [flags]")
	}
	switch args[0] {
	case "json":
		return runJSON(args[1:], stdin, stdout)
	case "trend":
		return runTrend(args[1:], stdout)
	case "gate":
		return runGate(args[1:], stdin, stdout)
	default:
		return fmt.Errorf("unknown subcommand %q (want json, trend, or gate)", args[0])
	}
}

// writeJSON encodes v to the -out file, or to stdout when out is empty.
func writeJSON(v any, out string, stdout io.Writer) (err error) {
	w := stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer func() {
			if cerr := f.Close(); cerr != nil && err == nil {
				err = cerr
			}
		}()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

func runJSON(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("mnsim-bench json", flag.ContinueOnError)
	out := fs.String("out", "", "output file (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	doc, err := bench.Parse(stdin)
	if err != nil {
		return err
	}
	return writeJSON(doc, *out, stdout)
}

func runTrend(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("mnsim-bench trend", flag.ContinueOnError)
	out := fs.String("out", "", "output file (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() == 0 {
		return fmt.Errorf("trend: no baseline files given")
	}
	entries, err := bench.LoadEntries(fs.Args())
	if err != nil {
		return err
	}
	return writeJSON(bench.Trend(entries), *out, stdout)
}

func runGate(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("mnsim-bench gate", flag.ContinueOnError)
	baseline := fs.String("baseline", "", "committed baseline BENCH_*.json (required)")
	current := fs.String("current", "", "fresh run document; \"-\" or empty parses `go test -bench` text from stdin")
	tol := fs.Float64("tol", 0.40, "fractional ns/op slowdown tolerated (min-of-runs comparison)")
	metricTol := fs.Float64("metric-tol", 0.02, "fractional increase tolerated on deterministic metrics")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *baseline == "" {
		return fmt.Errorf("gate: -baseline is required")
	}
	base, err := bench.Load(*baseline)
	if err != nil {
		return err
	}
	var cur *bench.Doc
	if *current == "" || *current == "-" {
		// Pipe `go test -bench` output straight into the gate.
		cur, err = bench.Parse(stdin)
	} else {
		cur, err = bench.Load(*current)
	}
	if err != nil {
		return err
	}
	deltas, regressions := bench.Gate(base, cur, bench.GateOptions{NsTol: *tol, MetricTol: *metricTol})
	for _, d := range deltas {
		switch {
		case d.Regression:
			fmt.Fprintf(stdout, "FAIL %s %s: %s\n", d.Bench, d.Unit, d.Reason)
		case d.Ratio > 0:
			fmt.Fprintf(stdout, "ok   %s %s: %.4g vs %.4g (x%.2f)\n", d.Bench, d.Unit, d.Cur, d.Base, d.Ratio)
		default:
			fmt.Fprintf(stdout, "ok   %s %s: %.4g vs %.4g\n", d.Bench, d.Unit, d.Cur, d.Base)
		}
	}
	if regressions > 0 {
		return fmt.Errorf("%w: %d of %d checks failed against %s", errRegression, regressions, len(deltas), *baseline)
	}
	fmt.Fprintf(stdout, "gate: %d checks passed against %s\n", len(deltas), *baseline)
	return nil
}
