// Command mnsim-validate reproduces the paper's validation experiments
// against the built-in circuit-level solver: Table II (model validation),
// Table III (simulation speed-up), and Fig. 5 (error-rate fit curves).
//
// Usage:
//
//	mnsim-validate -table2 -table3 -fig5        # run everything
//	mnsim-validate -table3 -maxsize 128         # bound the slowest solve
//	mnsim-validate -table3 -metrics-out m.prom  # dump Newton/CG iteration histograms
//	mnsim-validate -table2 -journal run.jsonl   # flight-recorder event journal
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"os/signal"

	"mnsim/internal/pool"
	"mnsim/internal/report"
	"mnsim/internal/telemetry"
	"mnsim/internal/validate"
)

func main() {
	t2 := flag.Bool("table2", false, "run the Table II model validation")
	t3 := flag.Bool("table3", false, "run the Table III speed-up measurement")
	f5 := flag.Bool("fig5", false, "run the Fig. 5 error-rate fit sweep")
	maxSize := flag.Int("maxsize", 256, "largest crossbar size for the circuit-level solves")
	seed := flag.Int64("seed", 1, "random seed")
	workers := pool.AddFlag(flag.CommandLine)
	tel := telemetry.AddFlags(flag.CommandLine)
	flag.Parse()
	if !*t2 && !*t3 && !*f5 {
		*t2, *t3, *f5 = true, true, true
	}
	tel.Run.SetTool("mnsim-validate")
	tel.Run.SetSeed(*seed)
	tel.Run.SetWorkers(pool.Resolve(*workers))
	tel.Run.SetConfigHash(telemetry.HashStrings(
		fmt.Sprintf("table2=%t", *t2), fmt.Sprintf("table3=%t", *t3),
		fmt.Sprintf("fig5=%t", *f5), fmt.Sprintf("maxsize=%d", *maxSize)))
	// Ctrl-C cancels the in-flight circuit solves (mid-Newton-loop) instead
	// of killing the process, so the telemetry dumps below still happen.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := tel.StartContext(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "mnsim-validate:", err)
		os.Exit(1)
	}
	err := run(ctx, os.Stdout, *t2, *t3, *f5, *maxSize, *seed, *workers)
	tel.Run.SetError(err)
	if ferr := tel.Finish(); err == nil {
		err = ferr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "mnsim-validate:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, w io.Writer, t2, t3, f5 bool, maxSize int, seed int64, workers int) error {
	if t2 {
		rows, err := validate.TableIIContext(ctx, validate.TableIIOptions{
			WeightSamples: 20, InputSamples: 100, Size: 128, Seed: seed,
		})
		if err != nil {
			return err
		}
		tab := &report.Table{
			Title:   "Table II: validation vs circuit-level simulation (two 128x128 layers)",
			Headers: []string{"Metric", "MNSIM", "Circuit", "Error"},
		}
		for _, r := range rows {
			tab.AddRow(r.Metric, r.Model, r.Circuit, fmt.Sprintf("%+.2f%%", r.Error()*100))
		}
		if err := tab.Render(w); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	if t3 {
		sizes := []int{16, 32, 64, 128, 256}
		var kept []int
		for _, s := range sizes {
			if s <= maxSize {
				kept = append(kept, s)
			}
		}
		rows, err := validate.TableIIIContext(ctx, kept, seed)
		if err != nil {
			return err
		}
		tab := &report.Table{
			Title:   "Table III: simulation time, circuit-level vs MNSIM",
			Headers: []string{"Crossbar Size", "Circuit (s)", "MNSIM (s)", "Speed-Up"},
		}
		for _, r := range rows {
			tab.AddRow(r.Size, r.CircuitTime.Seconds(), r.ModelTime.Seconds(),
				fmt.Sprintf("%.0fx", r.SpeedUp))
		}
		if err := tab.Render(w); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	if f5 {
		sizes := []int{8, 16, 32, 64, 128}
		var kept []int
		for _, s := range sizes {
			if s <= maxSize {
				kept = append(kept, s)
			}
		}
		pts, err := validate.Fig5Context(ctx, kept, []int{90, 45, 28, 22, 18}, workers)
		if err != nil {
			return err
		}
		tab := &report.Table{
			Title:   "Fig. 5: worst-case error rate, model curve vs circuit scatter",
			Headers: []string{"Wire Node (nm)", "Crossbar Size", "Model", "Circuit", "|Diff|"},
		}
		var sumSq float64
		for _, p := range pts {
			tab.AddRow(p.WireNode, p.Size, p.Model, p.Circuit, math.Abs(p.Model-p.Circuit))
			d := p.Model - p.Circuit
			sumSq += d * d
		}
		if err := tab.Render(w); err != nil {
			return err
		}
		fmt.Fprintf(w, "fit RMSE = %.4f over %d points (paper: < 0.01)\n",
			math.Sqrt(sumSq/float64(len(pts))), len(pts))
	}
	return nil
}
