package main

import (
	"context"
	"strings"
	"testing"
)

func TestRunTable3AndFig5(t *testing.T) {
	if testing.Short() {
		t.Skip("circuit-level solves are slow")
	}
	var sb strings.Builder
	// Keep the sweep small: sizes up to 32 only.
	if err := run(context.Background(), &sb, false, true, true, 32, 1, 2); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Table III", "Speed-Up", "Fig. 5", "fit RMSE"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
	if strings.Contains(out, "Table II:") {
		t.Error("Table II should not run when disabled")
	}
	if strings.Contains(out, "128") && strings.Contains(out, "Crossbar Size  128") {
		t.Error("maxsize filter ignored")
	}
}
