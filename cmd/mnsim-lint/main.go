// Command mnsim-lint runs the project's static-analysis pass: nine
// analyzers that mechanically enforce the simulator's determinism,
// cancellation, clock-hygiene, concurrency-safety, and hot-path
// allocation invariants (see internal/lint and the "Enforced
// invariants" appendix in DESIGN.md). Six are syntax-shaped; lockbalance
// and goleak are flow-aware over an intraprocedural CFG, and noalloc
// drives `go build -gcflags=-m` against //lint:hotpath annotations.
//
// Usage:
//
//	mnsim-lint [-json] [-tests] [-strict] [-summary] [packages...]
//
// Package patterns follow the go tool ("./...", "./internal/circuit");
// the default is "./...". Exit status is 0 when the tree is clean, 1
// when there are findings, and 2 on usage or load errors. Findings are
// suppressible with a reasoned "//lint:ignore <analyzer> <reason>"
// comment on the offending line or the line above; -strict additionally
// flags suppressions that no longer match any finding.
//
// Identical findings — same position, analyzer, and message, e.g. one
// leaked lock reported once per escaping path — are deduplicated before
// reporting. -summary prints a per-analyzer finding-count and wall-time
// table to stderr (JSON output always embeds it as "analyzers").
package main

import (
	"flag"
	"fmt"
	"os"

	"mnsim/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("mnsim-lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit diagnostics as a JSON document instead of text lines")
	tests := fs.Bool("tests", false, "also load and analyze _test.go files")
	strict := fs.Bool("strict", false, "flag stale //lint:ignore comments that suppress nothing")
	summary := fs.Bool("summary", false, "print a per-analyzer finding-count and wall-time table to stderr")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: mnsim-lint [-json] [-tests] [-strict] [-summary] [packages...]")
		fs.PrintDefaults()
		fmt.Fprintln(stderr, "\nanalyzers:")
		for _, a := range lint.All() {
			fmt.Fprintf(stderr, "  %-10s %s\n", a.Name, a.Doc)
		}
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	res, err := lint.Run(lint.Options{
		Patterns: fs.Args(),
		Tests:    *tests,
		Strict:   *strict,
	})
	if err != nil {
		fmt.Fprintln(stderr, "mnsim-lint:", err)
		return 2
	}
	if *jsonOut {
		if err := res.WriteJSON(stdout); err != nil {
			fmt.Fprintln(stderr, "mnsim-lint:", err)
			return 2
		}
	} else {
		res.WriteText(stdout)
	}
	if *summary {
		fmt.Fprintln(stderr, "mnsim-lint: per-analyzer summary:")
		res.WriteSummary(stderr)
	}
	if len(res.Diagnostics) > 0 {
		fmt.Fprintf(stderr, "mnsim-lint: %d finding(s)\n", len(res.Diagnostics))
		return 1
	}
	return 0
}
