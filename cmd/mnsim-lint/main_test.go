package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// capture runs main's run() with stdout and stderr redirected to temp
// files and returns (exit code, stdout, stderr).
func capture(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	dir := t.TempDir()
	outF, err := os.Create(filepath.Join(dir, "out"))
	if err != nil {
		t.Fatal(err)
	}
	errF, err := os.Create(filepath.Join(dir, "err"))
	if err != nil {
		t.Fatal(err)
	}
	code := run(args, outF, errF)
	if err := outF.Close(); err != nil {
		t.Fatal(err)
	}
	if err := errF.Close(); err != nil {
		t.Fatal(err)
	}
	out, err := os.ReadFile(outF.Name())
	if err != nil {
		t.Fatal(err)
	}
	errb, err := os.ReadFile(errF.Name())
	if err != nil {
		t.Fatal(err)
	}
	return code, string(out), string(errb)
}

const fixtures = "../../internal/lint/testdata/src"

// TestFixturesExitNonZero is the acceptance gate: the CLI must exit
// non-zero on every analyzer's fixture package, through the real
// module-path resolution (no fake paths).
func TestFixturesExitNonZero(t *testing.T) {
	cases := []struct {
		name    string
		pattern string
		wantSub string // a message fragment proving the right analyzer fired
	}{
		{"norawrand", "norawrand", "process-global source"},
		{"noclock", "noclock/...", "clock-free package"},
		{"ctxloop", "ctxloop", "never checks ctx"},
		{"nofloateq", "nofloateq", "floating-point"},
		{"noprint", "noprint/...", "writes to process stdout"},
		{"errdrop", "errdrop", "silently discarded"},
		{"lockbalance", "lockbalance", "not released on every path"},
		{"goleak", "goleak", "no visible termination edge"},
		{"noalloc", "noalloc", "heap escape in //lint:hotpath function"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, out, _ := capture(t, filepath.Join(fixtures, tc.pattern))
			if code != 1 {
				t.Fatalf("exit = %d on %s fixture, want 1; stdout:\n%s", code, tc.name, out)
			}
			if !strings.Contains(out, "["+tc.name+"]") || !strings.Contains(out, tc.wantSub) {
				t.Fatalf("stdout missing %s finding (want fragment %q):\n%s", tc.name, tc.wantSub, out)
			}
		})
	}
}

// TestRepoClean is the other half of the acceptance gate: the linter
// exits 0 on the repository at HEAD (everything fixed or suppressed
// with a reason).
func TestRepoClean(t *testing.T) {
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir("../.."); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := os.Chdir(wd); err != nil {
			t.Fatal(err)
		}
	}()
	code, out, errb := capture(t, "./...")
	if code != 0 {
		t.Fatalf("mnsim-lint ./... exit = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, out, errb)
	}
	if strings.TrimSpace(out) != "" {
		t.Fatalf("clean run produced output:\n%s", out)
	}
}

// TestJSONOutput checks the -json document shape and that it is
// emitted on findings (CI uploads it as an artifact either way).
func TestJSONOutput(t *testing.T) {
	code, out, _ := capture(t, "-json", filepath.Join(fixtures, "errdrop"))
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	var doc struct {
		Count       int `json:"count"`
		Diagnostics []struct {
			File     string `json:"file"`
			Line     int    `json:"line"`
			Analyzer string `json:"analyzer"`
			Message  string `json:"message"`
		} `json:"diagnostics"`
	}
	if err := json.Unmarshal([]byte(out), &doc); err != nil {
		t.Fatalf("-json output is not JSON: %v\n%s", err, out)
	}
	if doc.Count == 0 || doc.Count != len(doc.Diagnostics) {
		t.Fatalf("count %d inconsistent with %d diagnostics", doc.Count, len(doc.Diagnostics))
	}
	for _, d := range doc.Diagnostics {
		if d.Analyzer != "errdrop" || d.Line == 0 || d.File == "" {
			t.Fatalf("malformed diagnostic: %+v", d)
		}
	}
}

// TestJSONAnalyzerStats checks the per-analyzer accounting embedded in
// -json output: one entry per registered analyzer, counts consistent
// with the diagnostics list.
func TestJSONAnalyzerStats(t *testing.T) {
	code, out, _ := capture(t, "-json", filepath.Join(fixtures, "errdrop"))
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	var doc struct {
		Count       int `json:"count"`
		Diagnostics []struct {
			Analyzer string `json:"analyzer"`
		} `json:"diagnostics"`
		Analyzers []struct {
			Name     string  `json:"name"`
			Findings int     `json:"findings"`
			WallMS   float64 `json:"wall_ms"`
		} `json:"analyzers"`
	}
	if err := json.Unmarshal([]byte(out), &doc); err != nil {
		t.Fatalf("-json output is not JSON: %v\n%s", err, out)
	}
	if len(doc.Analyzers) < 9 {
		t.Fatalf("analyzers array has %d entries, want >= 9", len(doc.Analyzers))
	}
	byName := map[string]int{}
	total := 0
	for _, a := range doc.Analyzers {
		byName[a.Name] = a.Findings
		total += a.Findings
		if a.WallMS < 0 {
			t.Errorf("analyzer %s has negative wall time", a.Name)
		}
	}
	if total != doc.Count {
		t.Fatalf("per-analyzer findings sum to %d, count is %d", total, doc.Count)
	}
	if byName["errdrop"] == 0 {
		t.Fatal("errdrop fixture reported zero errdrop findings in stats")
	}
}

// TestSummaryFlag checks -summary prints the per-analyzer table to
// stderr, keeping stdout reserved for diagnostics.
func TestSummaryFlag(t *testing.T) {
	code, out, errb := capture(t, "-summary", filepath.Join(fixtures, "errdrop"))
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	if !strings.Contains(errb, "per-analyzer summary") || !strings.Contains(errb, "errdrop") {
		t.Fatalf("stderr missing summary table:\n%s", errb)
	}
	if strings.Contains(out, "per-analyzer summary") {
		t.Fatal("summary leaked to stdout")
	}
}

// TestDedupIdenticalFindings pins the deduplication contract end to end:
// a fixture package linted twice via two overlapping patterns yields each
// finding once.
func TestDedupIdenticalFindings(t *testing.T) {
	dir := filepath.Join(fixtures, "errdrop")
	once, _, _ := captureOut(t, dir)
	twice, _, _ := captureOut(t, dir, dir)
	if once != twice {
		t.Fatalf("linting the same package via two patterns changed output:\n--- once ---\n%s--- twice ---\n%s", once, twice)
	}
}

func captureOut(t *testing.T, patterns ...string) (string, string, int) {
	t.Helper()
	code, out, errb := capture(t, patterns...)
	return out, errb, code
}

// TestBadFlagExits2 pins usage errors to exit code 2.
func TestBadFlagExits2(t *testing.T) {
	if code, _, _ := capture(t, "-definitely-not-a-flag"); code != 2 {
		t.Fatalf("exit = %d on bad flag, want 2", code)
	}
}

// TestBadPatternExits2 pins load errors to exit code 2.
func TestBadPatternExits2(t *testing.T) {
	code, _, errb := capture(t, "./no/such/dir")
	if code != 2 {
		t.Fatalf("exit = %d on bad pattern, want 2", code)
	}
	if !strings.Contains(errb, "mnsim-lint:") {
		t.Fatalf("stderr missing error: %s", errb)
	}
}
