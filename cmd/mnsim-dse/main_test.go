package main

import (
	"context"
	"flag"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mnsim/internal/telemetry"
)

func TestRunLargeBank(t *testing.T) {
	var sb strings.Builder
	if err := run(context.Background(), &sb, "largebank", 0.25, "", "", 0); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"Large Computation Bank",
		"Design space exploration",
		"Crossbar Size",
		"Trade-off vs crossbar size",
		"Normalized performance factors",
		"parallelism degree",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunVGG(t *testing.T) {
	if testing.Short() {
		t.Skip("VGG sweep is slower")
	}
	var sb strings.Builder
	if err := run(context.Background(), &sb, "vgg16", 0, "", "", 2); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Deep CNN (VGG-16)") {
		t.Error("missing title")
	}
	if !strings.Contains(sb.String(), "error limit 50%") {
		t.Error("default error limit not applied")
	}
}

func TestRunUnknownCase(t *testing.T) {
	var sb strings.Builder
	if err := run(context.Background(), &sb, "zebra", 0, "", "", 0); err == nil {
		t.Fatal("unknown case accepted")
	}
}

func TestRunImpossibleConstraint(t *testing.T) {
	var sb strings.Builder
	if err := run(context.Background(), &sb, "largebank", 1e-9, "", "", 0); err == nil {
		t.Fatal("infeasible constraint should fail")
	}
}

func TestRunCSVOut(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cands.csv")
	var sb strings.Builder
	if err := run(context.Background(), &sb, "largebank", 0.25, path, "", 0); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	out := string(data)
	if !strings.Contains(out, "crossbar_size,parallelism,wire_node_nm") {
		t.Errorf("CSV header missing:\n%.200s", out)
	}
	if lines := strings.Count(out, "\n"); lines < 100 {
		t.Errorf("CSV has only %d lines", lines)
	}
	// An unwritable path fails.
	if err := run(context.Background(), &sb, "largebank", 0.25, filepath.Join(dir, "no", "dir", "x.csv"), "", 0); err == nil {
		t.Error("unwritable CSV path accepted")
	}
}

// TestRunWithObservability drives the full -serve / -run-out wiring the
// way main does: live /healthz while the sweep context is active, then a
// schema-valid run manifest on Finish carrying the sweep's phases and
// counters.
func TestRunWithObservability(t *testing.T) {
	dir := t.TempDir()
	runPath := filepath.Join(dir, "run.json")
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	tel := telemetry.AddFlags(fs)
	if err := fs.Parse([]string{"-serve", "localhost:0", "-run-out", runPath}); err != nil {
		t.Fatal(err)
	}
	tel.Run.SetTool("mnsim-dse")
	tel.Run.SetWorkers(2)
	tel.Run.SetConfigHash(telemetry.HashStrings("case=largebank", "errlimit=0.25"))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := tel.StartContext(ctx); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get("http://" + tel.Addr() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz status %d", resp.StatusCode)
	}

	var sb strings.Builder
	runErr := run(ctx, &sb, "largebank", 0.25, "", "", 2)
	tel.Run.SetError(runErr)
	if runErr != nil {
		t.Fatal(runErr)
	}
	if err := tel.Finish(); err != nil {
		t.Fatal(err)
	}

	m, err := telemetry.LoadManifest(runPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.Tool != "mnsim-dse" || m.Workers != 2 || m.ExitStatus != 0 {
		t.Fatalf("manifest identity = %+v", m)
	}
	foundExplore := false
	for _, p := range m.Phases {
		if p.Name == "dse.explore" && p.Count >= 1 {
			foundExplore = true
		}
	}
	if !foundExplore {
		t.Fatalf("manifest phases missing dse.explore: %+v", m.Phases)
	}
	if m.Metrics.Counters["mnsim_dse_candidates_total"] == 0 {
		t.Fatalf("manifest metrics missing candidate counter: %+v", m.Metrics.Counters)
	}
}
