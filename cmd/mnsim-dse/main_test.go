package main

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunLargeBank(t *testing.T) {
	var sb strings.Builder
	if err := run(context.Background(), &sb, "largebank", 0.25, "", 0); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"Large Computation Bank",
		"Design space exploration",
		"Crossbar Size",
		"Trade-off vs crossbar size",
		"Normalized performance factors",
		"parallelism degree",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunVGG(t *testing.T) {
	if testing.Short() {
		t.Skip("VGG sweep is slower")
	}
	var sb strings.Builder
	if err := run(context.Background(), &sb, "vgg16", 0, "", 2); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Deep CNN (VGG-16)") {
		t.Error("missing title")
	}
	if !strings.Contains(sb.String(), "error limit 50%") {
		t.Error("default error limit not applied")
	}
}

func TestRunUnknownCase(t *testing.T) {
	var sb strings.Builder
	if err := run(context.Background(), &sb, "zebra", 0, "", 0); err == nil {
		t.Fatal("unknown case accepted")
	}
}

func TestRunImpossibleConstraint(t *testing.T) {
	var sb strings.Builder
	if err := run(context.Background(), &sb, "largebank", 1e-9, "", 0); err == nil {
		t.Fatal("infeasible constraint should fail")
	}
}

func TestRunCSVOut(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cands.csv")
	var sb strings.Builder
	if err := run(context.Background(), &sb, "largebank", 0.25, path, 0); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	out := string(data)
	if !strings.Contains(out, "crossbar_size,parallelism,wire_node_nm") {
		t.Errorf("CSV header missing:\n%.200s", out)
	}
	if lines := strings.Count(out, "\n"); lines < 100 {
		t.Errorf("CSV has only %d lines", lines)
	}
	// An unwritable path fails.
	if err := run(context.Background(), &sb, "largebank", 0.25, filepath.Join(dir, "no", "dir", "x.csv"), 0); err == nil {
		t.Error("unwritable CSV path accepted")
	}
}
