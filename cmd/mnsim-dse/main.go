// Command mnsim-dse runs MNSIM's design-space exploration case studies:
// the 2048×1024 large computation bank (Tables IV/V, Figs. 7–9a) and the
// VGG-16 deep CNN (Table VI, Fig. 9b), sweeping crossbar size, computation
// parallelism degree, and interconnect technology.
//
// Usage:
//
//	mnsim-dse -case largebank [-errlimit 0.25]
//	mnsim-dse -case vgg16 [-errlimit 0.5]
//	mnsim-dse -case largebank -metrics-out m.prom -trace-out t.json -pprof localhost:6060
//	mnsim-dse -case largebank -journal run.jsonl -fail-candidate 64:16:45  # flight recorder + fault injection
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"time"

	"mnsim"

	"mnsim/internal/arch"
	_ "mnsim/internal/circuit" // register the solver metric families in the telemetry export
	"mnsim/internal/device"
	"mnsim/internal/dse"
	"mnsim/internal/periph"
	"mnsim/internal/pool"
	"mnsim/internal/report"
	"mnsim/internal/tech"
	"mnsim/internal/telemetry"
)

func main() {
	caseName := flag.String("case", "largebank", "case study: largebank or vgg16")
	errLimit := flag.Float64("errlimit", 0, "error-rate constraint (default 0.25 largebank, 0.5 vgg16)")
	csvOut := flag.String("csvout", "", "also dump every explored candidate as CSV to this file (for plotting Figs. 7-8)")
	failCand := flag.String("fail-candidate", "", "inject one evaluation failure at grid point size:p:node (flight-recorder fault injection)")
	workers := pool.AddFlag(flag.CommandLine)
	tel := telemetry.AddFlags(flag.CommandLine)
	flag.Parse()
	tel.Run.SetTool("mnsim-dse")
	tel.Run.SetWorkers(pool.Resolve(*workers))
	tel.Run.SetConfigHash(telemetry.HashStrings(
		"case="+*caseName, fmt.Sprintf("errlimit=%g", *errLimit)))
	// Ctrl-C cancels the sweep mid-candidate instead of killing the
	// process, so the telemetry dumps below still happen; the same context
	// drives the observability server's graceful shutdown.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := tel.StartContext(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "mnsim-dse:", err)
		os.Exit(1)
	}
	err := run(ctx, os.Stdout, *caseName, *errLimit, *csvOut, *failCand, *workers)
	// The telemetry dumps are written even when the run fails: a failed
	// sweep's metrics are exactly what the user wants to inspect.
	tel.Run.SetError(err)
	if ferr := tel.Finish(); err == nil {
		err = ferr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "mnsim-dse:", err)
		os.Exit(1)
	}
}

// dumpCSV writes the full candidate list for external plotting. The
// eval_us column is each candidate's build-and-evaluate wall time from the
// dse.explore/candidate telemetry span.
func dumpCSV(path string, cands []mnsim.Candidate) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	tab := &report.Table{Headers: []string{
		"crossbar_size", "parallelism", "wire_node_nm",
		"area_mm2", "energy_j", "latency_s", "power_w", "error_worst", "feasible", "eval_us",
	}}
	for _, c := range cands {
		tab.AddRow(c.CrossbarSize, c.Parallelism, c.WireNode,
			c.Report.AreaMM2, c.Report.EnergyPerSample, c.Report.PipelineCycle,
			c.Report.Power, c.Report.ErrorWorst, c.Feasible, c.EvalTime.Microseconds())
	}
	return tab.WriteCSV(f)
}

// baseDesign is the 45 nm reference design of both case studies.
func baseDesign(weightBits int, neuron periph.NeuronKind) mnsim.Design {
	return mnsim.Design{
		CrossbarSize:      128,
		WeightPolarity:    2,
		TwoCrossbarSigned: true,
		WeightBits:        weightBits,
		DataBits:          8,
		CMOS:              tech.MustNode(45),
		Wire:              tech.MustInterconnect(45),
		Dev:               device.RRAM(),
		ADC:               periph.ADCVariableSA,
		Neuron:            neuron,
		AreaCoefficient:   arch.DefaultAreaCoefficient,
	}
}

func run(ctx context.Context, w io.Writer, caseName string, errLimit float64, csvOut, failCand string, workers int) error {
	var (
		base   mnsim.Design
		layers []mnsim.LayerDims
		title  string
	)
	switch caseName {
	case "largebank":
		// Section VII.C: 2048×1024 fully-connected layer, 4-bit signed
		// weights, 8-bit signals, 45 nm CMOS.
		base = baseDesign(4, periph.NeuronSigmoid)
		layers = []mnsim.LayerDims{{Rows: 2048, Cols: 1024, Passes: 1}}
		title = "Large Computation Bank (2048x1024)"
		if errLimit == 0 {
			errLimit = 0.25
		}
	case "vgg16":
		// Section VII.D: VGG-16, 8-bit weights and data, error limit 50%,
		// interconnect range widened to 90 nm.
		base = baseDesign(8, periph.NeuronReLU)
		var err error
		layers, err = mnsim.VGG16().Dims()
		if err != nil {
			return err
		}
		title = "Deep CNN (VGG-16)"
		if errLimit == 0 {
			errLimit = 0.50
		}
	default:
		return fmt.Errorf("unknown case %q (want largebank or vgg16)", caseName)
	}

	space := mnsim.DefaultSpace()
	if caseName == "vgg16" {
		space.WireNodes = append(space.WireNodes, 90)
	}
	start := time.Now()
	cands, err := mnsim.ExploreContext(ctx, base, layers, space, mnsim.ExploreOptions{
		ErrorLimit: errLimit,
		Workers:    workers,
		FailEval:   failCand,
	})
	if err != nil {
		return err
	}
	elapsed := time.Since(start)
	fmt.Fprintf(w, "%s: %d designs simulated in %v on %d workers (error limit %.0f%%)\n\n",
		title, len(cands), elapsed.Round(time.Millisecond), pool.Resolve(workers), errLimit*100)
	if csvOut != "" {
		if err := dumpCSV(csvOut, cands); err != nil {
			return err
		}
	}

	// Table IV/VI: one column per optimization target.
	tab := &report.Table{
		Title:   "Design space exploration (optimal design per target)",
		Headers: []string{"Metric", "Area", "Energy", "Latency", "Accuracy"},
	}
	var optima []mnsim.Candidate
	for _, obj := range mnsim.Objectives() {
		best := mnsim.Best(cands, obj)
		if best == nil {
			return fmt.Errorf("no feasible design for objective %v", obj)
		}
		optima = append(optima, *best)
	}
	addMetric := func(name string, f func(c mnsim.Candidate) string) {
		row := make([]any, 0, 5)
		row = append(row, name)
		for _, c := range optima {
			row = append(row, f(c))
		}
		tab.AddRow(row...)
	}
	addMetric("Area (mm2)", func(c mnsim.Candidate) string { return fmt.Sprintf("%.4g", c.Report.AreaMM2) })
	addMetric("Energy per Sample", func(c mnsim.Candidate) string { return report.Joules(c.Report.EnergyPerSample) })
	addMetric("Latency per Cycle", func(c mnsim.Candidate) string { return report.Seconds(c.Report.PipelineCycle) })
	addMetric("Error Rate of Output", func(c mnsim.Candidate) string { return report.Percent(c.Report.ErrorWorst) })
	addMetric("Power", func(c mnsim.Candidate) string { return report.Watts(c.Report.Power) })
	addMetric("Crossbar Size", func(c mnsim.Candidate) string { return fmt.Sprint(c.CrossbarSize) })
	addMetric("Line Tech Node", func(c mnsim.Candidate) string { return fmt.Sprint(c.WireNode) })
	addMetric("Parallelism Degree", func(c mnsim.Candidate) string { return fmt.Sprint(c.Parallelism) })
	if err := tab.Render(w); err != nil {
		return err
	}

	// Table V: trade-off vs crossbar size (accuracy-optimal line tech and
	// parallelism per size).
	fmt.Fprintln(w)
	tv := &report.Table{
		Title:   "Trade-off vs crossbar size (best error per size)",
		Headers: []string{"Crossbar Size", "Error Rate", "Area (mm2)", "Energy", "Line Tech"},
	}
	for _, size := range []int{256, 128, 64, 32, 16, 8} {
		var best *mnsim.Candidate
		for i := range cands {
			c := &cands[i]
			if c.CrossbarSize != size {
				continue
			}
			if best == nil || c.Report.ErrorWorst < best.Report.ErrorWorst {
				best = c
			}
		}
		if best == nil {
			continue
		}
		tv.AddRow(size, report.Percent(best.Report.ErrorWorst),
			fmt.Sprintf("%.4g", best.Report.AreaMM2),
			report.Joules(best.Report.EnergyPerSample), best.WireNode)
	}
	if err := tv.Render(w); err != nil {
		return err
	}

	// Fig. 9: normalized radar factors of the four optima.
	fmt.Fprintln(w)
	radar := dse.RadarFactors(optima)
	fr := &report.Table{
		Title:   "Normalized performance factors (Fig. 9)",
		Headers: []string{"Optimal For", "1/Area", "Energy Eff", "1/Power", "Speed", "Accuracy"},
	}
	for i, obj := range mnsim.Objectives() {
		fr.AddRow(obj.String(), radar[i][0], radar[i][1], radar[i][2], radar[i][3], radar[i][4])
	}
	if err := fr.Render(w); err != nil {
		return err
	}

	// Fig. 7/8: parallelism sweeps at the accuracy-optimal wire node.
	fmt.Fprintln(w)
	f7 := &report.Table{
		Title:   "Area & latency vs parallelism degree (Fig. 7/8, normalized per size)",
		Headers: []string{"Crossbar Size", "Parallelism", "Area (mm2)", "Latency", "Area/Max", "Latency/Max"},
	}
	node := optima[3].WireNode
	for _, size := range []int{32, 128, 512} {
		var rows []mnsim.Candidate
		maxArea, maxLat := 0.0, 0.0
		for _, c := range cands {
			if c.CrossbarSize == size && c.WireNode == node {
				rows = append(rows, c)
				if c.Report.AreaMM2 > maxArea {
					maxArea = c.Report.AreaMM2
				}
				if c.Report.PipelineCycle > maxLat {
					maxLat = c.Report.PipelineCycle
				}
			}
		}
		for _, c := range rows {
			f7.AddRow(size, c.Parallelism, fmt.Sprintf("%.4g", c.Report.AreaMM2),
				report.Seconds(c.Report.PipelineCycle),
				c.Report.AreaMM2/maxArea, c.Report.PipelineCycle/maxLat)
		}
	}
	return f7.Render(w)
}
