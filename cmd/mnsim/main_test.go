package main

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeConfig(t *testing.T, src string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "acc.cfg")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const goodConfig = `
Network_Type = ANN
Network_Scale = 128x128, 128x10
Crossbar_Size = 128
CMOS_Tech = 45
Interconnect_Tech = 45
`

func TestRunTable(t *testing.T) {
	var sb strings.Builder
	if err := run(context.Background(), &sb, writeConfig(t, goodConfig), false, false, false, 0.25, 2); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Accelerator report", "Banks (network depth)", "2",
		"Per-bank breakdown", "128x128", "Largest bank area breakdown", "adc"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunCSV(t *testing.T) {
	var sb strings.Builder
	if err := run(context.Background(), &sb, writeConfig(t, goodConfig), true, false, false, 0.25, 2); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "Metric,Value") {
		t.Errorf("CSV header missing:\n%s", out)
	}
	if strings.Contains(out, "---") {
		t.Error("CSV output should not contain table rules")
	}
}

func TestRunErrors(t *testing.T) {
	var sb strings.Builder
	if err := run(context.Background(), &sb, filepath.Join(t.TempDir(), "missing.cfg"), false, false, false, 0.25, 2); err == nil {
		t.Error("missing config accepted")
	}
	if err := run(context.Background(), &sb, writeConfig(t, "Crossbar_Size = nope\n"), false, false, false, 0.25, 2); err == nil {
		t.Error("bad config accepted")
	}
	// Valid parse but unknown tech node fails at design resolution.
	if err := run(context.Background(), &sb, writeConfig(t, "Network_Scale = 8x8\nCMOS_Tech = 77\n"), false, false, false, 0.25, 2); err == nil {
		t.Error("unknown node accepted")
	}
}

func TestRunDump(t *testing.T) {
	var sb strings.Builder
	if err := run(context.Background(), &sb, writeConfig(t, goodConfig), false, true, false, 0.25, 2); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"# MNSIM configuration", "Crossbar_Size = 128", "Network_Scale = 128x128, 128x10"} {
		if !strings.Contains(out, want) {
			t.Errorf("dump missing %q", want)
		}
	}
}

func TestRunOptimize(t *testing.T) {
	var sb strings.Builder
	if err := run(context.Background(), &sb, writeConfig(t, goodConfig), false, false, true, 0.25, 2); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Optimal designs over", "Accuracy", "Crossbar"} {
		if !strings.Contains(out, want) {
			t.Errorf("optimize output missing %q", want)
		}
	}
	// An impossible constraint fails loudly.
	if err := run(context.Background(), &sb, writeConfig(t, goodConfig), false, false, true, 1e-9, 2); err == nil {
		t.Error("infeasible constraint accepted")
	}
}
