// Command mnsim simulates one memristor-based neuromorphic accelerator
// described by a configuration file (Table I format) and prints the
// area / power / latency / energy / accuracy report with a per-bank
// breakdown — the core software flow of Fig. 3.
//
// Usage:
//
//	mnsim -config accelerator.cfg [-csv]
//	mnsim -config accelerator.cfg -metrics-out m.prom -trace-out t.json -pprof localhost:6060
//	mnsim -config accelerator.cfg -journal run.jsonl   # flight-recorder event journal
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"

	"mnsim"

	"mnsim/internal/arch"
	_ "mnsim/internal/circuit" // register the solver metric families in the telemetry export
	"mnsim/internal/pool"
	"mnsim/internal/report"
	"mnsim/internal/telemetry"
)

func main() {
	cfgPath := flag.String("config", "", "path to the configuration file (required)")
	csv := flag.Bool("csv", false, "emit CSV instead of an aligned table")
	dump := flag.Bool("dump", false, "print the effective configuration (defaults resolved) before the report")
	optimize := flag.Bool("optimize", false, "also explore crossbar size / parallelism / interconnect around the configured design and print the per-target optima (Section IV.A: MNSIM gives the optimal design when configurations are left open)")
	errLimit := flag.Float64("errlimit", 0.25, "error-rate constraint for -optimize")
	workers := pool.AddFlag(flag.CommandLine)
	tel := telemetry.AddFlags(flag.CommandLine)
	flag.Parse()
	if *cfgPath == "" {
		fmt.Fprintln(os.Stderr, "mnsim: -config is required")
		flag.Usage()
		os.Exit(2)
	}
	tel.Run.SetTool("mnsim")
	tel.Run.SetWorkers(pool.Resolve(*workers))
	// Fingerprint the configuration file so run manifests from the same
	// design can be matched up; a read error surfaces in run() below.
	if b, err := os.ReadFile(*cfgPath); err == nil {
		tel.Run.SetConfigHash(telemetry.HashBytes(b))
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := tel.StartContext(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "mnsim:", err)
		os.Exit(1)
	}
	err := run(ctx, os.Stdout, *cfgPath, *csv, *dump, *optimize, *errLimit, *workers)
	tel.Run.SetError(err)
	if ferr := tel.Finish(); err == nil {
		err = ferr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "mnsim:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, w io.Writer, cfgPath string, csv, dump, optimize bool, errLimit float64, workers int) error {
	cfg, err := mnsim.LoadConfig(cfgPath)
	if err != nil {
		return err
	}
	if dump {
		if err := cfg.Write(w); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	d, layers, err := mnsim.DesignFromConfig(cfg)
	if err != nil {
		return err
	}
	a, err := mnsim.Build(&d, layers, [2]int(cfg.InterfaceNumber))
	if err != nil {
		return err
	}
	r, err := a.Evaluate()
	if err != nil {
		return err
	}

	summary := &report.Table{Title: "Accelerator report", Headers: []string{"Metric", "Value"}}
	summary.AddRow("Banks (network depth)", len(a.Banks))
	summary.AddRow("Computation units", a.TotalUnits())
	summary.AddRow("Crossbars", a.TotalCrossbars())
	summary.AddRow("Area", fmt.Sprintf("%.4g mm2", r.AreaMM2))
	summary.AddRow("Power", report.Watts(r.Power))
	summary.AddRow("Energy per sample", report.Joules(r.EnergyPerSample))
	summary.AddRow("Sample latency", report.Seconds(r.SampleLatency))
	summary.AddRow("Pipeline cycle", report.Seconds(r.PipelineCycle))
	summary.AddRow("Output error (worst)", report.Percent(r.ErrorWorst))
	summary.AddRow("Output error (avg)", report.Percent(r.ErrorAvg))

	banks := &report.Table{
		Title:   "Per-bank breakdown",
		Headers: []string{"Bank", "Layer", "Units", "Area (mm2)", "Pass latency", "Pass energy"},
	}
	for i, b := range a.Banks {
		banks.AddRow(i,
			fmt.Sprintf("%dx%d x%d", b.Layer.Rows, b.Layer.Cols, b.Layer.Passes),
			b.Units,
			b.PassPerf.Area*1e-6,
			report.Seconds(b.PassPerf.Latency),
			report.Joules(b.PassPerf.DynamicEnergy))
	}
	// Per-module-class area breakdown of the largest bank (Section V.C's
	// ADC-dominance observation).
	biggest := a.Banks[0]
	for _, b := range a.Banks[1:] {
		if b.PassPerf.Area > biggest.PassPerf.Area {
			biggest = b
		}
	}
	bd, err := biggest.Breakdown()
	if err != nil {
		return err
	}
	breakdown := &report.Table{
		Title:   "Largest bank area breakdown",
		Headers: []string{"Module class", "Area (mm2)", "Share"},
	}
	for _, class := range arch.SortedByArea(bd) {
		breakdown.AddRow(string(class), bd[class].Area*1e-6, report.Percent(arch.ShareOf(bd, class)))
	}

	if csv {
		if err := summary.WriteCSV(w); err != nil {
			return err
		}
		if err := banks.WriteCSV(w); err != nil {
			return err
		}
		return breakdown.WriteCSV(w)
	}
	if err := summary.Render(w); err != nil {
		return err
	}
	fmt.Fprintln(w)
	if err := banks.Render(w); err != nil {
		return err
	}
	fmt.Fprintln(w)
	if err := breakdown.Render(w); err != nil {
		return err
	}
	if optimize {
		fmt.Fprintln(w)
		return runOptimize(ctx, w, d, layers, [2]int(cfg.InterfaceNumber), errLimit, workers)
	}
	return nil
}

// runOptimize sweeps the design space around the configured design and
// prints the per-target optimum — the behaviour the paper describes when
// the user leaves configurations open.
func runOptimize(ctx context.Context, w io.Writer, base mnsim.Design, layers []mnsim.LayerDims, iface [2]int, errLimit float64, workers int) error {
	cands, err := mnsim.ExploreContext(ctx, base, layers, mnsim.DefaultSpace(), mnsim.ExploreOptions{
		ErrorLimit: errLimit,
		Interface:  iface,
		Workers:    workers,
	})
	if err != nil {
		return err
	}
	tab := &report.Table{
		Title:   fmt.Sprintf("Optimal designs over %d explored candidates (error <= %.0f%%)", len(cands), errLimit*100),
		Headers: []string{"Target", "Crossbar", "Parallelism", "Wire (nm)", "Area (mm2)", "Energy", "Latency", "Error"},
	}
	for _, obj := range mnsim.Objectives() {
		best := mnsim.Best(cands, obj)
		if best == nil {
			return fmt.Errorf("no feasible design for objective %v", obj)
		}
		tab.AddRow(obj.String(), best.CrossbarSize, best.Parallelism, best.WireNode,
			best.Report.AreaMM2,
			report.Joules(best.Report.EnergyPerSample),
			report.Seconds(best.Report.PipelineCycle),
			report.Percent(best.Report.ErrorWorst))
	}
	return tab.Render(w)
}
