package main

import (
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"mnsim/internal/telemetry"
)

func writeManifest(t *testing.T, dir, name string, m telemetry.Manifest) string {
	t.Helper()
	b, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func sampleManifest() telemetry.Manifest {
	return telemetry.Manifest{
		SchemaVersion: telemetry.ManifestSchemaVersion,
		Tool:          "mnsim-dse",
		Args:          []string{"-case", "largebank"},
		ConfigHash:    "deadbeefdeadbeef",
		GoVersion:     "go1.22",
		OS:            "linux",
		Arch:          "amd64",
		StartTime:     time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC),
		WallSeconds:   10,
		Phases: []telemetry.SpanStat{
			{Name: "dse.explore", Count: 1, TotalUS: 9e6, AvgUS: 9e6},
			{Name: "candidate", Count: 400, TotalUS: 8e6, AvgUS: 2e4},
		},
		Metrics: telemetry.MetricsSnapshot{
			Counters: map[string]int64{
				"mnsim_dse_candidates_total":          400,
				"mnsim_dse_candidates_feasible_total": 100,
			},
			Gauges: map[string]float64{"mnsim_pool_queue_depth": 0},
			Histograms: map[string]telemetry.HistogramSnapshot{
				"mnsim_dse_candidate_eval_us": {Count: 400, Sum: 8e6},
			},
		},
	}
}

func TestDiffFlagsBeyondThreshold(t *testing.T) {
	dir := t.TempDir()
	a := sampleManifest()
	b := sampleManifest()
	// 50% slower run, 4x feasible count; candidate totals unchanged.
	b.WallSeconds = 15
	b.Phases[0].TotalUS = 13.5e6
	b.Metrics.Counters["mnsim_dse_candidates_feasible_total"] = 400
	b.Metrics.Counters["mnsim_runs_only_in_b_total"] = 7
	aPath := writeManifest(t, dir, "a.json", a)
	bPath := writeManifest(t, dir, "b.json", b)

	var sb strings.Builder
	flagged, err := runDiff(&sb, aPath, bPath, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	// wall_seconds +50%, dse.explore phase +50%, feasible +300%, and the
	// new-in-b counter must all be flagged; the unchanged candidate count
	// must not be.
	if flagged != 4 {
		t.Fatalf("flagged = %d, want 4; output:\n%s", flagged, out)
	}
	for _, want := range []string{"wall_seconds", "dse.explore", "feasible", "+300.0%", "new"} {
		if !strings.Contains(out, want) {
			t.Errorf("diff output missing %q:\n%s", want, out)
		}
	}
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "mnsim_dse_candidates_total") && strings.Contains(line, "!") {
			t.Errorf("unchanged counter flagged: %s", line)
		}
	}

	// A looser threshold lets the 50% deltas through but still flags the
	// 300% and the new series.
	sb.Reset()
	flagged, err = runDiff(&sb, aPath, bPath, 0.60)
	if err != nil {
		t.Fatal(err)
	}
	if flagged != 2 {
		t.Fatalf("flagged at 60%% = %d, want 2; output:\n%s", flagged, sb.String())
	}
}

func TestDiffConfigHashMismatchNoted(t *testing.T) {
	dir := t.TempDir()
	a := sampleManifest()
	b := sampleManifest()
	b.ConfigHash = "0123456701234567"
	var sb strings.Builder
	if _, err := runDiff(&sb, writeManifest(t, dir, "a.json", a), writeManifest(t, dir, "b.json", b), 0.10); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "config hashes differ") {
		t.Errorf("mismatched config hashes not noted:\n%s", sb.String())
	}
}

func TestRelDelta(t *testing.T) {
	cases := []struct {
		a, b, want float64
	}{
		{10, 15, 0.5},
		{10, 5, -0.5},
		{0, 0, 0},
		{-4, -2, 0.5},
	}
	for _, c := range cases {
		if got := relDelta(c.a, c.b); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("relDelta(%g, %g) = %g, want %g", c.a, c.b, got, c.want)
		}
	}
	if !math.IsInf(relDelta(0, 3), +1) {
		t.Error("new series should be +Inf")
	}
	if !math.IsInf(relDelta(0, -3), -1) {
		t.Error("new negative series should be -Inf")
	}
}

func TestShowRendersManifest(t *testing.T) {
	dir := t.TempDir()
	m := sampleManifest()
	seed := int64(42)
	m.Seed = &seed
	m.Workers = 8
	m.Artifacts = map[string]string{
		"journal":      "out/run.jsonl",
		"trace_events": "out/trace.json",
	}
	path := writeManifest(t, dir, "run.json", m)
	var sb strings.Builder
	if err := runShow(&sb, path); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"mnsim-dse", "largebank", "42", "dse.explore", "candidate",
		"Artifact: journal", "out/run.jsonl", "Artifact: trace_events", "out/trace.json"} {
		if !strings.Contains(out, want) {
			t.Errorf("show output missing %q:\n%s", want, out)
		}
	}
	if err := runShow(&sb, filepath.Join(dir, "absent.json")); err == nil {
		t.Error("show accepted a missing manifest")
	}
}

func TestShowRendersResourceRollup(t *testing.T) {
	dir := t.TempDir()
	m := sampleManifest()
	m.Resources = &telemetry.ResourceRollup{
		Samples:           120,
		IntervalMS:        1000,
		PeakHeapLiveBytes: 96 << 20,
		MaxGoroutines:     17,
		TotalAllocBytes:   3 << 30,
		TotalAllocObjects: 4_200_000,
		GCCycles:          58,
		GCPauseTotalNS:    2_400_000,
		GCCPUFraction:     0.013,
		MemPressureEvents: 2,
		WatchdogStalls:    1,
	}
	path := writeManifest(t, dir, "run.json", m)
	var sb strings.Builder
	if err := runShow(&sb, path); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"Resource rollup",
		"120 @ 1000ms",
		"96.0 MiB",
		"3.0 GiB (4200000 objects)",
		"58 cycles",
		"Mem pressure events",
		"Watchdog stalls",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("show output missing %q:\n%s", want, out)
		}
	}
	// A manifest without a rollup must not render the section at all.
	m.Resources = nil
	path = writeManifest(t, dir, "plain.json", m)
	sb.Reset()
	if err := runShow(&sb, path); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "Resource rollup") {
		t.Error("rollup section rendered for a manifest without resources")
	}
}
