// Command mnsim-runs inspects and compares the structured run manifests
// (run.json) the other MNSIM CLIs write with -run-out. It is the
// mechanical substrate for tracking performance and result drift across
// runs and across PRs: "diff" compares two manifests metric by metric and
// phase by phase and flags deltas beyond a threshold, "show" summarises a
// single manifest.
//
// Usage:
//
//	mnsim-runs show run.json
//	mnsim-runs diff [-threshold 0.10] [-fail] old/run.json new/run.json
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"

	"mnsim/internal/report"
	"mnsim/internal/telemetry"
)

func main() {
	if len(os.Args) < 2 {
		usage(os.Stderr)
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "diff":
		err = diffMain(os.Args[2:])
	case "show":
		err = showMain(os.Args[2:])
	case "help", "-h", "-help", "--help":
		usage(os.Stdout)
	default:
		fmt.Fprintf(os.Stderr, "mnsim-runs: unknown subcommand %q\n", os.Args[1])
		usage(os.Stderr)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "mnsim-runs:", err)
		os.Exit(1)
	}
}

func usage(w io.Writer) {
	fmt.Fprintln(w, `usage:
  mnsim-runs show run.json
  mnsim-runs diff [-threshold 0.10] [-fail] old-run.json new-run.json

"diff" compares every counter, gauge, histogram, and span phase of two
run manifests; deltas beyond -threshold (relative) are flagged with '!'.
With -fail the exit status is 3 when any delta is flagged, for CI gates.`)
}

func showMain(args []string) error {
	fs := flag.NewFlagSet("show", flag.ExitOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("show wants exactly one manifest path")
	}
	return runShow(os.Stdout, fs.Arg(0))
}

func runShow(w io.Writer, path string) error {
	m, err := telemetry.LoadManifest(path)
	if err != nil {
		return err
	}
	tab := &report.Table{Title: "Run manifest " + path, Headers: []string{"Field", "Value"}}
	tab.AddRow("Tool", m.Tool)
	tab.AddRow("Args", fmt.Sprintf("%v", m.Args))
	if m.ConfigHash != "" {
		tab.AddRow("Config hash", m.ConfigHash)
	}
	if m.Seed != nil {
		tab.AddRow("Seed", fmt.Sprint(*m.Seed))
	}
	if m.Workers != 0 {
		tab.AddRow("Workers", m.Workers)
	}
	tab.AddRow("Go / platform", fmt.Sprintf("%s %s/%s", m.GoVersion, m.OS, m.Arch))
	tab.AddRow("Started", m.StartTime.Format("2006-01-02 15:04:05 MST"))
	tab.AddRow("Wall time", report.Seconds(m.WallSeconds))
	status := "ok"
	if m.ExitStatus != 0 {
		status = fmt.Sprintf("%d (%s)", m.ExitStatus, m.Error)
	}
	tab.AddRow("Exit", status)
	// Artifact paths the run recorded (journal, metrics, trace_events, …),
	// so the manifest is the one index for everything the run wrote.
	arts := make([]string, 0, len(m.Artifacts))
	for kind := range m.Artifacts {
		arts = append(arts, kind)
	}
	sort.Strings(arts)
	for _, kind := range arts {
		tab.AddRow("Artifact: "+kind, m.Artifacts[kind])
	}
	if err := tab.Render(w); err != nil {
		return err
	}
	// Resource rollup: peaks and run-scoped totals recorded by the
	// runtime/metrics sampler when the run passed -resource-interval.
	if r := m.Resources; r != nil {
		fmt.Fprintln(w)
		rt := &report.Table{Title: "Resource rollup", Headers: []string{"Field", "Value"}}
		rt.AddRow("Samples", fmt.Sprintf("%d @ %dms", r.Samples, r.IntervalMS))
		rt.AddRow("Peak live heap", telemetry.FormatByteSize(r.PeakHeapLiveBytes))
		rt.AddRow("Max goroutines", r.MaxGoroutines)
		rt.AddRow("Allocated", fmt.Sprintf("%s (%d objects)",
			telemetry.FormatByteSize(r.TotalAllocBytes), r.TotalAllocObjects))
		rt.AddRow("GC", fmt.Sprintf("%d cycles, %.3f ms pause, %.4f CPU fraction",
			r.GCCycles, float64(r.GCPauseTotalNS)/1e6, r.GCCPUFraction))
		if r.MemPressureEvents > 0 {
			rt.AddRow("Mem pressure events", r.MemPressureEvents)
		}
		if r.WatchdogStalls > 0 {
			rt.AddRow("Watchdog stalls", r.WatchdogStalls)
		}
		if err := rt.Render(w); err != nil {
			return err
		}
	}
	if len(m.Phases) == 0 {
		return nil
	}
	fmt.Fprintln(w)
	phases := append([]telemetry.SpanStat(nil), m.Phases...)
	sort.Slice(phases, func(i, j int) bool { return phases[i].TotalUS > phases[j].TotalUS })
	pt := &report.Table{
		Title:   "Phases by total wall time",
		Headers: []string{"Phase", "Count", "Total", "Avg"},
	}
	for _, p := range phases {
		pt.AddRow(p.Name, p.Count, report.Seconds(p.TotalUS/1e6), report.Seconds(p.AvgUS/1e6))
	}
	return pt.Render(w)
}

func diffMain(args []string) error {
	fs := flag.NewFlagSet("diff", flag.ExitOnError)
	threshold := fs.Float64("threshold", 0.10,
		"relative delta beyond which a series is flagged (0.10 = 10%)")
	failFlag := fs.Bool("fail", false, "exit with status 3 when any delta is flagged")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		return fmt.Errorf("diff wants exactly two manifest paths")
	}
	flagged, err := runDiff(os.Stdout, fs.Arg(0), fs.Arg(1), *threshold)
	if err != nil {
		return err
	}
	if *failFlag && flagged > 0 {
		os.Exit(3)
	}
	return nil
}

// diffRow is one compared series.
type diffRow struct {
	kind, name string
	a, b       float64
	delta      float64 // relative; +Inf when a == 0 and b != 0
	flagged    bool
}

// relDelta returns the relative change from a to b.
func relDelta(a, b float64) float64 {
	//lint:ignore nofloateq exact match (including 0==0) must report delta 0; any real difference falls through to the relative form
	if a == b {
		return 0
	}
	if a == 0 {
		return math.Inf(sign(b))
	}
	return (b - a) / math.Abs(a)
}

func sign(v float64) int {
	if v < 0 {
		return -1
	}
	return 1
}

// diffManifests compares every shared (and one-sided) series of the two
// manifests: wall time, span phases (total wall time), counters, gauges,
// and histogram count/mean. Rows beyond threshold are flagged.
func diffManifests(a, b telemetry.Manifest, threshold float64) []diffRow {
	var rows []diffRow
	add := func(kind, name string, av, bv float64) {
		d := relDelta(av, bv)
		rows = append(rows, diffRow{
			kind: kind, name: name, a: av, b: bv, delta: d,
			flagged: math.Abs(d) > threshold,
		})
	}
	add("run", "wall_seconds", a.WallSeconds, b.WallSeconds)

	aPhases := map[string]telemetry.SpanStat{}
	for _, p := range a.Phases {
		aPhases[p.Name] = p
	}
	bPhases := map[string]telemetry.SpanStat{}
	for _, p := range b.Phases {
		bPhases[p.Name] = p
	}
	for _, name := range sortedKeys(aPhases, bPhases) {
		add("phase_us", name, aPhases[name].TotalUS, bPhases[name].TotalUS)
	}
	for _, name := range sortedKeys(a.Metrics.Counters, b.Metrics.Counters) {
		add("counter", name, float64(a.Metrics.Counters[name]), float64(b.Metrics.Counters[name]))
	}
	for _, name := range sortedKeys(a.Metrics.Gauges, b.Metrics.Gauges) {
		add("gauge", name, a.Metrics.Gauges[name], b.Metrics.Gauges[name])
	}
	hmean := func(h telemetry.HistogramSnapshot) float64 {
		if h.Count == 0 {
			return 0
		}
		return h.Sum / float64(h.Count)
	}
	for _, name := range sortedKeys(a.Metrics.Histograms, b.Metrics.Histograms) {
		ah, bh := a.Metrics.Histograms[name], b.Metrics.Histograms[name]
		add("hist_count", name, float64(ah.Count), float64(bh.Count))
		add("hist_mean", name, hmean(ah), hmean(bh))
	}
	return rows
}

// sortedKeys returns the sorted union of both maps' keys.
func sortedKeys[V any](a, b map[string]V) []string {
	seen := map[string]bool{}
	for k := range a {
		seen[k] = true
	}
	for k := range b {
		seen[k] = true
	}
	keys := make([]string, 0, len(seen))
	for k := range seen {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func runDiff(w io.Writer, aPath, bPath string, threshold float64) (flagged int, err error) {
	a, err := telemetry.LoadManifest(aPath)
	if err != nil {
		return 0, err
	}
	b, err := telemetry.LoadManifest(bPath)
	if err != nil {
		return 0, err
	}
	if a.ConfigHash != "" && b.ConfigHash != "" && a.ConfigHash != b.ConfigHash {
		fmt.Fprintf(w, "note: config hashes differ (%s vs %s) — the runs simulated different workloads\n\n",
			a.ConfigHash, b.ConfigHash)
	}
	rows := diffManifests(a, b, threshold)
	tab := &report.Table{
		Title:   fmt.Sprintf("Manifest diff: %s -> %s (threshold %.0f%%)", aPath, bPath, threshold*100),
		Headers: []string{"Kind", "Series", "A", "B", "Delta", ""},
	}
	for _, r := range rows {
		if r.a == 0 && r.b == 0 {
			continue // nothing to say about an all-zero series
		}
		mark := ""
		if r.flagged {
			mark = "!"
			flagged++
		}
		tab.AddRow(r.kind, r.name,
			fmt.Sprintf("%.6g", r.a), fmt.Sprintf("%.6g", r.b),
			formatDelta(r.delta), mark)
	}
	if err := tab.Render(w); err != nil {
		return 0, err
	}
	fmt.Fprintf(w, "\n%d series beyond the ±%.0f%% threshold\n", flagged, threshold*100)
	return flagged, nil
}

func formatDelta(d float64) string {
	if math.IsInf(d, +1) {
		return "new"
	}
	if math.IsInf(d, -1) {
		return "gone"
	}
	return fmt.Sprintf("%+.1f%%", d*100)
}
