package main

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mnsim/internal/circuit"
	"mnsim/internal/device"
	"mnsim/internal/telemetry"
)

// writeTracedJournal produces a real journal the way a traced DSE run would:
// a root span, a keyed candidate span, one journaled solve under it, and the
// candidate_eval event stamped with the candidate span's IDs.
func writeTracedJournal(t *testing.T) (path, candidate string) {
	t.Helper()
	j := telemetry.DefaultJournal()
	path = filepath.Join(t.TempDir(), "journal.jsonl")
	if err := j.Open(path); err != nil {
		t.Fatal(err)
	}
	telemetry.SetTraceSeed(7)
	telemetry.EnableTraceEvents(1 << 10)
	t.Cleanup(func() {
		j.Close()
		j.Reset()
		telemetry.DefaultTracer().ResetTraceEvents()
	})

	candidate = "cand-4x4@45"
	ctx, root := telemetry.StartSpan(context.Background(), "run")
	cctx, cs := telemetry.StartSpanKeyed(ctx, "candidate", candidate)
	dev := device.RRAM()
	r := make([][]float64, 4)
	for i := range r {
		r[i] = make([]float64, 4)
		for k := range r[i] {
			r[i][k] = 150e3
		}
	}
	c := &circuit.Crossbar{M: 4, N: 4, R: r, WireR: 0.5, RSense: 1500, Dev: dev}
	if _, err := c.SolveContext(cctx, []float64{0.3, 0.2, 0.1, 0.3}, circuit.SolveOptions{}); err != nil {
		t.Fatal(err)
	}
	telemetry.EmitEventCtx(cctx, telemetry.EvCandidateEval, candidate,
		map[string]any{"outcome": "ok", "eval_us": 12.0})
	cs.End()
	root.End()
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	return path, candidate
}

func runCmd(t *testing.T, args ...string) string {
	t.Helper()
	var sb strings.Builder
	if err := run(&sb, args); err != nil {
		t.Fatalf("mnsim-journal %v: %v\noutput:\n%s", args, err, sb.String())
	}
	return sb.String()
}

func TestSummarize(t *testing.T) {
	path, _ := writeTracedJournal(t)
	out := runCmd(t, "summarize", path)
	for _, want := range []string{
		"schema v2",
		"span",                        // event-type table includes span events
		"run/candidate/circuit.solve", // span-phase aggregate path
		"Solves: 1 total, 1 ok",
		"Candidates: 1 ok",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("summarize output missing %q:\n%s", want, out)
		}
	}
}

func TestSlowest(t *testing.T) {
	path, _ := writeTracedJournal(t)
	out := runCmd(t, "slowest", "-n", "3", path)
	if !strings.Contains(out, "Slowest 1 of 1 solves") {
		t.Fatalf("slowest header wrong:\n%s", out)
	}
	// The cost-model breakdown columns must be populated (cg_loop dominates
	// any real solve, so at least one percentage column is non-dash).
	if strings.Count(out, "-") >= 5 && !strings.Contains(out, "CG%") {
		t.Fatalf("cost breakdown missing:\n%s", out)
	}
}

// writeResourceJournal produces a journal carrying resource_sample events
// bracketing a journaled solve, plus one mem_pressure event — the shape a
// run with -resource-interval and -mem-soft-limit leaves behind.
func writeResourceJournal(t *testing.T) string {
	t.Helper()
	j := telemetry.DefaultJournal()
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	if err := j.Open(path); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		j.Close()
		j.Reset()
	})
	sample := func(heap, allocB, allocO, cycles uint64, gor int64) {
		telemetry.EmitEvent(telemetry.EvResourceSample, "", map[string]any{
			"heap_live_bytes":      heap,
			"heap_goal_bytes":      heap * 2,
			"total_alloc_bytes":    allocB,
			"total_alloc_objects":  allocO,
			"goroutines":           gor,
			"gc_cycles":            cycles,
			"gc_pause_total_ns":    int64(cycles) * 50_000,
			"gc_cpu_fraction":      0.01,
			"sched_latency_p99_us": 120.0,
		})
	}
	sample(10<<20, 100<<20, 1000, 3, 4)
	dev := device.RRAM()
	r := make([][]float64, 4)
	for i := range r {
		r[i] = make([]float64, 4)
		for k := range r[i] {
			r[i][k] = 150e3
		}
	}
	c := &circuit.Crossbar{M: 4, N: 4, R: r, WireR: 0.5, RSense: 1500, Dev: dev}
	if _, err := c.Solve([]float64{0.3, 0.2, 0.1, 0.3}, circuit.SolveOptions{}); err != nil {
		t.Fatal(err)
	}
	sample(48<<20, 180<<20, 2500, 7, 9)
	telemetry.EmitEvent(telemetry.EvMemPressure, "", map[string]any{
		"heap_live_bytes": uint64(48 << 20),
		"limit_bytes":     uint64(32 << 20),
		"heap_profile":    "heap-pressure-1.pprof",
	})
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestResources(t *testing.T) {
	path := writeResourceJournal(t)
	out := runCmd(t, "resources", "-n", "2", path)
	for _, want := range []string{
		"Resource samples",
		"Peak live heap",
		"48.0 MiB",                // peak of the two samples
		"80.0 MiB (1500 objects)", // run-scoped alloc delta
		"Mem pressure events",
		"Slowest 1 solves vs runtime state",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("resources output missing %q:\n%s", want, out)
		}
	}
	// The correlation row must attribute the in-window GC cycles (7-3=4)
	// and peak heap to the solve.
	if !strings.Contains(out, "4") {
		t.Fatalf("correlation table missing GC delta:\n%s", out)
	}
}

func TestResourcesNoSamples(t *testing.T) {
	path, _ := writeTracedJournal(t)
	var sb strings.Builder
	err := run(&sb, []string{"resources", path})
	if err == nil || !strings.Contains(err.Error(), "no resource_sample events") {
		t.Fatalf("want no-samples error, got %v", err)
	}
}

func TestOutliersHealthyRun(t *testing.T) {
	path, _ := writeTracedJournal(t)
	out := runCmd(t, "outliers", path)
	if !strings.Contains(out, "no outliers") {
		t.Fatalf("healthy run should report no outliers:\n%s", out)
	}
}

func TestTimeline(t *testing.T) {
	path, cand := writeTracedJournal(t)
	out := runCmd(t, "timeline", cand, path)
	for _, want := range []string{
		"candidate " + cand,
		"[span] circuit.solve",
		"[span] newton",
		"solve_end",
		"candidate_eval " + cand,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("timeline missing %q:\n%s", want, out)
		}
	}
}

func TestTimelineUnknownCandidate(t *testing.T) {
	path, cand := writeTracedJournal(t)
	var sb strings.Builder
	err := run(&sb, []string{"timeline", "no-such-candidate", path})
	if err == nil || !strings.Contains(err.Error(), cand) {
		t.Fatalf("unknown candidate should list known ones, got %v", err)
	}
}

func TestExport(t *testing.T) {
	path, _ := writeTracedJournal(t)
	out := filepath.Join(t.TempDir(), "trace.json")
	runCmd(t, "export", "-o", out, path)
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("exported trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) < 3 {
		t.Fatalf("expected run/candidate/solve spans at least, got %d events", len(doc.TraceEvents))
	}
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" {
			t.Fatalf("event %q has phase %q, want complete-event X", ev.Name, ev.Ph)
		}
		if ev.Args["trace_id"] == "" {
			t.Fatalf("event %q missing trace_id arg", ev.Name)
		}
	}
}

func TestRefusesNewerSchema(t *testing.T) {
	path := filepath.Join(t.TempDir(), "future.jsonl")
	line := `{"seq":0,"t_ns":1,"type":"journal","id":"","data":{"schema_version":99,"tool":"mnsim-future"}}` + "\n"
	if err := os.WriteFile(path, []byte(line), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, sub := range [][]string{
		{"summarize", path},
		{"slowest", path},
		{"outliers", path},
		{"timeline", "x", path},
		{"export", "-o", filepath.Join(t.TempDir(), "t.json"), path},
	} {
		var sb strings.Builder
		err := run(&sb, sub)
		if err == nil {
			t.Fatalf("%v accepted a schema-99 journal", sub)
		}
		if !strings.Contains(err.Error(), "schema version 99") {
			t.Fatalf("%v error not schema-version-specific: %v", sub, err)
		}
	}
}

func TestUsage(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, nil); err == nil || !strings.Contains(err.Error(), "usage:") {
		t.Fatalf("no-args should print usage, got %v", err)
	}
	if err := run(&sb, []string{"bogus"}); err == nil || !strings.Contains(err.Error(), "usage:") {
		t.Fatalf("unknown subcommand should print usage, got %v", err)
	}
}
