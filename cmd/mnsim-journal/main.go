// Command mnsim-journal analyzes flight-recorder journals (-journal on any
// mnsim CLI): per-event and per-span statistics, the slowest solves with
// their cost-model breakdown, convergence outliers, per-candidate causal
// timelines, and post-hoc conversion of any journaled run into a Chrome
// trace-event file for Perfetto.
//
// Usage:
//
//	mnsim-journal summarize run.jsonl              # per-type / per-span stats
//	mnsim-journal slowest -n 5 run.jsonl           # slowest solves + cost breakdown
//	mnsim-journal outliers run.jsonl               # stagnated / decay-anomalous solves
//	mnsim-journal resources run.jsonl              # resource samples + spike/solve correlation
//	mnsim-journal timeline cand-64x16@45 run.jsonl # one candidate's causal chain
//	mnsim-journal export -o trace.json run.jsonl   # journal -> Chrome trace events
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"mnsim/internal/report"
	"mnsim/internal/telemetry"
)

func main() {
	if err := run(os.Stdout, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "mnsim-journal:", err)
		os.Exit(1)
	}
}

func usage() error {
	return fmt.Errorf(`usage:
  mnsim-journal summarize <journal.jsonl>
  mnsim-journal slowest [-n 10] <journal.jsonl>
  mnsim-journal outliers <journal.jsonl>
  mnsim-journal resources [-n 5] <journal.jsonl>
  mnsim-journal timeline <candidate-id> <journal.jsonl>
  mnsim-journal export [-o trace.json] <journal.jsonl>`)
}

func run(w io.Writer, args []string) error {
	if len(args) < 1 {
		return usage()
	}
	cmd, rest := args[0], args[1:]
	switch cmd {
	case "summarize":
		if len(rest) != 1 {
			return usage()
		}
		return summarize(w, rest[0])
	case "slowest":
		fs := flag.NewFlagSet("slowest", flag.ContinueOnError)
		n := fs.Int("n", 10, "how many solves to list")
		if err := fs.Parse(rest); err != nil {
			return err
		}
		if fs.NArg() != 1 {
			return usage()
		}
		return slowest(w, fs.Arg(0), *n)
	case "outliers":
		if len(rest) != 1 {
			return usage()
		}
		return outliers(w, rest[0])
	case "resources":
		fs := flag.NewFlagSet("resources", flag.ContinueOnError)
		n := fs.Int("n", 5, "how many slow solves to correlate against resource spikes")
		if err := fs.Parse(rest); err != nil {
			return err
		}
		if fs.NArg() != 1 {
			return usage()
		}
		return resources(w, fs.Arg(0), *n)
	case "timeline":
		if len(rest) != 2 {
			return usage()
		}
		return timeline(w, rest[1], rest[0])
	case "export":
		fs := flag.NewFlagSet("export", flag.ContinueOnError)
		out := fs.String("o", "trace.json", "output Chrome trace-event file")
		if err := fs.Parse(rest); err != nil {
			return err
		}
		if fs.NArg() != 1 {
			return usage()
		}
		return export(w, fs.Arg(0), *out)
	default:
		return usage()
	}
}

// load reads a journal; a SchemaVersionError passes through untouched so
// main prints its self-explanatory message.
func load(path string) ([]telemetry.Event, error) {
	return telemetry.ReadJournalFile(path)
}

// --- summarize --------------------------------------------------------------

func summarize(w io.Writer, path string) error {
	events, err := load(path)
	if err != nil {
		return err
	}
	if len(events) == 0 {
		return fmt.Errorf("%s: empty journal", path)
	}
	schema := "?"
	if v, ok := events[0].Data["schema_version"].(float64); ok {
		schema = fmt.Sprintf("%d", int(v))
	}
	wallMS := float64(events[len(events)-1].TNS-events[0].TNS) / 1e6
	fmt.Fprintf(w, "%s: %d events, schema v%s, %.1f ms span\n\n", path, len(events), schema, wallMS)

	byType := map[telemetry.EventType]int{}
	for _, ev := range events {
		byType[ev.Type]++
	}
	types := make([]string, 0, len(byType))
	for t := range byType {
		types = append(types, string(t))
	}
	sort.Strings(types)
	tt := &report.Table{Title: "Events by type", Headers: []string{"Type", "Count"}}
	for _, t := range types {
		tt.AddRow(t, byType[telemetry.EventType(t)])
	}
	if err := tt.Render(w); err != nil {
		return err
	}

	// Per-span-path wall-time aggregates, rebuilt from the journaled span
	// events — the post-hoc equivalent of the live /trace endpoint.
	type agg struct {
		count               int
		total, minUS, maxUS float64
	}
	spans := map[string]*agg{}
	for _, r := range telemetry.SpanRecordsFromEvents(events) {
		us := float64(r.DurNS) / 1e3
		a := spans[r.Path]
		if a == nil {
			a = &agg{minUS: us, maxUS: us}
			spans[r.Path] = a
		}
		a.count++
		a.total += us
		if us < a.minUS {
			a.minUS = us
		}
		if us > a.maxUS {
			a.maxUS = us
		}
	}
	if len(spans) > 0 {
		paths := make([]string, 0, len(spans))
		for p := range spans {
			paths = append(paths, p)
		}
		sort.Strings(paths)
		st := &report.Table{Title: "Span phases", Headers: []string{"Path", "Count", "Total (ms)", "Avg (us)", "Max (us)"}}
		for _, p := range paths {
			a := spans[p]
			st.AddRow(p, a.count, fmt.Sprintf("%.2f", a.total/1e3),
				fmt.Sprintf("%.1f", a.total/float64(a.count)), fmt.Sprintf("%.1f", a.maxUS))
		}
		fmt.Fprintln(w)
		if err := st.Render(w); err != nil {
			return err
		}
	}

	if solves := solveEnds(events); len(solves) > 0 {
		ok, stagnated := 0, 0
		var newton, cg, flops float64
		for _, s := range solves {
			if s.ok {
				ok++
			}
			if s.stagnated {
				stagnated++
			}
			newton += s.newton
			cg += s.cg
			flops += s.flops
		}
		fmt.Fprintf(w, "\nSolves: %d total, %d ok, %d failed, %d stagnated; %.0f Newton / %.0f CG iters, %.3g flops\n",
			len(solves), ok, len(solves)-ok, stagnated, newton, cg, flops)
	}

	if cands := candidateOutcomes(events); len(cands) > 0 {
		keys := make([]string, 0, len(cands))
		for k := range cands {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		parts := make([]string, 0, len(keys))
		for _, k := range keys {
			parts = append(parts, fmt.Sprintf("%d %s", cands[k], k))
		}
		fmt.Fprintf(w, "Candidates: %s\n", strings.Join(parts, ", "))
	}
	return nil
}

func candidateOutcomes(events []telemetry.Event) map[string]int {
	out := map[string]int{}
	for _, ev := range events {
		if ev.Type != telemetry.EvCandidateEval {
			continue
		}
		o, _ := ev.Data["outcome"].(string)
		if o == "" {
			o = "unknown"
		}
		out[o]++
	}
	return out
}

// --- solve extraction -------------------------------------------------------

// solveEnd is one solve_end event flattened for analysis.
type solveEnd struct {
	id                string
	ok                bool
	durUS             float64
	newton, cg, flops float64
	decay             float64
	stagnated         bool
	precond           string
	warm, cacheHit    bool
	errMsg            string
	spanID            string
	cost              map[string]float64 // phase -> flops
}

func solveEnds(events []telemetry.Event) []solveEnd {
	var out []solveEnd
	for _, ev := range events {
		if ev.Type != telemetry.EvSolveEnd {
			continue
		}
		s := solveEnd{id: ev.ID}
		s.ok, _ = ev.Data["ok"].(bool)
		s.durUS, _ = ev.Data["dur_us"].(float64)
		s.newton, _ = ev.Data["newton_iters"].(float64)
		s.cg, _ = ev.Data["cg_iters"].(float64)
		s.flops, _ = ev.Data["flops"].(float64)
		s.decay, _ = ev.Data["decay_rate"].(float64)
		s.stagnated, _ = ev.Data["stagnated"].(bool)
		s.precond, _ = ev.Data["precond"].(string)
		s.warm, _ = ev.Data["warm_start"].(bool)
		s.cacheHit, _ = ev.Data["cache_hit"].(bool)
		s.errMsg, _ = ev.Data["err"].(string)
		s.spanID, _ = ev.Data["span_id"].(string)
		if cost, ok := ev.Data["cost"].(map[string]any); ok {
			s.cost = map[string]float64{}
			for phase, v := range cost {
				if m, ok := v.(map[string]any); ok {
					f, _ := m["flops"].(float64)
					s.cost[phase] = f
				}
			}
		}
		out = append(out, s)
	}
	return out
}

// costPhases is the cost-model breakdown column order.
var costPhases = []string{"assembly", "newton_update", "cg_loop", "precond", "diagnostics"}

// --- slowest ----------------------------------------------------------------

func slowest(w io.Writer, path string, n int) error {
	events, err := load(path)
	if err != nil {
		return err
	}
	solves := solveEnds(events)
	if len(solves) == 0 {
		return fmt.Errorf("%s: no solve_end events", path)
	}
	sort.SliceStable(solves, func(i, j int) bool { return solves[i].durUS > solves[j].durUS })
	if n > len(solves) {
		n = len(solves)
	}
	t := &report.Table{
		Title: fmt.Sprintf("Slowest %d of %d solves", n, len(solves)),
		Headers: []string{"Solve", "Dur (us)", "OK", "Newton", "CG", "Flops",
			"Asm%", "NU%", "CG%", "Pre%", "Diag%"},
	}
	for _, s := range solves[:n] {
		row := []any{s.id, fmt.Sprintf("%.1f", s.durUS), s.ok,
			int(s.newton), int(s.cg), fmt.Sprintf("%.3g", s.flops)}
		total := 0.0
		for _, p := range costPhases {
			total += s.cost[p]
		}
		for _, p := range costPhases {
			if total > 0 {
				row = append(row, fmt.Sprintf("%.0f", 100*s.cost[p]/total))
			} else {
				row = append(row, "-")
			}
		}
		t.AddRow(row...)
	}
	return t.Render(w)
}

// --- outliers ---------------------------------------------------------------

func outliers(w io.Writer, path string) error {
	events, err := load(path)
	if err != nil {
		return err
	}
	solves := solveEnds(events)
	if len(solves) == 0 {
		return fmt.Errorf("%s: no solve_end events", path)
	}
	t := &report.Table{
		Title:   "Convergence outliers",
		Headers: []string{"Solve", "Reason", "Decay", "Newton", "CG", "Dur (us)"},
	}
	found := 0
	for _, s := range solves {
		var reasons []string
		if !s.ok {
			reasons = append(reasons, "failed")
		}
		if s.stagnated {
			reasons = append(reasons, "stagnated")
		}
		// A healthy Newton trajectory contracts well below 1; at or above
		// the solver's own stagnation ratio (0.9) the solve is burning
		// iterations without progress even if it eventually converged.
		if s.decay >= 0.9 {
			reasons = append(reasons, "slow-decay")
		}
		if len(reasons) == 0 {
			continue
		}
		found++
		t.AddRow(s.id, strings.Join(reasons, "+"), fmt.Sprintf("%.3f", s.decay),
			int(s.newton), int(s.cg), fmt.Sprintf("%.1f", s.durUS))
	}
	if found == 0 {
		fmt.Fprintf(w, "%d solves, no outliers (no failures, no stagnation, decay rates < 0.9)\n", len(solves))
		return nil
	}
	return t.Render(w)
}

// --- resources --------------------------------------------------------------

// resSample is one resource_sample event flattened for analysis.
type resSample struct {
	tns        int64
	heapLive   uint64
	heapGoal   uint64
	allocB     uint64
	allocO     uint64
	goroutines int64
	gcCycles   uint64
	gcPauseNS  int64
	gcFrac     float64
	schedP99US float64
}

func resourceSamples(events []telemetry.Event) []resSample {
	var out []resSample
	u64 := func(d map[string]any, k string) uint64 {
		f, _ := d[k].(float64)
		if f < 0 {
			return 0
		}
		return uint64(f)
	}
	for _, ev := range events {
		if ev.Type != telemetry.EvResourceSample {
			continue
		}
		s := resSample{tns: ev.TNS}
		s.heapLive = u64(ev.Data, "heap_live_bytes")
		s.heapGoal = u64(ev.Data, "heap_goal_bytes")
		s.allocB = u64(ev.Data, "total_alloc_bytes")
		s.allocO = u64(ev.Data, "total_alloc_objects")
		s.goroutines = int64(u64(ev.Data, "goroutines"))
		s.gcCycles = u64(ev.Data, "gc_cycles")
		s.gcPauseNS = int64(u64(ev.Data, "gc_pause_total_ns"))
		s.gcFrac, _ = ev.Data["gc_cpu_fraction"].(float64)
		s.schedP99US, _ = ev.Data["sched_latency_p99_us"].(float64)
		out = append(out, s)
	}
	return out
}

// resources summarizes the resource_sample stream — peaks, run-scoped
// allocation/GC deltas, pressure and stall counts — then correlates the
// slowest solves with the runtime state around them: for each of the top-n
// solves, the peak live heap and the GC cycles retired inside the solve's
// wall-clock window. A solve that is slow *and* coincides with a heap spike
// or a GC burst is memory-bound, not math-bound.
func resources(w io.Writer, path string, n int) error {
	events, err := load(path)
	if err != nil {
		return err
	}
	samples := resourceSamples(events)
	if len(samples) == 0 {
		return fmt.Errorf("%s: no resource_sample events (run with -resource-interval)", path)
	}
	first, last := samples[0], samples[len(samples)-1]
	var peakHeap uint64
	var maxGoroutines int64
	var maxSchedP99 float64
	for _, s := range samples {
		if s.heapLive > peakHeap {
			peakHeap = s.heapLive
		}
		if s.goroutines > maxGoroutines {
			maxGoroutines = s.goroutines
		}
		if s.schedP99US > maxSchedP99 {
			maxSchedP99 = s.schedP99US
		}
	}
	pressures, stalls := 0, 0
	for _, ev := range events {
		switch ev.Type {
		case telemetry.EvMemPressure:
			pressures++
		case telemetry.EvWatchdogStall:
			stalls++
		}
	}
	spanMS := float64(last.tns-first.tns) / 1e6
	t := &report.Table{Title: "Resource samples", Headers: []string{"Metric", "Value"}}
	t.AddRow("Samples", len(samples))
	t.AddRow("Span", fmt.Sprintf("%.1f ms", spanMS))
	t.AddRow("Peak live heap", telemetry.FormatByteSize(peakHeap))
	t.AddRow("Final heap goal", telemetry.FormatByteSize(last.heapGoal))
	t.AddRow("Max goroutines", maxGoroutines)
	t.AddRow("Allocated", fmt.Sprintf("%s (%d objects)",
		telemetry.FormatByteSize(last.allocB-first.allocB), last.allocO-first.allocO))
	t.AddRow("GC cycles", last.gcCycles-first.gcCycles)
	t.AddRow("GC pause", fmt.Sprintf("%.3f ms", float64(last.gcPauseNS-first.gcPauseNS)/1e6))
	t.AddRow("GC CPU fraction", fmt.Sprintf("%.4f", last.gcFrac))
	t.AddRow("Max sched p99", fmt.Sprintf("%.1f us", maxSchedP99))
	t.AddRow("Mem pressure events", pressures)
	t.AddRow("Watchdog stalls", stalls)
	if err := t.Render(w); err != nil {
		return err
	}

	solves := solveEnds(events)
	if len(solves) == 0 {
		return nil
	}
	// Attach end times: solveEnds drops the envelope TNS, so re-walk.
	endTNS := map[string]int64{}
	for _, ev := range events {
		if ev.Type == telemetry.EvSolveEnd {
			endTNS[ev.ID] = ev.TNS
		}
	}
	sort.SliceStable(solves, func(i, j int) bool { return solves[i].durUS > solves[j].durUS })
	if n > len(solves) {
		n = len(solves)
	}
	ct := &report.Table{
		Title:   fmt.Sprintf("Slowest %d solves vs runtime state", n),
		Headers: []string{"Solve", "Dur (us)", "Heap in window", "GC cycles", "Goroutines"},
	}
	for _, s := range solves[:n] {
		end := endTNS[s.id]
		start := end - int64(s.durUS*1e3)
		// Samples inside the solve window, widened to the bracketing samples
		// so short solves between two ticks still get runtime context.
		lo := sort.Search(len(samples), func(i int) bool { return samples[i].tns >= start })
		hi := sort.Search(len(samples), func(i int) bool { return samples[i].tns > end })
		if lo > 0 {
			lo--
		}
		if hi >= len(samples) {
			hi = len(samples) - 1
		}
		var heap uint64
		var gor int64
		for _, smp := range samples[lo : hi+1] {
			if smp.heapLive > heap {
				heap = smp.heapLive
			}
			if smp.goroutines > gor {
				gor = smp.goroutines
			}
		}
		cycles := samples[hi].gcCycles - samples[lo].gcCycles
		ct.AddRow(s.id, fmt.Sprintf("%.1f", s.durUS), telemetry.FormatByteSize(heap), cycles, gor)
	}
	fmt.Fprintln(w)
	return ct.Render(w)
}

// --- timeline ---------------------------------------------------------------

// timeline reconstructs one candidate's causal chain: the candidate span,
// every descendant span (solves and their phases), and every event stamped
// with a span ID inside that subtree, in chronological order.
func timeline(w io.Writer, path, candidate string) error {
	events, err := load(path)
	if err != nil {
		return err
	}
	// The candidate_eval event names the candidate; its span_id stamp roots
	// the subtree.
	rootID := ""
	for _, ev := range events {
		if ev.Type == telemetry.EvCandidateEval && ev.ID == candidate {
			rootID, _ = ev.Data["span_id"].(string)
			break
		}
	}
	if rootID == "" {
		var known []string
		for _, ev := range events {
			if ev.Type == telemetry.EvCandidateEval {
				known = append(known, ev.ID)
			}
		}
		if len(known) == 0 {
			return fmt.Errorf("%s: no candidate_eval events (not a DSE journal, or recorded before schema v2)", path)
		}
		sort.Strings(known)
		return fmt.Errorf("%s: no candidate %q; journal has: %s", path, candidate, strings.Join(known, ", "))
	}
	recs := telemetry.SpanRecordsFromEvents(events)
	byID := map[string]telemetry.SpanRecord{}
	children := map[string][]string{}
	for _, r := range recs {
		id := telemetry.FormatID(r.SpanID)
		byID[id] = r
		if r.ParentID != 0 {
			p := telemetry.FormatID(r.ParentID)
			children[p] = append(children[p], id)
		}
	}
	root, ok := byID[rootID]
	if !ok {
		return fmt.Errorf("%s: candidate %s has span %s but no span event (journal truncated?)", path, candidate, rootID)
	}
	// Collect the subtree.
	inTree := map[string]bool{rootID: true}
	queue := []string{rootID}
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		kids := children[id]
		sort.Slice(kids, func(i, j int) bool { return byID[kids[i]].StartNS < byID[kids[j]].StartNS })
		for _, k := range kids {
			if !inTree[k] {
				inTree[k] = true
				queue = append(queue, k)
			}
		}
	}
	fmt.Fprintf(w, "candidate %s  trace %s  span %s  %.2f ms\n",
		candidate, telemetry.FormatID(root.TraceID), rootID, float64(root.DurNS)/1e6)
	// One chronological listing: spans open at their start time, events at
	// their envelope time, all relative to the candidate start.
	type line struct {
		tns   int64
		depth int
		text  string
	}
	var lines []line
	var depthOf func(id string) int
	depthOf = func(id string) int {
		r := byID[id]
		p := telemetry.FormatID(r.ParentID)
		if r.ParentID == 0 || !inTree[p] {
			return 0
		}
		return 1 + depthOf(p)
	}
	for id := range inTree {
		r := byID[id]
		lines = append(lines, line{
			tns:   r.StartNS,
			depth: depthOf(id),
			text:  fmt.Sprintf("[span] %-24s %10.1f us", r.Name, float64(r.DurNS)/1e3),
		})
	}
	for _, ev := range events {
		if ev.Type == telemetry.EvSpan {
			continue
		}
		sid, _ := ev.Data["span_id"].(string)
		if !inTree[sid] {
			continue
		}
		text := fmt.Sprintf("%s %s", ev.Type, ev.ID)
		switch ev.Type {
		case telemetry.EvNewtonIter:
			text = fmt.Sprintf("%s %s iter=%v cg=%v max_dv=%v", ev.Type, ev.ID,
				ev.Data["iter"], ev.Data["cg_iters"], ev.Data["max_dv"])
		case telemetry.EvSolveEnd:
			text = fmt.Sprintf("%s %s ok=%v newton=%v cg=%v", ev.Type, ev.ID,
				ev.Data["ok"], ev.Data["newton_iters"], ev.Data["cg_iters"])
		case telemetry.EvCandidateEval:
			text = fmt.Sprintf("%s %s outcome=%v", ev.Type, ev.ID, ev.Data["outcome"])
		}
		lines = append(lines, line{tns: ev.TNS, depth: depthOf(sid) + 1, text: text})
	}
	sort.SliceStable(lines, func(i, j int) bool { return lines[i].tns < lines[j].tns })
	t0 := root.StartNS
	for _, l := range lines {
		fmt.Fprintf(w, "%10.1f us  %s%s\n", float64(l.tns-t0)/1e3, strings.Repeat("  ", l.depth), l.text)
	}
	return nil
}

// --- export -----------------------------------------------------------------

func export(w io.Writer, path, out string) error {
	events, err := load(path)
	if err != nil {
		return err
	}
	recs := telemetry.SpanRecordsFromEvents(events)
	if len(recs) == 0 {
		return fmt.Errorf("%s: no span events to export (recorded before schema v2, or tracing was off)", path)
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	werr := telemetry.WriteTraceEventsTo(f, recs)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return werr
	}
	fmt.Fprintf(w, "exported %d spans to %s (open in Perfetto or chrome://tracing)\n", len(recs), out)
	return nil
}
