// Command mnsim-replay re-runs a solve captured by the flight recorder and
// asserts the recorded outcome is reproduced bit for bit. It accepts a
// snapshot file written next to a journal (-journal on any mnsim CLI) or a
// journal .jsonl, in which case every snapshot the journal references is
// replayed in order.
//
// Usage:
//
//	mnsim-replay run.jsonl.snap-1.divergence.json         # replay one snapshot
//	mnsim-replay -v run.jsonl                             # replay a whole journal, verbose
//	mnsim-replay -sp out.sp snap.json                     # also emit the SPICE netlist
//	mnsim-replay -force-divergence -journal run.jsonl     # capture a known-bad solve
//
// -force-divergence runs a deliberately pathological solve (a sinh device
// too steep for Newton) under the flight recorder and prints the snapshot
// path it captured — the self-test for the record-then-replay loop, and a
// ready-made specimen for the EXPERIMENTS.md walkthrough. Exit status is 0
// only when every replayed snapshot reproduces bit-identically.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"

	"mnsim/internal/circuit"
	"mnsim/internal/device"
	"mnsim/internal/replay"
	"mnsim/internal/telemetry"
)

func main() {
	verbose := flag.Bool("v", false, "print per-iteration diagnostics of the re-run")
	spOut := flag.String("sp", "", "also write the snapshot's crossbar as a SPICE netlist to this file")
	journal := flag.String("journal", "", "record this replay's own flight-recorder journal (JSONL) to this file")
	force := flag.Bool("force-divergence", false, "run a deliberately diverging solve under the recorder and print the captured snapshot path")
	flag.Parse()
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	err := run(ctx, os.Stdout, flag.Arg(0), *spOut, *journal, *force, *verbose)
	if cerr := telemetry.DefaultJournal().Close(); err == nil {
		err = cerr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "mnsim-replay:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, w io.Writer, path, spOut, journal string, force, verbose bool) error {
	if journal != "" {
		j := telemetry.DefaultJournal()
		if err := j.Open(journal); err != nil {
			return err
		}
		j.SetMeta("mnsim-replay", nil)
	}
	if force {
		return forceDivergence(ctx, w, journal)
	}
	if path == "" {
		return fmt.Errorf("usage: mnsim-replay [-v] [-sp out.sp] <snapshot.json | journal.jsonl> (or -force-divergence -journal out.jsonl)")
	}
	if spOut != "" {
		if err := writeNetlist(path, spOut); err != nil {
			return fmt.Errorf("-sp needs a snapshot file: %w", err)
		}
		fmt.Fprintf(w, "replay: netlist written to %s\n", spOut)
	}
	n, err := replay.File(ctx, path, w, verbose)
	if err != nil {
		// A journal written by a newer mnsim carries its own remedy in the
		// error text; strip any wrapping so it reads as one clean line.
		var sv *telemetry.SchemaVersionError
		if errors.As(err, &sv) {
			return sv
		}
		return err
	}
	fmt.Fprintf(w, "replay: %d snapshot(s) reproduced bit-identically\n", n)
	return nil
}

// forceDivergence runs the known-pathological solve from the solver's own
// failure tests: a sinh I–V law far too steep for Newton to converge. With
// the journal open, the divergence auto-snapshots; the printed path is
// ready to hand back to mnsim-replay.
func forceDivergence(ctx context.Context, w io.Writer, journal string) error {
	if journal == "" {
		return fmt.Errorf("-force-divergence needs -journal: the snapshot is written next to the journal file")
	}
	dev := device.RRAM()
	dev.NonlinearVc = 2e-3
	r := make([][]float64, 2)
	for i := range r {
		r[i] = []float64{100e3, 100e3}
	}
	c := &circuit.Crossbar{M: 2, N: 2, R: r, WireR: 1, RSense: 1500, Dev: dev}
	_, err := c.SolveContext(ctx, []float64{0.3, 0.3}, circuit.SolveOptions{MaxNewton: 5})
	if !errors.Is(err, circuit.ErrNewtonDiverged) {
		return fmt.Errorf("forced solve did not diverge: %v", err)
	}
	// The snapshot path is read back from the journal below, so a failed
	// flush-on-close means the self-test cannot be trusted.
	if cerr := telemetry.DefaultJournal().Close(); cerr != nil {
		return fmt.Errorf("closing journal: %w", cerr)
	}
	events, rerr := telemetry.ReadJournalFile(journal)
	if rerr != nil {
		return rerr
	}
	snaps := telemetry.JournalSnapshotPaths(journal, events)
	if len(snaps) == 0 {
		return fmt.Errorf("forced divergence captured no snapshot in %s", journal)
	}
	fmt.Fprintf(w, "forced divergence captured: %v\n", err)
	// Machine-readable last line: CI and scripts take the snapshot path
	// from here.
	fmt.Fprintln(w, snaps[len(snaps)-1])
	return nil
}

// writeNetlist emits the snapshot's crossbar as a SPICE deck driven by the
// snapshot's input vector.
func writeNetlist(snapPath, out string) (err error) {
	s, err := circuit.LoadSnapshot(snapPath)
	if err != nil {
		return err
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	return s.Crossbar().WriteNetlist(f, s.Vin)
}
