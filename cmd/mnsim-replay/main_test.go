package main

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mnsim/internal/telemetry"
)

// The full CLI loop: -force-divergence captures a snapshot, a second
// invocation replays it bit-identically — the CI smoke in miniature.
func TestForceDivergenceThenReplay(t *testing.T) {
	defer telemetry.DefaultJournal().Reset()
	dir := t.TempDir()
	jp := filepath.Join(dir, "run.jsonl")
	var sb strings.Builder
	if err := run(context.Background(), &sb, "", "", jp, true, false); err != nil {
		t.Fatalf("force-divergence: %v\n%s", err, sb.String())
	}
	lines := strings.Fields(strings.TrimSpace(sb.String()))
	snapPath := lines[len(lines)-1]
	if !strings.HasSuffix(snapPath, ".divergence.json") {
		t.Fatalf("last output token %q is not a divergence snapshot path", snapPath)
	}
	if _, err := os.Stat(snapPath); err != nil {
		t.Fatal(err)
	}
	telemetry.DefaultJournal().Reset()

	var rb strings.Builder
	if err := run(context.Background(), &rb, snapPath, "", "", false, true); err != nil {
		t.Fatalf("replay: %v\n%s", err, rb.String())
	}
	if !strings.Contains(rb.String(), "reproduced bit-identically") {
		t.Fatalf("replay report:\n%s", rb.String())
	}

	// The whole journal replays too.
	var jb strings.Builder
	if err := run(context.Background(), &jb, jp, "", "", false, false); err != nil {
		t.Fatalf("journal replay: %v\n%s", err, jb.String())
	}
	if !strings.Contains(jb.String(), "1 snapshot(s) reproduced bit-identically") {
		t.Fatalf("journal replay report:\n%s", jb.String())
	}
}

// -sp emits the snapshot's crossbar as a SPICE deck.
func TestReplayNetlistOut(t *testing.T) {
	defer telemetry.DefaultJournal().Reset()
	dir := t.TempDir()
	jp := filepath.Join(dir, "run.jsonl")
	var sb strings.Builder
	if err := run(context.Background(), &sb, "", "", jp, true, false); err != nil {
		t.Fatal(err)
	}
	lines := strings.Fields(strings.TrimSpace(sb.String()))
	snapPath := lines[len(lines)-1]
	telemetry.DefaultJournal().Reset()

	sp := filepath.Join(dir, "crossbar.sp")
	var rb strings.Builder
	if err := run(context.Background(), &rb, snapPath, sp, "", false, false); err != nil {
		t.Fatalf("replay -sp: %v\n%s", err, rb.String())
	}
	deck, err := os.ReadFile(sp)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"MNSIM", ".end"} {
		if !strings.Contains(string(deck), want) {
			t.Errorf("netlist missing %q:\n%.300s", want, deck)
		}
	}
}

func TestReplayUsageErrors(t *testing.T) {
	defer telemetry.DefaultJournal().Reset()
	var sb strings.Builder
	if err := run(context.Background(), &sb, "", "", "", false, false); err == nil {
		t.Error("no arguments accepted")
	}
	if err := run(context.Background(), &sb, "", "", "", true, false); err == nil {
		t.Error("-force-divergence without -journal accepted")
	}
	if err := run(context.Background(), &sb, filepath.Join(t.TempDir(), "nope.json"), "", "", false, false); err == nil {
		t.Error("missing snapshot accepted")
	}
}

// A journal from a newer mnsim must be refused with the schema-version
// message, not a cryptic parse failure.
func TestReplayRefusesNewerSchema(t *testing.T) {
	path := filepath.Join(t.TempDir(), "future.jsonl")
	line := `{"seq":0,"t_ns":1,"type":"journal","id":"","data":{"schema_version":99,"tool":"mnsim-future"}}` + "\n"
	if err := os.WriteFile(path, []byte(line), 0o644); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	err := run(context.Background(), &sb, path, "", "", false, false)
	if err == nil {
		t.Fatal("schema-99 journal accepted")
	}
	var sv *telemetry.SchemaVersionError
	if !errors.As(err, &sv) || sv.Version != 99 {
		t.Fatalf("err = %v, want SchemaVersionError{Version: 99}", err)
	}
	if !strings.Contains(err.Error(), "upgrade the reading tool") {
		t.Fatalf("error lacks the remedy: %v", err)
	}
}
