package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: mnsim/internal/circuit
cpu: Test CPU @ 2.00GHz
BenchmarkSolve/16x16-8         	       1	  1200000 ns/op	        12.00 newton-iters/op	       345.0 cg-iters/op
BenchmarkSolve/16x16-8         	       1	  1100000 ns/op	        12.00 newton-iters/op	       340.0 cg-iters/op
BenchmarkSolve/16x16-8         	       1	  1300000 ns/op	        12.00 newton-iters/op	       350.0 cg-iters/op
BenchmarkSolve/64x64-8         	       1	  9000000 ns/op	        14.00 newton-iters/op	       900.0 cg-iters/op
PASS
ok  	mnsim/internal/circuit	0.123s
pkg: mnsim/internal/dse
BenchmarkExplore/workers=4-8   	       1	  5000000 ns/op
PASS
ok  	mnsim/internal/dse	0.456s
`

func TestParseAggregatesMedian(t *testing.T) {
	doc, err := Parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Benchmarks) != 3 {
		t.Fatalf("got %d benchmarks, want 3: %+v", len(doc.Benchmarks), doc.Benchmarks)
	}
	b := doc.Benchmarks[0]
	if b.Name != "BenchmarkSolve/16x16" {
		t.Errorf("name %q: GOMAXPROCS suffix should be stripped", b.Name)
	}
	if b.Runs != 3 {
		t.Errorf("runs = %d, want 3", b.Runs)
	}
	if b.NsPerOp != 1.2e6 {
		t.Errorf("ns/op median = %g, want 1.2e6", b.NsPerOp)
	}
	if got := b.Metrics["newton-iters/op"]; got != 12 {
		t.Errorf("newton-iters/op = %g, want 12", got)
	}
	if got := b.Metrics["cg-iters/op"]; got != 345 {
		t.Errorf("cg-iters/op median = %g, want 345", got)
	}
	// Single-run benchmark without custom metrics.
	e := doc.Benchmarks[2]
	if e.Name != "BenchmarkExplore/workers=4" || e.Runs != 1 || e.NsPerOp != 5e6 {
		t.Errorf("explore bench parsed wrong: %+v", e)
	}
	if e.Metrics != nil {
		t.Errorf("explore bench has unexpected metrics: %v", e.Metrics)
	}
}

func TestParseRejectsEmptyInput(t *testing.T) {
	if _, err := Parse(strings.NewReader("PASS\nok  pkg 0.1s\n")); err == nil {
		t.Error("input without benchmark lines accepted")
	}
}

func TestRunWritesFile(t *testing.T) {
	out := filepath.Join(t.TempDir(), "bench.json")
	if err := run(strings.NewReader(sampleOutput), nil, out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var doc Doc
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, data)
	}
	if doc.GoOS == "" || doc.GoArch == "" || len(doc.Benchmarks) != 3 {
		t.Fatalf("round-trip lost fields: %+v", doc)
	}
}
