// Command mnsim-benchjson converts `go test -bench` text output into a
// stable JSON document for CI artifacts and in-repo baselines (e.g.
// BENCH_pr6.json). It is the original single-purpose front door to the
// benchmark pipeline, kept for script compatibility; it is now a thin
// wrapper over internal/bench and exactly equivalent to
// `mnsim-bench json`, which also offers trend and gate subcommands.
//
// Usage:
//
//	go test -bench 'Solve|Explore' -benchtime=1x -count=3 ./... | mnsim-benchjson -out BENCH_pr6.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"mnsim/internal/bench"
)

// Doc and Bench alias the pipeline document types; the JSON schema is
// owned by internal/bench.
type (
	Doc   = bench.Doc
	Bench = bench.Bench
)

// Parse reads `go test -bench` output and aggregates every benchmark line.
func Parse(r io.Reader) (*Doc, error) { return bench.Parse(r) }

func main() {
	out := flag.String("out", "", "output file (default stdout)")
	flag.Parse()
	err := run(os.Stdin, os.Stdout, *out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mnsim-benchjson:", err)
		os.Exit(1)
	}
}

func run(r io.Reader, defaultOut io.Writer, out string) (err error) {
	doc, err := Parse(r)
	if err != nil {
		return err
	}
	w := defaultOut
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer func() {
			if cerr := f.Close(); cerr != nil && err == nil {
				err = cerr
			}
		}()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
