// Command mnsim-benchjson converts `go test -bench` text output into a
// stable JSON document for CI artifacts and in-repo baselines (e.g.
// BENCH_pr4.json). It parses the standard benchmark line format including
// custom b.ReportMetric units (newton-iters/op, cg-iters/op), aggregates
// repeated -count runs per benchmark, and reports the median of every
// metric so a single noisy run cannot skew the committed baseline.
//
// Usage:
//
//	go test -bench 'Solve|Explore' -benchtime=1x -count=3 ./... | mnsim-benchjson -out BENCH_pr4.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

func main() {
	out := flag.String("out", "", "output file (default stdout)")
	flag.Parse()
	err := run(os.Stdin, os.Stdout, *out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mnsim-benchjson:", err)
		os.Exit(1)
	}
}

func run(r io.Reader, defaultOut io.Writer, out string) (err error) {
	doc, err := Parse(r)
	if err != nil {
		return err
	}
	w := defaultOut
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer func() {
			if cerr := f.Close(); cerr != nil && err == nil {
				err = cerr
			}
		}()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// Bench is the aggregated result of one benchmark across its -count runs.
type Bench struct {
	Name string `json:"name"`
	// Runs is how many result lines were aggregated (the -count value).
	Runs int `json:"runs"`
	// NsPerOp is the median ns/op across runs.
	NsPerOp float64 `json:"ns_per_op"`
	// Metrics holds the median of every other reported unit keyed by its
	// unit string, e.g. "newton-iters/op", "cg-iters/op", "B/op".
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Doc is the output document.
type Doc struct {
	GoOS       string  `json:"goos"`
	GoArch     string  `json:"goarch"`
	Benchmarks []Bench `json:"benchmarks"`
}

// sampleSet accumulates per-unit samples of one benchmark.
type sampleSet struct {
	name    string
	byUnit  map[string][]float64
	numRuns int
}

// Parse reads `go test -bench` output and aggregates every benchmark line.
// Non-benchmark lines (goos/pkg headers, PASS, ok) are ignored.
func Parse(r io.Reader) (*Doc, error) {
	sets := map[string]*sampleSet{}
	var order []string
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// Name, iteration count, then (value, unit) pairs.
		if len(fields) < 4 || (len(fields)-2)%2 != 0 {
			continue
		}
		name := trimProcSuffix(fields[0])
		if _, err := strconv.Atoi(fields[1]); err != nil {
			continue
		}
		set := sets[name]
		if set == nil {
			set = &sampleSet{name: name, byUnit: map[string][]float64{}}
			sets[name] = set
			order = append(order, name)
		}
		parsedAny := false
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchjson: bad value %q in line %q", fields[i], line)
			}
			set.byUnit[fields[i+1]] = append(set.byUnit[fields[i+1]], v)
			parsedAny = true
		}
		if parsedAny {
			set.numRuns++
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(order) == 0 {
		return nil, fmt.Errorf("benchjson: no benchmark lines in input")
	}
	doc := &Doc{GoOS: runtime.GOOS, GoArch: runtime.GOARCH}
	for _, name := range order {
		set := sets[name]
		b := Bench{Name: name, Runs: set.numRuns, Metrics: map[string]float64{}}
		for unit, vals := range set.byUnit {
			m := median(vals)
			if unit == "ns/op" {
				b.NsPerOp = m
			} else {
				b.Metrics[unit] = m
			}
		}
		if len(b.Metrics) == 0 {
			b.Metrics = nil
		}
		doc.Benchmarks = append(doc.Benchmarks, b)
	}
	return doc, nil
}

// trimProcSuffix strips the trailing GOMAXPROCS marker ("-8") go test
// appends to benchmark names, so baselines compare across machines.
func trimProcSuffix(name string) string {
	i := strings.LastIndex(name, "-")
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

func median(vals []float64) float64 {
	s := append([]float64(nil), vals...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}
