// Command mnsim-netlist exports a memristor crossbar as a SPICE netlist for
// external circuit-level simulators (Section IV.A: "MNSIM can generate the
// netlist file for circuit-level simulators like SPICE"). Weights are drawn
// from a seeded uniform level population; inputs are driven at full scale.
//
// Usage:
//
//	mnsim-netlist -size 32 -node 45 [-linear] [-out crossbar.sp]
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"os/signal"

	"mnsim/internal/circuit"
	"mnsim/internal/crossbar"
	"mnsim/internal/device"
	"mnsim/internal/tech"
	"mnsim/internal/telemetry"
)

func main() {
	size := flag.Int("size", 32, "crossbar dimension")
	node := flag.Int("node", 45, "interconnect technology node (nm)")
	model := flag.String("device", "RRAM", "memristor model (RRAM or PCM)")
	linear := flag.Bool("linear", false, "emit linear resistor cells instead of sinh sources")
	out := flag.String("out", "", "output file (default stdout)")
	seed := flag.Int64("seed", 1, "random seed for the weight population")
	tel := telemetry.AddFlags(flag.CommandLine)
	flag.Parse()
	tel.Run.SetTool("mnsim-netlist")
	tel.Run.SetSeed(*seed)
	tel.Run.SetConfigHash(telemetry.HashStrings(
		fmt.Sprintf("size=%d", *size), fmt.Sprintf("node=%d", *node),
		"device="+*model, fmt.Sprintf("linear=%t", *linear)))
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := tel.StartContext(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "mnsim-netlist:", err)
		os.Exit(1)
	}
	err := run(ctx, os.Stdout, *size, *node, *model, *linear, *out, *seed)
	tel.Run.SetError(err)
	if ferr := tel.Finish(); err == nil {
		err = ferr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "mnsim-netlist:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, defaultOut io.Writer, size, node int, model string, linear bool, out string, seed int64) error {
	if size < 1 {
		return fmt.Errorf("invalid size %d", size)
	}
	dev, err := device.ByName(model)
	if err != nil {
		return err
	}
	wire, err := tech.Interconnect(node)
	if err != nil {
		return err
	}
	p := crossbar.New(size, size, dev, wire)
	rng := rand.New(rand.NewSource(seed))
	prog := telemetry.StartPhase("netlist.rows", int64(size))
	defer prog.Finish()
	r := make([][]float64, size)
	for i := range r {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("netlist generation aborted: %w", err)
		}
		prog.Inc()
		r[i] = make([]float64, size)
		for j := range r[i] {
			res, err := dev.LevelResistance(rng.Intn(dev.Levels()))
			if err != nil {
				return err
			}
			r[i][j] = res
		}
	}
	c := &circuit.Crossbar{
		M: size, N: size, R: r,
		WireR: wire.SegmentR, RSense: p.RSense, Dev: dev, Linear: linear,
	}
	vin := make([]float64, size)
	for i := range vin {
		vin[i] = p.VDrive
	}
	w := defaultOut
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return c.WriteNetlist(w, vin)
}
