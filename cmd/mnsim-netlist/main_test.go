package main

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunToWriter(t *testing.T) {
	var sb strings.Builder
	if err := run(context.Background(), &sb, 4, 45, "RRAM", false, "", 1); err != nil {
		t.Fatal(err)
	}
	deck := sb.String()
	for _, want := range []string{"MNSIM-Go crossbar netlist 4x4", "Vin0", "Gcell_3_3", ".end"} {
		if !strings.Contains(deck, want) {
			t.Errorf("deck missing %q", want)
		}
	}
}

func TestRunLinearToFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "xbar.sp")
	var sb strings.Builder
	if err := run(context.Background(), &sb, 3, 28, "PCM", true, path, 2); err != nil {
		t.Fatal(err)
	}
	if sb.Len() != 0 {
		t.Error("file mode should not write to the default writer")
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "Rcell_0_0") {
		t.Error("linear deck missing Rcell elements")
	}
}

func TestRunDeterministicSeed(t *testing.T) {
	var a, b strings.Builder
	if err := run(context.Background(), &a, 4, 45, "RRAM", false, "", 7); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), &b, 4, 45, "RRAM", false, "", 7); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("same seed should reproduce the deck")
	}
}

func TestRunErrors(t *testing.T) {
	var sb strings.Builder
	if err := run(context.Background(), &sb, 0, 45, "RRAM", false, "", 1); err == nil {
		t.Error("size 0 accepted")
	}
	if err := run(context.Background(), &sb, 4, 77, "RRAM", false, "", 1); err == nil {
		t.Error("unknown node accepted")
	}
	if err := run(context.Background(), &sb, 4, 45, "FeFET", false, "", 1); err == nil {
		t.Error("unknown device accepted")
	}
	if err := run(context.Background(), &sb, 4, 45, "RRAM", false, filepath.Join(t.TempDir(), "no", "such", "dir", "x.sp"), 1); err == nil {
		t.Error("unwritable path accepted")
	}
}
