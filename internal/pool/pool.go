// Package pool provides the bounded worker pool shared by the parallel
// sweep engines (design-space exploration, Monte-Carlo sampling, model
// validation). Tasks are index-addressed: the caller writes result i into
// slot i of a preallocated slice, so parallel execution preserves the
// exact sequential output order regardless of completion order.
package pool

import (
	"context"
	"flag"
	"runtime"
	"sync"
)

// Resolve normalizes a worker-count setting: values <= 0 select
// runtime.GOMAXPROCS(0), the scheduler's available parallelism.
func Resolve(workers int) int {
	if workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return workers
}

// AddFlag registers the shared -workers flag on fs and returns the value
// pointer, mirroring how telemetry.AddFlags wires the observability flags.
func AddFlag(fs *flag.FlagSet) *int {
	return fs.Int("workers", 0,
		"worker goroutines for parallel sweeps (0 = GOMAXPROCS)")
}

// Run evaluates n index-addressed tasks on at most workers goroutines
// (normalized through Resolve). Task i receives a context that is
// cancelled as soon as any task returns an error or the caller's ctx is
// cancelled; remaining queued tasks are then skipped. Run returns the
// first error observed — a task error takes precedence, otherwise the
// context's. With workers == 1 tasks run strictly in index order on the
// calling goroutine's single worker, giving exact sequential semantics.
func Run(ctx context.Context, n, workers int, task func(ctx context.Context, i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	workers = Resolve(workers)
	if workers > n {
		workers = n
	}
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()

	indices := make(chan int)
	go func() {
		defer close(indices)
		for i := 0; i < n; i++ {
			select {
			case indices <- i:
			case <-cctx.Done():
				return
			}
		}
	}()

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range indices {
				if cctx.Err() != nil {
					return
				}
				if err := task(cctx, i); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					cancel()
					return
				}
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	return ctx.Err()
}
