// Package pool provides the bounded worker pool shared by the parallel
// sweep engines (design-space exploration, Monte-Carlo sampling, model
// validation). Tasks are index-addressed: the caller writes result i into
// slot i of a preallocated slice, so parallel execution preserves the
// exact sequential output order regardless of completion order.
package pool

import (
	"context"
	"flag"
	"runtime"
	"sync"

	"mnsim/internal/telemetry"
)

// Pool telemetry: how many workers are inside a task right now and how
// many queued indices have not been handed to a worker yet. Both gauges
// sum across concurrently running pools, so /metrics shows the live
// saturation of the whole process during a sweep.
var (
	telInflight = telemetry.GetGauge("mnsim_pool_workers_inflight")
	telQueue    = telemetry.GetGauge("mnsim_pool_queue_depth")
)

func init() {
	telemetry.Describe("mnsim_pool_workers_inflight", "Worker goroutines currently executing a task.")
	telemetry.Describe("mnsim_pool_queue_depth", "Task indices queued but not yet dispatched to a worker.")
}

// Resolve normalizes a worker-count setting: values <= 0 select
// runtime.GOMAXPROCS(0), the scheduler's available parallelism.
func Resolve(workers int) int {
	if workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return workers
}

// AddFlag registers the shared -workers flag on fs and returns the value
// pointer, mirroring how telemetry.AddFlags wires the observability flags.
func AddFlag(fs *flag.FlagSet) *int {
	return fs.Int("workers", 0,
		"worker goroutines for parallel sweeps (0 = GOMAXPROCS)")
}

// Run evaluates n index-addressed tasks on at most workers goroutines
// (normalized through Resolve). Task i receives a context that is
// cancelled as soon as any task returns an error or the caller's ctx is
// cancelled; remaining queued tasks are then skipped. Run returns the
// first error observed — a task error takes precedence, otherwise the
// context's. With workers == 1 tasks run strictly in index order on the
// calling goroutine's single worker, giving exact sequential semantics.
//
// Task contexts derive from the caller's ctx, so context values — in
// particular the submitting goroutine's active telemetry span — cross the
// worker boundary: a span opened inside a task nests under the caller's
// span (path "parent/child") exactly as it would sequentially. Callers
// must pass the task's ctx (not a captured outer one) into nested work to
// keep that chain intact.
//
// Dispatch is a hot path for fine-grained sweeps: per-call cost is one
// channel plus the goroutine-shared closure state (suppressed below as
// setup-time, not per-task, allocations).
//
//lint:hotpath
func Run(ctx context.Context, n, workers int, task func(ctx context.Context, i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	workers = Resolve(workers)
	if workers > n {
		workers = n
	}
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()

	indices := make(chan int)
	feederDone := make(chan struct{})
	telQueue.Add(float64(n))
	// Feeder goroutine. Termination edge: the cctx.Done select arm below —
	// cancel() runs on every Run exit (deferred, and again before the
	// feederDone join), so the feeder can never outlive the call.
	//lint:ignore noalloc the feeder closure is one setup-time allocation per Run, not per task
	go func() {
		defer close(feederDone)
		defer close(indices)
		fed := 0
		// On early exit (cancellation) drop the undispatched remainder
		// from the gauge in one step.
		defer func() { telQueue.Add(-float64(n - fed)) }()
		for i := 0; i < n; i++ {
			select {
			case indices <- i:
				fed++
				telQueue.Add(-1)
			case <-cctx.Done():
				return
			}
		}
	}()

	var (
		//lint:ignore noalloc goroutine-shared dispatch state: three setup-time boxes per Run
		wg sync.WaitGroup
		//lint:ignore noalloc goroutine-shared dispatch state: three setup-time boxes per Run
		mu sync.Mutex
		//lint:ignore noalloc goroutine-shared dispatch state: three setup-time boxes per Run
		firstErr error
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		// Worker goroutine. Termination edges: ranging over indices ends
		// when the feeder close()s it, and the wg.Done here joins the
		// wg.Wait below.
		//lint:ignore noalloc the worker closure is one setup-time allocation per worker, not per task
		go func() {
			defer wg.Done()
			for i := range indices {
				if cctx.Err() != nil {
					return
				}
				telInflight.Add(1)
				err := task(cctx, i)
				telInflight.Add(-1)
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					cancel()
					return
				}
			}
		}()
	}
	wg.Wait()
	// Wake the feeder (it may be blocked on a send with no receivers left)
	// and wait for it, so the queue-depth gauge is settled before Run
	// returns.
	cancel()
	<-feederDone
	if firstErr != nil {
		return firstErr
	}
	return ctx.Err()
}
