package pool

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"mnsim/internal/telemetry"
)

func TestRunCoversAllIndices(t *testing.T) {
	for _, workers := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		n := 100
		hits := make([]int32, n)
		err := Run(context.Background(), n, workers, func(_ context.Context, i int) error {
			atomic.AddInt32(&hits[i], 1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, h)
			}
		}
	}
}

func TestRunSingleWorkerIsOrdered(t *testing.T) {
	var order []int
	err := Run(context.Background(), 10, 1, func(_ context.Context, i int) error {
		order = append(order, i)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("order = %v", order)
		}
	}
}

func TestRunStopsOnTaskError(t *testing.T) {
	boom := errors.New("boom")
	var ran int32
	err := Run(context.Background(), 1000, 2, func(ctx context.Context, i int) error {
		atomic.AddInt32(&ran, 1)
		if i == 3 {
			return fmt.Errorf("task %d: %w", i, boom)
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	if n := atomic.LoadInt32(&ran); n == 1000 {
		t.Fatal("error did not stop the pool early")
	}
}

func TestRunCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran int32
	err := Run(ctx, 100, 4, func(_ context.Context, i int) error {
		atomic.AddInt32(&ran, 1)
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestRunTaskSeesCancellation(t *testing.T) {
	sentinel := errors.New("observed cancel")
	err := Run(context.Background(), 10, 1, func(ctx context.Context, i int) error {
		if i == 0 {
			return sentinel // cancels the pool context for the rest
		}
		if ctx.Err() == nil {
			t.Errorf("task %d: pool context not cancelled after error", i)
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v", err)
	}
}

func TestRunEmpty(t *testing.T) {
	if err := Run(context.Background(), 0, 4, func(context.Context, int) error {
		t.Fatal("task ran for n=0")
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// Regression: the submitting goroutine's active span must cross the worker
// boundary — a span opened inside a pooled task aggregates under
// "parent/child", not as a detached root. (Task contexts derive from the
// caller's ctx, which preserves context values.)
func TestRunPropagatesSpanContext(t *testing.T) {
	tr := telemetry.NewTracer()
	ctx, parent := tr.StartSpan(context.Background(), "parent")
	err := Run(ctx, 8, 4, func(tctx context.Context, i int) error {
		_, child := tr.StartSpan(tctx, "child")
		child.End()
		return nil
	})
	parent.End()
	if err != nil {
		t.Fatal(err)
	}
	stat, ok := tr.Stat("parent/child")
	if !ok {
		var names []string
		for _, s := range tr.Stats() {
			names = append(names, s.Name)
		}
		t.Fatalf("span context dropped at the pool boundary: have %v, want parent/child", names)
	}
	if stat.Count != 8 {
		t.Fatalf("parent/child count = %d, want 8", stat.Count)
	}
	// The causal chain agrees with the path: every task span's parent ID is
	// the submitting span.
	tctx2, p2 := tr.StartSpan(context.Background(), "parent2")
	var badParent atomic.Int32
	err = Run(tctx2, 4, 2, func(tctx context.Context, i int) error {
		if telemetry.SpanFromContext(tctx).SpanID() != p2.SpanID() {
			badParent.Add(1)
		}
		return nil
	})
	p2.End()
	if err != nil {
		t.Fatal(err)
	}
	if badParent.Load() != 0 {
		t.Fatalf("%d tasks saw a context without the submitting span", badParent.Load())
	}
}

func TestResolve(t *testing.T) {
	if got := Resolve(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Resolve(0) = %d", got)
	}
	if got := Resolve(-3); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Resolve(-3) = %d", got)
	}
	if got := Resolve(7); got != 7 {
		t.Errorf("Resolve(7) = %d", got)
	}
}

// The pool must leave no goroutines behind after Run returns — on the
// success, error, and cancellation paths alike. Part of the repo-wide
// clean-shutdown contract (the resource sampler's goroutine-leak test is
// the telemetry-side counterpart).
func TestRunLeavesNoGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 3; i++ {
		_ = Run(context.Background(), 50, 4, func(context.Context, int) error { return nil })
		_ = Run(context.Background(), 50, 4, func(_ context.Context, i int) error {
			if i == 10 {
				return errors.New("boom")
			}
			return nil
		})
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		_ = Run(ctx, 50, 4, func(context.Context, int) error { return nil })
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
}
