package config

import (
	"math/rand"
	"strings"
	"testing"
)

func TestWriteParseRoundTrip(t *testing.T) {
	c := Default()
	c.NetworkScale = []LayerShape{{Rows: 2048, Cols: 1024}, {Rows: 1024, Cols: 10}}
	c.NetworkType = "CNN"
	c.CrossbarSize = 256
	c.ParallelismDegree = 16
	c.Variation = 0.15
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := c.Write(&sb); err != nil {
		t.Fatal(err)
	}
	back, err := Parse(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("round trip parse: %v\n%s", err, sb.String())
	}
	if back.NetworkType != c.NetworkType || back.CrossbarSize != c.CrossbarSize ||
		back.ParallelismDegree != c.ParallelismDegree || back.Variation != c.Variation {
		t.Fatalf("round trip lost fields:\n got %+v\nwant %+v", back, c)
	}
	if len(back.NetworkScale) != 2 || back.NetworkScale[0] != c.NetworkScale[0] {
		t.Fatalf("scale lost: %v", back.NetworkScale)
	}
	if back.ResistanceRange != c.ResistanceRange {
		t.Fatalf("range lost: %v", back.ResistanceRange)
	}
}

// Property: any valid random configuration survives Write -> Parse intact.
func TestWriteParseRandomConfigs(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	types := []string{"ANN", "SNN", "CNN"}
	cells := []string{"1T1R", "0T1R"}
	models := []string{"RRAM", "PCM"}
	adcs := []string{"VariableSA", "SAR", "Flash"}
	sizes := []int{2, 32, 128, 1024}
	for trial := 0; trial < 50; trial++ {
		c := Default()
		layers := 1 + rng.Intn(4)
		c.NetworkScale = nil
		for l := 0; l < layers; l++ {
			c.NetworkScale = append(c.NetworkScale, LayerShape{Rows: 1 + rng.Intn(4096), Cols: 1 + rng.Intn(4096)})
		}
		c.NetworkType = types[rng.Intn(len(types))]
		c.CellType = cells[rng.Intn(len(cells))]
		c.MemristorModel = models[rng.Intn(len(models))]
		c.ADCDesign = adcs[rng.Intn(len(adcs))]
		c.CrossbarSize = sizes[rng.Intn(len(sizes))]
		c.PoolingSize = 1 + rng.Intn(4)
		c.SpacialSize = 1 + rng.Intn(3)
		c.WeightPolarity = 1 + rng.Intn(2)
		c.ParallelismDegree = rng.Intn(256)
		c.WeightBits = 1 + rng.Intn(16)
		c.DataBits = 1 + rng.Intn(16)
		c.Variation = float64(rng.Intn(50)) / 100
		c.InterfaceNumber = [2]int{1 + rng.Intn(512), 1 + rng.Intn(512)}
		lo := 1 + rng.Float64()*1e6
		c.ResistanceRange = [2]float64{lo, lo * (2 + rng.Float64()*100)}
		if err := c.Validate(); err != nil {
			t.Fatalf("trial %d: invalid source config: %v", trial, err)
		}
		var sb strings.Builder
		if err := c.Write(&sb); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		back, err := Parse(strings.NewReader(sb.String()))
		if err != nil {
			t.Fatalf("trial %d: parse: %v\n%s", trial, err, sb.String())
		}
		if back.NetworkType != c.NetworkType || back.CellType != c.CellType ||
			back.MemristorModel != c.MemristorModel || back.ADCDesign != c.ADCDesign ||
			back.CrossbarSize != c.CrossbarSize || back.PoolingSize != c.PoolingSize ||
			back.SpacialSize != c.SpacialSize || back.WeightPolarity != c.WeightPolarity ||
			back.ParallelismDegree != c.ParallelismDegree || back.WeightBits != c.WeightBits ||
			back.DataBits != c.DataBits || back.Variation != c.Variation ||
			back.InterfaceNumber != c.InterfaceNumber {
			t.Fatalf("trial %d: fields lost:\n got %+v\nwant %+v", trial, back, c)
		}
		if len(back.NetworkScale) != len(c.NetworkScale) {
			t.Fatalf("trial %d: scale count", trial)
		}
		for i := range c.NetworkScale {
			if back.NetworkScale[i] != c.NetworkScale[i] {
				t.Fatalf("trial %d: layer %d lost", trial, i)
			}
		}
	}
}
