package config

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// Write emits the configuration in the Table I key = value format Parse
// reads back; Parse(Write(c)) reproduces c. The simulator uses it to dump
// the effective configuration of a run (defaults resolved).
func (c *Config) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "# MNSIM configuration (Table I format)")
	if c.NetworkDepth != 0 {
		fmt.Fprintf(bw, "Network_Depth = %d\n", c.NetworkDepth)
	}
	fmt.Fprintf(bw, "Interface_Number = [%d, %d]\n", c.InterfaceNumber[0], c.InterfaceNumber[1])
	fmt.Fprintf(bw, "Network_Type = %s\n", c.NetworkType)
	shapes := make([]string, len(c.NetworkScale))
	for i, s := range c.NetworkScale {
		shapes[i] = fmt.Sprintf("%dx%d", s.Rows, s.Cols)
	}
	fmt.Fprintf(bw, "Network_Scale = %s\n", strings.Join(shapes, ", "))
	fmt.Fprintf(bw, "Crossbar_Size = %d\n", c.CrossbarSize)
	fmt.Fprintf(bw, "Pooling_Size = %d\n", c.PoolingSize)
	fmt.Fprintf(bw, "Spacial_Size = %d\n", c.SpacialSize)
	fmt.Fprintf(bw, "Weight_Polarity = %d\n", c.WeightPolarity)
	fmt.Fprintf(bw, "CMOS_Tech = %dnm\n", c.CMOSTech)
	fmt.Fprintf(bw, "Cell_Type = %s\n", c.CellType)
	fmt.Fprintf(bw, "Memristor_Model = %s\n", c.MemristorModel)
	fmt.Fprintf(bw, "Interconnect_Tech = %dnm\n", c.InterconnectTech)
	fmt.Fprintf(bw, "Parallelism_Degree = %d\n", c.ParallelismDegree)
	fmt.Fprintf(bw, "Resistance_Range = [%g, %g]\n", c.ResistanceRange[0], c.ResistanceRange[1])
	fmt.Fprintf(bw, "Weight_Bits = %d\n", c.WeightBits)
	fmt.Fprintf(bw, "Data_Bits = %d\n", c.DataBits)
	fmt.Fprintf(bw, "ADC_Design = %s\n", c.ADCDesign)
	fmt.Fprintf(bw, "Variation = %g\n", c.Variation)
	fmt.Fprintf(bw, "Inner_Pipeline = %t\n", c.InnerPipeline)
	return bw.Flush()
}
