package config

import (
	"strings"
	"testing"
)

func TestDefaultsMatchTableI(t *testing.T) {
	c := Default()
	if c.InterfaceNumber != [2]int{128, 128} {
		t.Errorf("Interface_Number = %v", c.InterfaceNumber)
	}
	if c.NetworkType != "ANN" {
		t.Errorf("Network_Type = %v", c.NetworkType)
	}
	if c.CrossbarSize != 128 {
		t.Errorf("Crossbar_Size = %v", c.CrossbarSize)
	}
	if c.PoolingSize != 2 || c.SpacialSize != 1 || c.WeightPolarity != 2 {
		t.Errorf("bank/unit defaults wrong: %+v", c)
	}
	if c.CMOSTech != 90 || c.InterconnectTech != 28 {
		t.Errorf("tech defaults wrong: %+v", c)
	}
	if c.CellType != "1T1R" || c.MemristorModel != "RRAM" {
		t.Errorf("device defaults wrong: %+v", c)
	}
	if c.ParallelismDegree != 0 {
		t.Errorf("Parallelism_Degree = %v, want 0 (all parallel)", c.ParallelismDegree)
	}
}

func TestParseFullFile(t *testing.T) {
	src := `
# MNSIM configuration
Network_Depth = 2
Interface_Number = [64, 32]
Network_Type = CNN            # convolutional
Network_Scale = 2048x1024, 1024x512
Crossbar_Size = 256
Pooling_Size = 3
Spacial_Size = 2
Weight_Polarity = 1
CMOS_Tech = 45nm
Cell_Type = 0T1R
Memristor_Model = PCM
Interconnect_Tech = 22
Parallelism_Degree = 16
Resistance_Range = [500k, 50M]
Weight_Bits = 8
Data_Bits = 6
ADC_Design = SAR
Variation = 0.1
`
	c, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if c.NetworkDepth != 2 || c.InterfaceNumber != [2]int{64, 32} {
		t.Errorf("accelerator level: %+v", c)
	}
	if c.NetworkType != "CNN" || c.CrossbarSize != 256 || c.PoolingSize != 3 || c.SpacialSize != 2 {
		t.Errorf("bank level: %+v", c)
	}
	if len(c.NetworkScale) != 2 || c.NetworkScale[0] != (LayerShape{2048, 1024}) || c.NetworkScale[1] != (LayerShape{1024, 512}) {
		t.Errorf("Network_Scale = %v", c.NetworkScale)
	}
	if c.WeightPolarity != 1 || c.CMOSTech != 45 || c.CellType != "0T1R" || c.MemristorModel != "PCM" {
		t.Errorf("unit level: %+v", c)
	}
	if c.InterconnectTech != 22 || c.ParallelismDegree != 16 {
		t.Errorf("unit level 2: %+v", c)
	}
	if c.ResistanceRange != [2]float64{500e3, 50e6} {
		t.Errorf("Resistance_Range = %v", c.ResistanceRange)
	}
	if c.WeightBits != 8 || c.DataBits != 6 || c.ADCDesign != "SAR" || c.Variation != 0.1 {
		t.Errorf("extensions: %+v", c)
	}
}

func TestParseDerivesDepth(t *testing.T) {
	c, err := Parse(strings.NewReader("Network_Scale = 128x128, 128x10\n"))
	if err != nil {
		t.Fatal(err)
	}
	if c.NetworkDepth != 2 {
		t.Fatalf("derived depth = %d", c.NetworkDepth)
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"missing equals":       "Crossbar_Size 128\n",
		"unknown key":          "Zebra = 1\nNetwork_Scale = 1x1\n",
		"bad int":              "Crossbar_Size = big\nNetwork_Scale = 1x1\n",
		"bad pair":             "Interface_Number = [1]\nNetwork_Scale = 1x1\n",
		"bad shape":            "Network_Scale = 128\n",
		"bad shape rows":       "Network_Scale = axb\n",
		"bad shape cols":       "Network_Scale = 12xb\n",
		"empty scale":          "Network_Scale = ,\n",
		"bad magnitude":        "Resistance_Range = [x, 1M]\nNetwork_Scale = 1x1\n",
		"depth mismatch":       "Network_Depth = 3\nNetwork_Scale = 1x1\n",
		"no scale":             "Crossbar_Size = 128\n",
		"bad float":            "Variation = much\nNetwork_Scale = 1x1\n",
		"bad network type":     "Network_Type = RNN\nNetwork_Scale = 1x1\n",
		"bad polarity":         "Weight_Polarity = 3\nNetwork_Scale = 1x1\n",
		"bad crossbar size":    "Crossbar_Size = 1\nNetwork_Scale = 1x1\n",
		"bad pooling":          "Pooling_Size = 0\nNetwork_Scale = 1x1\n",
		"bad spacial":          "Spacial_Size = 0\nNetwork_Scale = 1x1\n",
		"bad parallelism":      "Parallelism_Degree = -1\nNetwork_Scale = 1x1\n",
		"bad resistance range": "Resistance_Range = [10, 5]\nNetwork_Scale = 1x1\n",
		"bad weight bits":      "Weight_Bits = 0\nNetwork_Scale = 1x1\n",
		"bad data bits":        "Data_Bits = 99\nNetwork_Scale = 1x1\n",
		"bad variation":        "Variation = 0.9\nNetwork_Scale = 1x1\n",
		"bad interface":        "Interface_Number = [0, 4]\nNetwork_Scale = 1x1\n",
		"bad layer":            "Network_Scale = 0x5\n",
	}
	for name, src := range cases {
		if _, err := Parse(strings.NewReader(src)); err == nil {
			t.Errorf("%s: Parse accepted %q", name, src)
		}
	}
}

func TestParseMagnitudeSuffixes(t *testing.T) {
	c, err := Parse(strings.NewReader("Resistance_Range = [500 500k]\nNetwork_Scale = 4x4\n"))
	if err != nil {
		t.Fatal(err)
	}
	if c.ResistanceRange != [2]float64{500, 500e3} {
		t.Fatalf("range = %v", c.ResistanceRange)
	}
	c, err = Parse(strings.NewReader("Resistance_Range = [1M, 2G]\nNetwork_Scale = 4x4\n"))
	if err != nil {
		t.Fatal(err)
	}
	if c.ResistanceRange != [2]float64{1e6, 2e9} {
		t.Fatalf("range = %v", c.ResistanceRange)
	}
}

func TestValidateMutatesDepth(t *testing.T) {
	c := Default()
	c.NetworkScale = []LayerShape{{8, 8}, {8, 4}, {4, 2}}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.NetworkDepth != 3 {
		t.Fatalf("depth = %d", c.NetworkDepth)
	}
}

func TestCommentsAndBlankLines(t *testing.T) {
	src := "\n\n# full comment line\nNetwork_Scale = 4x4 # trailing comment\n\n"
	c, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(c.NetworkScale) != 1 || c.NetworkScale[0] != (LayerShape{4, 4}) {
		t.Fatalf("scale = %v", c.NetworkScale)
	}
}

func TestInnerPipelineKey(t *testing.T) {
	c, err := Parse(strings.NewReader("Network_Scale = 8x8\nInner_Pipeline = true\n"))
	if err != nil {
		t.Fatal(err)
	}
	if !c.InnerPipeline {
		t.Fatal("Inner_Pipeline not parsed")
	}
	if _, err := Parse(strings.NewReader("Network_Scale = 8x8\nInner_Pipeline = maybe\n")); err == nil {
		t.Fatal("bad bool accepted")
	}
	var sb strings.Builder
	if err := c.Write(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Inner_Pipeline = true") {
		t.Fatal("Write lost Inner_Pipeline")
	}
}
