package config

import (
	"strings"
	"testing"
)

// FuzzParse checks the configuration parser never panics and that anything
// it accepts round-trips through Write.
func FuzzParse(f *testing.F) {
	f.Add("Network_Scale = 4x4\n")
	f.Add("Crossbar_Size = 128\nNetwork_Scale = 2048x1024, 8x8\n")
	f.Add("Resistance_Range = [500 500k]\nNetwork_Scale = 1x1\n")
	f.Add("# comment only\n")
	f.Add("Interface_Number = [1,1]\nNetwork_Type = SNN\nNetwork_Scale=1x1")
	f.Add("Network_Scale = 4x4\nVariation = 0.3\nCMOS_Tech = 45nm\n")
	f.Fuzz(func(t *testing.T, src string) {
		c, err := Parse(strings.NewReader(src))
		if err != nil {
			return // rejected input is fine; panics are not
		}
		var sb strings.Builder
		if err := c.Write(&sb); err != nil {
			t.Fatalf("accepted config failed to Write: %v", err)
		}
		back, err := Parse(strings.NewReader(sb.String()))
		if err != nil {
			t.Fatalf("Write output failed to re-Parse: %v\n%s", err, sb.String())
		}
		if back.CrossbarSize != c.CrossbarSize || back.NetworkType != c.NetworkType ||
			len(back.NetworkScale) != len(c.NetworkScale) {
			t.Fatalf("round trip drifted: %+v vs %+v", back, c)
		}
	})
}
