// Package config implements MNSIM's configuration list (Table I of the
// paper): users describe an accelerator in a small key = value file whose
// entries are classified into the three hierarchy levels (Accelerator,
// Computation Bank, Computation Unit). Unset keys take the paper's
// defaults.
package config

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// LayerShape is one network layer's weight-matrix shape: Rows inputs
// feeding Cols outputs.
type LayerShape struct {
	Rows, Cols int
}

// Config mirrors Table I. Field names keep the configuration-file spelling
// (with underscores replaced by camel case).
type Config struct {
	// Accelerator level.
	NetworkDepth    int    // layers of the application (derived from NetworkScale if 0)
	InterfaceNumber [2]int // input and output I/O line counts

	// Computation-bank level.
	NetworkType  string       // ANN, SNN, or CNN
	NetworkScale []LayerShape // scale of each layer
	CrossbarSize int
	PoolingSize  int
	SpacialSize  int

	// Computation-unit level.
	WeightPolarity    int    // 1 = unsigned weights, 2 = signed
	CMOSTech          int    // nm
	CellType          string // 1T1R or 0T1R
	MemristorModel    string // RRAM or PCM
	InterconnectTech  int    // nm
	ParallelismDegree int    // read circuits per crossbar; 0 = all parallel
	ResistanceRange   [2]float64

	// Extensions beyond Table I used by the experiments.
	WeightBits    int    // weight precision in bits
	DataBits      int    // input/output signal precision in bits
	ADCDesign     string // VariableSA, SAR, or Flash
	Variation     float64
	InnerPipeline bool // ISAAC-style inner-layer pipeline (future-work feature)
}

// Default returns the configuration defaults of Table I. The resistance
// range follows the computing-oriented reference device rather than the
// paper's memory-style [500, 500k] default (see DESIGN.md).
func Default() Config {
	return Config{
		InterfaceNumber:   [2]int{128, 128},
		NetworkType:       "ANN",
		CrossbarSize:      128,
		PoolingSize:       2,
		SpacialSize:       1,
		WeightPolarity:    2,
		CMOSTech:          90,
		CellType:          "1T1R",
		MemristorModel:    "RRAM",
		InterconnectTech:  28,
		ParallelismDegree: 0,
		ResistanceRange:   [2]float64{100e3, 10e6},
		WeightBits:        4,
		DataBits:          8,
		ADCDesign:         "VariableSA",
	}
}

// Validate reports the first inconsistency found.
func (c *Config) Validate() error {
	switch {
	case len(c.NetworkScale) == 0:
		return fmt.Errorf("config: Network_Scale is required")
	case c.NetworkDepth != 0 && c.NetworkDepth != len(c.NetworkScale):
		return fmt.Errorf("config: Network_Depth %d disagrees with %d Network_Scale entries", c.NetworkDepth, len(c.NetworkScale))
	case c.CrossbarSize < 2 || c.CrossbarSize > 4096:
		return fmt.Errorf("config: Crossbar_Size %d outside [2,4096]", c.CrossbarSize)
	case c.WeightPolarity != 1 && c.WeightPolarity != 2:
		return fmt.Errorf("config: Weight_Polarity %d must be 1 or 2", c.WeightPolarity)
	case c.PoolingSize < 1:
		return fmt.Errorf("config: Pooling_Size %d invalid", c.PoolingSize)
	case c.SpacialSize < 1:
		return fmt.Errorf("config: Spacial_Size %d invalid", c.SpacialSize)
	case c.ParallelismDegree < 0:
		return fmt.Errorf("config: Parallelism_Degree %d invalid", c.ParallelismDegree)
	case c.ResistanceRange[0] <= 0 || c.ResistanceRange[1] <= c.ResistanceRange[0]:
		return fmt.Errorf("config: Resistance_Range [%g, %g] invalid", c.ResistanceRange[0], c.ResistanceRange[1])
	case c.WeightBits < 1 || c.WeightBits > 16:
		return fmt.Errorf("config: weight bits %d outside [1,16]", c.WeightBits)
	case c.DataBits < 1 || c.DataBits > 16:
		return fmt.Errorf("config: data bits %d outside [1,16]", c.DataBits)
	case c.Variation < 0 || c.Variation > 0.5:
		return fmt.Errorf("config: variation %g outside [0,0.5]", c.Variation)
	case c.InterfaceNumber[0] < 1 || c.InterfaceNumber[1] < 1:
		return fmt.Errorf("config: Interface_Number %v invalid", c.InterfaceNumber)
	}
	switch c.NetworkType {
	case "ANN", "SNN", "CNN":
	default:
		return fmt.Errorf("config: Network_Type %q must be ANN, SNN, or CNN", c.NetworkType)
	}
	for i, l := range c.NetworkScale {
		if l.Rows < 1 || l.Cols < 1 {
			return fmt.Errorf("config: layer %d scale %dx%d invalid", i, l.Rows, l.Cols)
		}
	}
	if c.NetworkDepth == 0 {
		c.NetworkDepth = len(c.NetworkScale)
	}
	return nil
}

// Parse reads a configuration file: one `Key = value` per line, `#` starts
// a comment, unknown keys are rejected. Missing keys keep the Table I
// defaults.
func Parse(r io.Reader) (Config, error) {
	c := Default()
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		key, val, ok := strings.Cut(line, "=")
		if !ok {
			return c, fmt.Errorf("config line %d: missing '=' in %q", lineNo, line)
		}
		key = strings.TrimSpace(key)
		val = strings.TrimSpace(val)
		if err := c.set(key, val); err != nil {
			return c, fmt.Errorf("config line %d: %w", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return c, err
	}
	if err := c.Validate(); err != nil {
		return c, err
	}
	return c, nil
}

func (c *Config) set(key, val string) error {
	var err error
	switch key {
	case "Network_Depth":
		c.NetworkDepth, err = strconv.Atoi(val)
	case "Interface_Number":
		var pair [2]float64
		pair, err = parsePair(val)
		c.InterfaceNumber = [2]int{int(pair[0]), int(pair[1])}
	case "Network_Type":
		c.NetworkType = val
	case "Network_Scale":
		c.NetworkScale, err = parseScale(val)
	case "Crossbar_Size":
		c.CrossbarSize, err = strconv.Atoi(val)
	case "Pooling_Size":
		c.PoolingSize, err = strconv.Atoi(val)
	case "Spacial_Size":
		c.SpacialSize, err = strconv.Atoi(val)
	case "Weight_Polarity":
		c.WeightPolarity, err = strconv.Atoi(val)
	case "CMOS_Tech":
		c.CMOSTech, err = parseNanometres(val)
	case "Cell_Type":
		c.CellType = val
	case "Memristor_Model":
		c.MemristorModel = val
	case "Interconnect_Tech":
		c.InterconnectTech, err = parseNanometres(val)
	case "Parallelism_Degree":
		c.ParallelismDegree, err = strconv.Atoi(val)
	case "Resistance_Range":
		c.ResistanceRange, err = parsePair(val)
	case "Weight_Bits":
		c.WeightBits, err = strconv.Atoi(val)
	case "Data_Bits":
		c.DataBits, err = strconv.Atoi(val)
	case "ADC_Design":
		c.ADCDesign = val
	case "Variation":
		c.Variation, err = strconv.ParseFloat(val, 64)
	case "Inner_Pipeline":
		c.InnerPipeline, err = strconv.ParseBool(val)
	default:
		return fmt.Errorf("unknown key %q", key)
	}
	return err
}

// parseNanometres accepts "90" or "90nm".
func parseNanometres(s string) (int, error) {
	s = strings.TrimSuffix(strings.TrimSpace(s), "nm")
	return strconv.Atoi(s)
}

// parsePair accepts "[a, b]", "[a b]", or "a,b", with optional k/M/G
// magnitude suffixes on each element.
func parsePair(s string) ([2]float64, error) {
	s = strings.TrimSpace(s)
	s = strings.TrimPrefix(s, "[")
	s = strings.TrimSuffix(s, "]")
	fields := strings.FieldsFunc(s, func(r rune) bool { return r == ',' || r == ' ' || r == '\t' })
	if len(fields) != 2 {
		return [2]float64{}, fmt.Errorf("want two values, got %q", s)
	}
	var out [2]float64
	for i, f := range fields {
		v, err := parseMagnitude(f)
		if err != nil {
			return out, err
		}
		out[i] = v
	}
	return out, nil
}

func parseMagnitude(s string) (float64, error) {
	mult := 1.0
	switch {
	case strings.HasSuffix(s, "k"):
		mult, s = 1e3, strings.TrimSuffix(s, "k")
	case strings.HasSuffix(s, "M"):
		mult, s = 1e6, strings.TrimSuffix(s, "M")
	case strings.HasSuffix(s, "G"):
		mult, s = 1e9, strings.TrimSuffix(s, "G")
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("bad number %q", s)
	}
	return v * mult, nil
}

// parseScale accepts a comma-separated list of RxC layer shapes, e.g.
// "2048x1024, 1024x512".
func parseScale(s string) ([]LayerShape, error) {
	var out []LayerShape
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		rs, cs, ok := strings.Cut(part, "x")
		if !ok {
			return nil, fmt.Errorf("bad layer shape %q (want RxC)", part)
		}
		r, err := strconv.Atoi(strings.TrimSpace(rs))
		if err != nil {
			return nil, fmt.Errorf("bad layer rows in %q", part)
		}
		c, err := strconv.Atoi(strings.TrimSpace(cs))
		if err != nil {
			return nil, fmt.Errorf("bad layer cols in %q", part)
		}
		out = append(out, LayerShape{Rows: r, Cols: c})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty Network_Scale")
	}
	return out, nil
}
