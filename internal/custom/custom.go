// Package custom reproduces the related-work case studies of Section VII.E:
// MNSIM's customization interfaces applied to PRIME (Chi et al., ISCA'16)
// and ISAAC (Shafiee et al., ISCA'16). PRIME re-uses the reference modules
// with a different connection (peripherals merged into reconfigurable
// units); ISAAC imports the publication's own module costs as customized
// modules and a 22-stage inner pipeline, exactly the procedure the paper
// describes.
package custom

import (
	"fmt"

	"mnsim/internal/accuracy"
	"mnsim/internal/arch"
	"mnsim/internal/crossbar"
	"mnsim/internal/device"
	"mnsim/internal/periph"
	"mnsim/internal/tech"
)

// Result is the Table VII metric set for one related-work design.
type Result struct {
	Name     string
	CMOSTech int
	// AreaMM2 is the structure's layout area in mm².
	AreaMM2 float64
	// EnergyPerTask is the energy of the evaluation task in joules.
	EnergyPerTask float64
	// Latency is the task latency in seconds.
	Latency float64
	// Accuracy is the average relative computing accuracy (0–1).
	Accuracy float64
}

// PRIME simulates one PRIME FF-subarray at its published configuration:
// 65 nm CMOS, four 256×256 RRAM crossbars, 6-bit fixed-point input/output
// and ADC precision, 8-bit signed weights on 4-bit cells (four cells per
// weight). The evaluation task is a 256×256 DNN layer at the subarray's
// peak throughput. The reference-design modules are reused; only the
// connection changes (adders, neurons and pooling move inside the
// reconfigurable units), which in the behaviour-level aggregate keeps the
// same module inventory (Section VII.E.1).
func PRIME() (Result, error) {
	dev := device.RRAM()
	dev.LevelBits = 4 // 4-bit cells per the PRIME configuration
	d := arch.Design{
		CrossbarSize:      256,
		Parallelism:       0, // PRIME's FF-subarray reads fully in parallel
		WeightPolarity:    2,
		TwoCrossbarSigned: true,
		WeightBits:        8,
		DataBits:          6,
		CMOS:              tech.MustNode(65),
		Wire:              tech.MustInterconnect(45),
		Dev:               dev,
		ADC:               periph.ADCVariableSA,
		Neuron:            periph.NeuronSigmoid,
		AreaCoefficient:   arch.DefaultAreaCoefficient,
	}
	// 8-bit weights on 4-bit cells: two slices, and the signed pair doubles
	// the crossbars — four cells per weight, as the paper states.
	if got := d.CellsPerWeight() * d.CrossbarsPerUnit(); got != 4 {
		return Result{}, fmt.Errorf("custom: PRIME mapping yields %d cells per weight, want 4", got)
	}
	layer := arch.LayerDims{Rows: 256, Cols: 256, Passes: 1}
	bank, err := arch.NewBank(&d, layer)
	if err != nil {
		return Result{}, err
	}
	// One FF-subarray holds four crossbars; the 256×256 signed 8-bit layer
	// occupies exactly two units (2 crossbars each).
	rep, err := bank.Accuracy(0)
	if err != nil {
		return Result{}, err
	}
	return Result{
		Name:          "PRIME",
		CMOSTech:      65,
		AreaMM2:       bank.PassPerf.Area * 1e-6,
		EnergyPerTask: bank.PassPerf.DynamicEnergy,
		Latency:       bank.PassPerf.Latency,
		Accuracy:      1 - rep.AvgRate,
	}, nil
}

// ISAAC module costs imported from the original publication (32 nm), the
// "customized modules whose area consumption are introduced from the
// original publication" of Section VII.E.2. Areas in um², powers in watts.
type isaacModule struct {
	name  string
	count int
	area  float64
	power float64
}

// isaacTileModules is the per-tile inventory of ISAAC (Table 6 of the ISAAC
// paper): 12 IMAs of 8 crossbars each plus the tile-level eDRAM, bus, and
// compute units.
var isaacTileModules = []isaacModule{
	{"eDRAM buffer (64KB)", 1, 83000, 20.7e-3},
	{"eDRAM-to-IMA bus", 1, 45000, 7e-3},
	{"output register (3KB)", 1, 7700, 1.68e-3},
	{"shift-and-add", 1, 240, 0.05e-3},
	{"sigmoid unit", 2, 2060, 0.52e-3},
	{"max-pool unit", 1, 240, 0.4e-3},
	{"IMA: ADC 8-bit 1.2GS/s", 12 * 8, 1200, 2e-3},
	{"IMA: DAC array", 12 * 8 * 16, 17, 0.0329e-3},
	{"IMA: S&H", 12 * 8 * 128, 0.3, 6e-9},
	{"IMA: crossbar 128x128", 12 * 8, 25, 0.3e-3},
	{"IMA: shift-and-add", 12 * 4, 240, 0.05e-3},
	{"IMA: input/output registers", 12, 6000, 1.24e-3},
}

// isaacCycle is the ISAAC pipeline cycle time (100 ns) and isaacStages the
// tile's inner pipeline depth.
const (
	isaacCycle  = 100e-9
	isaacStages = 22
)

// ISAAC simulates one ISAAC tile: the customized module costs are imported
// from the publication, the latency simulation is customized to the
// 22-stage inner pipeline, and the energy accumulates the 22 cycles
// (Section VII.E.2). The evaluation task uses all 96 crossbars. RRAM is
// assumed for the cells (the authors did not publish device details).
func ISAAC() (Result, error) {
	var areaUM2, power float64
	for _, m := range isaacTileModules {
		areaUM2 += float64(m.count) * m.area
		power += float64(m.count) * m.power
	}
	latency := float64(isaacStages) * isaacCycle
	energy := power * latency
	// Accuracy from the behaviour-level model at ISAAC's 128-size crossbar,
	// merged over one IMA's 8 crossbars.
	dev := device.RRAM()
	dev.LevelBits = 2 // ISAAC stores 2 bits per cell
	xp := crossbar.New(128, 128, dev, tech.MustInterconnect(28))
	rep, err := accuracy.EvalLayer(xp, 128*8, 128, 1<<8, 0)
	if err != nil {
		return Result{}, err
	}
	return Result{
		Name:          "ISAAC",
		CMOSTech:      32,
		AreaMM2:       areaUM2 * 1e-6,
		EnergyPerTask: energy,
		Latency:       latency,
		Accuracy:      1 - rep.AvgRate,
	}, nil
}

// TableVII runs both case studies. The paper's caveat applies verbatim:
// the two rows are not comparable (the network scales differ).
func TableVII() ([]Result, error) {
	prime, err := PRIME()
	if err != nil {
		return nil, err
	}
	isaac, err := ISAAC()
	if err != nil {
		return nil, err
	}
	return []Result{prime, isaac}, nil
}
