package custom

import (
	"fmt"

	"mnsim/internal/arch"
	"mnsim/internal/periph"
)

// SynapseOnly models the Fig. 2(c) customization (Liu et al., HPEC'14): a
// heterogeneous system where the memristor accelerator computes only the
// synapse function and a host CPU runs everything else. The computation
// bank keeps its synapse sub-banks but the adder tree is replaced by an
// analog router, and the neuron/pooling/output-buffer chain disappears
// (those functions move to the CPU); a result buffer feeds the bus instead.
type SynapseOnly struct {
	// Bank is the underlying full-featured bank the customization derives
	// from (for the unit inventory).
	Bank *arch.Bank
	// Perf is the customized per-pass performance of the accelerator part.
	Perf periph.Perf
	// CPUTransferBits is the per-pass data volume shipped to the CPU.
	CPUTransferBits int
}

// NewSynapseOnly customizes a bank per Fig. 2(c): users "provide the power,
// latency, area, and accuracy loss models of the new modules and add them
// to the simulation function of synapse sub-bank" (Section III.E.3). The
// analog router is modelled as one transfer-gate MUX per output merging the
// row blocks in the analog domain.
func NewSynapseOnly(d *arch.Design, layer arch.LayerDims) (*SynapseOnly, error) {
	bank, err := arch.NewBank(d, layer)
	if err != nil {
		return nil, err
	}
	n := d.CMOS
	u := bank.Unit

	// Analog router: a RowBlocks-to-1 analog mux per finished output.
	router, err := periph.Mux(n, maxInt(bank.RowBlocks, 2), 1)
	if err != nil {
		return nil, err
	}
	routers := router.Scale(maxInt(bank.OutputsPerPass, 1))

	// Result buffer holding one pass of outputs for the bus transfer.
	buf, err := periph.Register(n, d.DataBits)
	if err != nil {
		return nil, err
	}
	bufs := buf.Scale(maxInt(bank.OutputsPerPass, 1))

	units := u.Compute.Scale(bank.Units)
	s := &SynapseOnly{
		Bank:            bank,
		CPUTransferBits: layer.Cols * d.DataBits,
	}
	s.Perf = periph.Perf{
		Area:          units.Area + routers.Area + bufs.Area,
		StaticPower:   units.StaticPower + routers.StaticPower + bufs.StaticPower,
		DynamicEnergy: units.DynamicEnergy + routers.DynamicEnergy + bufs.DynamicEnergy,
		Latency:       u.Compute.Latency + router.Latency + buf.Latency,
	}
	return s, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Validate sanity-checks the customization against its full-featured
// origin: dropping the digital merge and neuron chain must shrink both the
// area and the pass latency.
func (s *SynapseOnly) Validate() error {
	if s.Perf.Area >= s.Bank.PassPerf.Area {
		return fmt.Errorf("custom: synapse-only area %g not below the full bank %g", s.Perf.Area, s.Bank.PassPerf.Area)
	}
	if s.Perf.Latency >= s.Bank.PassPerf.Latency {
		return fmt.Errorf("custom: synapse-only latency %g not below the full bank %g", s.Perf.Latency, s.Bank.PassPerf.Latency)
	}
	return nil
}
