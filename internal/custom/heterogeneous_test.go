package custom

import (
	"testing"

	"mnsim/internal/arch"
	"mnsim/internal/device"
	"mnsim/internal/periph"
	"mnsim/internal/tech"
)

func hetDesign() *arch.Design {
	return &arch.Design{
		CrossbarSize:      128,
		WeightPolarity:    2,
		TwoCrossbarSigned: true,
		WeightBits:        4,
		DataBits:          8,
		CMOS:              tech.MustNode(65),
		Wire:              tech.MustInterconnect(45),
		Dev:               device.RRAM(),
		ADC:               periph.ADCVariableSA,
		Neuron:            periph.NeuronSigmoid,
		AreaCoefficient:   arch.DefaultAreaCoefficient,
	}
}

func TestSynapseOnlyCustomization(t *testing.T) {
	layer := arch.LayerDims{Rows: 1024, Cols: 512, Passes: 1}
	s, err := NewSynapseOnly(hetDesign(), layer)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.CPUTransferBits != 512*8 {
		t.Errorf("transfer = %d bits", s.CPUTransferBits)
	}
	// The accelerator part keeps the synapse units — area stays above the
	// bare unit total.
	unitsArea := s.Bank.Unit.Compute.Area * float64(s.Bank.Units)
	if s.Perf.Area <= unitsArea {
		t.Errorf("customized area %v should include the router/buffer above units %v", s.Perf.Area, unitsArea)
	}
	// The dropped neuron/merge chain is a substantial share for a wide
	// layer (sigmoid LUTs per output are expensive).
	if s.Perf.Area >= 0.95*s.Bank.PassPerf.Area {
		t.Errorf("synapse-only saves too little: %v vs %v", s.Perf.Area, s.Bank.PassPerf.Area)
	}
}

func TestSynapseOnlyErrors(t *testing.T) {
	bad := hetDesign()
	bad.WeightBits = 0
	if _, err := NewSynapseOnly(bad, arch.LayerDims{Rows: 8, Cols: 8, Passes: 1}); err == nil {
		t.Error("invalid design accepted")
	}
	if _, err := NewSynapseOnly(hetDesign(), arch.LayerDims{Rows: 0, Cols: 8, Passes: 1}); err == nil {
		t.Error("invalid layer accepted")
	}
}
