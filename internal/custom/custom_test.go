package custom

import (
	"testing"
)

func TestPRIME(t *testing.T) {
	r, err := PRIME()
	if err != nil {
		t.Fatal(err)
	}
	if r.Name != "PRIME" || r.CMOSTech != 65 {
		t.Fatalf("identity: %+v", r)
	}
	if r.AreaMM2 <= 0 || r.EnergyPerTask <= 0 || r.Latency <= 0 {
		t.Fatalf("metrics: %+v", r)
	}
	// Sub-mm² structure, sub-10us task, around the published scale
	// (paper: 0.17 mm², 0.08 uJ, 0.66 us).
	if r.AreaMM2 > 2 {
		t.Errorf("FF-subarray area %v mm² implausibly large", r.AreaMM2)
	}
	if r.Latency > 10e-6 {
		t.Errorf("task latency %v implausibly long", r.Latency)
	}
	if r.Accuracy <= 0.8 || r.Accuracy > 1 {
		t.Errorf("accuracy %v outside (0.8, 1]", r.Accuracy)
	}
}

func TestISAAC(t *testing.T) {
	r, err := ISAAC()
	if err != nil {
		t.Fatal(err)
	}
	if r.Name != "ISAAC" || r.CMOSTech != 32 {
		t.Fatalf("identity: %+v", r)
	}
	// The tile latency is exactly the 22-cycle inner pipeline at 100 ns —
	// the paper's Table VII reports 2.2 us.
	if r.Latency != 22*100e-9 {
		t.Fatalf("latency %v, want 2.2us", r.Latency)
	}
	// Area is dominated by imported module costs (paper: 0.37 mm²); our
	// inventory should land within a factor of ~2.
	if r.AreaMM2 < 0.15 || r.AreaMM2 > 0.8 {
		t.Errorf("tile area %v mm² far from the published 0.37", r.AreaMM2)
	}
	if r.EnergyPerTask <= 0 {
		t.Errorf("energy %v", r.EnergyPerTask)
	}
	if r.Accuracy <= 0.8 || r.Accuracy > 1 {
		t.Errorf("accuracy %v outside (0.8, 1]", r.Accuracy)
	}
}

func TestTableVII(t *testing.T) {
	rows, err := TableVII()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0].Name != "PRIME" || rows[1].Name != "ISAAC" {
		t.Fatalf("rows: %+v", rows)
	}
	// The paper's qualitative relations: ISAAC's tile is larger and its
	// task costs more energy and time than PRIME's FF-subarray task.
	if rows[1].AreaMM2 <= rows[0].AreaMM2 {
		t.Errorf("ISAAC tile (%v) should exceed PRIME subarray area (%v)", rows[1].AreaMM2, rows[0].AreaMM2)
	}
	if rows[1].Latency <= rows[0].Latency {
		t.Errorf("ISAAC latency (%v) should exceed PRIME (%v)", rows[1].Latency, rows[0].Latency)
	}
	if rows[1].EnergyPerTask <= rows[0].EnergyPerTask {
		t.Errorf("ISAAC energy (%v) should exceed PRIME (%v)", rows[1].EnergyPerTask, rows[0].EnergyPerTask)
	}
}

// The PRIME mapping invariant the paper states: four memristor cells per
// 8-bit signed weight on 4-bit cells.
func TestPRIMEFourCellsPerWeight(t *testing.T) {
	if _, err := PRIME(); err != nil {
		t.Fatal(err)
	}
}

// ISAAC's imported module inventory reproduces the published tile area.
func TestISAACModuleInventory(t *testing.T) {
	var area float64
	for _, m := range isaacTileModules {
		if m.count < 1 || m.area <= 0 || m.power <= 0 {
			t.Fatalf("module %q invalid: %+v", m.name, m)
		}
		area += float64(m.count) * m.area
	}
	// Published: 0.372 mm² per tile.
	if area < 0.3e6 || area > 0.45e6 {
		t.Fatalf("inventory area %v um² far from the published 0.372 mm²", area)
	}
	if isaacStages != 22 || isaacCycle != 100e-9 {
		t.Fatal("pipeline constants drifted from the publication")
	}
}
