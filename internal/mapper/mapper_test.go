package mapper

import (
	"math"
	"math/rand"
	"testing"

	"mnsim/internal/arch"
	"mnsim/internal/device"
	"mnsim/internal/periph"
	"mnsim/internal/tech"
)

func refDesign(size int, twoXbar bool, weightBits int) *arch.Design {
	return &arch.Design{
		CrossbarSize:      size,
		WeightPolarity:    2,
		TwoCrossbarSigned: twoXbar,
		WeightBits:        weightBits,
		DataBits:          8,
		CMOS:              tech.MustNode(45),
		Wire:              tech.MustInterconnect(45),
		Dev:               device.RRAM(),
		ADC:               periph.ADCVariableSA,
		Neuron:            periph.NeuronSigmoid,
		AreaCoefficient:   arch.DefaultAreaCoefficient,
	}
}

func randomWeights(rows, cols int, rng *rand.Rand) [][]float64 {
	w := make([][]float64, rows)
	for r := range w {
		w[r] = make([]float64, cols)
		for c := range w[r] {
			w[r][c] = rng.Float64()*2 - 1
		}
	}
	return w
}

func TestMapBlocksTiling(t *testing.T) {
	d := refDesign(64, true, 4)
	rng := rand.New(rand.NewSource(1))
	w := randomWeights(130, 70, rng)
	img, err := Map(d, w)
	if err != nil {
		t.Fatal(err)
	}
	// 130 rows over 64 -> 3 row blocks; 70 cols over 64 logical -> 2.
	if len(img.Blocks) != 6 {
		t.Fatalf("got %d blocks, want 6", len(img.Blocks))
	}
	// The trailing block is partial.
	last := img.Blocks[len(img.Blocks)-1]
	if last.Rows != 130-128 || last.LogicalCols != 70-64 {
		t.Fatalf("last block %dx%d", last.Rows, last.LogicalCols)
	}
	// Two crossbars per unit (signed method 1).
	if len(img.Blocks[0].Cells) != 2 {
		t.Fatalf("crossbars per unit = %d", len(img.Blocks[0].Cells))
	}
}

// The core contract: Map then Reconstruct reproduces the weights within
// the quantization error of WeightBits (plus the cell-level rounding).
func TestMapReconstructRoundTrip(t *testing.T) {
	for _, cfg := range []struct {
		name    string
		twoXbar bool
		bits    int
	}{
		{"two-crossbar-4bit", true, 4},
		{"same-crossbar-4bit", false, 4},
		{"two-crossbar-8bit-sliced", true, 8},
	} {
		t.Run(cfg.name, func(t *testing.T) {
			d := refDesign(64, cfg.twoXbar, cfg.bits)
			rng := rand.New(rand.NewSource(7))
			w := randomWeights(100, 40, rng)
			img, err := Map(d, w)
			if err != nil {
				t.Fatal(err)
			}
			got, err := img.Reconstruct()
			if err != nil {
				t.Fatal(err)
			}
			magBits := cfg.bits - 1
			lsb := img.Scale / float64((int(1)<<uint(magBits))-1)
			// Cell-level rounding can add up to half an LSB per slice.
			tol := lsb * 1.5
			for r := range w {
				for c := range w[r] {
					if math.Abs(got[r][c]-w[r][c]) > tol {
						t.Fatalf("(%d,%d): reconstructed %v vs %v (tol %v)", r, c, got[r][c], w[r][c], tol)
					}
				}
			}
		})
	}
}

// Signed weights land on the correct polarity crossbar.
func TestSignedSplit(t *testing.T) {
	d := refDesign(8, true, 4)
	w := [][]float64{{0.5, -0.5}}
	img, err := Map(d, w)
	if err != nil {
		t.Fatal(err)
	}
	blk := img.Blocks[0]
	// Weight (0,0) is positive: crossbar 0 carries it, crossbar 1 is zero.
	if blk.Cells[0][0][0].Level == 0 {
		t.Error("positive weight missing from crossbar 0")
	}
	if blk.Cells[1][0][0].Level != 0 {
		t.Error("positive weight leaked onto the negative crossbar")
	}
	// Weight (0,1) is negative: reversed.
	if blk.Cells[1][0][1].Level == 0 {
		t.Error("negative weight missing from crossbar 1")
	}
	if blk.Cells[0][0][1].Level != 0 {
		t.Error("negative weight leaked onto the positive crossbar")
	}
}

func TestSameCrossbarPairedColumns(t *testing.T) {
	d := refDesign(8, false, 4)
	w := [][]float64{{-1}}
	img, err := Map(d, w)
	if err != nil {
		t.Fatal(err)
	}
	blk := img.Blocks[0]
	if len(blk.Cells) != 1 {
		t.Fatalf("crossbars = %d, want 1", len(blk.Cells))
	}
	// Column 0 = positive part (zero), column 1 = negative part (full).
	if blk.Cells[0][0][0].Level != 0 {
		t.Error("positive column should be zero")
	}
	if blk.Cells[0][0][1].Level != d.Dev.Levels()-1 {
		t.Errorf("negative column level = %d, want full scale", blk.Cells[0][0][1].Level)
	}
}

// 8-bit weights on 7-bit cells use two slices; the high slice carries the
// most-significant bits.
func TestBitSlicing(t *testing.T) {
	d := refDesign(8, true, 8)
	if d.BitSlices() != 2 {
		t.Fatalf("slices = %d", d.BitSlices())
	}
	w := [][]float64{{1.0}}
	img, err := Map(d, w)
	if err != nil {
		t.Fatal(err)
	}
	blk := img.Blocks[0]
	// 8-bit signed weights carry 7 magnitude bits; on 7-bit cells the low
	// slice holds all of them and the provisioned top slice carries none.
	if blk.Cells[0][0][0].Level != 0 {
		t.Fatalf("top slice level = %d, want 0 (no magnitude bits left)", blk.Cells[0][0][0].Level)
	}
	if blk.Cells[0][0][1].Level != d.Dev.Levels()-1 {
		t.Fatalf("low slice level = %d, want full scale", blk.Cells[0][0][1].Level)
	}
	// On 4-bit cells (the PRIME configuration) both slices are used.
	d2 := refDesign(8, true, 8)
	d2.Dev.LevelBits = 4
	img2, err := Map(d2, w)
	if err != nil {
		t.Fatal(err)
	}
	blk2 := img2.Blocks[0]
	if blk2.Cells[0][0][0].Level != d2.Dev.Levels()-1 || blk2.Cells[0][0][1].Level != d2.Dev.Levels()-1 {
		t.Fatalf("4-bit-cell slices of full-scale weight: %+v", blk2.Cells[0][0][:2])
	}
}

func TestMapErrors(t *testing.T) {
	d := refDesign(64, true, 4)
	if _, err := Map(d, nil); err == nil {
		t.Error("empty matrix accepted")
	}
	if _, err := Map(d, [][]float64{{}}); err == nil {
		t.Error("empty rows accepted")
	}
	if _, err := Map(d, [][]float64{{1, 2}, {3}}); err == nil {
		t.Error("ragged matrix accepted")
	}
	if _, err := Map(d, [][]float64{{math.NaN()}}); err == nil {
		t.Error("NaN accepted")
	}
	bad := refDesign(64, true, 0)
	if _, err := Map(bad, [][]float64{{1}}); err == nil {
		t.Error("invalid design accepted")
	}
	uns := refDesign(64, true, 4)
	uns.WeightPolarity = 1
	uns.TwoCrossbarSigned = false
	if _, err := Map(uns, [][]float64{{-1}}); err == nil {
		t.Error("negative weight accepted by unsigned design")
	}
}

func TestZeroMatrixScale(t *testing.T) {
	d := refDesign(8, true, 4)
	img, err := Map(d, [][]float64{{0, 0}})
	if err != nil {
		t.Fatal(err)
	}
	got, err := img.Reconstruct()
	if err != nil {
		t.Fatal(err)
	}
	if got[0][0] != 0 || got[0][1] != 0 {
		t.Fatalf("zero matrix reconstructed as %v", got)
	}
}

func TestWriteProgramAndCellCount(t *testing.T) {
	d := refDesign(64, true, 4)
	rng := rand.New(rand.NewSource(3))
	img, err := Map(d, randomWeights(64, 64, rng))
	if err != nil {
		t.Fatal(err)
	}
	// 64x64 weights, 1 slice, 2 crossbars -> 2*64*64 cells.
	if got := img.CellCount(); got != 2*64*64 {
		t.Fatalf("cell count = %d", got)
	}
	prog := img.WriteProgram(0)
	if len(prog) != 1 || prog[0].Op != arch.OpWrite || prog[0].Count != img.CellCount() {
		t.Fatalf("program: %+v", prog)
	}
	// The program runs on a matching accelerator.
	a, err := arch.NewAccelerator(d, []arch.LayerDims{{Rows: 64, Cols: 64, Passes: 1}}, [2]int{128, 128})
	if err != nil {
		t.Fatal(err)
	}
	ctl := arch.Controller{Accel: a}
	if _, err := ctl.Run(prog); err != nil {
		t.Fatal(err)
	}
}

// Property: reconstruction error is bounded for random shapes and designs.
func TestRoundTripRandomShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 10; trial++ {
		rows := 1 + rng.Intn(100)
		cols := 1 + rng.Intn(100)
		d := refDesign(32, rng.Intn(2) == 0, 4)
		w := randomWeights(rows, cols, rng)
		img, err := Map(d, w)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		got, err := img.Reconstruct()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		lsb := img.Scale / 7 // 3 magnitude bits
		for r := range w {
			for c := range w[r] {
				if math.Abs(got[r][c]-w[r][c]) > 1.5*lsb {
					t.Fatalf("trial %d (%d,%d): %v vs %v", trial, r, c, got[r][c], w[r][c])
				}
			}
		}
	}
}

// Property: every logical weight programs exactly CellsPerWeight cells per
// crossbar pair, whatever the shape or mapping, so the total cell count is
// weights × CellsPerWeight × crossbars-per-unit ÷ column sharing — checked
// directly against the per-weight invariant.
func TestCellCountFormula(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 8; trial++ {
		d := refDesign(32, trial%2 == 0, 4)
		rows, cols := 1+rng.Intn(90), 1+rng.Intn(90)
		img, err := Map(d, randomWeights(rows, cols, rng))
		if err != nil {
			t.Fatal(err)
		}
		// Every crossbar of a block allocates LogicalCols × CellsPerWeight
		// physical columns over the block's rows.
		want := 0
		for i := range img.Blocks {
			blk := &img.Blocks[i]
			want += len(blk.Cells) * blk.Rows * blk.LogicalCols * d.CellsPerWeight()
		}
		if got := img.CellCount(); got != want {
			t.Fatalf("trial %d: CellCount %d vs formula %d", trial, got, want)
		}
	}
}
