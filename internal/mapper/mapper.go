// Package mapper implements the weight-mapping step of MNSIM's software
// flow (Fig. 3): a trained weight matrix is decomposed onto the physical
// crossbars of a computation bank — split into row/column blocks (Eq. 5),
// signed weights separated per the design's polarity mapping
// (Section III.C.1), wide weights bit-sliced across cells
// (Section III.B.2), and each cell quantized to a programmable device
// level. The resulting image drives WRITE programs and circuit-level
// simulation, and can be read back to verify the stored network.
package mapper

import (
	"fmt"
	"math"

	"mnsim/internal/arch"
)

// CellAssignment locates one programmed cell inside the bank.
type CellAssignment struct {
	// Level is the programmed device level index.
	Level int
	// Resistance is the calibrated resistance of that level in ohms.
	Resistance float64
}

// Block is the programming image of one computation unit: the cell levels
// of each physical crossbar in the unit, indexed [crossbar][row][col].
type Block struct {
	// RowBlock and ColBlock locate the unit in the bank's tiling.
	RowBlock, ColBlock int
	// Rows and LogicalCols give the block's logical weight shape.
	Rows, LogicalCols int
	// Cells holds the per-crossbar programming image; Cells[x][r][c] is the
	// assignment of physical cell (r, c) on crossbar x of the unit.
	Cells [][][]CellAssignment
}

// Image is the full programming image of one layer on one bank.
type Image struct {
	Design *arch.Design
	// Rows and Cols are the layer's logical weight shape.
	Rows, Cols int
	// Blocks holds one entry per computation unit, row-major over
	// (RowBlock, ColBlock).
	Blocks []Block
	// Scale is the weight magnitude one full-scale cell represents; weights
	// are normalised by the matrix's maximum magnitude before quantization.
	Scale float64
}

// Map decomposes a signed weight matrix (weights[r][c], any real values)
// onto the design's crossbars.
func Map(d *arch.Design, weights [][]float64) (*Image, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	rows := len(weights)
	if rows == 0 {
		return nil, fmt.Errorf("mapper: empty weight matrix")
	}
	cols := len(weights[0])
	if cols == 0 {
		return nil, fmt.Errorf("mapper: empty weight rows")
	}
	maxMag := 0.0
	for r, row := range weights {
		if len(row) != cols {
			return nil, fmt.Errorf("mapper: ragged weight matrix at row %d", r)
		}
		for _, w := range row {
			if math.IsNaN(w) || math.IsInf(w, 0) {
				return nil, fmt.Errorf("mapper: non-finite weight at row %d", r)
			}
			if m := math.Abs(w); m > maxMag {
				maxMag = m
			}
		}
	}
	if maxMag == 0 {
		maxMag = 1
	}
	if d.WeightPolarity == 1 {
		for r, row := range weights {
			for _, w := range row {
				if w < 0 {
					return nil, fmt.Errorf("mapper: negative weight at row %d but Weight_Polarity is 1", r)
				}
			}
		}
	}
	s := d.CrossbarSize
	logicalCols := s / d.CellsPerWeight()
	if logicalCols < 1 {
		return nil, fmt.Errorf("mapper: crossbar size %d cannot hold one %d-bit weight", s, d.WeightBits)
	}
	img := &Image{Design: d, Rows: rows, Cols: cols, Scale: maxMag}
	rowBlocks := (rows + s - 1) / s
	colBlocks := (cols + logicalCols - 1) / logicalCols
	for rb := 0; rb < rowBlocks; rb++ {
		for cb := 0; cb < colBlocks; cb++ {
			blk, err := mapBlock(d, weights, maxMag, rb, cb, s, logicalCols, rows, cols)
			if err != nil {
				return nil, err
			}
			img.Blocks = append(img.Blocks, *blk)
		}
	}
	return img, nil
}

// mapBlock builds one unit's image.
func mapBlock(d *arch.Design, weights [][]float64, scale float64, rb, cb, s, logicalCols, rows, cols int) (*Block, error) {
	r0 := rb * s
	c0 := cb * logicalCols
	blockRows := minInt(s, rows-r0)
	blockCols := minInt(logicalCols, cols-c0)
	nXbar := d.CrossbarsPerUnit()
	blk := &Block{RowBlock: rb, ColBlock: cb, Rows: blockRows, LogicalCols: blockCols}
	blk.Cells = make([][][]CellAssignment, nXbar)
	physCols := blockCols * d.CellsPerWeight()
	for x := range blk.Cells {
		blk.Cells[x] = make([][]CellAssignment, blockRows)
		for r := range blk.Cells[x] {
			blk.Cells[x][r] = make([]CellAssignment, physCols)
		}
	}
	slices := d.BitSlices()
	cellBits := d.Dev.LevelBits
	for r := 0; r < blockRows; r++ {
		for c := 0; c < blockCols; c++ {
			w := weights[r0+r][c0+c] / scale
			pos, neg := w, 0.0
			if w < 0 {
				pos, neg = 0, -w
			}
			if err := programWeight(d, blk, r, c, pos, neg, slices, cellBits); err != nil {
				return nil, err
			}
		}
	}
	return blk, nil
}

// programWeight writes one logical weight's cells. The magnitude is first
// quantized to WeightBits, then split into big-endian slices of cellBits
// each.
func programWeight(d *arch.Design, blk *Block, r, c int, pos, neg float64, slices, cellBits int) error {
	magBits := d.WeightBits
	if d.WeightPolarity == 2 {
		magBits-- // one bit is the sign
		if magBits < 1 {
			magBits = 1
		}
	}
	maxCode := (1 << uint(magBits)) - 1
	codePos := int(math.Round(pos * float64(maxCode)))
	codeNeg := int(math.Round(neg * float64(maxCode)))
	write := func(xbar, physCol, code int) error {
		// Split code into `slices` groups of cellBits, most significant
		// slice first. A slice's code range is set by the magnitude bits it
		// actually carries (the top slice may be partial), and that range
		// is stretched over the device's full level range.
		for sl := 0; sl < slices; sl++ {
			shift := uint((slices - 1 - sl) * cellBits)
			cellCode := (code >> shift) & ((1 << uint(cellBits)) - 1)
			lvl := scaleLevel(cellCode, sliceMax(magBits, slices, cellBits, sl), d.Dev.Levels()-1)
			res, err := d.Dev.LevelResistance(lvl)
			if err != nil {
				return err
			}
			blk.Cells[xbar][r][physCol+sl] = CellAssignment{Level: lvl, Resistance: res}
		}
		return nil
	}
	switch {
	case d.WeightPolarity == 1:
		return write(0, c*slices, codePos)
	case d.TwoCrossbarSigned:
		// Method (1): crossbar 0 holds positive parts, crossbar 1 negative.
		if err := write(0, c*slices, codePos); err != nil {
			return err
		}
		return write(1, c*slices, codeNeg)
	default:
		// Method (2): paired columns in the same crossbar.
		if err := write(0, c*2*slices, codePos); err != nil {
			return err
		}
		return write(0, c*2*slices+slices, codeNeg)
	}
}

// scaleLevel maps a cell code in [0, fromMax] onto a device level in
// [0, toMax].
func scaleLevel(code, fromMax, toMax int) int {
	if fromMax <= 0 {
		return 0
	}
	return int(math.Round(float64(code) / float64(fromMax) * float64(toMax)))
}

// sliceMax returns the largest code slice sl (0 = most significant) can
// carry when magBits magnitude bits are spread big-endian over `slices`
// groups of cellBits: low slices are full, the top slice holds the
// remainder (possibly zero bits).
func sliceMax(magBits, slices, cellBits, sl int) int {
	avail := magBits - (slices-1-sl)*cellBits
	if avail <= 0 {
		return 0
	}
	if avail > cellBits {
		avail = cellBits
	}
	return (1 << uint(avail)) - 1
}

// Reconstruct reads the image back into a weight matrix (values in the
// original scale). Round-tripping Map→Reconstruct reproduces the weights up
// to the quantization error of WeightBits — the verification step after
// programming.
func (img *Image) Reconstruct() ([][]float64, error) {
	d := img.Design
	out := make([][]float64, img.Rows)
	for r := range out {
		out[r] = make([]float64, img.Cols)
	}
	s := d.CrossbarSize
	logicalCols := s / d.CellsPerWeight()
	slices := d.BitSlices()
	cellBits := d.Dev.LevelBits
	magBits := d.WeightBits
	if d.WeightPolarity == 2 {
		magBits--
		if magBits < 1 {
			magBits = 1
		}
	}
	maxCode := (1 << uint(magBits)) - 1
	read := func(blk *Block, xbar, r, physCol int) (int, error) {
		code := 0
		for sl := 0; sl < slices; sl++ {
			a := blk.Cells[xbar][r][physCol+sl]
			cellCode := scaleLevel(a.Level, d.Dev.Levels()-1, sliceMax(magBits, slices, cellBits, sl))
			code = code<<uint(cellBits) | cellCode
		}
		return code, nil
	}
	for i := range img.Blocks {
		blk := &img.Blocks[i]
		r0 := blk.RowBlock * s
		c0 := blk.ColBlock * logicalCols
		for r := 0; r < blk.Rows; r++ {
			for c := 0; c < blk.LogicalCols; c++ {
				var pos, neg int
				var err error
				switch {
				case d.WeightPolarity == 1:
					pos, err = read(blk, 0, r, c*slices)
				case d.TwoCrossbarSigned:
					pos, err = read(blk, 0, r, c*slices)
					if err == nil {
						neg, err = read(blk, 1, r, c*slices)
					}
				default:
					pos, err = read(blk, 0, r, c*2*slices)
					if err == nil {
						neg, err = read(blk, 0, r, c*2*slices+slices)
					}
				}
				if err != nil {
					return nil, err
				}
				out[r0+r][c0+c] = (float64(pos) - float64(neg)) / float64(maxCode) * img.Scale
			}
		}
	}
	return out, nil
}

// WriteProgram returns the controller WRITE instruction covering this
// image's cell count on the given bank.
func (img *Image) WriteProgram(bank int) []arch.Instruction {
	return []arch.Instruction{{Op: arch.OpWrite, Bank: bank, Count: img.CellCount()}}
}

// CellCount returns the number of programmed cells in the image.
func (img *Image) CellCount() int {
	total := 0
	for i := range img.Blocks {
		blk := &img.Blocks[i]
		for _, xbar := range blk.Cells {
			for _, row := range xbar {
				total += len(row)
			}
		}
	}
	return total
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
