package report

import (
	"strings"
	"testing"
)

func sample() *Table {
	t := &Table{Title: "Demo", Headers: []string{"name", "value"}}
	t.AddRow("alpha", 1.5)
	t.AddRow("beta", 42)
	return t
}

func TestRenderAligned(t *testing.T) {
	var sb strings.Builder
	if err := sample().Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Demo", "name", "value", "alpha", "1.5", "beta", "42", "---"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	// Columns align: "value" and "1.5" start at the same offset.
	h := strings.Index(lines[1], "value")
	v := strings.Index(lines[3], "1.5")
	if h != v {
		t.Errorf("columns misaligned: header at %d, value at %d", h, v)
	}
}

func TestRenderEmptyTableFails(t *testing.T) {
	empty := &Table{Title: "nothing"}
	if err := empty.Render(&strings.Builder{}); err == nil {
		t.Fatal("empty table should fail")
	}
	if !strings.Contains(empty.String(), "report:") {
		t.Fatal("String should surface the error")
	}
}

func TestHeaderlessTable(t *testing.T) {
	tab := &Table{}
	tab.AddRow("a", "b")
	out := tab.String()
	if strings.Contains(out, "---") {
		t.Error("headerless table should not draw a rule")
	}
	if !strings.Contains(out, "a  b") {
		t.Errorf("row missing: %q", out)
	}
}

func TestRaggedRows(t *testing.T) {
	tab := &Table{Headers: []string{"x"}}
	tab.AddRow("a", "b", "c")
	tab.AddRow("only")
	out := tab.String()
	if !strings.Contains(out, "c") || !strings.Contains(out, "only") {
		t.Errorf("ragged rendering: %q", out)
	}
}

func TestAddRowFormatting(t *testing.T) {
	tab := &Table{Headers: []string{"v"}}
	tab.AddRow(3.14159265)
	tab.AddRow(7)
	tab.AddRow(stringer{})
	out := tab.String()
	if !strings.Contains(out, "3.142") {
		t.Errorf("float formatting: %q", out)
	}
	if !strings.Contains(out, "7") || !strings.Contains(out, "custom") {
		t.Errorf("int/stringer formatting: %q", out)
	}
}

type stringer struct{}

func (stringer) String() string { return "custom" }

func TestWriteCSV(t *testing.T) {
	var sb strings.Builder
	if err := sample().WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	want := "name,value\nalpha,1.5\nbeta,42\n"
	if sb.String() != want {
		t.Fatalf("CSV = %q, want %q", sb.String(), want)
	}
}

func TestCSVQuoting(t *testing.T) {
	tab := &Table{}
	tab.AddRow("a,b", "plain")
	var sb strings.Builder
	if err := tab.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `"a,b"`) {
		t.Fatalf("comma not quoted: %q", sb.String())
	}
}

func TestUnitFormatters(t *testing.T) {
	cases := map[string]string{
		Seconds(2.5):     "2.5 s",
		Seconds(1e-3):    "1 ms",
		Seconds(42e-6):   "42 us",
		Seconds(3e-9):    "3 ns",
		Seconds(5e-13):   "0.5 ps",
		Joules(1.5):      "1.5 J",
		Joules(2e-3):     "2 mJ",
		Joules(3e-6):     "3 uJ",
		Joules(4e-9):     "4 nJ",
		Joules(5e-12):    "5 pJ",
		Watts(2):         "2 W",
		Watts(3e-3):      "3 mW",
		Watts(4e-6):      "4 uW",
		Percent(0.12345): "12.35%",
	}
	for got, want := range cases {
		if got != want {
			t.Errorf("formatter: got %q, want %q", got, want)
		}
	}
}
