// Package report renders the simulator's result tables — the ASCII tables
// printed by the cmd tools and benches that mirror the paper's Tables II–VII,
// plus CSV output for plotting the figures.
package report

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Table is a titled grid of cells.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends one row; values are formatted with %v unless they are
// float64 (compact %.4g) or already strings.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = strconv.FormatFloat(v, 'g', 4, 64)
		case fmt.Stringer:
			row[i] = v.String()
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render writes the table as aligned ASCII.
func (t *Table) Render(w io.Writer) error {
	cols := len(t.Headers)
	for _, r := range t.Rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	if cols == 0 {
		return fmt.Errorf("report: empty table %q", t.Title)
	}
	widths := make([]int, cols)
	measure := func(row []string) {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	measure(t.Headers)
	for _, r := range t.Rows {
		measure(r)
	}
	var sb strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&sb, "%s\n", t.Title)
	}
	line := func(row []string) {
		for i := 0; i < cols; i++ {
			cell := ""
			if i < len(row) {
				cell = row[i]
			}
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], cell)
		}
		sb.WriteString("\n")
	}
	if len(t.Headers) > 0 {
		line(t.Headers)
		total := 0
		for _, w := range widths {
			total += w
		}
		sb.WriteString(strings.Repeat("-", total+2*(cols-1)))
		sb.WriteString("\n")
	}
	for _, r := range t.Rows {
		line(r)
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// String renders the table to a string, ignoring write errors (strings
// builders cannot fail).
func (t *Table) String() string {
	var sb strings.Builder
	if err := t.Render(&sb); err != nil {
		return fmt.Sprintf("report: %v", err)
	}
	return sb.String()
}

// WriteCSV emits the table as CSV (headers first when present).
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if len(t.Headers) > 0 {
		if err := cw.Write(t.Headers); err != nil {
			return err
		}
	}
	for _, r := range t.Rows {
		if err := cw.Write(r); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Seconds formats a duration in engineering units.
func Seconds(s float64) string {
	switch {
	case s >= 1:
		return fmt.Sprintf("%.3g s", s)
	case s >= 1e-3:
		return fmt.Sprintf("%.3g ms", s*1e3)
	case s >= 1e-6:
		return fmt.Sprintf("%.3g us", s*1e6)
	case s >= 1e-9:
		return fmt.Sprintf("%.3g ns", s*1e9)
	default:
		return fmt.Sprintf("%.3g ps", s*1e12)
	}
}

// Joules formats an energy in engineering units.
func Joules(j float64) string {
	switch {
	case j >= 1:
		return fmt.Sprintf("%.3g J", j)
	case j >= 1e-3:
		return fmt.Sprintf("%.3g mJ", j*1e3)
	case j >= 1e-6:
		return fmt.Sprintf("%.3g uJ", j*1e6)
	case j >= 1e-9:
		return fmt.Sprintf("%.3g nJ", j*1e9)
	default:
		return fmt.Sprintf("%.3g pJ", j*1e12)
	}
}

// Watts formats a power in engineering units.
func Watts(w float64) string {
	switch {
	case w >= 1:
		return fmt.Sprintf("%.3g W", w)
	case w >= 1e-3:
		return fmt.Sprintf("%.3g mW", w*1e3)
	default:
		return fmt.Sprintf("%.3g uW", w*1e6)
	}
}

// Percent formats a ratio as a percentage.
func Percent(r float64) string { return fmt.Sprintf("%.2f%%", r*100) }
