package replay

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mnsim/internal/circuit"
	"mnsim/internal/device"
	"mnsim/internal/telemetry"
)

func uniformR(m, n int, r float64) [][]float64 {
	out := make([][]float64, m)
	for i := range out {
		out[i] = make([]float64, n)
		for j := range out[i] {
			out[i][j] = r
		}
	}
	return out
}

func testCrossbar() *circuit.Crossbar {
	return &circuit.Crossbar{
		M: 4, N: 4, R: uniformR(4, 4, 150e3),
		WireR: 0.5, RSense: 1500, Dev: device.RRAM(),
	}
}

// Record a successful solve, snapshot it, reload, replay: bit-identical.
func TestReplayRoundTripSuccess(t *testing.T) {
	c := testCrossbar()
	vin := []float64{0.3, 0.2, 0.1, 0.3}
	opt := circuit.SolveOptions{Tol: 1e-9, MaxNewton: 50, CGTol: 1e-10}
	res, err := c.Solve(vin, opt)
	if err != nil {
		t.Fatal(err)
	}
	snap := c.NewSnapshot(vin, opt, res, nil)
	path := filepath.Join(t.TempDir(), "snap.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := circuit.WriteSnapshot(f, snap); err != nil {
		t.Fatal(err)
	}
	f.Close()
	loaded, err := circuit.LoadSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := Snapshot(context.Background(), loaded, &sb, true); err != nil {
		t.Fatalf("replay mismatch: %v\n%s", err, sb.String())
	}
	if !strings.Contains(sb.String(), "bit-identical") {
		t.Fatalf("replay report missing verdict:\n%s", sb.String())
	}
	// Verbose mode prints the per-iteration trajectory.
	if !strings.Contains(sb.String(), "newton  0") && !strings.Contains(sb.String(), "newton 0") {
		t.Fatalf("verbose replay missing iteration lines:\n%s", sb.String())
	}
}

// A tampered recorded outcome must be detected as a mismatch.
func TestReplayDetectsMismatch(t *testing.T) {
	c := testCrossbar()
	vin := []float64{0.3, 0.2, 0.1, 0.3}
	opt := circuit.SolveOptions{Tol: 1e-9, MaxNewton: 50, CGTol: 1e-10}
	res, err := c.Solve(vin, opt)
	if err != nil {
		t.Fatal(err)
	}
	snap := c.NewSnapshot(vin, opt, res, nil)
	snap.Outcome.VOut[2] += 1e-15
	var sb strings.Builder
	err = Snapshot(context.Background(), snap, &sb, false)
	if !errors.Is(err, ErrMismatch) {
		t.Fatalf("tampered snapshot replayed clean: %v", err)
	}
}

// The flight-recorder loop end to end: journal a diverging solve, then
// replay the journal file — the captured snapshot must reproduce the
// divergence bit-identically.
func TestReplayJournalDivergence(t *testing.T) {
	j := telemetry.DefaultJournal()
	jp := filepath.Join(t.TempDir(), "journal.jsonl")
	if err := j.Open(jp); err != nil {
		t.Fatal(err)
	}
	defer func() {
		j.Close()
		j.Reset()
	}()
	dev := device.RRAM()
	dev.NonlinearVc = 2e-3
	c := &circuit.Crossbar{M: 2, N: 2, R: uniformR(2, 2, 100e3), WireR: 1, RSense: 1500, Dev: dev}
	if _, err := c.Solve([]float64{0.3, 0.3}, circuit.SolveOptions{MaxNewton: 5}); !errors.Is(err, circuit.ErrNewtonDiverged) {
		t.Fatalf("want divergence, got %v", err)
	}
	j.Close()
	var sb strings.Builder
	n, err := File(context.Background(), jp, &sb, true)
	if err != nil {
		t.Fatalf("journal replay: %v\n%s", err, sb.String())
	}
	if n != 1 {
		t.Fatalf("replayed %d snapshots, want 1", n)
	}
	if !strings.Contains(sb.String(), "failure reproduced bit-identically") {
		t.Fatalf("replay report:\n%s", sb.String())
	}
	// Verbose failure replay surfaces the condition estimate.
	if !strings.Contains(sb.String(), "cond(J)") {
		t.Fatalf("verbose failure replay missing cond estimate:\n%s", sb.String())
	}
}

// A non-settling transient round-trips through its snapshot too.
func TestReplayTransientNonSettle(t *testing.T) {
	j := telemetry.DefaultJournal()
	jp := filepath.Join(t.TempDir(), "journal.jsonl")
	if err := j.Open(jp); err != nil {
		t.Fatal(err)
	}
	defer func() {
		j.Close()
		j.Reset()
	}()
	c := &circuit.Crossbar{M: 2, N: 2, R: uniformR(2, 2, 1e3), WireR: 1, RSense: 100, Linear: true}
	_, err := c.SettleTime([]float64{0.3, 0.3},
		circuit.TransientOptions{NodeCap: 1e-15, MaxSteps: 1, Dt: 1e-15})
	if !errors.Is(err, circuit.ErrNotSettled) {
		t.Fatalf("want ErrNotSettled, got %v", err)
	}
	j.Close()
	var sb strings.Builder
	if _, err := File(context.Background(), jp, &sb, false); err != nil {
		t.Fatalf("transient replay: %v\n%s", err, sb.String())
	}
	if !strings.Contains(sb.String(), "non-settle reproduced bit-identically") {
		t.Fatalf("replay report:\n%s", sb.String())
	}
}

// Journals without snapshots and unreadable paths fail loudly.
func TestReplayFileErrors(t *testing.T) {
	dir := t.TempDir()
	var sb strings.Builder
	if _, err := File(context.Background(), filepath.Join(dir, "missing.json"), &sb, false); err == nil {
		t.Error("missing snapshot accepted")
	}
	empty := filepath.Join(dir, "empty.jsonl")
	if err := os.WriteFile(empty, []byte(`{"seq":1,"t_ns":1,"type":"journal"}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := File(context.Background(), empty, &sb, false); err == nil {
		t.Error("snapshot-less journal accepted")
	}
}

// The cost model must survive the journal → snapshot → replay loop
// bit-identically: operation counts are integers, so the recorded and
// re-run models compare exactly — and a tampered count is a mismatch.
func TestReplayCostRoundTrip(t *testing.T) {
	j := telemetry.DefaultJournal()
	jp := filepath.Join(t.TempDir(), "journal.jsonl")
	if err := j.Open(jp); err != nil {
		t.Fatal(err)
	}
	defer func() {
		j.Close()
		j.Reset()
	}()
	dev := device.RRAM()
	dev.NonlinearVc = 2e-3
	c := &circuit.Crossbar{M: 2, N: 2, R: uniformR(2, 2, 100e3), WireR: 1, RSense: 1500, Dev: dev}
	if _, err := c.Solve([]float64{0.3, 0.3}, circuit.SolveOptions{MaxNewton: 5}); !errors.Is(err, circuit.ErrNewtonDiverged) {
		t.Fatalf("want divergence, got %v", err)
	}
	j.Close()
	// The journaled solve_end event carries the rolled-up cost.
	events, err := telemetry.ReadJournalFile(jp)
	if err != nil {
		t.Fatal(err)
	}
	sawFlops := false
	for _, ev := range events {
		if ev.Type == telemetry.EvSolveEnd {
			if f, ok := ev.Data["flops"].(float64); ok && f > 0 {
				sawFlops = true
			}
		}
	}
	if !sawFlops {
		t.Fatal("no solve_end event carries a positive flops total")
	}
	// The captured snapshot records the cost model...
	snaps := telemetry.JournalSnapshotPaths(jp, events)
	if len(snaps) != 1 {
		t.Fatalf("want 1 snapshot, got %d", len(snaps))
	}
	snap, err := circuit.LoadSnapshot(snaps[0])
	if err != nil {
		t.Fatal(err)
	}
	if snap.Outcome.Cost == nil || snap.Outcome.Cost.Total().Flops == 0 {
		t.Fatalf("snapshot outcome has no cost model: %+v", snap.Outcome.Cost)
	}
	// ...and a verbose replay reproduces it exactly, rendering attribution.
	var sb strings.Builder
	if err := Snapshot(context.Background(), snap, &sb, true); err != nil {
		t.Fatalf("cost replay mismatch: %v\n%s", err, sb.String())
	}
	for _, want := range []string{"cost assembly", "cost cg-loop", "cost total", "decay rate"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("verbose replay missing %q:\n%s", want, sb.String())
		}
	}
	// A tampered operation count must be caught.
	snap.Outcome.Cost.CGLoop.Flops++
	sb.Reset()
	if err := Snapshot(context.Background(), snap, &sb, false); !errors.Is(err, ErrMismatch) {
		t.Fatalf("tampered cost replayed clean: %v", err)
	}
}

// A snapshot recorded with accounting off (or by a pre-cost build) has no
// cost model; replay must skip the check rather than flag a mismatch.
func TestReplayCostAbsentSkipsCheck(t *testing.T) {
	c := testCrossbar()
	vin := []float64{0.3, 0.2, 0.1, 0.3}
	opt := circuit.SolveOptions{NoCostAccounting: true}
	res, err := c.Solve(vin, opt)
	if err != nil {
		t.Fatal(err)
	}
	snap := c.NewSnapshot(vin, opt, res, nil)
	if snap.Outcome.Cost != nil {
		t.Fatalf("accounting-off snapshot recorded a cost model: %+v", snap.Outcome.Cost)
	}
	// Replays re-solve with the recorded options, so the re-run is also
	// accounting-off and the recorded/absent cost must compare clean.
	var sb strings.Builder
	if err := Snapshot(context.Background(), snap, &sb, false); err != nil {
		t.Fatalf("cost-less snapshot failed replay: %v\n%s", err, sb.String())
	}
}
