// Package replay re-runs solver snapshots captured by the flight recorder
// (internal/telemetry journal + internal/circuit snapshots) and checks the
// re-run against the recorded outcome bit for bit. The solver is
// deterministic and encoding/json round-trips float64 exactly, so any
// deviation means the code under test changed behaviour — which makes
// replay both a debugging loupe (verbose per-iteration diagnostics on a
// captured failure) and a regression oracle.
package replay

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"strings"

	"mnsim/internal/circuit"
	"mnsim/internal/linalg"
	"mnsim/internal/telemetry"
)

// ErrMismatch is the sentinel every replay divergence wraps: the re-run
// completed but did not reproduce the recorded outcome bit-identically.
var ErrMismatch = errors.New("replay: outcome mismatch")

func mismatch(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrMismatch, fmt.Sprintf(format, args...))
}

// jsonFinite mirrors the sanitisation the snapshot writer applies to
// non-finite floats, so live values compare equal to their recorded form.
func jsonFinite(x float64) float64 {
	switch {
	case math.IsNaN(x):
		return 0
	case math.IsInf(x, 1):
		return math.MaxFloat64
	case math.IsInf(x, -1):
		return -math.MaxFloat64
	}
	return x
}

// Snapshot re-runs one snapshot and verifies the recorded outcome. The
// human-readable replay report goes to w; verbose additionally prints the
// re-run's per-iteration trajectory. A nil error means the outcome was
// reproduced bit-identically.
func Snapshot(ctx context.Context, s *circuit.Snapshot, w io.Writer, verbose bool) error {
	if err := s.Validate(); err != nil {
		return err
	}
	c := s.Crossbar()
	fmt.Fprintf(w, "replay: %s solve, %dx%d crossbar, wire %g Ω, rsense %g Ω",
		s.Kind, s.M, s.N, s.WireR, s.RSense)
	if s.Tool != "" {
		fmt.Fprintf(w, " (recorded by %s)", s.Tool)
	}
	fmt.Fprintln(w)
	switch s.Kind {
	case "dc":
		return replayDC(ctx, c, s, w, verbose)
	case "transient":
		return replayTransient(c, s, w, verbose)
	default:
		return fmt.Errorf("replay: unknown snapshot kind %q", s.Kind)
	}
}

func replayDC(ctx context.Context, c *circuit.Crossbar, s *circuit.Snapshot, w io.Writer, verbose bool) error {
	opt := s.Options
	if !s.Outcome.OK {
		// Diagnosing a failure is the point of the replay: always estimate
		// conditioning on the re-run.
		opt.Diagnostics = true
	}
	if s.WarmV != nil {
		// The recorded solve started from a warm operating point; reseed it
		// so the re-run follows the same Newton trajectory bit for bit.
		opt.State = circuit.WarmState(s.WarmV)
	}
	res, err := c.SolveContext(ctx, s.Vin, opt)
	if verbose {
		printDiagnostics(w, res, err)
	}
	if s.Outcome.OK {
		if err != nil {
			return mismatch("recorded success, re-run failed: %v", err)
		}
		if got, want := len(res.VOut), len(s.Outcome.VOut); got != want {
			return mismatch("VOut length %d, recorded %d", got, want)
		}
		for n, v := range res.VOut {
			//lint:ignore nofloateq bit-identical replay is an exact-equality contract by design
			if v != s.Outcome.VOut[n] {
				return mismatch("VOut[%d] = %v, recorded %v (Δ %g)",
					n, v, s.Outcome.VOut[n], v-s.Outcome.VOut[n])
			}
		}
		//lint:ignore nofloateq bit-identical replay is an exact-equality contract by design
		if res.Power != s.Outcome.Power {
			return mismatch("Power = %v, recorded %v", res.Power, s.Outcome.Power)
		}
		if res.NewtonIters != s.Outcome.NewtonIters || res.CGIters != s.Outcome.CGIters {
			return mismatch("iterations %d/%d, recorded %d/%d",
				res.NewtonIters, res.CGIters, s.Outcome.NewtonIters, s.Outcome.CGIters)
		}
		if err := compareCost(res.Diag, s.Outcome.Cost); err != nil {
			return err
		}
		fmt.Fprintf(w, "replay: OK — Vout bit-identical across %d columns (%d Newton / %d CG iters)\n",
			len(res.VOut), res.NewtonIters, res.CGIters)
		return nil
	}
	if err == nil {
		return mismatch("recorded failure %q, re-run converged", s.Outcome.Err)
	}
	if err.Error() != s.Outcome.Err {
		return mismatch("error %q, recorded %q", err.Error(), s.Outcome.Err)
	}
	var de *circuit.DivergenceError
	if errors.As(err, &de) {
		if de.Iters != s.Outcome.NewtonIters {
			return mismatch("divergence after %d iters, recorded %d", de.Iters, s.Outcome.NewtonIters)
		}
		if err := compareCost(de.Diag, s.Outcome.Cost); err != nil {
			return err
		}
		//lint:ignore nofloateq bit-identical replay is an exact-equality contract by design
		if jsonFinite(de.FinalResidual) != s.Outcome.FinalResidual {
			return mismatch("final residual %v, recorded %v", de.FinalResidual, s.Outcome.FinalResidual)
		}
		if de.Diag != nil {
			if got, want := len(de.Diag.Residuals), len(s.Outcome.Residuals); got != want {
				return mismatch("trajectory length %d, recorded %d", got, want)
			}
			for i, r := range de.Diag.Residuals {
				//lint:ignore nofloateq bit-identical replay is an exact-equality contract by design
				if jsonFinite(r) != s.Outcome.Residuals[i] {
					return mismatch("residual[%d] = %v, recorded %v", i, r, s.Outcome.Residuals[i])
				}
			}
		}
	}
	fmt.Fprintf(w, "replay: OK — failure reproduced bit-identically: %s\n", s.Outcome.Err)
	return nil
}

func replayTransient(c *circuit.Crossbar, s *circuit.Snapshot, w io.Writer, verbose bool) error {
	settle, err := c.SettleTime(s.Vin, *s.Transient)
	if s.Outcome.OK {
		if err != nil {
			return mismatch("recorded settle, re-run failed: %v", err)
		}
		//lint:ignore nofloateq bit-identical replay is an exact-equality contract by design
		if settle != s.Outcome.SettleSeconds {
			return mismatch("settle %v s, recorded %v s", settle, s.Outcome.SettleSeconds)
		}
		fmt.Fprintf(w, "replay: OK — settled in %g s, bit-identical\n", settle)
		return nil
	}
	if err == nil {
		return mismatch("recorded non-settle %q, re-run settled in %g s", s.Outcome.Err, settle)
	}
	if err.Error() != s.Outcome.Err {
		return mismatch("error %q, recorded %q", err.Error(), s.Outcome.Err)
	}
	var ns *circuit.NotSettledError
	if errors.As(err, &ns) {
		if ns.Steps != s.Outcome.Steps {
			return mismatch("budget %d steps, recorded %d", ns.Steps, s.Outcome.Steps)
		}
		//lint:ignore nofloateq bit-identical replay is an exact-equality contract by design
		if jsonFinite(ns.LastMaxDV) != s.Outcome.LastMaxDV {
			return mismatch("last max ΔV %v, recorded %v", ns.LastMaxDV, s.Outcome.LastMaxDV)
		}
		if verbose {
			fmt.Fprintf(w, "  steps %d  remaining max ΔV %.6g V  dt %g s\n",
				ns.Steps, ns.LastMaxDV, s.Transient.Dt)
		}
	}
	fmt.Fprintf(w, "replay: OK — non-settle reproduced bit-identically: %s\n", s.Outcome.Err)
	return nil
}

// compareCost checks a re-run's cost model against the recorded one.
// Operation counts are integers, so the comparison is exact; a recorded
// snapshot without cost (accounting off, or pre-cost schema) skips the
// check.
func compareCost(d *circuit.Diagnostics, recorded *circuit.CostModel) error {
	if recorded == nil {
		return nil
	}
	if d == nil || d.Cost == nil {
		return mismatch("snapshot records a cost model, re-run produced none")
	}
	if *d.Cost != *recorded {
		return mismatch("cost model differs: re-run %+v, recorded %+v", *d.Cost, *recorded)
	}
	return nil
}

// printDiagnostics renders the re-run's per-iteration trajectory: the
// verbose loupe the flight recorder exists for.
func printDiagnostics(w io.Writer, res *circuit.Result, err error) {
	var d *circuit.Diagnostics
	if res != nil {
		d = res.Diag
	}
	var de *circuit.DivergenceError
	if errors.As(err, &de) {
		d = de.Diag
	}
	if d == nil {
		return
	}
	fmt.Fprintf(w, "  path %s", d.Path)
	if d.Precond != "" {
		fmt.Fprintf(w, "  precond %s", d.Precond)
		if d.PrecondRefreshes > 0 {
			fmt.Fprintf(w, " (%d refreshes)", d.PrecondRefreshes)
		}
	}
	if d.WarmStart {
		fmt.Fprint(w, "  warm-start")
	}
	if d.SetupCGIters > 0 {
		fmt.Fprintf(w, "  setup CG iters %d", d.SetupCGIters)
	}
	if d.CondEstimate > 0 {
		fmt.Fprintf(w, "  cond(J) ≈ %.3g", d.CondEstimate)
	}
	fmt.Fprintln(w)
	if c := d.Convergence; c != nil {
		fmt.Fprintf(w, "  decay rate %.4g  cg/newton %.1f", c.DecayRate, c.CGPerNewton)
		if c.Stagnated {
			fmt.Fprint(w, "  STAGNATED")
		}
		fmt.Fprintln(w)
	}
	printCost(w, d.Cost)
	for i, r := range d.Residuals {
		cg := 0
		if i < len(d.CGIters) {
			cg = d.CGIters[i]
		}
		fmt.Fprintf(w, "  newton %2d  max ΔV %.6e V  cg %d\n", i, r, cg)
	}
}

// printCost renders the per-phase cost attribution table.
func printCost(w io.Writer, c *circuit.CostModel) {
	if c == nil {
		return
	}
	total := c.Total()
	if total.Flops == 0 {
		return
	}
	phase := func(name string, o linalg.OpCount) {
		pct := 100 * float64(o.Flops) / float64(total.Flops)
		fmt.Fprintf(w, "  cost %-14s %12d flops (%5.1f%%)  %10d bytes", name, o.Flops, pct, o.Bytes)
		if o.SpMVs > 0 {
			fmt.Fprintf(w, "  spmv %d dot %d axpy %d", o.SpMVs, o.Dots, o.Axpys)
		}
		fmt.Fprintln(w)
	}
	phase("assembly", c.Assembly)
	phase("newton-update", c.NewtonUpdate)
	phase("cg-loop", c.CGLoop)
	phase("precond", c.Precond)
	phase("diagnostics", c.Diagnostics)
	fmt.Fprintf(w, "  cost %-14s %12d flops           %10d bytes\n", "total", total.Flops, total.Bytes)
}

// File replays path — a snapshot .json, or a journal .jsonl whose
// referenced snapshots are each replayed in order. Returns how many
// snapshots were replayed; the error is the first failure (wrapping
// ErrMismatch for reproduction failures).
func File(ctx context.Context, path string, w io.Writer, verbose bool) (int, error) {
	if strings.HasSuffix(path, ".jsonl") {
		events, err := telemetry.ReadJournalFile(path)
		if err != nil {
			return 0, err
		}
		snaps := telemetry.JournalSnapshotPaths(path, events)
		if len(snaps) == 0 {
			return 0, fmt.Errorf("replay: journal %s references no snapshots", path)
		}
		fmt.Fprintf(w, "replay: journal %s — %d events, %d snapshots\n", path, len(events), len(snaps))
		for _, sp := range snaps {
			s, err := circuit.LoadSnapshot(sp)
			if err != nil {
				return 0, err
			}
			fmt.Fprintf(w, "-- %s\n", sp)
			if err := Snapshot(ctx, s, w, verbose); err != nil {
				return 0, err
			}
		}
		return len(snaps), nil
	}
	s, err := circuit.LoadSnapshot(path)
	if err != nil {
		return 0, err
	}
	if err := Snapshot(ctx, s, w, verbose); err != nil {
		return 0, err
	}
	return 1, nil
}
