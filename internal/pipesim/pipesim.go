// Package pipesim is a discrete-event simulator of the accelerator's
// inter-bank pipeline (Section IV.A: "most memristor-based multilayer
// accelerators use pipelined design, so the execution time is determined by
// the worst-case delay among layers"). Where the analytic model takes the
// slowest bank's pass latency as the pipeline cycle, pipesim actually
// streams samples through the bank chain — each bank runs its per-sample
// pass count, hands results to the next bank's input buffer, and stalls
// when that buffer is still occupied — measuring the achieved throughput,
// per-bank utilisation, and the analytic model's error.
package pipesim

import (
	"fmt"

	"mnsim/internal/arch"
)

// Stats is the result of streaming a batch through the accelerator.
type Stats struct {
	// Samples is the batch size simulated.
	Samples int
	// TotalTime is the wall-clock time until the last sample drains.
	TotalTime float64
	// SampleInterval is the steady-state time between sample completions.
	SampleInterval float64
	// AnalyticCycle is the arch model's per-sample pipeline interval (the
	// slowest bank's per-sample busy time) for comparison.
	AnalyticCycle float64
	// Utilisation is each bank's busy fraction.
	Utilisation []float64
	// Bottleneck is the index of the bank with the highest utilisation.
	Bottleneck int
}

// Run streams `samples` inputs through the accelerator's bank chain. Each
// bank b is busy for its per-sample processing time (Passes × pass
// latency); a bank accepts sample k only once it has finished sample k-1
// and the downstream bank has accepted sample k-1 (single-sample
// buffering between stages, the output/line buffers of Fig. 1).
func Run(a *arch.Accelerator, samples int) (Stats, error) {
	if samples < 1 {
		return Stats{}, fmt.Errorf("pipesim: need at least 1 sample")
	}
	n := len(a.Banks)
	if n == 0 {
		return Stats{}, fmt.Errorf("pipesim: accelerator has no banks")
	}
	busy := make([]float64, n) // per-sample busy time of each bank
	for i, b := range a.Banks {
		busy[i] = b.SampleLatency
	}
	// start[b] is the time bank b starts its current sample; done[b] the
	// time it finishes; accept[b] the earliest time b can take a new one.
	finish := make([]float64, n) // when bank b finishes sample k
	prevFinish := make([]float64, n)
	busyTotal := make([]float64, n)
	var lastDone float64
	var prevLastDone float64
	for k := 0; k < samples; k++ {
		for b := 0; b < n; b++ {
			var start float64
			if b == 0 {
				start = prevFinish[0] // bank 0 takes the next sample as soon as it is free
			} else {
				// Needs the upstream result and its own freedom.
				start = maxF(finish[b-1], prevFinish[b])
			}
			finish[b] = start + busy[b]
			busyTotal[b] += busy[b]
		}
		copy(prevFinish, finish)
		prevLastDone = lastDone
		lastDone = finish[n-1]
	}
	st := Stats{
		Samples:   samples,
		TotalTime: lastDone,
	}
	if samples > 1 {
		st.SampleInterval = lastDone - prevLastDone
	} else {
		st.SampleInterval = lastDone
	}
	// The analytic model's per-sample interval: the slowest bank's
	// per-sample busy time.
	for _, b := range busy {
		if b > st.AnalyticCycle {
			st.AnalyticCycle = b
		}
	}
	st.Utilisation = make([]float64, n)
	best := 0
	for b := 0; b < n; b++ {
		st.Utilisation[b] = busyTotal[b] / st.TotalTime
		if st.Utilisation[b] > st.Utilisation[best] {
			best = b
		}
	}
	st.Bottleneck = best
	return st, nil
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
