package pipesim

import (
	"math"
	"testing"

	"mnsim/internal/arch"
	"mnsim/internal/device"
	"mnsim/internal/nn"
	"mnsim/internal/periph"
	"mnsim/internal/tech"
)

func design() *arch.Design {
	return &arch.Design{
		CrossbarSize:      128,
		WeightPolarity:    2,
		TwoCrossbarSigned: true,
		WeightBits:        4,
		DataBits:          8,
		CMOS:              tech.MustNode(45),
		Wire:              tech.MustInterconnect(45),
		Dev:               device.RRAM(),
		ADC:               periph.ADCVariableSA,
		Neuron:            periph.NeuronSigmoid,
		AreaCoefficient:   arch.DefaultAreaCoefficient,
	}
}

func accel(t *testing.T, layers []arch.LayerDims) *arch.Accelerator {
	t.Helper()
	a, err := arch.NewAccelerator(design(), layers, [2]int{128, 128})
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// Balanced FC banks: the simulated steady-state interval equals the
// analytic pipeline cycle, and every bank is near fully utilised.
func TestBalancedPipelineMatchesAnalytic(t *testing.T) {
	layers := []arch.LayerDims{
		{Rows: 512, Cols: 512, Passes: 1},
		{Rows: 512, Cols: 512, Passes: 1},
		{Rows: 512, Cols: 512, Passes: 1},
	}
	st, err := Run(accel(t, layers), 200)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(st.SampleInterval-st.AnalyticCycle)/st.AnalyticCycle > 1e-9 {
		t.Fatalf("interval %v vs analytic %v", st.SampleInterval, st.AnalyticCycle)
	}
	for b, u := range st.Utilisation {
		if u < 0.95 {
			t.Errorf("bank %d utilisation %v, want near 1", b, u)
		}
	}
}

// Unbalanced banks: the slowest bank is the bottleneck, the interval still
// equals the analytic cycle (which already takes the max), and the fast
// banks idle.
func TestUnbalancedPipelineBottleneck(t *testing.T) {
	layers := []arch.LayerDims{
		{Rows: 128, Cols: 128, Passes: 1},
		{Rows: 2048, Cols: 1024, Passes: 4}, // by far the heaviest
		{Rows: 128, Cols: 10, Passes: 1},
	}
	a := accel(t, layers)
	st, err := Run(a, 100)
	if err != nil {
		t.Fatal(err)
	}
	if st.Bottleneck != 1 {
		t.Fatalf("bottleneck = %d, want 1 (utilisations %v)", st.Bottleneck, st.Utilisation)
	}
	if math.Abs(st.SampleInterval-st.AnalyticCycle)/st.AnalyticCycle > 1e-9 {
		t.Fatalf("interval %v vs analytic %v", st.SampleInterval, st.AnalyticCycle)
	}
	if st.Utilisation[0] > 0.5 || st.Utilisation[2] > 0.5 {
		t.Errorf("light banks should idle: %v", st.Utilisation)
	}
	if st.Utilisation[1] < 0.95 {
		t.Errorf("bottleneck should be saturated: %v", st.Utilisation[1])
	}
}

// The first sample's latency is the full chain traversal; with one sample
// TotalTime equals the sum of bank busy times.
func TestSingleSampleLatency(t *testing.T) {
	layers := []arch.LayerDims{
		{Rows: 256, Cols: 256, Passes: 1},
		{Rows: 256, Cols: 128, Passes: 1},
	}
	a := accel(t, layers)
	st, err := Run(a, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := a.Banks[0].SampleLatency + a.Banks[1].SampleLatency
	if math.Abs(st.TotalTime-want)/want > 1e-12 {
		t.Fatalf("single sample time %v, want %v", st.TotalTime, want)
	}
}

// Throughput identity: total time ≈ fill + (samples-1)·interval.
func TestThroughputIdentity(t *testing.T) {
	layers := []arch.LayerDims{
		{Rows: 512, Cols: 256, Passes: 2},
		{Rows: 256, Cols: 64, Passes: 1},
	}
	a := accel(t, layers)
	st1, err := Run(a, 1)
	if err != nil {
		t.Fatal(err)
	}
	stN, err := Run(a, 64)
	if err != nil {
		t.Fatal(err)
	}
	want := st1.TotalTime + 63*stN.SampleInterval
	if math.Abs(stN.TotalTime-want)/want > 1e-9 {
		t.Fatalf("total %v, want fill+drain %v", stN.TotalTime, want)
	}
}

// VGG-16's wildly different per-bank pass counts still simulate cleanly and
// the simulated interval never beats the analytic lower bound.
func TestVGGPipeline(t *testing.T) {
	layers, err := nn.VGG16().Dims()
	if err != nil {
		t.Fatal(err)
	}
	d := design()
	d.WeightBits = 8
	d.Neuron = periph.NeuronReLU
	a, err := arch.NewAccelerator(d, layers, [2]int{128, 128})
	if err != nil {
		t.Fatal(err)
	}
	st, err := Run(a, 10)
	if err != nil {
		t.Fatal(err)
	}
	if st.SampleInterval < st.AnalyticCycle*(1-1e-12) {
		t.Fatalf("simulated interval %v beats the analytic bound %v", st.SampleInterval, st.AnalyticCycle)
	}
	if st.Bottleneck < 0 || st.Bottleneck >= len(a.Banks) {
		t.Fatalf("bottleneck index %d", st.Bottleneck)
	}
}

func TestRunErrors(t *testing.T) {
	a := accel(t, []arch.LayerDims{{Rows: 8, Cols: 8, Passes: 1}})
	if _, err := Run(a, 0); err == nil {
		t.Error("0 samples accepted")
	}
	if _, err := Run(&arch.Accelerator{}, 1); err == nil {
		t.Error("bankless accelerator accepted")
	}
}
