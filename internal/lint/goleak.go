package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// GoLeak turns PR 9's "zero leaked goroutines" property into a static
// rule for the service arc: every `go` launch under internal/ and cmd/
// must carry a *visible termination edge* — something in the goroutine's
// reachable code that a reader (and this analyzer) can point to and say
// "this is how it stops". Accepted edges:
//
//   - a ctx.Done() / ctx.Err() observation (select arm, receive, or loop
//     check) on a context.Context value;
//   - a receive from / range over a channel that this package close()s
//     (the worker-pool "range until the feeder closes" shape), or that is
//     a field of a package-declared struct with a Stop/Close/Shutdown
//     method (the sampler's stop-channel shape) — stdlib-owned channels
//     like time.Ticker.C do not count, because Ticker.Stop famously does
//     not unblock a pending receive;
//   - a WaitGroup join: the body calls wg.Done() on a WaitGroup some
//     code in this package Wait()s on;
//   - a blocking call on a value whose Stop/Close/Shutdown method is
//     invoked elsewhere in the package (the http.Server Serve/Shutdown
//     pair).
//
// Evidence only counts in code reachable from the goroutine's entry (the
// CFG substrate provides reachability), so a stop check sitting after an
// unconditional return convinces nobody. Launches whose body cannot be
// resolved (interface method, other-package function) are flagged too:
// an invisible lifecycle is the finding.
var GoLeak = &Analyzer{
	Name:       "goleak",
	Doc:        "every goroutine launched under internal/ or cmd/ needs a visible termination edge: ctx.Done, a closed/stoppable channel, a WaitGroup join, or a Stop/Close-managed blocking call",
	TestExempt: true,
	Run:        runGoLeak,
}

func runGoLeak(p *Pass) {
	if !inInternal(p.Path) && !underPathSubtree(p.Path, "cmd") {
		return
	}
	ev := collectPackageEvidence(p)
	decls := map[*types.Func]*ast.FuncDecl{}
	for _, f := range p.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				if fn, ok := p.Info.Defs[fd.Name].(*types.Func); ok {
					decls[fn] = fd
				}
			}
		}
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			checkGoStmt(p, g, decls, ev)
			return true
		})
	}
}

// packageEvidence is what the rest of the package contributes to a
// goroutine's termination story.
type packageEvidence struct {
	closedKeys  map[string]bool // leaf objects passed to close()
	waitedWGs   map[string]bool // leaf objects of WaitGroup .Wait() calls
	stoppedKeys map[string]bool // leaf objects with .Stop/.Close/.Shutdown calls
}

func collectPackageEvidence(p *Pass) packageEvidence {
	ev := packageEvidence{
		closedKeys:  map[string]bool{},
		waitedWGs:   map[string]bool{},
		stoppedKeys: map[string]bool{},
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "close" && len(call.Args) == 1 {
				if _, isBuiltin := p.Info.Uses[id].(*types.Builtin); isBuiltin {
					if k, ok := leafKey(p.Info, call.Args[0]); ok {
						ev.closedKeys[k] = true
					}
				}
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			switch sel.Sel.Name {
			case "Wait":
				if isWaitGroupMethod(p.Info, sel) {
					if k, ok := leafKey(p.Info, sel.X); ok {
						ev.waitedWGs[k] = true
					}
				}
			case "Stop", "Close", "Shutdown":
				if k, ok := leafKey(p.Info, sel.X); ok {
					ev.stoppedKeys[k] = true
				}
			}
			return true
		})
	}
	return ev
}

// leafKey identifies the final object of an ident/selector chain: the
// variable itself, or the field at the end of the chain. Two mentions of
// the same declared object produce the same key.
func leafKey(info *types.Info, e ast.Expr) (string, bool) {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := info.Uses[e]
		if obj == nil {
			obj = info.Defs[e]
		}
		if obj == nil {
			return "", false
		}
		return obj.Name() + "@" + posKey(obj.Pos()), true
	case *ast.SelectorExpr:
		if obj := info.Uses[e.Sel]; obj != nil {
			return obj.Name() + "@" + posKey(obj.Pos()), true
		}
	}
	return "", false
}

func isWaitGroupMethod(info *types.Info, sel *ast.SelectorExpr) bool {
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	rt := sig.Recv().Type()
	if p, ok := rt.(*types.Pointer); ok {
		rt = p.Elem()
	}
	named, ok := rt.(*types.Named)
	return ok && named.Obj().Name() == "WaitGroup"
}

func checkGoStmt(p *Pass, g *ast.GoStmt, decls map[*types.Func]*ast.FuncDecl, ev packageEvidence) {
	var body *ast.BlockStmt
	switch fun := ast.Unparen(g.Call.Fun).(type) {
	case *ast.FuncLit:
		body = fun.Body
	default:
		if fn, ok := calleeObj(p.Info, g.Call).(*types.Func); ok {
			if fd := decls[fn]; fd != nil {
				body = fd.Body
			}
		}
	}
	if body == nil {
		// The body lives behind an interface or in another package; the
		// launch itself must still show an edge: a Stop/Close/Shutdown
		// counterpart for the called value.
		if hasTerminationEdge(p, g.Call, ev) {
			return
		}
		p.Reportf(g.Pos(),
			"goroutine body is not visible from this package and no Stop/Close/Shutdown counterpart is called on its target: wrap the launch so its termination edge is auditable")
		return
	}
	// Evidence only counts where control can actually reach.
	cfg := BuildCFG(body)
	reach := cfg.Reachable()
	for _, b := range cfg.Blocks {
		if !reach[b] {
			continue
		}
		for _, atom := range b.Atoms {
			if hasTerminationEdge(p, atomNode(atom), ev) {
				return
			}
		}
	}
	p.Reportf(g.Pos(),
		"goroutine has no visible termination edge: add a ctx.Done()/ctx.Err() check, a receive on a channel this package closes or a Stop/Close method owns, or a WaitGroup join (Done here, Wait elsewhere)")
}

// atomNode unwraps the builder's marker atoms back to inspectable nodes.
// A range head unwraps to the whole range statement so the channel-range
// evidence case can see it; its body blocks are reachable exactly when
// the head is, so the redundant descent loses no precision.
func atomNode(atom ast.Node) ast.Node {
	switch a := atom.(type) {
	case *rangeAtom:
		return a.RangeStmt
	case *nonBlocking:
		return a.Stmt
	}
	return atom
}

// hasTerminationEdge reports whether the subtree contains any accepted
// stop evidence.
func hasTerminationEdge(p *Pass, n ast.Node, ev packageEvidence) bool {
	if checksCtxDirect(p.Info, n) {
		return true
	}
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && stoppableChannel(p, n.X, ev) {
				found = true
			}
		case *ast.RangeStmt:
			if stoppableChannel(p, n.X, ev) {
				found = true
			}
		case *ast.CallExpr:
			sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			// WaitGroup join: Done here, Wait somewhere in the package.
			if sel.Sel.Name == "Done" && isWaitGroupMethod(p.Info, sel) {
				if k, ok := leafKey(p.Info, sel.X); ok && ev.waitedWGs[k] {
					found = true
					return false
				}
			}
			// Stop/Close-managed blocking call: the called value has a
			// Stop/Close/Shutdown invocation elsewhere in the package.
			if k, ok := leafKey(p.Info, sel.X); ok && ev.stoppedKeys[k] {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// stoppableChannel reports whether a received-from channel expression has
// a visible producer-side stop: the package closes it, or it is a field
// of a package-declared struct that exposes Stop/Close/Shutdown.
func stoppableChannel(p *Pass, e ast.Expr, ev packageEvidence) bool {
	tv, ok := p.Info.Types[e]
	if !ok {
		return false
	}
	if _, isChan := tv.Type.Underlying().(*types.Chan); !isChan {
		return false
	}
	if k, ok := leafKey(p.Info, e); ok && ev.closedKeys[k] {
		return true
	}
	// Field of a struct declared in this package with a stop-shaped method.
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	xt, ok := p.Info.Types[sel.X]
	if !ok {
		return false
	}
	rt := xt.Type
	if ptr, ok := rt.Underlying().(*types.Pointer); ok {
		rt = ptr.Elem()
	}
	named, ok := rt.(*types.Named)
	if !ok || named.Obj().Pkg() != p.Pkg {
		return false
	}
	for _, name := range [...]string{"Stop", "Close", "Shutdown"} {
		if obj, _, _ := types.LookupFieldOrMethod(named, true, p.Pkg, name); obj != nil {
			if _, isFn := obj.(*types.Func); isFn {
				return true
			}
		}
	}
	return false
}
