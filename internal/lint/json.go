package lint

import (
	"encoding/json"
	"io"
)

// jsonDiagnostic is the wire form of one finding in -json output.
type jsonDiagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// jsonAnalyzerStat is the wire form of one analyzer's accounting.
type jsonAnalyzerStat struct {
	Name     string  `json:"name"`
	Findings int     `json:"findings"`
	WallMS   float64 `json:"wall_ms"`
}

// WriteJSON writes the diagnostics as one JSON document:
//
//	{"count": N,
//	 "diagnostics": [{file, line, col, analyzer, message}, ...],
//	 "analyzers":   [{name, findings, wall_ms}, ...]}
//
// The document is emitted even when there are zero findings so CI can
// always upload it as an artifact and diff per-analyzer counts between
// runs.
func (r *Result) WriteJSON(w io.Writer) error {
	out := struct {
		Count       int                `json:"count"`
		Diagnostics []jsonDiagnostic   `json:"diagnostics"`
		Analyzers   []jsonAnalyzerStat `json:"analyzers"`
	}{Diagnostics: []jsonDiagnostic{}, Analyzers: []jsonAnalyzerStat{}}
	for _, s := range r.Stats {
		out.Analyzers = append(out.Analyzers, jsonAnalyzerStat{
			Name:     s.Name,
			Findings: s.Findings,
			WallMS:   float64(s.Wall.Microseconds()) / 1000.0,
		})
	}
	for _, d := range r.Diagnostics {
		out.Diagnostics = append(out.Diagnostics, jsonDiagnostic{
			File:     d.Pos.Filename,
			Line:     d.Pos.Line,
			Col:      d.Pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		})
	}
	out.Count = len(out.Diagnostics)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
