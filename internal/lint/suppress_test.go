package lint

import (
	"strings"
	"testing"
)

// runSuppressFixture lints the suppress fixture through the full Run
// pipeline (load → analyze → suppress), which is what the CLI does.
func runSuppressFixture(t *testing.T, strict bool) *Result {
	t.Helper()
	res, err := Run(Options{
		Patterns: []string{"./testdata/src/suppress"},
		Strict:   strict,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res
}

func hasDiag(res *Result, analyzer, msgSub string) bool {
	for _, d := range res.Diagnostics {
		if d.Analyzer == analyzer && strings.Contains(d.Message, msgSub) {
			return true
		}
	}
	return false
}

// TestSuppressionWithReason: a reasoned //lint:ignore on the preceding
// line silences the diagnostic entirely. The fixture has two
// rand.Float64 draws — Reasoned's (suppressed) and Reasonless's (kept)
// — so exactly one norawrand finding surviving proves the reasoned one
// worked without pinning fixture line numbers.
func TestSuppressionWithReason(t *testing.T) {
	res := runSuppressFixture(t, false)
	n := 0
	for _, d := range res.Diagnostics {
		if d.Analyzer == "norawrand" {
			n++
		}
	}
	if n != 1 {
		t.Errorf("want exactly 1 surviving norawrand diagnostic, got %d: %+v", n, res.Diagnostics)
	}
	if hasDiag(res, metaAnalyzer, "fixture exercising") {
		t.Errorf("reasoned suppression itself reported: %+v", res.Diagnostics)
	}
}

// TestSuppressionWithoutReason: a bare //lint:ignore suppresses nothing
// and is itself a finding.
func TestSuppressionWithoutReason(t *testing.T) {
	res := runSuppressFixture(t, false)
	if !hasDiag(res, metaAnalyzer, "needs a reason") {
		t.Errorf("reason-less //lint:ignore not reported; got %+v", res.Diagnostics)
	}
	// The norawrand finding it failed to suppress must survive — exactly
	// one (Reasonless's); Reasoned's is suppressed.
	n := 0
	for _, d := range res.Diagnostics {
		if d.Analyzer == "norawrand" {
			n++
		}
	}
	if n != 1 {
		t.Errorf("want exactly 1 surviving norawrand diagnostic, got %d: %+v", n, res.Diagnostics)
	}
}

// TestStaleSuppression: a suppression matching no diagnostic is silent
// by default and flagged under -strict.
func TestStaleSuppression(t *testing.T) {
	if res := runSuppressFixture(t, false); hasDiag(res, metaAnalyzer, "stale") {
		t.Errorf("stale suppression flagged without -strict: %+v", res.Diagnostics)
	}
	res := runSuppressFixture(t, true)
	if !hasDiag(res, metaAnalyzer, "stale //lint:ignore norawrand") {
		t.Errorf("stale suppression not flagged under -strict; got %+v", res.Diagnostics)
	}
	// Strict must not turn used or reason-less directives stale.
	n := 0
	for _, d := range res.Diagnostics {
		if d.Analyzer == metaAnalyzer && strings.Contains(d.Message, "stale") {
			n++
		}
	}
	if n != 1 {
		t.Errorf("want exactly 1 stale finding under -strict, got %d: %+v", n, res.Diagnostics)
	}
}

// TestSuppressionWrongName: a directive for a different analyzer does
// not suppress (pinned via a unit-level check of applySuppressions so
// the fixture stays small).
func TestSuppressionWrongName(t *testing.T) {
	diags := []Diagnostic{{Analyzer: "norawrand", Message: "m"}}
	diags[0].Pos.Filename, diags[0].Pos.Line = "f.go", 10
	ig := &ignoreDirective{name: "noclock", reason: "r"}
	ig.pos.Filename, ig.pos.Line = "f.go", 9
	out := applySuppressions(diags, []*ignoreDirective{ig}, false)
	if len(out) != 1 || out[0].Analyzer != "norawrand" {
		t.Fatalf("mismatched analyzer name suppressed the diagnostic: %+v", out)
	}
}

// TestSuppressionSameLine: the directive may share the offending line.
func TestSuppressionSameLine(t *testing.T) {
	diags := []Diagnostic{{Analyzer: "errdrop", Message: "m"}}
	diags[0].Pos.Filename, diags[0].Pos.Line = "f.go", 10
	ig := &ignoreDirective{name: "errdrop", reason: "r"}
	ig.pos.Filename, ig.pos.Line = "f.go", 10
	out := applySuppressions(diags, []*ignoreDirective{ig}, true)
	if len(out) != 0 {
		t.Fatalf("same-line reasoned suppression did not apply: %+v", out)
	}
}
