package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// scratchModule copies the clean //lint:hotpath fixture into a throwaway
// module so the test can mutate it without touching the repository.
func scratchModule(t *testing.T) (dir string) {
	t.Helper()
	dir = t.TempDir()
	src, err := os.ReadFile(filepath.Join("testdata", "src", "noalloc", "clean", "clean.go"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module noallocscratch\n\ngo 1.24\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "clean.go"), src, 0o644); err != nil {
		t.Fatal(err)
	}
	return dir
}

func runNoAllocOn(t *testing.T, dir string) []Diagnostic {
	t.Helper()
	u, err := NewLoader().Load(dir, "noallocscratch", false)
	if err != nil {
		t.Fatalf("loading scratch module: %v", err)
	}
	return runAnalyzers(u, []*Analyzer{NoAlloc})
}

// TestNoAllocDetectsIntroducedEscape is the acceptance check for the
// analyzer's whole premise: the clean fixture passes, and the moment a
// deliberate heap escape is introduced into a //lint:hotpath function,
// the analyzer fails.
func TestNoAllocDetectsIntroducedEscape(t *testing.T) {
	dir := scratchModule(t)
	if diags := runNoAllocOn(t, dir); len(diags) != 0 {
		t.Fatalf("clean hotpath fixture produced findings:\n%v", diags)
	}

	// Introduce the escape: Dot grows a result buffer it returns a pointer
	// into, the classic quietly-regrown allocation.
	dirty := `// Package clean (mutated): Dot now allocates per call.
package clean

var sink []float64

// Dot is still annotated, but now escapes.
//
//lint:hotpath
func Dot(a, b []float64) float64 {
	buf := make([]float64, len(a))
	for i := range a {
		buf[i] = a[i] * b[i]
	}
	sink = buf
	return buf[0]
}

// Scale mutates in place, allocation-free.
//
//lint:hotpath
func Scale(v []float64, k float64) {
	for i := range v {
		v[i] *= k
	}
}
`
	if err := os.WriteFile(filepath.Join(dir, "clean.go"), []byte(dirty), 0o644); err != nil {
		t.Fatal(err)
	}
	diags := runNoAllocOn(t, dir)
	if len(diags) == 0 {
		t.Fatal("introduced heap escape in a //lint:hotpath function, but noalloc reported nothing")
	}
	for _, d := range diags {
		if !strings.Contains(d.Message, "heap escape in //lint:hotpath function Dot") {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
}

// TestNoAllocProbeFailureIsLoud pins the failure mode: when the escape
// probe cannot run, every annotated function gets a probe-failure
// finding instead of a silent pass.
func TestNoAllocProbeFailureIsLoud(t *testing.T) {
	dir := scratchModule(t)
	u, err := NewLoader().Load(dir, "noallocscratch", false)
	if err != nil {
		t.Fatalf("loading scratch module: %v", err)
	}
	// Corrupt the module file after loading: the analyzer's go-build probe
	// now has no resolvable module and must fail loudly.
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("// not a module file\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	diags := runAnalyzers(u, []*Analyzer{NoAlloc})
	if len(diags) == 0 {
		t.Fatal("unbuildable module produced no probe-failure findings")
	}
	if len(diags) != 2 { // one per annotated function (Dot, Scale)
		t.Errorf("got %d findings, want 2:\n%v", len(diags), diags)
	}
	for _, d := range diags {
		if !strings.Contains(d.Message, "escape probe failed") {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
}

// TestParseEscapeLine pins the compiler-output parser against the two
// diagnostic shapes it must recognize and the noise it must drop.
func TestParseEscapeLine(t *testing.T) {
	cases := []struct {
		in     string
		ok     bool
		file   string
		line   int
		col    int
		msgSub string
	}{
		{"internal/linalg/sparse.go:261:31: n escapes to heap", true, "internal/linalg/sparse.go", 261, 31, "escapes to heap"},
		{"pkg/a.go:10:2: moved to heap: x", true, "pkg/a.go", 10, 2, "moved to heap: x"},
		{"pkg/a.go:10:2: inlining call to foo", false, "", 0, 0, ""},
		{"# mnsim/internal/linalg", false, "", 0, 0, ""},
		{"", false, "", 0, 0, ""},
		{"escapes to heap", false, "", 0, 0, ""},
		{"a.go:x:2: y escapes to heap", false, "", 0, 0, ""},
	}
	for _, tc := range cases {
		file, line, col, msg, ok := parseEscapeLine(tc.in)
		if ok != tc.ok {
			t.Errorf("parseEscapeLine(%q) ok = %v, want %v", tc.in, ok, tc.ok)
			continue
		}
		if !ok {
			continue
		}
		if file != tc.file || line != tc.line || col != tc.col || !strings.Contains(msg, tc.msgSub) {
			t.Errorf("parseEscapeLine(%q) = (%s, %d, %d, %q)", tc.in, file, line, col, msg)
		}
	}
}
