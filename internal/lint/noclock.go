package lint

import (
	"go/ast"
)

// NoClock enforces PR 4's replay contract: the numerical packages — the
// circuit solver, the linear-algebra core, and the behavioral
// crossbar/device models — must be pure functions of their inputs, so a
// flight-recorder snapshot re-run on another machine reproduces the
// original solve bit for bit. A single time.Now there (say, a timing
// heuristic that switches solver paths) makes replay diverge
// unreproducibly. Wall-clock reads belong in internal/telemetry — spans,
// the journal, and the resource sampler (whose tick loop, stall watchdog,
// and profile rotation are wall-clock driven by design) — which observe
// the numerics from the outside without feeding time back into them.
var NoClock = &Analyzer{
	Name:       "noclock",
	Doc:        "no time.Now/time.Since in the numerical packages (circuit, linalg, crossbar, device); time via telemetry spans",
	TestExempt: true,
	Run:        runNoClock,
}

// clockFreeSubtrees are the package subtrees that must never read the
// wall clock, matched as path segments (so "mnsim/internal/circuit" and
// a fixture package ending in ".../internal/circuit" both qualify).
// Keep this list tight: every addition is a package whose replay
// bit-identity is being promised.
var clockFreeSubtrees = []string{
	"internal/circuit",
	"internal/linalg",
	"internal/crossbar",
	"internal/device",
}

// clockFuncs are the forbidden time package entry points. time.Since is
// listed separately from time.Now because it reads the clock itself.
var clockFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

func runNoClock(p *Pass) {
	restricted := false
	for _, sub := range clockFreeSubtrees {
		if underPathSubtree(p.Path, sub) {
			restricted = true
			break
		}
	}
	if !restricted {
		return
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if name, ok := pkgFuncName(calleeObj(p.Info, call), "time"); ok && clockFuncs[name] {
				p.Reportf(call.Pos(),
					"time.%s in clock-free package %s: numerics must be pure so flight-recorder replay is bit-identical; time this from a telemetry span outside the package", name, p.Path)
			}
			return true
		})
	}
}
