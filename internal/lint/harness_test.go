package lint

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// wantRx extracts the backquoted regexes of one `// want` comment.
var wantRx = regexp.MustCompile("`([^`]+)`")

type wantAnn struct {
	file    string
	line    int
	rx      *regexp.Regexp
	matched bool
}

// collectWants parses `// want `+"`regex`"+“ annotations from the
// unit's comments. The annotation sits on the offending line.
func collectWants(t *testing.T, u *Unit) []*wantAnn {
	t.Helper()
	var out []*wantAnn
	for _, f := range u.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				pos := u.Fset.Position(c.Pos())
				ms := wantRx.FindAllStringSubmatch(rest, -1)
				if len(ms) == 0 {
					t.Fatalf("%s:%d: malformed want comment %q", pos.Filename, pos.Line, c.Text)
				}
				for _, m := range ms {
					rx, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp: %v", pos.Filename, pos.Line, err)
					}
					out = append(out, &wantAnn{file: pos.Filename, line: pos.Line, rx: rx})
				}
			}
		}
	}
	return out
}

// loadFixture type-checks the fixture package under testdata/src/dir,
// assigning it the given import path (fake paths let path-scoped
// analyzers fire).
func loadFixture(t *testing.T, dir, path string) *Unit {
	t.Helper()
	u, err := NewLoader().Load(filepath.Join("testdata", "src", dir), path, false)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	if u == nil {
		t.Fatalf("fixture %s has no Go files", dir)
	}
	return u
}

// checkFixture runs one analyzer over a fixture and compares the
// diagnostics against the `// want` annotations, both ways: every
// annotation must be hit, and every diagnostic must be annotated.
func checkFixture(t *testing.T, a *Analyzer, dir, path string) {
	t.Helper()
	u := loadFixture(t, dir, path)
	diags := runAnalyzers(u, []*Analyzer{a})
	wants := collectWants(t, u)
	for _, d := range diags {
		hit := false
		for _, w := range wants {
			if w.file == d.Pos.Filename && w.line == d.Pos.Line && w.rx.MatchString(d.Message) {
				w.matched = true
				hit = true
			}
		}
		if !hit {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matched want %q", w.file, w.line, w.rx)
		}
	}
	if t.Failed() {
		var sb strings.Builder
		for _, d := range diags {
			fmt.Fprintf(&sb, "  %s\n", d)
		}
		t.Logf("all %s diagnostics:\n%s", a.Name, sb.String())
	}
}
