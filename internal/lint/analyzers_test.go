package lint

import "testing"

// TestAnalyzerFixtures drives every analyzer over its golden fixture
// package. The fake import paths mirror where such code would live in
// the module, which is what arms the path-scoped analyzers (noclock,
// noprint); the fixture directories for those two also really end in
// internal/circuit / internal/noprint so the same packages trip the
// real CLI (see cmd/mnsim-lint tests).
func TestAnalyzerFixtures(t *testing.T) {
	cases := []struct {
		a    *Analyzer
		dir  string
		path string
	}{
		{NoRawRand, "norawrand", "mnsim/lintfixture/norawrand"},
		{NoClock, "noclock/internal/circuit", "mnsim/internal/circuit/lintfixture"},
		{CtxLoop, "ctxloop", "mnsim/lintfixture/ctxloop"},
		{NoFloatEq, "nofloateq", "mnsim/lintfixture/nofloateq"},
		{NoPrint, "noprint/internal/noprint", "mnsim/internal/lintfixture/noprint"},
		{ErrDrop, "errdrop", "mnsim/lintfixture/errdrop"},
		{LockBalance, "lockbalance", "mnsim/lintfixture/lockbalance"},
		{GoLeak, "goleak", "mnsim/internal/lintfixture/goleak"},
		{NoAlloc, "noalloc", "mnsim/lintfixture/noalloc"},
	}
	for _, tc := range cases {
		t.Run(tc.a.Name, func(t *testing.T) {
			checkFixture(t, tc.a, tc.dir, tc.path)
		})
	}
}

// TestNoClockSkipsUnrestrictedPackages pins the scoping rule: the same
// clock-reading fixture under a non-numerical path produces nothing.
func TestNoClockSkipsUnrestrictedPackages(t *testing.T) {
	u := loadFixture(t, "noclock/internal/circuit", "mnsim/internal/telemetry/lintfixture")
	if diags := runAnalyzers(u, []*Analyzer{NoClock}); len(diags) != 0 {
		t.Fatalf("noclock fired outside its subtrees: %v", diags)
	}
}

// TestNoPrintSkipsNonInternal pins the scoping rule for noprint: the
// same printing fixture outside internal/ produces nothing (CLIs own
// their stdout).
func TestNoPrintSkipsNonInternal(t *testing.T) {
	u := loadFixture(t, "noprint/internal/noprint", "mnsim/cmd/lintfixture")
	if diags := runAnalyzers(u, []*Analyzer{NoPrint}); len(diags) != 0 {
		t.Fatalf("noprint fired outside internal/: %v", diags)
	}
}

// TestAllStableOrder guards the registry: nine analyzers, stable order,
// unique names (suppressions address analyzers by name).
func TestAllStableOrder(t *testing.T) {
	all := All()
	wantOrder := []string{"norawrand", "noclock", "ctxloop", "nofloateq", "noprint", "errdrop",
		"lockbalance", "goleak", "noalloc"}
	if len(all) != len(wantOrder) {
		t.Fatalf("All() = %d analyzers, want %d", len(all), len(wantOrder))
	}
	for i, a := range all {
		if a.Name != wantOrder[i] {
			t.Errorf("All()[%d] = %s, want %s", i, a.Name, wantOrder[i])
		}
		if a.Doc == "" {
			t.Errorf("%s has no Doc", a.Name)
		}
		if a.Run == nil {
			t.Errorf("%s has no Run", a.Name)
		}
	}
}
