package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// calleeObj resolves a call expression to the object it invokes
// (package-level function, method, or builtin), or nil.
func calleeObj(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fun]
	case *ast.SelectorExpr:
		return info.Uses[fun.Sel]
	}
	return nil
}

// isPkgFunc reports whether obj is the package-level (receiver-less)
// function pkgPath.name. Methods on types from pkgPath do not match.
func isPkgFunc(obj types.Object, pkgPath, name string) bool {
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != pkgPath || fn.Name() != name {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// pkgFuncName returns (name, true) when obj is any package-level
// function of pkgPath.
func pkgFuncName(obj types.Object, pkgPath string) (string, bool) {
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != pkgPath {
		return "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() != nil {
		return "", false
	}
	return fn.Name(), true
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// underPathSubtree reports whether pkgPath is sub, sits below it, or
// contains it as a full segment run ("internal/circuit" matches
// "mnsim/internal/circuit" and "mnsim/internal/circuit/x", not
// "mnsim/internal/circuitry").
func underPathSubtree(pkgPath, sub string) bool {
	return strings.Contains("/"+pkgPath+"/", "/"+sub+"/")
}

// inInternal reports whether the package sits under an internal/ tree.
func inInternal(pkgPath string) bool {
	return strings.Contains("/"+pkgPath+"/", "/internal/")
}
