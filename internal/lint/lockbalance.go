package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// LockBalance enforces the locking discipline the long-running service
// arc depends on, as a path property rather than a convention. Three
// rules, all per function (and per function literal), all flow-aware over
// the CFG substrate:
//
//  1. Balance: a sync.Mutex / sync.RWMutex Lock (or RLock) must be
//     released on every normal path out of the function — by a matching
//     Unlock on each path or by a deferred Unlock registered on all of
//     them. Paths that end in panic are exempt: guard panics inside a
//     critical section are deliberate crashes, not leaks.
//  2. No blocking under a lock: a held lock must not span a channel
//     send/receive, a select without default, a range over a channel,
//     sync.WaitGroup.Wait / sync.Cond.Wait, or time.Sleep — blocking
//     while holding a lock stalls every contender and is the classic
//     shape of a worker-pool deadlock.
//  3. No double Lock: taking a lock that may already be held on the same
//     path self-deadlocks (sync mutexes are not reentrant). Repeated
//     RLock is allowed; Lock-after-RLock and Lock-after-Lock are not.
//
// Lock identity is the resolved selector chain ("j.mu", "s.statsMu"), so
// two different receivers' fields never alias, and the same field reached
// through the same chain always does. Lock handoff across function
// boundaries (returning while locked on purpose) is a design decision the
// analyzer cannot see; carry a reasoned //lint:ignore.
var LockBalance = &Analyzer{
	Name:       "lockbalance",
	Doc:        "every mutex Lock must be released on all paths out (defer-aware), never held across a blocking op, and never re-taken while held",
	TestExempt: true,
	Run:        runLockBalance,
}

// lockHeld describes one lock acquisition live on some path. deferred
// rides with the acquisition, not the path: a lock is safe at exit only
// if every path on which it is held registered a deferred release.
type lockHeld struct {
	pos      token.Pos // the Lock/RLock call
	name     string    // display form, e.g. "j.mu"
	deferred bool      // a defer on this path will release it
}

// lockFacts is the dataflow state: which (chain, mode) locks may be held,
// plus the deferred releases registered so far on this path (so a defer
// that precedes its Lock in program order still covers it).
type lockFacts struct {
	held     map[string]lockHeld // key "chain|mode" -> acquisition
	deferred map[string]bool     // key "chain|mode" -> a defer will release it
}

func (s lockFacts) clone() lockFacts {
	n := lockFacts{held: map[string]lockHeld{}, deferred: map[string]bool{}}
	for k, v := range s.held {
		n.held[k] = v
	}
	for k := range s.deferred {
		n.deferred[k] = true
	}
	return n
}

// mergeLockFacts joins two path states: held is a may-union (a lock held
// on either incoming path is a liability). A lock held on both sides is
// released at exit only if both sides registered the deferred release
// (AND); a lock held on one side keeps that side's deferred bit — a
// clean other path is irrelevant to its fate. The path-level deferred
// set is a must-intersection, since it covers locks not yet acquired.
func mergeLockFacts(a, b lockFacts) lockFacts {
	n := a.clone()
	for k, v := range b.held {
		if prev, ok := n.held[k]; ok {
			merged := prev
			if v.pos < merged.pos {
				merged.pos, merged.name = v.pos, v.name
			}
			merged.deferred = prev.deferred && v.deferred
			n.held[k] = merged
		} else {
			n.held[k] = v
		}
	}
	for k := range n.deferred {
		if !b.deferred[k] {
			delete(n.deferred, k)
		}
	}
	return n
}

func equalLockFacts(a, b lockFacts) bool {
	if len(a.held) != len(b.held) || len(a.deferred) != len(b.deferred) {
		return false
	}
	for k, v := range a.held {
		w, ok := b.held[k]
		if !ok || v.deferred != w.deferred || v.pos != w.pos {
			return false
		}
	}
	for k := range a.deferred {
		if !b.deferred[k] {
			return false
		}
	}
	return true
}

// lockOp classifies one sync mutex method call.
type lockOp struct {
	key     string // chain key of the mutex expression
	name    string // display form
	mode    string // "W" (Lock/Unlock) or "R" (RLock/RUnlock)
	acquire bool
	pos     token.Pos
}

// classifyLockOp recognizes calls to the four sync.Mutex / sync.RWMutex
// lock methods, including through embedding, and resolves the receiver
// chain to a stable key. TryLock is deliberately not modeled: its
// conditional acquisition defeats path reasoning, and the repo does not
// use it.
func classifyLockOp(info *types.Info, call *ast.CallExpr) (lockOp, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return lockOp{}, false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return lockOp{}, false
	}
	var mode string
	var acquire bool
	switch fn.Name() {
	case "Lock":
		mode, acquire = "W", true
	case "Unlock":
		mode, acquire = "W", false
	case "RLock":
		mode, acquire = "R", true
	case "RUnlock":
		mode, acquire = "R", false
	default:
		return lockOp{}, false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return lockOp{}, false
	}
	rt := sig.Recv().Type()
	if p, ok := rt.(*types.Pointer); ok {
		rt = p.Elem()
	}
	named, ok := rt.(*types.Named)
	if !ok || (named.Obj().Name() != "Mutex" && named.Obj().Name() != "RWMutex") {
		return lockOp{}, false
	}
	key, ok := chainKey(info, sel.X)
	if !ok {
		return lockOp{}, false
	}
	return lockOp{key: key, name: types.ExprString(sel.X), mode: mode, acquire: acquire, pos: call.Pos()}, true
}

// chainKey resolves an ident/selector chain to a stable identity built
// from the declaration positions of the objects along it. Chains through
// calls, indexing, or unresolved names have no stable identity.
func chainKey(info *types.Info, e ast.Expr) (string, bool) {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := info.Uses[e]
		if obj == nil {
			obj = info.Defs[e]
		}
		if obj == nil {
			return "", false
		}
		return obj.Name() + "@" + posKey(obj.Pos()), true
	case *ast.SelectorExpr:
		base, ok := chainKey(info, e.X)
		if !ok {
			return "", false
		}
		obj := info.Uses[e.Sel]
		if obj == nil {
			return "", false
		}
		return base + "." + obj.Name() + "@" + posKey(obj.Pos()), true
	}
	return "", false
}

func posKey(p token.Pos) string {
	// token.Pos is a file-set offset: unique per declared object within
	// one loader, which is the scope a key needs.
	return itoa(int(p))
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

func runLockBalance(p *Pass) {
	for _, f := range p.Files {
		for _, fb := range funcBodies(f) {
			checkLockBalance(p, fb)
		}
	}
}

func checkLockBalance(p *Pass, fb funcBody) {
	// Fast pre-filter: no sync lock calls, nothing to do.
	uses := false
	ast.Inspect(fb.body, func(n ast.Node) bool {
		if uses {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if _, isOp := classifyLockOp(p.Info, call); isOp {
				uses = true
			}
		}
		return true
	})
	if !uses {
		return
	}

	g := BuildCFG(fb.body)
	entry := lockFacts{held: map[string]lockHeld{}, deferred: map[string]bool{}}
	transfer := func(s lockFacts, b *Block) lockFacts {
		out := s.clone()
		for _, atom := range b.Atoms {
			applyLockAtom(p, atom, &out, nil)
		}
		return out
	}
	in := ForwardDataflow(g, entry, transfer, mergeLockFacts, equalLockFacts)

	// Report pass: replay each reachable block from its fixpoint in-state,
	// flagging blocking ops and double locks where they happen.
	reported := map[string]bool{}
	report := func(pos token.Pos, format string, args ...any) {
		k := posKey(pos) + format
		if !reported[k] {
			reported[k] = true
			p.Reportf(pos, format, args...)
		}
	}
	for b, s := range in {
		st := s.clone()
		for _, atom := range b.Atoms {
			applyLockAtom(p, atom, &st, func(kind string, pos token.Pos, op lockOp, prev lockHeld) {
				switch kind {
				case "double":
					report(pos, "%s.%s: %s may already be held (locked at line %d) — sync mutexes are not reentrant, this path self-deadlocks",
						op.name, modeVerb(op.mode), op.name, p.Fset.Position(prev.pos).Line)
				case "blocking":
					report(pos, "%s is held across this blocking operation (locked at line %d): release the lock before channel sends/receives, selects, Wait, or Sleep",
						prev.name, p.Fset.Position(prev.pos).Line)
				}
			})
		}
	}
	// Exit check: every lock still held at the normal exit without a
	// guaranteed deferred release is a leak on at least one return path.
	if exitState, ok := in[g.Exit]; ok {
		for _, hl := range exitState.held {
			if hl.deferred {
				continue
			}
			report(hl.pos, "%s is locked here but not released on every path out of %s: unlock on all returns or use defer %s.Unlock()",
				hl.name, fb.name, hl.name)
		}
	}
}

func modeVerb(mode string) string {
	if mode == "R" {
		return "RLock"
	}
	return "Lock"
}

// applyLockAtom folds one atom into the lock state. When onEvent is
// non-nil it is invoked for double-lock and blocking-under-lock events
// (the report pass); the fixpoint pass passes nil.
func applyLockAtom(p *Pass, atom ast.Node, st *lockFacts, onEvent func(kind string, pos token.Pos, op lockOp, prev lockHeld)) {
	blocking := func(pos token.Pos) {
		if onEvent == nil || len(st.held) == 0 {
			return
		}
		// One report per site, naming the earliest-acquired holder so the
		// message is deterministic when several locks are live.
		var first lockHeld
		for _, hl := range st.held {
			if first.pos == 0 || hl.pos < first.pos {
				first = hl
			}
		}
		onEvent("blocking", pos, lockOp{}, first)
	}
	switch a := atom.(type) {
	case *ast.DeferStmt:
		registerDeferredUnlocks(p, a, st)
		return
	case *rangeAtom:
		if tv, ok := p.Info.Types[a.X]; ok {
			if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
				blocking(a.X.Pos())
			}
		}
		inspectLockOps(p, a.X, st, onEvent, blocking)
		return
	case *nonBlocking:
		// Select-with-default comm: real effects, cannot block.
		inspectLockOps(p, a.Stmt, st, onEvent, nil)
		return
	}
	inspectLockOps(p, atom, st, onEvent, blocking)
}

// inspectLockOps walks one atom (skipping function literals — they are
// separate functions) applying lock transitions and blocking detection.
func inspectLockOps(p *Pass, n ast.Node, st *lockFacts, onEvent func(string, token.Pos, lockOp, lockHeld), blocking func(token.Pos)) {
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.DeferStmt:
			registerDeferredUnlocks(p, n, st)
			return false
		case *ast.SendStmt:
			if blocking != nil {
				blocking(n.Arrow)
			}
			return true
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && blocking != nil {
				blocking(n.OpPos)
			}
			return true
		case *ast.CallExpr:
			if op, ok := classifyLockOp(p.Info, n); ok {
				applyLockOp(op, st, onEvent)
				return true
			}
			if isBlockingCall(p.Info, n) && blocking != nil {
				blocking(n.Pos())
			}
			return true
		}
		return true
	})
}

func applyLockOp(op lockOp, st *lockFacts, onEvent func(string, token.Pos, lockOp, lockHeld)) {
	key := op.key + "|" + op.mode
	if op.acquire {
		// Lock while the write lock is held, or write-Lock while the read
		// lock is held, deadlocks; repeated RLock is legal.
		if prev, ok := st.held[op.key+"|W"]; ok {
			if onEvent != nil {
				onEvent("double", op.pos, op, prev)
			}
		} else if prev, ok := st.held[op.key+"|R"]; ok && op.mode == "W" {
			if onEvent != nil {
				onEvent("double", op.pos, op, prev)
			}
		}
		if _, ok := st.held[key]; !ok {
			st.held[key] = lockHeld{pos: op.pos, name: op.name, deferred: st.deferred[key]}
		}
		return
	}
	delete(st.held, key)
	delete(st.deferred, key)
}

// registerDeferredUnlocks records the unlocks a defer statement guarantees
// at function exit: `defer mu.Unlock()` directly, or any unlock calls
// inside `defer func() { ... }()`.
func registerDeferredUnlocks(p *Pass, d *ast.DeferStmt, st *lockFacts) {
	record := func(key string) {
		st.deferred[key] = true
		if hl, ok := st.held[key]; ok {
			hl.deferred = true
			st.held[key] = hl
		}
	}
	if op, ok := classifyLockOp(p.Info, d.Call); ok && !op.acquire {
		record(op.key + "|" + op.mode)
		return
	}
	if lit, ok := d.Call.Fun.(*ast.FuncLit); ok {
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if op, ok := classifyLockOp(p.Info, call); ok && !op.acquire {
					record(op.key + "|" + op.mode)
				}
			}
			return true
		})
	}
}

// isBlockingCall recognizes the known blocking calls rule 2 covers:
// sync.WaitGroup.Wait, sync.Cond.Wait, and time.Sleep.
func isBlockingCall(info *types.Info, call *ast.CallExpr) bool {
	obj := calleeObj(info, call)
	if obj == nil {
		return false
	}
	if isPkgFunc(obj, "time", "Sleep") {
		return true
	}
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" || fn.Name() != "Wait" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() != nil
}
