package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// CtxLoop enforces PR 2's cancellation contract: an exported ...Context
// entry point that loops must actually observe its context, otherwise a
// SIGINT in the CLIs (which all wire contexts) leaves a sweep grinding
// to completion. A loop passes if it checks ctx.Err()/ctx.Done()
// somewhere in its body, calls a same-package function that does (one
// level down), or delegates to another ...Context function with the
// context in hand — e.g. a per-size loop whose body calls
// SolveContext(ctx, ...) cancels through the callee's own checks.
var CtxLoop = &Analyzer{
	Name:       "ctxloop",
	Doc:        "exported ...Context functions must check ctx.Err/ctx.Done in every outermost loop (directly, via a checking callee, or by delegating to a ...Context callee)",
	TestExempt: true,
	Run:        runCtxLoop,
}

func runCtxLoop(p *Pass) {
	// Map package functions to their bodies so "a callee one level
	// down checks ctx" is resolvable.
	decls := map[*types.Func]*ast.FuncDecl{}
	for _, f := range p.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := p.Info.Defs[fd.Name].(*types.Func); ok {
				decls[fn] = fd
			}
		}
	}
	for _, f := range p.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !fd.Name.IsExported() ||
				!strings.HasSuffix(fd.Name.Name, "Context") || !hasCtxParam(p, fd) {
				continue
			}
			for _, loop := range outermostLoops(fd.Body) {
				if !loopObservesCtx(p, loop, decls) {
					p.Reportf(loop.Pos(),
						"loop in %s never checks ctx: add a ctx.Err() check (or delegate to a ...Context callee) so cancellation stays prompt", fd.Name.Name)
				}
			}
		}
	}
}

// hasCtxParam reports whether the declared function takes a
// context.Context parameter.
func hasCtxParam(p *Pass, fd *ast.FuncDecl) bool {
	fn, ok := p.Info.Defs[fd.Name].(*types.Func)
	if !ok {
		return false
	}
	params := fn.Type().(*types.Signature).Params()
	for i := 0; i < params.Len(); i++ {
		if isContextType(params.At(i).Type()) {
			return true
		}
	}
	return false
}

// outermostLoops returns the for/range statements in body that are not
// nested inside another loop (an inner loop is the outer loop's
// responsibility: one check per outermost iteration is the granularity
// the solver and sweeps use). Function literals are skipped entirely —
// a closure is its own function, run by whoever receives it (pool.Run
// work items being the common case here), and that runner owns the
// cancellation contract for it.
func outermostLoops(body *ast.BlockStmt) []ast.Stmt {
	var loops []ast.Stmt
	ast.Inspect(body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			loops = append(loops, n.(ast.Stmt))
			return false // nested loops are covered by this one's check
		case *ast.FuncLit:
			return false
		}
		return true
	})
	return loops
}

// loopObservesCtx reports whether the loop's subtree satisfies the
// cancellation contract.
func loopObservesCtx(p *Pass, loop ast.Node, decls map[*types.Func]*ast.FuncDecl) bool {
	if checksCtxDirect(p.Info, loop) {
		return true
	}
	ok := false
	ast.Inspect(loop, func(n ast.Node) bool {
		if ok {
			return false
		}
		call, isCall := n.(*ast.CallExpr)
		if !isCall {
			return true
		}
		obj := calleeObj(p.Info, call)
		fn, isFn := obj.(*types.Func)
		if !isFn {
			return true
		}
		// Delegation: the callee is itself a ...Context function and
		// the context is passed along; its own loops carry the checks
		// (and are themselves linted if it lives in this module).
		if strings.HasSuffix(fn.Name(), "Context") && callPassesCtx(p.Info, call) {
			ok = true
			return false
		}
		// One level down: a same-package callee whose body checks ctx.
		if fd := decls[fn]; fd != nil && checksCtxDirect(p.Info, fd.Body) {
			ok = true
			return false
		}
		return true
	})
	return ok
}

// checksCtxDirect reports whether the subtree references .Err or .Done
// on a context.Context value.
func checksCtxDirect(info *types.Info, node ast.Node) bool {
	found := false
	ast.Inspect(node, func(n ast.Node) bool {
		if found {
			return false
		}
		sel, ok := n.(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Err" && sel.Sel.Name != "Done") {
			return true
		}
		if tv, ok := info.Types[sel.X]; ok && isContextType(tv.Type) {
			found = true
			return false
		}
		return true
	})
	return found
}

// callPassesCtx reports whether any argument of the call is a
// context.Context value.
func callPassesCtx(info *types.Info, call *ast.CallExpr) bool {
	for _, arg := range call.Args {
		if tv, ok := info.Types[arg]; ok && isContextType(tv.Type) {
			return true
		}
	}
	return false
}
