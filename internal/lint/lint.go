// Package lint is mnsim's project-specific static-analysis framework.
//
// PRs 2–4 built their headline guarantees on conventions: parallel sweeps
// are bit-identical only if every random draw flows through an injected,
// splitmix64-seeded *rand.Rand; flight-recorder replay is bit-identical
// only if the numerical packages never read the wall clock; ...Context
// entry points cancel promptly only if every long loop checks ctx. This
// package turns each of those conventions into a mechanically enforced
// rule, using nothing beyond the standard library: go/parser for syntax,
// go/types (with the source importer) for name resolution, and a small
// runner that understands //lint:ignore suppressions.
//
// Diagnostics print as "file:line:col: [name] message"; cmd/mnsim-lint is
// the CLI front end and CI runs it on every push.
package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"
)

// Diagnostic is one finding, positioned and attributed to an analyzer.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Analyzer is one named rule run over every loaded package.
type Analyzer struct {
	Name string
	// Doc is the one-line description shown by mnsim-lint -help and in
	// the README's analyzer table.
	Doc string
	// TestExempt drops diagnostics positioned in _test.go files: tests
	// may time, print, and draw throwaway randomness.
	TestExempt bool
	Run        func(*Pass)
}

// Pass hands one analyzer a fully type-checked package.
type Pass struct {
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
	// Path is the package's import path (fixtures may use fake paths to
	// exercise path-scoped analyzers such as noclock).
	Path string
	// Dir is the package's source directory on disk, for analyzers (such
	// as noalloc) that shell out to the go tool for the same package.
	Dir string

	analyzer *Analyzer
	sink     *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.sink = append(*p.sink, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Options configures one lint run.
type Options struct {
	// Dir is the directory patterns are resolved from; it must sit
	// inside the module. Empty means the current directory.
	Dir string
	// Patterns are package patterns: "./...", "./internal/circuit", or
	// plain relative directories. Empty means "./...".
	Patterns []string
	// Tests also loads and analyzes _test.go files (TestExempt
	// analyzers still skip diagnostics positioned in them).
	Tests bool
	// Strict additionally flags stale //lint:ignore comments that
	// suppressed nothing.
	Strict bool
	// Analyzers defaults to All().
	Analyzers []*Analyzer
}

// AnalyzerStat is one analyzer's per-run accounting: how many of the
// surviving diagnostics it produced and how much wall time its Run
// consumed across all packages.
type AnalyzerStat struct {
	Name     string
	Findings int
	Wall     time.Duration
}

// Result is the outcome of a lint run.
type Result struct {
	// Diagnostics are the surviving findings, sorted by position and
	// deduplicated: two findings identical in (position, analyzer,
	// message) — e.g. the same locked-here site reported once per escaping
	// path — collapse to one.
	Diagnostics []Diagnostic
	// Stats has one entry per analyzer that ran, in All() order.
	Stats []AnalyzerStat
}

// Run loads every package matched by opt.Patterns, runs the analyzers,
// applies //lint:ignore suppressions, and returns the surviving
// diagnostics. A non-nil error means the run itself failed (unreadable
// tree, type errors); findings are not errors.
func Run(opt Options) (*Result, error) {
	dir := opt.Dir
	if dir == "" {
		dir = "."
	}
	patterns := opt.Patterns
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	analyzers := opt.Analyzers
	if len(analyzers) == 0 {
		analyzers = All()
	}

	mod, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	dirs, err := expandPatterns(dir, mod, patterns)
	if err != nil {
		return nil, err
	}

	ld := NewLoader()
	var diags []Diagnostic
	var ignores []*ignoreDirective
	wall := map[string]time.Duration{}
	for _, d := range dirs {
		u, err := ld.Load(d, mod.importPath(d), opt.Tests)
		if err != nil {
			return nil, err
		}
		if u == nil { // no Go files under the current test/non-test filter
			continue
		}
		diags = append(diags, runAnalyzersTimed(u, analyzers, wall)...)
		ignores = append(ignores, u.ignores...)
	}

	diags = applySuppressions(diags, ignores, opt.Strict)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	diags = dedupDiagnostics(diags)

	counts := map[string]int{}
	for _, d := range diags {
		counts[d.Analyzer]++
	}
	stats := make([]AnalyzerStat, 0, len(analyzers))
	for _, a := range analyzers {
		stats = append(stats, AnalyzerStat{Name: a.Name, Findings: counts[a.Name], Wall: wall[a.Name]})
	}
	// Suppression meta-findings (stale //lint:ignore under -strict) have no
	// analyzer of their own; account for them so the summary totals match
	// the diagnostic list.
	if counts[metaAnalyzer] > 0 {
		stats = append(stats, AnalyzerStat{Name: metaAnalyzer, Findings: counts[metaAnalyzer]})
	}
	return &Result{Diagnostics: diags, Stats: stats}, nil
}

// dedupDiagnostics collapses findings identical in (position, analyzer,
// message). The input must already be sorted; equal findings are
// adjacent except for same-position different-message pairs, so a set is
// still needed.
func dedupDiagnostics(diags []Diagnostic) []Diagnostic {
	if len(diags) < 2 {
		return diags
	}
	seen := make(map[Diagnostic]bool, len(diags))
	out := diags[:0]
	for _, d := range diags {
		if seen[d] {
			continue
		}
		seen[d] = true
		out = append(out, d)
	}
	return out
}

func runAnalyzers(u *Unit, analyzers []*Analyzer) []Diagnostic {
	return runAnalyzersTimed(u, analyzers, nil)
}

func runAnalyzersTimed(u *Unit, analyzers []*Analyzer, wall map[string]time.Duration) []Diagnostic {
	var out []Diagnostic
	for _, a := range analyzers {
		var raw []Diagnostic
		pass := &Pass{
			Fset:     u.Fset,
			Files:    u.Files,
			Pkg:      u.Pkg,
			Info:     u.Info,
			Path:     u.Path,
			Dir:      u.Dir,
			analyzer: a,
			sink:     &raw,
		}
		start := time.Now()
		a.Run(pass)
		if wall != nil {
			wall[a.Name] += time.Since(start)
		}
		for _, d := range raw {
			if a.TestExempt && strings.HasSuffix(d.Pos.Filename, "_test.go") {
				continue
			}
			out = append(out, d)
		}
	}
	return out
}

// WriteText prints one "file:line:col: [name] message" line per
// diagnostic.
func (r *Result) WriteText(w io.Writer) {
	for _, d := range r.Diagnostics {
		fmt.Fprintln(w, d.String())
	}
}

// WriteSummary prints the per-analyzer accounting table: one line per
// analyzer with its surviving finding count and wall time, then a total.
func (r *Result) WriteSummary(w io.Writer) {
	var total int
	var wall time.Duration
	for _, s := range r.Stats {
		fmt.Fprintf(w, "  %-12s %3d finding(s)  %8.2fms\n",
			s.Name, s.Findings, float64(s.Wall.Microseconds())/1000.0)
		total += s.Findings
		wall += s.Wall
	}
	fmt.Fprintf(w, "  %-12s %3d finding(s)  %8.2fms\n", "total", total, float64(wall.Microseconds())/1000.0)
}

// --- module + pattern resolution -----------------------------------------

type module struct {
	root string // absolute directory holding go.mod
	path string // module path from the "module" directive
}

// importPath maps an absolute directory inside the module to its import
// path.
func (m module) importPath(dir string) string {
	rel, err := filepath.Rel(m.root, dir)
	if err != nil || rel == "." {
		return m.path
	}
	return m.path + "/" + filepath.ToSlash(rel)
}

// findModule walks up from dir to the enclosing go.mod.
func findModule(dir string) (module, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return module{}, err
	}
	for d := abs; ; d = filepath.Dir(d) {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return module{root: d, path: strings.TrimSpace(rest)}, nil
				}
			}
			return module{}, fmt.Errorf("lint: %s/go.mod has no module directive", d)
		}
		if parent := filepath.Dir(d); parent == d {
			return module{}, fmt.Errorf("lint: no go.mod found above %s", abs)
		}
	}
}

// expandPatterns turns package patterns into a sorted list of absolute
// directories containing Go files. "..." recursion skips testdata,
// vendor, hidden, and underscore-prefixed directories, matching the go
// tool; explicitly named directories are always honored so fixtures
// under testdata can be linted on purpose.
func expandPatterns(base string, mod module, patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var out []string
	add := func(d string) {
		if !seen[d] {
			seen[d] = true
			out = append(out, d)
		}
	}
	for _, pat := range patterns {
		rec := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			rec, pat = true, rest
		} else if pat == "..." {
			rec, pat = true, "."
		}
		root := pat
		if !filepath.IsAbs(root) {
			root = filepath.Join(base, pat)
		}
		abs, err := filepath.Abs(root)
		if err != nil {
			return nil, err
		}
		if st, err := os.Stat(abs); err != nil || !st.IsDir() {
			return nil, fmt.Errorf("lint: pattern %q: %s is not a directory", pat, abs)
		}
		if !strings.HasPrefix(abs+string(filepath.Separator), mod.root+string(filepath.Separator)) {
			return nil, fmt.Errorf("lint: %s is outside module %s", abs, mod.path)
		}
		if !rec {
			if hasGoFiles(abs) {
				add(abs)
			} else {
				return nil, fmt.Errorf("lint: no Go files in %s", abs)
			}
			continue
		}
		err = filepath.WalkDir(abs, func(p string, de os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !de.IsDir() {
				return nil
			}
			name := de.Name()
			if p != abs && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			if hasGoFiles(p) {
				add(p)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(out)
	return out, nil
}

func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			return true
		}
	}
	return false
}

// --- loading + type checking ---------------------------------------------

// Unit is one parsed and type-checked package.
type Unit struct {
	Dir   string
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info

	ignores []*ignoreDirective
}

// Loader parses and type-checks packages from source. It wraps the
// stdlib source importer so dependency packages (including the standard
// library, which modern toolchains no longer ship export data for) are
// themselves compiled from source, and caches them across Load calls.
type Loader struct {
	fset *token.FileSet
	imp  types.Importer
}

// NewLoader returns a Loader with a fresh file set and import cache.
func NewLoader() *Loader {
	fset := token.NewFileSet()
	return &Loader{fset: fset, imp: importer.ForCompiler(fset, "source", nil)}
}

// Load parses dir's package and type-checks it under the given import
// path. Test files are included when tests is true. It returns (nil,
// nil) when the filter leaves no files.
func (l *Loader) Load(dir, path string, tests bool) (*Unit, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") ||
			strings.HasPrefix(n, ".") || strings.HasPrefix(n, "_") {
			continue
		}
		if !tests && strings.HasSuffix(n, "_test.go") {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)
	var files []*ast.File
	for _, n := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, n), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil
	}
	// A directory can hold both package foo and the external test
	// package foo_test; type-check only the majority (in-package) side.
	// External test packages are rare here and their files are still
	// subject to gofmt and go vet in CI.
	pkgName := files[0].Name.Name
	for _, f := range files {
		if !strings.HasSuffix(f.Name.Name, "_test") {
			pkgName = f.Name.Name
			break
		}
	}
	kept := files[:0]
	for _, f := range files {
		if f.Name.Name == pkgName {
			kept = append(kept, f)
		}
	}
	files = kept

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Uses:       map[*ast.Ident]types.Object{},
		Defs:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	var typeErrs []error
	conf := types.Config{
		Importer: l.imp,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	pkg, _ := conf.Check(path, l.fset, files, info)
	if len(typeErrs) > 0 {
		msgs := make([]string, 0, len(typeErrs))
		for i, e := range typeErrs {
			if i == 8 {
				msgs = append(msgs, fmt.Sprintf("... and %d more", len(typeErrs)-i))
				break
			}
			msgs = append(msgs, e.Error())
		}
		return nil, fmt.Errorf("lint: type-checking %s failed:\n  %s", path, strings.Join(msgs, "\n  "))
	}
	u := &Unit{Dir: dir, Path: path, Fset: l.fset, Files: files, Pkg: pkg, Info: info}
	for _, f := range files {
		u.ignores = append(u.ignores, collectIgnores(l.fset, f)...)
	}
	return u, nil
}
