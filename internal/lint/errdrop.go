package lint

import (
	"go/ast"
	"go/types"
)

// ErrDrop flags statements that call a function whose only result is an
// error and discard it implicitly. PR 2 made Explore keep sweeping past
// failed candidates precisely because errors are accounted for, and the
// flight recorder's journal is only crash-safe if write errors surface.
// An implicitly dropped error is indistinguishable from a handled one at
// the call site; write `_ = f()` if discarding is genuinely intended —
// that is visible in review and greppable.
var ErrDrop = &Analyzer{
	Name:       "errdrop",
	Doc:        "no bare statement calls that silently discard a sole error result outside tests; handle it or write _ =",
	TestExempt: true,
	Run:        runErrDrop,
}

func runErrDrop(p *Pass) {
	errType := types.Universe.Lookup("error").Type()
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			stmt, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := stmt.X.(*ast.CallExpr)
			if !ok {
				return true
			}
			tv, ok := p.Info.Types[call]
			if !ok || tv.Type == nil || !types.Identical(tv.Type, errType) {
				return true
			}
			p.Reportf(call.Pos(),
				"result of %s is an error silently discarded: handle it or make the drop explicit with _ =", calleeLabel(p.Info, call))
			return true
		})
	}
}

// calleeLabel names the called function for the message, falling back
// to "call" for indirect calls.
func calleeLabel(info *types.Info, call *ast.CallExpr) string {
	if obj := calleeObj(info, call); obj != nil {
		return obj.Name()
	}
	return "call"
}
