// Package noprint is the fixture for the noprint analyzer. Its import
// path sits under internal/, so writing to process stdout is flagged.
package noprint

import (
	"fmt"
	"io"
)

// Report writes to process stdout/stderr three forbidden ways.
func Report(n int) {
	fmt.Println("solved", n) // want `fmt\.Println writes to process stdout`
	fmt.Printf("n=%d\n", n)  // want `fmt\.Printf writes to process stdout`
	println("debug", n)      // want `builtin println writes to stderr`
}

// ReportTo prints to a caller-supplied writer: the caller chose the
// sink, so this is allowed.
func ReportTo(w io.Writer, n int) {
	fmt.Fprintln(w, "solved", n)
}

// Label formats without printing: allowed.
func Label(n int) string { return fmt.Sprintf("n=%d", n) }
