// Package goleak is the fixture for the goleak analyzer: goroutine
// launches with and without a visible termination edge.
package goleak

import (
	"context"
	"sync"
	"time"
)

type sampler struct {
	stopc chan struct{}
	out   chan int
}

// Stop is the sampler's termination edge: closing stopc unblocks the
// loop's receive.
func (s *sampler) Stop() { close(s.stopc) }

// Runner's implementation lives behind the interface: launches of Run
// are only auditable when a Stop counterpart is visible.
type Runner interface {
	Run()
	Stop()
}

func work() {}

// spin loops forever with no stop check; launching it leaks.
func spin() {
	for {
		work()
	}
}

// LeakLiteral launches an endless literal with nothing to stop it.
func LeakLiteral() {
	go func() { // want `goroutine has no visible termination edge`
		for {
			work()
		}
	}()
}

// LeakNamed launches a named same-package function whose body has no
// termination edge either.
func LeakNamed() {
	go spin() // want `goroutine has no visible termination edge`
}

// LeakInvisible launches an interface method with no Stop/Close/Shutdown
// counterpart anywhere in the package for this value.
func LeakInvisible(r Runner) {
	go r.Run() // want `goroutine body is not visible from this package`
}

// LeakTicker blocks on time.Ticker.C forever. The ticker's channel does
// not count as a termination edge: Ticker.Stop does not close C or
// unblock a pending receive.
func LeakTicker() {
	t := time.NewTicker(time.Second)
	go func() { // want `goroutine has no visible termination edge`
		for {
			<-t.C
			work()
		}
	}()
}

// LeakDeadEdge has a stop receive in the body, but only after an
// infinite loop: the edge is unreachable, so it convinces nobody.
func LeakDeadEdge(s *sampler) {
	go func() { // want `goroutine has no visible termination edge`
		for {
			work()
		}
		<-s.stopc
	}()
}

// CtxSelect stops via a ctx.Done select arm: clean.
func CtxSelect(ctx context.Context, in chan int) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case v := <-in:
				work()
				_ = v
			}
		}
	}()
}

// RangeClosed ranges over a channel this package closes: the feeder's
// close() is the termination edge.
func RangeClosed(jobs chan int) {
	go func() {
		for j := range jobs {
			_ = j
			work()
		}
	}()
	close(jobs)
}

// StopChannel receives from a field of a package-declared struct with a
// Stop method: the sampler shape, clean.
func StopChannel(s *sampler) {
	go func() {
		for {
			select {
			case <-s.stopc:
				return
			case s.out <- 1:
			}
		}
	}()
}

// WaitJoined calls Done on a WaitGroup this package Waits on: clean.
func WaitJoined(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			work()
		}()
	}
	wg.Wait()
}

// StopManaged launches an invisible body whose target value has a Stop
// counterpart in this package: the Serve/Shutdown pair shape, clean.
func StopManaged(r Runner) {
	go r.Run()
	defer r.Stop()
}
