// Package noclock is the fixture for the noclock analyzer. Its import
// path ends in internal/circuit, one of the clock-free subtrees, so
// wall-clock reads here must be flagged.
package noclock

import "time"

// Solve reads the wall clock twice; both reads are violations.
func Solve() time.Duration {
	start := time.Now()    // want `time\.Now in clock-free package`
	d := time.Since(start) // want `time\.Since in clock-free package`
	return d
}

// Scale does pure duration arithmetic: no clock read, no finding.
func Scale(d time.Duration) time.Duration { return 2 * d }

// Budget uses duration constants, which are equally clock-free.
func Budget() time.Duration { return 50 * time.Millisecond }
