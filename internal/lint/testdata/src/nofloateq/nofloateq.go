// Package nofloateq is the fixture for the nofloateq analyzer: exact
// equality between two runtime floats is flagged; comparisons against
// compile-time sentinels are deliberate and allowed.
package nofloateq

import "math"

// Equal compares two runtime float64 values exactly: flagged.
func Equal(a, b float64) bool {
	return a == b // want `floating-point == between runtime values`
}

// NotEqual compares two runtime float32 values exactly: flagged.
func NotEqual(a, b float32) bool {
	return a != b // want `floating-point != between runtime values`
}

// Sum compares a computed value against a runtime value: flagged.
func Sum(a, b, c float64) bool {
	return a+b == c // want `floating-point == between runtime values`
}

// IsZero checks a float against the exact sentinel zero (the LU pivot
// test does this on purpose): allowed.
func IsZero(x float64) bool { return x == 0 }

// IsUnset compares against a named constant: allowed.
func IsUnset(x float64) bool {
	const unset = -1.0
	return x == unset
}

// IntEq is an integer comparison: allowed.
func IntEq(a, b int) bool { return a == b }

// Close is the approved epsilon pattern.
func Close(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// Ordered comparisons are fine; only ==/!= lose meaning to rounding.
func Less(a, b float64) bool { return a < b }
