// Package norawrand is the fixture for the norawrand analyzer: every
// line carrying a `// want` comment must produce a matching diagnostic,
// and every other line must stay silent.
package norawrand

import (
	"math/rand"
	"time"
)

// Draw uses the forbidden process-global source.
func Draw() (float64, int) {
	f := rand.Float64()                // want `rand\.Float64 draws from the process-global source`
	n := rand.Intn(10)                 // want `rand\.Intn draws from the process-global source`
	rand.Shuffle(n, func(i, j int) {}) // want `rand\.Shuffle draws from the process-global source`
	return f, n
}

// ClockSeeded seeds a source from the wall clock, which is just
// non-determinism one step removed.
func ClockSeeded() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano())) // want `rand\.NewSource seeded from the wall clock`
}

// Injected is the approved pattern: the generator arrives from the
// caller, who owns the seed.
func Injected(rng *rand.Rand) float64 {
	return rng.Float64()
}

// Seeded constructs a source from a caller-controlled seed; allowed.
func Seeded(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}
