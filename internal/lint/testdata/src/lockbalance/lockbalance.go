// Package lockbalance is the fixture for the flow-aware lockbalance
// analyzer: leaked locks on some path out, blocking operations under a
// held lock, and non-reentrant double acquisition.
package lockbalance

import (
	"sync"
	"time"
)

type server struct {
	mu      sync.Mutex
	rw      sync.RWMutex
	state   int
	updates chan int
}

// LeakOnErrorPath unlocks on the happy path only: the early return
// leaves the mutex held.
func (s *server) LeakOnErrorPath(fail bool) int {
	s.mu.Lock() // want `s\.mu is locked here but not released on every path out of LeakOnErrorPath`
	if fail {
		return -1
	}
	v := s.state
	s.mu.Unlock()
	return v
}

// LeakAlways never unlocks at all.
func (s *server) LeakAlways() {
	s.mu.Lock() // want `s\.mu is locked here but not released on every path out of LeakAlways`
	s.state++
}

// SendUnderLock blocks on a channel send while holding the mutex: every
// other contender stalls behind a send nobody may ever drain.
func (s *server) SendUnderLock(v int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.updates <- v // want `s\.mu is held across this blocking operation`
}

// SleepUnderLock holds the mutex across time.Sleep.
func (s *server) SleepUnderLock() {
	s.mu.Lock()
	time.Sleep(time.Millisecond) // want `s\.mu is held across this blocking operation`
	s.mu.Unlock()
}

// SelectUnderLock holds the mutex across a blocking select (no default
// clause: the receive arm is a real block point).
func (s *server) SelectUnderLock() {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case v := <-s.updates: // want `s\.mu is held across this blocking operation`
		s.state = v
	}
}

// DoubleLock re-acquires a mutex already held on the same path:
// sync.Mutex is not reentrant, so this self-deadlocks.
func (s *server) DoubleLock() {
	s.mu.Lock()
	s.mu.Lock() // want `s\.mu\.Lock: s\.mu may already be held`
	s.state++
	s.mu.Unlock()
	s.mu.Unlock()
}

// UpgradeDeadlock write-locks an RWMutex whose read lock may be held:
// the writer waits for the reader that is itself.
func (s *server) UpgradeDeadlock() int {
	s.rw.RLock()
	defer s.rw.RUnlock()
	s.rw.Lock() // want `s\.rw\.Lock: s\.rw may already be held`
	v := s.state
	s.rw.Unlock()
	return v
}

// BranchBalanced unlocks on both paths: clean.
func (s *server) BranchBalanced(fail bool) int {
	s.mu.Lock()
	if fail {
		s.mu.Unlock()
		return -1
	}
	v := s.state
	s.mu.Unlock()
	return v
}

// DeferBalanced releases via defer on every path, including early
// returns: clean.
func (s *server) DeferBalanced(fail bool) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if fail {
		return -1
	}
	return s.state
}

// PanicGuardAllowed panics while holding the lock: a deliberate crash,
// not a leak — panic exits are exempt from the balance rule.
func (s *server) PanicGuardAllowed() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.state < 0 {
		panic("lockbalance fixture: negative state")
	}
	s.state++
}

// RepeatedRLockAllowed takes the read lock twice: legal for RWMutex
// readers, not flagged.
func (s *server) RepeatedRLockAllowed() int {
	s.rw.RLock()
	defer s.rw.RUnlock()
	s.rw.RLock()
	v := s.state
	s.rw.RUnlock()
	return v
}

// NonBlockingSelectAllowed drains under the lock through a select with a
// default clause: it cannot block, so holding the mutex is fine.
func (s *server) NonBlockingSelectAllowed() {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case v := <-s.updates:
		s.state = v
	default:
	}
}

// LoopBalanced locks and unlocks inside each iteration: the state at the
// loop head is lock-free on every path, clean.
func (s *server) LoopBalanced(n int) {
	for i := 0; i < n; i++ {
		s.mu.Lock()
		s.state++
		s.mu.Unlock()
	}
}
