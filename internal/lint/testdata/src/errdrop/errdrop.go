// Package errdrop is the fixture for the errdrop analyzer: a bare
// statement call whose only result is an error silently discards it.
package errdrop

import (
	"errors"
	"fmt"
)

func work() error { return errors.New("boom") }

func pair() (int, error) { return 0, nil }

type journal struct{}

func (journal) Sync() error { return nil }

// Drop discards work's sole error result implicitly: flagged.
func Drop() {
	work() // want `result of work is an error silently discarded`
}

// DropMethod does the same through a method call: flagged.
func DropMethod(j journal) {
	j.Sync() // want `result of Sync is an error silently discarded`
}

// Explicit makes the discard visible in review: allowed.
func Explicit() {
	_ = work()
}

// Handled consumes the error: allowed.
func Handled() error {
	if err := work(); err != nil {
		return fmt.Errorf("handled: %w", err)
	}
	return nil
}

// Multi drops a multi-result call; go vet territory, not this
// analyzer's (the error is not the sole result).
func Multi() {
	pair()
}
