// Package suppress is the fixture for //lint:ignore handling: a
// reasoned suppression silences its diagnostic, a reason-less one is
// itself reported (and silences nothing), and a suppression matching no
// diagnostic is flagged under -strict.
package suppress

import "math/rand"

// Reasoned is fully suppressed: no diagnostic survives.
func Reasoned() float64 {
	//lint:ignore norawrand fixture exercising a reasoned suppression
	return rand.Float64()
}

// Reasonless keeps the norawrand diagnostic and adds a lint one about
// the bare directive.
func Reasonless() float64 {
	//lint:ignore norawrand
	return rand.Float64()
}

// Stale suppresses nothing; flagged only under -strict.
func Stale() int {
	//lint:ignore norawrand there is no randomness on the next line
	return 4
}
