// Package noalloc is the fixture for the noalloc analyzer: functions
// annotated //lint:hotpath that contain deliberate heap escapes, checked
// against real `go build -gcflags=-m` output.
package noalloc

import "fmt"

// sinkPtr keeps escaping pointers alive so the compiler cannot optimize
// the escapes away.
var sinkPtr *int

// sinkSlice pins escaping slices.
var sinkSlice []float64

// sinkFn pins escaping closures.
var sinkFn func() int

// EscapePointer returns the address of a local: x is moved to the heap.
//
//lint:hotpath
func EscapePointer(n int) *int {
	x := n // want `heap escape in //lint:hotpath function EscapePointer: moved to heap: x`
	return &x
}

// EscapeMake builds a slice that outlives the frame through the package
// sink.
//
//lint:hotpath
func EscapeMake(n int) {
	buf := make([]float64, n) // want `heap escape in //lint:hotpath function EscapeMake`
	sinkSlice = buf
}

// EscapeSprintf boxes its argument into an interface for fmt: the
// classic accidental hot-path allocation.
//
//lint:hotpath
func EscapeSprintf(n int) string {
	return fmt.Sprintf("n=%d", n) // want `heap escape in //lint:hotpath function EscapeSprintf`
}

// EscapeClosure captures a local by reference in a closure stored past
// the call.
//
//lint:hotpath
func EscapeClosure(n int) {
	total := n            // want `heap escape in //lint:hotpath function EscapeClosure: moved to heap: total`
	sinkFn = func() int { // want `heap escape in //lint:hotpath function EscapeClosure`
		total++
		return total
	}
}

// EscapeStore writes a fresh allocation into the package-level sink.
//
//lint:hotpath
func EscapeStore(n int) {
	p := new(int) // want `heap escape in //lint:hotpath function EscapeStore`
	*p = n
	sinkPtr = p
}

// CleanAccumulate is annotated and escape-free: index arithmetic over
// caller-owned slices allocates nothing.
//
//lint:hotpath
func CleanAccumulate(dst, src []float64) float64 {
	var acc float64
	for i := range src {
		dst[i] += src[i]
		acc += dst[i]
	}
	return acc
}

// UnannotatedEscape escapes freely: without //lint:hotpath the analyzer
// has no opinion.
func UnannotatedEscape(n int) *int {
	y := n
	return &y
}
