// Package clean is the escape-free counterpart of the noalloc fixture.
// TestNoAllocDetectsIntroducedEscape copies it into a scratch module,
// verifies the analyzer is silent, then introduces a deliberate escape
// and verifies the analyzer fails.
package clean

// Dot is a hot-path-shaped kernel: pure index arithmetic over
// caller-owned slices, no allocation.
//
//lint:hotpath
func Dot(a, b []float64) float64 {
	var acc float64
	for i := range a {
		acc += a[i] * b[i]
	}
	return acc
}

// Scale mutates in place, allocation-free.
//
//lint:hotpath
func Scale(v []float64, k float64) {
	for i := range v {
		v[i] *= k
	}
}
