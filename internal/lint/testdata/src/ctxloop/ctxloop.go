// Package ctxloop is the fixture for the ctxloop analyzer: exported
// ...Context functions must observe ctx in every outermost loop.
package ctxloop

import "context"

// SweepContext loops without ever looking at ctx: flagged.
func SweepContext(ctx context.Context, n int) int {
	total := 0
	for i := 0; i < n; i++ { // want `loop in SweepContext never checks ctx`
		total += i
	}
	return total
}

// TwoLoopsContext checks ctx in the first loop but not the second; each
// outermost loop is judged on its own.
func TwoLoopsContext(ctx context.Context, n int) error {
	for i := 0; i < n; i++ {
		if err := ctx.Err(); err != nil {
			return err
		}
	}
	for i := 0; i < n; i++ { // want `loop in TwoLoopsContext never checks ctx`
		_ = i
	}
	return nil
}

// DirectContext checks ctx.Err in the loop body: clean.
func DirectContext(ctx context.Context, n int) error {
	for i := 0; i < n; i++ {
		if err := ctx.Err(); err != nil {
			return err
		}
	}
	return nil
}

// DoneContext selects on ctx.Done: clean.
func DoneContext(ctx context.Context, ch <-chan int) int {
	total := 0
	for {
		select {
		case <-ctx.Done():
			return total
		case v := <-ch:
			total += v
		}
	}
}

// NestedContext keeps its check in the inner loop; the outermost loop
// still observes ctx every iteration, so it is clean.
func NestedContext(ctx context.Context, m, n int) error {
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
	}
	return nil
}

// HelperContext delegates the check to a same-package callee one level
// down: clean.
func HelperContext(ctx context.Context, xs []int) error {
	for range xs {
		if err := step(ctx); err != nil {
			return err
		}
	}
	return nil
}

func step(ctx context.Context) error { return ctx.Err() }

// DelegateContext hands ctx to another ...Context function, whose own
// loops carry the checks: clean.
func DelegateContext(ctx context.Context, xs []int) error {
	for range xs {
		if err := InnerContext(ctx, 4); err != nil {
			return err
		}
	}
	return nil
}

// InnerContext is a checking ...Context callee.
func InnerContext(ctx context.Context, n int) error {
	for i := 0; i < n; i++ {
		if err := ctx.Err(); err != nil {
			return err
		}
	}
	return nil
}

// quietContext is unexported, so it is not an entry point the contract
// covers.
func quietContext(ctx context.Context, n int) int {
	t := 0
	for i := 0; i < n; i++ {
		t += i
	}
	return t
}

// LoopFreeContext has no loop, so there is nothing to check.
func LoopFreeContext(ctx context.Context) error { return ctx.Err() }

// ClosureContext only loops inside a function literal; the closure is
// its own function, and whoever runs it (a worker pool, say) owns the
// cancellation contract — so nothing is flagged here.
func ClosureContext(ctx context.Context, xs []int) func() int {
	return func() int {
		t := 0
		for _, x := range xs {
			t += x
		}
		return t
	}
}
