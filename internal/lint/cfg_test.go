package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// parseBodies parses src (a complete file) and returns the CFGs of its
// function declarations by name.
func parseBodies(t *testing.T, src string) map[string]*CFG {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "cfg_test_src.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	out := map[string]*CFG{}
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
			out[fd.Name.Name] = BuildCFG(fd.Body)
		}
	}
	return out
}

// atomCount sums atoms over reachable blocks.
func atomCount(g *CFG) int {
	n := 0
	for b := range g.Reachable() {
		n += len(b.Atoms)
	}
	return n
}

func TestCFGDeadCodeAfterReturn(t *testing.T) {
	g := parseBodies(t, `package p
func f() int {
	return 1
	println("dead")
}`)["f"]
	reach := g.Reachable()
	if !reach[g.Exit] {
		t.Fatal("exit unreachable")
	}
	for b := range reach {
		for _, a := range b.Atoms {
			if es, ok := a.(*ast.ExprStmt); ok {
				if call, ok := es.X.(*ast.CallExpr); ok {
					if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "println" {
						t.Fatal("statement after return is reachable")
					}
				}
			}
		}
	}
}

func TestCFGIfElseJoins(t *testing.T) {
	g := parseBodies(t, `package p
func f(c bool) int {
	x := 0
	if c {
		x = 1
	} else {
		x = 2
	}
	return x
}`)["f"]
	// Entry, then-branch, else-branch, join, and exit must all be live.
	if got := len(g.Reachable()); got < 5 {
		t.Fatalf("reachable blocks = %d, want >= 5", got)
	}
	// Both assignments and the return are reachable atoms.
	if n := atomCount(g); n < 5 { // x:=0, c, x=1, x=2, return
		t.Fatalf("reachable atoms = %d, want >= 5", n)
	}
}

func TestCFGForLoopBackEdge(t *testing.T) {
	g := parseBodies(t, `package p
func f(n int) {
	for i := 0; i < n; i++ {
		println(i)
	}
}`)["f"]
	// The loop head must have two successors (body and exit) and the body
	// must cycle back: verify by finding a reachable block that succeeds
	// to an earlier-indexed block.
	back := false
	for b := range g.Reachable() {
		for _, s := range b.Succs {
			if s.Index < b.Index {
				back = true
			}
		}
	}
	if !back {
		t.Fatal("for loop produced no back edge")
	}
}

func TestCFGInfiniteLoopKillsExit(t *testing.T) {
	cfgs := parseBodies(t, `package p
func f(stop chan struct{}) {
	for {
		println("spin")
	}
	<-stop
}`)
	g := cfgs["f"]
	reach := g.Reachable()
	if reach[g.Exit] {
		t.Fatal("normal exit reachable past a condition-less for loop")
	}
	// The trailing receive sits in a dead block.
	for b := range reach {
		for _, a := range b.Atoms {
			if es, ok := a.(*ast.ExprStmt); ok {
				if u, ok := es.X.(*ast.UnaryExpr); ok && u.Op == token.ARROW {
					t.Fatal("code after infinite loop is reachable")
				}
			}
		}
	}
}

func TestCFGBreakReachesExit(t *testing.T) {
	g := parseBodies(t, `package p
func f(stop chan struct{}) {
	for {
		select {
		case <-stop:
		}
		break
	}
}`)["f"]
	if !g.Reachable()[g.Exit] {
		t.Fatal("break out of a condition-less loop did not reach exit")
	}
}

func TestCFGPanicSeparatesExits(t *testing.T) {
	g := parseBodies(t, `package p
func f(bad bool) int {
	if bad {
		panic("bad")
	}
	return 1
}`)["f"]
	reach := g.Reachable()
	if !reach[g.PanicExit] {
		t.Fatal("panic exit unreachable")
	}
	if !reach[g.Exit] {
		t.Fatal("normal exit unreachable")
	}
	// The panic atom must not flow into the normal exit path: no reachable
	// block may list PanicExit and Exit as the same node.
	if g.Exit == g.PanicExit {
		t.Fatal("exit and panic exit collapsed")
	}
}

func TestCFGSelectDefaultNonBlocking(t *testing.T) {
	cfgs := parseBodies(t, `package p
func blocking(ch chan int) {
	select {
	case v := <-ch:
		println(v)
	}
}
func polling(ch chan int) {
	select {
	case v := <-ch:
		println(v)
	default:
	}
}`)
	find := func(g *CFG) (plain, wrapped bool) {
		for b := range g.Reachable() {
			for _, a := range b.Atoms {
				switch a.(type) {
				case *nonBlocking:
					wrapped = true
				case *ast.AssignStmt:
					plain = true
				}
			}
		}
		return
	}
	if plain, wrapped := find(cfgs["blocking"]); !plain || wrapped {
		t.Fatalf("blocking select: plain=%v wrapped=%v, want comm kept as a blocking atom", plain, wrapped)
	}
	if plain, wrapped := find(cfgs["polling"]); plain || !wrapped {
		t.Fatalf("select with default: plain=%v wrapped=%v, want comm wrapped nonBlocking", plain, wrapped)
	}
}

func TestCFGRangeHeadAtom(t *testing.T) {
	g := parseBodies(t, `package p
func f(xs []int) int {
	s := 0
	for _, x := range xs {
		s += x
	}
	return s
}`)["f"]
	heads := 0
	for b := range g.Reachable() {
		for _, a := range b.Atoms {
			if _, ok := a.(*rangeAtom); ok {
				heads++
			}
		}
	}
	if heads != 1 {
		t.Fatalf("range head atoms = %d, want 1", heads)
	}
	if !g.Reachable()[g.Exit] {
		t.Fatal("exit unreachable after range loop")
	}
}

func TestCFGLabeledBreak(t *testing.T) {
	g := parseBodies(t, `package p
func f(n int) {
outer:
	for i := 0; i < n; i++ {
		for {
			break outer
		}
	}
}`)["f"]
	if !g.Reachable()[g.Exit] {
		t.Fatal("labeled break did not reach the function exit")
	}
}

// TestForwardDataflowGenKill runs the driver over a diamond with a
// simple may-union gen set: atoms seen on either path must survive the
// merge at the join.
func TestForwardDataflowGenKill(t *testing.T) {
	g := parseBodies(t, `package p
func f(c bool) {
	println("top")
	if c {
		println("left")
	} else {
		println("right")
	}
	println("join")
}`)["f"]
	type set = map[string]bool
	lit := func(a ast.Node) (string, bool) {
		es, ok := a.(*ast.ExprStmt)
		if !ok {
			return "", false
		}
		call, ok := es.X.(*ast.CallExpr)
		if !ok || len(call.Args) != 1 {
			return "", false
		}
		bl, ok := call.Args[0].(*ast.BasicLit)
		if !ok {
			return "", false
		}
		return bl.Value, true
	}
	transfer := func(s set, b *Block) set {
		out := set{}
		for k := range s {
			out[k] = true
		}
		for _, a := range b.Atoms {
			if v, ok := lit(a); ok {
				out[v] = true
			}
		}
		return out
	}
	merge := func(a, b set) set {
		out := set{}
		for k := range a {
			out[k] = true
		}
		for k := range b {
			out[k] = true
		}
		return out
	}
	equal := func(a, b set) bool {
		if len(a) != len(b) {
			return false
		}
		for k := range a {
			if !b[k] {
				return false
			}
		}
		return true
	}
	in := ForwardDataflow(g, set{}, transfer, merge, equal)
	exit := in[g.Exit]
	for _, want := range []string{`"top"`, `"left"`, `"right"`, `"join"`} {
		if !exit[want] {
			t.Errorf("exit state missing %s: %v", want, exit)
		}
	}
}
