package lint

import (
	"go/ast"
)

// NoRawRand enforces PR 2's determinism contract: every random draw in
// non-test code must flow through an injected *rand.Rand whose seed the
// caller controls (MCOptions.Seed / the splitmix64 per-trial streams).
// Package-level math/rand functions draw from the process-global
// source, and seeding any source from the wall clock makes two runs of
// the same sweep differ — both silently break the "parallel output is
// bit-identical to sequential" guarantee and flight-recorder replay.
var NoRawRand = &Analyzer{
	Name:       "norawrand",
	Doc:        "no math/rand top-level draws or wall-clock-seeded sources outside tests; inject a seeded *rand.Rand",
	TestExempt: true,
	Run:        runNoRawRand,
}

// randPkgs are the package paths whose top-level draw functions are
// forbidden.
var randPkgs = []string{"math/rand", "math/rand/v2"}

// randConstructors build sources/generators rather than drawing
// numbers; they are allowed. The seed-taking ones are still checked for
// wall-clock seeding, which is just non-determinism one step removed.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

// randSeeded are the constructors that take the seed material directly.
var randSeeded = map[string]bool{
	"NewSource": true, "NewPCG": true, "NewChaCha8": true,
}

func runNoRawRand(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			obj := calleeObj(p.Info, call)
			for _, pkg := range randPkgs {
				name, ok := pkgFuncName(obj, pkg)
				if !ok {
					continue
				}
				if !randConstructors[name] {
					p.Reportf(call.Pos(),
						"%s.%s draws from the process-global source: draw through an injected *rand.Rand (seeded via MCOptions.Seed / splitmix64) so runs stay bit-identical", pkgBase(pkg), name)
				} else if randSeeded[name] && argsReadClock(p, call) {
					p.Reportf(call.Pos(),
						"%s.%s seeded from the wall clock: derive seeds from a caller-supplied seed so runs stay reproducible", pkgBase(pkg), name)
				}
			}
			return true
		})
	}
}

// argsReadClock reports whether any argument expression (transitively)
// calls time.Now.
func argsReadClock(p *Pass, call *ast.CallExpr) bool {
	found := false
	for _, arg := range call.Args {
		ast.Inspect(arg, func(n ast.Node) bool {
			if c, ok := n.(*ast.CallExpr); ok && isPkgFunc(calleeObj(p.Info, c), "time", "Now") {
				found = true
			}
			return !found
		})
	}
	return found
}

func pkgBase(path string) string {
	if path == "math/rand/v2" {
		return "rand/v2"
	}
	return "rand"
}
