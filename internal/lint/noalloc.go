package lint

import (
	"go/ast"
	"go/token"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
)

// NoAlloc guards the hand-tuned hot paths. PR 9 drove the warm solve to
// ~0 allocs/op and the CI bench gate pins allocs/op exactly — but the
// gate only names the benchmark, not the culprit, and only fires for
// paths a benchmark covers. NoAlloc turns the property into a static
// rule with named culprits: a function annotated
//
//	//lint:hotpath
//
// in its doc comment must contain no heap-escaping construct. The
// analyzer drives the real escape analysis — `go build -gcflags=-m` on
// the package — and maps every "escapes to heap" / "moved to heap"
// diagnostic that lands inside an annotated function body back to a lint
// finding at the compiler-reported position. Cold-path allocations that
// are deliberate (a grow-on-first-use buffer, a panic guard formatting
// its message) carry a reasoned //lint:ignore on the offending line, so
// the hot loop stays provably clean while the guards stay readable.
//
// Constant-string escapes (`"..." escapes to heap`) are filtered: they
// are panic/format arguments boxed only on the crash path, and inlining
// attributes callees' panic-guard strings to the hot call site.
//
// The probe builds only packages that contain at least one annotation;
// an unannotated package costs nothing. Escape diagnostics are replayed
// from the build cache on unchanged packages, so repeated lint runs stay
// fast.
var NoAlloc = &Analyzer{
	Name:       "noalloc",
	Doc:        "functions annotated //lint:hotpath must contain no heap-escaping constructs (checked against go build -gcflags=-m)",
	TestExempt: true,
	Run:        runNoAlloc,
}

// hotpathDirective is the annotation marking a function as an
// allocation-free hot path.
const hotpathDirective = "//lint:hotpath"

// hotpathFuncs returns the declared functions annotated //lint:hotpath in
// their doc comment, keyed for range lookups.
func hotpathFuncs(p *Pass) []*ast.FuncDecl {
	var out []*ast.FuncDecl
	for _, f := range p.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil || fd.Doc == nil {
				continue
			}
			for _, c := range fd.Doc.List {
				if strings.HasPrefix(c.Text, hotpathDirective) {
					out = append(out, fd)
					break
				}
			}
		}
	}
	return out
}

func runNoAlloc(p *Pass) {
	hot := hotpathFuncs(p)
	if len(hot) == 0 {
		return
	}
	diags, err := escapeProbe(p.Dir)
	if err != nil {
		// A failed probe must be loud, not silently green: report at each
		// annotated function so the strict gate fails until the build does
		// not.
		for _, fd := range hot {
			p.Reportf(fd.Pos(), "//lint:hotpath escape probe failed: %v", err)
		}
		return
	}
	// Function body line ranges per absolute file path.
	type bodyRange struct {
		fd         *ast.FuncDecl
		start, end int
	}
	ranges := map[string][]bodyRange{}
	files := map[string]*token.File{}
	for _, f := range p.Files {
		tf := p.Fset.File(f.Pos())
		if tf == nil {
			continue
		}
		abs, err := filepath.Abs(tf.Name())
		if err != nil {
			continue
		}
		files[abs] = tf
	}
	for _, fd := range hot {
		pos := p.Fset.Position(fd.Body.Pos())
		end := p.Fset.Position(fd.Body.End())
		abs, err := filepath.Abs(pos.Filename)
		if err != nil {
			continue
		}
		ranges[abs] = append(ranges[abs], bodyRange{fd: fd, start: pos.Line, end: end.Line})
	}
	seen := map[string]bool{}
	for _, d := range diags {
		tf, ok := files[d.file]
		if !ok {
			continue
		}
		for _, br := range ranges[d.file] {
			if d.line < br.start || d.line > br.end {
				continue
			}
			key := d.file + ":" + strconv.Itoa(d.line) + ":" + strconv.Itoa(d.col) + ":" + d.msg
			if seen[key] {
				continue
			}
			seen[key] = true
			p.Reportf(lineColPos(tf, d.line, d.col),
				"heap escape in //lint:hotpath function %s: %s", br.fd.Name.Name, d.msg)
		}
	}
}

// escapeDiag is one compiler escape diagnostic, resolved to an absolute
// file path.
type escapeDiag struct {
	file string
	line int
	col  int
	msg  string
}

// escapeProbe compiles the package rooted at dir with -gcflags=-m and
// returns the heap-escape diagnostics. The build runs from the module
// root so path resolution matches the go tool's; -o discards any binary
// a main package would produce.
func escapeProbe(dir string) ([]escapeDiag, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	mod, err := findModule(abs)
	if err != nil {
		return nil, err
	}
	cmd := exec.Command("go", "build", "-gcflags=-m", "-o", os.DevNull, abs)
	cmd.Dir = mod.root
	out, err := cmd.CombinedOutput()
	if err != nil {
		first := strings.TrimSpace(string(out))
		if i := strings.IndexByte(first, '\n'); i >= 0 {
			// Keep the output compact: the first couple of lines carry the
			// compile error.
			lines := strings.SplitN(first, "\n", 4)
			if len(lines) > 3 {
				lines = lines[:3]
			}
			first = strings.Join(lines, "; ")
		}
		return nil, &probeError{msg: "go build -gcflags=-m: " + err.Error() + ": " + first}
	}
	var diags []escapeDiag
	for _, line := range strings.Split(string(out), "\n") {
		file, ln, col, msg, ok := parseEscapeLine(line)
		if !ok || isConstStringEscape(msg) {
			continue
		}
		if !filepath.IsAbs(file) {
			file = filepath.Join(mod.root, file)
		}
		diags = append(diags, escapeDiag{file: file, line: ln, col: col, msg: msg})
	}
	return diags, nil
}

// isConstStringEscape matches diagnostics like
//
//	"linalg: Dot length mismatch" escapes to heap
//
// — a constant string boxed for a panic or format call. The box is only
// materialized on the crash/format path, never in the steady-state loop,
// and inlined callees attribute their panic-guard strings to the hot
// call site; flagging them would demand a suppression on every guard.
func isConstStringEscape(msg string) bool {
	return strings.HasPrefix(msg, `"`) && strings.HasSuffix(msg, `" escapes to heap`)
}

type probeError struct{ msg string }

func (e *probeError) Error() string { return e.msg }

// parseEscapeLine matches "path:line:col: ... escapes to heap" and
// "path:line:col: moved to heap: x" compiler output lines.
func parseEscapeLine(line string) (file string, ln, col int, msg string, ok bool) {
	line = strings.TrimSpace(line)
	if !strings.Contains(line, "escapes to heap") && !strings.Contains(line, "moved to heap") {
		return "", 0, 0, "", false
	}
	// path:line:col: msg — split off the three position fields from the
	// left; the path itself may not contain ":" on the platforms CI runs.
	rest := line
	i := strings.IndexByte(rest, ':')
	if i <= 0 {
		return "", 0, 0, "", false
	}
	file = rest[:i]
	rest = rest[i+1:]
	i = strings.IndexByte(rest, ':')
	if i <= 0 {
		return "", 0, 0, "", false
	}
	lnv, err := strconv.Atoi(rest[:i])
	if err != nil {
		return "", 0, 0, "", false
	}
	rest = rest[i+1:]
	i = strings.IndexByte(rest, ':')
	if i <= 0 {
		return "", 0, 0, "", false
	}
	colv, err := strconv.Atoi(rest[:i])
	if err != nil {
		return "", 0, 0, "", false
	}
	return file, lnv, colv, strings.TrimSpace(rest[i+1:]), true
}

// lineColPos converts a (line, col) pair from compiler output into a
// token.Pos inside tf, clamping columns that fall past the line end.
func lineColPos(tf *token.File, line, col int) token.Pos {
	if line < 1 || line > tf.LineCount() {
		return tf.Pos(0)
	}
	pos := tf.LineStart(line) + token.Pos(col-1)
	if pos < tf.LineStart(line) || int(pos-tf.Pos(0)) >= tf.Size() {
		return tf.LineStart(line)
	}
	// A column past the end of the line would spill onto the next one;
	// fall back to the line start.
	if tfPosLine(tf, pos) != line {
		return tf.LineStart(line)
	}
	return pos
}

func tfPosLine(tf *token.File, pos token.Pos) int {
	return tf.Line(pos)
}
