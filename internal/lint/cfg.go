package lint

import (
	"go/ast"
	"go/token"
)

// This file is the flow-aware substrate under the concurrency analyzers:
// a small intraprocedural control-flow-graph builder over go/ast plus a
// merge-based forward dataflow driver. The six original analyzers are
// AST-shaped — they match syntax wherever it appears — but "a mutex is
// unlocked on every path out" and "this goroutine has a reachable stop
// edge" are path properties, so they need blocks, edges, and fixpoints.
// Like the rest of the framework the builder is stdlib-only; it models
// exactly the statement forms this repository uses and stays honest about
// what it skips (function literals are separate functions, goto is
// resolved structurally, panic is an exit that still runs defers).

// Block is one basic block: a run of atoms (statements and expressions
// evaluated in order, no internal control flow between them) and the
// edges out. Atoms may still contain *ast.FuncLit subtrees; transfer
// functions must skip those — a literal is its own function and gets its
// own CFG.
type Block struct {
	// Atoms are the nodes evaluated in this block, in execution order.
	Atoms []ast.Node
	// Succs are the control-flow successors.
	Succs []*Block
	// Index is the block's position in CFG.Blocks (stable, build order).
	Index int
}

// CFG is the control-flow graph of one function body. Entry starts the
// body; Exit collects normal terminations (every return statement and
// the fall-off-the-end path); PanicExit collects explicit panic calls.
// Deferred calls run on both exit kinds, which is why they are separate:
// a lock balance check wants "unlocked on every return" without damning
// every guard panic inside a critical section.
type CFG struct {
	Entry     *Block
	Exit      *Block
	PanicExit *Block
	Blocks    []*Block
}

// Reachable returns the set of blocks reachable from Entry. Dead blocks
// (code after an unconditional return, unresolved goto targets) exist in
// Blocks but carry no dataflow.
func (g *CFG) Reachable() map[*Block]bool {
	seen := map[*Block]bool{g.Entry: true}
	work := []*Block{g.Entry}
	for len(work) > 0 {
		b := work[len(work)-1]
		work = work[:len(work)-1]
		for _, s := range b.Succs {
			if !seen[s] {
				seen[s] = true
				work = append(work, s)
			}
		}
	}
	return seen
}

// ForwardDataflow runs a merge-based forward dataflow over g to fixpoint
// and returns the state at entry to each reachable block. transfer folds
// one block's atoms into a state (and must not mutate its input); merge
// joins the states of converging edges; equal detects the fixpoint. The
// lattice is assumed finite-height — the lock-set domains used here are —
// so iteration terminates.
func ForwardDataflow[S any](g *CFG, entry S, transfer func(S, *Block) S, merge func(a, b S) S, equal func(a, b S) bool) map[*Block]S {
	reach := g.Reachable()
	in := map[*Block]S{g.Entry: entry}
	work := []*Block{g.Entry}
	queued := map[*Block]bool{g.Entry: true}
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		queued[b] = false
		out := transfer(in[b], b)
		for _, s := range b.Succs {
			if !reach[s] {
				continue
			}
			next, have := in[s]
			if have {
				next = merge(next, out)
			} else {
				next = out
			}
			if !have || !equal(next, in[s]) {
				in[s] = next
				if !queued[s] {
					queued[s] = true
					work = append(work, s)
				}
			}
		}
	}
	return in
}

// BuildCFG constructs the control-flow graph of one function body.
func BuildCFG(body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{}
	b.cfg = &CFG{}
	b.cfg.Entry = b.newBlock()
	b.cfg.Exit = b.newBlock()
	b.cfg.PanicExit = b.newBlock()
	b.cur = b.cfg.Entry
	b.labels = map[string]*labelFrame{}
	b.stmtList(body.List)
	// Falling off the end of the body is a normal exit.
	b.edge(b.cur, b.cfg.Exit)
	return b.cfg
}

// labelFrame tracks the targets a labeled break/continue/goto resolves to.
type labelFrame struct {
	breakTarget    *Block
	continueTarget *Block // nil for labeled non-loops
	gotoTarget     *Block // the label's own block, for goto
}

type cfgBuilder struct {
	cfg *CFG
	cur *Block
	// loop/switch/select frames, innermost last; label "" entries are the
	// implicit targets of unlabeled break/continue.
	frames []*labelFrame
	// labels maps label names to their frames (labeled statements).
	labels map[string]*labelFrame
	// pendingLabel is the label attached to the statement being built, so
	// the loop it labels registers break/continue targets under it.
	pendingLabel string
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{Index: len(b.cfg.Blocks)}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *Block) {
	for _, s := range from.Succs {
		if s == to {
			return
		}
	}
	from.Succs = append(from.Succs, to)
}

func (b *cfgBuilder) atom(n ast.Node) {
	if n != nil {
		b.cur.Atoms = append(b.cur.Atoms, n)
	}
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

// isPanicCall reports whether stmt is a direct call of the builtin panic.
func isPanicCall(s ast.Stmt) bool {
	es, ok := s.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "panic"
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)
	case *ast.IfStmt:
		if s.Init != nil {
			b.atom(s.Init)
		}
		b.atom(s.Cond)
		cond := b.cur
		join := b.newBlock()
		thenB := b.newBlock()
		b.edge(cond, thenB)
		b.cur = thenB
		b.stmtList(s.Body.List)
		b.edge(b.cur, join)
		if s.Else != nil {
			elseB := b.newBlock()
			b.edge(cond, elseB)
			b.cur = elseB
			b.stmt(s.Else)
			b.edge(b.cur, join)
		} else {
			b.edge(cond, join)
		}
		b.cur = join
	case *ast.ForStmt:
		if s.Init != nil {
			b.atom(s.Init)
		}
		head := b.newBlock()
		body := b.newBlock()
		post := b.newBlock()
		exit := b.newBlock()
		b.edge(b.cur, head)
		if s.Cond != nil {
			head.Atoms = append(head.Atoms, s.Cond)
			b.edge(head, exit)
		}
		b.edge(head, body)
		b.pushFrame(&labelFrame{breakTarget: exit, continueTarget: post})
		b.cur = body
		b.stmtList(s.Body.List)
		b.popFrame()
		b.edge(b.cur, post)
		if s.Post != nil {
			post.Atoms = append(post.Atoms, s.Post)
		}
		b.edge(post, head)
		b.cur = exit
	case *ast.RangeStmt:
		// The head gets its own block: the body's back edge must re-enter
		// the per-iteration operand evaluation only, never the statements
		// preceding the loop. Only the range operand is the head atom (for
		// channels it is a per-iteration receive); the body lives in its
		// own blocks.
		head := b.newBlock()
		b.edge(b.cur, head)
		b.cur = head
		b.atom(&rangeAtom{s})
		body := b.newBlock()
		exit := b.newBlock()
		b.edge(head, body)
		b.edge(head, exit)
		b.pushFrame(&labelFrame{breakTarget: exit, continueTarget: head})
		b.cur = body
		b.stmtList(s.Body.List)
		b.popFrame()
		b.edge(b.cur, head)
		b.cur = exit
	case *ast.SwitchStmt:
		if s.Init != nil {
			b.atom(s.Init)
		}
		if s.Tag != nil {
			b.atom(s.Tag)
		}
		b.switchClauses(s.Body.List, nil)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			b.atom(s.Init)
		}
		b.atom(s.Assign)
		b.switchClauses(s.Body.List, nil)
	case *ast.SelectStmt:
		// A select with a default clause cannot block; without one every
		// arm is a blocking channel operation, so the comm statement is
		// kept as the arm's first atom for the lock analyses to see.
		hasDefault := false
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		head := b.cur
		join := b.newBlock()
		b.pushFrame(&labelFrame{breakTarget: join})
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			arm := b.newBlock()
			b.edge(head, arm)
			b.cur = arm
			if cc.Comm != nil && !hasDefault {
				b.atom(cc.Comm)
			} else if cc.Comm != nil {
				// Non-blocking form: keep side effects, drop the blocking
				// marker by wrapping nothing — the comm still executes.
				b.atom(&nonBlocking{cc.Comm})
			}
			b.stmtList(cc.Body)
			b.edge(b.cur, join)
		}
		b.popFrame()
		b.cur = join
	case *ast.ReturnStmt:
		b.atom(s)
		b.edge(b.cur, b.cfg.Exit)
		b.cur = b.newBlock() // anything after is dead
	case *ast.BranchStmt:
		b.branch(s)
	case *ast.LabeledStmt:
		lb := b.newBlock()
		b.edge(b.cur, lb)
		b.cur = lb
		fr := &labelFrame{gotoTarget: lb, breakTarget: b.newBlock()}
		b.labels[s.Label.Name] = fr
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.pendingLabel = ""
		// A labeled non-loop's break target joins back in. (For labeled
		// loops the frame was rewired to the loop's own exit, which is
		// already the current block.)
		if b.cur != fr.breakTarget {
			b.edge(b.cur, fr.breakTarget)
			b.cur = fr.breakTarget
		}
	case *ast.ExprStmt:
		if isPanicCall(s) {
			b.atom(s)
			b.edge(b.cur, b.cfg.PanicExit)
			b.cur = b.newBlock()
			return
		}
		b.atom(s)
	default:
		// Assign, Decl, Send, IncDec, Defer, Go, Empty: straight-line atoms.
		b.atom(s)
	}
}

// nonBlocking wraps a select-with-default comm statement: its effects are
// real but it cannot block. Implements ast.Node by delegation.
type nonBlocking struct{ ast.Stmt }

// rangeAtom marks the head of a range loop: transfer functions inspect
// only the operand X (a per-iteration channel receive when X is a
// channel), never the loop body, which has its own blocks.
type rangeAtom struct{ *ast.RangeStmt }

func (b *cfgBuilder) switchClauses(clauses []ast.Stmt, _ *Block) {
	head := b.cur
	join := b.newBlock()
	b.pushFrame(&labelFrame{breakTarget: join})
	hasDefault := false
	var bodies []*Block
	for _, c := range clauses {
		cc := c.(*ast.CaseClause)
		if cc.List == nil {
			hasDefault = true
		}
		arm := b.newBlock()
		b.edge(head, arm)
		b.cur = arm
		for _, e := range cc.List {
			b.atom(e)
		}
		bodies = append(bodies, b.cur)
		b.stmtList(cc.Body)
		// fallthrough is handled below via an extra edge; the normal path
		// joins.
		b.edge(b.cur, join)
		// Record where a fallthrough from the previous clause lands: the
		// start of this clause's body. Conservatively add the edge for any
		// clause containing a fallthrough terminator.
		if i := len(bodies) - 2; i >= 0 {
			prev := clauses[i].(*ast.CaseClause)
			if n := len(prev.Body); n > 0 {
				if br, ok := prev.Body[n-1].(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
					b.edge(bodies[i], arm)
				}
			}
		}
	}
	b.popFrame()
	if !hasDefault {
		b.edge(head, join) // no case matched
	}
	b.cur = join
}

func (b *cfgBuilder) pushFrame(f *labelFrame) {
	b.frames = append(b.frames, f)
	if b.pendingLabel != "" {
		// The loop carries the label of its enclosing labeled statement:
		// labeled break/continue resolve to this frame.
		if lf, ok := b.labels[b.pendingLabel]; ok {
			lf.breakTarget = f.breakTarget
			lf.continueTarget = f.continueTarget
		}
		b.pendingLabel = ""
	}
}

func (b *cfgBuilder) popFrame() { b.frames = b.frames[:len(b.frames)-1] }

func (b *cfgBuilder) branch(s *ast.BranchStmt) {
	var target *Block
	switch s.Tok {
	case token.BREAK:
		if s.Label != nil {
			if fr := b.labels[s.Label.Name]; fr != nil {
				target = fr.breakTarget
			}
		} else {
			for i := len(b.frames) - 1; i >= 0; i-- {
				if b.frames[i].breakTarget != nil {
					target = b.frames[i].breakTarget
					break
				}
			}
		}
	case token.CONTINUE:
		if s.Label != nil {
			if fr := b.labels[s.Label.Name]; fr != nil {
				target = fr.continueTarget
			}
		} else {
			for i := len(b.frames) - 1; i >= 0; i-- {
				if b.frames[i].continueTarget != nil {
					target = b.frames[i].continueTarget
					break
				}
			}
		}
	case token.GOTO:
		if s.Label != nil {
			if fr := b.labels[s.Label.Name]; fr != nil {
				target = fr.gotoTarget
			}
		}
		// A forward goto (label not yet built) is left unresolved: the
		// current block simply ends. This repository has no gotos; the
		// builder degrades to over-approximating reachability of the code
		// after the goto rather than crashing.
	case token.FALLTHROUGH:
		// Handled structurally by switchClauses.
		return
	}
	if target != nil {
		b.edge(b.cur, target)
	}
	b.cur = b.newBlock() // code after an unconditional branch is dead
}

// funcBodies yields every function-shaped body in the file — declarations
// and function literals — with a display name for diagnostics. Literals
// are their own functions: their CFGs, lock sets, and termination edges
// are independent of the enclosing body's.
func funcBodies(f *ast.File) []funcBody {
	var out []funcBody
	for _, d := range f.Decls {
		fd, ok := d.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		out = append(out, funcBody{name: fd.Name.Name, body: fd.Body, decl: fd})
		name := fd.Name.Name
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				out = append(out, funcBody{name: name + " (func literal)", body: lit.Body, lit: lit})
				// Keep descending: literals nest.
			}
			return true
		})
	}
	return out
}

type funcBody struct {
	name string
	body *ast.BlockStmt
	decl *ast.FuncDecl // nil for literals
	lit  *ast.FuncLit  // nil for declarations
}
