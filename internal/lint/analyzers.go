package lint

// All returns the full analyzer set in stable order. Each analyzer
// protects a specific guarantee an earlier PR shipped; see the
// "Enforced invariants" appendix in DESIGN.md for the mapping. The last
// three are flow-aware: they run over the intraprocedural CFG built by
// BuildCFG rather than bare syntax.
func All() []*Analyzer {
	return []*Analyzer{
		NoRawRand,
		NoClock,
		CtxLoop,
		NoFloatEq,
		NoPrint,
		ErrDrop,
		LockBalance,
		GoLeak,
		NoAlloc,
	}
}
