package lint

// All returns the full analyzer set in stable order. Each analyzer
// protects a specific guarantee an earlier PR shipped; see the
// "Enforced invariants" appendix in DESIGN.md for the mapping.
func All() []*Analyzer {
	return []*Analyzer{
		NoRawRand,
		NoClock,
		CtxLoop,
		NoFloatEq,
		NoPrint,
		ErrDrop,
	}
}
