package lint

import "testing"

// TestSelfCheck holds the linter to its own rules: running the full
// analyzer set (strict, tests included) over internal/lint and
// cmd/mnsim-lint must produce zero diagnostics. A linter that needs its
// own suppressions has lost the argument.
func TestSelfCheck(t *testing.T) {
	res, err := Run(Options{
		Patterns: []string{".", "../../cmd/mnsim-lint"},
		Tests:    true,
		Strict:   true,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for _, d := range res.Diagnostics {
		t.Errorf("self-check finding: %s", d)
	}
}

// TestTelemetryStaysClean pins the telemetry package — the one sanctioned
// home for wall-clock reads (spans, journal timestamps, the resource
// sampler's tick/watchdog/profile machinery) — to the rest of the lint
// rules. Being exempt from noclock by scope is not a blanket exemption:
// the sampler and watchdog code must still pass norawrand, ctxloop,
// nofloateq, noprint, and errdrop in strict mode.
func TestTelemetryStaysClean(t *testing.T) {
	res, err := Run(Options{
		Patterns: []string{"../telemetry"},
		Tests:    true,
		Strict:   true,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for _, d := range res.Diagnostics {
		t.Errorf("telemetry finding: %s", d)
	}
}
