package lint

import "testing"

// TestSelfCheck holds the linter to its own rules: running the full
// analyzer set (strict, tests included) over internal/lint and
// cmd/mnsim-lint must produce zero diagnostics. A linter that needs its
// own suppressions has lost the argument.
func TestSelfCheck(t *testing.T) {
	res, err := Run(Options{
		Patterns: []string{".", "../../cmd/mnsim-lint"},
		Tests:    true,
		Strict:   true,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for _, d := range res.Diagnostics {
		t.Errorf("self-check finding: %s", d)
	}
}
