package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// NoFloatEq flags == / != between two runtime floating-point values in
// non-test code. The simulator's headline numbers (Table II error rates,
// DSE objective ties, Monte-Carlo percentiles) all ride on float math,
// where a==b silently stops holding after any re-association — compare
// with an explicit epsilon instead. Comparisons where either side is a
// compile-time constant are allowed: checking a float against an exact
// sentinel (zero pivot, unset field) is deliberate and well-defined in
// IEEE-754, and the numerics code does it on purpose.
var NoFloatEq = &Analyzer{
	Name:       "nofloateq",
	Doc:        "no ==/!= between two runtime floats outside tests; compare with an epsilon",
	TestExempt: true,
	Run:        runNoFloatEq,
}

func runNoFloatEq(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			xt, xok := p.Info.Types[be.X]
			yt, yok := p.Info.Types[be.Y]
			if !xok || !yok || !isFloat(xt.Type) || !isFloat(yt.Type) {
				return true
			}
			if xt.Value != nil || yt.Value != nil {
				return true // one side is an exact compile-time sentinel
			}
			p.Reportf(be.OpPos,
				"floating-point %s between runtime values: use an epsilon comparison (math.Abs(a-b) <= tol) — exact float equality breaks under re-association", be.Op)
			return true
		})
	}
}

func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
