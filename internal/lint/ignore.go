package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// ignoreDirective is one parsed //lint:ignore comment. A directive
// suppresses diagnostics from the named analyzer on its own line or the
// line directly below — but only when a reason is given: unexplained
// suppressions are themselves findings, because "we silenced the
// determinism linter" is exactly the kind of decision that needs a
// written why.
type ignoreDirective struct {
	pos    token.Position
	name   string
	reason string
	used   bool
}

// collectIgnores scans a file's comments for //lint:ignore directives.
func collectIgnores(fset *token.FileSet, f *ast.File) []*ignoreDirective {
	var out []*ignoreDirective
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text, ok := strings.CutPrefix(c.Text, "//lint:ignore")
			if !ok {
				continue
			}
			fields := strings.Fields(text)
			d := &ignoreDirective{pos: fset.Position(c.Pos())}
			if len(fields) > 0 {
				d.name = fields[0]
			}
			if len(fields) > 1 {
				d.reason = strings.TrimSpace(strings.Join(fields[1:], " "))
			}
			out = append(out, d)
		}
	}
	return out
}

// metaAnalyzer is the analyzer name attached to diagnostics about the
// suppression comments themselves; those are not suppressible.
const metaAnalyzer = "lint"

// applySuppressions drops diagnostics covered by a reasoned
// //lint:ignore on the same or the preceding line, reports directives
// with no name or no reason, and — under strict — reports directives
// that suppressed nothing.
func applySuppressions(diags []Diagnostic, ignores []*ignoreDirective, strict bool) []Diagnostic {
	var out []Diagnostic
	for _, d := range diags {
		suppressed := false
		for _, ig := range ignores {
			if ig.name == d.Analyzer && ig.reason != "" &&
				ig.pos.Filename == d.Pos.Filename &&
				(ig.pos.Line == d.Pos.Line || ig.pos.Line == d.Pos.Line-1) {
				ig.used = true
				suppressed = true
			}
		}
		if !suppressed {
			out = append(out, d)
		}
	}
	for _, ig := range ignores {
		switch {
		case ig.name == "":
			out = append(out, Diagnostic{
				Pos:      ig.pos,
				Analyzer: metaAnalyzer,
				Message:  "malformed //lint:ignore: want //lint:ignore <analyzer> <reason>",
			})
		case ig.reason == "":
			out = append(out, Diagnostic{
				Pos:      ig.pos,
				Analyzer: metaAnalyzer,
				Message:  "//lint:ignore " + ig.name + " needs a reason: suppressions must say why the invariant is waived",
			})
		case strict && !ig.used:
			out = append(out, Diagnostic{
				Pos:      ig.pos,
				Analyzer: metaAnalyzer,
				Message:  "stale //lint:ignore " + ig.name + ": no " + ig.name + " diagnostic on this or the next line",
			})
		}
	}
	return out
}
