package lint

import (
	"go/ast"
	"go/types"
)

// NoPrint keeps library output on purpose-built channels: internal
// packages must not write to process stdout via fmt.Print/Printf/Println
// or the print/println builtins. PR 1's telemetry logger exists exactly
// so diagnostics are leveled and machine-readable, and the CLIs own
// stdout for their result tables — a stray fmt.Println in a solver
// corrupts piped output (mnsim-benchjson parses it) and dodges -log-level.
// fmt.Fprint* to an explicit io.Writer is fine: the caller chose the sink.
var NoPrint = &Analyzer{
	Name:       "noprint",
	Doc:        "no fmt.Print*/print/println to process stdout in internal packages; use telemetry.Logger or take an io.Writer",
	TestExempt: true,
	Run:        runNoPrint,
}

var printFuncs = map[string]bool{"Print": true, "Printf": true, "Println": true}

func runNoPrint(p *Pass) {
	if !inInternal(p.Path) {
		return
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			obj := calleeObj(p.Info, call)
			if name, ok := pkgFuncName(obj, "fmt"); ok && printFuncs[name] {
				p.Reportf(call.Pos(),
					"fmt.%s writes to process stdout from library code: log through telemetry.Logger or print to a caller-supplied io.Writer", name)
			}
			if b, ok := obj.(*types.Builtin); ok && (b.Name() == "print" || b.Name() == "println") {
				p.Reportf(call.Pos(),
					"builtin %s writes to stderr from library code: log through telemetry.Logger or print to a caller-supplied io.Writer", b.Name())
			}
			return true
		})
	}
}
