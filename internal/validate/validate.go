// Package validate implements the paper's validation experiments
// (Section VII.A–B): the behaviour-level models are held against the
// built-in circuit-level solver — the SPICE substitute — reproducing
// Table II (power/latency/accuracy validation), Table III (simulation
// speed-up), and Fig. 5 (error-rate fit curves).
package validate

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"time"

	"mnsim/internal/accuracy"
	"mnsim/internal/circuit"
	"mnsim/internal/crossbar"
	"mnsim/internal/device"
	"mnsim/internal/pool"
	"mnsim/internal/tech"
	"mnsim/internal/telemetry"
)

// randomResistances draws a uniformly distributed level population.
func randomResistances(rows, cols int, dev device.Model, rng *rand.Rand) [][]float64 {
	r := make([][]float64, rows)
	for i := range r {
		r[i] = make([]float64, cols)
		for j := range r[i] {
			lvl := rng.Intn(dev.Levels())
			res, err := dev.LevelResistance(lvl)
			if err != nil {
				panic(err) // unreachable: lvl is in range by construction
			}
			r[i][j] = res
		}
	}
	return r
}

// Row is one metric comparison of the Table II validation.
type Row struct {
	Metric  string
	Model   float64 // MNSIM behaviour-level estimate
	Circuit float64 // circuit-level measurement
}

// Error returns the relative deviation of the model from the circuit value.
func (r Row) Error() float64 {
	if r.Circuit == 0 {
		return 0
	}
	return (r.Model - r.Circuit) / r.Circuit
}

// TableIIOptions tunes the validation run.
type TableIIOptions struct {
	// WeightSamples is the number of random weight matrices (paper: 20).
	WeightSamples int
	// InputSamples is the number of random input vectors per weight sample
	// (paper: 100).
	InputSamples int
	// Size is the validation layer width (paper: two 128×128 layers).
	Size int
	// Seed feeds the random generator.
	Seed int64
}

// TableII reproduces the Table II validation with respect to a 3-layer
// fully-connected NN (two Size×Size layers): computation power, read power,
// computation energy, latency, and average relative accuracy, each as
// MNSIM's behaviour-level estimate versus the circuit-level measurement.
// It is TableIIContext with a background context.
func TableII(opt TableIIOptions) ([]Row, error) {
	return TableIIContext(context.Background(), opt)
}

// TableIIContext is TableII with a caller-supplied context: every
// circuit-level solve checks it, so a cancelled context aborts the
// validation mid-Newton-loop.
func TableIIContext(ctx context.Context, opt TableIIOptions) ([]Row, error) {
	if opt.WeightSamples <= 0 {
		opt.WeightSamples = 20
	}
	if opt.InputSamples <= 0 {
		opt.InputSamples = 100
	}
	if opt.Size <= 0 {
		opt.Size = 128
	}
	rng := rand.New(rand.NewSource(opt.Seed + 1))
	dev := device.RRAM()
	wire := tech.MustInterconnect(45)
	p := crossbar.New(opt.Size, opt.Size, dev, wire)

	// Live progress: one tick per weight-sample solve batch plus the
	// transient-latency and JPEG-accuracy steps.
	prog := telemetry.StartPhase("validate.table2", int64(opt.WeightSamples)+2)
	defer prog.Finish()

	// --- Computation and read power: circuit-level average over random
	// weight populations and random input drives.
	var compPower, readPower float64
	vin := make([]float64, opt.Size)
	samples := 0
	for w := 0; w < opt.WeightSamples; w++ {
		r := randomResistances(opt.Size, opt.Size, dev, rng)
		c := &circuit.Crossbar{M: opt.Size, N: opt.Size, R: r, WireR: wire.SegmentR, RSense: p.RSense, Dev: dev}
		inputs := opt.InputSamples / opt.WeightSamples
		if inputs < 1 {
			inputs = 1
		}
		// One solver state per weight sample: this loop is strictly
		// sequential, so the 2·inputs solves of each crossbar share the
		// assembled pattern, the block preconditioner, and warm starts.
		st := circuit.NewSolverState()
		for s := 0; s < inputs; s++ {
			for i := range vin {
				vin[i] = p.VDrive * rng.Float64()
			}
			res, err := c.SolveContext(ctx, vin, circuit.SolveOptions{State: st})
			if err != nil {
				return nil, fmt.Errorf("validate: compute-power solve: %w", err)
			}
			compPower += res.Power
			// READ: a single row driven at the RMS of the uniform drive
			// (a deterministic level, so one row per sample still averages).
			for i := range vin {
				vin[i] = 0
			}
			vin[rng.Intn(opt.Size)] = p.AvgDriveRMS()
			res, err = c.SolveContext(ctx, vin, circuit.SolveOptions{State: st})
			if err != nil {
				return nil, fmt.Errorf("validate: read-power solve: %w", err)
			}
			readPower += res.Power
			samples++
		}
		prog.Inc()
	}
	compPower /= float64(samples)
	readPower /= float64(samples)

	// --- Latency: behaviour-level Elmore estimate vs transient settling of
	// the full RC grid.
	rLat := randomResistances(opt.Size, opt.Size, dev, rng)
	cLat := &circuit.Crossbar{M: opt.Size, N: opt.Size, R: rLat, WireR: wire.SegmentR, RSense: p.RSense, Dev: dev}
	fill(vin, p.VDrive)
	rcSettle, err := cLat.SettleTime(vin, circuit.TransientOptions{NodeCap: wire.SegmentC, CellCap: dev.CellCap})
	if err != nil {
		return nil, fmt.Errorf("validate: transient: %w", err)
	}
	// The transient solver covers the wire/cell RC network; the intrinsic
	// cell response is a datasheet constant added on both sides.
	settle := rcSettle + dev.SwitchLatency
	modelLatency := p.Latency()
	prog.Inc()

	// --- Computation energy of the 3-layer ANN (two layers of crossbars):
	// power × settling window on both sides.
	modelEnergy := 2 * p.ComputePower() * p.Latency()
	circuitEnergy := 2 * compPower * settle

	// --- Average relative accuracy: behaviour-level prediction vs the
	// circuit-solved JPEG-encoding network (Section VII.A validates the
	// accuracy model on a 3-layer 64×16×64 NN).
	modelAcc, circuitAcc, err := jpegAccuracy(ctx, rng)
	if err != nil {
		return nil, err
	}
	prog.Inc()

	rows := []Row{
		{"Computation Power (W)", 2 * p.ComputePower(), 2 * compPower},
		{"Read Power (W)", 2 * p.ReadPower(), 2 * readPower},
		{"Computation Energy (J, 3-layer ANN)", modelEnergy, circuitEnergy},
		{"Latency (s)", modelLatency, settle},
		{"Average Relative Accuracy", modelAcc, circuitAcc},
	}
	if telemetry.JournalOn() {
		telemetry.EmitEvent(telemetry.EvPhase, "validate.table2", map[string]any{
			"action": "summary", "rows": len(rows), "worst_rel_error": worstAbsRowError(rows),
		})
	}
	return rows, nil
}

// fill sets every element of vs to v.
func fill(vs []float64, v float64) {
	for i := range vs {
		vs[i] = v
	}
}

// worstAbsRowError returns the largest |relative error| across the
// Table II rows.
func worstAbsRowError(rows []Row) float64 {
	worst := 0.0
	for _, r := range rows {
		if e := math.Abs(r.Error()); e > worst {
			worst = e
		}
	}
	return worst
}

// TableIII measures the simulation time of the circuit-level solver versus
// the behaviour-level models for single crossbars of growing size — the
// paper's speed-up experiment. Returns one row per size.
type SpeedRow struct {
	Size         int
	CircuitTime  time.Duration
	ModelTime    time.Duration
	SpeedUp      float64
	CircuitIters int
}

// TableIII runs the speed comparison for the given sizes (paper: 16–256).
// It is TableIIIContext with a background context.
func TableIII(sizes []int, seed int64) ([]SpeedRow, error) {
	return TableIIIContext(context.Background(), sizes, seed)
}

// TableIIIContext is TableIII with a caller-supplied context. The timing
// loop stays strictly sequential — it measures per-solve wall time, which
// sharing cores would distort.
func TableIIIContext(ctx context.Context, sizes []int, seed int64) ([]SpeedRow, error) {
	rng := rand.New(rand.NewSource(seed + 2))
	dev := device.RRAM()
	wire := tech.MustInterconnect(45)
	prog := telemetry.StartPhase("validate.table3", int64(len(sizes)))
	defer prog.Finish()
	var out []SpeedRow
	for _, size := range sizes {
		p := crossbar.New(size, size, dev, wire)
		r := randomResistances(size, size, dev, rng)
		c := &circuit.Crossbar{M: size, N: size, R: r, WireR: wire.SegmentR, RSense: p.RSense, Dev: dev}
		vin := make([]float64, size)
		for i := range vin {
			vin[i] = p.VDrive * rng.Float64()
		}
		// Both sides are timed through telemetry spans — the one layer
		// allowed to read the wall clock — so the numerical packages stay
		// clock-free and the per-size timings still land in the trace
		// aggregates (validate.table3.circuit / validate.table3.model).
		cctx, circuitSpan := telemetry.StartSpan(ctx, "validate.table3.circuit")
		res, err := c.SolveContext(cctx, vin, circuit.SolveOptions{})
		circuitTime := circuitSpan.End()
		if err != nil {
			return nil, fmt.Errorf("validate: size %d: %w", size, err)
		}

		_, modelSpan := telemetry.StartSpan(ctx, "validate.table3.model")
		// The behaviour-level "simulation" of the same crossbar: area,
		// power, latency, and the accuracy estimate.
		_ = p.Area()
		_ = p.ComputePower()
		_ = p.Latency()
		if _, err := accuracy.Eval(p); err != nil {
			modelSpan.End()
			return nil, err
		}
		modelTime := modelSpan.End()
		if modelTime <= 0 {
			modelTime = time.Nanosecond
		}
		out = append(out, SpeedRow{
			Size:         size,
			CircuitTime:  circuitTime,
			ModelTime:    modelTime,
			SpeedUp:      float64(circuitTime) / float64(modelTime),
			CircuitIters: res.CGIters,
		})
		prog.Inc()
	}
	if telemetry.JournalOn() {
		telemetry.EmitEvent(telemetry.EvPhase, "validate.table3", map[string]any{
			"action": "summary", "sizes": len(out), "max_speedup": maxSpeedUp(out),
		})
	}
	return out, nil
}

// maxSpeedUp returns the largest circuit/model speed-up across the
// Table III rows.
func maxSpeedUp(rows []SpeedRow) float64 {
	m := 0.0
	for _, r := range rows {
		if r.SpeedUp > m {
			m = r.SpeedUp
		}
	}
	return m
}

// Fig5Point is one point of the error-rate fit experiment.
type Fig5Point struct {
	Size, WireNode int
	Model, Circuit float64
}

// Fig5 sweeps crossbar size × interconnect node, returning the model curve
// and the circuit-level scatter of the worst-case output error rate. It is
// Fig5Context with a background context and the default worker count.
func Fig5(sizes, nodes []int) ([]Fig5Point, error) {
	return Fig5Context(context.Background(), sizes, nodes, 0)
}

// Fig5Context runs the Fig. 5 sweep on a bounded worker pool: every
// (node, size) grid point is an independent deterministic solve, and the
// index-addressed result slice preserves the sequential output order for
// any worker count. Cancelling ctx aborts the in-flight solves.
func Fig5Context(ctx context.Context, sizes, nodes []int, workers int) ([]Fig5Point, error) {
	dev := device.RRAM()
	points, err := fig5Grid(sizes, nodes)
	if err != nil {
		return nil, err
	}
	out := make([]Fig5Point, len(points))
	prog := telemetry.StartPhase("validate.fig5", int64(len(points)))
	defer prog.Finish()
	err = pool.Run(ctx, len(points), workers, func(tctx context.Context, i int) error {
		defer prog.Inc()
		size, node, wire := points[i].size, points[i].node, points[i].wire
		p := crossbar.New(size, size, dev, wire)
		model, err := accuracy.WorstCaseColumn(p)
		if err != nil {
			return err
		}
		r := make([][]float64, size)
		for i := range r {
			r[i] = make([]float64, size)
			for j := range r[i] {
				r[i][j] = dev.RMin
			}
		}
		c := &circuit.Crossbar{M: size, N: size, R: r, WireR: wire.SegmentR, RSense: p.RSense, Dev: dev}
		vin := make([]float64, size)
		for i := range vin {
			vin[i] = p.VDrive
		}
		res, err := c.SolveContext(tctx, vin, circuit.SolveOptions{})
		if err != nil {
			return fmt.Errorf("validate: fig5 size %d node %d: %w", size, node, err)
		}
		ideal, err := c.IdealOut(vin)
		if err != nil {
			return err
		}
		measured := (ideal[size-1] - res.VOut[size-1]) / ideal[size-1]
		out[i] = Fig5Point{Size: size, WireNode: node, Model: model, Circuit: measured}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if telemetry.JournalOn() {
		telemetry.EmitEvent(telemetry.EvPhase, "validate.fig5", map[string]any{
			"action": "summary", "points": len(out), "worst_model_gap": worstModelGap(out),
		})
	}
	return out, nil
}

// fig5Cell is one (size, node) grid point of the Fig. 5 sweep.
type fig5Cell struct {
	size, node int
	wire       tech.WireTech
}

// fig5Grid enumerates the sweep grid in the sequential output order,
// resolving each interconnect node once.
func fig5Grid(sizes, nodes []int) ([]fig5Cell, error) {
	points := make([]fig5Cell, 0, len(nodes)*len(sizes))
	for _, node := range nodes {
		wire, err := tech.Interconnect(node)
		if err != nil {
			return nil, err
		}
		for _, size := range sizes {
			points = append(points, fig5Cell{size: size, node: node, wire: wire})
		}
	}
	return points, nil
}

// worstModelGap returns the largest |model − circuit| gap across the
// Fig. 5 points.
func worstModelGap(points []Fig5Point) float64 {
	worst := 0.0
	for _, pt := range points {
		if gap := math.Abs(pt.Model - pt.Circuit); gap > worst {
			worst = gap
		}
	}
	return worst
}
