package validate

import (
	"math"
	"testing"

	"mnsim/internal/accuracy"
	"mnsim/internal/circuit"
	"mnsim/internal/crossbar"
	"mnsim/internal/device"
	"mnsim/internal/tech"
)

// The behaviour-level accuracy model must generalise beyond the reference
// RRAM: for the PCM device the worst-case corner prediction still tracks
// the circuit-level solver.
func TestModelGeneralisesToPCM(t *testing.T) {
	if testing.Short() {
		t.Skip("circuit-level solves are slow")
	}
	dev := device.PCM()
	wire := tech.MustInterconnect(45)
	for _, size := range []int{8, 16, 32} {
		p := crossbar.New(size, size, dev, wire)
		model, err := accuracy.WorstCaseColumn(p)
		if err != nil {
			t.Fatal(err)
		}
		r := make([][]float64, size)
		for i := range r {
			r[i] = make([]float64, size)
			for j := range r[i] {
				r[i][j] = dev.RMin
			}
		}
		c := &circuit.Crossbar{M: size, N: size, R: r, WireR: wire.SegmentR, RSense: p.RSense, Dev: dev}
		vin := make([]float64, size)
		for i := range vin {
			vin[i] = p.VDrive
		}
		res, err := c.Solve(vin, circuit.SolveOptions{})
		if err != nil {
			t.Fatal(err)
		}
		ideal, err := c.IdealOut(vin)
		if err != nil {
			t.Fatal(err)
		}
		measured := (ideal[size-1] - res.VOut[size-1]) / ideal[size-1]
		if math.Abs(model-measured) > 0.02 {
			t.Errorf("size %d: PCM model %+.4f vs circuit %+.4f", size, model, measured)
		}
	}
}

// The PCM power model holds against the circuit solver too.
func TestPCMPowerModel(t *testing.T) {
	if testing.Short() {
		t.Skip("circuit-level solves are slow")
	}
	dev := device.PCM()
	wire := tech.MustInterconnect(45)
	const size = 32
	p := crossbar.New(size, size, dev, wire)
	// Direct PCM check: one deterministic level population, RMS drive.
	r := make([][]float64, size)
	rngLevels := func(i, j int) float64 {
		lvl := (i*31 + j*17) % dev.Levels()
		res, err := dev.LevelResistance(lvl)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	for i := range r {
		r[i] = make([]float64, size)
		for j := range r[i] {
			r[i][j] = rngLevels(i, j)
		}
	}
	c := &circuit.Crossbar{M: size, N: size, R: r, WireR: wire.SegmentR, RSense: p.RSense, Dev: dev}
	vin := make([]float64, size)
	for i := range vin {
		vin[i] = p.AvgDriveRMS()
	}
	res, err := c.Solve(vin, circuit.SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	model := p.ComputePower()
	// The deterministic RMS drive removes input variance, so the
	// decorrelated-input term overestimates slightly; allow 20%.
	if rel := math.Abs(model-res.Power) / res.Power; rel > 0.20 {
		t.Errorf("PCM compute power: model %v vs circuit %v (%.1f%%)", model, res.Power, rel*100)
	}
}
