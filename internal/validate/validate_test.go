package validate

import (
	"math"
	"testing"
)

// The Table II validation contract: every behaviour-level estimate lands
// within 10% of the circuit-level measurement (the paper reports all rows
// under 10%), and the accuracy-model error stays under 1%.
func TestTableIIWithinTenPercent(t *testing.T) {
	if testing.Short() {
		t.Skip("circuit-level validation is slow")
	}
	// A reduced sample count keeps the test fast; the cmd tool and bench
	// run the paper's full 20×100 sampling.
	rows, err := TableII(TableIIOptions{WeightSamples: 3, InputSamples: 9, Size: 64, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.Model <= 0 || r.Circuit <= 0 {
			t.Errorf("%s: non-positive values %v / %v", r.Metric, r.Model, r.Circuit)
		}
		limit := 0.10
		if r.Metric == "Average Relative Accuracy" {
			limit = 0.01
		}
		if e := math.Abs(r.Error()); e > limit {
			t.Errorf("%s: model %v vs circuit %v (error %.1f%%, limit %.0f%%)",
				r.Metric, r.Model, r.Circuit, e*100, limit*100)
		}
	}
}

func TestRowError(t *testing.T) {
	r := Row{Metric: "x", Model: 11, Circuit: 10}
	if math.Abs(r.Error()-0.1) > 1e-12 {
		t.Fatalf("Error = %v", r.Error())
	}
	zero := Row{Metric: "z", Model: 1, Circuit: 0}
	if zero.Error() != 0 {
		t.Fatal("zero circuit should yield zero error")
	}
}

// Table III: the behaviour-level model must beat the circuit solver by
// orders of magnitude, and the gap must widen with crossbar size.
func TestTableIIISpeedUp(t *testing.T) {
	if testing.Short() {
		t.Skip("circuit-level timing is slow")
	}
	rows, err := TableIII([]int{16, 32, 64}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.SpeedUp < 100 {
			t.Errorf("size %d: speed-up %.0fx below 100x", r.Size, r.SpeedUp)
		}
	}
	if rows[2].CircuitTime <= rows[0].CircuitTime {
		t.Error("circuit time should grow with size")
	}
}

// Fig. 5: the model curve tracks the circuit scatter with RMSE < 0.01 and
// both grow with wire resistance.
func TestFig5Fit(t *testing.T) {
	if testing.Short() {
		t.Skip("circuit-level sweep is slow")
	}
	pts, err := Fig5([]int{16, 32, 64}, []int{45, 22})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 6 {
		t.Fatalf("got %d points", len(pts))
	}
	var sumSq float64
	for _, p := range pts {
		d := p.Model - p.Circuit
		sumSq += d * d
	}
	rmse := math.Sqrt(sumSq / float64(len(pts)))
	if rmse >= 0.01 {
		t.Fatalf("RMSE %.4f, want < 0.01", rmse)
	}
	// At fixed size, the thinner 22nm wires must hurt more.
	byNode := map[int]float64{}
	for _, p := range pts {
		if p.Size == 64 {
			byNode[p.WireNode] = p.Circuit
		}
	}
	if byNode[22] <= byNode[45] {
		t.Errorf("22nm error %v should exceed 45nm %v", byNode[22], byNode[45])
	}
}

func TestFig5UnknownNode(t *testing.T) {
	if _, err := Fig5([]int{8}, []int{77}); err == nil {
		t.Fatal("unknown node accepted")
	}
}
