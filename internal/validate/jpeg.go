package validate

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"mnsim/internal/accuracy"
	"mnsim/internal/circuit"
	"mnsim/internal/crossbar"
	"mnsim/internal/device"
	"mnsim/internal/nn"
	"mnsim/internal/tech"
)

// jpegWidths is the approximate-computing validation network of
// Section VII.A: the JPEG encoding processed in a 3-layer 64×16×64 NN
// (Li et al., RRAM-based analog approximate computing).
var jpegWidths = []int{64, 16, 64}

// jpegAccuracy runs the accuracy-model validation: the behaviour-level
// prediction of the average relative accuracy versus a full circuit-level
// inference of the JPEG network, with the same signed-weight mapping
// (positive and negative crossbars subtracted).
func jpegAccuracy(ctx context.Context, rng *rand.Rand) (model, measured float64, err error) {
	dev := device.RRAM()
	wire := tech.MustInterconnect(45)
	net, err := nn.RandomFCNet("jpeg", rng, jpegWidths...)
	if err != nil {
		return 0, 0, err
	}
	input := make([]float64, jpegWidths[0])
	for i := range input {
		input[i] = rng.Float64() // pixel-style non-negative inputs
	}

	const dataBits = 8
	ideal, err := forwardThroughCrossbars(ctx, net, input, dev, wire, dataBits, true)
	if err != nil {
		return 0, 0, err
	}
	actual, err := forwardThroughCrossbars(ctx, net, input, dev, wire, dataBits, false)
	if err != nil {
		return 0, 0, err
	}
	measured, err = nn.RelativeAccuracy(ideal, actual)
	if err != nil {
		return 0, 0, err
	}

	// Behaviour-level prediction: propagate the average-case error through
	// the layer shapes and convert the final deviation rate into a relative
	// accuracy.
	shapes := make([][2]int, 0, len(jpegWidths)-1)
	for i := 0; i+1 < len(jpegWidths); i++ {
		shapes = append(shapes, [2]int{jpegWidths[i], jpegWidths[i+1]})
	}
	p := crossbar.New(64, 64, dev, wire)
	_, final, err := accuracy.EvalNetwork(p, shapes, 1<<dataBits)
	if err != nil {
		return 0, 0, err
	}
	model = 1 - final.Avg
	return model, measured, nil
}

// forwardThroughCrossbars runs one inference with every layer's
// matrix-vector product computed by the crossbar substrate: signed weights
// split onto a positive and a negative crossbar whose outputs subtract
// (Section III.C.1 method 1). ideal selects the interconnect-free linear
// reference (the fixed-point ideal of the accuracy model); otherwise the
// full non-linear circuit with wire resistance is solved.
func forwardThroughCrossbars(ctx context.Context, net *nn.FCNet, input []float64, dev device.Model, wire tech.WireTech, dataBits int, ideal bool) ([]float64, error) {
	cur := append([]float64(nil), input...)
	for li, w := range net.Weights {
		rows, cols := len(w), len(w[0])
		if rows != len(cur) {
			return nil, fmt.Errorf("validate: layer %d expects %d inputs, got %d", li, rows, len(cur))
		}
		p := crossbar.New(rows, cols, dev, wire)
		// Map signed weights onto two unsigned matrices.
		pos := make([][]float64, rows)
		neg := make([][]float64, rows)
		for i := range w {
			pos[i] = make([]float64, cols)
			neg[i] = make([]float64, cols)
			for j, v := range w[i] {
				if v >= 0 {
					pos[i][j] = v
				} else {
					neg[i][j] = -v
				}
			}
		}
		_, rPos, err := p.MapWeights(pos)
		if err != nil {
			return nil, err
		}
		_, rNeg, err := p.MapWeights(neg)
		if err != nil {
			return nil, err
		}
		vin := make([]float64, rows)
		for i, x := range cur {
			vin[i] = math.Max(0, math.Min(1, x)) * p.VDrive
		}
		outPos, err := solveCrossbar(ctx, p, rPos, vin, dev, wire, ideal)
		if err != nil {
			return nil, err
		}
		outNeg, err := solveCrossbar(ctx, p, rNeg, vin, dev, wire, ideal)
		if err != nil {
			return nil, err
		}
		// Subtract, quantize to the read-circuit levels, activate.
		fullScale := p.OutputFullScale()
		out := make([]float64, cols)
		for j := range out {
			y := (outPos[j] - outNeg[j]) / fullScale
			y = nn.Quantize(y, dataBits)
			if li < len(net.Weights)-1 {
				y = nn.Sigmoid(4 * y)
			}
			out[j] = y
		}
		cur = out
	}
	return cur, nil
}

func solveCrossbar(ctx context.Context, p crossbar.Params, r [][]float64, vin []float64, dev device.Model, wire tech.WireTech, ideal bool) ([]float64, error) {
	c := &circuit.Crossbar{
		M: p.Rows, N: p.Cols, R: r,
		WireR: wire.SegmentR, RSense: p.RSense, Dev: dev,
	}
	if ideal {
		c.WireR = 0
		c.Linear = true
		return c.IdealOut(vin)
	}
	res, err := c.SolveContext(ctx, vin, circuit.SolveOptions{})
	if err != nil {
		return nil, err
	}
	return res.VOut, nil
}
