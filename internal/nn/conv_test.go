package nn

import (
	"math"
	"math/rand"
	"testing"
)

func randomTensor(w, h, c int, rng *rand.Rand) *Tensor3 {
	t := NewTensor3(w, h, c)
	for i := range t.Data {
		t.Data[i] = rng.Float64()
	}
	return t
}

func randomKernels(kw, kh, inC, outC int, rng *rand.Rand) *ConvKernels {
	ws := make([][]float64, outC)
	for k := range ws {
		ws[k] = make([]float64, kw*kh*inC)
		for i := range ws[k] {
			ws[k][i] = rng.Float64()*2 - 1
		}
	}
	k, err := NewConvKernels(kw, kh, inC, ws)
	if err != nil {
		panic(err)
	}
	return k
}

func TestTensor3Basics(t *testing.T) {
	m := NewTensor3(3, 2, 2)
	m.Set(2, 1, 1, 7)
	if m.At(2, 1, 1) != 7 {
		t.Fatal("Set/At")
	}
	if m.At(-1, 0, 0) != 0 || m.At(3, 0, 0) != 0 || m.At(0, 2, 0) != 0 {
		t.Fatal("out-of-bounds reads should be zero (padding)")
	}
}

func TestNewTensor3Panics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad shape should panic")
		}
	}()
	NewTensor3(0, 1, 1)
}

func TestNewConvKernelsValidation(t *testing.T) {
	if _, err := NewConvKernels(3, 3, 2, [][]float64{make([]float64, 17)}); err == nil {
		t.Error("wrong kernel length accepted")
	}
	if _, err := NewConvKernels(0, 3, 2, [][]float64{{}}); err == nil {
		t.Error("zero kernel width accepted")
	}
	if _, err := NewConvKernels(3, 3, 2, nil); err == nil {
		t.Error("no kernels accepted")
	}
}

// The core claim of Section II.B.3: convolution by a stream of
// matrix-vector multiplications equals direct convolution exactly.
func TestConvByMVMEqualsDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, cfg := range []struct{ w, h, c, kw, kh, outC, stride, pad int }{
		{8, 8, 3, 3, 3, 4, 1, 1},
		{12, 10, 2, 5, 5, 3, 2, 2},
		{7, 7, 1, 3, 3, 2, 1, 0},
		{6, 6, 4, 1, 1, 8, 1, 0}, // 1x1 conv
	} {
		in := randomTensor(cfg.w, cfg.h, cfg.c, rng)
		k := randomKernels(cfg.kw, cfg.kh, cfg.c, cfg.outC, rng)
		direct, err := Conv2D(in, k, cfg.stride, cfg.pad)
		if err != nil {
			t.Fatal(err)
		}
		viaMVM, err := ConvByMVM(in, k, cfg.stride, cfg.pad, nil)
		if err != nil {
			t.Fatal(err)
		}
		if direct.W != viaMVM.W || direct.H != viaMVM.H || direct.C != viaMVM.C {
			t.Fatalf("shape mismatch %+v vs %+v", direct, viaMVM)
		}
		for i := range direct.Data {
			if math.Abs(direct.Data[i]-viaMVM.Data[i]) > 1e-12 {
				t.Fatalf("cfg %+v: element %d differs: %v vs %v", cfg, i, direct.Data[i], viaMVM.Data[i])
			}
		}
	}
}

// A custom mvm hook (e.g. a crossbar with injected error) flows through.
func TestConvByMVMCustomHook(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	in := randomTensor(6, 6, 2, rng)
	k := randomKernels(3, 3, 2, 3, rng)
	calls := 0
	halved, err := ConvByMVM(in, k, 1, 0, func(m [][]float64, v []float64) ([]float64, error) {
		calls++
		out, err := exactMVM(m, v)
		if err != nil {
			return nil, err
		}
		for i := range out {
			out[i] *= 0.5
		}
		return out, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 16 {
		t.Fatalf("mvm called %d times, want 16 output positions", calls)
	}
	direct, err := Conv2D(in, k, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range direct.Data {
		if math.Abs(halved.Data[i]-direct.Data[i]/2) > 1e-12 {
			t.Fatalf("hook not applied at %d", i)
		}
	}
}

func TestConvErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	in := randomTensor(4, 4, 2, rng)
	k := randomKernels(3, 3, 3, 2, rng) // channel mismatch
	if _, err := Conv2D(in, k, 1, 0); err == nil {
		t.Error("channel mismatch accepted (direct)")
	}
	if _, err := ConvByMVM(in, k, 1, 0, nil); err == nil {
		t.Error("channel mismatch accepted (mvm)")
	}
	k2 := randomKernels(3, 3, 2, 2, rng)
	if _, err := Conv2D(in, k2, 0, 0); err == nil {
		t.Error("zero stride accepted")
	}
	if _, err := ConvByMVM(in, k2, 1, -1, nil); err == nil {
		t.Error("negative pad accepted")
	}
	big := randomKernels(9, 9, 2, 2, rng)
	if _, err := Conv2D(in, big, 1, 0); err == nil {
		t.Error("oversized kernel accepted")
	}
	if _, err := ConvByMVM(in, big, 1, 0, nil); err == nil {
		t.Error("oversized kernel accepted (mvm)")
	}
	// Hook returning the wrong width is caught.
	if _, err := ConvByMVM(in, k2, 1, 0, func(m [][]float64, v []float64) ([]float64, error) {
		return []float64{1}, nil
	}); err == nil {
		t.Error("short mvm result accepted")
	}
}

func TestIm2ColOrdering(t *testing.T) {
	in := NewTensor3(3, 3, 1)
	for y := 0; y < 3; y++ {
		for x := 0; x < 3; x++ {
			in.Set(x, y, 0, float64(y*3+x))
		}
	}
	k := randomKernels(2, 2, 1, 1, rand.New(rand.NewSource(4)))
	patch := Im2Col(in, k, 0, 0, 1, 0)
	want := []float64{0, 1, 3, 4} // (ky,kx) row-major
	for i := range want {
		if patch[i] != want[i] {
			t.Fatalf("patch = %v, want %v", patch, want)
		}
	}
	// Padding region reads zero.
	padded := Im2Col(in, k, 0, 0, 1, 1)
	if padded[0] != 0 || padded[1] != 0 || padded[2] != 0 {
		t.Fatalf("padded patch = %v", padded)
	}
}

func TestMaxPool2D(t *testing.T) {
	in := NewTensor3(4, 4, 1)
	for i := range in.Data {
		in.Data[i] = float64(i)
	}
	out, err := MaxPool2D(in, 2)
	if err != nil {
		t.Fatal(err)
	}
	if out.W != 2 || out.H != 2 {
		t.Fatalf("shape %dx%d", out.W, out.H)
	}
	// Each window's max is its bottom-right element for this filling.
	if out.At(0, 0, 0) != 5 || out.At(1, 1, 0) != 15 {
		t.Fatalf("pooled = %v", out.Data)
	}
	if _, err := MaxPool2D(in, 0); err == nil {
		t.Error("zero pooling accepted")
	}
	if _, err := MaxPool2D(in, 5); err == nil {
		t.Error("oversized pooling accepted")
	}
}

// End to end: conv -> pool -> conv matches the paper's bank cascade and the
// pooled map still agrees between direct and MVM paths.
func TestConvPoolCascade(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	in := randomTensor(8, 8, 2, rng)
	k1 := randomKernels(3, 3, 2, 4, rng)
	c1, err := ConvByMVM(in, k1, 1, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	p1, err := MaxPool2D(c1, 2)
	if err != nil {
		t.Fatal(err)
	}
	k2 := randomKernels(3, 3, 4, 2, rng)
	c2, err := ConvByMVM(p1, k2, 1, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if c2.W != 4 || c2.H != 4 || c2.C != 2 {
		t.Fatalf("cascade shape %dx%dx%d", c2.W, c2.H, c2.C)
	}
}
