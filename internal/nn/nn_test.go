package nn

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestVGG16Topology(t *testing.T) {
	v := VGG16()
	if got := v.NeuromorphicLayers(); got != 16 {
		t.Fatalf("VGG-16 neuromorphic layers = %d, want 16", got)
	}
	dims, err := v.Dims()
	if err != nil {
		t.Fatal(err)
	}
	if len(dims) != 16 {
		t.Fatalf("VGG-16 banks = %d, want 16", len(dims))
	}
	// First conv: 3x3x3 = 27 rows, 64 cols, 224x224 passes.
	if dims[0].Rows != 27 || dims[0].Cols != 64 || dims[0].Passes != 224*224 {
		t.Errorf("conv1_1 dims: %+v", dims[0])
	}
	// conv1_2 is followed by a pool: the bank folds it in.
	if dims[1].PoolK != 2 {
		t.Errorf("conv1_2 should fold the 2x2 pool: %+v", dims[1])
	}
	if dims[0].PoolK != 0 {
		t.Errorf("conv1_1 has no pool: %+v", dims[0])
	}
	// Last conv block: 3x3x512 = 4608 rows, 512 cols, 14x14 passes.
	if dims[12].Rows != 4608 || dims[12].Cols != 512 || dims[12].Passes != 14*14 {
		t.Errorf("conv5_1 dims: %+v", dims[12])
	}
	// FC6 consumes the flattened 7x7x512 feature map.
	if dims[13].Rows != 25088 || dims[13].Cols != 4096 || dims[13].Passes != 1 {
		t.Errorf("fc6 dims: %+v", dims[13])
	}
	if dims[15].Cols != 1000 {
		t.Errorf("fc8 dims: %+v", dims[15])
	}
	// Cascaded conv layers carry Eq. 6 line buffers.
	if dims[0].OutBufLen != 224*(3-1)+3 {
		t.Errorf("conv1_1 line buffer = %d, want %d", dims[0].OutBufLen, 224*2+3)
	}
	// The very last conv (before FC) has no next conv: plain registers.
	if dims[12+2].OutBufLen != 0 {
		t.Errorf("fc should have no line buffer: %+v", dims[14])
	}
}

func TestCaffeNetTopology(t *testing.T) {
	c := CaffeNet()
	if got := c.NeuromorphicLayers(); got != 8 {
		t.Fatalf("CaffeNet neuromorphic layers = %d, want 8", got)
	}
	dims, err := c.Dims()
	if err != nil {
		t.Fatal(err)
	}
	// conv1: 11x11x3 = 363 rows, 96 cols, output (227-11)/4+1 = 55.
	if dims[0].Rows != 363 || dims[0].Cols != 96 || dims[0].Passes != 55*55 {
		t.Errorf("conv1 dims: %+v", dims[0])
	}
	// fc6 consumes 6x6x256 = 9216.
	if dims[5].Rows != 9216 {
		t.Errorf("fc6 dims: %+v", dims[5])
	}
}

func TestMLP(t *testing.T) {
	m := MLP("jpeg", 64, 16, 64)
	dims, err := m.Dims()
	if err != nil {
		t.Fatal(err)
	}
	if len(dims) != 2 || dims[0].Rows != 64 || dims[0].Cols != 16 || dims[1].Rows != 16 || dims[1].Cols != 64 {
		t.Fatalf("MLP dims: %+v", dims)
	}
}

func TestDimsErrors(t *testing.T) {
	cases := []Network{
		{Name: "empty"},
		{Name: "conv-no-input", Layers: []Layer{{Type: Conv, OutChannels: 4, KernelW: 3, KernelH: 3, Stride: 1}}},
		{Name: "bad-conv", InputW: 8, InputH: 8, InputC: 1, Layers: []Layer{{Type: Conv, OutChannels: 0, KernelW: 3, KernelH: 3, Stride: 1}}},
		{Name: "kernel-too-big", InputW: 2, InputH: 2, InputC: 1, Layers: []Layer{{Type: Conv, OutChannels: 4, KernelW: 5, KernelH: 5, Stride: 1}}},
		{Name: "bad-pool", InputW: 8, InputH: 8, InputC: 1, Layers: []Layer{{Type: Conv, OutChannels: 4, KernelW: 3, KernelH: 3, Stride: 1}, {Type: Pool}}},
		{Name: "bad-fc", Layers: []Layer{{Type: FC, In: 0, Out: 4}}},
		{Name: "fc-mismatch", InputW: 4, InputH: 4, InputC: 1, Layers: []Layer{{Type: FC, In: 99, Out: 4}}},
		{Name: "pool-only", InputW: 4, InputH: 4, InputC: 1, Layers: []Layer{{Type: Pool, PoolK: 2, PoolStride: 2}}},
		{Name: "unknown", Layers: []Layer{{Type: LayerType(9)}}},
	}
	for _, n := range cases {
		if _, err := n.Dims(); err == nil {
			t.Errorf("%s: Dims accepted invalid network", n.Name)
		}
	}
}

func TestLayerTypeString(t *testing.T) {
	for typ, want := range map[LayerType]string{Conv: "Conv", FC: "FC", Pool: "Pool"} {
		if typ.String() != want {
			t.Errorf("%d -> %q", int(typ), typ.String())
		}
	}
	if LayerType(9).String() != "LayerType(9)" {
		t.Error("unknown LayerType String")
	}
}

func TestRandomFCNet(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	net, err := RandomFCNet("jpeg", rng, 64, 16, 64)
	if err != nil {
		t.Fatal(err)
	}
	shapes := net.Shapes()
	if len(shapes) != 2 || shapes[0] != [2]int{64, 16} || shapes[1] != [2]int{16, 64} {
		t.Fatalf("shapes: %v", shapes)
	}
	for _, w := range net.Weights {
		for _, row := range w {
			for _, v := range row {
				if v < -1 || v > 1 {
					t.Fatalf("weight %v outside [-1,1]", v)
				}
			}
		}
	}
	if _, err := RandomFCNet("x", rng, 4); err == nil {
		t.Error("single width accepted")
	}
	if _, err := RandomFCNet("x", rng, 4, 0); err == nil {
		t.Error("zero width accepted")
	}
}

func TestQuantize(t *testing.T) {
	if got := Quantize(0.5, 8); math.Abs(got-0.5) > 1.0/127 {
		t.Errorf("Quantize(0.5, 8) = %v", got)
	}
	if got := Quantize(2.0, 8); got != 1 {
		t.Errorf("clamp high: %v", got)
	}
	if got := Quantize(-2.0, 8); got != -1 {
		t.Errorf("clamp low: %v", got)
	}
	if got := Quantize(0.3, 0); got != 0.3 {
		t.Errorf("bits<2 should pass through: %v", got)
	}
	// 2-bit: levels {-1, 0, 1}.
	if got := Quantize(0.6, 2); got != 1 {
		t.Errorf("Quantize(0.6, 2) = %v", got)
	}
}

// Property: quantization error is bounded by half an LSB inside [-1,1].
func TestQuantizeErrorBound(t *testing.T) {
	f := func(raw float64) bool {
		v := math.Mod(raw, 1)
		if math.IsNaN(v) {
			return true
		}
		q := Quantize(v, 8)
		return math.Abs(q-v) <= 0.5/127+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestForwardIdentityNetwork(t *testing.T) {
	// A hand-built 2-2 identity-weight layer: output = input / sqrt(2).
	net := &FCNet{Name: "id", Weights: [][][]float64{{{1, 0}, {0, 1}}}}
	out, err := net.Forward([]float64{0.5, -0.25}, ForwardOptions{})
	if err != nil {
		t.Fatal(err)
	}
	s := 1 / math.Sqrt(2)
	if math.Abs(out[0]-0.5*s) > 1e-12 || math.Abs(out[1]+0.25*s) > 1e-12 {
		t.Fatalf("Forward = %v", out)
	}
}

func TestForwardErrors(t *testing.T) {
	empty := &FCNet{Name: "empty"}
	if _, err := empty.Forward([]float64{1}, ForwardOptions{}); err == nil {
		t.Error("empty network accepted")
	}
	net := &FCNet{Name: "x", Weights: [][][]float64{{{1}, {1}}}}
	if _, err := net.Forward([]float64{1}, ForwardOptions{}); err == nil {
		t.Error("shape mismatch accepted")
	}
}

func TestForwardDeviationReducesAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	net, err := RandomFCNet("jpeg", rng, 64, 16, 64)
	if err != nil {
		t.Fatal(err)
	}
	input := make([]float64, 64)
	for i := range input {
		input[i] = rng.Float64()*2 - 1
	}
	opt := ForwardOptions{DataBits: 8, WeightBits: 4, Act: Sigmoid}
	ideal, err := net.Forward(input, opt)
	if err != nil {
		t.Fatal(err)
	}
	optDev := opt
	optDev.Deviate = UniformDeviation(0.10, rng)
	got, err := net.Forward(input, optDev)
	if err != nil {
		t.Fatal(err)
	}
	acc, err := RelativeAccuracy(ideal, got)
	if err != nil {
		t.Fatal(err)
	}
	if acc >= 1 || acc < 0.7 {
		t.Fatalf("relative accuracy %v outside (0.7, 1)", acc)
	}
	// Larger deviation, lower accuracy (averaged over trials).
	sum5, sum20 := 0.0, 0.0
	for trial := 0; trial < 20; trial++ {
		o5 := opt
		o5.Deviate = UniformDeviation(0.05, rng)
		o20 := opt
		o20.Deviate = UniformDeviation(0.20, rng)
		g5, _ := net.Forward(input, o5)
		g20, _ := net.Forward(input, o20)
		a5, _ := RelativeAccuracy(ideal, g5)
		a20, _ := RelativeAccuracy(ideal, g20)
		sum5 += a5
		sum20 += a20
	}
	if sum20 >= sum5 {
		t.Fatalf("20%% deviation accuracy %v should be below 5%% deviation %v", sum20/20, sum5/20)
	}
}

func TestRelativeAccuracy(t *testing.T) {
	if acc, err := RelativeAccuracy([]float64{0, 1}, []float64{0, 1}); err != nil || acc != 1 {
		t.Fatalf("perfect accuracy = %v, %v", acc, err)
	}
	acc, err := RelativeAccuracy([]float64{0, 1}, []float64{0.1, 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(acc-0.9) > 1e-12 {
		t.Fatalf("accuracy = %v, want 0.9", acc)
	}
	if _, err := RelativeAccuracy([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := RelativeAccuracy(nil, nil); err == nil {
		t.Error("empty vectors accepted")
	}
	// Constant reference falls back to unit range.
	if acc, err := RelativeAccuracy([]float64{0.5, 0.5}, []float64{0.5, 0.4}); err != nil || acc >= 1 {
		t.Fatalf("constant reference: %v, %v", acc, err)
	}
}

func TestActivations(t *testing.T) {
	if Sigmoid(0) != 0.5 {
		t.Error("Sigmoid(0) != 0.5")
	}
	if Sigmoid(10) < 0.99 || Sigmoid(-10) > 0.01 {
		t.Error("Sigmoid saturation")
	}
	if ReLU(-1) != 0 || ReLU(2) != 2 {
		t.Error("ReLU")
	}
	if Identity(3.5) != 3.5 {
		t.Error("Identity")
	}
}
