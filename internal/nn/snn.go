package nn

import (
	"fmt"
	"math/rand"
)

// SNNOptions configures a rate-coded spiking inference run (the SNN
// algorithm class of Section II.B.2: fixed crossbar weights computing the
// synapse function, integrate-and-fire neurons between layers).
type SNNOptions struct {
	// Steps is the number of simulation time steps; output rates converge
	// as 1/√Steps.
	Steps int
	// Threshold is the integrate-and-fire membrane threshold.
	Threshold float64
	// Leak is subtracted from each membrane per step (0 = perfect
	// integrator).
	Leak float64
	// Rng drives the Bernoulli input spike generation; required.
	Rng *rand.Rand
	// Deviate, when non-nil, perturbs each layer's per-step synaptic
	// currents — the crossbar error-injection hook.
	Deviate func(layer int, currents []float64)
}

// SNNForward runs rate-coded spiking inference: each input value in [0,1]
// is the Bernoulli firing probability of its input neuron; every time step
// the spike vector drives the weight matrix (the crossbar's matrix-vector
// multiplication), membrane potentials integrate the resulting currents,
// and a neuron fires (and resets by subtraction) when its membrane crosses
// the threshold. The returned vector holds output firing rates in [0,1].
func (n *FCNet) SNNForward(input []float64, opt SNNOptions) ([]float64, error) {
	if len(n.Weights) == 0 {
		return nil, fmt.Errorf("nn: network %q has no layers", n.Name)
	}
	if opt.Steps < 1 {
		return nil, fmt.Errorf("nn: SNN needs at least 1 step")
	}
	if opt.Threshold <= 0 {
		return nil, fmt.Errorf("nn: SNN threshold must be positive")
	}
	if opt.Leak < 0 {
		return nil, fmt.Errorf("nn: negative leak")
	}
	if opt.Rng == nil {
		return nil, fmt.Errorf("nn: SNN needs an RNG")
	}
	if len(input) != len(n.Weights[0]) {
		return nil, fmt.Errorf("nn: input length %d, want %d", len(input), len(n.Weights[0]))
	}
	for i, v := range input {
		if v < 0 || v > 1 {
			return nil, fmt.Errorf("nn: input rate %g at %d outside [0,1]", v, i)
		}
	}
	// Per-layer state.
	membranes := make([][]float64, len(n.Weights))
	spikes := make([][]float64, len(n.Weights)+1)
	fires := make([]int, len(n.Weights[len(n.Weights)-1][0]))
	spikes[0] = make([]float64, len(input))
	for l, w := range n.Weights {
		membranes[l] = make([]float64, len(w[0]))
		spikes[l+1] = make([]float64, len(w[0]))
	}
	for step := 0; step < opt.Steps; step++ {
		// Input spikes.
		for i, rate := range input {
			if opt.Rng.Float64() < rate {
				spikes[0][i] = 1
			} else {
				spikes[0][i] = 0
			}
		}
		for l, w := range n.Weights {
			out := spikes[l+1]
			for j := range out {
				out[j] = 0
			}
			// Synapse function: one crossbar pass over the spike vector.
			currents := make([]float64, len(w[0]))
			for i, row := range w {
				if spikes[l][i] == 0 {
					continue
				}
				for j, wij := range row {
					currents[j] += wij
				}
			}
			if opt.Deviate != nil {
				opt.Deviate(l, currents)
			}
			// Integrate and fire.
			for j := range currents {
				membranes[l][j] += currents[j] - opt.Leak
				if membranes[l][j] < 0 {
					membranes[l][j] = 0
				}
				if membranes[l][j] >= opt.Threshold {
					membranes[l][j] -= opt.Threshold
					out[j] = 1
					if l == len(n.Weights)-1 {
						fires[j]++
					}
				}
			}
		}
	}
	rates := make([]float64, len(fires))
	for j, f := range fires {
		rates[j] = float64(f) / float64(opt.Steps)
	}
	return rates, nil
}
