package nn

import "fmt"

// Tensor3 is a W×H×C feature map stored as data[(y·W+x)·C + c].
type Tensor3 struct {
	W, H, C int
	Data    []float64
}

// NewTensor3 allocates a zero feature map.
func NewTensor3(w, h, c int) *Tensor3 {
	if w < 1 || h < 1 || c < 1 {
		panic(fmt.Sprintf("nn: invalid tensor shape %dx%dx%d", w, h, c))
	}
	return &Tensor3{W: w, H: h, C: c, Data: make([]float64, w*h*c)}
}

// At returns element (x, y, c); out-of-bounds coordinates read as zero
// (implicit padding).
func (t *Tensor3) At(x, y, c int) float64 {
	if x < 0 || x >= t.W || y < 0 || y >= t.H {
		return 0
	}
	return t.Data[(y*t.W+x)*t.C+c]
}

// Set assigns element (x, y, c).
func (t *Tensor3) Set(x, y, c int, v float64) {
	t.Data[(y*t.W+x)*t.C+c] = v
}

// ConvKernels holds a Conv layer's weights: kernels[k] is the flattened
// kw×kh×inC kernel of output channel k, in the row order the crossbar
// mapping uses ((ky, kx, c) major to minor).
type ConvKernels struct {
	KW, KH, InC, OutC int
	Weights           [][]float64 // [OutC][KW*KH*InC]
}

// NewConvKernels validates and wraps kernel weights.
func NewConvKernels(kw, kh, inC int, weights [][]float64) (*ConvKernels, error) {
	if kw < 1 || kh < 1 || inC < 1 || len(weights) == 0 {
		return nil, fmt.Errorf("nn: invalid kernel geometry %dx%dx%d with %d outputs", kw, kh, inC, len(weights))
	}
	want := kw * kh * inC
	for k, w := range weights {
		if len(w) != want {
			return nil, fmt.Errorf("nn: kernel %d has %d weights, want %d", k, len(w), want)
		}
	}
	return &ConvKernels{KW: kw, KH: kh, InC: inC, OutC: len(weights), Weights: weights}, nil
}

// Matrix returns the kernels as the (kw·kh·inC)×OutC weight matrix a
// computation bank stores — multiple kernels sharing input vectors become
// one matrix-vector multiplication (Section II.B.3).
func (k *ConvKernels) Matrix() [][]float64 {
	rows := k.KW * k.KH * k.InC
	m := make([][]float64, rows)
	for r := range m {
		m[r] = make([]float64, k.OutC)
		for c := range m[r] {
			m[r][c] = k.Weights[c][r]
		}
	}
	return m
}

// Im2Col extracts the input patch feeding output pixel (ox, oy): the
// flattened receptive field, ordered (ky, kx, c) — one crossbar input
// vector per output position. This is exactly the window the Fig. 1(f)
// line buffer holds as results stream through.
func Im2Col(in *Tensor3, k *ConvKernels, ox, oy, stride, pad int) []float64 {
	patch := make([]float64, k.KW*k.KH*k.InC)
	i := 0
	for ky := 0; ky < k.KH; ky++ {
		for kx := 0; kx < k.KW; kx++ {
			x := ox*stride - pad + kx
			y := oy*stride - pad + ky
			for c := 0; c < k.InC; c++ {
				patch[i] = in.At(x, y, c)
				i++
			}
		}
	}
	return patch
}

// Conv2D computes a direct convolution, the reference the crossbar mapping
// is verified against.
func Conv2D(in *Tensor3, k *ConvKernels, stride, pad int) (*Tensor3, error) {
	if in.C != k.InC {
		return nil, fmt.Errorf("nn: input has %d channels, kernels expect %d", in.C, k.InC)
	}
	if stride < 1 || pad < 0 {
		return nil, fmt.Errorf("nn: invalid stride %d / pad %d", stride, pad)
	}
	outW := (in.W+2*pad-k.KW)/stride + 1
	outH := (in.H+2*pad-k.KH)/stride + 1
	if outW < 1 || outH < 1 {
		return nil, fmt.Errorf("nn: kernel does not fit the input")
	}
	out := NewTensor3(outW, outH, k.OutC)
	for oy := 0; oy < outH; oy++ {
		for ox := 0; ox < outW; ox++ {
			for oc := 0; oc < k.OutC; oc++ {
				sum := 0.0
				i := 0
				for ky := 0; ky < k.KH; ky++ {
					for kx := 0; kx < k.KW; kx++ {
						x := ox*stride - pad + kx
						y := oy*stride - pad + ky
						for c := 0; c < k.InC; c++ {
							sum += in.At(x, y, c) * k.Weights[oc][i]
							i++
						}
					}
				}
				out.Set(ox, oy, oc, sum)
			}
		}
	}
	return out, nil
}

// ConvByMVM computes the same convolution as a stream of matrix-vector
// multiplications — the memristor bank's execution order: one Im2Col patch
// per output position drives the kernel matrix, with mvm optionally
// substituted (e.g. by a crossbar model with injected error). A nil mvm
// uses the exact product.
func ConvByMVM(in *Tensor3, k *ConvKernels, stride, pad int, mvm func(matrix [][]float64, vin []float64) ([]float64, error)) (*Tensor3, error) {
	if in.C != k.InC {
		return nil, fmt.Errorf("nn: input has %d channels, kernels expect %d", in.C, k.InC)
	}
	if stride < 1 || pad < 0 {
		return nil, fmt.Errorf("nn: invalid stride %d / pad %d", stride, pad)
	}
	outW := (in.W+2*pad-k.KW)/stride + 1
	outH := (in.H+2*pad-k.KH)/stride + 1
	if outW < 1 || outH < 1 {
		return nil, fmt.Errorf("nn: kernel does not fit the input")
	}
	if mvm == nil {
		mvm = exactMVM
	}
	matrix := k.Matrix()
	out := NewTensor3(outW, outH, k.OutC)
	for oy := 0; oy < outH; oy++ {
		for ox := 0; ox < outW; ox++ {
			patch := Im2Col(in, k, ox, oy, stride, pad)
			y, err := mvm(matrix, patch)
			if err != nil {
				return nil, fmt.Errorf("nn: output (%d,%d): %w", ox, oy, err)
			}
			if len(y) != k.OutC {
				return nil, fmt.Errorf("nn: mvm returned %d outputs, want %d", len(y), k.OutC)
			}
			for oc := 0; oc < k.OutC; oc++ {
				out.Set(ox, oy, oc, y[oc])
			}
		}
	}
	return out, nil
}

func exactMVM(matrix [][]float64, vin []float64) ([]float64, error) {
	if len(matrix) != len(vin) {
		return nil, fmt.Errorf("nn: mvm shape mismatch %d vs %d", len(matrix), len(vin))
	}
	if len(matrix) == 0 {
		return nil, fmt.Errorf("nn: empty matrix")
	}
	out := make([]float64, len(matrix[0]))
	for i, row := range matrix {
		for j, w := range row {
			out[j] += w * vin[i]
		}
	}
	return out, nil
}

// MaxPool2D applies k×k max pooling with stride k (the bank's pooling
// module over the Fig. 1(f) buffer contents).
func MaxPool2D(in *Tensor3, k int) (*Tensor3, error) {
	if k < 1 {
		return nil, fmt.Errorf("nn: invalid pooling size %d", k)
	}
	outW, outH := in.W/k, in.H/k
	if outW < 1 || outH < 1 {
		return nil, fmt.Errorf("nn: pooling exhausts the %dx%d map", in.W, in.H)
	}
	out := NewTensor3(outW, outH, in.C)
	for oy := 0; oy < outH; oy++ {
		for ox := 0; ox < outW; ox++ {
			for c := 0; c < in.C; c++ {
				best := in.At(ox*k, oy*k, c)
				for dy := 0; dy < k; dy++ {
					for dx := 0; dx < k; dx++ {
						if v := in.At(ox*k+dx, oy*k+dy, c); v > best {
							best = v
						}
					}
				}
				out.Set(ox, oy, c, best)
			}
		}
	}
	return out, nil
}
