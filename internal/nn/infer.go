package nn

import (
	"fmt"
	"math"
	"math/rand"
)

// FCNet is a concrete fully-connected network with weight values, used by
// the functional accuracy validation (the JPEG-encoding application of
// Section VII.A). Weights[l][i][j] connects input i of layer l to output j;
// values lie in [-1, 1] for signed networks or [0, 1] for unsigned ones.
type FCNet struct {
	Name    string
	Weights [][][]float64
}

// Activation is the neuron non-linearity applied between layers.
type Activation func(float64) float64

// Sigmoid is the DNN reference neuron.
func Sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-4*x)) }

// ReLU is the CNN reference neuron.
func ReLU(x float64) float64 { return math.Max(0, x) }

// Identity passes values through (for regression-style output layers).
func Identity(x float64) float64 { return x }

// RandomFCNet builds a synthetic network with the given layer widths and
// weights drawn uniformly from [-1, 1]. The accuracy validation never
// depends on trained weight values — only on the statistics of the
// deviations — so synthetic weights preserve the experiment (DESIGN.md).
func RandomFCNet(name string, rng *rand.Rand, widths ...int) (*FCNet, error) {
	if len(widths) < 2 {
		return nil, fmt.Errorf("nn: network %q needs at least 2 widths", name)
	}
	net := &FCNet{Name: name}
	for l := 0; l+1 < len(widths); l++ {
		in, out := widths[l], widths[l+1]
		if in < 1 || out < 1 {
			return nil, fmt.Errorf("nn: network %q layer %d has invalid shape %dx%d", name, l, in, out)
		}
		w := make([][]float64, in)
		for i := range w {
			w[i] = make([]float64, out)
			for j := range w[i] {
				w[i][j] = rng.Float64()*2 - 1
			}
		}
		net.Weights = append(net.Weights, w)
	}
	return net, nil
}

// Shapes returns the per-layer (rows, cols) weight shapes.
func (n *FCNet) Shapes() [][2]int {
	out := make([][2]int, len(n.Weights))
	for l, w := range n.Weights {
		out[l] = [2]int{len(w), len(w[0])}
	}
	return out
}

// Quantize rounds v ∈ [-1,1] to a signed fixed-point value with the given
// total bits (one sign bit).
func Quantize(v float64, bits int) float64 {
	if bits < 2 {
		return v
	}
	scale := float64(int(1)<<uint(bits-1)) - 1
	q := math.Round(v*scale) / scale
	return math.Max(-1, math.Min(1, q))
}

// ForwardOptions controls a functional inference pass.
type ForwardOptions struct {
	// DataBits quantizes layer inputs/outputs (0 = no quantization).
	DataBits int
	// WeightBits quantizes the weights (0 = no quantization).
	WeightBits int
	// Act is the hidden-layer activation (Identity if nil).
	Act Activation
	// Deviate, when non-nil, perturbs each layer's pre-activation vector in
	// place — the hook where the crossbar error model (or a circuit-level
	// solve) injects computing error. The layer index is passed through.
	Deviate func(layer int, v []float64)
}

// Forward runs the network on one input vector.
func (n *FCNet) Forward(input []float64, opt ForwardOptions) ([]float64, error) {
	if len(n.Weights) == 0 {
		return nil, fmt.Errorf("nn: network %q has no layers", n.Name)
	}
	act := opt.Act
	if act == nil {
		act = Identity
	}
	cur := make([]float64, len(input))
	copy(cur, input)
	quant := func(v []float64, bits int) {
		if bits > 0 {
			for i := range v {
				v[i] = Quantize(v[i], bits)
			}
		}
	}
	quant(cur, opt.DataBits)
	for l, w := range n.Weights {
		if len(w) != len(cur) {
			return nil, fmt.Errorf("nn: layer %d of %q expects %d inputs, got %d", l, n.Name, len(w), len(cur))
		}
		out := make([]float64, len(w[0]))
		for i, row := range w {
			x := cur[i]
			if x == 0 {
				continue
			}
			for j, wij := range row {
				wq := wij
				if opt.WeightBits > 0 {
					wq = Quantize(wij, opt.WeightBits)
				}
				out[j] += wq * x
			}
		}
		// Normalise the accumulation to keep signals in range, as the
		// crossbar's analog scaling does.
		scale := 1 / math.Sqrt(float64(len(w)))
		for j := range out {
			out[j] *= scale
		}
		if opt.Deviate != nil {
			opt.Deviate(l, out)
		}
		if l < len(n.Weights)-1 {
			for j := range out {
				out[j] = act(out[j])
			}
		}
		quant(out, opt.DataBits)
		cur = out
	}
	return cur, nil
}

// RelativeAccuracy compares a deviated output against the ideal fixed-point
// reference: 1 − mean(|got−want|) / range, the "Average Relative Accuracy"
// metric of Table II. The range is the observed span of the reference
// vector (falling back to 1 when the reference is constant).
func RelativeAccuracy(want, got []float64) (float64, error) {
	if len(want) != len(got) || len(want) == 0 {
		return 0, fmt.Errorf("nn: relative accuracy needs equal non-empty vectors, got %d vs %d", len(want), len(got))
	}
	lo, hi := want[0], want[0]
	for _, v := range want {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	span := hi - lo
	if span == 0 {
		span = 1
	}
	sum := 0.0
	for i := range want {
		sum += math.Abs(want[i] - got[i])
	}
	acc := 1 - sum/float64(len(want))/span
	return acc, nil
}

// UniformDeviation returns a Deviate hook that perturbs every value by a
// uniform relative error within ±rate — the behaviour-level error-injection
// model driven by the accuracy package's per-layer ε.
func UniformDeviation(rate float64, rng *rand.Rand) func(int, []float64) {
	return func(_ int, v []float64) {
		for i := range v {
			v[i] *= 1 + rate*(2*rng.Float64()-1)
		}
	}
}
