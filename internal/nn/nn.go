// Package nn describes the neuromorphic workloads MNSIM simulates: layer
// topologies (fully-connected, convolutional, pooling), the published VGG-16
// and CaffeNet networks used by the paper's case studies, the mapping of
// network layers onto computation banks (Section III.A: only layers holding
// Conv kernels or fully-connected weights become neuromorphic layers), and a
// fixed-point functional inference engine with error injection for the
// accuracy validation.
package nn

import (
	"fmt"

	"mnsim/internal/arch"
)

// LayerType distinguishes the network layer kinds MNSIM recognises.
type LayerType int

const (
	// Conv is a convolutional layer (becomes a computation bank).
	Conv LayerType = iota
	// FC is a fully-connected layer (becomes a computation bank).
	FC
	// Pool is a spatial max-pooling layer (folded into the preceding
	// bank's pooling module, Section III.A).
	Pool
)

// String implements fmt.Stringer.
func (t LayerType) String() string {
	switch t {
	case Conv:
		return "Conv"
	case FC:
		return "FC"
	case Pool:
		return "Pool"
	default:
		return fmt.Sprintf("LayerType(%d)", int(t))
	}
}

// Layer is one network layer description.
type Layer struct {
	Type LayerType
	// Conv fields.
	OutChannels, KernelW, KernelH, Stride, Pad int
	// FC fields.
	In, Out int
	// Pool fields.
	PoolK, PoolStride int
}

// Network is a whole application topology.
type Network struct {
	Name                   string
	InputW, InputH, InputC int
	Layers                 []Layer
}

// VGG16 returns the VGG-16 network of Simonyan & Zisserman on 224×224×3
// ImageNet inputs — the deep-CNN case study of Section VII.D.
func VGG16() Network {
	conv := func(out int) Layer {
		return Layer{Type: Conv, OutChannels: out, KernelW: 3, KernelH: 3, Stride: 1, Pad: 1}
	}
	pool := Layer{Type: Pool, PoolK: 2, PoolStride: 2}
	return Network{
		Name: "VGG-16", InputW: 224, InputH: 224, InputC: 3,
		Layers: []Layer{
			conv(64), conv(64), pool,
			conv(128), conv(128), pool,
			conv(256), conv(256), conv(256), pool,
			conv(512), conv(512), conv(512), pool,
			conv(512), conv(512), conv(512), pool,
			{Type: FC, In: 25088, Out: 4096},
			{Type: FC, In: 4096, Out: 4096},
			{Type: FC, In: 4096, Out: 1000},
		},
	}
}

// CaffeNet returns the CaffeNet/AlexNet topology (the Section III.A
// example: counting only the kernel- and weight-bearing layers).
func CaffeNet() Network {
	return Network{
		Name: "CaffeNet", InputW: 227, InputH: 227, InputC: 3,
		Layers: []Layer{
			{Type: Conv, OutChannels: 96, KernelW: 11, KernelH: 11, Stride: 4},
			{Type: Pool, PoolK: 3, PoolStride: 2},
			{Type: Conv, OutChannels: 256, KernelW: 5, KernelH: 5, Stride: 1, Pad: 2},
			{Type: Pool, PoolK: 3, PoolStride: 2},
			{Type: Conv, OutChannels: 384, KernelW: 3, KernelH: 3, Stride: 1, Pad: 1},
			{Type: Conv, OutChannels: 384, KernelW: 3, KernelH: 3, Stride: 1, Pad: 1},
			{Type: Conv, OutChannels: 256, KernelW: 3, KernelH: 3, Stride: 1, Pad: 1},
			{Type: Pool, PoolK: 3, PoolStride: 2},
			{Type: FC, In: 9216, Out: 4096},
			{Type: FC, In: 4096, Out: 4096},
			{Type: FC, In: 4096, Out: 1000},
		},
	}
}

// MLP returns a plain fully-connected network with the given layer widths,
// e.g. MLP("jpeg", 64, 16, 64) for the paper's JPEG-encoding validation
// application.
func MLP(name string, widths ...int) Network {
	n := Network{Name: name}
	for i := 0; i+1 < len(widths); i++ {
		n.Layers = append(n.Layers, Layer{Type: FC, In: widths[i], Out: widths[i+1]})
	}
	return n
}

// NeuromorphicLayers counts the layers that hold Conv kernels or FC weights
// — the computation banks of the accelerator (e.g. CaffeNet's 8, VGG-16's
// 16).
func (n Network) NeuromorphicLayers() int {
	count := 0
	for _, l := range n.Layers {
		if l.Type == Conv || l.Type == FC {
			count++
		}
	}
	return count
}

// Dims maps the network onto computation-bank layer dimensions:
//   - a Conv layer becomes a (kw·kh·Cin)×Cout weight matrix computed once
//     per output pixel (Passes = outW·outH), with a following Pool layer
//     folded into the bank's pooling module;
//   - cascaded Conv layers get the Eq. 6 line buffer sized by the *next*
//     conv's kernel;
//   - an FC layer becomes an In×Out matrix with one pass.
func (n Network) Dims() ([]arch.LayerDims, error) {
	w, h, c := n.InputW, n.InputH, n.InputC
	if len(n.Layers) == 0 {
		return nil, fmt.Errorf("nn: network %q has no layers", n.Name)
	}
	var dims []arch.LayerDims
	for i, l := range n.Layers {
		switch l.Type {
		case Conv:
			if w < 1 || h < 1 || c < 1 {
				return nil, fmt.Errorf("nn: layer %d of %q: no spatial input for conv", i, n.Name)
			}
			if l.KernelW < 1 || l.KernelH < 1 || l.OutChannels < 1 || l.Stride < 1 {
				return nil, fmt.Errorf("nn: layer %d of %q: bad conv geometry", i, n.Name)
			}
			outW := (w+2*l.Pad-l.KernelW)/l.Stride + 1
			outH := (h+2*l.Pad-l.KernelH)/l.Stride + 1
			if outW < 1 || outH < 1 {
				return nil, fmt.Errorf("nn: layer %d of %q: kernel larger than input", i, n.Name)
			}
			d := arch.LayerDims{
				Rows:        l.KernelW * l.KernelH * c,
				Cols:        l.OutChannels,
				Passes:      outW * outH,
				OutChannels: l.OutChannels,
			}
			// Fold a directly following pooling layer into this bank.
			if i+1 < len(n.Layers) && n.Layers[i+1].Type == Pool {
				d.PoolK = n.Layers[i+1].PoolK
			}
			// Line buffer for the next conv layer per Eq. 6.
			if next, nw := n.nextConv(i + 1); next != nil {
				d.OutBufLen = nw*(next.KernelH-1) + next.KernelW
			}
			dims = append(dims, d)
			w, h, c = outW, outH, l.OutChannels
		case Pool:
			if l.PoolStride < 1 || l.PoolK < 1 {
				return nil, fmt.Errorf("nn: layer %d of %q: bad pool geometry", i, n.Name)
			}
			w = (w-l.PoolK)/l.PoolStride + 1
			h = (h-l.PoolK)/l.PoolStride + 1
			if w < 1 || h < 1 {
				return nil, fmt.Errorf("nn: layer %d of %q: pooling exhausted the feature map", i, n.Name)
			}
		case FC:
			if l.In < 1 || l.Out < 1 {
				return nil, fmt.Errorf("nn: layer %d of %q: bad FC shape", i, n.Name)
			}
			if c > 0 && w > 0 && h > 0 && w*h*c != l.In {
				return nil, fmt.Errorf("nn: layer %d of %q: FC expects %d inputs but feature map is %d×%d×%d", i, n.Name, l.In, w, h, c)
			}
			dims = append(dims, arch.LayerDims{Rows: l.In, Cols: l.Out, Passes: 1})
			w, h, c = 0, 0, 0 // flattened from here on
		default:
			return nil, fmt.Errorf("nn: layer %d of %q: unknown type %d", i, n.Name, int(l.Type))
		}
	}
	if len(dims) == 0 {
		return nil, fmt.Errorf("nn: network %q has no neuromorphic layers", n.Name)
	}
	return dims, nil
}

// nextConv finds the next Conv layer at or after index i and the feature-map
// width feeding it, simulating the intervening pools.
func (n Network) nextConv(i int) (*Layer, int) {
	w, h, c := n.InputW, n.InputH, n.InputC
	for j := 0; j < len(n.Layers); j++ {
		l := n.Layers[j]
		switch l.Type {
		case Conv:
			if j >= i {
				return &n.Layers[j], w
			}
			if l.Stride < 1 {
				return nil, 0 // invalid geometry: Dims reports it when reached
			}
			w = (w+2*l.Pad-l.KernelW)/l.Stride + 1
			h = (h+2*l.Pad-l.KernelH)/l.Stride + 1
			c = l.OutChannels
		case Pool:
			if l.PoolStride < 1 {
				return nil, 0
			}
			w = (w-l.PoolK)/l.PoolStride + 1
			h = (h-l.PoolK)/l.PoolStride + 1
		case FC:
			return nil, 0
		}
	}
	_ = c
	_ = h
	return nil, 0
}
