package nn

import (
	"math"
	"math/rand"
	"testing"
)

// positiveNet builds a single-layer network with known positive weights.
func positiveNet(w float64, in, out int) *FCNet {
	m := make([][]float64, in)
	for i := range m {
		m[i] = make([]float64, out)
		for j := range m[i] {
			m[i][j] = w
		}
	}
	return &FCNet{Name: "snn", Weights: [][][]float64{m}}
}

func TestSNNForwardRatesInRange(t *testing.T) {
	net := positiveNet(0.5, 8, 4)
	rng := rand.New(rand.NewSource(1))
	input := []float64{1, 0.5, 0.25, 1, 0, 0.75, 0.5, 1}
	rates, err := net.SNNForward(input, SNNOptions{Steps: 200, Threshold: 1, Rng: rng})
	if err != nil {
		t.Fatal(err)
	}
	if len(rates) != 4 {
		t.Fatalf("got %d rates", len(rates))
	}
	for j, r := range rates {
		if r < 0 || r > 1 {
			t.Fatalf("rate %d = %v", j, r)
		}
	}
}

// Rate coding: the output firing rate approximates (input rate · weight sum)
// / threshold for a non-saturating single layer.
func TestSNNRateCodesLinearTransfer(t *testing.T) {
	net := positiveNet(0.25, 4, 1) // 4 inputs x 0.25 = 1.0 total weight
	rng := rand.New(rand.NewSource(2))
	input := []float64{0.5, 0.5, 0.5, 0.5} // expected current 0.5/step
	rates, err := net.SNNForward(input, SNNOptions{Steps: 4000, Threshold: 1, Rng: rng})
	if err != nil {
		t.Fatal(err)
	}
	// Expected rate = 0.5 firings per step.
	if math.Abs(rates[0]-0.5) > 0.05 {
		t.Fatalf("rate = %v, want ~0.5", rates[0])
	}
	// Doubling the input rate doubles the output rate (until saturation).
	full, err := net.SNNForward([]float64{1, 1, 1, 1}, SNNOptions{Steps: 4000, Threshold: 1, Rng: rng})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(full[0]-1.0) > 0.05 {
		t.Fatalf("full-rate output = %v, want ~1", full[0])
	}
}

// Leak lowers the firing rate.
func TestSNNLeakReducesRate(t *testing.T) {
	net := positiveNet(0.25, 4, 1)
	input := []float64{0.5, 0.5, 0.5, 0.5}
	noLeak, err := net.SNNForward(input, SNNOptions{Steps: 2000, Threshold: 1, Rng: rand.New(rand.NewSource(3))})
	if err != nil {
		t.Fatal(err)
	}
	leaky, err := net.SNNForward(input, SNNOptions{Steps: 2000, Threshold: 1, Leak: 0.2, Rng: rand.New(rand.NewSource(3))})
	if err != nil {
		t.Fatal(err)
	}
	if leaky[0] >= noLeak[0] {
		t.Fatalf("leaky rate %v not below %v", leaky[0], noLeak[0])
	}
}

// Crossbar error injection perturbs the output rates.
func TestSNNDeviationChangesRates(t *testing.T) {
	net := positiveNet(0.25, 4, 2)
	input := []float64{0.5, 0.5, 0.5, 0.5}
	clean, err := net.SNNForward(input, SNNOptions{Steps: 1000, Threshold: 1, Rng: rand.New(rand.NewSource(4))})
	if err != nil {
		t.Fatal(err)
	}
	deviated, err := net.SNNForward(input, SNNOptions{
		Steps: 1000, Threshold: 1, Rng: rand.New(rand.NewSource(4)),
		Deviate: func(_ int, cur []float64) {
			for i := range cur {
				cur[i] *= 0.5 // halve every synaptic current
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if deviated[0] >= clean[0] {
		t.Fatalf("halved currents should lower the rate: %v vs %v", deviated[0], clean[0])
	}
}

func TestSNNMultiLayer(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	net, err := RandomFCNet("snn", rng, 16, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	input := make([]float64, 16)
	for i := range input {
		input[i] = rng.Float64()
	}
	rates, err := net.SNNForward(input, SNNOptions{Steps: 300, Threshold: 0.5, Rng: rng})
	if err != nil {
		t.Fatal(err)
	}
	if len(rates) != 4 {
		t.Fatalf("got %d rates", len(rates))
	}
}

func TestSNNErrors(t *testing.T) {
	net := positiveNet(0.5, 2, 1)
	rng := rand.New(rand.NewSource(1))
	cases := []SNNOptions{
		{Steps: 0, Threshold: 1, Rng: rng},
		{Steps: 10, Threshold: 0, Rng: rng},
		{Steps: 10, Threshold: 1, Leak: -1, Rng: rng},
		{Steps: 10, Threshold: 1},
	}
	for i, opt := range cases {
		if _, err := net.SNNForward([]float64{0.5, 0.5}, opt); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	if _, err := net.SNNForward([]float64{0.5}, SNNOptions{Steps: 10, Threshold: 1, Rng: rng}); err == nil {
		t.Error("short input accepted")
	}
	if _, err := net.SNNForward([]float64{0.5, 1.5}, SNNOptions{Steps: 10, Threshold: 1, Rng: rng}); err == nil {
		t.Error("rate above 1 accepted")
	}
	empty := &FCNet{Name: "empty"}
	if _, err := empty.SNNForward(nil, SNNOptions{Steps: 1, Threshold: 1, Rng: rng}); err == nil {
		t.Error("empty network accepted")
	}
}
