// Solve-level flight-recorder support: per-solve numerical diagnostics,
// typed failure errors carrying the state needed to understand them, and
// JSON snapshots that make any solve — especially a failing one —
// reproducible bit-for-bit by cmd/mnsim-replay.
package circuit

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"sync/atomic"

	"mnsim/internal/device"
	"mnsim/internal/linalg"
	"mnsim/internal/telemetry"
)

// jsonFinite maps non-finite floats — which encoding/json refuses to
// marshal — to the nearest representable sentinel, so even a trajectory
// that exploded to Inf/NaN still journals and snapshots.
func jsonFinite(x float64) float64 {
	switch {
	case math.IsNaN(x):
		return 0
	case math.IsInf(x, 1):
		return math.MaxFloat64
	case math.IsInf(x, -1):
		return -math.MaxFloat64
	}
	return x
}

// jsonFiniteSlice applies jsonFinite element-wise into a fresh slice.
func jsonFiniteSlice(xs []float64) []float64 {
	if xs == nil {
		return nil
	}
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = jsonFinite(x)
	}
	return out
}

// Diagnostics is the numerical trajectory of one solve — the per-solve
// convergence record (iteration counts, residual history, solver path,
// conditioning) that XbarSim-style crossbar solver analyses treat as the
// primary lens on solver quality.
type Diagnostics struct {
	// Path names the solver path taken: "newton-cg" (the full non-linear
	// MNA solve), "linear-cg" (ideal-resistor cells), or
	// "zero-wire-bisection" (the collapsed-node ideal-interconnect limit).
	Path string `json:"path"`
	// SetupCGIters is the CG iteration count of the initial linear solve
	// at calibrated resistances (zero on the bisection path and on
	// warm-started non-linear solves, which skip the setup solve).
	SetupCGIters int `json:"setup_cg_iters,omitempty"`
	// Precond names the inner linear preconditioner ("block-jacobi",
	// "jacobi"); empty on the bisection path, which has no linear core.
	Precond string `json:"precond,omitempty"`
	// PrecondRefreshes counts mid-Newton preconditioner refactorizations:
	// the factorization is frozen across Newton iterations
	// (modified-Newton) and refreshed only when the inner CG iteration
	// count regresses past its post-factorization baseline.
	PrecondRefreshes int `json:"precond_refreshes,omitempty"`
	// WarmStart marks a solve that resumed from a SolverState operating
	// point instead of running the setup linear solve.
	WarmStart bool `json:"warm_start,omitempty"`
	// CacheHit marks a solve answered from the SolverState result memo —
	// the inputs were bit-identical to the previous solve, so its result
	// was returned without touching the solver (Cost is nil).
	CacheHit bool `json:"cache_hit,omitempty"`
	// Residuals is the max node-voltage update (volts) after each Newton
	// iteration — the convergence trajectory. Empty for linear solves.
	Residuals []float64 `json:"residuals,omitempty"`
	// CGIters is the inner CG iteration count of each Newton step,
	// aligned with Residuals.
	CGIters []int `json:"cg_iters,omitempty"`
	// CondEstimate is the estimated spectral condition number of the final
	// MNA Jacobian (linalg.EstimateCond). Computed on divergence and when
	// SolveOptions.Diagnostics is set; zero otherwise.
	CondEstimate float64 `json:"cond_estimate,omitempty"`
	// Cost is the solve's per-phase operation cost model; nil when the
	// solve ran with SolveOptions.NoCostAccounting.
	Cost *CostModel `json:"cost,omitempty"`
	// Convergence carries analytics derived from the recorded trajectory
	// (residual decay rate, stagnation flag); nil for linear solves.
	Convergence *Convergence `json:"convergence,omitempty"`
}

// CostModel attributes one solve's operation counts to the phases of the
// Newton–CG pipeline — the "where does a solve spend its cost" breakdown.
// Kernel counts (the CG inner loop, condition estimation) are exact; the
// assembly and device-stamping phases are modeled, with each transcendental
// device evaluation (one sinh/cosh pair) counted as deviceEvalFlops flops.
// Counting is deterministic and purely observational, so cost fields
// round-trip bit-identically through journals, snapshots, and mnsim-replay.
type CostModel struct {
	// Assembly is the cost of building the MNA triplets and the CSR
	// sparsity pattern (once per solve).
	Assembly linalg.OpCount `json:"assembly"`
	// NewtonUpdate is the per-iteration nonlinear work: device-model
	// re-stamping, CSR value refresh, and the ΔV convergence scan. On the
	// zero-wire path it is empty — the bisection loop is the inner solver
	// there and lands in CGLoop.
	NewtonUpdate linalg.OpCount `json:"newton_update"`
	// CGLoop is the inner linear-solver cost: every CG iteration of the
	// setup solve and the Newton steps (or the per-column bisection loop
	// on the zero-wire path). Preconditioner applies inside CG land here.
	CGLoop linalg.OpCount `json:"cg_loop"`
	// Precond is the preconditioner setup cost: block gathering and the
	// banded Cholesky factorization of every wire-chain block, initially
	// and on each modified-Newton refresh. Applies are charged to CGLoop,
	// where they happen.
	Precond linalg.OpCount `json:"precond"`
	// Diagnostics is the cost of optional numerical diagnostics — the
	// Jacobian condition estimate's power/inverse iterations.
	Diagnostics linalg.OpCount `json:"diagnostics"`
}

// Total folds the five phases into one accumulator; nil-safe.
func (c *CostModel) Total() linalg.OpCount {
	var t linalg.OpCount
	if c == nil {
		return t
	}
	t.Add(&c.Assembly)
	t.Add(&c.NewtonUpdate)
	t.Add(&c.CGLoop)
	t.Add(&c.Precond)
	t.Add(&c.Diagnostics)
	return t
}

// Nil-safe phase accessors: a disabled cost model threads nil *OpCount
// into the kernels, which is the zero-overhead off switch.
func (c *CostModel) assembly() *linalg.OpCount {
	if c == nil {
		return nil
	}
	return &c.Assembly
}

func (c *CostModel) newtonUpdate() *linalg.OpCount {
	if c == nil {
		return nil
	}
	return &c.NewtonUpdate
}

func (c *CostModel) cgLoop() *linalg.OpCount {
	if c == nil {
		return nil
	}
	return &c.CGLoop
}

func (c *CostModel) precond() *linalg.OpCount {
	if c == nil {
		return nil
	}
	return &c.Precond
}

func (c *CostModel) diagnostics() *linalg.OpCount {
	if c == nil {
		return nil
	}
	return &c.Diagnostics
}

// Convergence analytics derived from a solve's recorded Newton trajectory.
type Convergence struct {
	// DecayRate is the geometric-mean contraction factor of successive
	// Newton residuals, (R_last/R_first)^(1/(steps−1)): well below 1 for a
	// healthy quadratically-converging solve, near or above 1 when Newton
	// is fighting the linearisation. Zero when the trajectory is too short
	// (or hit exact zero) to estimate.
	DecayRate float64 `json:"decay_rate"`
	// Stagnated is set when the trajectory's tail stopped contracting: the
	// geometric-mean ratio over the last stagnationWindow steps exceeds
	// stagnationRatio. Every diverging solve stagnates; a converging solve
	// that stagnates is burning iterations without progress — the signal
	// to look at conditioning.
	Stagnated bool `json:"stagnated,omitempty"`
	// CGPerNewton is the mean inner-CG iteration count per Newton step —
	// the linear-solver effort behind each nonlinear update.
	CGPerNewton float64 `json:"cg_per_newton,omitempty"`
}

const (
	// stagnationWindow is how many trailing Newton steps the stagnation
	// check examines.
	stagnationWindow = 3
	// stagnationRatio is the trailing contraction factor above which a
	// trajectory counts as stagnated.
	stagnationRatio = 0.9
)

// analyze derives the convergence analytics from the recorded trajectory.
// Purely a read of already-recorded values: it cannot perturb the solve.
func (d *Diagnostics) analyze() {
	if len(d.Residuals) == 0 {
		return
	}
	conv := &Convergence{}
	if len(d.CGIters) > 0 {
		sum := 0
		for _, c := range d.CGIters {
			sum += c
		}
		conv.CGPerNewton = float64(sum) / float64(len(d.CGIters))
	}
	// A trailing exactly-zero residual means the final linear solve
	// reproduced the operating point bit-for-bit (the warm-start early
	// exit): convergence is exact there, so the contraction analysis runs
	// on the nonzero prefix where a decay rate is defined.
	trimmed := d.Residuals
	for len(trimmed) > 0 && trimmed[len(trimmed)-1] == 0 {
		trimmed = trimmed[:len(trimmed)-1]
	}
	if steps := len(trimmed); steps >= 2 {
		first, last := trimmed[0], trimmed[steps-1]
		if first > 0 && last > 0 {
			conv.DecayRate = jsonFinite(math.Pow(last/first, 1/float64(steps-1)))
		}
		w := stagnationWindow
		if w > steps-1 {
			w = steps - 1
		}
		from, to := trimmed[steps-1-w], trimmed[steps-1]
		if from > 0 && to > 0 && math.Pow(to/from, 1/float64(w)) > stagnationRatio {
			conv.Stagnated = true
		}
	}
	d.Convergence = conv
}

// DivergenceError is the typed form of a Newton divergence: errors.Is
// matches ErrNewtonDiverged, and the payload carries the iteration budget
// spent, the final residual, and the full diagnostics trajectory.
type DivergenceError struct {
	// Iters is the number of Newton iterations performed before giving up.
	Iters int
	// FinalResidual is the max node-voltage update (volts) of the last
	// iteration — how far from converged the solve still was.
	FinalResidual float64
	// Diag is the solve's full numerical trajectory.
	Diag *Diagnostics
}

func (e *DivergenceError) Error() string {
	return fmt.Sprintf("circuit: Newton iteration did not converge after %d iterations (final max ΔV %.3g V)",
		e.Iters, e.FinalResidual)
}

// Unwrap makes errors.Is(err, ErrNewtonDiverged) hold.
func (e *DivergenceError) Unwrap() error { return ErrNewtonDiverged }

// ErrNotSettled is the sentinel a transient settling failure matches with
// errors.Is; the returned error is a *NotSettledError carrying the budget
// spent and the remaining output deviation.
var ErrNotSettled = errors.New("circuit: outputs did not settle")

// NotSettledError is the typed form of a transient settling failure,
// distinguishing an exhausted step budget (a tuning problem) from invalid
// input (an error the caller must fix).
type NotSettledError struct {
	// Steps is the number of backward-Euler steps integrated.
	Steps int
	// LastMaxDV is the worst remaining output deviation from the DC
	// target (volts) when the budget ran out.
	LastMaxDV float64
}

func (e *NotSettledError) Error() string {
	return fmt.Sprintf("circuit: outputs did not settle within %d steps (remaining max ΔV %.3g V)",
		e.Steps, e.LastMaxDV)
}

// Unwrap makes errors.Is(err, ErrNotSettled) hold.
func (e *NotSettledError) Unwrap() error { return ErrNotSettled }

// solveSeq numbers solves process-wide for journal correlation ids.
var solveSeq atomic.Int64

func nextSolveID(prefix string) string {
	return fmt.Sprintf("%s-%d", prefix, solveSeq.Add(1))
}

// SnapshotSchemaVersion identifies the snapshot layout; bump it on any
// incompatible change so mnsim-replay can refuse documents it does not
// understand.
const SnapshotSchemaVersion = 1

// Snapshot is the self-contained, bit-exact record of one solve: the full
// crossbar state, the drive vector, the resolved solver options, and the
// recorded outcome. encoding/json round-trips float64 exactly, so a
// replayed snapshot must reproduce the recorded outcome bit-identically on
// the same platform. Snapshots are written automatically next to the
// journal when a solve diverges or a transient fails to settle, and on
// demand via NewSnapshot.
type Snapshot struct {
	SchemaVersion int `json:"schema_version"`
	// Kind is "dc" for an operating-point solve, "transient" for a
	// settling run.
	Kind string `json:"kind"`
	// Tool and Seed are run provenance stamped from the journal metadata.
	Tool string `json:"tool,omitempty"`
	Seed *int64 `json:"seed,omitempty"`

	M      int          `json:"m"`
	N      int          `json:"n"`
	R      [][]float64  `json:"r"`
	WireR  float64      `json:"wire_r"`
	RSense float64      `json:"rsense"`
	Linear bool         `json:"linear"`
	Device device.Model `json:"device"`

	Vin     []float64    `json:"vin"`
	Options SolveOptions `json:"options"`
	// WarmV is the warm-start operating point the solve resumed from, when
	// it ran against a SolverState holding one. A replay seeds a state from
	// it so the warm-started trajectory reproduces bit-identically.
	WarmV []float64 `json:"warm_v,omitempty"`
	// Transient carries the resolved transient options for Kind
	// "transient" snapshots.
	Transient *TransientOptions `json:"transient,omitempty"`

	Outcome Outcome `json:"outcome"`
}

// Outcome is the recorded result of the snapshot's solve — what a replay
// must reproduce bit-identically.
type Outcome struct {
	OK bool `json:"ok"`
	// Err is the recorded error string for failed solves.
	Err string `json:"err,omitempty"`

	// DC solve results.
	VOut        []float64 `json:"vout,omitempty"`
	Power       float64   `json:"power,omitempty"`
	NewtonIters int       `json:"newton_iters,omitempty"`
	CGIters     int       `json:"cg_iters,omitempty"`
	// FinalResidual and Residuals record a divergence trajectory.
	FinalResidual float64   `json:"final_residual,omitempty"`
	Residuals     []float64 `json:"residuals,omitempty"`
	// Cost is the solve's per-phase operation cost model. Integer counts
	// round-trip JSON exactly, so a replay must reproduce it bit for bit.
	Cost *CostModel `json:"cost,omitempty"`

	// Transient results.
	SettleSeconds float64 `json:"settle_seconds,omitempty"`
	Steps         int     `json:"steps,omitempty"`
	LastMaxDV     float64 `json:"last_max_dv,omitempty"`
}

// Crossbar rebuilds the solvable crossbar a snapshot describes.
func (s *Snapshot) Crossbar() *Crossbar {
	return &Crossbar{
		M: s.M, N: s.N, R: s.R,
		WireR: s.WireR, RSense: s.RSense,
		Dev: s.Device, Linear: s.Linear,
	}
}

// Validate checks the fields every schema-conformant snapshot must carry.
func (s *Snapshot) Validate() error {
	switch {
	case s.SchemaVersion != SnapshotSchemaVersion:
		return fmt.Errorf("circuit: snapshot schema_version %d, want %d", s.SchemaVersion, SnapshotSchemaVersion)
	case s.Kind != "dc" && s.Kind != "transient":
		return fmt.Errorf("circuit: snapshot kind %q, want dc or transient", s.Kind)
	case s.Kind == "transient" && s.Transient == nil:
		return fmt.Errorf("circuit: transient snapshot missing transient options")
	case len(s.Vin) != s.M:
		return fmt.Errorf("circuit: snapshot vin length %d, want %d", len(s.Vin), s.M)
	case s.WarmV != nil && len(s.WarmV) != 2*s.M*s.N:
		return fmt.Errorf("circuit: snapshot warm_v length %d, want %d", len(s.WarmV), 2*s.M*s.N)
	}
	return s.Crossbar().Validate()
}

// baseSnapshot captures the crossbar state plus journal provenance.
func (c *Crossbar) baseSnapshot(kind string, vin []float64, opt SolveOptions) *Snapshot {
	tool, seed := telemetry.DefaultJournal().Meta()
	return &Snapshot{
		SchemaVersion: SnapshotSchemaVersion,
		Kind:          kind,
		Tool:          tool,
		Seed:          seed,
		M:             c.M, N: c.N, R: c.R,
		WireR: c.WireR, RSense: c.RSense,
		Linear: c.Linear, Device: c.Dev,
		Vin:     append([]float64(nil), vin...),
		Options: opt,
	}
}

// NewSnapshot records a completed DC solve — successful or failed — as a
// replayable snapshot. opt should be the options the solve actually ran
// with; res may be nil when err is non-nil.
func (c *Crossbar) NewSnapshot(vin []float64, opt SolveOptions, res *Result, err error) *Snapshot {
	s := c.baseSnapshot("dc", vin, opt)
	if err != nil {
		s.Outcome.Err = err.Error()
		var de *DivergenceError
		if errors.As(err, &de) {
			s.Outcome.NewtonIters = de.Iters
			s.Outcome.FinalResidual = jsonFinite(de.FinalResidual)
			if de.Diag != nil {
				s.Outcome.Residuals = jsonFiniteSlice(de.Diag.Residuals)
				s.Outcome.Cost = de.Diag.Cost.clone()
			}
		}
		return s
	}
	s.Outcome.OK = true
	s.Outcome.VOut = append([]float64(nil), res.VOut...)
	s.Outcome.Power = res.Power
	s.Outcome.NewtonIters = res.NewtonIters
	s.Outcome.CGIters = res.CGIters
	if res.Diag != nil {
		s.Outcome.Residuals = jsonFiniteSlice(res.Diag.Residuals)
		s.Outcome.Cost = res.Diag.Cost.clone()
	}
	return s
}

// clone copies the cost model into a fresh value (nil in, nil out), so a
// snapshot owns its outcome independently of the live diagnostics.
func (c *CostModel) clone() *CostModel {
	if c == nil {
		return nil
	}
	cp := *c
	return &cp
}

// newTransientSnapshot records a completed settling run.
func (c *Crossbar) newTransientSnapshot(vin []float64, opt TransientOptions, settle float64, steps int, lastMaxDV float64, err error) *Snapshot {
	s := c.baseSnapshot("transient", vin, SolveOptions{})
	topt := opt
	s.Transient = &topt
	s.Outcome.Steps = steps
	s.Outcome.LastMaxDV = jsonFinite(lastMaxDV)
	if err != nil {
		s.Outcome.Err = err.Error()
		return s
	}
	s.Outcome.OK = true
	s.Outcome.SettleSeconds = settle
	return s
}

// saveSnapshot hands a snapshot to the journal's snapshot sink; it returns
// the written path ("" when the journal has no backing file) and never
// fails the solve — a snapshot problem is logged, not propagated.
func saveSnapshot(kind string, s *Snapshot) string {
	path, err := telemetry.DefaultJournal().SaveSnapshot(kind, s)
	if err != nil {
		telemetry.Log().Warn("solver snapshot write failed", "kind", kind, "err", err)
		return ""
	}
	return path
}

// WriteSnapshot writes a snapshot as an indented JSON document.
func WriteSnapshot(w io.Writer, s *Snapshot) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// LoadSnapshot reads and schema-validates a snapshot file.
func LoadSnapshot(path string) (*Snapshot, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s Snapshot
	if err := json.Unmarshal(b, &s); err != nil {
		return nil, fmt.Errorf("circuit: snapshot %s: %w", path, err)
	}
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("%w (in %s)", err, path)
	}
	return &s, nil
}
