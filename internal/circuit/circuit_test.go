package circuit

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"mnsim/internal/device"
)

// uniformR builds an M×N resistance matrix with every cell at r.
func uniformR(m, n int, r float64) [][]float64 {
	out := make([][]float64, m)
	for i := range out {
		out[i] = make([]float64, n)
		for j := range out[i] {
			out[i][j] = r
		}
	}
	return out
}

func randomR(m, n int, dev device.Model, rng *rand.Rand) [][]float64 {
	out := make([][]float64, m)
	for i := range out {
		out[i] = make([]float64, n)
		for j := range out[i] {
			lvl := rng.Intn(dev.Levels())
			r, err := dev.LevelResistance(lvl)
			if err != nil {
				panic(err)
			}
			out[i][j] = r
		}
	}
	return out
}

func TestValidate(t *testing.T) {
	ok := &Crossbar{M: 2, N: 2, R: uniformR(2, 2, 1e3), WireR: 1, RSense: 100, Dev: device.RRAM()}
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []Crossbar{
		{M: 0, N: 2, R: nil, WireR: 1, RSense: 100},
		{M: 2, N: 2, R: uniformR(1, 2, 1e3), WireR: 1, RSense: 100},
		{M: 2, N: 2, R: [][]float64{{1e3, 1e3}, {1e3}}, WireR: 1, RSense: 100},
		{M: 2, N: 2, R: [][]float64{{1e3, -1}, {1e3, 1e3}}, WireR: 1, RSense: 100},
		{M: 2, N: 2, R: uniformR(2, 2, 1e3), WireR: -1, RSense: 100},
		{M: 2, N: 2, R: uniformR(2, 2, 1e3), WireR: 1, RSense: 0},
		{M: 2, N: 2, R: uniformR(2, 2, 1e3), WireR: 1, RSense: 100}, // bad Dev, non-linear
	}
	for i, c := range cases {
		c := c
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted invalid crossbar", i)
		}
	}
}

// A 1×1 linear crossbar is a plain series divider:
// v — r — cell R — Rs — ground.
func TestLinear1x1VoltageDivider(t *testing.T) {
	c := &Crossbar{M: 1, N: 1, R: uniformR(1, 1, 1000), WireR: 10, RSense: 200, Linear: true}
	res, err := c.Solve([]float64{0.3}, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := 0.3 * 200 / (10 + 1000 + 200)
	if math.Abs(res.VOut[0]-want)/want > 1e-8 {
		t.Fatalf("VOut = %v, want %v", res.VOut[0], want)
	}
	// And the source power matches v*i for the series current.
	i := 0.3 / (10 + 1000 + 200)
	if math.Abs(res.Power-0.3*i)/(0.3*i) > 1e-8 {
		t.Fatalf("Power = %v, want %v", res.Power, 0.3*i)
	}
}

// With zero wire resistance and linear devices the solver must reproduce the
// analytic ideal output of Eq. 2.
func TestLinearZeroWireMatchesIdeal(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	dev := device.RRAM()
	c := &Crossbar{M: 8, N: 6, R: randomR(8, 6, dev, rng), WireR: 0, RSense: 300, Linear: true}
	vin := make([]float64, 8)
	for i := range vin {
		vin[i] = 0.1 + 0.2*rng.Float64()
	}
	res, err := c.Solve(vin, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ideal, err := c.IdealOut(vin)
	if err != nil {
		t.Fatal(err)
	}
	for n := range ideal {
		if math.Abs(res.VOut[n]-ideal[n]) > 1e-6*math.Abs(ideal[n])+1e-12 {
			t.Fatalf("col %d: solver %v vs ideal %v", n, res.VOut[n], ideal[n])
		}
	}
}

// Wire resistance must strictly reduce every output voltage relative to the
// ideal — the monotone degradation the accuracy model fits (Fig. 5).
func TestWireResistanceReducesOutput(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	dev := device.RRAM()
	c := &Crossbar{M: 16, N: 16, R: randomR(16, 16, dev, rng), WireR: 2.8, RSense: 100, Linear: true}
	vin := make([]float64, 16)
	for i := range vin {
		vin[i] = 0.3
	}
	res, err := c.Solve(vin, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ideal, _ := c.IdealOut(vin)
	for n := range ideal {
		if res.VOut[n] >= ideal[n] {
			t.Fatalf("col %d: wire-loaded output %v >= ideal %v", n, res.VOut[n], ideal[n])
		}
	}
}

// Energy conservation: source power equals dissipated power.
func TestPowerConservation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	dev := device.RRAM()
	for _, linear := range []bool{true, false} {
		c := &Crossbar{M: 8, N: 8, R: randomR(8, 8, dev, rng), WireR: 1.3, RSense: 150, Dev: dev, Linear: linear}
		vin := make([]float64, 8)
		for i := range vin {
			vin[i] = 0.25
		}
		res, err := c.Solve(vin, SolveOptions{})
		if err != nil {
			t.Fatalf("linear=%v: %v", linear, err)
		}
		diss := c.DissipatedPower(res, vin)
		if math.Abs(res.Power-diss)/res.Power > 1e-6 {
			t.Fatalf("linear=%v: source %v vs dissipated %v", linear, res.Power, diss)
		}
	}
}

// Non-linear 1×1: the Newton solution must satisfy KCL with the sinh device,
// verified against an independent bisection solve of the scalar circuit.
func TestNonlinear1x1MatchesBisection(t *testing.T) {
	dev := device.RRAM()
	rCell := 2000.0
	c := &Crossbar{M: 1, N: 1, R: uniformR(1, 1, rCell), WireR: 5, RSense: 400, Dev: dev}
	vin := 0.3
	res, err := c.Solve([]float64{vin}, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Scalar circuit: current i flows v -> r -> cell -> Rs.
	// Unknown: voltage across cell vd. i = dev.Current(vd); KVL:
	// vin = i*(WireR + RSense) + vd.
	f := func(vd float64) float64 {
		i := dev.Current(vd, rCell)
		return vin - i*(5+400) - vd
	}
	lo, hi := 0.0, vin
	for iter := 0; iter < 200; iter++ {
		mid := (lo + hi) / 2
		if f(mid) > 0 {
			lo = mid
		} else {
			hi = mid
		}
	}
	vd := (lo + hi) / 2
	wantOut := dev.Current(vd, rCell) * 400
	if math.Abs(res.VOut[0]-wantOut) > 1e-7 {
		t.Fatalf("VOut = %v, bisection %v", res.VOut[0], wantOut)
	}
	if res.NewtonIters < 2 {
		t.Fatalf("non-linear solve reported %d Newton iterations", res.NewtonIters)
	}
}

// The non-linear solve must coincide with the linear solve when the device
// is operated exactly at its calibration point (cell voltage = ReadVoltage):
// impossible in a loaded network, so instead check the limit Vc→∞ where the
// sinh law degenerates to a linear resistor.
func TestNonlinearDegeneratesToLinear(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	dev := device.RRAM()
	dev.NonlinearVc = 1e6 // essentially linear I-V
	r := randomR(6, 6, dev, rng)
	vin := make([]float64, 6)
	for i := range vin {
		vin[i] = 0.3
	}
	nl := &Crossbar{M: 6, N: 6, R: r, WireR: 1.3, RSense: 150, Dev: dev}
	lin := &Crossbar{M: 6, N: 6, R: r, WireR: 1.3, RSense: 150, Linear: true}
	resNL, err := nl.Solve(vin, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	resLin, err := lin.Solve(vin, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for n := range resNL.VOut {
		if math.Abs(resNL.VOut[n]-resLin.VOut[n]) > 1e-7 {
			t.Fatalf("col %d: nl %v vs lin %v", n, resNL.VOut[n], resLin.VOut[n])
		}
	}
}

// The sign of the non-linear deviation must match the operating point:
// cells biased above the calibration voltage conduct more than their
// calibrated resistance (output above the linear solution); cells biased
// below conduct less (output below). This is the physics behind the
// U-shaped error-versus-size curve of Table V.
func TestNonlinearitySignMatchesOperatingPoint(t *testing.T) {
	dev := device.RRAM() // calibration at 0.15 V, drive at 0.30 V
	vinVal := 2 * dev.ReadVoltage
	run := func(m int, rs float64) (nl, lin float64, vCell float64) {
		r := uniformR(m, 4, 10e3)
		vin := make([]float64, m)
		for i := range vin {
			vin[i] = vinVal
		}
		cNL := &Crossbar{M: m, N: 4, R: r, WireR: 0.5, RSense: rs, Dev: dev}
		cLin := &Crossbar{M: m, N: 4, R: r, WireR: 0.5, RSense: rs, Linear: true}
		resNL, err := cNL.Solve(vin, SolveOptions{})
		if err != nil {
			t.Fatal(err)
		}
		resLin, err := cLin.Solve(vin, SolveOptions{})
		if err != nil {
			t.Fatal(err)
		}
		return resNL.VOut[0], resLin.VOut[0], cNL.CellVoltage(resNL, 0, 0)
	}
	// Small load: cells keep most of the drive voltage, operate above the
	// 0.15 V calibration point, so they look less resistive than calibrated.
	nl, lin, vCell := run(2, 50)
	if vCell <= dev.ReadVoltage {
		t.Fatalf("setup: expected cell voltage above calibration, got %v", vCell)
	}
	if nl <= lin {
		t.Errorf("above calibration: non-linear output %v should exceed linear %v", nl, lin)
	}
	// Heavy load (large M, big Rs): the column node rises, cells operate
	// below calibration and look more resistive.
	nl, lin, vCell = run(64, 400)
	if vCell >= dev.ReadVoltage {
		t.Fatalf("setup: expected cell voltage below calibration, got %v", vCell)
	}
	if nl >= lin {
		t.Errorf("below calibration: non-linear output %v should be under linear %v", nl, lin)
	}
}

func TestSolveInputLengthMismatch(t *testing.T) {
	c := &Crossbar{M: 2, N: 2, R: uniformR(2, 2, 1e3), WireR: 1, RSense: 100, Linear: true}
	if _, err := c.Solve([]float64{0.3}, SolveOptions{}); err == nil {
		t.Fatal("short input should fail")
	}
	if _, err := c.IdealOut([]float64{0.3}); err == nil {
		t.Fatal("short ideal input should fail")
	}
}

// The farthest column from the inputs must see the lowest output voltage
// when all cells are equal — the paper's worst-case column argument.
func TestFarthestColumnIsWorst(t *testing.T) {
	c := &Crossbar{M: 16, N: 16, R: uniformR(16, 16, 500), WireR: 2.8, RSense: 50, Linear: true}
	vin := make([]float64, 16)
	for i := range vin {
		vin[i] = 0.3
	}
	res, err := c.Solve(vin, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for n := 1; n < 16; n++ {
		if res.VOut[n] >= res.VOut[n-1] {
			t.Fatalf("column %d output %v not below column %d output %v", n, res.VOut[n], n-1, res.VOut[n-1])
		}
	}
}

func TestCellVoltagePositive(t *testing.T) {
	dev := device.RRAM()
	c := &Crossbar{M: 4, N: 4, R: uniformR(4, 4, 10e3), WireR: 1, RSense: 100, Dev: dev}
	vin := []float64{0.3, 0.3, 0.3, 0.3}
	res, err := c.Solve(vin, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for m := 0; m < 4; m++ {
		for n := 0; n < 4; n++ {
			vd := c.CellVoltage(res, m, n)
			if vd <= 0 || vd >= 0.3 {
				t.Fatalf("cell (%d,%d) voltage %v outside (0, 0.3)", m, n, vd)
			}
		}
	}
}

func TestWriteNetlist(t *testing.T) {
	dev := device.RRAM()
	c := &Crossbar{M: 2, N: 3, R: uniformR(2, 3, 1e3), WireR: 2, RSense: 100, Dev: dev}
	var sb strings.Builder
	if err := c.WriteNetlist(&sb, []float64{0.3, 0.2}); err != nil {
		t.Fatal(err)
	}
	deck := sb.String()
	for _, want := range []string{"Vin0", "Vin1", "Rs0", "Rs2", "Gcell_1_2", ".op", ".end"} {
		if !strings.Contains(deck, want) {
			t.Errorf("netlist missing %q", want)
		}
	}
	if n := strings.Count(deck, "Gcell_"); n != 6 {
		t.Errorf("netlist has %d cells, want 6", n)
	}
	// Linear variant emits R elements for cells instead.
	c.Linear = true
	sb.Reset()
	if err := c.WriteNetlist(&sb, []float64{0.3, 0.2}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Rcell_0_0") {
		t.Error("linear netlist missing Rcell elements")
	}
	if strings.Contains(sb.String(), "Gcell_") {
		t.Error("linear netlist should not contain behavioural sources")
	}
}

func TestWriteNetlistErrors(t *testing.T) {
	c := &Crossbar{M: 2, N: 2, R: uniformR(2, 2, 1e3), WireR: 1, RSense: 100, Linear: true}
	var sb strings.Builder
	if err := c.WriteNetlist(&sb, []float64{0.3}); err == nil {
		t.Fatal("short input should fail")
	}
	bad := &Crossbar{M: 0, N: 0}
	if err := bad.WriteNetlist(&sb, nil); err == nil {
		t.Fatal("invalid crossbar should fail")
	}
}

// Superposition holds for the linear network: solving with v1+v2 equals the
// sum of the separate solutions.
func TestLinearSuperposition(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	dev := device.RRAM()
	c := &Crossbar{M: 5, N: 5, R: randomR(5, 5, dev, rng), WireR: 1.3, RSense: 120, Linear: true}
	v1 := []float64{0.1, 0, 0.2, 0, 0.05}
	v2 := []float64{0, 0.15, 0, 0.1, 0}
	sum := make([]float64, 5)
	for i := range sum {
		sum[i] = v1[i] + v2[i]
	}
	r1, err := c.Solve(v1, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := c.Solve(v2, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rs, err := c.Solve(sum, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < 5; n++ {
		want := r1.VOut[n] + r2.VOut[n]
		if math.Abs(rs.VOut[n]-want) > 1e-9 {
			t.Fatalf("col %d: %v vs %v", n, rs.VOut[n], want)
		}
	}
}
