// SolverState: reusable solver structures for repeated solves of the same
// crossbar — the warm-start half of the fast solver core. A state carries
// the assembled sparsity pattern, the factored block preconditioner, the
// last converged operating point, and a memo of the last solve, so a DSE
// candidate evaluation, a Monte-Carlo trial sequence, or a settling run
// pays assembly and pattern analysis once instead of per solve and starts
// Newton from where the previous solve ended.
package circuit

import (
	"math"

	"mnsim/internal/device"
	"mnsim/internal/linalg"
)

// SolverState is the cross-solve cache a caller threads through
// SolveOptions.State. It is owned by one goroutine at a time: the
// parallel engines (DSE, Monte-Carlo) deliberately do not share states
// across workers, because the sequential-equals-parallel determinism
// contract requires every evaluation's numerics to be independent of
// execution order. Use one state per strictly sequential solve stream.
//
// Numerically, reuse is conservative by construction: the matrix values
// and the preconditioner factorization are always rebuilt from the current
// crossbar at solve start, so the only floating-point inputs that cross
// solves are the warm-start vector and the memoized result. A solve with a
// fresh state is bit-identical to a solve with a nil one, and re-solving
// bit-identical inputs returns the memoized result bit-identically.
type SolverState struct {
	// Cached assembly (sparsity pattern + triplet buffer), valid for any
	// crossbar of the same shape; values are re-stamped every solve.
	asm        *assembly
	asmM, asmN int
	// Cached block preconditioner, tied to asm's sparsity pattern and
	// refactored from the current matrix values at every solve.
	pre *linalg.BlockJacobi
	// v is the operating point of the last converged solve — the warm
	// start of the next one. vM/vN record the crossbar shape it came from:
	// a vector from a different topology is never reused even when the
	// node counts coincide (e.g. 6×4 vs 4×6). Zero shape means
	// WarmState-seeded — trusted by length alone, for replays.
	v      []float64
	vM, vN int
	// vwarm is the scratch the solve copies v into at warm start, so the
	// Newton loop's working vector never aliases the stored operating point.
	vwarm []float64
	// work is the reusable CG scratch threaded into every inner linear
	// solve through this state (see linalg.CGWork for the aliasing
	// contract); it is what takes the warm re-solve path to near-zero
	// steady-state allocations.
	work linalg.CGWork
	// memo of the last successful solve keyed by its exact inputs.
	memo *memoEntry
}

// memoEntry records the exact (bitwise) inputs and the result of the last
// successful solve through a state. Re-solving identical inputs is common
// in sweeps (repeated read of an unchanged crossbar) and must stay
// bit-identical whether or not a state is reused, so the comparison is
// exact — math.Float64bits equality, never a tolerance.
type memoEntry struct {
	m, n          int
	vin           []float64
	r             []float64 // row-major copy of the cell resistances
	wireR, rsense float64
	linear        bool
	dev           device.Model
	opt           SolveOptions
	res           *Result
}

// NewSolverState returns an empty state ready to thread through
// SolveOptions.State.
func NewSolverState() *SolverState {
	return &SolverState{}
}

// WarmState builds a state holding only a warm-start operating point —
// how mnsim-replay reseeds the warm trajectory recorded in a snapshot.
func WarmState(v []float64) *SolverState {
	return &SolverState{v: append([]float64(nil), v...)}
}

// WarmV returns a copy of the state's current warm-start operating point
// (nil before the first converged solve).
func (s *SolverState) WarmV() []float64 {
	if s == nil || s.v == nil {
		return nil
	}
	return append([]float64(nil), s.v...)
}

// cgWork returns the state's reusable CG scratch; nil for a nil state, so
// stateless solves keep their historical per-call allocations.
func (s *SolverState) cgWork() *linalg.CGWork {
	if s == nil {
		return nil
	}
	return &s.work
}

// warmCopy copies the stored operating point into the state's warm scratch
// and returns it — the allocation-free equivalent of cloning s.v.
func (s *SolverState) warmCopy() []float64 {
	s.vwarm = append(s.vwarm[:0], s.v...)
	return s.vwarm
}

// warmFor reports whether the state holds a warm-start vector usable for
// this crossbar.
func (s *SolverState) warmFor(c *Crossbar) bool {
	if s == nil || len(s.v) != 2*c.M*c.N {
		return false
	}
	return (s.vM == c.M && s.vN == c.N) || (s.vM == 0 && s.vN == 0)
}

// Reset drops all cached structures; the next solve through the state runs
// cold.
func (s *SolverState) Reset() {
	if s == nil {
		return
	}
	*s = SolverState{}
}

// bitsEqual compares two float slices for exact bit equality (NaN-safe,
// unlike ==; and exempt from the float-comparison lint because it is an
// integer comparison).
func bitsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// memoKeyMatches reports whether the memoized solve had bit-identical
// inputs to the one being requested.
func (e *memoEntry) matches(c *Crossbar, vin []float64, opt SolveOptions) bool {
	if e == nil || e.m != c.M || e.n != c.N ||
		math.Float64bits(e.wireR) != math.Float64bits(c.WireR) ||
		math.Float64bits(e.rsense) != math.Float64bits(c.RSense) ||
		e.linear != c.Linear || e.dev != c.Dev {
		return false
	}
	o := opt
	o.State = nil
	eo := e.opt
	eo.State = nil
	if o != eo {
		return false
	}
	if !bitsEqual(e.vin, vin) {
		return false
	}
	for m := 0; m < c.M; m++ {
		if !bitsEqual(e.r[m*c.N:(m+1)*c.N], c.R[m]) {
			return false
		}
	}
	return true
}

// memoLookup returns a deep copy of the memoized result when the requested
// solve has bit-identical inputs, nil otherwise. The copy carries a fresh
// Diagnostics with CacheHit set and no cost model — no solver work ran.
func (s *SolverState) memoLookup(c *Crossbar, vin []float64, opt SolveOptions) *Result {
	if s == nil || s.memo == nil || !s.memo.matches(c, vin, opt) {
		return nil
	}
	src := s.memo.res
	return &Result{
		VOut:        append([]float64(nil), src.VOut...),
		Power:       src.Power,
		NewtonIters: src.NewtonIters,
		CGIters:     src.CGIters,
		NodeV:       append([]float64(nil), src.NodeV...),
		Diag: &Diagnostics{
			Path:     src.Diag.Path,
			Precond:  src.Diag.Precond,
			CacheHit: true,
		},
	}
}

// store records a successful solve: the operating point for warm starts and
// the memo for bit-identical re-solves. The stored result is a deep copy so
// later caller mutations cannot corrupt the cache; the copy reuses the
// previous memo's buffers, so a steady-state solve stream stores without
// allocating.
func (s *SolverState) store(c *Crossbar, vin []float64, opt SolveOptions, res *Result) {
	if s == nil {
		return
	}
	s.v = append(s.v[:0], res.NodeV...)
	s.vM, s.vN = c.M, c.N
	opt.State = nil // break the cycle; matches() ignores it anyway
	e := s.memo
	if e == nil {
		e = &memoEntry{}
		s.memo = e
	}
	if e.res == nil {
		e.res = &Result{}
	}
	e.m, e.n = c.M, c.N
	e.vin = append(e.vin[:0], vin...)
	e.r = e.r[:0]
	for m := 0; m < c.M; m++ {
		e.r = append(e.r, c.R[m]...)
	}
	e.wireR, e.rsense = c.WireR, c.RSense
	e.linear, e.dev = c.Linear, c.Dev
	e.opt = opt
	er := e.res
	er.VOut = append(er.VOut[:0], res.VOut...)
	er.Power = res.Power
	er.NewtonIters = res.NewtonIters
	er.CGIters = res.CGIters
	er.NodeV = append(er.NodeV[:0], res.NodeV...)
	er.Diag = res.Diag
}
