package circuit

import (
	"bufio"
	"fmt"
	"io"
	"math"
)

// WriteNetlist emits the crossbar as a SPICE deck for external circuit-level
// simulators (Section IV.A of the paper). Wire segments and sensing
// resistors become R elements; each memristor becomes either a plain
// resistor (Linear) or a behavioural current source implementing the sinh
// I–V law. Node names follow the solver's topology: ri_m_n / ci_m_n for the
// cell input/output nodes and in_m for the driven row heads.
func (c *Crossbar) WriteNetlist(w io.Writer, vin []float64) error {
	if err := c.Validate(); err != nil {
		return err
	}
	if len(vin) != c.M {
		return fmt.Errorf("circuit: input vector length %d, want %d", len(vin), c.M)
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "* MNSIM-Go crossbar netlist %dx%d\n", c.M, c.N)
	fmt.Fprintf(bw, "* wire segment r=%g ohm, sense Rs=%g ohm\n", c.WireR, c.RSense)
	elem := 0
	wireR := c.WireR
	if wireR <= 0 {
		wireR = 1e-9 // SPICE dislikes exact zero-ohm resistors
	}
	for m := 0; m < c.M; m++ {
		fmt.Fprintf(bw, "Vin%d in_%d 0 DC %g\n", m, m, vin[m])
		fmt.Fprintf(bw, "Rsrc%d in_%d ri_%d_0 %g\n", m, m, m, wireR)
		for n := 0; n+1 < c.N; n++ {
			fmt.Fprintf(bw, "Rrow%d ri_%d_%d ri_%d_%d %g\n", elem, m, n, m, n+1, wireR)
			elem++
		}
	}
	for n := 0; n < c.N; n++ {
		for m := 0; m+1 < c.M; m++ {
			fmt.Fprintf(bw, "Rcol%d ci_%d_%d ci_%d_%d %g\n", elem, m, n, m+1, n, wireR)
			elem++
		}
		fmt.Fprintf(bw, "Rs%d ci_%d_%d 0 %g\n", n, c.M-1, n, c.RSense)
	}
	for m := 0; m < c.M; m++ {
		for n := 0; n < c.N; n++ {
			if c.Linear {
				fmt.Fprintf(bw, "Rcell_%d_%d ri_%d_%d ci_%d_%d %g\n", m, n, m, n, m, n, c.R[m][n])
			} else {
				// Behavioural sinh source calibrated so V_read/I(V_read)
				// equals the programmed resistance.
				a := c.Dev.ReadVoltage / (c.R[m][n] * math.Sinh(c.Dev.ReadVoltage/c.Dev.NonlinearVc))
				fmt.Fprintf(bw, "Gcell_%d_%d ri_%d_%d ci_%d_%d CUR='%g*sinh(V(ri_%d_%d,ci_%d_%d)/%g)'\n",
					m, n, m, n, m, n, a, m, n, m, n, c.Dev.NonlinearVc)
			}
		}
	}
	fmt.Fprintln(bw, ".op")
	fmt.Fprintln(bw, ".end")
	return bw.Flush()
}
