package circuit

import (
	"errors"
	"math"
	"testing"

	"mnsim/internal/device"
)

// TestSolverStateDeterminism is the state-reuse bit-identity contract:
// solving the same crossbar with and without a reused SolverState yields
// bit-identical VOut. A fresh state changes nothing (only warm data ever
// alters the path), and a re-solve of bit-identical inputs is answered from
// the memo with a bit-identical copy.
func TestSolverStateDeterminism(t *testing.T) {
	c, vin := costCrossbar(8, 6)
	bare, err := c.Solve(vin, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	st := NewSolverState()
	first, err := c.Solve(vin, SolveOptions{State: st})
	if err != nil {
		t.Fatal(err)
	}
	second, err := c.Solve(vin, SolveOptions{State: st})
	if err != nil {
		t.Fatal(err)
	}
	for n := range bare.VOut {
		if math.Float64bits(first.VOut[n]) != math.Float64bits(bare.VOut[n]) {
			t.Fatalf("col %d: fresh-state solve differs from stateless (%v vs %v)",
				n, first.VOut[n], bare.VOut[n])
		}
		if math.Float64bits(second.VOut[n]) != math.Float64bits(bare.VOut[n]) {
			t.Fatalf("col %d: reused-state solve differs from stateless (%v vs %v)",
				n, second.VOut[n], bare.VOut[n])
		}
	}
	if first.Diag.CacheHit {
		t.Error("first solve through a fresh state flagged as cache hit")
	}
	if !second.Diag.CacheHit {
		t.Error("bit-identical re-solve not answered from the memo")
	}
	if second.Diag.Cost != nil {
		t.Error("memo hit carries a cost model — no solver work should have run")
	}
	// The memoized copy must be isolated from the caller's result.
	second.VOut[0] = 42
	third, err := c.Solve(vin, SolveOptions{State: st})
	if err != nil {
		t.Fatal(err)
	}
	if third.VOut[0] == 42 {
		t.Error("memo result aliases a previously returned slice")
	}
}

// TestSolverStateWarmStart: a warm-started solve of a perturbed input must
// converge to the cold answer within tolerance while skipping the setup
// solve and spending fewer total CG iterations.
func TestSolverStateWarmStart(t *testing.T) {
	c, vin := costCrossbar(12, 10)
	st := NewSolverState()
	if _, err := c.Solve(vin, SolveOptions{State: st}); err != nil {
		t.Fatal(err)
	}
	vin2 := append([]float64(nil), vin...)
	for i := range vin2 {
		vin2[i] *= 1.02
	}
	cold, err := c.Solve(vin2, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	warm, err := c.Solve(vin2, SolveOptions{State: st})
	if err != nil {
		t.Fatal(err)
	}
	if !warm.Diag.WarmStart {
		t.Fatal("second state solve did not warm-start")
	}
	if warm.Diag.SetupCGIters != 0 {
		t.Errorf("warm start still ran the setup solve (%d iters)", warm.Diag.SetupCGIters)
	}
	for n := range cold.VOut {
		if math.Abs(warm.VOut[n]-cold.VOut[n]) > 1e-8*(1+math.Abs(cold.VOut[n])) {
			t.Fatalf("col %d: warm %v vs cold %v", n, warm.VOut[n], cold.VOut[n])
		}
	}
	if warm.CGIters >= cold.CGIters {
		t.Errorf("warm solve spent %d CG iters, cold %d", warm.CGIters, cold.CGIters)
	}
}

// TestSolverStateLinearWarmStart: linear solves warm-start their single CG
// solve through the state as well.
func TestSolverStateLinearWarmStart(t *testing.T) {
	c, vin := costCrossbar(8, 8)
	c.Linear = true
	st := NewSolverState()
	if _, err := c.Solve(vin, SolveOptions{State: st}); err != nil {
		t.Fatal(err)
	}
	vin2 := append([]float64(nil), vin...)
	vin2[0] *= 1.01
	cold, err := c.Solve(vin2, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	warm, err := c.Solve(vin2, SolveOptions{State: st})
	if err != nil {
		t.Fatal(err)
	}
	if !warm.Diag.WarmStart {
		t.Fatal("linear state solve did not warm-start")
	}
	for n := range cold.VOut {
		if math.Abs(warm.VOut[n]-cold.VOut[n]) > 1e-8*(1+math.Abs(cold.VOut[n])) {
			t.Fatalf("col %d: warm %v vs cold %v", n, warm.VOut[n], cold.VOut[n])
		}
	}
}

// TestSolverStateShapeChange: a state survives being reused across crossbars
// of different shapes — the cached pattern is rebuilt, not misapplied.
func TestSolverStateShapeChange(t *testing.T) {
	st := NewSolverState()
	c1, vin1 := costCrossbar(6, 4)
	if _, err := c1.Solve(vin1, SolveOptions{State: st}); err != nil {
		t.Fatal(err)
	}
	c2, vin2 := costCrossbar(4, 6)
	bare, err := c2.Solve(vin2, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	reused, err := c2.Solve(vin2, SolveOptions{State: st})
	if err != nil {
		t.Fatal(err)
	}
	for n := range bare.VOut {
		if math.Float64bits(reused.VOut[n]) != math.Float64bits(bare.VOut[n]) {
			t.Fatalf("col %d: shape-changed state solve differs (%v vs %v)",
				n, reused.VOut[n], bare.VOut[n])
		}
	}
}

// TestPrecondSelection: both preconditioners agree on the answer, the
// resolved kind is recorded, and an unknown kind is rejected.
func TestPrecondSelection(t *testing.T) {
	c, vin := costCrossbar(10, 10)
	blk, err := c.Solve(vin, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if blk.Diag.Precond != PrecondBlockJacobi {
		t.Errorf("default precond = %q, want %q", blk.Diag.Precond, PrecondBlockJacobi)
	}
	jac, err := c.Solve(vin, SolveOptions{Precond: PrecondJacobi})
	if err != nil {
		t.Fatal(err)
	}
	if jac.Diag.Precond != PrecondJacobi {
		t.Errorf("precond = %q, want %q", jac.Diag.Precond, PrecondJacobi)
	}
	for n := range blk.VOut {
		if math.Abs(blk.VOut[n]-jac.VOut[n]) > 1e-7*(1+math.Abs(jac.VOut[n])) {
			t.Fatalf("col %d: block-jacobi %v vs jacobi %v", n, blk.VOut[n], jac.VOut[n])
		}
	}
	if blk.CGIters >= jac.CGIters {
		t.Errorf("block-jacobi spent %d CG iters, jacobi %d — expected a reduction",
			blk.CGIters, jac.CGIters)
	}
	if blk.Diag.Cost.Precond.BandFactorizations == 0 {
		t.Error("block-jacobi solve booked no band factorizations")
	}
	if blk.Diag.Cost.CGLoop.PrecondApplies == 0 {
		t.Error("block-jacobi solve booked no preconditioner applies in the CG loop")
	}
	if _, err := c.Solve(vin, SolveOptions{Precond: "cholesky"}); err == nil {
		t.Error("unknown preconditioner accepted")
	}
}

// zeroWireReference cross-checks the bisection path against the full MNA
// path at near-zero wire resistance.
func zeroWireReference(t *testing.T, vin []float64) ([]float64, []float64) {
	t.Helper()
	dev := device.RRAM()
	r := [][]float64{
		{200e3, 400e3, 800e3},
		{300e3, 150e3, 600e3},
		{900e3, 250e3, 120e3},
		{500e3, 700e3, 350e3},
	}
	// WireR 1e-2 is small enough that interconnect drops are far below the
	// comparison tolerance, but large enough to keep the MNA system well
	// conditioned (smaller values leave CG residual error above the wire
	// effect itself).
	zero := &Crossbar{M: 4, N: 3, R: r, WireR: 0, RSense: 1e3, Dev: dev}
	resist := &Crossbar{M: 4, N: 3, R: r, WireR: 1e-2, RSense: 1e3, Dev: dev}
	zr, err := zero.Solve(vin, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rr, err := resist.Solve(vin, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return zr.VOut, rr.VOut
}

// TestZeroWireNegativeInputs: with all-negative inputs the column voltages
// are negative; the historical [0, max(vin)] bracket collapsed to a point
// and silently reported 0 V. The bisection must agree with the resistive
// MNA path in the r → 0 limit.
func TestZeroWireNegativeInputs(t *testing.T) {
	vout, want := zeroWireReference(t, []float64{-0.12, -0.08, -0.15, -0.10})
	for n := range vout {
		if vout[n] >= 0 {
			t.Errorf("col %d: all-negative inputs gave VOut %v, want < 0", n, vout[n])
		}
		if math.Abs(vout[n]-want[n]) > 1e-8+1e-5*math.Abs(want[n]) {
			t.Errorf("col %d: bisection %v vs resistive reference %v", n, vout[n], want[n])
		}
	}
}

// TestZeroWireMixedSignInputs: with mixed-sign inputs the root can fall on
// either side of zero; the bracket must span [min(vin,0), max(vin,0)].
func TestZeroWireMixedSignInputs(t *testing.T) {
	vout, want := zeroWireReference(t, []float64{0.12, -0.09, 0.05, -0.14})
	for n := range vout {
		if math.Abs(vout[n]-want[n]) > 1e-8+1e-5*math.Abs(want[n]) {
			t.Errorf("col %d: bisection %v vs resistive reference %v", n, vout[n], want[n])
		}
	}
}

// TestZeroWireSignSymmetry: the sinh I–V law is odd, so negating every
// input must negate every output exactly (up to bisection tolerance).
func TestZeroWireSignSymmetry(t *testing.T) {
	vin := []float64{0.12, 0.08, 0.15, 0.10}
	neg := make([]float64, len(vin))
	for i := range vin {
		neg[i] = -vin[i]
	}
	pos, _ := zeroWireReference(t, vin)
	flipped, _ := zeroWireReference(t, neg)
	for n := range pos {
		if math.Abs(pos[n]+flipped[n]) > 1e-9 {
			t.Errorf("col %d: V(vin) = %v but V(-vin) = %v — not sign-symmetric",
				n, pos[n], flipped[n])
		}
	}
}

// TestWarmDivergenceSnapshotReplays: a warm-started divergence must record
// its warm vector, and replaying through WarmState must reproduce the
// recorded trajectory bit-identically.
func TestWarmDivergenceSnapshotReplays(t *testing.T) {
	dev := device.RRAM()
	dev.NonlinearVc = 2e-3 // the known-bad divergence specimen
	r := [][]float64{{100e3, 100e3}, {100e3, 100e3}}
	c := &Crossbar{M: 2, N: 2, R: r, WireR: 1, RSense: 1500, Dev: dev}
	vin := []float64{0.3, 0.3}
	opt := SolveOptions{MaxNewton: 5}

	// Seed a warm state from a converged solve of a tamer input.
	st := NewSolverState()
	tame := *c
	tame.Dev = device.RRAM()
	if _, err := tame.Solve([]float64{0.05, 0.05}, SolveOptions{State: st}); err != nil {
		t.Fatal(err)
	}
	warmV := st.WarmV()

	optSt := opt
	optSt.State = st
	_, err := c.Solve(vin, optSt)
	var de *DivergenceError
	if !errors.As(err, &de) {
		t.Fatalf("want divergence, got %v", err)
	}
	if !de.Diag.WarmStart {
		t.Fatal("diverged solve did not record its warm start")
	}

	// Replay: same inputs, state reseeded from the recorded warm vector.
	optRe := opt
	optRe.State = WarmState(warmV)
	_, err2 := c.Solve(vin, optRe)
	var de2 *DivergenceError
	if !errors.As(err2, &de2) {
		t.Fatalf("replay did not diverge: %v", err2)
	}
	if len(de.Diag.Residuals) != len(de2.Diag.Residuals) {
		t.Fatalf("trajectory lengths differ: %d vs %d",
			len(de.Diag.Residuals), len(de2.Diag.Residuals))
	}
	for i := range de.Diag.Residuals {
		if math.Float64bits(de.Diag.Residuals[i]) != math.Float64bits(de2.Diag.Residuals[i]) {
			t.Fatalf("step %d: residual %v vs replayed %v",
				i, de.Diag.Residuals[i], de2.Diag.Residuals[i])
		}
	}
}
