// Package circuit is MNSIM-Go's circuit-level reference simulator — the
// stand-in for the SPICE baseline the paper validates against and times
// (Tables II–III, Fig. 5).
//
// It solves the full M×N memristor crossbar as a resistor network by
// modified nodal analysis (MNA): every cell input and output node is an
// unknown ([MN + MN] voltages, the "more than MN + M(N-1) voltage variables"
// of Section VI), wire segments between neighbouring cells carry the
// interconnect resistance r, every column terminates in a sensing resistor
// R_s, and each memristor follows the non-linear sinh I–V law of the device
// model. The non-linear system is solved with Newton–Raphson over a
// Jacobi-preconditioned conjugate-gradient linear core (the conductance
// matrix is symmetric positive definite).
//
// The package can also emit the crossbar as a SPICE netlist (Section IV.A:
// "MNSIM can generate the netlist file for circuit-level simulators like
// SPICE").
package circuit

import (
	"context"
	"errors"
	"fmt"
	"math"

	"mnsim/internal/device"
	"mnsim/internal/linalg"
	"mnsim/internal/telemetry"
)

// Solver telemetry: per-solve Newton and cumulative CG iteration
// histograms (the quantities behind the paper's Table III timing claims),
// plus solve and divergence counters. Registered at package init so every
// export lists the solver families, observed or not.
var (
	telSolves        = telemetry.GetCounter("mnsim_circuit_solves_total")
	telDiverged      = telemetry.GetCounter("mnsim_circuit_newton_divergence_total")
	telNewtonIters   = telemetry.GetHistogram("mnsim_circuit_newton_iterations", telemetry.LinearBuckets(1, 1, 20))
	telCGIters       = telemetry.GetHistogram("mnsim_circuit_cg_iterations_per_solve", telemetry.ExponentialBuckets(8, 2, 12))
	telZeroWireSolve = telemetry.GetCounter("mnsim_circuit_zero_wire_solves_total")
)

// Cost-attribution telemetry: process-wide flop/byte totals plus per-solve
// per-phase flop histograms, so /metrics answers "where does solve cost go"
// without a journal.
var (
	telSolveFlops    = telemetry.GetCounter("mnsim_solve_flops_total")
	telSolveBytes    = telemetry.GetCounter("mnsim_solve_bytes_total")
	telPhaseAssembly = telemetry.GetHistogram("mnsim_circuit_phase_assembly_flops", telemetry.ExponentialBuckets(1024, 4, 14))
	telPhaseNewton   = telemetry.GetHistogram("mnsim_circuit_phase_newton_update_flops", telemetry.ExponentialBuckets(1024, 4, 14))
	telPhaseCG       = telemetry.GetHistogram("mnsim_circuit_phase_cg_flops", telemetry.ExponentialBuckets(1024, 4, 14))
	telPhaseDiag     = telemetry.GetHistogram("mnsim_circuit_phase_diagnostics_flops", telemetry.ExponentialBuckets(1024, 4, 14))
)

// deviceEvalFlops is the modeled flop cost of one transcendental device
// I–V evaluation (a sinh/cosh pair plus scaling); the exact kernel counts
// elsewhere in the cost model are unaffected by this constant.
const deviceEvalFlops = 8

// coordBytes is the size of one linalg.Coord (two ints + one float64).
const coordBytes = 24

// Crossbar describes one crossbar instance to simulate at circuit level.
type Crossbar struct {
	// M is the number of rows (inputs), N the number of columns (outputs).
	M, N int
	// R holds the calibrated (programmed) resistance of each cell in ohms,
	// indexed [row][col].
	R [][]float64
	// WireR is the interconnect resistance of one wire segment between
	// neighbouring cells, in ohms.
	WireR float64
	// RSense is the column sensing (load) resistance in ohms.
	RSense float64
	// Dev supplies the non-linear I–V law. Linear selects ideal resistors
	// instead (used to isolate the interconnect contribution).
	Dev device.Model
	// Linear, when true, treats every cell as an ideal resistor at its
	// calibrated value, skipping Newton iteration.
	Linear bool
}

// Validate checks structural consistency.
func (c *Crossbar) Validate() error {
	if c.M <= 0 || c.N <= 0 {
		return fmt.Errorf("circuit: invalid crossbar size %dx%d", c.M, c.N)
	}
	if len(c.R) != c.M {
		return fmt.Errorf("circuit: R has %d rows, want %d", len(c.R), c.M)
	}
	for i, row := range c.R {
		if len(row) != c.N {
			return fmt.Errorf("circuit: R row %d has %d cols, want %d", i, len(row), c.N)
		}
		for j, r := range row {
			if r <= 0 {
				return fmt.Errorf("circuit: non-positive resistance %g at (%d,%d)", r, i, j)
			}
		}
	}
	if c.WireR < 0 {
		return fmt.Errorf("circuit: negative wire resistance %g", c.WireR)
	}
	if c.RSense <= 0 {
		return fmt.Errorf("circuit: sense resistance must be positive, got %g", c.RSense)
	}
	if !c.Linear {
		if err := c.Dev.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// Result is the DC operating point of one crossbar solve.
type Result struct {
	// VOut is the voltage across each column's sensing resistor.
	VOut []float64
	// Power is the total power delivered by the input sources in watts.
	Power float64
	// NewtonIters is the number of Newton iterations performed (1 for a
	// linear solve).
	NewtonIters int
	// CGIters is the cumulative number of conjugate-gradient iterations.
	CGIters int
	// NodeV holds all node voltages (row nodes then column nodes) for
	// callers that need cell operating points.
	NodeV []float64
	// Diag is the solve's numerical diagnostics: solver path, per-Newton
	// residual/CG trajectory, and (with SolveOptions.Diagnostics) the
	// Jacobian condition estimate.
	Diag *Diagnostics
}

// node numbering: row cell nodes first, then column cell nodes.
func (c *Crossbar) rowNode(m, n int) int { return m*c.N + n }
func (c *Crossbar) colNode(m, n int) int { return c.M*c.N + m*c.N + n }

// wireG returns the conductance of one wire segment. Zero wire resistance
// never reaches this path: Solve dispatches it to the collapsed-node solver
// (solveZeroWire) to keep the MNA matrix well conditioned.
func (c *Crossbar) wireG() float64 {
	return 1 / c.WireR
}

// solveZeroWire handles the ideal-interconnect limit. With r = 0 every row
// node sits at its source voltage and every column collapses to one node, so
// each column is an independent scalar KCL equation
//
//	Σ_m I_cell(v_m − V_n) = V_n / R_s,
//
// solved by bisection (the left side is strictly decreasing in V_n, the
// right side strictly increasing, so the root is unique).
//
// Cost attribution: the bisection loop is this path's inner solver, so its
// modeled device-evaluation cost lands in CostModel.CGLoop.
func (c *Crossbar) solveZeroWire(ctx context.Context, vin []float64, cost *CostModel) (*Result, error) {
	res := &Result{
		VOut:        make([]float64, c.N),
		NodeV:       make([]float64, 2*c.M*c.N),
		NewtonIters: 1,
	}
	for m := 0; m < c.M; m++ {
		for n := 0; n < c.N; n++ {
			res.NodeV[c.rowNode(m, n)] = vin[m]
		}
	}
	vmax := 0.0
	for _, v := range vin {
		if v > vmax {
			vmax = v
		}
	}
	cellI := func(vd, r float64) float64 {
		if c.Linear {
			return vd / r
		}
		return c.Dev.Current(vd, r)
	}
	for n := 0; n < c.N; n++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("circuit: solve aborted: %w", err)
		}
		f := func(v float64) float64 {
			sum := 0.0
			for m := 0; m < c.M; m++ {
				sum += cellI(vin[m]-v, c.R[m][n])
			}
			return sum - v/c.RSense
		}
		lo, hi := 0.0, vmax
		for iter := 0; iter < 100; iter++ {
			mid := (lo + hi) / 2
			if f(mid) > 0 {
				lo = mid
			} else {
				hi = mid
			}
		}
		// 100 bisection steps, each evaluating M device currents plus the
		// sense-resistor term.
		cost.cgLoop().CountFlops(100 * (int64(c.M)*(deviceEvalFlops+2) + 3))
		v := (lo + hi) / 2
		res.VOut[n] = v
		for m := 0; m < c.M; m++ {
			res.NodeV[c.colNode(m, n)] = v
		}
	}
	for m := 0; m < c.M; m++ {
		rowI := 0.0
		for n := 0; n < c.N; n++ {
			rowI += cellI(vin[m]-res.VOut[n], c.R[m][n])
		}
		res.Power += vin[m] * rowI
	}
	cost.cgLoop().CountFlops(int64(c.M) * int64(c.N) * (deviceEvalFlops + 3))
	return res, nil
}

// assembly holds the constant sparsity pattern plus the slots that Newton
// iteration rewrites.
type assembly struct {
	trips   []linalg.Coord
	memIdx  [][4]int // per cell: indices of its 4 triplets in trips
	mat     *linalg.CSR
	rhsBase []float64 // source contributions, constant across iterations
	srcG    float64
}

func (c *Crossbar) assemble(vin []float64, ops *linalg.OpCount) (*assembly, error) {
	n2 := 2 * c.M * c.N
	a := &assembly{rhsBase: make([]float64, n2), srcG: c.wireG()}
	gw := c.wireG()
	// Row wires: source -> (m,0) -> (m,1) -> ... -> (m,N-1)
	for m := 0; m < c.M; m++ {
		first := c.rowNode(m, 0)
		a.trips = append(a.trips, linalg.Coord{Row: first, Col: first, Val: gw})
		a.rhsBase[first] += gw * vin[m]
		for n := 0; n+1 < c.N; n++ {
			i, j := c.rowNode(m, n), c.rowNode(m, n+1)
			a.trips = append(a.trips,
				linalg.Coord{Row: i, Col: i, Val: gw},
				linalg.Coord{Row: j, Col: j, Val: gw},
				linalg.Coord{Row: i, Col: j, Val: -gw},
				linalg.Coord{Row: j, Col: i, Val: -gw})
		}
	}
	// Column wires: (0,n) -> (1,n) -> ... -> (M-1,n) -> RSense -> ground
	gs := 1 / c.RSense
	for n := 0; n < c.N; n++ {
		for m := 0; m+1 < c.M; m++ {
			i, j := c.colNode(m, n), c.colNode(m+1, n)
			a.trips = append(a.trips,
				linalg.Coord{Row: i, Col: i, Val: gw},
				linalg.Coord{Row: j, Col: j, Val: gw},
				linalg.Coord{Row: i, Col: j, Val: -gw},
				linalg.Coord{Row: j, Col: i, Val: -gw})
		}
		last := c.colNode(c.M-1, n)
		a.trips = append(a.trips, linalg.Coord{Row: last, Col: last, Val: gs})
	}
	// Memristor cells: start from the calibrated linear conductance.
	a.memIdx = make([][4]int, c.M*c.N)
	for m := 0; m < c.M; m++ {
		for n := 0; n < c.N; n++ {
			i, j := c.rowNode(m, n), c.colNode(m, n)
			g := 1 / c.R[m][n]
			base := len(a.trips)
			a.trips = append(a.trips,
				linalg.Coord{Row: i, Col: i, Val: g},
				linalg.Coord{Row: j, Col: j, Val: g},
				linalg.Coord{Row: i, Col: j, Val: -g},
				linalg.Coord{Row: j, Col: i, Val: -g})
			a.memIdx[m*c.N+n] = [4]int{base, base + 1, base + 2, base + 3}
		}
	}
	mat, err := linalg.NewCSR(n2, a.trips)
	if err != nil {
		return nil, err
	}
	a.mat = mat
	// Modeled assembly cost: one conductance inversion per cell, the
	// triplet stream written once and scanned twice by the sort-and-merge
	// CSR build, and the CSR arrays written once.
	ops.CountFlops(int64(c.M) * int64(c.N))
	ops.CountBytes(3*coordBytes*int64(len(a.trips)) + 16*int64(len(mat.Vals)))
	return a, nil
}

// restamp rewrites the memristor companion-model conductances for the
// current voltage estimate and returns the full right-hand side (source
// terms plus Newton equivalent current sources).
func (c *Crossbar) restamp(a *assembly, v []float64, ops *linalg.OpCount) []float64 {
	rhs := make([]float64, len(a.rhsBase))
	copy(rhs, a.rhsBase)
	for m := 0; m < c.M; m++ {
		for n := 0; n < c.N; n++ {
			i, j := c.rowNode(m, n), c.colNode(m, n)
			vd := v[i] - v[j]
			g := c.Dev.Conductance(vd, c.R[m][n])
			ieq := c.Dev.Current(vd, c.R[m][n]) - g*vd
			idx := a.memIdx[m*c.N+n]
			a.trips[idx[0]].Val = g
			a.trips[idx[1]].Val = g
			a.trips[idx[2]].Val = -g
			a.trips[idx[3]].Val = -g
			rhs[i] -= ieq
			rhs[j] += ieq
		}
	}
	// Modeled stamping cost: per cell, two transcendental device
	// evaluations plus five arithmetic ops; traffic is the four triplet
	// writes, two node-voltage reads, and two RHS updates, plus the RHS
	// base copy.
	cells := int64(c.M) * int64(c.N)
	ops.CountFlops(cells * (2*deviceEvalFlops + 5))
	ops.CountBytes(cells*(4*coordBytes+48) + 16*int64(len(rhs)))
	return rhs
}

// SolveOptions tunes the non-linear solve.
type SolveOptions struct {
	// Tol is the Newton convergence threshold on the max node-voltage
	// update in volts; default 1e-9.
	Tol float64
	// MaxNewton bounds Newton iterations; default 50.
	MaxNewton int
	// CGTol is the relative tolerance of each inner linear solve;
	// default 1e-10.
	CGTol float64
	// Diagnostics additionally computes the Jacobian condition estimate on
	// successful solves (Diagnostics.CondEstimate); the estimate always
	// runs on divergence. The convergence trajectory itself is recorded
	// regardless — this only gates the extra eigenvalue work.
	Diagnostics bool `json:"diagnostics,omitempty"`
	// NoCostAccounting disables the per-phase operation cost model
	// (Diagnostics.Cost). Accounting is on by default: it is pure integer
	// counting, costs a few percent at most, and is observational only —
	// solve outputs are bit-identical either way (asserted in tests).
	NoCostAccounting bool `json:"no_cost_accounting,omitempty"`
}

// ErrNewtonDiverged is the sentinel a failed Newton solve matches with
// errors.Is; the concrete error is a *DivergenceError carrying the
// iteration budget spent, the final residual, and the full diagnostics
// trajectory (use errors.As to get at it).
var ErrNewtonDiverged = errors.New("circuit: Newton iteration did not converge")

// Solve computes the DC operating point for the given input voltage vector
// (length M). It is a convenience wrapper over SolveContext with a
// background context.
func (c *Crossbar) Solve(vin []float64, opt SolveOptions) (*Result, error) {
	return c.SolveContext(context.Background(), vin, opt)
}

// SolveContext is Solve with a caller-supplied context: the solve's
// telemetry span nests under any span already open in ctx, so a DSE sweep
// or validation run attributes solver time to the candidate that spent it.
func (c *Crossbar) SolveContext(ctx context.Context, vin []float64, opt SolveOptions) (res *Result, err error) {
	_, sp := telemetry.StartSpan(ctx, "circuit.solve")
	defer func() {
		sp.End()
		if res != nil {
			telSolves.Inc()
			telNewtonIters.Observe(float64(res.NewtonIters))
			telCGIters.Observe(float64(res.CGIters))
		}
		if d := diagOf(res, err); d != nil && d.Cost != nil {
			total := d.Cost.Total()
			telSolveFlops.Add(total.Flops)
			telSolveBytes.Add(total.Bytes)
			telPhaseAssembly.Observe(float64(d.Cost.Assembly.Flops))
			telPhaseNewton.Observe(float64(d.Cost.NewtonUpdate.Flops))
			telPhaseCG.Observe(float64(d.Cost.CGLoop.Flops))
			telPhaseDiag.Observe(float64(d.Cost.Diagnostics.Flops))
		}
	}()
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if len(vin) != c.M {
		return nil, fmt.Errorf("circuit: input vector length %d, want %d", len(vin), c.M)
	}
	if opt.Tol <= 0 {
		opt.Tol = 1e-9
	}
	if opt.MaxNewton <= 0 {
		opt.MaxNewton = 50
	}
	if opt.CGTol <= 0 {
		opt.CGTol = 1e-10
	}
	// Cancellation contract: ctx is checked before every linear (CG) solve
	// and per bisection column, so an aborted sweep stops burning CPU
	// mid-Newton-loop; the error wraps ctx.Err().
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("circuit: solve aborted: %w", err)
	}
	// Cost accounting is on unless opted out: a nil model threads nil
	// accumulators through every kernel, which is the off switch.
	var cost *CostModel
	if !opt.NoCostAccounting {
		cost = &CostModel{}
	}
	// Flight recorder: a correlation id ties this solve's journal events
	// together; the solve_end event is deferred so every exit path —
	// success, divergence, CG failure, cancellation — is recorded.
	jid, snapPath := "", ""
	if telemetry.JournalOn() {
		jid = nextSolveID("solve")
		telemetry.EmitEvent(telemetry.EvSolveStart, jid, map[string]any{
			"m": c.M, "n": c.N, "wire_r": c.WireR, "rsense": c.RSense,
			"linear": c.Linear, "tol": opt.Tol, "max_newton": opt.MaxNewton,
			"cg_tol": opt.CGTol,
		})
		defer func() {
			data := map[string]any{"ok": err == nil}
			if res != nil {
				data["newton_iters"] = res.NewtonIters
				data["cg_iters"] = res.CGIters
			}
			if d := diagOf(res, err); d != nil {
				if d.Cost != nil {
					data["cost"] = d.Cost
					data["flops"] = d.Cost.Total().Flops
				}
				if d.Convergence != nil {
					data["decay_rate"] = d.Convergence.DecayRate
					data["stagnated"] = d.Convergence.Stagnated
				}
			}
			if err != nil {
				data["err"] = err.Error()
			}
			if snapPath != "" {
				data["snapshot"] = snapPath
			}
			telemetry.EmitEvent(telemetry.EvSolveEnd, jid, data)
		}()
	}
	if c.WireR == 0 {
		telZeroWireSolve.Inc()
		res, err = c.solveZeroWire(ctx, vin, cost)
		if res != nil {
			res.Diag = &Diagnostics{Path: "zero-wire-bisection", Cost: cost}
		}
		return res, err
	}
	a, err := c.assemble(vin, cost.assembly())
	if err != nil {
		return nil, err
	}
	diag := &Diagnostics{Path: "newton-cg", Cost: cost}
	if c.Linear {
		diag.Path = "linear-cg"
	}
	res = &Result{}
	// Initial linear solve at calibrated resistances.
	v, it, err := linalg.SolveCG(a.mat, a.rhsBase, nil, linalg.CGOptions{Tol: opt.CGTol, Ops: cost.cgLoop()})
	if err != nil {
		return nil, fmt.Errorf("circuit: linear solve: %w", err)
	}
	res.CGIters += it
	res.NewtonIters = 1
	diag.SetupCGIters = it
	if !c.Linear {
		for iter := 0; iter < opt.MaxNewton; iter++ {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("circuit: Newton iteration aborted: %w", err)
			}
			rhs := c.restamp(a, v, cost.newtonUpdate())
			if err := a.mat.UpdateValues(a.trips); err != nil {
				return nil, err
			}
			cost.newtonUpdate().CountBytes(8*int64(len(a.mat.Vals)) + 16*int64(len(a.trips)))
			vNew, it, err := linalg.SolveCG(a.mat, rhs, v, linalg.CGOptions{Tol: opt.CGTol, Ops: cost.cgLoop()})
			if err != nil {
				return nil, fmt.Errorf("circuit: Newton linear solve: %w", err)
			}
			res.CGIters += it
			res.NewtonIters++
			delta := 0.0
			for i := range v {
				if d := math.Abs(vNew[i] - v[i]); d > delta {
					delta = d
				}
			}
			cost.newtonUpdate().CountVecOp(len(v), 2) // ΔV convergence scan
			v = vNew
			diag.Residuals = append(diag.Residuals, delta)
			diag.CGIters = append(diag.CGIters, it)
			if jid != "" {
				telemetry.EmitEvent(telemetry.EvNewtonIter, jid, map[string]any{
					"iter": iter, "max_dv": jsonFinite(delta), "cg_iters": it,
				})
			}
			if delta < opt.Tol {
				break
			}
			if iter == opt.MaxNewton-1 {
				telDiverged.Inc()
				diag.CondEstimate = jsonFinite(linalg.EstimateCondOps(a.mat, cost.diagnostics()))
				diag.analyze()
				derr := &DivergenceError{Iters: opt.MaxNewton, FinalResidual: delta, Diag: diag}
				telemetry.Log().Warn("newton iteration diverged",
					"size", fmt.Sprintf("%dx%d", c.M, c.N), "max_newton", opt.MaxNewton, "tol", opt.Tol)
				if telemetry.JournalOn() {
					snapPath = saveSnapshot("divergence", c.NewSnapshot(vin, opt, nil, derr))
				}
				return nil, derr
			}
		}
	}
	if opt.Diagnostics {
		diag.CondEstimate = jsonFinite(linalg.EstimateCondOps(a.mat, cost.diagnostics()))
	}
	diag.analyze()
	res.Diag = diag
	res.NodeV = v
	res.VOut = c.extractVOut(v)
	res.Power = c.sourcePower(vin, v)
	return res, nil
}

// diagOf extracts the diagnostics of a finished solve from whichever side
// carries them: the result on success, the typed error on divergence.
func diagOf(res *Result, err error) *Diagnostics {
	if res != nil && res.Diag != nil {
		return res.Diag
	}
	var de *DivergenceError
	if errors.As(err, &de) {
		return de.Diag
	}
	return nil
}

// extractVOut reads the sense-node voltages of the solved network.
func (c *Crossbar) extractVOut(v []float64) []float64 {
	out := make([]float64, c.N)
	for n := 0; n < c.N; n++ {
		out[n] = v[c.colNode(c.M-1, n)]
	}
	return out
}

// sourcePower sums the power each source delivers driving its row
// through the first wire segment.
func (c *Crossbar) sourcePower(vin, v []float64) float64 {
	gw := c.wireG()
	p := 0.0
	for m := 0; m < c.M; m++ {
		i := gw * (vin[m] - v[c.rowNode(m, 0)])
		p += vin[m] * i
	}
	return p
}

// CellVoltage returns the voltage across cell (m,n) in a solved result.
func (c *Crossbar) CellVoltage(res *Result, m, n int) float64 {
	return res.NodeV[c.rowNode(m, n)] - res.NodeV[c.colNode(m, n)]
}

// DissipatedPower sums the power burned in every element of the solved
// network (wires, cells, sense resistors). For a correct DC solution it
// equals the source power; the solver tests use it as an energy-conservation
// check.
func (c *Crossbar) DissipatedPower(res *Result, vin []float64) float64 {
	p := 0.0
	if c.WireR > 0 {
		gw := c.wireG()
		for m := 0; m < c.M; m++ {
			dv := vin[m] - res.NodeV[c.rowNode(m, 0)]
			p += dv * dv * gw
			for n := 0; n+1 < c.N; n++ {
				dv := res.NodeV[c.rowNode(m, n)] - res.NodeV[c.rowNode(m, n+1)]
				p += dv * dv * gw
			}
		}
		for n := 0; n < c.N; n++ {
			for m := 0; m+1 < c.M; m++ {
				dv := res.NodeV[c.colNode(m, n)] - res.NodeV[c.colNode(m+1, n)]
				p += dv * dv * gw
			}
		}
	}
	for n := 0; n < c.N; n++ {
		vLast := res.NodeV[c.colNode(c.M-1, n)]
		p += vLast * vLast / c.RSense
	}
	for m := 0; m < c.M; m++ {
		for n := 0; n < c.N; n++ {
			vd := c.CellVoltage(res, m, n)
			if c.Linear {
				p += vd * vd / c.R[m][n]
			} else {
				p += vd * c.Dev.Current(vd, c.R[m][n])
			}
		}
	}
	return p
}

// IdealOut returns the interconnect-free, linear-device output voltages:
// the fixed-point "ideal computation result" of the accuracy model
// (Section VI), V_n = Σ_m g_mn·v_m / (g_s + Σ_m g_mn), the column form of
// Eq. 2.
func (c *Crossbar) IdealOut(vin []float64) ([]float64, error) {
	if len(vin) != c.M {
		return nil, fmt.Errorf("circuit: input vector length %d, want %d", len(vin), c.M)
	}
	gs := 1 / c.RSense
	out := make([]float64, c.N)
	for n := 0; n < c.N; n++ {
		num, den := 0.0, gs
		for m := 0; m < c.M; m++ {
			g := 1 / c.R[m][n]
			num += g * vin[m]
			den += g
		}
		out[n] = num / den
	}
	return out, nil
}
