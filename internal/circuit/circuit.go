// Package circuit is MNSIM-Go's circuit-level reference simulator — the
// stand-in for the SPICE baseline the paper validates against and times
// (Tables II–III, Fig. 5).
//
// It solves the full M×N memristor crossbar as a resistor network by
// modified nodal analysis (MNA): every cell input and output node is an
// unknown ([MN + MN] voltages, the "more than MN + M(N-1) voltage variables"
// of Section VI), wire segments between neighbouring cells carry the
// interconnect resistance r, every column terminates in a sensing resistor
// R_s, and each memristor follows the non-linear sinh I–V law of the device
// model. The non-linear system is solved with Newton–Raphson over a
// Jacobi-preconditioned conjugate-gradient linear core (the conductance
// matrix is symmetric positive definite).
//
// The package can also emit the crossbar as a SPICE netlist (Section IV.A:
// "MNSIM can generate the netlist file for circuit-level simulators like
// SPICE").
package circuit

import (
	"context"
	"errors"
	"fmt"
	"math"

	"mnsim/internal/device"
	"mnsim/internal/linalg"
	"mnsim/internal/telemetry"
)

// Solver telemetry: per-solve Newton and cumulative CG iteration
// histograms (the quantities behind the paper's Table III timing claims),
// plus solve and divergence counters. Registered at package init so every
// export lists the solver families, observed or not.
var (
	telSolves        = telemetry.GetCounter("mnsim_circuit_solves_total")
	telDiverged      = telemetry.GetCounter("mnsim_circuit_newton_divergence_total")
	telNewtonIters   = telemetry.GetHistogram("mnsim_circuit_newton_iterations", telemetry.LinearBuckets(1, 1, 20))
	telCGIters       = telemetry.GetHistogram("mnsim_circuit_cg_iterations_per_solve", telemetry.ExponentialBuckets(8, 2, 12))
	telZeroWireSolve = telemetry.GetCounter("mnsim_circuit_zero_wire_solves_total")
	telWarmSolves    = telemetry.GetCounter("mnsim_circuit_warm_start_solves_total")
	telCacheHits     = telemetry.GetCounter("mnsim_circuit_solve_cache_hits_total")
	telPreRefreshes  = telemetry.GetCounter("mnsim_circuit_precond_refreshes_total")
)

// Cost-attribution telemetry: process-wide flop/byte totals plus per-solve
// per-phase flop histograms, so /metrics answers "where does solve cost go"
// without a journal.
var (
	telSolveFlops    = telemetry.GetCounter("mnsim_solve_flops_total")
	telSolveBytes    = telemetry.GetCounter("mnsim_solve_bytes_total")
	telPhaseAssembly = telemetry.GetHistogram("mnsim_circuit_phase_assembly_flops", telemetry.ExponentialBuckets(1024, 4, 14))
	telPhaseNewton   = telemetry.GetHistogram("mnsim_circuit_phase_newton_update_flops", telemetry.ExponentialBuckets(1024, 4, 14))
	telPhaseCG       = telemetry.GetHistogram("mnsim_circuit_phase_cg_flops", telemetry.ExponentialBuckets(1024, 4, 14))
	telPhasePrecond  = telemetry.GetHistogram("mnsim_circuit_phase_precond_flops", telemetry.ExponentialBuckets(1024, 4, 14))
	telPhaseDiag     = telemetry.GetHistogram("mnsim_circuit_phase_diagnostics_flops", telemetry.ExponentialBuckets(1024, 4, 14))
)

// deviceEvalFlops is the modeled flop cost of one transcendental device
// I–V evaluation (a sinh/cosh pair plus scaling); the exact kernel counts
// elsewhere in the cost model are unaffected by this constant.
const deviceEvalFlops = 8

// coordBytes is the size of one linalg.Coord (two ints + one float64).
const coordBytes = 24

// Crossbar describes one crossbar instance to simulate at circuit level.
type Crossbar struct {
	// M is the number of rows (inputs), N the number of columns (outputs).
	M, N int
	// R holds the calibrated (programmed) resistance of each cell in ohms,
	// indexed [row][col].
	R [][]float64
	// WireR is the interconnect resistance of one wire segment between
	// neighbouring cells, in ohms.
	WireR float64
	// RSense is the column sensing (load) resistance in ohms.
	RSense float64
	// Dev supplies the non-linear I–V law. Linear selects ideal resistors
	// instead (used to isolate the interconnect contribution).
	Dev device.Model
	// Linear, when true, treats every cell as an ideal resistor at its
	// calibrated value, skipping Newton iteration.
	Linear bool
}

// Validate checks structural consistency.
func (c *Crossbar) Validate() error {
	if c.M <= 0 || c.N <= 0 {
		return fmt.Errorf("circuit: invalid crossbar size %dx%d", c.M, c.N)
	}
	if len(c.R) != c.M {
		return fmt.Errorf("circuit: R has %d rows, want %d", len(c.R), c.M)
	}
	for i, row := range c.R {
		if len(row) != c.N {
			return fmt.Errorf("circuit: R row %d has %d cols, want %d", i, len(row), c.N)
		}
		for j, r := range row {
			if r <= 0 {
				return fmt.Errorf("circuit: non-positive resistance %g at (%d,%d)", r, i, j)
			}
		}
	}
	if c.WireR < 0 {
		return fmt.Errorf("circuit: negative wire resistance %g", c.WireR)
	}
	if c.RSense <= 0 {
		return fmt.Errorf("circuit: sense resistance must be positive, got %g", c.RSense)
	}
	if !c.Linear {
		if err := c.Dev.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// Result is the DC operating point of one crossbar solve.
type Result struct {
	// VOut is the voltage across each column's sensing resistor.
	VOut []float64
	// Power is the total power delivered by the input sources in watts.
	Power float64
	// NewtonIters is the number of Newton iterations performed (1 for a
	// linear solve).
	NewtonIters int
	// CGIters is the cumulative number of conjugate-gradient iterations.
	CGIters int
	// NodeV holds all node voltages (row nodes then column nodes) for
	// callers that need cell operating points.
	NodeV []float64
	// Diag is the solve's numerical diagnostics: solver path, per-Newton
	// residual/CG trajectory, and (with SolveOptions.Diagnostics) the
	// Jacobian condition estimate.
	Diag *Diagnostics
}

// node numbering: row cell nodes first, then column cell nodes.
func (c *Crossbar) rowNode(m, n int) int { return m*c.N + n }
func (c *Crossbar) colNode(m, n int) int { return c.M*c.N + m*c.N + n }

// wireG returns the conductance of one wire segment. Zero wire resistance
// never reaches this path: Solve dispatches it to the collapsed-node solver
// (solveZeroWire) to keep the MNA matrix well conditioned.
func (c *Crossbar) wireG() float64 {
	return 1 / c.WireR
}

// solveZeroWire handles the ideal-interconnect limit. With r = 0 every row
// node sits at its source voltage and every column collapses to one node, so
// each column is an independent scalar KCL equation
//
//	Σ_m I_cell(v_m − V_n) = V_n / R_s,
//
// solved by bisection (the left side is strictly decreasing in V_n, the
// right side strictly increasing, so the root is unique).
//
// Cost attribution: the bisection loop is this path's inner solver, so its
// modeled device-evaluation cost lands in CostModel.CGLoop.
func (c *Crossbar) solveZeroWire(ctx context.Context, vin []float64, cost *CostModel) (*Result, error) {
	res := &Result{
		VOut:        make([]float64, c.N),
		NodeV:       make([]float64, 2*c.M*c.N),
		NewtonIters: 1,
	}
	for m := 0; m < c.M; m++ {
		for n := 0; n < c.N; n++ {
			res.NodeV[c.rowNode(m, n)] = vin[m]
		}
	}
	// Bisection bracket: the column voltage is a conductance-weighted
	// average of the inputs pulled toward ground by the sense resistor, so
	// the root lies in [min(vin, 0), max(vin, 0)]. Bracketing from 0 to
	// max(vin) — the historical bug — collapses the bracket to a point for
	// all-non-positive inputs and silently reports 0 V.
	vmin, vmax := 0.0, 0.0
	for _, v := range vin {
		if v > vmax {
			vmax = v
		}
		if v < vmin {
			vmin = v
		}
	}
	cellI := func(vd, r float64) float64 {
		if c.Linear {
			return vd / r
		}
		return c.Dev.Current(vd, r)
	}
	for n := 0; n < c.N; n++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("circuit: solve aborted: %w", err)
		}
		f := func(v float64) float64 {
			sum := 0.0
			for m := 0; m < c.M; m++ {
				sum += cellI(vin[m]-v, c.R[m][n])
			}
			return sum - v/c.RSense
		}
		lo, hi := vmin, vmax
		for iter := 0; iter < 100; iter++ {
			mid := (lo + hi) / 2
			if f(mid) > 0 {
				lo = mid
			} else {
				hi = mid
			}
		}
		// 100 bisection steps, each evaluating M device currents plus the
		// sense-resistor term.
		cost.cgLoop().CountFlops(100 * (int64(c.M)*(deviceEvalFlops+2) + 3))
		v := (lo + hi) / 2
		res.VOut[n] = v
		for m := 0; m < c.M; m++ {
			res.NodeV[c.colNode(m, n)] = v
		}
	}
	for m := 0; m < c.M; m++ {
		rowI := 0.0
		for n := 0; n < c.N; n++ {
			rowI += cellI(vin[m]-res.VOut[n], c.R[m][n])
		}
		res.Power += vin[m] * rowI
	}
	cost.cgLoop().CountFlops(int64(c.M) * int64(c.N) * (deviceEvalFlops + 3))
	return res, nil
}

// assembly holds the constant sparsity pattern plus the slots that Newton
// iteration rewrites.
type assembly struct {
	trips   []linalg.Coord
	memIdx  [][4]int // per cell: indices of its 4 triplets in trips
	mat     *linalg.CSR
	rhsBase []float64 // source contributions, constant across iterations
	// rhsFull is restamp's reusable output buffer (rhsBase + Newton
	// equivalent currents); kept on the assembly so a state-cached pattern
	// also reuses the per-iteration right-hand side.
	rhsFull []float64
	srcG    float64
}

func (c *Crossbar) assemble(vin []float64, ops *linalg.OpCount) (*assembly, error) {
	n2 := 2 * c.M * c.N
	a := &assembly{rhsBase: make([]float64, n2), srcG: c.wireG()}
	// Exact triplet count — row wires M·(4(N−1)+1), column wires
	// N·(4(M−1)+1), cells 4MN — so the append stream below never
	// reallocates.
	a.trips = make([]linalg.Coord, 0, 12*c.M*c.N-3*c.M-3*c.N)
	// The pattern (triplet coordinates, cell slot map) depends only on the
	// crossbar shape; every value — wire, sense, and calibrated cell
	// conductances plus the source RHS — is filled by stampValues, the same
	// code path a cached assembly restamps through, so reuse across solves
	// is bit-neutral by construction.
	// Row wires: source -> (m,0) -> (m,1) -> ... -> (m,N-1)
	for m := 0; m < c.M; m++ {
		first := c.rowNode(m, 0)
		a.trips = append(a.trips, linalg.Coord{Row: first, Col: first})
		for n := 0; n+1 < c.N; n++ {
			i, j := c.rowNode(m, n), c.rowNode(m, n+1)
			a.trips = append(a.trips,
				linalg.Coord{Row: i, Col: i},
				linalg.Coord{Row: j, Col: j},
				linalg.Coord{Row: i, Col: j},
				linalg.Coord{Row: j, Col: i})
		}
	}
	// Column wires: (0,n) -> (1,n) -> ... -> (M-1,n) -> RSense -> ground
	for n := 0; n < c.N; n++ {
		for m := 0; m+1 < c.M; m++ {
			i, j := c.colNode(m, n), c.colNode(m+1, n)
			a.trips = append(a.trips,
				linalg.Coord{Row: i, Col: i},
				linalg.Coord{Row: j, Col: j},
				linalg.Coord{Row: i, Col: j},
				linalg.Coord{Row: j, Col: i})
		}
		last := c.colNode(c.M-1, n)
		a.trips = append(a.trips, linalg.Coord{Row: last, Col: last})
	}
	// Memristor cells.
	a.memIdx = make([][4]int, c.M*c.N)
	for m := 0; m < c.M; m++ {
		for n := 0; n < c.N; n++ {
			i, j := c.rowNode(m, n), c.colNode(m, n)
			base := len(a.trips)
			a.trips = append(a.trips,
				linalg.Coord{Row: i, Col: i},
				linalg.Coord{Row: j, Col: j},
				linalg.Coord{Row: i, Col: j},
				linalg.Coord{Row: j, Col: i})
			a.memIdx[m*c.N+n] = [4]int{base, base + 1, base + 2, base + 3}
		}
	}
	c.stampValues(a, vin, ops)
	mat, err := linalg.NewCSR(n2, a.trips)
	if err != nil {
		return nil, err
	}
	a.mat = mat
	// Modeled pattern-build cost: the triplet stream scanned twice by the
	// counting-sort CSR build and the CSR arrays written once (stampValues
	// charged the value fill).
	ops.CountBytes(2*coordBytes*int64(len(a.trips)) + 16*int64(len(mat.Vals)))
	return a, nil
}

// stampValues (re)writes every triplet value and the source right-hand side
// from the current crossbar parameters and drive vector: wire and sense
// conductances, calibrated cell conductances, and the source currents. Both
// a fresh assembly and a SolverState-cached one fill values here, so the
// matrix a solve starts from is bit-identical either way.
//
// Runs once per Newton iteration over every triplet: hot path, must not
// allocate (all buffers live in the assembly).
//
//lint:hotpath
func (c *Crossbar) stampValues(a *assembly, vin []float64, ops *linalg.OpCount) {
	gw := c.wireG()
	a.srcG = gw
	for i := range a.rhsBase {
		a.rhsBase[i] = 0
	}
	k := 0
	for m := 0; m < c.M; m++ {
		a.rhsBase[c.rowNode(m, 0)] += gw * vin[m]
		a.trips[k].Val = gw
		k++
		for n := 0; n+1 < c.N; n++ {
			a.trips[k].Val = gw
			a.trips[k+1].Val = gw
			a.trips[k+2].Val = -gw
			a.trips[k+3].Val = -gw
			k += 4
		}
	}
	gs := 1 / c.RSense
	for n := 0; n < c.N; n++ {
		for m := 0; m+1 < c.M; m++ {
			a.trips[k].Val = gw
			a.trips[k+1].Val = gw
			a.trips[k+2].Val = -gw
			a.trips[k+3].Val = -gw
			k += 4
		}
		a.trips[k].Val = gs
		k++
	}
	// Cells start from the calibrated linear conductance.
	for m := 0; m < c.M; m++ {
		for n := 0; n < c.N; n++ {
			g := 1 / c.R[m][n]
			idx := a.memIdx[m*c.N+n]
			a.trips[idx[0]].Val = g
			a.trips[idx[1]].Val = g
			a.trips[idx[2]].Val = -g
			a.trips[idx[3]].Val = -g
		}
	}
	// Modeled stamping cost: one conductance inversion per cell, the
	// triplet values written once, the RHS written once.
	ops.CountFlops(int64(c.M) * int64(c.N))
	ops.CountBytes(coordBytes*int64(len(a.trips)) + 16*int64(len(a.rhsBase)))
}

// precondBlocks describes the crossbar's wire chains as preconditioner
// blocks: M contiguous row chains (stride 1) and N strided column chains
// (stride N), each tridiagonal in its local index — the structure the
// block-Jacobi preconditioner factors with bandwidth-1 banded Cholesky.
func (c *Crossbar) precondBlocks() []linalg.Block {
	blocks := make([]linalg.Block, 0, c.M+c.N)
	for m := 0; m < c.M; m++ {
		blocks = append(blocks, linalg.Block{Start: m * c.N, Stride: 1, Len: c.N})
	}
	for n := 0; n < c.N; n++ {
		blocks = append(blocks, linalg.Block{Start: c.M*c.N + n, Stride: c.N, Len: c.M})
	}
	return blocks
}

// restamp rewrites the memristor companion-model conductances for the
// current voltage estimate and returns the full right-hand side (source
// terms plus Newton equivalent current sources).
func (c *Crossbar) restamp(a *assembly, v []float64, ops *linalg.OpCount) []float64 {
	// The returned slice aliases a.rhsFull and is valid until the next
	// restamp through this assembly; the inner solve consumes it within the
	// same Newton iteration. The copy from rhsBase fully overwrites it, so
	// reuse is bit-identical to a fresh allocation.
	if cap(a.rhsFull) < len(a.rhsBase) {
		a.rhsFull = make([]float64, len(a.rhsBase))
	}
	rhs := a.rhsFull[:len(a.rhsBase)]
	copy(rhs, a.rhsBase)
	for m := 0; m < c.M; m++ {
		for n := 0; n < c.N; n++ {
			i, j := c.rowNode(m, n), c.colNode(m, n)
			vd := v[i] - v[j]
			g := c.Dev.Conductance(vd, c.R[m][n])
			ieq := c.Dev.Current(vd, c.R[m][n]) - g*vd
			idx := a.memIdx[m*c.N+n]
			a.trips[idx[0]].Val = g
			a.trips[idx[1]].Val = g
			a.trips[idx[2]].Val = -g
			a.trips[idx[3]].Val = -g
			rhs[i] -= ieq
			rhs[j] += ieq
		}
	}
	// Modeled stamping cost: per cell, two transcendental device
	// evaluations plus five arithmetic ops; traffic is the four triplet
	// writes, two node-voltage reads, and two RHS updates, plus the RHS
	// base copy.
	cells := int64(c.M) * int64(c.N)
	ops.CountFlops(cells * (2*deviceEvalFlops + 5))
	ops.CountBytes(cells*(4*coordBytes+48) + 16*int64(len(rhs)))
	return rhs
}

// Preconditioner kinds SolveOptions.Precond accepts.
const (
	// PrecondBlockJacobi factors each wire-chain block (row chains and
	// column chains, tridiagonal in their local index) with banded
	// Cholesky — the structure-aware default.
	PrecondBlockJacobi = "block-jacobi"
	// PrecondJacobi is the legacy diagonal preconditioner.
	PrecondJacobi = "jacobi"
)

// SolveOptions tunes the non-linear solve.
type SolveOptions struct {
	// Tol is the Newton convergence threshold on the max node-voltage
	// update in volts; default 1e-9.
	Tol float64
	// MaxNewton bounds Newton iterations; default 50.
	MaxNewton int
	// CGTol is the relative tolerance of each inner linear solve;
	// default 1e-10.
	CGTol float64
	// Precond selects the inner linear preconditioner: PrecondBlockJacobi
	// (the default, resolved in on empty) or PrecondJacobi. The resolved
	// value is recorded in Diagnostics.Precond and in snapshots, so a
	// replay runs the path the original solve ran.
	Precond string `json:"precond,omitempty"`
	// State, when non-nil, carries reusable solver structures across
	// repeated solves of same-shaped crossbars: the assembled sparsity
	// pattern, the block preconditioner, the previous operating point
	// (warm start), and a memo that answers bit-identical re-solves
	// without running the solver. A state must be used from one strictly
	// sequential solve stream; see SolverState.
	State *SolverState `json:"-"`
	// Diagnostics additionally computes the Jacobian condition estimate on
	// successful solves (Diagnostics.CondEstimate); the estimate always
	// runs on divergence. The convergence trajectory itself is recorded
	// regardless — this only gates the extra eigenvalue work.
	Diagnostics bool `json:"diagnostics,omitempty"`
	// NoCostAccounting disables the per-phase operation cost model
	// (Diagnostics.Cost). Accounting is on by default: it is pure integer
	// counting, costs a few percent at most, and is observational only —
	// solve outputs are bit-identical either way (asserted in tests).
	NoCostAccounting bool `json:"no_cost_accounting,omitempty"`
}

// ErrNewtonDiverged is the sentinel a failed Newton solve matches with
// errors.Is; the concrete error is a *DivergenceError carrying the
// iteration budget spent, the final residual, and the full diagnostics
// trajectory (use errors.As to get at it).
var ErrNewtonDiverged = errors.New("circuit: Newton iteration did not converge")

// Solve computes the DC operating point for the given input voltage vector
// (length M). It is a convenience wrapper over SolveContext with a
// background context.
func (c *Crossbar) Solve(vin []float64, opt SolveOptions) (*Result, error) {
	return c.SolveContext(context.Background(), vin, opt)
}

// SolveContext is Solve with a caller-supplied context: the solve's
// telemetry span nests under any span already open in ctx, so a DSE sweep
// or validation run attributes solver time to the candidate that spent it.
func (c *Crossbar) SolveContext(ctx context.Context, vin []float64, opt SolveOptions) (res *Result, err error) {
	ctx, sp := telemetry.StartSpan(ctx, "circuit.solve")
	// jid correlates this solve's journal events; snapPath carries the
	// divergence snapshot location into solve_end. Both are set below but
	// declared here so the deferred solve_end — emitted after sp.End(), so
	// it can carry the span's duration and trace/span IDs — sees them.
	jid, snapPath := "", ""
	defer func() {
		dur := sp.End()
		if res != nil {
			telSolves.Inc()
			telNewtonIters.Observe(float64(res.NewtonIters))
			telCGIters.Observe(float64(res.CGIters))
		}
		if d := diagOf(res, err); d != nil && d.Cost != nil {
			total := d.Cost.Total()
			telSolveFlops.Add(total.Flops)
			telSolveBytes.Add(total.Bytes)
			telPhaseAssembly.Observe(float64(d.Cost.Assembly.Flops))
			telPhaseNewton.Observe(float64(d.Cost.NewtonUpdate.Flops))
			telPhaseCG.Observe(float64(d.Cost.CGLoop.Flops))
			telPhasePrecond.Observe(float64(d.Cost.Precond.Flops))
			telPhaseDiag.Observe(float64(d.Cost.Diagnostics.Flops))
		}
		if jid == "" {
			return
		}
		// The solve_end event is deferred so every exit path — success,
		// divergence, CG failure, cancellation — is recorded.
		data := map[string]any{"ok": err == nil, "dur_us": float64(dur.Nanoseconds()) / 1e3}
		if res != nil {
			data["newton_iters"] = res.NewtonIters
			data["cg_iters"] = res.CGIters
		}
		if d := diagOf(res, err); d != nil {
			if d.Precond != "" {
				data["precond"] = d.Precond
				data["precond_refreshes"] = d.PrecondRefreshes
			}
			if d.WarmStart {
				data["warm_start"] = true
			}
			if d.CacheHit {
				data["cache_hit"] = true
			}
			if d.Cost != nil {
				data["cost"] = d.Cost
				data["flops"] = d.Cost.Total().Flops
			}
			if d.Convergence != nil {
				data["decay_rate"] = d.Convergence.DecayRate
				data["stagnated"] = d.Convergence.Stagnated
			}
		}
		if err != nil {
			data["err"] = err.Error()
		}
		if snapPath != "" {
			data["snapshot"] = snapPath
		}
		telemetry.EmitEventCtx(ctx, telemetry.EvSolveEnd, jid, data)
	}()
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if len(vin) != c.M {
		return nil, fmt.Errorf("circuit: input vector length %d, want %d", len(vin), c.M)
	}
	if opt.Tol <= 0 {
		opt.Tol = 1e-9
	}
	if opt.MaxNewton <= 0 {
		opt.MaxNewton = 50
	}
	if opt.CGTol <= 0 {
		opt.CGTol = 1e-10
	}
	switch opt.Precond {
	case "":
		opt.Precond = PrecondBlockJacobi
	case PrecondBlockJacobi, PrecondJacobi:
	default:
		return nil, fmt.Errorf("circuit: unknown preconditioner %q", opt.Precond)
	}
	// Cancellation contract: ctx is checked before every linear (CG) solve
	// and per bisection column, so an aborted sweep stops burning CPU
	// mid-Newton-loop; the error wraps ctx.Err().
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("circuit: solve aborted: %w", err)
	}
	// Cost accounting is on unless opted out: a nil model threads nil
	// accumulators through every kernel, which is the off switch.
	var cost *CostModel
	if !opt.NoCostAccounting {
		cost = &CostModel{}
	}
	// Flight recorder: the correlation id ties this solve's journal events
	// together (the matching solve_end is emitted by the deferred block
	// above, after the span closes).
	if telemetry.JournalOn() {
		jid = nextSolveID("solve")
		telemetry.EmitEventCtx(ctx, telemetry.EvSolveStart, jid, map[string]any{
			"m": c.M, "n": c.N, "wire_r": c.WireR, "rsense": c.RSense,
			"linear": c.Linear, "tol": opt.Tol, "max_newton": opt.MaxNewton,
			"cg_tol": opt.CGTol, "precond": opt.Precond,
		})
	}
	if c.WireR == 0 {
		telZeroWireSolve.Inc()
		res, err = c.solveZeroWire(ctx, vin, cost)
		if res != nil {
			res.Diag = &Diagnostics{Path: "zero-wire-bisection", Cost: cost}
		}
		return res, err
	}
	st := opt.State
	// Memo: a re-solve with bit-identical inputs returns the memoized
	// result (deep-copied) without touching the solver, so solving the
	// same crossbar with and without a reused state stays bit-identical.
	if hit := st.memoLookup(c, vin, opt); hit != nil {
		telCacheHits.Inc()
		res = hit
		return res, nil
	}
	// Per-phase sub-spans (assemble / setup / newton) are gated on trace
	// events being on: they exist purely for the causal timeline, and the
	// gate keeps a plain run's span count (and cost) unchanged. A nil span
	// is safe to End.
	traced := telemetry.TraceEventsOn()
	var phaseSpan *telemetry.Span
	startPhase := func(name string) {
		if traced {
			_, phaseSpan = telemetry.StartSpan(ctx, name)
		}
	}
	startPhase("assemble")
	var a *assembly
	if st != nil && st.asm != nil && st.asmM == c.M && st.asmN == c.N {
		// Reuse the cached sparsity pattern: re-stamp values and refresh
		// the CSR via UpdateValues, whose per-slot summation order matches
		// NewCSR's, so the matrix is bit-identical to a fresh assembly.
		a = st.asm
		c.stampValues(a, vin, cost.assembly())
		if err := a.mat.UpdateValues(a.trips); err != nil {
			return nil, err
		}
		cost.assembly().CountBytes(16*int64(len(a.trips)) + 8*int64(len(a.mat.Vals)))
	} else {
		a, err = c.assemble(vin, cost.assembly())
		if err != nil {
			return nil, err
		}
		if st != nil {
			st.asm, st.asmM, st.asmN = a, c.M, c.N
			st.pre = nil
		}
	}
	phaseSpan.End()
	diag := &Diagnostics{Path: "newton-cg", Precond: opt.Precond, Cost: cost}
	if c.Linear {
		diag.Path = "linear-cg"
	}
	// Structure-aware preconditioner, factored from the current calibrated
	// matrix at every solve start (so no numeric state beyond the warm
	// vector crosses solves), then frozen across Newton iterations
	// (modified Newton) and refreshed only when CG effort regresses.
	var pre linalg.Preconditioner
	var bj *linalg.BlockJacobi
	if opt.Precond == PrecondBlockJacobi {
		if st != nil && st.pre != nil {
			bj = st.pre
			if err := bj.Refresh(a.mat, cost.precond()); err != nil {
				return nil, fmt.Errorf("circuit: preconditioner: %w", err)
			}
		} else {
			bj, err = linalg.NewBlockJacobi(a.mat, c.precondBlocks(), 1, cost.precond())
			if err != nil {
				return nil, fmt.Errorf("circuit: preconditioner: %w", err)
			}
			if st != nil {
				st.pre = bj
			}
		}
		pre = bj
	}
	res = &Result{}
	n2 := 2 * c.M * c.N
	// baseline is the inner CG iteration count of the first solve after
	// the last (re)factorization — the refresh policy's reference point.
	baseline := -1
	var v []float64
	if !c.Linear && st.warmFor(c) {
		// Warm start: resume Newton from the previous operating point; the
		// setup linear solve is skipped entirely.
		v = st.warmCopy()
		cost.assembly().CountBytes(16 * int64(n2))
		diag.WarmStart = true
		telWarmSolves.Inc()
	} else {
		startPhase("setup")
		var x0 []float64
		if c.Linear && st.warmFor(c) {
			x0 = st.v
			diag.WarmStart = true
			telWarmSolves.Inc()
		}
		// Initial linear solve at calibrated resistances.
		var it int
		v, it, err = linalg.SolveCG(a.mat, a.rhsBase, x0, linalg.CGOptions{Tol: opt.CGTol, Ops: cost.cgLoop(), Precond: pre, Work: st.cgWork()})
		if err != nil {
			return nil, fmt.Errorf("circuit: linear solve: %w", err)
		}
		res.CGIters += it
		res.NewtonIters = 1
		diag.SetupCGIters = it
		baseline = it
		phaseSpan.End()
	}
	if !c.Linear {
		startPhase("newton")
		defer phaseSpan.End()
		needRefresh := false
		for iter := 0; iter < opt.MaxNewton; iter++ {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("circuit: Newton iteration aborted: %w", err)
			}
			rhs := c.restamp(a, v, cost.newtonUpdate())
			if err := a.mat.UpdateValues(a.trips); err != nil {
				return nil, err
			}
			cost.newtonUpdate().CountBytes(8*int64(len(a.mat.Vals)) + 16*int64(len(a.trips)))
			if bj != nil && needRefresh {
				// The frozen factorization fell behind the Newton stamps;
				// refactor against the current matrix and re-baseline.
				if err := bj.Refresh(a.mat, cost.precond()); err != nil {
					return nil, fmt.Errorf("circuit: preconditioner refresh: %w", err)
				}
				diag.PrecondRefreshes++
				telPreRefreshes.Inc()
				baseline = -1
				needRefresh = false
			}
			vNew, it, err := linalg.SolveCG(a.mat, rhs, v, linalg.CGOptions{Tol: opt.CGTol, Ops: cost.cgLoop(), Precond: pre, Work: st.cgWork()})
			if err != nil {
				return nil, fmt.Errorf("circuit: Newton linear solve: %w", err)
			}
			if bj != nil {
				// Deterministic modified-Newton refresh policy: refresh
				// before the next solve when this one needed more than
				// 2·baseline+8 iterations — regression past the slack means
				// the frozen factorization stopped pulling its weight.
				if baseline < 0 {
					baseline = it
				} else if it > 2*baseline+8 {
					needRefresh = true
				}
			}
			res.CGIters += it
			res.NewtonIters++
			delta := 0.0
			for i := range v {
				if d := math.Abs(vNew[i] - v[i]); d > delta {
					delta = d
				}
			}
			cost.newtonUpdate().CountVecOp(len(v), 2) // ΔV convergence scan
			v = vNew
			diag.Residuals = append(diag.Residuals, delta)
			diag.CGIters = append(diag.CGIters, it)
			if jid != "" {
				telemetry.EmitEventCtx(ctx, telemetry.EvNewtonIter, jid, map[string]any{
					"iter": iter, "max_dv": jsonFinite(delta), "cg_iters": it,
				})
			}
			if delta < opt.Tol {
				break
			}
			if iter == opt.MaxNewton-1 {
				telDiverged.Inc()
				diag.CondEstimate = jsonFinite(linalg.EstimateCondOps(a.mat, cost.diagnostics()))
				diag.analyze()
				derr := &DivergenceError{Iters: opt.MaxNewton, FinalResidual: delta, Diag: diag}
				telemetry.Log().Warn("newton iteration diverged",
					"size", fmt.Sprintf("%dx%d", c.M, c.N), "max_newton", opt.MaxNewton, "tol", opt.Tol)
				if telemetry.JournalOn() {
					snap := c.NewSnapshot(vin, opt, nil, derr)
					if diag.WarmStart {
						// Record the warm-start vector the trajectory began
						// from, so a replay reproduces it bit-identically.
						snap.WarmV = st.WarmV()
					}
					snapPath = saveSnapshot("divergence", snap)
				}
				return nil, derr
			}
		}
	}
	// Idempotent: closes the newton phase span on the converged path (the
	// deferred End covers the error returns above).
	phaseSpan.End()
	if opt.Diagnostics {
		diag.CondEstimate = jsonFinite(linalg.EstimateCondOps(a.mat, cost.diagnostics()))
	}
	diag.analyze()
	res.Diag = diag
	res.NodeV = v
	if st != nil {
		// With a state, v aliases its reusable CG/warm scratch; the result
		// outlives the next solve through the state, so it gets its own
		// storage.
		res.NodeV = append([]float64(nil), v...)
	}
	res.VOut = c.extractVOut(v)
	res.Power = c.sourcePower(vin, v)
	// A converged solve feeds the state: its operating point warm-starts
	// the next solve, and its result answers bit-identical re-solves.
	st.store(c, vin, opt, res)
	return res, nil
}

// diagOf extracts the diagnostics of a finished solve from whichever side
// carries them: the result on success, the typed error on divergence.
func diagOf(res *Result, err error) *Diagnostics {
	if res != nil && res.Diag != nil {
		return res.Diag
	}
	var de *DivergenceError
	if errors.As(err, &de) {
		return de.Diag
	}
	return nil
}

// extractVOut reads the sense-node voltages of the solved network.
func (c *Crossbar) extractVOut(v []float64) []float64 {
	out := make([]float64, c.N)
	for n := 0; n < c.N; n++ {
		out[n] = v[c.colNode(c.M-1, n)]
	}
	return out
}

// sourcePower sums the power each source delivers driving its row
// through the first wire segment.
func (c *Crossbar) sourcePower(vin, v []float64) float64 {
	gw := c.wireG()
	p := 0.0
	for m := 0; m < c.M; m++ {
		i := gw * (vin[m] - v[c.rowNode(m, 0)])
		p += vin[m] * i
	}
	return p
}

// CellVoltage returns the voltage across cell (m,n) in a solved result.
func (c *Crossbar) CellVoltage(res *Result, m, n int) float64 {
	return res.NodeV[c.rowNode(m, n)] - res.NodeV[c.colNode(m, n)]
}

// DissipatedPower sums the power burned in every element of the solved
// network (wires, cells, sense resistors). For a correct DC solution it
// equals the source power; the solver tests use it as an energy-conservation
// check.
func (c *Crossbar) DissipatedPower(res *Result, vin []float64) float64 {
	p := 0.0
	if c.WireR > 0 {
		gw := c.wireG()
		for m := 0; m < c.M; m++ {
			dv := vin[m] - res.NodeV[c.rowNode(m, 0)]
			p += dv * dv * gw
			for n := 0; n+1 < c.N; n++ {
				dv := res.NodeV[c.rowNode(m, n)] - res.NodeV[c.rowNode(m, n+1)]
				p += dv * dv * gw
			}
		}
		for n := 0; n < c.N; n++ {
			for m := 0; m+1 < c.M; m++ {
				dv := res.NodeV[c.colNode(m, n)] - res.NodeV[c.colNode(m+1, n)]
				p += dv * dv * gw
			}
		}
	}
	for n := 0; n < c.N; n++ {
		vLast := res.NodeV[c.colNode(c.M-1, n)]
		p += vLast * vLast / c.RSense
	}
	for m := 0; m < c.M; m++ {
		for n := 0; n < c.N; n++ {
			vd := c.CellVoltage(res, m, n)
			if c.Linear {
				p += vd * vd / c.R[m][n]
			} else {
				p += vd * c.Dev.Current(vd, c.R[m][n])
			}
		}
	}
	return p
}

// IdealOut returns the interconnect-free, linear-device output voltages:
// the fixed-point "ideal computation result" of the accuracy model
// (Section VI), V_n = Σ_m g_mn·v_m / (g_s + Σ_m g_mn), the column form of
// Eq. 2.
func (c *Crossbar) IdealOut(vin []float64) ([]float64, error) {
	if len(vin) != c.M {
		return nil, fmt.Errorf("circuit: input vector length %d, want %d", len(vin), c.M)
	}
	gs := 1 / c.RSense
	out := make([]float64, c.N)
	for n := 0; n < c.N; n++ {
		num, den := 0.0, gs
		for m := 0; m < c.M; m++ {
			g := 1 / c.R[m][n]
			num += g * vin[m]
			den += g
		}
		out[n] = num / den
	}
	return out, nil
}
