package circuit

import (
	"errors"
	"testing"
)

func TestSettleTimeBasic(t *testing.T) {
	c := &Crossbar{M: 8, N: 8, R: uniformR(8, 8, 100e3), WireR: 0.5, RSense: 1500, Linear: true}
	vin := make([]float64, 8)
	for i := range vin {
		vin[i] = 0.3
	}
	ts, err := c.SettleTime(vin, TransientOptions{NodeCap: 0.1e-15})
	if err != nil {
		t.Fatal(err)
	}
	if ts <= 0 {
		t.Fatalf("settle time %v", ts)
	}
	// Larger node capacitance settles more slowly.
	slow, err := c.SettleTime(vin, TransientOptions{NodeCap: 0.4e-15})
	if err != nil {
		t.Fatal(err)
	}
	if slow <= ts {
		t.Fatalf("4x capacitance settle %v not above %v", slow, ts)
	}
}

func TestSettleTimeGrowsWithSize(t *testing.T) {
	times := map[int]float64{}
	for _, sz := range []int{8, 16} {
		c := &Crossbar{M: sz, N: sz, R: uniformR(sz, sz, 100e3), WireR: 2.0, RSense: 1500, Linear: true}
		vin := make([]float64, sz)
		for i := range vin {
			vin[i] = 0.3
		}
		ts, err := c.SettleTime(vin, TransientOptions{NodeCap: 0.1e-15})
		if err != nil {
			t.Fatal(err)
		}
		times[sz] = ts
	}
	if times[16] < times[8] {
		t.Fatalf("16x16 settles faster (%v) than 8x8 (%v)", times[16], times[8])
	}
}

func TestSettleTimeErrors(t *testing.T) {
	c := &Crossbar{M: 2, N: 2, R: uniformR(2, 2, 1e3), WireR: 1, RSense: 100, Linear: true}
	if _, err := c.SettleTime([]float64{0.3}, TransientOptions{NodeCap: 1e-15}); err == nil {
		t.Error("short input accepted")
	}
	if _, err := c.SettleTime([]float64{0.3, 0.3}, TransientOptions{}); err == nil {
		t.Error("zero capacitance accepted")
	}
	zeroWire := &Crossbar{M: 2, N: 2, R: uniformR(2, 2, 1e3), WireR: 0, RSense: 100, Linear: true}
	if _, err := zeroWire.SettleTime([]float64{0.3, 0.3}, TransientOptions{NodeCap: 1e-15}); err == nil {
		t.Error("zero wire accepted")
	}
	bad := &Crossbar{M: 0}
	if _, err := bad.SettleTime(nil, TransientOptions{NodeCap: 1e-15}); err == nil {
		t.Error("invalid crossbar accepted")
	}
	// Too few steps to settle: a typed ErrNotSettled carrying the budget
	// spent and the remaining deviation, not an opaque formatted string.
	_, err := c.SettleTime([]float64{0.3, 0.3}, TransientOptions{NodeCap: 1e-15, MaxSteps: 1, Dt: 1e-15})
	if err == nil {
		t.Fatal("unsettleable budget accepted")
	}
	if !errors.Is(err, ErrNotSettled) {
		t.Fatalf("errors.Is(err, ErrNotSettled) false for %v", err)
	}
	var ns *NotSettledError
	if !errors.As(err, &ns) {
		t.Fatalf("errors.As *NotSettledError false for %T", err)
	}
	if ns.Steps != 1 {
		t.Errorf("NotSettledError.Steps = %d, want 1", ns.Steps)
	}
	if ns.LastMaxDV <= 0 {
		t.Errorf("NotSettledError.LastMaxDV = %v, want > 0", ns.LastMaxDV)
	}
	// Input-validation failures are NOT settle failures.
	if _, err := c.SettleTime([]float64{0.3}, TransientOptions{NodeCap: 1e-15}); errors.Is(err, ErrNotSettled) {
		t.Error("validation error matches ErrNotSettled")
	}
}
