package circuit

import (
	"math"
	"testing"

	"mnsim/internal/device"
)

// costCrossbar builds a small nonlinear crossbar with a deterministic
// resistance pattern for the cost-model tests.
func costCrossbar(m, n int) (*Crossbar, []float64) {
	dev := device.RRAM()
	r := make([][]float64, m)
	for i := range r {
		r[i] = make([]float64, n)
		for j := range r[i] {
			r[i][j] = dev.RMin + float64((i*n+j)%7)/7*(dev.RMax-dev.RMin)
		}
	}
	vin := make([]float64, m)
	for i := range vin {
		vin[i] = dev.ReadVoltage * float64(1+i%3) / 3
	}
	return &Crossbar{M: m, N: n, R: r, WireR: 2.5, RSense: 1e3, Dev: dev}, vin
}

// TestCostAccountingBitIdentical is the neutrality contract: a solve with
// accounting enabled must produce bit-identical outputs to one with
// accounting disabled.
func TestCostAccountingBitIdentical(t *testing.T) {
	c, vin := costCrossbar(8, 8)
	on, err := c.Solve(vin, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	off, err := c.Solve(vin, SolveOptions{NoCostAccounting: true})
	if err != nil {
		t.Fatal(err)
	}
	if on.NewtonIters != off.NewtonIters || on.CGIters != off.CGIters {
		t.Fatalf("iteration counts differ: %d/%d vs %d/%d",
			on.NewtonIters, on.CGIters, off.NewtonIters, off.CGIters)
	}
	for i := range on.NodeV {
		//lint:ignore nofloateq accounting neutrality is an exact-equality contract by design
		if on.NodeV[i] != off.NodeV[i] {
			t.Fatalf("NodeV[%d] differs: %v vs %v", i, on.NodeV[i], off.NodeV[i])
		}
	}
	//lint:ignore nofloateq accounting neutrality is an exact-equality contract by design
	if on.Power != off.Power {
		t.Fatalf("Power differs: %v vs %v", on.Power, off.Power)
	}
	if on.Diag.Cost == nil {
		t.Fatal("accounting on: Diag.Cost missing")
	}
	if off.Diag.Cost != nil {
		t.Fatal("accounting off: Diag.Cost unexpectedly present")
	}
}

// TestCostModelPhases checks the attribution lands where the pipeline
// spends it: assembly once, newton updates per iteration, the CG loop
// dominating, diagnostics only when requested.
func TestCostModelPhases(t *testing.T) {
	c, vin := costCrossbar(8, 8)
	res, err := c.Solve(vin, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cost := res.Diag.Cost
	if cost == nil {
		t.Fatal("no cost model on default solve")
	}
	if cost.Assembly.Flops == 0 || cost.Assembly.Bytes == 0 {
		t.Errorf("assembly phase empty: %+v", cost.Assembly)
	}
	if cost.NewtonUpdate.Flops == 0 {
		t.Errorf("newton-update phase empty: %+v", cost.NewtonUpdate)
	}
	if cost.CGLoop.SpMVs == 0 || cost.CGLoop.Flops == 0 {
		t.Errorf("cg-loop phase empty: %+v", cost.CGLoop)
	}
	if cost.Diagnostics.Flops != 0 {
		t.Errorf("diagnostics phase nonzero without opt.Diagnostics: %+v", cost.Diagnostics)
	}
	// The CG inner loop must dominate a Newton–CG solve.
	total := cost.Total()
	if cost.CGLoop.Flops*2 < total.Flops {
		t.Errorf("cg-loop %d flops is under half of total %d", cost.CGLoop.Flops, total.Flops)
	}
	// SpMV count ties to iteration structure: one per CG iteration plus
	// one residual product per CG call (setup + one per Newton step).
	calls := int64(1 + len(res.Diag.CGIters))
	if want := int64(res.CGIters) + calls; cost.CGLoop.SpMVs != want {
		t.Errorf("cg-loop SpMVs = %d, want %d (cg iters %d, calls %d)",
			cost.CGLoop.SpMVs, want, res.CGIters, calls)
	}
	// With diagnostics requested, the estimator's cost is attributed.
	res2, err := c.Solve(vin, SolveOptions{Diagnostics: true})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Diag.Cost.Diagnostics.Flops == 0 {
		t.Errorf("diagnostics phase empty with opt.Diagnostics: %+v", res2.Diag.Cost.Diagnostics)
	}
	if res2.Diag.CondEstimate <= 0 {
		t.Errorf("cond estimate missing: %v", res2.Diag.CondEstimate)
	}
}

// TestZeroWireCostAttribution: the bisection path books its device
// evaluations under the inner-loop phase.
func TestZeroWireCostAttribution(t *testing.T) {
	c, vin := costCrossbar(4, 4)
	c.WireR = 0
	res, err := c.Solve(vin, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Diag == nil || res.Diag.Cost == nil {
		t.Fatal("zero-wire solve missing cost model")
	}
	if res.Diag.Cost.CGLoop.Flops == 0 {
		t.Errorf("zero-wire inner loop booked no flops: %+v", res.Diag.Cost)
	}
	if res.Diag.Cost.Assembly.Flops != 0 {
		t.Errorf("zero-wire solve booked assembly flops: %+v", res.Diag.Cost.Assembly)
	}
}

// TestConvergenceAnalytics: a healthy Newton solve contracts (decay rate
// well under 1, no stagnation) and reports the mean CG effort per step.
func TestConvergenceAnalytics(t *testing.T) {
	c, vin := costCrossbar(8, 8)
	res, err := c.Solve(vin, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	conv := res.Diag.Convergence
	if conv == nil {
		t.Fatal("no convergence analytics on nonlinear solve")
	}
	// The decay rate is defined over the nonzero residual prefix — a
	// trailing exact zero is the warm-start early exit confirming
	// convergence for free.
	nonzero := res.Diag.Residuals
	for len(nonzero) > 0 && nonzero[len(nonzero)-1] == 0 {
		nonzero = nonzero[:len(nonzero)-1]
	}
	if len(nonzero) >= 2 {
		if !(conv.DecayRate > 0) || conv.DecayRate >= stagnationRatio {
			t.Errorf("healthy solve decay rate = %v, want in (0, %v)", conv.DecayRate, stagnationRatio)
		}
	}
	if conv.Stagnated {
		t.Errorf("healthy solve flagged stagnated (residuals %v)", res.Diag.Residuals)
	}
	if conv.CGPerNewton <= 0 {
		t.Errorf("CGPerNewton = %v, want > 0", conv.CGPerNewton)
	}
}

// TestStagnationFlagOnDivergence: a diverging trajectory must trip the
// stagnation flag and carry a cost model on the typed error.
func TestStagnationFlagOnDivergence(t *testing.T) {
	dev := device.RRAM()
	dev.NonlinearVc = 2e-3 // far too steep for Newton — the known-bad specimen
	r := [][]float64{{100e3, 100e3}, {100e3, 100e3}}
	c := &Crossbar{M: 2, N: 2, R: r, WireR: 1, RSense: 1500, Dev: dev}
	_, err := c.Solve([]float64{0.3, 0.3}, SolveOptions{MaxNewton: 5})
	de, ok := err.(*DivergenceError)
	if !ok {
		t.Fatalf("want *DivergenceError, got %v", err)
	}
	if de.Diag.Convergence == nil || !de.Diag.Convergence.Stagnated {
		t.Errorf("diverging solve not flagged stagnated: %+v", de.Diag.Convergence)
	}
	if de.Diag.Cost == nil || de.Diag.Cost.Total().Flops == 0 {
		t.Errorf("diverging solve carries no cost model: %+v", de.Diag.Cost)
	}
}

// TestAnalyzeDecayRate pins the decay-rate formula on a synthetic
// trajectory: residuals halving each step give rate 0.5.
func TestAnalyzeDecayRate(t *testing.T) {
	d := &Diagnostics{Residuals: []float64{1, 0.5, 0.25, 0.125}, CGIters: []int{10, 20, 30, 40}}
	d.analyze()
	if d.Convergence == nil {
		t.Fatal("analyze produced nothing")
	}
	if math.Abs(d.Convergence.DecayRate-0.5) > 1e-12 {
		t.Errorf("decay rate = %v, want 0.5", d.Convergence.DecayRate)
	}
	if d.Convergence.Stagnated {
		t.Error("halving trajectory flagged stagnated")
	}
	if math.Abs(d.Convergence.CGPerNewton-25) > 1e-12 {
		t.Errorf("cg/newton = %v, want 25", d.Convergence.CGPerNewton)
	}
	flat := &Diagnostics{Residuals: []float64{1, 0.99, 0.985, 0.98}}
	flat.analyze()
	if !flat.Convergence.Stagnated {
		t.Error("flat trajectory not flagged stagnated")
	}
}
