package circuit

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"mnsim/internal/device"
	"mnsim/internal/telemetry"
)

// BenchmarkSolve times one non-linear crossbar solve and reports the
// Newton and CG iteration counts alongside ns/op, so an iteration-count
// regression (a solver that still converges but works harder for it)
// shows up in the bench trajectory even when wall time hides it behind
// machine noise.
func BenchmarkSolve(b *testing.B) {
	for _, size := range []int{16, 32, 64, 256} {
		b.Run(benchName(size), func(b *testing.B) {
			dev := device.RRAM()
			rng := rand.New(rand.NewSource(1))
			c := &Crossbar{
				M: size, N: size,
				R:      randomR(size, size, dev, rng),
				WireR:  2.5,
				RSense: 1e3,
				Dev:    dev,
			}
			vin := make([]float64, size)
			for i := range vin {
				vin[i] = 2 * dev.ReadVoltage * rng.Float64()
			}
			var newton, cg, flops, refreshes int64
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := c.Solve(vin, SolveOptions{})
				if err != nil {
					b.Fatal(err)
				}
				newton += int64(res.NewtonIters)
				cg += int64(res.CGIters)
				flops += res.Diag.Cost.Total().Flops
				refreshes += int64(res.Diag.PrecondRefreshes)
			}
			b.ReportMetric(float64(newton)/float64(b.N), "newton-iters/op")
			b.ReportMetric(float64(cg)/float64(b.N), "cg-iters/op")
			b.ReportMetric(float64(flops)/float64(b.N), "flops/op")
			b.ReportMetric(float64(refreshes)/float64(b.N), "precond-refreshes/op")
		})
	}
}

// BenchmarkSolveWarm times the warm-start path: one SolverState threaded
// through a stream of solves whose inputs drift deterministically, the
// shape of a DSE candidate evaluation or Monte-Carlo trial sequence. The
// interesting metric is cg-iters/op relative to the cold BenchmarkSolve.
func BenchmarkSolveWarm(b *testing.B) {
	const size = 64
	dev := device.RRAM()
	rng := rand.New(rand.NewSource(1))
	c := &Crossbar{
		M: size, N: size,
		R:      randomR(size, size, dev, rng),
		WireR:  2.5,
		RSense: 1e3,
		Dev:    dev,
	}
	base := make([]float64, size)
	for i := range base {
		base[i] = 2 * dev.ReadVoltage * rng.Float64()
	}
	vin := make([]float64, size)
	st := NewSolverState()
	// One warm-up solve outside the timer so the state's scratch buffers
	// (CG work vectors, preconditioner factors, warm vector) are already
	// grown: the timed region then measures the steady state, which is
	// what the allocs/op gate pins to ~0 solver-side allocations.
	copy(vin, base)
	if _, err := c.Solve(vin, SolveOptions{State: st}); err != nil {
		b.Fatal(err)
	}
	var cg, refreshes int64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Deterministic per-iteration drift (no mid-loop rand): each solve
		// sees a slightly different input, so the memo never hits and the
		// warm start does real work.
		scale := 1 + 1e-3*float64(i%7)
		for m := range vin {
			vin[m] = base[m] * scale
		}
		res, err := c.Solve(vin, SolveOptions{State: st})
		if err != nil {
			b.Fatal(err)
		}
		cg += int64(res.CGIters)
		refreshes += int64(res.Diag.PrecondRefreshes)
	}
	b.ReportMetric(float64(cg)/float64(b.N), "cg-iters/op")
	b.ReportMetric(float64(refreshes)/float64(b.N), "precond-refreshes/op")
}

// BenchmarkSolveAccounting isolates the cost-accounting overhead at the
// largest BenchmarkSolve size: the on/off pair bounds what the always-on
// attribution costs (the acceptance budget is 5% on ns/op — in practice
// nil-receiver count methods on int64 fields disappear into the CG
// memory traffic).
func BenchmarkSolveAccounting(b *testing.B) {
	const size = 64
	for _, bc := range []struct {
		name string
		opt  SolveOptions
	}{
		{"on", SolveOptions{}},
		{"off", SolveOptions{NoCostAccounting: true}},
	} {
		b.Run(bc.name, func(b *testing.B) {
			dev := device.RRAM()
			rng := rand.New(rand.NewSource(1))
			c := &Crossbar{
				M: size, N: size,
				R:      randomR(size, size, dev, rng),
				WireR:  2.5,
				RSense: 1e3,
				Dev:    dev,
			}
			vin := make([]float64, size)
			for i := range vin {
				vin[i] = 2 * dev.ReadVoltage * rng.Float64()
			}
			var cg int64
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := c.Solve(vin, bc.opt)
				if err != nil {
					b.Fatal(err)
				}
				cg += int64(res.CGIters)
			}
			b.ReportMetric(float64(cg)/float64(b.N), "cg-iters/op")
		})
	}
}

// BenchmarkSolveTraced isolates the causal-tracing overhead, mirroring the
// BenchmarkSolveAccounting on/off pair: "on" retains span records in the
// trace ring (plus the gated per-phase sub-spans), "off" is the plain
// solve. The acceptance budget is 5% on ns/op; the off side must stay in
// the noise because the only added cost there is one atomic load per
// solve. Results are bit-identity-asserted separately in
// TestTracingNumericallyNeutral.
func BenchmarkSolveTraced(b *testing.B) {
	const size = 64
	for _, bc := range []struct {
		name   string
		traced bool
	}{
		{"on", true},
		{"off", false},
	} {
		b.Run(bc.name, func(b *testing.B) {
			if bc.traced {
				telemetry.SetTraceSeed(1)
				telemetry.EnableTraceEvents(1 << 12)
				b.Cleanup(func() { telemetry.DefaultTracer().ResetTraceEvents() })
			}
			dev := device.RRAM()
			rng := rand.New(rand.NewSource(1))
			c := &Crossbar{
				M: size, N: size,
				R:      randomR(size, size, dev, rng),
				WireR:  2.5,
				RSense: 1e3,
				Dev:    dev,
			}
			vin := make([]float64, size)
			for i := range vin {
				vin[i] = 2 * dev.ReadVoltage * rng.Float64()
			}
			var cg int64
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := c.Solve(vin, SolveOptions{})
				if err != nil {
					b.Fatal(err)
				}
				cg += int64(res.CGIters)
			}
			b.ReportMetric(float64(cg)/float64(b.N), "cg-iters/op")
		})
	}
}

// BenchmarkSolveSampled isolates the resource-sampler overhead, mirroring
// the BenchmarkSolveAccounting / BenchmarkSolveTraced on/off pairs: "on"
// runs the runtime/metrics sampler concurrently at its default 1s cadence,
// "off" is the plain solve. The sampler never touches solver state — the
// acceptance budget is 5% on ns/op, and in practice the on side is pure
// scheduler noise because a 1s tick amortizes to nothing per solve.
// Bit-identity is asserted separately in
// TestResourceSamplingNumericallyNeutral.
func BenchmarkSolveSampled(b *testing.B) {
	const size = 64
	for _, bc := range []struct {
		name    string
		sampled bool
	}{
		{"on", true},
		{"off", false},
	} {
		b.Run(bc.name, func(b *testing.B) {
			if bc.sampled {
				// The benchmark body re-runs during iteration-count
				// calibration; the sampler from the previous invocation is
				// still up then, so an already-running error is expected and
				// fine — the registered Stop is idempotent either way.
				s := telemetry.DefaultResourceSampler()
				if err := s.Start(context.Background(), telemetry.ResourceConfig{}); err == nil {
					b.Cleanup(s.Stop)
				}
			}
			dev := device.RRAM()
			rng := rand.New(rand.NewSource(1))
			c := &Crossbar{
				M: size, N: size,
				R:      randomR(size, size, dev, rng),
				WireR:  2.5,
				RSense: 1e3,
				Dev:    dev,
			}
			vin := make([]float64, size)
			for i := range vin {
				vin[i] = 2 * dev.ReadVoltage * rng.Float64()
			}
			var cg int64
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := c.Solve(vin, SolveOptions{})
				if err != nil {
					b.Fatal(err)
				}
				cg += int64(res.CGIters)
			}
			b.ReportMetric(float64(cg)/float64(b.N), "cg-iters/op")
		})
	}
}

func benchName(size int) string {
	return fmt.Sprintf("%dx%d", size, size)
}
