package circuit

import (
	"fmt"
	"math"

	"mnsim/internal/linalg"
	"mnsim/internal/telemetry"
)

// TransientOptions tunes SettleTime.
type TransientOptions struct {
	// NodeCap is the wire capacitance attached to every internal node in
	// farads (one segment's worth per node).
	NodeCap float64
	// CellCap is the additional parasitic capacitance each cell presents to
	// its column node (device.Model.CellCap); rows are driven by stiff
	// sources, so the cell capacitance appears at the column side.
	CellCap float64
	// SettleFrac is the convergence criterion: settled when every output is
	// within SettleFrac of its final DC value. Default 1/512 (half an LSB
	// at 8 bits).
	SettleFrac float64
	// Dt is the backward-Euler step; the default resolves the dominant
	// output pole, RSense·M·(NodeCap+CellCap)/50 — fifty steps per
	// worst-case column time constant (the sense resistor driving all M
	// column-node capacitances) — with a floor of 1 fs.
	Dt float64
	// MaxSteps bounds the integration; default 100000.
	MaxSteps int
}

// SettleTime measures the crossbar's output settling latency by transient
// (backward-Euler) simulation of the full RC network — the circuit-level
// latency reference the behavioural Elmore model is validated against
// (Table II). Cells are linearised at their calibrated resistance, which is
// accurate for settling behaviour since the non-linear deviation is a
// small-signal effect at the operating point.
//
// The grid starts discharged (all nodes at 0 V) and the inputs step to vin
// at t = 0; the returned time is when every column output has come within
// SettleFrac of its DC value.
func (c *Crossbar) SettleTime(vin []float64, opt TransientOptions) (float64, error) {
	if err := c.Validate(); err != nil {
		return 0, err
	}
	if len(vin) != c.M {
		return 0, fmt.Errorf("circuit: input vector length %d, want %d", len(vin), c.M)
	}
	if c.WireR == 0 {
		return 0, fmt.Errorf("circuit: transient needs a resistive wire model")
	}
	if opt.NodeCap <= 0 {
		return 0, fmt.Errorf("circuit: node capacitance must be positive")
	}
	if opt.SettleFrac <= 0 {
		opt.SettleFrac = 1.0 / 512
	}
	if opt.Dt <= 0 {
		// Resolve the dominant pole (≤ R_s · column capacitance) with ~50
		// steps per time constant.
		opt.Dt = c.RSense * float64(c.M) * (opt.NodeCap + opt.CellCap) / 50
		if opt.Dt < 1e-15 {
			opt.Dt = 1e-15
		}
	}
	if opt.MaxSteps <= 0 {
		opt.MaxSteps = 100000
	}
	// Flight recorder: one transient_settle event per run, emitted at the
	// settle/non-settle outcome with the resolved options in scope.
	jid := ""
	if telemetry.JournalOn() {
		jid = nextSolveID("transient")
	}
	lin := *c
	lin.Linear = true
	a, err := lin.assemble(vin, nil)
	if err != nil {
		return 0, err
	}
	// The conductance matrix shares the crossbar's wire-chain structure, so
	// the block preconditioner serves both the DC target solve and — after
	// a refresh against the capacitance-augmented matrix, which only adds
	// to the same diagonal — every backward-Euler step.
	pre, err := linalg.NewBlockJacobi(a.mat, c.precondBlocks(), 1, nil)
	if err != nil {
		return 0, fmt.Errorf("circuit: preconditioner: %w", err)
	}
	// DC target for the settling criterion.
	final, _, err := linalg.SolveCG(a.mat, a.rhsBase, nil, linalg.CGOptions{Tol: 1e-10, Precond: pre})
	if err != nil {
		return 0, fmt.Errorf("circuit: DC solve: %w", err)
	}
	// Backward Euler: (G + C/dt)·v_{t+dt} = C/dt·v_t + b. Build G + C/dt by
	// adding C/dt to every diagonal of the stamped pattern.
	n2 := 2 * c.M * c.N
	half := c.M * c.N // column nodes start here
	caps := make([]float64, n2)
	for i := 0; i < n2; i++ {
		caps[i] = opt.NodeCap
		if i >= half {
			caps[i] += opt.CellCap
		}
	}
	trips := make([]linalg.Coord, len(a.trips), len(a.trips)+n2)
	copy(trips, a.trips)
	for i := 0; i < n2; i++ {
		trips = append(trips, linalg.Coord{Row: i, Col: i, Val: caps[i] / opt.Dt})
	}
	mat, err := linalg.NewCSR(n2, trips)
	if err != nil {
		return 0, err
	}
	// The stepping matrix is constant, so one refresh preconditions every
	// step of the integration.
	if err := pre.Refresh(mat, nil); err != nil {
		return 0, fmt.Errorf("circuit: preconditioner: %w", err)
	}
	v := make([]float64, n2) // discharged start
	rhs := make([]float64, n2)
	// settled also reports the worst remaining output deviation in volts,
	// so a non-settle failure can say how far from done it still was.
	lastMaxDV := 0.0
	settled := func() bool {
		ok := true
		worst := 0.0
		for n := 0; n < c.N; n++ {
			idx := c.colNode(c.M-1, n)
			f := final[idx]
			d := math.Abs(v[idx] - f)
			if d > worst {
				worst = d
			}
			if d > opt.SettleFrac*math.Max(math.Abs(f), 1e-12) {
				ok = false
			}
		}
		lastMaxDV = worst
		return ok
	}
	for step := 1; step <= opt.MaxSteps; step++ {
		copy(rhs, a.rhsBase)
		for i := 0; i < n2; i++ {
			rhs[i] += caps[i] / opt.Dt * v[i]
		}
		v, _, err = linalg.SolveCG(mat, rhs, v, linalg.CGOptions{Tol: 1e-9, Precond: pre})
		if err != nil {
			return 0, fmt.Errorf("circuit: transient step %d: %w", step, err)
		}
		if settled() {
			t := float64(step) * opt.Dt
			if jid != "" {
				telemetry.EmitEvent(telemetry.EvTransientSettle, jid, map[string]any{
					"ok": true, "steps": step, "settle_seconds": t, "dt": opt.Dt,
				})
			}
			return t, nil
		}
	}
	nerr := &NotSettledError{Steps: opt.MaxSteps, LastMaxDV: lastMaxDV}
	if telemetry.JournalOn() {
		snapPath := saveSnapshot("transient",
			c.newTransientSnapshot(vin, opt, 0, opt.MaxSteps, lastMaxDV, nerr))
		data := map[string]any{
			"ok": false, "steps": opt.MaxSteps,
			"last_max_dv": jsonFinite(lastMaxDV), "err": nerr.Error(),
		}
		if snapPath != "" {
			data["snapshot"] = snapPath
		}
		telemetry.EmitEvent(telemetry.EvTransientSettle, jid, data)
	}
	return 0, nerr
}
