package circuit

import (
	"errors"
	"path/filepath"
	"testing"

	"mnsim/internal/device"
	"mnsim/internal/telemetry"
)

// withTestJournal routes the default journal to a temp file for the test
// and restores the disabled state afterwards.
func withTestJournal(t *testing.T) string {
	t.Helper()
	j := telemetry.DefaultJournal()
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	if err := j.Open(path); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		j.Close()
		j.Reset()
	})
	return path
}

func divergentCrossbar() *Crossbar {
	dev := device.RRAM()
	dev.NonlinearVc = 2e-3
	return &Crossbar{M: 2, N: 2, R: uniformR(2, 2, 100e3), WireR: 1, RSense: 1500, Dev: dev}
}

// A diverging solve with the journal enabled must leave a full trail: a
// solve_start/newton_iter/solve_end event chain, a snapshot referenced from
// solve_end, and a snapshot file that loads, validates, and records the
// divergence outcome.
func TestDivergenceJournalAndSnapshot(t *testing.T) {
	path := withTestJournal(t)
	c := divergentCrossbar()
	_, err := c.Solve([]float64{0.3, 0.3}, SolveOptions{MaxNewton: 5})
	if !errors.Is(err, ErrNewtonDiverged) {
		t.Fatalf("want divergence, got %v", err)
	}
	telemetry.DefaultJournal().Close()

	events, err := telemetry.ReadJournalFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var starts, iters, ends int
	for _, ev := range events {
		switch ev.Type {
		case telemetry.EvSolveStart:
			starts++
		case telemetry.EvNewtonIter:
			iters++
		case telemetry.EvSolveEnd:
			ends++
			if ok, _ := ev.Data["ok"].(bool); ok {
				t.Errorf("solve_end ok=true for diverged solve")
			}
		}
	}
	if starts != 1 || ends != 1 || iters != 5 {
		t.Fatalf("event counts start/iter/end = %d/%d/%d, want 1/5/1", starts, iters, ends)
	}
	snaps := telemetry.JournalSnapshotPaths(path, events)
	if len(snaps) != 1 {
		t.Fatalf("journal references %d snapshots, want 1", len(snaps))
	}
	snap, err := LoadSnapshot(snaps[0])
	if err != nil {
		t.Fatal(err)
	}
	if snap.Kind != "dc" || snap.Outcome.OK || snap.Outcome.Err == "" {
		t.Fatalf("snapshot outcome %+v", snap.Outcome)
	}
	if snap.Outcome.NewtonIters != 5 || len(snap.Outcome.Residuals) != 5 {
		t.Fatalf("snapshot trajectory %d iters / %d residuals, want 5/5",
			snap.Outcome.NewtonIters, len(snap.Outcome.Residuals))
	}
	if snap.Options.MaxNewton != 5 || snap.Options.Tol != 1e-9 {
		t.Fatalf("snapshot options not normalised: %+v", snap.Options)
	}
}

// A non-settling transient must snapshot too, with the resolved options.
func TestNotSettledJournalAndSnapshot(t *testing.T) {
	path := withTestJournal(t)
	c := &Crossbar{M: 2, N: 2, R: uniformR(2, 2, 1e3), WireR: 1, RSense: 100, Linear: true}
	_, err := c.SettleTime([]float64{0.3, 0.3}, TransientOptions{NodeCap: 1e-15, MaxSteps: 1, Dt: 1e-15})
	if !errors.Is(err, ErrNotSettled) {
		t.Fatalf("want ErrNotSettled, got %v", err)
	}
	telemetry.DefaultJournal().Close()
	events, err := telemetry.ReadJournalFile(path)
	if err != nil {
		t.Fatal(err)
	}
	snaps := telemetry.JournalSnapshotPaths(path, events)
	if len(snaps) != 1 {
		t.Fatalf("journal references %d snapshots, want 1", len(snaps))
	}
	snap, err := LoadSnapshot(snaps[0])
	if err != nil {
		t.Fatal(err)
	}
	if snap.Kind != "transient" || snap.Transient == nil {
		t.Fatalf("snapshot kind %q transient %v", snap.Kind, snap.Transient)
	}
	if snap.Transient.MaxSteps != 1 || snap.Transient.Dt != 1e-15 || snap.Transient.SettleFrac != 1.0/512 {
		t.Fatalf("transient options not resolved: %+v", snap.Transient)
	}
	if snap.Outcome.OK || snap.Outcome.Steps != 1 || snap.Outcome.LastMaxDV <= 0 {
		t.Fatalf("snapshot outcome %+v", snap.Outcome)
	}
}

// Numerical neutrality: enabling the journal must not change a single bit
// of the computed solution.
func TestJournalNumericallyNeutral(t *testing.T) {
	c := &Crossbar{M: 4, N: 4, R: uniformR(4, 4, 150e3), WireR: 0.5, RSense: 1500, Dev: device.RRAM()}
	vin := []float64{0.3, 0.2, 0.1, 0.3}
	plain, err := c.Solve(vin, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	withTestJournal(t)
	recorded, err := c.Solve(vin, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for n := range plain.VOut {
		if plain.VOut[n] != recorded.VOut[n] {
			t.Fatalf("column %d: %v with journal vs %v without", n, recorded.VOut[n], plain.VOut[n])
		}
	}
	if plain.Power != recorded.Power || plain.NewtonIters != recorded.NewtonIters || plain.CGIters != recorded.CGIters {
		t.Fatalf("solve statistics differ with journal enabled")
	}
}

// The success-path diagnostics record the full convergence trajectory, and
// opting into SolveOptions.Diagnostics adds a positive condition estimate.
func TestSolveDiagnosticsAttached(t *testing.T) {
	c := &Crossbar{M: 4, N: 4, R: uniformR(4, 4, 150e3), WireR: 0.5, RSense: 1500, Dev: device.RRAM()}
	vin := []float64{0.3, 0.2, 0.1, 0.3}
	res, err := c.Solve(vin, SolveOptions{Diagnostics: true})
	if err != nil {
		t.Fatal(err)
	}
	d := res.Diag
	if d == nil {
		t.Fatal("Result.Diag nil")
	}
	if d.Path != "newton-cg" {
		t.Errorf("Path = %q", d.Path)
	}
	if d.SetupCGIters <= 0 {
		t.Errorf("SetupCGIters = %d", d.SetupCGIters)
	}
	// NewtonIters counts the setup solve too; the trajectory holds the rest.
	if len(d.Residuals) != res.NewtonIters-1 || len(d.CGIters) != res.NewtonIters-1 {
		t.Errorf("trajectory %d/%d entries, want %d", len(d.Residuals), len(d.CGIters), res.NewtonIters-1)
	}
	if last := d.Residuals[len(d.Residuals)-1]; last >= 1e-9 {
		t.Errorf("converged solve's final residual %v above Tol", last)
	}
	if d.CondEstimate <= 1 {
		t.Errorf("CondEstimate = %v, want > 1", d.CondEstimate)
	}
	// Without the opt-in the estimate is skipped but the trajectory stays.
	res2, err := c.Solve(vin, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Diag == nil || res2.Diag.CondEstimate != 0 {
		t.Fatalf("default solve diag %+v", res2.Diag)
	}
	// The zero-wire fast path labels itself.
	zw := &Crossbar{M: 4, N: 4, R: uniformR(4, 4, 150e3), WireR: 0, RSense: 1500, Dev: device.RRAM()}
	res3, err := zw.Solve(vin, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res3.Diag == nil || res3.Diag.Path != "zero-wire-bisection" {
		t.Fatalf("zero-wire diag %+v", res3.Diag)
	}
}
