package circuit

import (
	"math"
	"math/rand"
	"testing"

	"mnsim/internal/device"
	"mnsim/internal/linalg"
)

// denseSolve solves the same linear crossbar with an independently built
// dense MNA system (direct LU, no CSR, no CG) — a from-scratch cross-check
// of the sparse solver's stamping, including rectangular shapes.
func denseSolve(t *testing.T, c *Crossbar, vin []float64) []float64 {
	t.Helper()
	n2 := 2 * c.M * c.N
	row := func(m, n int) int { return m*c.N + n }
	col := func(m, n int) int { return c.M*c.N + m*c.N + n }
	a := linalg.NewDense(n2, n2)
	b := make([]float64, n2)
	gw := 1 / c.WireR
	stamp := func(i, j int, g float64) {
		a.Add(i, i, g)
		a.Add(j, j, g)
		a.Add(i, j, -g)
		a.Add(j, i, -g)
	}
	for m := 0; m < c.M; m++ {
		first := row(m, 0)
		a.Add(first, first, gw)
		b[first] += gw * vin[m]
		for n := 0; n+1 < c.N; n++ {
			stamp(row(m, n), row(m, n+1), gw)
		}
	}
	gs := 1 / c.RSense
	for n := 0; n < c.N; n++ {
		for m := 0; m+1 < c.M; m++ {
			stamp(col(m, n), col(m+1, n), gw)
		}
		last := col(c.M-1, n)
		a.Add(last, last, gs)
	}
	for m := 0; m < c.M; m++ {
		for n := 0; n < c.N; n++ {
			stamp(row(m, n), col(m, n), 1/c.R[m][n])
		}
	}
	x, err := linalg.SolveDense(a, b)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]float64, c.N)
	for n := 0; n < c.N; n++ {
		out[n] = x[col(c.M-1, n)]
	}
	return out
}

// Rectangular crossbars (M≠N in both directions) must match the
// independent dense solution element for element.
func TestSparseSolverMatchesDenseMNA(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	dev := device.RRAM()
	for _, shape := range [][2]int{{3, 7}, {7, 3}, {5, 5}, {1, 6}, {6, 1}, {12, 4}} {
		m, n := shape[0], shape[1]
		c := &Crossbar{M: m, N: n, R: randomR(m, n, dev, rng), WireR: 0.8, RSense: 1500, Linear: true}
		vin := make([]float64, m)
		for i := range vin {
			vin[i] = 0.05 + 0.25*rng.Float64()
		}
		res, err := c.Solve(vin, SolveOptions{})
		if err != nil {
			t.Fatalf("%dx%d: %v", m, n, err)
		}
		want := denseSolve(t, c, vin)
		for j := range want {
			// The sparse path stops at CG's relative-residual tolerance,
			// so match to 1e-6 of the output scale.
			if math.Abs(res.VOut[j]-want[j]) > 1e-6*(1+math.Abs(want[j])) {
				t.Fatalf("%dx%d col %d: sparse %v vs dense %v", m, n, j, res.VOut[j], want[j])
			}
		}
	}
}
