package circuit

import (
	"context"
	"errors"
	"testing"

	"mnsim/internal/device"
)

// An already-cancelled context aborts the solve before any Newton work, on
// both the full wire-resistance path and the zero-wire bisection path.
func TestSolveContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	vin := []float64{0.5, 0.5, 0.5, 0.5}
	for name, c := range map[string]*Crossbar{
		"wired":    {M: 4, N: 4, R: uniformR(4, 4, 1e3), WireR: 1, RSense: 100, Dev: device.RRAM()},
		"zerowire": {M: 4, N: 4, R: uniformR(4, 4, 1e3), WireR: 0, RSense: 100, Dev: device.RRAM()},
	} {
		res, err := c.SolveContext(ctx, vin, SolveOptions{})
		if !errors.Is(err, context.Canceled) {
			t.Errorf("%s: want wrapped context.Canceled, got %v", name, err)
		}
		if res != nil {
			t.Errorf("%s: want nil result on cancellation, got %+v", name, res)
		}
	}
	// The background context still solves, proving cancellation is the only
	// thing the checks reject.
	ok := &Crossbar{M: 4, N: 4, R: uniformR(4, 4, 1e3), WireR: 1, RSense: 100, Dev: device.RRAM()}
	if _, err := ok.SolveContext(context.Background(), vin, SolveOptions{}); err != nil {
		t.Fatalf("background context: %v", err)
	}
}
