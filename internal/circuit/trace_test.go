package circuit

import (
	"context"
	"testing"

	"mnsim/internal/device"
	"mnsim/internal/telemetry"
)

// withTestTracing turns on span-record retention on the default tracer for
// the test and restores the disabled state afterwards.
func withTestTracing(t *testing.T) {
	t.Helper()
	telemetry.SetTraceSeed(1)
	telemetry.EnableTraceEvents(1 << 10)
	t.Cleanup(func() {
		telemetry.DefaultTracer().ResetTraceEvents()
	})
}

// Numerical neutrality: enabling causal tracing (span records + journal
// span events) must not change a single bit of the computed solution.
func TestTracingNumericallyNeutral(t *testing.T) {
	c := &Crossbar{M: 4, N: 4, R: uniformR(4, 4, 150e3), WireR: 0.5, RSense: 1500, Dev: device.RRAM()}
	vin := []float64{0.3, 0.2, 0.1, 0.3}
	plain, err := c.Solve(vin, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	withTestJournal(t)
	withTestTracing(t)
	traced, err := c.Solve(vin, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range plain.NodeV {
		if plain.NodeV[i] != traced.NodeV[i] {
			t.Fatalf("node %d: %v traced vs %v plain", i, traced.NodeV[i], plain.NodeV[i])
		}
	}
	for n := range plain.VOut {
		if plain.VOut[n] != traced.VOut[n] {
			t.Fatalf("column %d: %v traced vs %v plain", n, traced.VOut[n], plain.VOut[n])
		}
	}
	if plain.Power != traced.Power || plain.NewtonIters != traced.NewtonIters || plain.CGIters != traced.CGIters {
		t.Fatal("solve statistics differ with tracing enabled")
	}
}

// With tracing on, a solve under a candidate-style parent span produces the
// full causal chain — parent → circuit.solve → assemble/setup/newton phase
// spans — and its solve_start/newton_iter/solve_end events carry the solve
// span's IDs plus a dur_us on solve_end.
func TestSolveTraceChain(t *testing.T) {
	path := withTestJournal(t)
	withTestTracing(t)
	c := &Crossbar{M: 4, N: 4, R: uniformR(4, 4, 150e3), WireR: 0.5, RSense: 1500, Dev: device.RRAM()}
	ctx, parent := telemetry.StartSpan(context.Background(), "candidate")
	if _, err := c.SolveContext(ctx, []float64{0.3, 0.2, 0.1, 0.3}, SolveOptions{}); err != nil {
		t.Fatal(err)
	}
	parent.End()
	telemetry.DefaultJournal().Close()
	events, err := telemetry.ReadJournalFile(path)
	if err != nil {
		t.Fatal(err)
	}
	recs := telemetry.SpanRecordsFromEvents(events)
	byPath := map[string]telemetry.SpanRecord{}
	for _, r := range recs {
		byPath[r.Path] = r
	}
	solve, ok := byPath["candidate/circuit.solve"]
	if !ok {
		t.Fatalf("no candidate/circuit.solve span; have %v", pathsOf(recs))
	}
	if solve.ParentID != parent.SpanID() || solve.TraceID != parent.TraceID() {
		t.Fatalf("solve span detached: %+v vs parent span %x", solve, parent.SpanID())
	}
	for _, phase := range []string{"assemble", "setup", "newton"} {
		p, ok := byPath["candidate/circuit.solve/"+phase]
		if !ok {
			t.Fatalf("no %s phase span; have %v", phase, pathsOf(recs))
		}
		if p.ParentID != solve.SpanID {
			t.Fatalf("%s phase parent %x, want solve %x", phase, p.ParentID, solve.SpanID)
		}
	}
	// Event stamps join the event stream to the span timeline.
	var sawStart, sawIter, sawEnd bool
	for _, ev := range events {
		switch ev.Type {
		case telemetry.EvSolveStart, telemetry.EvNewtonIter, telemetry.EvSolveEnd:
			if ev.Data["span_id"] != telemetry.FormatID(solve.SpanID) {
				t.Fatalf("%s span_id %v, want %s", ev.Type, ev.Data["span_id"], telemetry.FormatID(solve.SpanID))
			}
			if ev.Data["trace_id"] != telemetry.FormatID(solve.TraceID) {
				t.Fatalf("%s trace_id %v", ev.Type, ev.Data["trace_id"])
			}
			switch ev.Type {
			case telemetry.EvSolveStart:
				sawStart = true
			case telemetry.EvNewtonIter:
				sawIter = true
			case telemetry.EvSolveEnd:
				sawEnd = true
				if d, ok := ev.Data["dur_us"].(float64); !ok || d <= 0 {
					t.Fatalf("solve_end dur_us = %v", ev.Data["dur_us"])
				}
			}
		}
	}
	if !sawStart || !sawIter || !sawEnd {
		t.Fatalf("missing stamped events: start %v iter %v end %v", sawStart, sawIter, sawEnd)
	}
}

// With tracing off, a solve opens exactly one span (no phase sub-spans) —
// the off path must not grow the per-solve span count.
func TestSolvePhaseSpansGated(t *testing.T) {
	tr := telemetry.DefaultTracer()
	c := &Crossbar{M: 4, N: 4, R: uniformR(4, 4, 150e3), WireR: 0.5, RSense: 1500, Dev: device.RRAM()}
	before, _ := tr.Stat("circuit.solve/newton")
	if _, err := c.Solve([]float64{0.3, 0.2, 0.1, 0.3}, SolveOptions{}); err != nil {
		t.Fatal(err)
	}
	after, _ := tr.Stat("circuit.solve/newton")
	if after.Count != before.Count {
		t.Fatalf("phase span recorded with tracing off: %d -> %d", before.Count, after.Count)
	}
}

func pathsOf(recs []telemetry.SpanRecord) []string {
	out := make([]string, len(recs))
	for i, r := range recs {
		out[i] = r.Path
	}
	return out
}
