package circuit

import (
	"context"
	"testing"
	"time"

	"mnsim/internal/device"
	"mnsim/internal/telemetry"
)

// withTestSampler starts the default resource sampler at an aggressive
// interval for the duration of the test and stops it afterwards.
func withTestSampler(t *testing.T) {
	t.Helper()
	s := telemetry.DefaultResourceSampler()
	if err := s.Start(context.Background(), telemetry.ResourceConfig{
		Interval: time.Millisecond,
	}); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Stop)
}

// Numerical neutrality: the resource sampler runs on its own goroutine and
// reads only runtime/metrics — turning it on (even at a 1ms interval, far
// hotter than any real run) must not change a single bit of the computed
// solution or the solver's iteration counts.
func TestResourceSamplingNumericallyNeutral(t *testing.T) {
	c := &Crossbar{M: 4, N: 4, R: uniformR(4, 4, 150e3), WireR: 0.5, RSense: 1500, Dev: device.RRAM()}
	vin := []float64{0.3, 0.2, 0.1, 0.3}
	plain, err := c.Solve(vin, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	withTestSampler(t)
	// Also thread a warm-start state: the sampled solve must match the
	// plain one on the cold path regardless of solver-side buffer reuse.
	sampled, err := c.Solve(vin, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range plain.NodeV {
		if plain.NodeV[i] != sampled.NodeV[i] {
			t.Fatalf("node %d: %v sampled vs %v plain", i, sampled.NodeV[i], plain.NodeV[i])
		}
	}
	for n := range plain.VOut {
		if plain.VOut[n] != sampled.VOut[n] {
			t.Fatalf("column %d: %v sampled vs %v plain", n, sampled.VOut[n], plain.VOut[n])
		}
	}
	if plain.Power != sampled.Power || plain.NewtonIters != sampled.NewtonIters || plain.CGIters != sampled.CGIters {
		t.Fatal("solve statistics differ with resource sampling enabled")
	}
}

// Warm-start determinism with sampling on: a stream of solves through one
// SolverState must produce the same outputs whether or not the sampler is
// running concurrently (the solver shares no state with the sampler).
func TestResourceSamplingNeutralWarmPath(t *testing.T) {
	c := &Crossbar{M: 8, N: 8, R: uniformR(8, 8, 150e3), WireR: 0.5, RSense: 1500, Dev: device.RRAM()}
	vins := [][]float64{
		{0.3, 0.2, 0.1, 0.3, 0.25, 0.15, 0.05, 0.2},
		{0.31, 0.21, 0.11, 0.31, 0.26, 0.16, 0.06, 0.21},
		{0.29, 0.19, 0.09, 0.29, 0.24, 0.14, 0.04, 0.19},
	}
	run := func() []*Result {
		st := NewSolverState()
		out := make([]*Result, len(vins))
		for i, vin := range vins {
			res, err := c.Solve(vin, SolveOptions{State: st})
			if err != nil {
				t.Fatal(err)
			}
			out[i] = res
		}
		return out
	}
	plain := run()
	withTestSampler(t)
	sampled := run()
	for k := range plain {
		for i := range plain[k].NodeV {
			if plain[k].NodeV[i] != sampled[k].NodeV[i] {
				t.Fatalf("solve %d node %d: %v sampled vs %v plain", k, i, sampled[k].NodeV[i], plain[k].NodeV[i])
			}
		}
		if plain[k].CGIters != sampled[k].CGIters || plain[k].NewtonIters != sampled[k].NewtonIters {
			t.Fatalf("solve %d iteration counts differ with sampling enabled", k)
		}
	}
}
