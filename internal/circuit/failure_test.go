package circuit

import (
	"errors"
	"testing"

	"mnsim/internal/device"
	"mnsim/internal/linalg"
)

// Failure injection: a pathologically non-linear device must trip the
// Newton divergence guard instead of looping or returning garbage, and the
// error must carry the diagnostics payload through the errors.Is/As chain.
func TestNewtonDivergenceDetected(t *testing.T) {
	dev := device.RRAM()
	// Steep enough that Newton oscillates forever, mild enough that each
	// inner CG solve still converges — a true Newton divergence, not a
	// linear-solver failure.
	dev.NonlinearVc = 2e-3
	c := &Crossbar{M: 2, N: 2, R: uniformR(2, 2, 100e3), WireR: 1, RSense: 1500, Dev: dev}
	_, err := c.Solve([]float64{0.3, 0.3}, SolveOptions{MaxNewton: 5})
	if err == nil {
		t.Fatal("pathological device converged")
	}
	if !errors.Is(err, ErrNewtonDiverged) {
		t.Fatalf("errors.Is(err, ErrNewtonDiverged) false for %v", err)
	}
	var de *DivergenceError
	if !errors.As(err, &de) {
		t.Fatalf("errors.As *DivergenceError false for %T", err)
	}
	if de.Iters != 5 {
		t.Errorf("DivergenceError.Iters = %d, want 5", de.Iters)
	}
	if de.FinalResidual <= 0 {
		t.Errorf("DivergenceError.FinalResidual = %v, want > 0", de.FinalResidual)
	}
	if de.Diag == nil {
		t.Fatal("DivergenceError.Diag nil")
	}
	if len(de.Diag.Residuals) != 5 || len(de.Diag.CGIters) != 5 {
		t.Errorf("trajectory lengths %d/%d, want 5/5", len(de.Diag.Residuals), len(de.Diag.CGIters))
	}
	if de.Diag.Path != "newton-cg" {
		t.Errorf("Diag.Path = %q", de.Diag.Path)
	}
	if de.Diag.CondEstimate <= 0 {
		t.Errorf("Diag.CondEstimate = %v, want > 0 on divergence", de.Diag.CondEstimate)
	}
	if last := de.Diag.Residuals[len(de.Diag.Residuals)-1]; last != de.FinalResidual {
		t.Errorf("FinalResidual %v disagrees with trajectory tail %v", de.FinalResidual, last)
	}
}

// An exhausted linear-solver budget surfaces as linalg.ErrNoConvergence.
func TestCGBudgetExhaustion(t *testing.T) {
	// Larger grids cannot hit machine-precision tolerance in one iteration.
	m, err := linalg.NewCSR(3, []linalg.Coord{
		{Row: 0, Col: 0, Val: 4}, {Row: 0, Col: 1, Val: -1},
		{Row: 1, Col: 0, Val: -1}, {Row: 1, Col: 1, Val: 4}, {Row: 1, Col: 2, Val: -1},
		{Row: 2, Col: 1, Val: -1}, {Row: 2, Col: 2, Val: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = linalg.SolveCG(m, []float64{1, 2, 3}, nil, linalg.CGOptions{Tol: 1e-16, MaxIter: 1})
	if !errors.Is(err, linalg.ErrNoConvergence) {
		t.Fatalf("want ErrNoConvergence, got %v", err)
	}
}

// The zero-wire fast path handles the non-linear device too.
func TestZeroWireNonlinear(t *testing.T) {
	dev := device.RRAM()
	c := &Crossbar{M: 4, N: 4, R: uniformR(4, 4, 200e3), WireR: 0, RSense: 1500, Dev: dev}
	vin := []float64{0.3, 0.3, 0.3, 0.3}
	res, err := c.Solve(vin, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// KCL check at each column: cell currents balance the sense current.
	for n := 0; n < 4; n++ {
		sum := 0.0
		for m := 0; m < 4; m++ {
			sum += dev.Current(vin[m]-res.VOut[n], 200e3)
		}
		if diff := sum - res.VOut[n]/1500; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("column %d KCL residual %v", n, diff)
		}
	}
	// Power bookkeeping holds on the fast path too.
	diss := c.DissipatedPower(res, vin)
	if rel := (res.Power - diss) / res.Power; rel > 1e-6 || rel < -1e-6 {
		t.Fatalf("power mismatch: source %v vs dissipated %v", res.Power, diss)
	}
}

// Solving twice must not corrupt shared state (the assembly is rebuilt).
func TestSolveReentrant(t *testing.T) {
	dev := device.RRAM()
	c := &Crossbar{M: 4, N: 4, R: uniformR(4, 4, 150e3), WireR: 0.5, RSense: 1500, Dev: dev}
	vin := []float64{0.3, 0.2, 0.1, 0.3}
	a, err := c.Solve(vin, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.Solve(vin, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for n := range a.VOut {
		if a.VOut[n] != b.VOut[n] {
			t.Fatalf("column %d differs between runs", n)
		}
	}
}
