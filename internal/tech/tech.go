// Package tech provides the CMOS and interconnect technology substrate used
// by every performance model in MNSIM.
//
// The original MNSIM pulls per-node device and wire parameters from CACTI,
// NVSim, and the Predictive Technology Model (PTM). Those tools are consumed
// purely as lookup tables of technology constants, so this package embeds
// equivalent per-node tables (130 nm down to 18 nm) together with the
// standard constant-field scaling rules used to interpolate between nodes.
//
// Two independent axes are modelled, matching the paper's configuration list
// (Table I): the CMOS logic node (CMOS_Tech, used for peripheral circuits)
// and the interconnect node (Interconnect_Tech, used for the crossbar wire
// resistance that drives the computing-accuracy model).
package tech

import (
	"fmt"
	"math"
	"sort"
)

// CMOSNode holds the per-node CMOS logic parameters needed by the
// transistor-level reference designs of the peripheral modules.
type CMOSNode struct {
	// FeatureNM is the technology feature size F in nanometres.
	FeatureNM float64
	// Vdd is the nominal supply voltage in volts.
	Vdd float64
	// GateDelay is the FO4 inverter delay in seconds; composite logic
	// delays are expressed as multiples of this.
	GateDelay float64
	// GateCap is the switched capacitance of a minimum-size gate in farads.
	GateCap float64
	// GateLeakage is the static leakage power of a minimum-size gate in watts.
	GateLeakage float64
	// RegEnergy is the energy of one register (flip-flop) toggle in joules.
	RegEnergy float64
	// RegArea is the layout area of one register in square micrometres.
	RegArea float64
}

// GateEnergy returns the dynamic energy of one minimum-size gate switching
// event, E = C * Vdd^2, in joules.
func (n CMOSNode) GateEnergy() float64 { return n.GateCap * n.Vdd * n.Vdd }

// GateArea returns the layout area of a minimum-size logic gate in square
// micrometres. A standard-cell gate occupies roughly 120 F^2 of drawn area
// once routing overhead is included.
func (n CMOSNode) GateArea() float64 {
	f := n.FeatureNM * 1e-3 // um
	return 120 * f * f
}

// WireTech holds the interconnect parameters of one metal technology node.
// SegmentR and SegmentC are the resistance and capacitance of the wire
// segment spanning one crossbar cell pitch; these drive the accuracy model
// (Section VI.B of the paper) and the crossbar Elmore delay.
type WireTech struct {
	// FeatureNM is the interconnect half-pitch in nanometres.
	FeatureNM float64
	// SegmentR is the wire resistance between two neighbouring cells in ohms.
	SegmentR float64
	// SegmentC is the wire capacitance between two neighbouring cells in farads.
	SegmentC float64
}

// Built-in CMOS node table. Delay, capacitance, and leakage follow
// constant-field scaling anchored on published 90 nm and 45 nm data points
// (PTM bulk models); leakage grows super-linearly below 45 nm as in CACTI.
var cmosNodes = map[int]CMOSNode{
	130: {130, 1.30, 52e-12, 2.60e-15, 9.0e-9, 10.4e-15, 5.20},
	90:  {90, 1.20, 36e-12, 1.80e-15, 15.0e-9, 7.20e-15, 2.60},
	65:  {65, 1.10, 26e-12, 1.30e-15, 22.0e-9, 5.10e-15, 1.40},
	45:  {45, 1.00, 18e-12, 0.90e-15, 32.0e-9, 3.40e-15, 0.68},
	32:  {32, 0.90, 13e-12, 0.64e-15, 45.0e-9, 2.30e-15, 0.35},
	28:  {28, 0.90, 11e-12, 0.56e-15, 52.0e-9, 2.00e-15, 0.27},
	22:  {22, 0.80, 9.0e-12, 0.44e-15, 64.0e-9, 1.50e-15, 0.17},
	18:  {18, 0.80, 7.5e-12, 0.36e-15, 78.0e-9, 1.20e-15, 0.11},
}

// Built-in interconnect node table. Wire resistance per cell pitch rises as
// the node shrinks (narrower, thinner copper plus size effects on
// resistivity); capacitance per pitch falls slowly. Anchored on ITRS-style
// copper data: at 45 nm roughly 1.3 ohm per 2F pitch, doubling every two
// generations.
var wireNodes = map[int]WireTech{
	90: {90, 0.16, 0.18e-15},
	45: {45, 0.50, 0.11e-15},
	36: {36, 0.75, 0.10e-15},
	28: {28, 1.05, 0.090e-15},
	22: {22, 1.50, 0.080e-15},
	18: {18, 2.10, 0.072e-15},
}

// Node returns the CMOS parameters of the requested feature size in
// nanometres. Only the tabulated nodes are accepted; use Nodes to discover
// them.
func Node(featureNM int) (CMOSNode, error) {
	n, ok := cmosNodes[featureNM]
	if !ok {
		return CMOSNode{}, fmt.Errorf("tech: unknown CMOS node %dnm (known: %v)", featureNM, Nodes())
	}
	return n, nil
}

// MustNode is like Node but panics on unknown nodes. It is intended for
// package-internal tables and tests where the node is a compile-time constant.
func MustNode(featureNM int) CMOSNode {
	n, err := Node(featureNM)
	if err != nil {
		panic(err)
	}
	return n
}

// Interconnect returns the wire parameters of the requested interconnect
// node in nanometres.
func Interconnect(featureNM int) (WireTech, error) {
	w, ok := wireNodes[featureNM]
	if !ok {
		return WireTech{}, fmt.Errorf("tech: unknown interconnect node %dnm (known: %v)", featureNM, InterconnectNodes())
	}
	return w, nil
}

// MustInterconnect is like Interconnect but panics on unknown nodes.
func MustInterconnect(featureNM int) WireTech {
	w, err := Interconnect(featureNM)
	if err != nil {
		panic(err)
	}
	return w
}

// Nodes lists the tabulated CMOS feature sizes in descending order.
func Nodes() []int {
	out := make([]int, 0, len(cmosNodes))
	for f := range cmosNodes {
		out = append(out, f)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(out)))
	return out
}

// InterconnectNodes lists the tabulated interconnect feature sizes in
// descending order.
func InterconnectNodes() []int {
	out := make([]int, 0, len(wireNodes))
	for f := range wireNodes {
		out = append(out, f)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(out)))
	return out
}

// InterpolateNode returns CMOS parameters for a feature size between the
// tabulated nodes by log-linear interpolation of each parameter against
// feature size. Tabulated nodes return exactly their table entry; sizes
// outside the table are rejected (extrapolating device physics is not
// meaningful).
func InterpolateNode(featureNM float64) (CMOSNode, error) {
	//lint:ignore nofloateq exact integrality test: tabulated nodes must return their table entry bit-for-bit, never an interpolation
	if n, ok := cmosNodes[int(featureNM)]; ok && featureNM == float64(int(featureNM)) {
		return n, nil
	}
	nodes := Nodes() // descending
	if featureNM > float64(nodes[0]) || featureNM < float64(nodes[len(nodes)-1]) {
		return CMOSNode{}, fmt.Errorf("tech: %gnm outside the tabulated range [%d, %d]", featureNM, nodes[len(nodes)-1], nodes[0])
	}
	var lo, hi CMOSNode
	for i := 0; i+1 < len(nodes); i++ {
		if featureNM <= float64(nodes[i]) && featureNM >= float64(nodes[i+1]) {
			hi, lo = cmosNodes[nodes[i]], cmosNodes[nodes[i+1]]
			break
		}
	}
	t := math.Log(featureNM/lo.FeatureNM) / math.Log(hi.FeatureNM/lo.FeatureNM)
	lerp := func(a, b float64) float64 { return math.Exp(math.Log(a) + t*(math.Log(b)-math.Log(a))) }
	return CMOSNode{
		FeatureNM:   featureNM,
		Vdd:         lerp(lo.Vdd, hi.Vdd),
		GateDelay:   lerp(lo.GateDelay, hi.GateDelay),
		GateCap:     lerp(lo.GateCap, hi.GateCap),
		GateLeakage: lerp(lo.GateLeakage, hi.GateLeakage),
		RegEnergy:   lerp(lo.RegEnergy, hi.RegEnergy),
		RegArea:     lerp(lo.RegArea, hi.RegArea),
	}, nil
}

// InterpolateWire returns interconnect parameters between the tabulated
// nodes by log-linear interpolation, mirroring InterpolateNode.
func InterpolateWire(featureNM float64) (WireTech, error) {
	//lint:ignore nofloateq exact integrality test: tabulated nodes must return their table entry bit-for-bit, never an interpolation
	if w, ok := wireNodes[int(featureNM)]; ok && featureNM == float64(int(featureNM)) {
		return w, nil
	}
	nodes := InterconnectNodes()
	if featureNM > float64(nodes[0]) || featureNM < float64(nodes[len(nodes)-1]) {
		return WireTech{}, fmt.Errorf("tech: %gnm outside the tabulated interconnect range [%d, %d]", featureNM, nodes[len(nodes)-1], nodes[0])
	}
	var lo, hi WireTech
	for i := 0; i+1 < len(nodes); i++ {
		if featureNM <= float64(nodes[i]) && featureNM >= float64(nodes[i+1]) {
			hi, lo = wireNodes[nodes[i]], wireNodes[nodes[i+1]]
			break
		}
	}
	t := math.Log(featureNM/lo.FeatureNM) / math.Log(hi.FeatureNM/lo.FeatureNM)
	lerp := func(a, b float64) float64 { return math.Exp(math.Log(a) + t*(math.Log(b)-math.Log(a))) }
	return WireTech{
		FeatureNM: featureNM,
		SegmentR:  lerp(lo.SegmentR, hi.SegmentR),
		SegmentC:  lerp(lo.SegmentC, hi.SegmentC),
	}, nil
}

// ScaleArea converts an area measured at node `from` (nm) to the equivalent
// area at node `to` using quadratic feature scaling. It is used when a
// customized module provides its footprint at a different node than the
// simulated design (e.g. the ISAAC case study at 32 nm).
func ScaleArea(area float64, from, to int) float64 {
	r := float64(to) / float64(from)
	return area * r * r
}

// ScaleDelay converts a delay from one node to another using linear feature
// scaling, the first-order constant-field rule.
func ScaleDelay(d float64, from, to int) float64 {
	return d * float64(to) / float64(from)
}

// ScaleEnergy converts a switching energy from one node to another. Under
// constant-field scaling, capacitance scales linearly with feature size and
// Vdd^2 with the tabulated supply ratio when both nodes are known; otherwise
// the cubic feature approximation is used.
func ScaleEnergy(e float64, from, to int) float64 {
	nf, okf := cmosNodes[from]
	nt, okt := cmosNodes[to]
	r := float64(to) / float64(from)
	if okf && okt {
		v := nt.Vdd / nf.Vdd
		return e * r * v * v
	}
	return e * r * r * r
}
