package tech

import (
	"math"
	"testing"
)

func TestInterpolateExactNodes(t *testing.T) {
	for _, f := range Nodes() {
		n, err := InterpolateNode(float64(f))
		if err != nil {
			t.Fatalf("node %d: %v", f, err)
		}
		if n != MustNode(f) {
			t.Errorf("node %d: interpolation differs from table", f)
		}
	}
}

func TestInterpolateBetweenNodes(t *testing.T) {
	n, err := InterpolateNode(55)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := MustNode(45), MustNode(65)
	checks := map[string][3]float64{
		"Vdd":       {lo.Vdd, n.Vdd, hi.Vdd},
		"GateDelay": {lo.GateDelay, n.GateDelay, hi.GateDelay},
		"GateCap":   {lo.GateCap, n.GateCap, hi.GateCap},
		"RegArea":   {lo.RegArea, n.RegArea, hi.RegArea},
	}
	for name, v := range checks {
		if !(v[0] < v[1] && v[1] < v[2]) {
			t.Errorf("%s not bracketed: %v", name, v)
		}
	}
	// Leakage runs the other way (grows at smaller nodes).
	if !(hi.GateLeakage < n.GateLeakage && n.GateLeakage < lo.GateLeakage) {
		t.Errorf("leakage not bracketed: %v %v %v", hi.GateLeakage, n.GateLeakage, lo.GateLeakage)
	}
	if n.FeatureNM != 55 {
		t.Errorf("feature = %v", n.FeatureNM)
	}
}

func TestInterpolateContinuousAtNodes(t *testing.T) {
	// Approaching a tabulated node from either side converges to its entry.
	ref := MustNode(45)
	below, err := InterpolateNode(44.999)
	if err != nil {
		t.Fatal(err)
	}
	above, err := InterpolateNode(45.001)
	if err != nil {
		t.Fatal(err)
	}
	for _, pair := range [][2]float64{
		{below.GateDelay, ref.GateDelay},
		{above.GateDelay, ref.GateDelay},
		{below.Vdd, ref.Vdd},
		{above.Vdd, ref.Vdd},
	} {
		if math.Abs(pair[0]-pair[1])/pair[1] > 0.01 {
			t.Errorf("discontinuity at 45nm: %v vs %v", pair[0], pair[1])
		}
	}
}

func TestInterpolateOutOfRange(t *testing.T) {
	if _, err := InterpolateNode(200); err == nil {
		t.Error("200nm accepted")
	}
	if _, err := InterpolateNode(5); err == nil {
		t.Error("5nm accepted")
	}
}

func TestInterpolateWire(t *testing.T) {
	for _, f := range InterconnectNodes() {
		w, err := InterpolateWire(float64(f))
		if err != nil {
			t.Fatalf("node %d: %v", f, err)
		}
		if w != MustInterconnect(f) {
			t.Errorf("node %d differs from table", f)
		}
	}
	mid, err := InterpolateWire(32)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := MustInterconnect(28), MustInterconnect(36)
	if !(hi.SegmentR < mid.SegmentR && mid.SegmentR < lo.SegmentR) {
		t.Errorf("SegmentR not bracketed: %v %v %v", hi.SegmentR, mid.SegmentR, lo.SegmentR)
	}
	if !(lo.SegmentC < mid.SegmentC && mid.SegmentC < hi.SegmentC) {
		t.Errorf("SegmentC not bracketed: %v %v %v", lo.SegmentC, mid.SegmentC, hi.SegmentC)
	}
	if _, err := InterpolateWire(200); err == nil {
		t.Error("200nm accepted")
	}
	if _, err := InterpolateWire(5); err == nil {
		t.Error("5nm accepted")
	}
}
