package tech

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNodeKnown(t *testing.T) {
	for _, f := range Nodes() {
		n, err := Node(f)
		if err != nil {
			t.Fatalf("Node(%d): %v", f, err)
		}
		if n.FeatureNM != float64(f) {
			t.Errorf("Node(%d).FeatureNM = %v", f, n.FeatureNM)
		}
		if n.Vdd <= 0 || n.GateDelay <= 0 || n.GateCap <= 0 || n.GateLeakage <= 0 {
			t.Errorf("Node(%d) has non-positive parameter: %+v", f, n)
		}
	}
}

func TestNodeUnknown(t *testing.T) {
	if _, err := Node(77); err == nil {
		t.Fatal("Node(77) should fail")
	}
	if _, err := Interconnect(77); err == nil {
		t.Fatal("Interconnect(77) should fail")
	}
}

func TestMustNodePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNode(3) should panic")
		}
	}()
	MustNode(3)
}

func TestMustInterconnectPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustInterconnect(3) should panic")
		}
	}()
	MustInterconnect(3)
}

// Scaling down a CMOS node must shrink delay, energy and area monotonically.
func TestScalingMonotonic(t *testing.T) {
	nodes := Nodes()
	for i := 1; i < len(nodes); i++ {
		big, small := MustNode(nodes[i-1]), MustNode(nodes[i])
		if small.GateDelay >= big.GateDelay {
			t.Errorf("GateDelay not decreasing from %dnm to %dnm", nodes[i-1], nodes[i])
		}
		if small.GateEnergy() >= big.GateEnergy() {
			t.Errorf("GateEnergy not decreasing from %dnm to %dnm", nodes[i-1], nodes[i])
		}
		if small.GateArea() >= big.GateArea() {
			t.Errorf("GateArea not decreasing from %dnm to %dnm", nodes[i-1], nodes[i])
		}
		if small.GateLeakage <= big.GateLeakage {
			t.Errorf("GateLeakage should increase at smaller nodes (%dnm -> %dnm)", nodes[i-1], nodes[i])
		}
	}
}

// Wire resistance per segment must increase as interconnect shrinks; this
// drives the paper's observation that older interconnect nodes compute more
// accurately (Table IV picks 45nm wires over 28nm for accuracy).
func TestWireResistanceIncreases(t *testing.T) {
	nodes := InterconnectNodes()
	for i := 1; i < len(nodes); i++ {
		big, small := MustInterconnect(nodes[i-1]), MustInterconnect(nodes[i])
		if small.SegmentR <= big.SegmentR {
			t.Errorf("SegmentR not increasing from %dnm to %dnm", nodes[i-1], nodes[i])
		}
		if small.SegmentC >= big.SegmentC {
			t.Errorf("SegmentC not decreasing from %dnm to %dnm", nodes[i-1], nodes[i])
		}
	}
}

func TestScaleAreaQuadratic(t *testing.T) {
	got := ScaleArea(100, 90, 45)
	if math.Abs(got-25) > 1e-9 {
		t.Fatalf("ScaleArea(100, 90, 45) = %v, want 25", got)
	}
}

func TestScaleDelayLinear(t *testing.T) {
	got := ScaleDelay(10e-12, 90, 45)
	if math.Abs(got-5e-12) > 1e-21 {
		t.Fatalf("ScaleDelay = %v, want 5e-12", got)
	}
}

func TestScaleEnergyUsesVddWhenKnown(t *testing.T) {
	e90 := 1e-15
	got := ScaleEnergy(e90, 90, 45)
	n90, n45 := MustNode(90), MustNode(45)
	want := e90 * (45.0 / 90.0) * (n45.Vdd / n90.Vdd) * (n45.Vdd / n90.Vdd)
	if math.Abs(got-want)/want > 1e-12 {
		t.Fatalf("ScaleEnergy = %v, want %v", got, want)
	}
}

func TestScaleEnergyFallbackCubic(t *testing.T) {
	got := ScaleEnergy(8, 100, 50) // unknown nodes -> cubic rule
	if math.Abs(got-1) > 1e-12 {
		t.Fatalf("ScaleEnergy fallback = %v, want 1", got)
	}
}

// Property: scaling round-trips are identity for any positive value.
func TestScaleRoundTrip(t *testing.T) {
	f := func(v float64) bool {
		v = math.Abs(v)
		if v == 0 || v > 1e300 || math.IsInf(v, 0) || math.IsNaN(v) {
			return true
		}
		a := ScaleArea(ScaleArea(v, 90, 45), 45, 90)
		d := ScaleDelay(ScaleDelay(v, 90, 45), 45, 90)
		return math.Abs(a-v) <= 1e-9*v && math.Abs(d-v) <= 1e-9*v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNodesSortedDescending(t *testing.T) {
	for _, lst := range [][]int{Nodes(), InterconnectNodes()} {
		for i := 1; i < len(lst); i++ {
			if lst[i] >= lst[i-1] {
				t.Fatalf("node list not strictly descending: %v", lst)
			}
		}
	}
}
