// Package crossbar implements the behaviour-level memristor crossbar model:
// the analog matrix–vector multiplication of Eq. 1–2, and the area, power,
// and latency estimates of Section V.A of the paper. The computing-accuracy
// estimate built on top of this model lives in package accuracy.
package crossbar

import (
	"fmt"
	"math"

	"mnsim/internal/device"
	"mnsim/internal/tech"
)

// Params describes one crossbar instance at the behaviour level.
type Params struct {
	// Rows (M) and Cols (N) give the crossbar dimensions.
	Rows, Cols int
	// Dev is the memristor cell model.
	Dev device.Model
	// Wire carries the interconnect technology (segment resistance and
	// capacitance between neighbouring cells).
	Wire tech.WireTech
	// RSense is the column sensing resistance in ohms. The reference design
	// uses a small load so the column output stays within the read-circuit
	// input range.
	RSense float64
	// VDrive is the full-scale input voltage applied by the DACs. The
	// reference programming scheme verifies cell levels at half bias
	// (Dev.ReadVoltage = VDrive/2), so cells operated away from that point
	// deviate through the non-linear I–V law.
	VDrive float64
}

// DefaultRSense is the reference column sensing resistance. It is sized so
// that a mid-size (≈64-row) column of minimum-resistance cells splits the
// drive voltage roughly in half, placing the cell operating point at the
// program-verify calibration voltage where the non-linear deviation
// vanishes — the design sweet spot the Table V trade-off exposes.
const DefaultRSense = 1500.0

// New returns crossbar parameters for the reference design: sensing
// resistance DefaultRSense, drive voltage at twice the device calibration
// voltage.
func New(rows, cols int, dev device.Model, wire tech.WireTech) Params {
	return Params{
		Rows:   rows,
		Cols:   cols,
		Dev:    dev,
		Wire:   wire,
		RSense: DefaultRSense,
		VDrive: 2 * dev.ReadVoltage,
	}
}

// Validate checks the parameters.
func (p Params) Validate() error {
	if p.Rows <= 0 || p.Cols <= 0 {
		return fmt.Errorf("crossbar: invalid size %dx%d", p.Rows, p.Cols)
	}
	if p.RSense <= 0 {
		return fmt.Errorf("crossbar: sense resistance must be positive")
	}
	if p.VDrive <= 0 {
		return fmt.Errorf("crossbar: drive voltage must be positive")
	}
	if err := p.Dev.Validate(); err != nil {
		return err
	}
	return nil
}

// Area returns the crossbar array area in square micrometres: cells × the
// per-cell footprint of Eq. 7 (1T1R) or Eq. 8 (cross-point).
func (p Params) Area() float64 {
	return float64(p.Rows*p.Cols) * p.Dev.CellArea()
}

// AvgDriveRMS returns the root-mean-square input voltage of the average
// case: inputs are uniformly distributed over [0, VDrive], so the mean
// squared drive is VDrive²/3. Power models use the RMS value; the accuracy
// model's average case uses the mean (VDrive/2).
func (p Params) AvgDriveRMS() float64 {
	return p.VDrive / math.Sqrt(3)
}

// ComputePower returns the average-case power during a COMPUTE operation in
// watts. All cells are selected (Section II.C), so the whole array
// conducts. The average case draws cell conductances uniformly over the
// level population (mean g₁ = 1/R_hm per Section V.A, second moment g₂) and
// inputs uniformly over [0, VDrive]. The expected per-column power of the
// loaded divider, with uncorrelated inputs, is
//
//	P_col = M·g₁·E[v²] − (M·g₂·E[v²] + M·(M−1)·g₁²·E[v]²) / (g_s + M·g₁)
//
// (the backpressure of the column node correlates only partially with each
// row's drive); the sinh conduction factor folds in the non-linear I–V.
func (p Params) ComputePower() float64 {
	g1 := p.Dev.MeanConductance()
	g2 := p.Dev.MeanSquareConductance()
	gs := 1 / p.RSense
	m := float64(p.Rows)
	ev2 := p.VDrive * p.VDrive / 3
	ev1 := p.VDrive / 2
	pCol := m*g1*ev2 - (m*g2*ev2+m*(m-1)*g1*g1*ev1*ev1)/(gs+m*g1)
	return float64(p.Cols) * pCol * p.Dev.AvgPowerFactor(p.VDrive)
}

// ReadPower returns the average-case power of a memory-style READ, where
// only one row is selected: each driven cell conducts into the column node
// loaded by R_s in parallel with the (M−1) sneak cells of the unselected
// rows.
func (p Params) ReadPower() float64 {
	v := p.AvgDriveRMS()
	rhm := p.Dev.HarmonicMeanR()
	load := 1 / (1/p.RSense + float64(p.Rows-1)/rhm)
	return float64(p.Cols) * v * v / (rhm + load) * p.Dev.AvgPowerFactor(p.VDrive)
}

// settleLn is ln(512): the output must settle within half an LSB of an
// 8-bit read circuit.
const settleLn = 6.2383246250395075 // math.Log(512)

// Latency returns the crossbar settling latency for one compute cycle. The
// output column is a dominant-pole RC node: the column capacitance
// M·(C_wire + C_cell) discharged through R_parallel ∥ R_s, settling to half
// an LSB in ln(512) time constants, plus the distributed wire Elmore delay
// and the intrinsic cell response from the device datasheet:
//
//	t = ln(512)·(R_hm/M ∥ R_s)·M·(C_seg + C_cell) + 0.38·r·c·(M+N)² + t_cell
func (p Params) Latency() float64 {
	m := float64(p.Rows)
	rp := p.Dev.HarmonicMeanR() / m
	rDrive := rp * p.RSense / (rp + p.RSense)
	cCol := m * (p.Wire.SegmentC + p.Dev.CellCap)
	n := float64(p.Rows + p.Cols)
	elmore := 0.38 * p.Wire.SegmentR * p.Wire.SegmentC * n * n
	return settleLn*rDrive*cCol + elmore + p.Dev.SwitchLatency
}

// ComputeEnergy returns the energy of one compute cycle.
func (p Params) ComputeEnergy() float64 {
	return p.ComputePower() * p.Latency()
}

// WorstRParallel returns the approximate worst-case column parallel
// resistance of Eq. 10: all cells at R_min and the farthest column from the
// inputs, (R_min + (M+N)·r) / M.
func (p Params) WorstRParallel() float64 {
	return (p.Dev.RMin + float64(p.Rows+p.Cols)*p.Wire.SegmentR) / float64(p.Rows)
}

// IdealMVM computes the interconnect-free analog matrix–vector product of
// Eq. 1–2: out_n = Σ_m g[m][n]·vin[m] / (g_s + Σ_m g[m][n]), where g holds
// cell conductances in siemens. It is the fixed-point "ideal result" that
// the accuracy model measures deviations against.
func (p Params) IdealMVM(g [][]float64, vin []float64) ([]float64, error) {
	if len(g) != p.Rows {
		return nil, fmt.Errorf("crossbar: conductance matrix has %d rows, want %d", len(g), p.Rows)
	}
	if len(vin) != p.Rows {
		return nil, fmt.Errorf("crossbar: input length %d, want %d", len(vin), p.Rows)
	}
	gs := 1 / p.RSense
	out := make([]float64, p.Cols)
	for n := 0; n < p.Cols; n++ {
		num, den := 0.0, gs
		for m := 0; m < p.Rows; m++ {
			if len(g[m]) != p.Cols {
				return nil, fmt.Errorf("crossbar: conductance row %d has %d cols, want %d", m, len(g[m]), p.Cols)
			}
			num += g[m][n] * vin[m]
			den += g[m][n]
		}
		out[n] = num / den
	}
	return out, nil
}

// MapWeights quantizes a non-negative weight matrix (values in [0,1]) onto
// device conductances, returning the conductance matrix for IdealMVM and the
// programmed resistances for circuit-level simulation. This is the
// weight-mapping step of the software flow (Fig. 3).
func (p Params) MapWeights(w [][]float64) (g, r [][]float64, err error) {
	if len(w) != p.Rows {
		return nil, nil, fmt.Errorf("crossbar: weight matrix has %d rows, want %d", len(w), p.Rows)
	}
	g = make([][]float64, p.Rows)
	r = make([][]float64, p.Rows)
	for m := range w {
		if len(w[m]) != p.Cols {
			return nil, nil, fmt.Errorf("crossbar: weight row %d has %d cols, want %d", m, len(w[m]), p.Cols)
		}
		g[m] = make([]float64, p.Cols)
		r[m] = make([]float64, p.Cols)
		for n, wv := range w[m] {
			_, res, err := p.Dev.QuantizeWeight(wv)
			if err != nil {
				return nil, nil, err
			}
			r[m][n] = res
			g[m][n] = 1 / res
		}
	}
	return g, r, nil
}

// BlocksFor returns how many crossbars of this size tile a weight matrix
// with `rows` inputs and `cols` outputs: blocks along the row (input) axis,
// along the column (output) axis, and the total.
func (p Params) BlocksFor(rows, cols int) (rowBlocks, colBlocks, total int) {
	rowBlocks = ceilDiv(rows, p.Rows)
	colBlocks = ceilDiv(cols, p.Cols)
	return rowBlocks, colBlocks, rowBlocks * colBlocks
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

// LayoutCoefficient is the area-correction factor derived from the paper's
// 130 nm 32×32 1T1R layout (Fig. 6): measured 3420 um² vs. the model's
// estimate, folded back into area estimation as a multiplier. See
// LayoutCalibration.
const layoutMeasuredArea = 3420.0 // um², 45um × 76um at 130 nm

// LayoutCalibration reproduces the Fig. 6 validation: it returns the model
// estimate for a 32×32 1T1R crossbar plus computation-oriented decoder at
// 130 nm, the measured layout area, and the resulting correction
// coefficient users can apply to their own technology.
func LayoutCalibration(decoderArea float64) (modelArea, measuredArea, coefficient float64) {
	dev := device.RRAM()
	dev.FeatureNM = 130
	p := Params{Rows: 32, Cols: 32, Dev: dev, RSense: DefaultRSense, VDrive: 2 * dev.ReadVoltage}
	modelArea = p.Area() + decoderArea
	return modelArea, layoutMeasuredArea, layoutMeasuredArea / modelArea
}

// MaxConductanceSum returns the largest possible column conductance sum,
// used by read-circuit range sizing.
func (p Params) MaxConductanceSum() float64 {
	return float64(p.Rows) / p.Dev.RMin
}

// OutputFullScale estimates the maximum column output voltage (all cells at
// minimum resistance, full-scale inputs, no interconnect loss); the ADC
// reference range is sized to this value.
func (p Params) OutputFullScale() float64 {
	g := p.MaxConductanceSum()
	return p.VDrive * g / (1/p.RSense + g)
}

// RequiredADCBits returns the read-circuit precision needed to resolve the
// analog MVM exactly, following the rule the paper cites from ISAAC: with
// b_in input bits, b_cell cell bits, and M rows accumulating, the result
// spans b_in + b_cell + ceil(log2 M) bits, clamped to the algorithm's data
// precision dataBits (neuromorphic computing tolerates 8-bit quantization).
func RequiredADCBits(inputBits, cellBits, rows, dataBits int) int {
	full := inputBits + cellBits + ceilLog2(rows)
	if full > dataBits {
		return dataBits
	}
	return full
}

func ceilLog2(n int) int {
	if n <= 1 {
		return 0
	}
	return int(math.Ceil(math.Log2(float64(n))))
}
