package crossbar

import (
	"math"
	"testing"
	"testing/quick"

	"mnsim/internal/device"
	"mnsim/internal/tech"
)

func refParams(rows, cols int) Params {
	return New(rows, cols, device.RRAM(), tech.MustInterconnect(45))
}

func TestNewDefaults(t *testing.T) {
	p := refParams(64, 64)
	if p.RSense != DefaultRSense {
		t.Errorf("RSense = %v", p.RSense)
	}
	if math.Abs(p.VDrive-2*p.Dev.ReadVoltage) > 1e-12 {
		t.Errorf("VDrive = %v, want 2x calibration", p.VDrive)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []func(*Params){
		func(p *Params) { p.Rows = 0 },
		func(p *Params) { p.Cols = -1 },
		func(p *Params) { p.RSense = 0 },
		func(p *Params) { p.VDrive = 0 },
		func(p *Params) { p.Dev.RMin = -5 },
	}
	for i, mutate := range cases {
		p := refParams(8, 8)
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestAreaScalesWithCells(t *testing.T) {
	small, big := refParams(32, 32), refParams(64, 64)
	ratio := big.Area() / small.Area()
	if math.Abs(ratio-4) > 1e-9 {
		t.Fatalf("area ratio = %v, want 4", ratio)
	}
	if got := small.Area(); math.Abs(got-1024*small.Dev.CellArea())/got > 1e-12 {
		t.Fatalf("area = %v", got)
	}
}

// COMPUTE selects all cells, READ only one row: compute power approaches
// Rows times the read power, reduced by the column divider backpressure
// that only the all-rows case builds up (Section II.C / V.A).
func TestComputeVsReadPower(t *testing.T) {
	p := refParams(128, 128)
	ratio := p.ComputePower() / p.ReadPower()
	if ratio >= 128 || ratio < 128.0/3 {
		t.Fatalf("power ratio = %v, want within [%v, 128)", ratio, 128.0/3)
	}
}

func TestComputePowerFormula(t *testing.T) {
	p := refParams(2, 2)
	g1 := p.Dev.MeanConductance()
	g2 := p.Dev.MeanSquareConductance()
	gs := 1 / p.RSense
	ev2 := p.VDrive * p.VDrive / 3
	ev1 := p.VDrive / 2
	pCol := 2*g1*ev2 - (2*g2*ev2+2*1*g1*g1*ev1*ev1)/(gs+2*g1)
	want := 2 * pCol * p.Dev.AvgPowerFactor(p.VDrive)
	if got := p.ComputePower(); math.Abs(got-want)/want > 1e-12 {
		t.Fatalf("ComputePower = %v, want %v", got, want)
	}
	if math.Abs(p.AvgDriveRMS()-p.VDrive/math.Sqrt(3)) > 1e-15 {
		t.Fatalf("AvgDriveRMS = %v", p.AvgDriveRMS())
	}
	// The backpressure correction only ever reduces power.
	naive := 4 * g1 * ev2 * p.Dev.AvgPowerFactor(p.VDrive)
	if got := p.ComputePower(); got >= naive {
		t.Fatalf("divider correction should reduce power: %v vs naive %v", got, naive)
	}
}

func TestLatencyGrowsWithSizeAndWire(t *testing.T) {
	small, big := refParams(32, 32), refParams(256, 256)
	if small.Latency() >= big.Latency() {
		t.Error("latency should grow with crossbar size")
	}
	// The settling time is dominated by the column capacitance, so the
	// higher-capacitance 90nm wires settle more slowly than 18nm ones.
	older := New(128, 128, device.RRAM(), tech.MustInterconnect(90))
	newer := New(128, 128, device.RRAM(), tech.MustInterconnect(18))
	if newer.Latency() >= older.Latency() {
		t.Error("higher-capacitance (older node) wires should settle slower")
	}
	if small.Latency() <= small.Dev.SwitchLatency {
		t.Error("latency must include the cell switch time")
	}
}

func TestComputeEnergy(t *testing.T) {
	p := refParams(64, 64)
	want := p.ComputePower() * p.Latency()
	if got := p.ComputeEnergy(); math.Abs(got-want)/want > 1e-12 {
		t.Fatalf("ComputeEnergy = %v, want %v", got, want)
	}
}

func TestWorstRParallel(t *testing.T) {
	p := refParams(64, 32)
	want := (p.Dev.RMin + 96*p.Wire.SegmentR) / 64
	if got := p.WorstRParallel(); math.Abs(got-want)/want > 1e-12 {
		t.Fatalf("WorstRParallel = %v, want %v", got, want)
	}
}

func TestIdealMVMKnown(t *testing.T) {
	p := refParams(2, 2)
	g := [][]float64{{1e-5, 2e-5}, {3e-5, 4e-5}}
	vin := []float64{0.1, 0.2}
	out, err := p.IdealMVM(g, vin)
	if err != nil {
		t.Fatal(err)
	}
	gs := 1 / p.RSense
	want0 := (1e-5*0.1 + 3e-5*0.2) / (gs + 4e-5)
	want1 := (2e-5*0.1 + 4e-5*0.2) / (gs + 6e-5)
	if math.Abs(out[0]-want0) > 1e-15 || math.Abs(out[1]-want1) > 1e-15 {
		t.Fatalf("IdealMVM = %v, want [%v %v]", out, want0, want1)
	}
}

func TestIdealMVMShapeErrors(t *testing.T) {
	p := refParams(2, 2)
	if _, err := p.IdealMVM([][]float64{{1, 1}}, []float64{1, 1}); err == nil {
		t.Error("row mismatch should fail")
	}
	if _, err := p.IdealMVM([][]float64{{1, 1}, {1, 1}}, []float64{1}); err == nil {
		t.Error("input mismatch should fail")
	}
	if _, err := p.IdealMVM([][]float64{{1}, {1, 1}}, []float64{1, 1}); err == nil {
		t.Error("ragged matrix should fail")
	}
}

// Property: IdealMVM is monotone in conductance — raising any cell's
// conductance cannot lower its column's output.
func TestIdealMVMMonotone(t *testing.T) {
	p := refParams(3, 2)
	f := func(seed uint8) bool {
		base := 1e-5 * (1 + float64(seed%16))
		g := [][]float64{{base, base}, {base, base}, {base, base}}
		vin := []float64{0.1, 0.2, 0.3}
		out1, err := p.IdealMVM(g, vin)
		if err != nil {
			return false
		}
		g[1][0] *= 2
		out2, err := p.IdealMVM(g, vin)
		if err != nil {
			return false
		}
		return out2[0] >= out1[0]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMapWeights(t *testing.T) {
	p := refParams(2, 2)
	g, r, err := p.MapWeights([][]float64{{0, 1}, {0.5, 0.25}})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r[0][0]-p.Dev.RMax)/p.Dev.RMax > 1e-12 {
		t.Errorf("weight 0 -> R %v, want RMax", r[0][0])
	}
	if math.Abs(r[0][1]-p.Dev.RMin)/p.Dev.RMin > 1e-12 {
		t.Errorf("weight 1 -> R %v, want RMin", r[0][1])
	}
	for m := range g {
		for n := range g[m] {
			if math.Abs(g[m][n]-1/r[m][n]) > 1e-15 {
				t.Errorf("g != 1/r at (%d,%d)", m, n)
			}
		}
	}
	if _, _, err := p.MapWeights([][]float64{{0, 2}, {0, 0}}); err == nil {
		t.Error("out-of-range weight should fail")
	}
	if _, _, err := p.MapWeights([][]float64{{0, 0}}); err == nil {
		t.Error("row mismatch should fail")
	}
	if _, _, err := p.MapWeights([][]float64{{0}, {0, 0}}); err == nil {
		t.Error("ragged weights should fail")
	}
}

func TestBlocksFor(t *testing.T) {
	p := refParams(128, 128)
	rb, cb, tot := p.BlocksFor(2048, 1024)
	if rb != 16 || cb != 8 || tot != 128 {
		t.Fatalf("BlocksFor(2048,1024) = %d,%d,%d", rb, cb, tot)
	}
	rb, cb, tot = p.BlocksFor(100, 100)
	if rb != 1 || cb != 1 || tot != 1 {
		t.Fatalf("BlocksFor(100,100) = %d,%d,%d", rb, cb, tot)
	}
	rb, cb, tot = p.BlocksFor(129, 1)
	if rb != 2 || cb != 1 || tot != 2 {
		t.Fatalf("BlocksFor(129,1) = %d,%d,%d", rb, cb, tot)
	}
}

func TestLayoutCalibration(t *testing.T) {
	model, measured, coeff := LayoutCalibration(500)
	if measured != 3420 {
		t.Fatalf("measured = %v", measured)
	}
	if model <= 0 || coeff <= 0 {
		t.Fatalf("model %v, coeff %v", model, coeff)
	}
	// The paper reports the layout larger than the estimate (extra routing
	// space), so the coefficient must exceed 1.
	if coeff <= 1 {
		t.Errorf("coefficient %v should exceed 1", coeff)
	}
	if math.Abs(coeff-measured/model) > 1e-12 {
		t.Errorf("coefficient inconsistent")
	}
}

func TestOutputFullScale(t *testing.T) {
	p := refParams(64, 64)
	fs := p.OutputFullScale()
	if fs <= 0 || fs >= p.VDrive {
		t.Fatalf("full scale %v outside (0, VDrive)", fs)
	}
	// More rows -> larger max column current -> larger full scale.
	if big := refParams(256, 256).OutputFullScale(); big <= fs {
		t.Error("full scale should grow with rows")
	}
}

func TestRequiredADCBits(t *testing.T) {
	// 8-bit inputs, 4-bit cells, 256 rows => 8+4+8=20 bits, clamped to 8.
	if got := RequiredADCBits(8, 4, 256, 8); got != 8 {
		t.Fatalf("clamped bits = %d, want 8", got)
	}
	// Tiny case below the clamp: 1+1+ceil(log2 2)=3.
	if got := RequiredADCBits(1, 1, 2, 8); got != 3 {
		t.Fatalf("small bits = %d, want 3", got)
	}
	if got := RequiredADCBits(1, 1, 1, 8); got != 2 {
		t.Fatalf("single-row bits = %d, want 2", got)
	}
}
