package telemetry

import (
	"fmt"
	"net/http"
	"net/http/pprof"
)

// The observability server behind the -serve flag: one http.Server whose
// mux exposes the live metrics registry, span aggregates, sweep progress,
// run identity, a health probe, and net/http/pprof — everything mounted
// on a private mux, never http.DefaultServeMux, so two listeners (or a
// library user embedding the handlers) can never race over global state.

// jsonHandler wraps a WriteJSON-style dump as an HTTP handler.
func jsonHandler(write func(w http.ResponseWriter) error) http.HandlerFunc {
	return func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := write(w); err != nil {
			Log().Warn("observability handler write failed", "path", req.URL.Path, "err", err)
		}
	}
}

// NewServeMux builds the full observability mux:
//
//	/metrics        Prometheus text exposition (version 0.0.4)
//	/metrics.json   the same registry as JSON
//	/trace          span wall-time aggregates as JSON
//	/trace.json     the causal span timeline as Chrome trace-event JSON
//	                (save and open in Perfetto / chrome://tracing)
//	/progress       live sweep phases: total/done, rate, ETA
//	/events         the flight-recorder ring buffer (most recent journal
//	                events) with total/dropped counts
//	/resources.json the resource sampler's ring (heap, GC, goroutines,
//	                scheduler latency) plus the run rollup so far
//	/runinfo        tool, args, seed, workers, Go/OS version, elapsed
//	/healthz        liveness probe ("ok")
//	/debug/pprof/*  net/http/pprof profiles
//
// run may be nil, in which case /runinfo reports 404.
func NewServeMux(run *RunInfo) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := defaultRegistry.WritePrometheus(w); err != nil {
			Log().Warn("observability handler write failed", "path", req.URL.Path, "err", err)
		}
	})
	mux.HandleFunc("/metrics.json", jsonHandler(func(w http.ResponseWriter) error {
		return defaultRegistry.WriteJSON(w)
	}))
	mux.HandleFunc("/trace", jsonHandler(func(w http.ResponseWriter) error {
		return defaultTracer.WriteJSON(w)
	}))
	mux.HandleFunc("/trace.json", jsonHandler(func(w http.ResponseWriter) error {
		return defaultTracer.WriteTraceEvents(w)
	}))
	mux.HandleFunc("/progress", jsonHandler(func(w http.ResponseWriter) error {
		return defaultProgress.WriteJSON(w)
	}))
	mux.HandleFunc("/events", jsonHandler(func(w http.ResponseWriter) error {
		return defaultJournal.WriteEventsJSON(w)
	}))
	mux.HandleFunc("/resources.json", jsonHandler(func(w http.ResponseWriter) error {
		return defaultResources.WriteJSON(w)
	}))
	if run != nil {
		mux.HandleFunc("/runinfo", jsonHandler(func(w http.ResponseWriter) error {
			return run.WriteJSON(w)
		}))
	}
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mountPprof(mux)
	return mux
}

// NewPprofMux builds a mux carrying only the /debug/pprof/* handlers —
// what the deprecated -pprof flag serves.
func NewPprofMux() *http.ServeMux {
	mux := http.NewServeMux()
	mountPprof(mux)
	return mux
}

// mountPprof registers the net/http/pprof handlers explicitly instead of
// relying on the package's init-time http.DefaultServeMux registration.
func mountPprof(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}
