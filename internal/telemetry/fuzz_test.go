package telemetry

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// FuzzReadJournal checks the journal parser never panics on arbitrary
// bytes and that anything it accepts round-trips: re-marshalling the
// accepted events as JSONL and re-reading them yields the same events.
// Mirrors the config and nvsim fuzzers.
func FuzzReadJournal(f *testing.F) {
	// v2 header + a span pair.
	f.Add([]byte(`{"seq":1,"t_ns":10,"type":"journal","data":{"schema_version":2,"tool":"mnsim-sim"}}
{"seq":2,"t_ns":20,"type":"span_start","id":"solve","data":{"trace":"abc"}}
{"seq":3,"t_ns":30,"type":"span_end","id":"solve"}
`))
	// v1-style minimal events (no data payloads).
	f.Add([]byte(`{"seq":1,"t_ns":1,"type":"journal"}
{"seq":2,"t_ns":2,"type":"metric","id":"mnsim_solver_iterations"}
`))
	// Future schema version: must be a SchemaVersionError, not a panic.
	f.Add([]byte(`{"seq":1,"t_ns":1,"type":"journal","data":{"schema_version":99}}
`))
	// Crash truncation: complete lines then a torn final line.
	f.Add([]byte(`{"seq":1,"t_ns":1,"type":"journal","data":{"schema_version":2}}
{"seq":2,"t_ns":2,"type":"span_st`))
	// Mid-file corruption and plain garbage.
	f.Add([]byte("{\"seq\":1,\"t_ns\":1,\"type\":\"journal\"}\nnot json\n{\"seq\":2,\"t_ns\":2,\"type\":\"metric\"}\n"))
	f.Add([]byte("\x00\x01\x02 garbage \xff"))
	f.Add([]byte(""))
	// One directory with fixed file names, overwritten per exec: a fresh
	// t.TempDir() every iteration throttles the fuzzer to a few execs per
	// second, and execs within a worker are sequential anyway.
	dir := f.TempDir()
	f.Fuzz(func(t *testing.T, raw []byte) {
		path := filepath.Join(dir, "journal.jsonl")
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Fatal(err)
		}
		events, err := ReadJournalFile(path)
		if err != nil {
			return // rejected input is fine; panics are not
		}
		// Round trip: accepted events re-marshal to a journal the reader
		// accepts again, byte-for-byte equal at the event level.
		var out []byte
		for _, ev := range events {
			line, err := json.Marshal(ev)
			if err != nil {
				t.Fatalf("accepted event failed to marshal: %v", err)
			}
			out = append(out, line...)
			out = append(out, '\n')
		}
		path2 := filepath.Join(dir, "roundtrip.jsonl")
		if err := os.WriteFile(path2, out, 0o644); err != nil {
			t.Fatal(err)
		}
		back, err := ReadJournalFile(path2)
		if err != nil {
			t.Fatalf("re-marshalled journal failed to re-read: %v\n%s", err, out)
		}
		if len(back) != len(events) {
			t.Fatalf("round trip drifted: %d events in, %d out", len(events), len(back))
		}
		for i := range events {
			a, _ := json.Marshal(events[i])
			b, _ := json.Marshal(back[i])
			if string(a) != string(b) {
				t.Fatalf("event %d drifted:\n in: %s\nout: %s", i, a, b)
			}
		}
	})
}
