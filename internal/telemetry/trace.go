package telemetry

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// Causal tracing: every run carries a trace ID, every span a span ID and a
// parent span ID, so the individual events of a sweep — candidate
// evaluations, circuit solves, Newton phases — form joinable causal chains
// instead of anonymous aggregates. The IDs are pure functions of the run
// seed and the span's position in the call tree (see deriveIDs), so two
// runs of the same workload produce identical traces regardless of worker
// count or scheduling — the same determinism contract the solver results
// obey.
//
// Completed spans are additionally recorded into a bounded in-memory ring
// (EnableTraceEvents) and, when the flight recorder is on, as journal
// "span" events; both feed the Chrome trace-event JSON export
// (-trace-events / /trace.json / mnsim-journal export) that Perfetto and
// chrome://tracing render as a timeline.

// traceSalt decorrelates the trace-ID family from the raw seed values the
// per-trial RNG streams already consume ("mnsim-tr" as ASCII).
const traceSalt = 0x6d6e73696d2d7472

// DefaultTraceEventCap bounds the in-memory span-record ring: enough to
// hold every span of a large sweep (candidates plus their solve phases)
// at roughly 100 bytes per record.
const DefaultTraceEventCap = 1 << 16

// mix64 is the splitmix64 finalizer — the same integer mixer the seeded
// per-trial RNG streams use, applied here to derive trace and span IDs.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// fnv64 is FNV-1a over s, the string-to-ID hash of span names and keys.
func fnv64(s string) uint64 {
	h := uint64(0xcbf29ce484222325)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 0x100000001b3
	}
	return h
}

// FormatID renders a trace/span ID as 16 lowercase hex digits — the wire
// form used in journal events and trace-event args (a JSON number would
// round uint64 through float64 and corrupt the ID).
func FormatID(id uint64) string {
	return fmt.Sprintf("%016x", id)
}

// ParseID parses the 16-hex-digit wire form back into an ID.
func ParseID(s string) (uint64, error) {
	id, err := strconv.ParseUint(s, 16, 64)
	if err != nil {
		return 0, fmt.Errorf("telemetry: bad trace/span id %q: %w", s, err)
	}
	return id, nil
}

// SetTraceSeed derives the tracer's trace ID from the run seed; spans
// started afterwards carry it. Flags.StartContext calls it with the run's
// recorded seed, so a seeded CLI run gets a stable, reproducible trace ID.
func (t *Tracer) SetTraceSeed(seed int64) {
	id := mix64(uint64(seed) ^ traceSalt)
	if id == 0 {
		id = 1
	}
	t.traceID.Store(id)
}

// SetTraceSeed seeds the default tracer's trace ID.
func SetTraceSeed(seed int64) { defaultTracer.SetTraceSeed(seed) }

// currentTraceID returns the tracer's trace ID, deriving the unseeded
// default lazily so an unseeded run still has a stable, nonzero ID.
func (t *Tracer) currentTraceID() uint64 {
	if id := t.traceID.Load(); id != 0 {
		return id
	}
	return mix64(traceSalt)
}

// deriveIDs computes a new span's (trace, span, parent) ID triple. The
// span ID mixes the parent's span ID, the span name, and a sibling
// discriminator: an explicit key when the caller supplied one
// (StartSpanKeyed — required for spans started concurrently under a shared
// parent, e.g. per-candidate spans in pooled sweep workers, where an
// ordinal would depend on scheduling), otherwise the parent's ordinal
// child counter (deterministic for sequentially started siblings).
func (t *Tracer) deriveIDs(parent *Span, name, key string) (traceID, spanID, parentID uint64) {
	if parent != nil {
		traceID = parent.traceID
		parentID = parent.spanID
	} else {
		traceID = t.currentTraceID()
	}
	var disc uint64
	if key != "" {
		disc = fnv64(key)
	} else if parent != nil {
		disc = uint64(parent.kids.Add(1))
	} else {
		disc = uint64(t.rootSeq.Add(1))
	}
	spanID = mix64(mix64(traceID^parentID) ^ mix64(fnv64(name)^disc))
	if spanID == 0 {
		spanID = 1
	}
	return traceID, spanID, parentID
}

// SpanRecord is one completed span: the unit of the trace-event ring and
// of the Chrome trace-event export. StartNS is wall-clock Unix
// nanoseconds; DurNS the span's elapsed time.
type SpanRecord struct {
	// Name is the span's leaf name, Path its full hierarchical name.
	Name string
	Path string
	// TraceID / SpanID / ParentID form the causal chain; ParentID is zero
	// for root spans.
	TraceID  uint64
	SpanID   uint64
	ParentID uint64
	StartNS  int64
	DurNS    int64
}

// EnableTraceEvents starts recording completed spans into the bounded
// in-memory ring (capacity <= 0 selects DefaultTraceEventCap; the capacity
// of an already-allocated ring is kept). ID derivation happens regardless —
// this only gates the per-span record retention.
func (t *Tracer) EnableTraceEvents(capacity int) {
	t.evMu.Lock()
	if t.evCap == 0 {
		if capacity <= 0 {
			capacity = DefaultTraceEventCap
		}
		t.evCap = capacity
	}
	t.evMu.Unlock()
	t.eventsOn.Store(true)
}

// DisableTraceEvents stops span-record retention; the ring is kept for
// inspection until ResetTraceEvents.
func (t *Tracer) DisableTraceEvents() { t.eventsOn.Store(false) }

// TraceEventsOn reports whether span records are being retained.
// Instrumented hot paths use it to gate optional fine-grained spans (e.g.
// the per-phase solve spans), so a run without tracing pays nothing.
func (t *Tracer) TraceEventsOn() bool { return t.eventsOn.Load() }

// EnableTraceEvents enables span-record retention on the default tracer.
func EnableTraceEvents(capacity int) { defaultTracer.EnableTraceEvents(capacity) }

// DisableTraceEvents stops span-record retention on the default tracer.
func DisableTraceEvents() { defaultTracer.DisableTraceEvents() }

// TraceEventsOn reports whether the default tracer retains span records.
func TraceEventsOn() bool { return defaultTracer.TraceEventsOn() }

// recordEvent appends a completed span to the ring, overwriting the oldest
// record when full (circular indexing — no per-overflow copying).
func (t *Tracer) recordEvent(r SpanRecord) {
	t.evMu.Lock()
	if len(t.events) < t.evCap {
		t.events = append(t.events, r)
	} else if t.evCap > 0 {
		t.events[t.evHead] = r
		t.evHead = (t.evHead + 1) % t.evCap
		t.evDropped++
	}
	t.evMu.Unlock()
}

// TraceEvents returns the retained span records oldest-first, plus how
// many were dropped when the ring overflowed.
func (t *Tracer) TraceEvents() (records []SpanRecord, dropped int64) {
	t.evMu.Lock()
	defer t.evMu.Unlock()
	records = make([]SpanRecord, 0, len(t.events))
	records = append(records, t.events[t.evHead:]...)
	records = append(records, t.events[:t.evHead]...)
	return records, t.evDropped
}

// ResetTraceEvents drops the ring and its counters; test helper.
func (t *Tracer) ResetTraceEvents() {
	t.evMu.Lock()
	t.events, t.evHead, t.evCap, t.evDropped = nil, 0, 0, 0
	t.evMu.Unlock()
	t.eventsOn.Store(false)
	t.rootSeq.Store(0)
	t.traceID.Store(0)
}

// SpanFromContext returns the innermost span carried by ctx, or nil.
func SpanFromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	s, _ := ctx.Value(spanCtxKey{}).(*Span)
	return s
}

// TraceID / SpanID / ParentID expose the span's causal identity; nil-safe
// (zero for a nil span).
func (s *Span) TraceID() uint64 {
	if s == nil {
		return 0
	}
	return s.traceID
}

// SpanID returns the span's own ID.
func (s *Span) SpanID() uint64 {
	if s == nil {
		return 0
	}
	return s.spanID
}

// ParentID returns the span's parent span ID (zero for root spans).
func (s *Span) ParentID() uint64 {
	if s == nil {
		return 0
	}
	return s.parentID
}

// StampTraceIDs writes the active span's trace/span/parent IDs into an
// event payload (wire form: 16-hex-digit strings). With no span open only
// the trace ID is stamped, so every journaled event of a run is at least
// trace-joinable.
func StampTraceIDs(ctx context.Context, data map[string]any) {
	if s := SpanFromContext(ctx); s != nil {
		data["trace_id"] = FormatID(s.traceID)
		data["span_id"] = FormatID(s.spanID)
		if s.parentID != 0 {
			data["parent_id"] = FormatID(s.parentID)
		}
		return
	}
	data["trace_id"] = FormatID(defaultTracer.currentTraceID())
}

// EmitEventCtx is EmitEvent with the active span's trace/span/parent IDs
// stamped into data — the bridge that makes solve, candidate, and trial
// events joinable against the span timeline. A no-op while the journal is
// disabled (data is not touched then).
func EmitEventCtx(ctx context.Context, typ EventType, id string, data map[string]any) {
	if !defaultJournal.Enabled() {
		return
	}
	if data == nil {
		data = map[string]any{}
	}
	StampTraceIDs(ctx, data)
	defaultJournal.Emit(typ, id, data)
}

// --- Chrome trace-event export ---------------------------------------------

// traceEvent is one Chrome trace-event ("X" complete event): ts/dur in
// microseconds, pid constant, tid a lane computed so concurrent causal
// chains render side by side.
type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// traceEventDoc is the exported JSON document, the "JSON object format" of
// the Chrome trace-event spec that Perfetto and chrome://tracing accept.
type traceEventDoc struct {
	DisplayTimeUnit string       `json:"displayTimeUnit"`
	TraceEvents     []traceEvent `json:"traceEvents"`
}

// assignLanes groups spans by their topmost known ancestor and packs the
// groups onto the fewest lanes such that no two time-overlapping groups
// share one — concurrent candidates of a parallel sweep land on separate
// lanes, while a sequential run collapses to lane 1. Deterministic for a
// given record set.
func assignLanes(recs []SpanRecord) map[uint64]int {
	byID := make(map[uint64]*SpanRecord, len(recs))
	for i := range recs {
		byID[recs[i].SpanID] = &recs[i]
	}
	top := func(r *SpanRecord) uint64 {
		cur := r
		// Bounded walk: a parent chain longer than the record count means a
		// cycle (corrupt input), so give up and treat the span as a root.
		for range recs {
			p, ok := byID[cur.ParentID]
			if !ok || cur.ParentID == 0 || p == cur {
				break
			}
			cur = p
		}
		return cur.SpanID
	}
	type interval struct {
		id         uint64
		start, end int64
	}
	groups := map[uint64]*interval{}
	for i := range recs {
		r := &recs[i]
		g := top(r)
		iv := groups[g]
		if iv == nil {
			iv = &interval{id: g, start: r.StartNS, end: r.StartNS + r.DurNS}
			groups[g] = iv
			continue
		}
		if r.StartNS < iv.start {
			iv.start = r.StartNS
		}
		if e := r.StartNS + r.DurNS; e > iv.end {
			iv.end = e
		}
	}
	ivs := make([]*interval, 0, len(groups))
	for _, iv := range groups {
		ivs = append(ivs, iv)
	}
	sort.Slice(ivs, func(i, j int) bool {
		if ivs[i].start != ivs[j].start {
			return ivs[i].start < ivs[j].start
		}
		return ivs[i].id < ivs[j].id
	})
	var laneEnds []int64
	groupLane := map[uint64]int{}
	for _, iv := range ivs {
		lane := -1
		for l, end := range laneEnds {
			if end <= iv.start {
				lane = l
				break
			}
		}
		if lane < 0 {
			lane = len(laneEnds)
			laneEnds = append(laneEnds, 0)
		}
		laneEnds[lane] = iv.end
		groupLane[iv.id] = lane
	}
	lanes := make(map[uint64]int, len(recs))
	for i := range recs {
		lanes[recs[i].SpanID] = groupLane[top(&recs[i])] + 1
	}
	return lanes
}

// WriteTraceEventsTo writes span records as a Chrome trace-event JSON
// document. Timestamps are microseconds relative to the earliest span
// start, so the timeline opens at t=0 in Perfetto.
func WriteTraceEventsTo(w io.Writer, recs []SpanRecord) error {
	t0 := int64(0)
	for i := range recs {
		if i == 0 || recs[i].StartNS < t0 {
			t0 = recs[i].StartNS
		}
	}
	sorted := append([]SpanRecord(nil), recs...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].StartNS != sorted[j].StartNS {
			return sorted[i].StartNS < sorted[j].StartNS
		}
		return sorted[i].SpanID < sorted[j].SpanID
	})
	lanes := assignLanes(sorted)
	doc := traceEventDoc{DisplayTimeUnit: "ms", TraceEvents: make([]traceEvent, 0, len(sorted))}
	for _, r := range sorted {
		args := map[string]any{
			"path":     r.Path,
			"trace_id": FormatID(r.TraceID),
			"span_id":  FormatID(r.SpanID),
		}
		if r.ParentID != 0 {
			args["parent_id"] = FormatID(r.ParentID)
		}
		doc.TraceEvents = append(doc.TraceEvents, traceEvent{
			Name: r.Name,
			Cat:  "span",
			Ph:   "X",
			TS:   float64(r.StartNS-t0) / 1e3,
			Dur:  float64(r.DurNS) / 1e3,
			PID:  1,
			TID:  lanes[r.SpanID],
			Args: args,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(doc)
}

// WriteTraceEvents writes the tracer's retained span records as a Chrome
// trace-event document.
func (t *Tracer) WriteTraceEvents(w io.Writer) error {
	recs, _ := t.TraceEvents()
	return WriteTraceEventsTo(w, recs)
}

// WriteTraceEventsFile dumps the default tracer's span records as a Chrome
// trace-event JSON file (atomic write), the -trace-events flag's sink.
func WriteTraceEventsFile(path string) error {
	return writeFileAtomic(path, defaultTracer.WriteTraceEvents)
}

// SpanRecordsFromEvents reconstructs span records from a journal's "span"
// events — the post-hoc path mnsim-journal export uses to turn any
// journaled run into a Perfetto timeline. Events with missing or
// malformed span payloads are skipped.
func SpanRecordsFromEvents(events []Event) []SpanRecord {
	var recs []SpanRecord
	for _, ev := range events {
		if ev.Type != EvSpan {
			continue
		}
		r, ok := spanRecordFromData(ev)
		if !ok {
			continue
		}
		recs = append(recs, r)
	}
	return recs
}

// spanRecordFromData decodes one span event payload.
func spanRecordFromData(ev Event) (SpanRecord, bool) {
	name, _ := ev.Data["name"].(string)
	path, _ := ev.Data["path"].(string)
	if name == "" && path == "" {
		return SpanRecord{}, false
	}
	if name == "" {
		name = path
	}
	if path == "" {
		path = name
	}
	parse := func(key string) uint64 {
		s, _ := ev.Data[key].(string)
		if s == "" {
			return 0
		}
		id, err := ParseID(s)
		if err != nil {
			return 0
		}
		return id
	}
	r := SpanRecord{
		Name:     name,
		Path:     path,
		TraceID:  parse("trace_id"),
		SpanID:   parse("span_id"),
		ParentID: parse("parent_id"),
	}
	if r.SpanID == 0 {
		return SpanRecord{}, false
	}
	durUS, _ := ev.Data["dur_us"].(float64)
	r.DurNS = int64(durUS * 1e3)
	if startUS, ok := ev.Data["start_us"].(float64); ok {
		r.StartNS = int64(startUS * 1e3)
	} else {
		// Fall back to the event envelope time minus the duration — the
		// event is emitted at span end.
		r.StartNS = ev.TNS - r.DurNS
	}
	return r, true
}
