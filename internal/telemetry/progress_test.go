package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestPhaseLifecycle(t *testing.T) {
	tr := NewProgressTracker()
	p := tr.StartPhase("test.items", 10)
	p.Add(3)
	p.Inc()
	st := p.Status(time.Now())
	if st.Name != "test.items" || st.Done != 4 || st.Total != 10 {
		t.Fatalf("status = %+v", st)
	}
	if !st.Running {
		t.Fatal("phase should be running")
	}
	if st.Fraction < 0.39 || st.Fraction > 0.41 {
		t.Fatalf("fraction = %g, want 0.4", st.Fraction)
	}
	// done > 0 and elapsed > 0 imply a fallback overall rate, hence an ETA.
	time.Sleep(time.Millisecond)
	st = p.Status(time.Now())
	if st.RatePerSec <= 0 {
		t.Fatalf("rate = %g, want > 0", st.RatePerSec)
	}
	if st.ETASeconds < 0 {
		t.Fatalf("eta = %g, want >= 0 mid-phase", st.ETASeconds)
	}
	p.Finish()
	end1 := p.Status(time.Now())
	if end1.Running {
		t.Fatal("phase still running after Finish")
	}
	if end1.ETASeconds != 0 {
		t.Fatalf("finished eta = %g, want 0", end1.ETASeconds)
	}
	time.Sleep(2 * time.Millisecond)
	end2 := p.Status(time.Now())
	if end2.ElapsedSeconds != end1.ElapsedSeconds {
		t.Fatal("elapsed kept growing after Finish")
	}
}

func TestPhaseRestartReplaces(t *testing.T) {
	tr := NewProgressTracker()
	p1 := tr.StartPhase("sweep", 5)
	p1.Add(5)
	p1.Finish()
	tr.StartPhase("sweep", 7)
	sts := tr.Statuses()
	if len(sts) != 1 {
		t.Fatalf("got %d phases, want 1", len(sts))
	}
	if sts[0].Done != 0 || sts[0].Total != 7 || !sts[0].Running {
		t.Fatalf("restarted phase = %+v", sts[0])
	}
}

func TestRollingRate(t *testing.T) {
	now := time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC).UnixNano()
	sec := int64(time.Second)
	// 100 items in the 4s since the oldest sample -> 25/s.
	samples := []progressSample{{atNS: now - 4*sec, done: 100}}
	if r := rollingRate(samples, now, 200, 60); r != 25 {
		t.Fatalf("rolling rate = %g, want 25", r)
	}
	// No samples: fall back to done/elapsed.
	if r := rollingRate(nil, now, 30, 10); r != 3 {
		t.Fatalf("fallback rate = %g, want 3", r)
	}
	// Zero progress since the sample: fall back to the overall average.
	samples = []progressSample{{atNS: now - sec, done: 50}}
	if r := rollingRate(samples, now, 50, 10); r != 5 {
		t.Fatalf("stalled rate = %g, want overall 5", r)
	}
	if r := rollingRate(nil, now, 0, 10); r != 0 {
		t.Fatalf("empty rate = %g, want 0", r)
	}
}

func TestProgressWriteJSON(t *testing.T) {
	tr := NewProgressTracker()
	p := tr.StartPhase("dse.candidates", 405)
	p.Add(123)
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Phases []PhaseStatus `json:"phases"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("progress JSON malformed: %v\n%s", err, buf.String())
	}
	if len(doc.Phases) != 1 || doc.Phases[0].Done != 123 || doc.Phases[0].Total != 405 {
		t.Fatalf("progress doc = %+v", doc)
	}
}

func TestFormatStatusLine(t *testing.T) {
	line := FormatStatusLine([]PhaseStatus{
		{Name: "dse.candidates", Total: 405, Done: 123, Running: true,
			Fraction: 123.0 / 405, RatePerSec: 1234, ETASeconds: 2.1},
		{Name: "done.phase", Total: 10, Done: 10, Running: false},
	})
	for _, want := range []string{"dse.candidates", "123/405", "30%", "1.2k/s", "eta"} {
		if !strings.Contains(line, want) {
			t.Errorf("line %q missing %q", line, want)
		}
	}
	if strings.Contains(line, "done.phase") {
		t.Errorf("line %q shows a finished phase", line)
	}
	if FormatStatusLine(nil) != "" {
		t.Error("empty snapshot should render to empty line")
	}
}

func TestNilPhaseSafe(t *testing.T) {
	var p *Phase
	p.Inc()
	p.Add(3)
	p.SetTotal(5)
	p.Finish()
	if p.Name() != "" {
		t.Fatal("nil name")
	}
	_ = p.Status(time.Now())
}

// TestPhaseConcurrent exercises the Inc/Status paths from many goroutines;
// run with -race (CI does) to verify the counters are data-race free.
func TestPhaseConcurrent(t *testing.T) {
	tr := NewProgressTracker()
	p := tr.StartPhase("race", 10000)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				p.Inc()
			}
		}()
	}
	stop := make(chan struct{})
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				tr.Statuses()
			}
		}
	}()
	wg.Wait()
	close(stop)
	if got := p.Status(time.Now()).Done; got != 8000 {
		t.Fatalf("done = %d, want 8000", got)
	}
}
