package telemetry

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// newTestJournal opens a file-backed journal in a temp dir and guarantees
// it is closed and reset at test end.
func newTestJournal(t *testing.T, ringCap int) (*Journal, string) {
	t.Helper()
	j := NewJournal(ringCap)
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	if err := j.Open(path); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { j.Close() })
	return j, path
}

// The JSONL schema is a contract with replay tooling: envelope keys in a
// fixed order, data keys sorted. A drift here breaks every consumer.
func TestJournalSchemaGolden(t *testing.T) {
	ev := Event{
		Seq:  7,
		TNS:  1700000000123456789,
		Type: EvNewtonIter,
		ID:   "solve-3",
		Data: map[string]any{"iter": 2, "max_dv": 0.5, "cg_iters": 41},
	}
	b, err := json.Marshal(ev)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"seq":7,"t_ns":1700000000123456789,"type":"newton_iter","id":"solve-3","data":{"cg_iters":41,"iter":2,"max_dv":0.5}}`
	if string(b) != want {
		t.Fatalf("journal line schema drifted:\n got %s\nwant %s", b, want)
	}
	var back Event
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.Seq != ev.Seq || back.Type != ev.Type || back.ID != ev.ID {
		t.Fatalf("round-trip mismatch: %+v", back)
	}
}

// Every event type constant must be a valid JSONL journal line producer.
func TestJournalEventTypes(t *testing.T) {
	j, path := newTestJournal(t, 16)
	types := []EventType{EvSolveStart, EvNewtonIter, EvSolveEnd,
		EvTransientSettle, EvCandidateEval, EvMCTrial, EvPhase, EvSpan,
		EvResourceSample, EvWatchdogStall, EvMemPressure}
	for i, typ := range types {
		j.Emit(typ, fmt.Sprintf("id-%d", i), map[string]any{"k": i})
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	events, err := ReadJournalFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Header event plus one per type.
	if len(events) != len(types)+1 {
		t.Fatalf("got %d events, want %d", len(events), len(types)+1)
	}
	if events[0].Type != EvJournal {
		t.Fatalf("first event %q, want journal header", events[0].Type)
	}
	if v, ok := events[0].Data["schema_version"].(float64); !ok || int(v) != JournalSchemaVersion {
		t.Fatalf("header schema_version = %v", events[0].Data["schema_version"])
	}
	for i, typ := range types {
		ev := events[i+1]
		if ev.Type != typ {
			t.Errorf("event %d type %q, want %q", i, ev.Type, typ)
		}
		if ev.Seq != int64(i+2) {
			t.Errorf("event %d seq %d, want %d", i, ev.Seq, i+2)
		}
	}
}

// Forward compatibility within schema v2: event types this reader has
// never heard of (emitted by a newer writer) must survive a round trip
// with their type and data intact, not error or get dropped. New event
// kinds are added without a version bump; only envelope changes bump.
func TestJournalReaderToleratesUnknownEventTypes(t *testing.T) {
	j, path := newTestJournal(t, 16)
	j.Emit(EvSolveStart, "solve-1", map[string]any{"m": 4})
	j.Emit(EventType("quantum_flux"), "future-1", map[string]any{"flux": 0.75, "units": "Wb"})
	j.Emit(EvSolveEnd, "solve-1", map[string]any{"ok": true})
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	events, err := ReadJournalFile(path)
	if err != nil {
		t.Fatalf("reader rejected unknown event type: %v", err)
	}
	if len(events) != 4 { // header + 3 emits
		t.Fatalf("got %d events, want 4", len(events))
	}
	unk := events[2]
	if unk.Type != EventType("quantum_flux") {
		t.Fatalf("unknown type mangled: %q", unk.Type)
	}
	if unk.ID != "future-1" {
		t.Fatalf("unknown event id %q", unk.ID)
	}
	if v, ok := unk.Data["flux"].(float64); !ok || v != 0.75 {
		t.Fatalf("unknown event data mangled: %v", unk.Data)
	}
	// And the known events around it are untouched.
	if events[1].Type != EvSolveStart || events[3].Type != EvSolveEnd {
		t.Fatalf("neighbors mangled: %q, %q", events[1].Type, events[3].Type)
	}
}

// Concurrent writers must interleave cleanly: run with -race, and every
// line in the file must still be complete, parseable JSON with unique seq.
func TestJournalConcurrentWriters(t *testing.T) {
	j, path := newTestJournal(t, 64)
	const workers, perWorker = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				j.Emit(EvMCTrial, fmt.Sprintf("w%d", w), map[string]any{"trial": i})
			}
		}(w)
	}
	wg.Wait()
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	events, err := ReadJournalFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != workers*perWorker+1 {
		t.Fatalf("got %d events, want %d", len(events), workers*perWorker+1)
	}
	seen := map[int64]bool{}
	for _, ev := range events {
		if seen[ev.Seq] {
			t.Fatalf("duplicate seq %d", ev.Seq)
		}
		seen[ev.Seq] = true
	}
}

// A crash mid-write leaves a truncated final line; the reader must return
// every complete event and skip the torn tail.
func TestJournalReaderToleratesTruncatedTail(t *testing.T) {
	j, path := newTestJournal(t, 16)
	j.Emit(EvSolveStart, "solve-1", map[string]any{"m": 4})
	j.Emit(EvSolveEnd, "solve-1", map[string]any{"ok": true})
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Simulate the crash: chop the file mid-way through the last line.
	if err := os.WriteFile(path, b[:len(b)-10], 0o644); err != nil {
		t.Fatal(err)
	}
	events, err := ReadJournalFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 { // header + solve_start survive
		t.Fatalf("got %d events after truncation, want 2", len(events))
	}
	if events[1].Type != EvSolveStart {
		t.Fatalf("surviving event %q", events[1].Type)
	}
}

// Corruption in the middle of the file (not at the tail) must error.
func TestJournalReaderRejectsMidFileCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "corrupt.jsonl")
	lines := `{"seq":1,"t_ns":1,"type":"journal"}
{"seq":2,"t_ns":2,"type":"solve_sta
{"seq":3,"t_ns":3,"type":"solve_end"}
`
	if err := os.WriteFile(path, []byte(lines), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadJournalFile(path); err == nil {
		t.Fatal("mid-file corruption not detected")
	}
}

// The ring buffer bounds memory: old events drop, the drop is counted, and
// the file still holds everything.
func TestJournalRingBounded(t *testing.T) {
	j, path := newTestJournal(t, 4)
	for i := 0; i < 10; i++ {
		j.Emit(EvPhase, "", map[string]any{"i": i})
	}
	var sb strings.Builder
	if err := j.WriteEventsJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var out struct {
		Enabled bool    `json:"enabled"`
		Total   int64   `json:"total"`
		Dropped int64   `json:"dropped"`
		Events  []Event `json:"events"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Events) != 4 {
		t.Fatalf("ring holds %d, want 4", len(out.Events))
	}
	if out.Total != 11 || out.Dropped != 7 { // header + 10 emits, cap 4
		t.Fatalf("total %d dropped %d, want 11/7", out.Total, out.Dropped)
	}
	// Ring keeps the most recent events in order.
	for i := 1; i < len(out.Events); i++ {
		if out.Events[i].Seq != out.Events[i-1].Seq+1 {
			t.Fatalf("ring out of order: %d after %d", out.Events[i].Seq, out.Events[i-1].Seq)
		}
	}
	if out.Events[len(out.Events)-1].Seq != 11 {
		t.Fatalf("newest ring seq %d, want 11", out.Events[len(out.Events)-1].Seq)
	}
	j.Close()
	events, err := ReadJournalFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 11 {
		t.Fatalf("file holds %d events, want all 11", len(events))
	}
}

// Disabled journal: Emit is a cheap no-op, SaveSnapshot declines.
func TestJournalDisabledNoOp(t *testing.T) {
	j := NewJournal(4)
	j.Emit(EvSolveStart, "x", map[string]any{"a": 1})
	var sb strings.Builder
	if err := j.WriteEventsJSON(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `"total": 0`) {
		t.Fatalf("disabled journal recorded: %s", sb.String())
	}
	if path, err := j.SaveSnapshot("divergence", map[string]int{"x": 1}); err != nil || path != "" {
		t.Fatalf("SaveSnapshot on disabled journal: path %q err %v", path, err)
	}
}

// Snapshots land next to the journal file and carry the payload verbatim.
func TestJournalSaveSnapshot(t *testing.T) {
	j, path := newTestJournal(t, 4)
	snapPath, err := j.SaveSnapshot("divergence", map[string]any{"m": 2, "vin": []float64{0.25, 0.5}})
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Dir(snapPath) != filepath.Dir(path) {
		t.Fatalf("snapshot %q not next to journal %q", snapPath, path)
	}
	if !strings.Contains(filepath.Base(snapPath), "divergence") {
		t.Fatalf("snapshot name %q missing kind", snapPath)
	}
	b, err := os.ReadFile(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	var back map[string]any
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back["m"].(float64) != 2 {
		t.Fatalf("payload mangled: %v", back)
	}
	// Journal-referenced snapshot discovery.
	j.Emit(EvSolveEnd, "solve-1", map[string]any{"ok": false, "snapshot": snapPath})
	j.Close()
	events, err := ReadJournalFile(path)
	if err != nil {
		t.Fatal(err)
	}
	paths := JournalSnapshotPaths(path, events)
	if len(paths) != 1 || paths[0] != snapPath {
		t.Fatalf("JournalSnapshotPaths = %v, want [%s]", paths, snapPath)
	}
}

// The /events endpoint on the serve mux streams the default journal ring.
func TestServeMuxEvents(t *testing.T) {
	defaultJournal.Reset()
	defaultJournal.EnableRing()
	defer func() {
		defaultJournal.Close()
		defaultJournal.Reset()
	}()
	EmitEvent(EvCandidateEval, "cand-8x2@45", map[string]any{"outcome": "ok"})
	srv := httptest.NewServer(NewServeMux(nil))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type %q", ct)
	}
	var out struct {
		Enabled bool    `json:"enabled"`
		Events  []Event `json:"events"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if !out.Enabled || len(out.Events) != 1 || out.Events[0].Type != EvCandidateEval {
		t.Fatalf("events payload %+v", out)
	}
	if out.Events[0].ID != "cand-8x2@45" {
		t.Fatalf("event id %q", out.Events[0].ID)
	}
}
