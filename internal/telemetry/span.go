package telemetry

import (
	"context"
	"encoding/json"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Tracer aggregates span wall times per hierarchical span name. It is not
// a distributed tracer: there is no per-span event log, only the
// per-name aggregate (count / total / min / max), which is what the
// paper-style speed analysis needs and what stays O(1) in memory across a
// 10,220-candidate sweep.
type Tracer struct {
	mu  sync.Mutex
	agg map[string]*spanAgg

	// Causal-trace state (trace.go): the run's trace ID, a counter
	// discriminating sequentially started root spans, and the bounded ring
	// of completed span records behind EnableTraceEvents.
	traceID   atomic.Uint64
	rootSeq   atomic.Int64
	eventsOn  atomic.Bool
	evMu      sync.Mutex
	events    []SpanRecord
	evHead    int
	evCap     int
	evDropped int64
}

type spanAgg struct {
	count    int64
	total    time.Duration
	min, max time.Duration
}

// NewTracer returns an empty tracer.
func NewTracer() *Tracer { return &Tracer{agg: map[string]*spanAgg{}} }

// spanCtxKey carries the innermost open span through a context.
type spanCtxKey struct{}

// Span is one open timing region. End it exactly once; extra End calls
// are no-ops, and a nil Span is safe to End (so helpers can return nil
// spans when tracing is off).
type Span struct {
	tracer *Tracer
	name   string
	path   string
	start  time.Time
	done   atomic.Bool

	// Causal identity (trace.go): deterministic IDs derived from the run
	// seed and the span's position in the call tree; kids discriminates
	// sequentially started children.
	traceID  uint64
	spanID   uint64
	parentID uint64
	kids     atomic.Int64
}

// StartSpan opens a span named name under the innermost span carried by
// ctx (the full path is parent/child), returning the derived context and
// the span. Record the elapsed time with End. Spans started concurrently
// under one shared parent should use StartSpanKeyed so their IDs stay
// deterministic.
func (t *Tracer) StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	return t.StartSpanKeyed(ctx, name, "")
}

// StartSpanKeyed is StartSpan with an explicit sibling key folded into the
// span-ID derivation instead of the parent's ordinal child counter. Use it
// when siblings start concurrently (pooled workers), where counter order
// would depend on scheduling — a stable key (e.g. a candidate ID) keeps the
// span ID identical across runs and worker counts. An empty key means
// ordinal derivation.
func (t *Tracer) StartSpanKeyed(ctx context.Context, name, key string) (context.Context, *Span) {
	path := name
	parent, _ := ctx.Value(spanCtxKey{}).(*Span)
	if parent != nil {
		path = parent.path + "/" + name
	}
	traceID, spanID, parentID := t.deriveIDs(parent, name, key)
	s := &Span{
		tracer:   t,
		name:     name,
		path:     path,
		start:    time.Now(),
		traceID:  traceID,
		spanID:   spanID,
		parentID: parentID,
	}
	return context.WithValue(ctx, spanCtxKey{}, s), s
}

// StartSpan opens a span on the process-wide default tracer.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	return defaultTracer.StartSpan(ctx, name)
}

// StartSpanKeyed opens a keyed span on the process-wide default tracer.
func StartSpanKeyed(ctx context.Context, name, key string) (context.Context, *Span) {
	return defaultTracer.StartSpanKeyed(ctx, name, key)
}

// Name returns the span's full hierarchical name.
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.path
}

// End closes the span and folds its wall time into the tracer's per-name
// aggregate, returning the elapsed duration (zero on repeated End). When
// trace events are on, the completed span is additionally retained as a
// SpanRecord and — on the default tracer with the journal recording —
// emitted as a journal "span" event (times in microseconds, IDs in hex
// wire form).
func (s *Span) End() time.Duration {
	if s == nil || s.done.Swap(true) {
		return 0
	}
	d := time.Since(s.start)
	s.tracer.record(s.path, d)
	if s.tracer.eventsOn.Load() {
		rec := SpanRecord{
			Name:     s.name,
			Path:     s.path,
			TraceID:  s.traceID,
			SpanID:   s.spanID,
			ParentID: s.parentID,
			StartNS:  s.start.UnixNano(),
			DurNS:    d.Nanoseconds(),
		}
		s.tracer.recordEvent(rec)
		if s.tracer == defaultTracer && defaultJournal.Enabled() {
			data := map[string]any{
				"name":     s.name,
				"path":     s.path,
				"trace_id": FormatID(s.traceID),
				"span_id":  FormatID(s.spanID),
				"start_us": float64(rec.StartNS) / 1e3,
				"dur_us":   float64(rec.DurNS) / 1e3,
			}
			if s.parentID != 0 {
				data["parent_id"] = FormatID(s.parentID)
			}
			defaultJournal.Emit(EvSpan, "", data)
		}
	}
	return d
}

func (t *Tracer) record(path string, d time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	a := t.agg[path]
	if a == nil {
		a = &spanAgg{min: d, max: d}
		t.agg[path] = a
	}
	a.count++
	a.total += d
	if d < a.min {
		a.min = d
	}
	if d > a.max {
		a.max = d
	}
}

// Reset drops every aggregate; intended for tests.
func (t *Tracer) Reset() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.agg = map[string]*spanAgg{}
}

// SpanStat is the exported aggregate of one span name.
type SpanStat struct {
	Name    string  `json:"name"`
	Count   int64   `json:"count"`
	TotalUS float64 `json:"total_us"`
	AvgUS   float64 `json:"avg_us"`
	MinUS   float64 `json:"min_us"`
	MaxUS   float64 `json:"max_us"`
}

// Stats returns the per-name aggregates sorted by name.
func (t *Tracer) Stats() []SpanStat {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SpanStat, 0, len(t.agg))
	for name, a := range t.agg {
		us := func(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }
		out = append(out, SpanStat{
			Name:    name,
			Count:   a.count,
			TotalUS: us(a.total),
			AvgUS:   us(a.total) / float64(a.count),
			MinUS:   us(a.min),
			MaxUS:   us(a.max),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Stat returns the aggregate for one span name and whether it exists.
func (t *Tracer) Stat(name string) (SpanStat, bool) {
	for _, s := range t.Stats() {
		if s.Name == name {
			return s, true
		}
	}
	return SpanStat{}, false
}

// WriteJSON writes the trace aggregates as one JSON document:
// {"spans": [{name, count, total_us, avg_us, min_us, max_us}, ...]}.
func (t *Tracer) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		Spans []SpanStat `json:"spans"`
	}{Spans: t.Stats()})
}
