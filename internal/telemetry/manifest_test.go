package telemetry

import (
	"context"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestManifestWriteLoadRoundTrip(t *testing.T) {
	run := NewRunInfo()
	run.SetTool("mnsim-test")
	run.SetArgs([]string{"-case", "largebank"})
	run.SetSeed(42)
	run.SetWorkers(4)
	run.SetConfigHash(HashStrings("case=largebank"))
	GetCounter("mnsim_manifesttest_total").Add(7)
	_, sp := StartSpan(context.Background(), "manifesttest.phase")
	sp.End()

	path := filepath.Join(t.TempDir(), "run.json")
	if err := WriteManifestFile(path, run); err != nil {
		t.Fatal(err)
	}
	m, err := LoadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if m.Tool != "mnsim-test" || m.Seed == nil || *m.Seed != 42 || m.Workers != 4 {
		t.Fatalf("manifest identity = %+v", m)
	}
	if m.ExitStatus != 0 || m.Error != "" {
		t.Fatalf("clean run has exit %d error %q", m.ExitStatus, m.Error)
	}
	if m.Metrics.Counters["mnsim_manifesttest_total"] != 7 {
		t.Fatalf("metrics snapshot missing counter: %+v", m.Metrics.Counters)
	}
	found := false
	for _, p := range m.Phases {
		if p.Name == "manifesttest.phase" && p.Count >= 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("manifest missing span phase: %+v", m.Phases)
	}
	// No leftover temp files from the atomic write.
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("dump dir has %d entries, want just run.json", len(entries))
	}
}

func TestManifestRecordsError(t *testing.T) {
	run := NewRunInfo()
	run.SetTool("mnsim-test")
	run.SetError(os.ErrClosed)
	m := run.Manifest()
	if m.ExitStatus != 1 || !strings.Contains(m.Error, "closed") {
		t.Fatalf("failed run manifest = exit %d error %q", m.ExitStatus, m.Error)
	}
}

func TestManifestValidate(t *testing.T) {
	good := NewRunInfo()
	good.SetTool("t")
	if err := good.Manifest().Validate(); err != nil {
		t.Fatalf("valid manifest rejected: %v", err)
	}
	bad := good.Manifest()
	bad.SchemaVersion = 99
	if err := bad.Validate(); err == nil {
		t.Fatal("wrong schema version accepted")
	}
	bad = good.Manifest()
	bad.Tool = ""
	if err := bad.Validate(); err == nil {
		t.Fatal("missing tool accepted")
	}
}

func TestLoadManifestRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	trunc := filepath.Join(dir, "trunc.json")
	if err := os.WriteFile(trunc, []byte(`{"schema_version":1,"tool":"x"`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadManifest(trunc); err == nil {
		t.Fatal("truncated manifest accepted")
	}
	if _, err := LoadManifest(filepath.Join(dir, "absent.json")); err == nil {
		t.Fatal("missing manifest accepted")
	}
}

func TestWriteFileAtomicLeavesOldFileOnError(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.json")
	if err := os.WriteFile(path, []byte("old"), 0o644); err != nil {
		t.Fatal(err)
	}
	err := writeFileAtomic(path, func(w io.Writer) error {
		w.Write([]byte("partial"))
		return os.ErrClosed
	})
	if err == nil {
		t.Fatal("write error swallowed")
	}
	b, err := os.ReadFile(path)
	if err != nil || string(b) != "old" {
		t.Fatalf("old file clobbered: %q %v", b, err)
	}
	entries, _ := os.ReadDir(filepath.Dir(path))
	if len(entries) != 1 {
		t.Fatalf("temp file leaked: %d entries", len(entries))
	}
}

func TestRunInfoJSON(t *testing.T) {
	run := NewRunInfo()
	run.SetTool("mnsim-dse")
	var sb strings.Builder
	if err := run.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal([]byte(sb.String()), &doc); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"tool", "pid", "start_time", "go_version", "os", "arch"} {
		if _, ok := doc[key]; !ok {
			t.Errorf("runinfo missing %q: %s", key, sb.String())
		}
	}
}
