package telemetry

import (
	"bufio"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// Prometheus text exposition format (version 0.0.4) conformance checks.
// These parse the exporter's raw output and assert the invariants a real
// Prometheus scraper depends on, so a formatting regression fails loudly
// instead of silently dropping series at scrape time.

var metricNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)

// expoSample is one parsed non-comment exposition line.
type expoSample struct {
	name  string // full series name, e.g. mnsim_x_bucket
	le    string // le label value when present
	value string
	line  int
}

// parseExposition splits exposition text into comment directives and
// samples, failing the test on any line that is neither.
func parseExposition(t *testing.T, text string) (helps, types map[string]string, samples []expoSample) {
	t.Helper()
	helps = map[string]string{}
	types = map[string]string{}
	sc := bufio.NewScanner(strings.NewReader(text))
	n := 0
	for sc.Scan() {
		n++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			rest := strings.TrimPrefix(line, "# HELP ")
			name, help, _ := strings.Cut(rest, " ")
			if _, dup := helps[name]; dup {
				t.Errorf("line %d: duplicate HELP for %s", n, name)
			}
			helps[name] = help
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(fields) != 2 {
				t.Fatalf("line %d: malformed TYPE line %q", n, line)
			}
			if _, dup := types[fields[0]]; dup {
				t.Errorf("line %d: duplicate TYPE for %s", n, fields[0])
			}
			switch fields[1] {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				t.Errorf("line %d: unknown metric type %q", n, fields[1])
			}
			types[fields[0]] = fields[1]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // free-form comment
		}
		s := expoSample{line: n}
		nameAndLabels, value, ok := strings.Cut(line, " ")
		if !ok {
			t.Fatalf("line %d: sample without value: %q", n, line)
		}
		s.value = value
		if i := strings.IndexByte(nameAndLabels, '{'); i >= 0 {
			s.name = nameAndLabels[:i]
			labels := strings.TrimSuffix(nameAndLabels[i+1:], "}")
			for _, kv := range strings.Split(labels, ",") {
				k, v, ok := strings.Cut(kv, "=")
				if !ok {
					t.Fatalf("line %d: malformed label %q", n, kv)
				}
				uq, err := strconv.Unquote(v)
				if err != nil {
					t.Fatalf("line %d: label value %s not a quoted string: %v", n, v, err)
				}
				if k == "le" {
					s.le = uq
				}
			}
		} else {
			s.name = nameAndLabels
		}
		samples = append(samples, s)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return helps, types, samples
}

// family maps a series name like mnsim_x_bucket back to its family name.
func family(series string) string {
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		if f, ok := strings.CutSuffix(series, suffix); ok {
			return f
		}
	}
	return series
}

func TestPrometheusExpositionConformance(t *testing.T) {
	r := NewRegistry()
	r.Describe("mnsim_conf_ops_total", "Operations with a tricky help: back\\slash and\nnewline")
	r.Counter("mnsim_conf_ops_total").Add(3)
	r.Gauge("mnsim_conf_depth").Set(-2.5)
	h := r.Histogram("mnsim_conf_latency_us", []float64{1, 10, 100})
	h.Observe(0.5)
	h.Observe(42)
	h.Observe(1e6)                          // lands in +Inf
	r.Histogram("mnsim_conf_empty_us", nil) // zero observations

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	helps, types, samples := parseExposition(t, text)

	// Every sample's series name is legal and its family has a TYPE that
	// appears before the family's first sample.
	firstSample := map[string]int{}
	for _, s := range samples {
		if !metricNameRe.MatchString(s.name) {
			t.Errorf("line %d: illegal metric name %q", s.line, s.name)
		}
		f := family(s.name)
		if _, ok := firstSample[f]; !ok {
			firstSample[f] = s.line
		}
		if _, ok := types[f]; !ok {
			t.Errorf("line %d: sample %s has no TYPE for family %s", s.line, s.name, f)
		}
	}
	for f, line := range firstSample {
		typeLine := strings.Index(text, "# TYPE "+f+" ")
		if typeLine < 0 {
			continue // already reported above
		}
		typeLineNo := strings.Count(text[:typeLine], "\n") + 1
		if typeLineNo > line {
			t.Errorf("TYPE for %s on line %d appears after its first sample on line %d", f, typeLineNo, line)
		}
	}
	for name := range helps {
		if !metricNameRe.MatchString(name) {
			t.Errorf("HELP references illegal name %q", name)
		}
		if _, ok := types[name]; !ok {
			t.Errorf("HELP for %s without a TYPE", name)
		}
	}

	// HELP text escapes backslash and newline.
	wantHelp := `Operations with a tricky help: back\\slash and\nnewline`
	if got := helps["mnsim_conf_ops_total"]; got != wantHelp {
		t.Errorf("HELP escaping: got %q, want %q", got, wantHelp)
	}

	// Histogram invariants: each histogram family, including the one with
	// zero observations, carries an le="+Inf" bucket equal to _count, a
	// _sum, and non-decreasing cumulative buckets.
	for _, hist := range []string{"mnsim_conf_latency_us", "mnsim_conf_empty_us"} {
		if types[hist] != "histogram" {
			t.Errorf("%s TYPE = %q, want histogram", hist, types[hist])
		}
		var inf, count string
		haveSum := false
		prev := int64(-1)
		for _, s := range samples {
			switch {
			case s.name == hist+"_bucket":
				v, err := strconv.ParseInt(s.value, 10, 64)
				if err != nil {
					t.Fatalf("line %d: bucket value %q: %v", s.line, s.value, err)
				}
				if v < prev {
					t.Errorf("%s buckets not cumulative: %d after %d", hist, v, prev)
				}
				prev = v
				if s.le == "" {
					t.Errorf("line %d: %s_bucket without le label", s.line, hist)
				}
				if s.le == "+Inf" {
					inf = s.value
				}
			case s.name == hist+"_sum":
				haveSum = true
			case s.name == hist+"_count":
				count = s.value
			}
		}
		if inf == "" {
			t.Errorf("%s missing le=\"+Inf\" bucket", hist)
		}
		if !haveSum {
			t.Errorf("%s missing _sum", hist)
		}
		if count == "" {
			t.Errorf("%s missing _count", hist)
		} else if inf != count {
			t.Errorf("%s le=\"+Inf\" bucket %s != _count %s", hist, inf, count)
		}
	}

	// Spot-check values survived the round trip.
	for _, s := range samples {
		switch s.name {
		case "mnsim_conf_ops_total":
			if s.value != "3" {
				t.Errorf("counter value %q, want 3", s.value)
			}
		case "mnsim_conf_depth":
			if s.value != "-2.5" {
				t.Errorf("gauge value %q, want -2.5", s.value)
			}
		case "mnsim_conf_latency_us_count":
			if s.value != "3" {
				t.Errorf("histogram count %q, want 3", s.value)
			}
		}
	}
}

func TestValidateNameRejectsIllegal(t *testing.T) {
	for _, bad := range []string{"", "9starts_with_digit", "has-dash", "has space", "ünïcode"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("registry accepted illegal metric name %q", bad)
				}
			}()
			NewRegistry().Counter(bad)
		}()
	}
	for _, good := range []string{"a", "_x", "ns:metric_total", "mnsim_x_9"} {
		func() {
			defer func() {
				if p := recover(); p != nil {
					t.Errorf("registry rejected legal metric name %q: %v", good, p)
				}
			}()
			NewRegistry().Counter(good)
		}()
	}
}
