// Package telemetry is MNSIM-Go's zero-dependency observability layer.
// The paper's headline result is simulation *speed* ("all the 10,220
// designs are simulated within 4 seconds", Section VII.C) and its Table III
// speed-up ratios hinge on knowing exactly where solver time goes; this
// package is the measurement substrate those claims are checked against.
//
// It provides three facilities, all stdlib-only and safe for concurrent
// use:
//
//   - a process-wide metrics Registry of atomic counters, gauges and
//     fixed-bucket histograms, exportable as Prometheus text format or
//     JSON (see WritePrometheus / WriteJSON);
//
//   - lightweight hierarchical span tracing: StartSpan(ctx, "dse.candidate")
//     opens a span whose name is prefixed by any parent span carried in the
//     context, and End() folds its wall time into a per-name aggregate
//     (count / total / min / max) exported as JSON;
//
//   - a leveled key-value structured Logger.
//
// Library packages register their metrics as package-level variables
// (GetCounter / GetHistogram), so importing an instrumented package is
// enough to make its metric families appear in every export — including
// families with zero observations, which documents what *could* have been
// measured in a run.
//
// The CLIs expose the layer through three shared flags (AddFlags):
// -metrics-out writes the registry on exit, -trace-out writes the span
// aggregates, and -pprof serves net/http/pprof for CPU/heap profiling.
package telemetry

import (
	"fmt"
	"os"
)

// defaultRegistry and defaultTracer are the process-wide instances that the
// package-level helpers and the instrumented library packages use.
var (
	defaultRegistry = NewRegistry()
	defaultTracer   = NewTracer()
)

// Default returns the process-wide metrics registry.
func Default() *Registry { return defaultRegistry }

// DefaultTracer returns the process-wide span tracer.
func DefaultTracer() *Tracer { return defaultTracer }

// GetCounter returns (registering on first use) a counter in the default
// registry.
func GetCounter(name string) *Counter { return defaultRegistry.Counter(name) }

// GetGauge returns (registering on first use) a gauge in the default
// registry.
func GetGauge(name string) *Gauge { return defaultRegistry.Gauge(name) }

// GetHistogram returns (registering on first use) a histogram in the
// default registry. The bounds are only consulted on first registration.
func GetHistogram(name string, bounds []float64) *Histogram {
	return defaultRegistry.Histogram(name, bounds)
}

// WriteMetricsFile dumps the default registry to path: Prometheus text
// format by default, JSON when the path ends in ".json".
func WriteMetricsFile(path string) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	if hasJSONSuffix(path) {
		return defaultRegistry.WriteJSON(f)
	}
	return defaultRegistry.WritePrometheus(f)
}

// WriteTraceFile dumps the default tracer's span aggregates as JSON.
func WriteTraceFile(path string) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	return defaultTracer.WriteJSON(f)
}

func hasJSONSuffix(path string) bool {
	const suf = ".json"
	return len(path) >= len(suf) && path[len(path)-len(suf):] == suf
}

// validateName rejects metric names that cannot survive a Prometheus
// exposition round-trip. Names must start with a letter or underscore and
// contain only [a-zA-Z0-9_:].
func validateName(name string) error {
	if name == "" {
		return fmt.Errorf("telemetry: empty metric name")
	}
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if !ok {
			return fmt.Errorf("telemetry: invalid metric name %q (char %q at %d)", name, r, i)
		}
	}
	return nil
}
