// Package telemetry is MNSIM-Go's zero-dependency observability layer.
// The paper's headline result is simulation *speed* ("all the 10,220
// designs are simulated within 4 seconds", Section VII.C) and its Table III
// speed-up ratios hinge on knowing exactly where solver time goes; this
// package is the measurement substrate those claims are checked against.
//
// It provides three facilities, all stdlib-only and safe for concurrent
// use:
//
//   - a process-wide metrics Registry of atomic counters, gauges and
//     fixed-bucket histograms, exportable as Prometheus text format or
//     JSON (see WritePrometheus / WriteJSON);
//
//   - lightweight hierarchical span tracing: StartSpan(ctx, "dse.candidate")
//     opens a span whose name is prefixed by any parent span carried in the
//     context, and End() folds its wall time into a per-name aggregate
//     (count / total / min / max) exported as JSON;
//
//   - a leveled key-value structured Logger.
//
// Library packages register their metrics as package-level variables
// (GetCounter / GetHistogram), so importing an instrumented package is
// enough to make its metric families appear in every export — including
// families with zero observations, which documents what *could* have been
// measured in a run.
//
// The CLIs expose the layer through three shared flags (AddFlags):
// -metrics-out writes the registry on exit, -trace-out writes the span
// aggregates, and -pprof serves net/http/pprof for CPU/heap profiling.
package telemetry

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// defaultRegistry and defaultTracer are the process-wide instances that the
// package-level helpers and the instrumented library packages use.
var (
	defaultRegistry = NewRegistry()
	defaultTracer   = NewTracer()
)

// Default returns the process-wide metrics registry.
func Default() *Registry { return defaultRegistry }

// DefaultTracer returns the process-wide span tracer.
func DefaultTracer() *Tracer { return defaultTracer }

// GetCounter returns (registering on first use) a counter in the default
// registry.
func GetCounter(name string) *Counter { return defaultRegistry.Counter(name) }

// GetGauge returns (registering on first use) a gauge in the default
// registry.
func GetGauge(name string) *Gauge { return defaultRegistry.Gauge(name) }

// GetHistogram returns (registering on first use) a histogram in the
// default registry. The bounds are only consulted on first registration.
func GetHistogram(name string, bounds []float64) *Histogram {
	return defaultRegistry.Histogram(name, bounds)
}

// Describe attaches HELP text to a metric name in the default registry.
func Describe(name, help string) { defaultRegistry.Describe(name, help) }

// writeFileAtomic writes via a temp file in path's directory and renames
// it into place, so an interrupted run can never leave a truncated dump —
// either the old file survives or the complete new one does.
func writeFileAtomic(path string, write func(io.Writer) error) (err error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	defer func() {
		if err != nil {
			_ = tmp.Close()           // already failing; surface the original error
			_ = os.Remove(tmp.Name()) // best-effort cleanup of the temp file
		}
	}()
	if err = write(tmp); err != nil {
		return err
	}
	if err = tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// WriteMetricsFile dumps the default registry to path: Prometheus text
// format by default, JSON when the path ends in ".json". The write is
// atomic (temp file + rename).
func WriteMetricsFile(path string) error {
	return writeFileAtomic(path, func(w io.Writer) error {
		if hasJSONSuffix(path) {
			return defaultRegistry.WriteJSON(w)
		}
		return defaultRegistry.WritePrometheus(w)
	})
}

// WriteTraceFile dumps the default tracer's span aggregates as JSON. The
// write is atomic (temp file + rename).
func WriteTraceFile(path string) error {
	return writeFileAtomic(path, defaultTracer.WriteJSON)
}

// HashBytes returns a short hex SHA-256 content hash, the config-hash
// fingerprint run manifests carry so mnsim-runs diff can tell whether two
// runs simulated the same design.
func HashBytes(b []byte) string {
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:8])
}

// HashStrings fingerprints a sequence of key=value style parts (each part
// is length-prefixed, so the hash is unambiguous under concatenation).
func HashStrings(parts ...string) string {
	h := sha256.New()
	for _, p := range parts {
		fmt.Fprintf(h, "%d:%s;", len(p), p)
	}
	return hex.EncodeToString(h.Sum(nil)[:8])
}

func hasJSONSuffix(path string) bool {
	const suf = ".json"
	return len(path) >= len(suf) && path[len(path)-len(suf):] == suf
}

// validateName rejects metric names that cannot survive a Prometheus
// exposition round-trip. Names must start with a letter or underscore and
// contain only [a-zA-Z0-9_:].
func validateName(name string) error {
	if name == "" {
		return fmt.Errorf("telemetry: empty metric name")
	}
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if !ok {
			return fmt.Errorf("telemetry: invalid metric name %q (char %q at %d)", name, r, i)
		}
	}
	return nil
}
