package telemetry

import (
	"encoding/json"
	"io"
	"math"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Progress tracking: named phases with total/done counters, a rolling
// completion rate, and an ETA. A sweep engine opens a phase
// (StartPhase("dse.candidates", n)), bumps it once per finished work item
// (Phase.Inc, lock-free), and Finish-es it when done; the /progress
// endpoint and the -progress stderr line render the tracker's snapshot
// while the sweep is still running.

const (
	// progressSampleEvery rate-limits the rolling-rate samples a phase
	// records on its Inc path, bounding the per-item overhead to one atomic
	// compare-and-swap in the common case.
	progressSampleEvery = 50 * time.Millisecond
	// progressWindow is how far back the rolling rate looks. Older samples
	// are dropped, so the ETA tracks the *current* throughput rather than
	// averaging over a slow warm-up.
	progressWindow = 10 * time.Second
)

// progressSample is one (time, cumulative done) observation.
type progressSample struct {
	atNS int64
	done int64
}

// Phase is one named unit of tracked work. All methods are safe for
// concurrent use and are no-ops on a nil receiver.
type Phase struct {
	name  string
	start time.Time

	total atomic.Int64
	done  atomic.Int64
	endNS atomic.Int64 // unix nanos of Finish; 0 while running

	lastSampleNS atomic.Int64
	mu           sync.Mutex
	samples      []progressSample
}

// Name returns the phase name.
func (p *Phase) Name() string {
	if p == nil {
		return ""
	}
	return p.name
}

// SetTotal replaces the expected work-item count (<= 0 means unknown).
func (p *Phase) SetTotal(n int64) {
	if p != nil {
		p.total.Store(n)
	}
}

// Inc marks one work item done.
func (p *Phase) Inc() { p.Add(1) }

// Add marks n work items done (n <= 0 is ignored).
func (p *Phase) Add(n int64) {
	if p == nil || n <= 0 {
		return
	}
	// Progress bumps count as liveness for the stall watchdog, so an
	// unjournaled sweep still re-arms it.
	noteActivity()
	done := p.done.Add(n)
	now := time.Now().UnixNano()
	last := p.lastSampleNS.Load()
	if now-last < int64(progressSampleEvery) || !p.lastSampleNS.CompareAndSwap(last, now) {
		return
	}
	p.mu.Lock()
	p.samples = append(p.samples, progressSample{atNS: now, done: done})
	cut := now - int64(progressWindow)
	drop := 0
	for drop < len(p.samples)-1 && p.samples[drop].atNS < cut {
		drop++
	}
	if drop > 0 {
		p.samples = append(p.samples[:0], p.samples[drop:]...)
	}
	p.mu.Unlock()
}

// Finish marks the phase complete; repeated calls keep the first end time.
func (p *Phase) Finish() {
	if p == nil {
		return
	}
	now := time.Now().UnixNano()
	if !p.endNS.CompareAndSwap(0, now) {
		return
	}
	if JournalOn() {
		EmitEvent(EvPhase, p.name, map[string]any{
			"action":     "finish",
			"done":       p.done.Load(),
			"total":      p.total.Load(),
			"elapsed_ns": now - p.start.UnixNano(),
		})
	}
}

// PhaseStatus is the exported snapshot of one phase.
type PhaseStatus struct {
	Name     string  `json:"name"`
	Total    int64   `json:"total"` // <= 0: unknown
	Done     int64   `json:"done"`
	Running  bool    `json:"running"`
	Fraction float64 `json:"fraction"` // 0 when total unknown
	// RatePerSec is the rolling completion rate over the last few seconds
	// (falling back to the whole-phase average early on).
	RatePerSec float64 `json:"rate_per_sec"`
	// ETASeconds is the projected remaining wall time; -1 when unknown
	// (no total, or no throughput yet), 0 once the phase has finished.
	ETASeconds     float64 `json:"eta_seconds"`
	ElapsedSeconds float64 `json:"elapsed_seconds"`
}

// Status returns the phase's snapshot at time now (pass time.Now()).
func (p *Phase) Status(now time.Time) PhaseStatus {
	if p == nil {
		return PhaseStatus{}
	}
	st := PhaseStatus{
		Name:       p.name,
		Total:      p.total.Load(),
		Done:       p.done.Load(),
		ETASeconds: -1,
	}
	end := p.endNS.Load()
	st.Running = end == 0
	if !st.Running {
		now = time.Unix(0, end)
	}
	st.ElapsedSeconds = now.Sub(p.start).Seconds()
	if st.ElapsedSeconds < 0 {
		st.ElapsedSeconds = 0
	}
	if st.Total > 0 {
		st.Fraction = float64(st.Done) / float64(st.Total)
	}
	p.mu.Lock()
	samples := append([]progressSample(nil), p.samples...)
	p.mu.Unlock()
	st.RatePerSec = rollingRate(samples, now.UnixNano(), st.Done, st.ElapsedSeconds)
	switch {
	case !st.Running:
		st.ETASeconds = 0
	case st.Total > 0 && st.RatePerSec > 0:
		remaining := st.Total - st.Done
		if remaining < 0 {
			remaining = 0
		}
		st.ETASeconds = float64(remaining) / st.RatePerSec
	}
	return st
}

// rollingRate computes items/second from the oldest retained sample to
// now, falling back to the whole-phase average (done/elapsed) when no
// usable sample exists. Pure so the ETA math is unit-testable without
// sleeping.
func rollingRate(samples []progressSample, nowNS, done int64, elapsedSec float64) float64 {
	if len(samples) > 0 {
		s := samples[0]
		dt := float64(nowNS-s.atNS) / float64(time.Second)
		dd := done - s.done
		if dt > 0 && dd > 0 {
			return float64(dd) / dt
		}
	}
	if elapsedSec > 0 && done > 0 {
		return float64(done) / elapsedSec
	}
	return 0
}

// ProgressTracker is a registry of named phases in start order. Starting a
// phase under an existing name replaces it (a fresh sweep restarts its
// counters); finished phases stay visible so a post-run scrape still shows
// what ran.
type ProgressTracker struct {
	mu     sync.Mutex
	order  []string
	phases map[string]*Phase
}

// NewProgressTracker returns an empty tracker.
func NewProgressTracker() *ProgressTracker {
	return &ProgressTracker{phases: map[string]*Phase{}}
}

// defaultProgress is the process-wide tracker the instrumented sweep
// engines and the observability server share.
var defaultProgress = NewProgressTracker()

// Progress returns the process-wide progress tracker.
func Progress() *ProgressTracker { return defaultProgress }

// StartPhase registers (or restarts) the named phase expecting total work
// items (<= 0: unknown).
func (t *ProgressTracker) StartPhase(name string, total int64) *Phase {
	p := &Phase{name: name, start: time.Now()}
	p.total.Store(total)
	t.mu.Lock()
	if _, ok := t.phases[name]; !ok {
		t.order = append(t.order, name)
	}
	t.phases[name] = p
	t.mu.Unlock()
	if JournalOn() {
		EmitEvent(EvPhase, name, map[string]any{"action": "start", "total": total})
	}
	return p
}

// StartPhase registers (or restarts) a phase on the process-wide tracker.
func StartPhase(name string, total int64) *Phase {
	return defaultProgress.StartPhase(name, total)
}

// Statuses snapshots every phase in start order.
func (t *ProgressTracker) Statuses() []PhaseStatus {
	now := time.Now()
	t.mu.Lock()
	phases := make([]*Phase, 0, len(t.order))
	for _, name := range t.order {
		phases = append(phases, t.phases[name])
	}
	t.mu.Unlock()
	out := make([]PhaseStatus, len(phases))
	for i, p := range phases {
		out[i] = p.Status(now)
	}
	return out
}

// Reset drops every phase; intended for tests.
func (t *ProgressTracker) Reset() {
	t.mu.Lock()
	t.order, t.phases = nil, map[string]*Phase{}
	t.mu.Unlock()
}

// WriteJSON writes the tracker snapshot as {"phases": [...]}.
func (t *ProgressTracker) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		Phases []PhaseStatus `json:"phases"`
	}{Phases: t.Statuses()})
}

// FormatStatusLine renders phase snapshots as the one-line summary the
// -progress flag prints to stderr: running phases joined by " | ", e.g.
// "dse.candidates 123/405 30% 1234/s eta 2.1s". Returns "" when nothing
// is running.
func FormatStatusLine(phases []PhaseStatus) string {
	line := ""
	for _, st := range phases {
		if !st.Running {
			continue
		}
		if line != "" {
			line += " | "
		}
		line += formatPhase(st)
	}
	return line
}

func formatPhase(st PhaseStatus) string {
	s := st.Name + " " + strconv.FormatInt(st.Done, 10)
	if st.Total > 0 {
		s += "/" + strconv.FormatInt(st.Total, 10) +
			" " + strconv.FormatFloat(math.Floor(st.Fraction*100), 'f', 0, 64) + "%"
	}
	if st.RatePerSec > 0 {
		s += " " + formatRate(st.RatePerSec) + "/s"
	}
	if st.ETASeconds >= 0 && st.Total > 0 {
		s += " eta " + formatETA(st.ETASeconds)
	}
	return s
}

func formatRate(r float64) string {
	switch {
	case r >= 1e6:
		return strconv.FormatFloat(r/1e6, 'f', 1, 64) + "M"
	case r >= 1e3:
		return strconv.FormatFloat(r/1e3, 'f', 1, 64) + "k"
	case r >= 10:
		return strconv.FormatFloat(r, 'f', 0, 64)
	default:
		return strconv.FormatFloat(r, 'f', 1, 64)
	}
}

func formatETA(sec float64) string {
	d := time.Duration(sec * float64(time.Second))
	switch {
	case d >= time.Hour:
		return d.Round(time.Minute).String()
	case d >= time.Minute:
		return d.Round(time.Second).String()
	default:
		return d.Round(100 * time.Millisecond).String()
	}
}
