package telemetry

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/* on http.DefaultServeMux
	"time"
)

// Flags bundles the observability flags every MNSIM CLI shares:
//
//	-metrics-out file   write the metrics registry on exit
//	                    (Prometheus text; JSON when the path ends in .json)
//	-trace-out file     write the aggregated span trace as JSON on exit
//	-pprof addr         serve net/http/pprof (e.g. localhost:6060)
//	-log-level level    default-logger verbosity (debug|info|warn|error|off)
//
// Wire them with AddFlags before flag.Parse, call Start after parsing, and
// Finish once the run completes (Finish writes the dump files, so it must
// run on the error path too — the dumps of a failed sweep are exactly what
// the user wants to look at).
type Flags struct {
	MetricsOut string
	TraceOut   string
	PprofAddr  string
	LogLevel   string

	srv *http.Server
}

// AddFlags registers the shared observability flags on fs.
func AddFlags(fs *flag.FlagSet) *Flags {
	f := &Flags{}
	fs.StringVar(&f.MetricsOut, "metrics-out", "",
		"write metrics to this file on exit (Prometheus text format, or JSON if the path ends in .json)")
	fs.StringVar(&f.TraceOut, "trace-out", "",
		"write the aggregated span trace as JSON to this file on exit")
	fs.StringVar(&f.PprofAddr, "pprof", "",
		"serve net/http/pprof on this address (e.g. localhost:6060)")
	fs.StringVar(&f.LogLevel, "log-level", "",
		"structured-log verbosity: debug, info, warn (default), error, off")
	return f
}

// Start applies the log level and brings up the pprof server. The listen
// happens synchronously so a bad -pprof address fails the run immediately
// instead of dying silently in a goroutine.
func (f *Flags) Start() error {
	if f.LogLevel != "" {
		lv, err := ParseLevel(f.LogLevel)
		if err != nil {
			return err
		}
		SetLogLevel(lv)
	}
	if f.PprofAddr == "" {
		return nil
	}
	ln, err := net.Listen("tcp", f.PprofAddr)
	if err != nil {
		return fmt.Errorf("telemetry: pprof listen: %w", err)
	}
	f.srv = &http.Server{Handler: http.DefaultServeMux, ReadHeaderTimeout: 5 * time.Second}
	go func() {
		// Serve returns http.ErrServerClosed on Finish; anything else means
		// profiling died mid-run, which is worth a warning but not a failure.
		if err := f.srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			Log().Warn("pprof server stopped", "err", err)
		}
	}()
	Log().Info("pprof serving", "addr", ln.Addr().String())
	return nil
}

// Finish writes the requested dump files and stops the pprof server,
// returning the first error encountered.
func (f *Flags) Finish() error {
	var first error
	if f.MetricsOut != "" {
		if err := WriteMetricsFile(f.MetricsOut); err != nil {
			first = err
		}
	}
	if f.TraceOut != "" {
		if err := WriteTraceFile(f.TraceOut); err != nil && first == nil {
			first = err
		}
	}
	if f.srv != nil {
		if err := f.srv.Close(); err != nil && first == nil {
			first = err
		}
		f.srv = nil
	}
	return first
}
