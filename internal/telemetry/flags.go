package telemetry

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strings"
	"time"
)

// Flags bundles the observability flags every MNSIM CLI shares:
//
//	-metrics-out file   write the metrics registry on exit
//	                    (Prometheus text; JSON when the path ends in .json)
//	-trace-out file     write the aggregated span trace as JSON on exit
//	-trace-events file  write the causal span timeline as Chrome
//	                    trace-event JSON on exit (open in Perfetto or
//	                    chrome://tracing)
//	-run-out file       write the run manifest (run.json) on exit
//	-journal file       record the flight-recorder event journal (JSONL:
//	                    solve_start/newton_iter/solve_end/transient_settle/
//	                    candidate_eval/mc_trial/phase); divergence and
//	                    non-settle snapshots land next to the file
//	-serve addr         serve the observability endpoints (/metrics,
//	                    /metrics.json, /trace, /progress, /runinfo,
//	                    /events, /healthz, /debug/pprof/*)
//	-serve-hold d       keep the -serve server up for d after the run so
//	                    a scraper can take a final sample
//	-pprof addr         deprecated alias of -serve exposing only
//	                    /debug/pprof/*
//	-progress           print a rate-limited live progress line to stderr
//	-log-level level    default-logger verbosity (debug|info|warn|error|off)
//	-resource-interval d  sample runtime/metrics (heap, GC, goroutines,
//	                    scheduler latency) every d; exports to the registry,
//	                    the journal (resource_sample events), /resources.json,
//	                    and manifest rollups
//	-mem-soft-limit sz  soft memory watermark ("64MiB", "1GB", plain bytes):
//	                    live heap at or above it journals mem_pressure and
//	                    captures a heap profile
//	-stall-timeout d    stall watchdog: no journal/progress activity for d
//	                    journals watchdog_stall and captures a goroutine
//	                    profile
//	-profile-dir dir    continuous profiling: rotating CPU profiles plus
//	                    periodic heap profiles under dir, recorded as
//	                    manifest artifacts
//	-profile-interval d profile rotation cadence (default 30s)
//
// Wire them with AddFlags before flag.Parse, call StartContext after
// parsing with the CLI's signal context (cancelling it shuts the servers
// down gracefully), and Finish once the run completes. Finish writes the
// dump files, so it must run on the error path too — the dumps of a
// failed sweep are exactly what the user wants to look at; record the
// run's outcome with Run.SetError first so the manifest carries it.
type Flags struct {
	MetricsOut  string
	TraceOut    string
	TraceEvents string
	RunOut      string
	Journal     string
	ServeAddr   string
	ServeHold   time.Duration
	PprofAddr   string
	Progress    bool
	LogLevel    string

	ResourceInterval time.Duration
	MemSoftLimit     string
	StallTimeout     time.Duration
	ProfileDir       string
	ProfileInterval  time.Duration

	// Run is the manifest-identity record the CLI fills in after parsing
	// (SetTool, SetSeed, SetWorkers, SetConfigHash, SetError).
	Run *RunInfo

	// ProgressOut overrides the -progress destination (default os.Stderr);
	// ProgressInterval overrides the print cadence. Both exist for tests.
	ProgressOut      io.Writer
	ProgressInterval time.Duration

	ctx       context.Context
	servers   []*http.Server
	serveAddr string
	pprofAddr string
	progStop  chan struct{}
	progDone  chan struct{}
	sampling  bool
}

// AddFlags registers the shared observability flags on fs.
func AddFlags(fs *flag.FlagSet) *Flags {
	f := &Flags{Run: NewRunInfo()}
	fs.StringVar(&f.MetricsOut, "metrics-out", "",
		"write metrics to this file on exit (Prometheus text format, or JSON if the path ends in .json)")
	fs.StringVar(&f.TraceOut, "trace-out", "",
		"write the aggregated span trace as JSON to this file on exit")
	fs.StringVar(&f.TraceEvents, "trace-events", "",
		"write the causal span timeline as Chrome trace-event JSON to this file on exit (viewable in Perfetto / chrome://tracing)")
	fs.StringVar(&f.RunOut, "run-out", "",
		"write the run manifest (run.json: tool, args, seed, per-phase wall time, final metrics, exit status) to this file on exit")
	fs.StringVar(&f.Journal, "journal", "",
		"record the flight-recorder event journal (JSONL) to this file; solver divergence / non-settle snapshots are written next to it")
	fs.StringVar(&f.ServeAddr, "serve", "",
		"serve the observability endpoints on this address (e.g. localhost:6060): /metrics, /metrics.json, /trace, /progress, /runinfo, /events, /healthz, /debug/pprof/*")
	fs.DurationVar(&f.ServeHold, "serve-hold", 0,
		"keep the -serve server up this long after the run completes, for a final scrape (Ctrl-C ends the hold early)")
	fs.StringVar(&f.PprofAddr, "pprof", "",
		"deprecated: use -serve (which includes /debug/pprof/*); serves only the pprof handlers on this address")
	fs.BoolVar(&f.Progress, "progress", false,
		"print a live, rate-limited progress line (done/total, rate, ETA) to stderr")
	fs.StringVar(&f.LogLevel, "log-level", "",
		"structured-log verbosity: debug, info, warn (default), error, off")
	fs.DurationVar(&f.ResourceInterval, "resource-interval", 0,
		"sample runtime resources (heap, GC, goroutines, scheduler latency) at this interval; 0 disables unless a watchdog or -profile-dir needs the tick")
	fs.StringVar(&f.MemSoftLimit, "mem-soft-limit", "",
		"soft memory watermark (e.g. 64MiB, 1GB): live heap at or above it journals a mem_pressure event and captures a heap profile")
	fs.DurationVar(&f.StallTimeout, "stall-timeout", 0,
		"stall watchdog: no journal/progress activity for this long journals a watchdog_stall event and captures a goroutine profile")
	fs.StringVar(&f.ProfileDir, "profile-dir", "",
		"continuous profiling: write rotating CPU profiles and periodic heap profiles under this directory, recorded as manifest artifacts")
	fs.DurationVar(&f.ProfileInterval, "profile-interval", 0,
		"continuous-profile rotation cadence (default 30s)")
	return f
}

// Start is StartContext with a background context; kept for callers that
// have no cancellation to propagate.
func (f *Flags) Start() error { return f.StartContext(context.Background()) }

// StartContext applies the log level, brings up the observability and
// pprof servers, and starts the -progress printer. Listens happen
// synchronously so a bad -serve or -pprof address fails the run
// immediately instead of dying silently in a goroutine. Cancelling ctx
// (the CLIs pass their SIGINT context) shuts the servers down gracefully.
func (f *Flags) StartContext(ctx context.Context) error {
	f.ctx = ctx
	if f.LogLevel != "" {
		lv, err := ParseLevel(f.LogLevel)
		if err != nil {
			return err
		}
		SetLogLevel(lv)
	}
	if f.Run != nil && len(os.Args) > 1 {
		f.Run.SetArgs(os.Args[1:])
	}
	// Flight recorder: -journal records to a file (snapshots land next to
	// it); -serve alone enables ring-only recording so /events is live.
	if f.Run != nil {
		info := f.Run.snapshot()
		defaultJournal.SetMeta(info.Tool, info.Seed)
	}
	if f.Journal != "" {
		if err := defaultJournal.Open(f.Journal); err != nil {
			return err
		}
	} else if f.ServeAddr != "" {
		defaultJournal.EnableRing()
	}
	// Causal tracing: one switch drives the span-record ring, journal
	// "span" events, and /trace.json. Any sink that can consume span
	// records turns it on; a plain run keeps it off so the neutrality
	// benchmarks measure the true disabled cost.
	if f.TraceEvents != "" || f.Journal != "" || f.ServeAddr != "" {
		if f.Run != nil {
			if info := f.Run.snapshot(); info.Seed != nil {
				SetTraceSeed(*info.Seed)
			}
		}
		EnableTraceEvents(0)
	}
	// Port 0 means "pick any free port", so two :0 binds never collide.
	if f.ServeAddr != "" && f.ServeAddr == f.PprofAddr && !strings.HasSuffix(f.ServeAddr, ":0") {
		return fmt.Errorf("telemetry: -serve and -pprof both bind %s; drop -pprof (deprecated), -serve already includes /debug/pprof/*", f.ServeAddr)
	}
	if f.ServeAddr != "" {
		addr, err := f.listenAndServe(ctx, f.ServeAddr, NewServeMux(f.Run))
		if err != nil {
			return fmt.Errorf("telemetry: observability listen: %w", err)
		}
		f.serveAddr = addr
		Log().Info("observability serving", "addr", addr)
	}
	if f.PprofAddr != "" {
		addr, err := f.listenAndServe(ctx, f.PprofAddr, NewPprofMux())
		if err != nil {
			return fmt.Errorf("telemetry: pprof listen: %w", err)
		}
		f.pprofAddr = addr
		Log().Info("pprof serving (deprecated -pprof; prefer -serve)", "addr", addr)
	}
	if f.Progress {
		f.startProgressPrinter(ctx)
	}
	// Resource sampler: any of the resource flags turns it on (the
	// watchdogs and profiler ride the sampling tick); with none set it
	// never starts, so an uninstrumented run pays nothing.
	if f.ResourceInterval > 0 || f.MemSoftLimit != "" || f.StallTimeout > 0 || f.ProfileDir != "" {
		memLimit, err := ParseByteSize(f.MemSoftLimit)
		if err != nil {
			return err
		}
		cfg := ResourceConfig{
			Interval:          f.ResourceInterval,
			MemSoftLimitBytes: memLimit,
			StallTimeout:      f.StallTimeout,
			ProfileDir:        f.ProfileDir,
			ProfileInterval:   f.ProfileInterval,
			Journal:           true,
		}
		if f.Run != nil {
			cfg.Artifact = f.Run.SetArtifact
		}
		if err := defaultResources.Start(ctx, cfg); err != nil {
			return err
		}
		f.sampling = true
	}
	return nil
}

// listenAndServe binds addr, serves mux in the background, and shuts the
// server down gracefully when ctx is cancelled. Returns the resolved
// listen address (useful with ":0").
func (f *Flags) listenAndServe(ctx context.Context, addr string, mux *http.ServeMux) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	f.servers = append(f.servers, srv)
	// Serve goroutine. Termination edge: srv.Shutdown (from the waiter
	// goroutine below, on ctx cancellation, or from Flags.Close) makes
	// Serve return ErrServerClosed.
	go func() {
		// Serve returns http.ErrServerClosed on shutdown; anything else
		// means the server died mid-run, which is worth a warning but not
		// a failure.
		if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			Log().Warn("observability server stopped", "addr", ln.Addr(), "err", err)
		}
	}()
	// Shutdown waiter. Termination edge: the ctx.Done receive — it blocks
	// only until the run context is cancelled, then shuts the server down
	// and exits.
	go func() {
		<-ctx.Done()
		sctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		_ = srv.Shutdown(sctx)
	}()
	return ln.Addr().String(), nil
}

// Addr returns the resolved -serve listen address ("" when not serving);
// with "-serve localhost:0" this is where the kernel put the server.
func (f *Flags) Addr() string { return f.serveAddr }

// PprofListenAddr returns the resolved -pprof listen address ("" when not
// serving).
func (f *Flags) PprofListenAddr() string { return f.pprofAddr }

// isTerminal reports whether w is an interactive terminal (a character
// device), which selects the carriage-return rewriting progress style.
func isTerminal(w io.Writer) bool {
	file, ok := w.(*os.File)
	if !ok {
		return false
	}
	fi, err := file.Stat()
	return err == nil && fi.Mode()&os.ModeCharDevice != 0
}

// startProgressPrinter launches the -progress goroutine: on a TTY it
// rewrites one status line in place a few times a second; on a pipe it
// prints a plain line every couple of seconds (and only when the line
// changed), so redirected stderr stays readable.
func (f *Flags) startProgressPrinter(ctx context.Context) {
	w := f.ProgressOut
	if w == nil {
		w = os.Stderr
	}
	tty := isTerminal(w)
	interval := f.ProgressInterval
	if interval <= 0 {
		if tty {
			interval = 200 * time.Millisecond
		} else {
			interval = 2 * time.Second
		}
	}
	f.progStop = make(chan struct{})
	f.progDone = make(chan struct{})
	// Printer goroutine. Termination edges: the f.progStop and ctx.Done
	// select arms in the loop body — Close closes progStop and joins on
	// progDone, so the printer never outlives the Flags.
	go func() {
		defer close(f.progDone)
		tick := time.NewTicker(interval)
		defer tick.Stop()
		last := ""
		printed := false
		emit := func() {
			line := FormatStatusLine(defaultProgress.Statuses())
			if line == "" || line == last {
				return
			}
			if tty {
				// \r returns to column 0, ESC[K clears the stale tail.
				fmt.Fprintf(w, "\r\x1b[K%s", line)
				printed = true
			} else {
				fmt.Fprintln(w, line)
			}
			last = line
		}
		for {
			select {
			case <-f.progStop:
				if tty && printed {
					fmt.Fprintln(w) // leave the final line visible
				}
				return
			case <-ctx.Done():
				if tty && printed {
					fmt.Fprintln(w)
				}
				return
			case <-tick.C:
				emit()
			}
		}
	}()
}

// Finish stops the progress printer, writes the requested dump files
// (metrics, trace, then the run manifest, which snapshots the final
// metrics), honours -serve-hold, and stops the servers. A failed dump
// does not stop the later ones; the first error encountered is returned.
func (f *Flags) Finish() error {
	if f.progStop != nil {
		close(f.progStop)
		<-f.progDone
		f.progStop, f.progDone = nil, nil
	}
	// Stop the sampler before any dump is written: its final flush must be
	// in the journal, and its rollup in the manifest.
	if f.sampling {
		defaultResources.Stop()
		if f.Run != nil {
			f.Run.SetResources(defaultResources.Rollup())
		}
		f.sampling = false
	}
	var first error
	record := func(kind, path string) {
		if f.Run != nil {
			f.Run.SetArtifact(kind, path)
		}
	}
	if f.MetricsOut != "" {
		if err := WriteMetricsFile(f.MetricsOut); err != nil && first == nil {
			first = err
		} else if err == nil {
			record("metrics", f.MetricsOut)
		}
	}
	if f.TraceOut != "" {
		if err := WriteTraceFile(f.TraceOut); err != nil && first == nil {
			first = err
		} else if err == nil {
			record("trace", f.TraceOut)
		}
	}
	if f.TraceEvents != "" {
		if err := WriteTraceEventsFile(f.TraceEvents); err != nil && first == nil {
			first = err
		} else if err == nil {
			record("trace_events", f.TraceEvents)
		}
	}
	if f.Journal != "" {
		record("journal", f.Journal)
	}
	if f.RunOut != "" {
		run := f.Run
		if run == nil {
			run = NewRunInfo()
		}
		if err := WriteManifestFile(f.RunOut, run); err != nil && first == nil {
			first = err
		}
	}
	// Close the journal after the dumps: recording is over, but the ring
	// buffer survives so /events stays inspectable through -serve-hold.
	if f.Journal != "" || f.ServeAddr != "" {
		if err := defaultJournal.Close(); err != nil && first == nil {
			first = err
		}
	}
	if f.ServeHold > 0 && f.serveAddr != "" && (f.ctx == nil || f.ctx.Err() == nil) {
		Log().Info("holding observability server for final scrape",
			"addr", f.serveAddr, "hold", f.ServeHold)
		timer := time.NewTimer(f.ServeHold)
		defer timer.Stop()
		var done <-chan struct{}
		if f.ctx != nil {
			done = f.ctx.Done()
		}
		select {
		case <-timer.C:
		case <-done:
		}
	}
	for _, srv := range f.servers {
		if err := srv.Close(); err != nil && err != http.ErrServerClosed && first == nil {
			first = err
		}
	}
	f.servers = nil
	f.serveAddr, f.pprofAddr = "", ""
	return first
}
