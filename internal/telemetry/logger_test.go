package telemetry

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// fixedLogger returns a logger with a pinned clock so records are
// byte-for-byte comparable.
func fixedLogger(min Level) (*Logger, *strings.Builder) {
	var sb strings.Builder
	l := NewLogger(&sb, min)
	l.now = func() time.Time { return time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC) }
	return l, &sb
}

func TestLoggerFormat(t *testing.T) {
	l, sb := fixedLogger(LevelDebug)
	l.Info("sweep done", "candidates", 300, "case", "large bank")
	want := `2026-08-05T12:00:00Z level=info msg="sweep done" candidates=300 case="large bank"` + "\n"
	if sb.String() != want {
		t.Fatalf("got  %q\nwant %q", sb.String(), want)
	}
}

func TestLoggerLevelFiltering(t *testing.T) {
	l, sb := fixedLogger(LevelWarn)
	l.Debug("dropped")
	l.Info("dropped")
	l.Warn("kept")
	l.Error("kept")
	if got := strings.Count(sb.String(), "\n"); got != 2 {
		t.Fatalf("got %d records, want 2:\n%s", got, sb.String())
	}
	l.SetLevel(LevelOff)
	l.Error("dropped too")
	if got := strings.Count(sb.String(), "\n"); got != 2 {
		t.Fatalf("LevelOff still logs:\n%s", sb.String())
	}
}

func TestLoggerOddKV(t *testing.T) {
	l, sb := fixedLogger(LevelInfo)
	l.Info("odd", "size", 128, "dangling")
	if !strings.Contains(sb.String(), "size=128") || !strings.Contains(sb.String(), "!BADKEY=dangling") {
		t.Fatalf("odd kv mishandled: %s", sb.String())
	}
}

func TestParseLevel(t *testing.T) {
	for in, want := range map[string]Level{
		"debug": LevelDebug, "Info": LevelInfo, "WARN": LevelWarn,
		"warning": LevelWarn, "error": LevelError, "off": LevelOff,
	} {
		got, err := ParseLevel(in)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Error("unknown level accepted")
	}
}

func TestLoggerConcurrent(t *testing.T) {
	l, sb := fixedLogger(LevelInfo)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 200; k++ {
				l.Info("tick", "k", k)
			}
		}()
	}
	wg.Wait()
	if got := strings.Count(sb.String(), "\n"); got != 8*200 {
		t.Fatalf("got %d records, want %d", got, 8*200)
	}
}
