package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing integer metric. The zero value is
// ready to use; all methods are safe for concurrent callers.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (negative deltas are ignored: counters only go up).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a float metric that can go up and down, stored as atomic
// float64 bits.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add increments the gauge by v with a compare-and-swap loop.
func (g *Gauge) Add(v float64) { addFloatBits(&g.bits, v) }

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

func addFloatBits(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Histogram is a fixed-bucket histogram: observation counts per upper
// bound plus a running sum and total count, all updated atomically (no
// lock on the observe path).
type Histogram struct {
	bounds  []float64 // ascending upper bounds; +Inf bucket is implicit
	counts  []atomic.Int64
	total   atomic.Int64
	sumBits atomic.Uint64
}

func newHistogram(bounds []float64) (*Histogram, error) {
	if len(bounds) == 0 {
		bounds = DefBuckets()
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			return nil, fmt.Errorf("telemetry: histogram bounds not strictly ascending at %d: %g <= %g",
				i, bounds[i], bounds[i-1])
		}
	}
	h := &Histogram{bounds: append([]float64(nil), bounds...)}
	h.counts = make([]atomic.Int64, len(bounds)+1)
	return h, nil
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	// First bucket whose upper bound is >= v (le is inclusive, matching
	// Prometheus semantics); past the last bound lands in +Inf.
	idx := sort.SearchFloat64s(h.bounds, v)
	h.counts[idx].Add(1)
	h.total.Add(1)
	addFloatBits(&h.sumBits, v)
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 { return h.total.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// snapshot returns cumulative bucket counts aligned with bounds plus the
// +Inf bucket, along with count and sum. Concurrent observers may land
// between the loads; each individual load is atomic, which is the standard
// scrape-consistency contract.
func (h *Histogram) snapshot() (cum []int64, count int64, sum float64) {
	cum = make([]int64, len(h.counts))
	var running int64
	for i := range h.counts {
		running += h.counts[i].Load()
		cum[i] = running
	}
	return cum, h.total.Load(), h.Sum()
}

// DefBuckets is the default histogram bucket set: a decade-spanning
// exponential ladder suited to iteration counts and microsecond timings.
func DefBuckets() []float64 {
	return []float64{1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000}
}

// LinearBuckets returns n buckets starting at start, spaced by width.
func LinearBuckets(start, width float64, n int) []float64 {
	b := make([]float64, n)
	for i := range b {
		b[i] = start + float64(i)*width
	}
	return b
}

// ExponentialBuckets returns n buckets starting at start, each factor
// times the previous.
func ExponentialBuckets(start, factor float64, n int) []float64 {
	b := make([]float64, n)
	v := start
	for i := range b {
		b[i] = v
		v *= factor
	}
	return b
}

// Registry holds named metrics. Registration is lock-guarded; the returned
// metric handles update lock-free, so hot paths should hoist them into
// package-level variables rather than re-looking them up per call.
type Registry struct {
	mu         sync.RWMutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
	help       map[string]string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   map[string]*Counter{},
		gauges:     map[string]*Gauge{},
		histograms: map[string]*Histogram{},
		help:       map[string]string{},
	}
}

// Describe attaches HELP text to a metric name; the Prometheus exporter
// emits it as a "# HELP" line ahead of the family's TYPE and samples.
func (r *Registry) Describe(name, help string) {
	if err := validateName(name); err != nil {
		panic(err)
	}
	r.mu.Lock()
	r.help[name] = help
	r.mu.Unlock()
}

// Counter returns the counter registered under name, creating it on first
// use. Invalid names panic: metric names are compile-time constants and a
// bad one is a programming error, not a runtime condition.
func (r *Registry) Counter(name string) *Counter {
	if err := validateName(name); err != nil {
		panic(err)
	}
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if err := validateName(name); err != nil {
		panic(err)
	}
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram registered under name, creating it with
// the given upper bounds on first use (nil selects DefBuckets). Later
// calls return the existing histogram and ignore bounds.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if err := validateName(name); err != nil {
		panic(err)
	}
	r.mu.RLock()
	h := r.histograms[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.histograms[name]; h == nil {
		var err error
		h, err = newHistogram(bounds)
		if err != nil {
			panic(err)
		}
		r.histograms[name] = h
	}
	return h
}

// Reset removes every registered metric. Metric handles obtained before a
// Reset keep counting but no longer appear in exports; intended for tests.
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.counters = map[string]*Counter{}
	r.gauges = map[string]*Gauge{}
	r.histograms = map[string]*Histogram{}
}

// sortedNames returns the keys of m in lexical order so exports are
// deterministic.
func sortedNames[T any](m map[string]T) []string {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func formatFloat(v float64) string {
	if math.IsInf(v, +1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeHelp escapes a HELP string per the exposition format: backslash
// and newline are the only characters that need it.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// writeFamilyHeader emits the optional "# HELP" line followed by the
// mandatory "# TYPE" line for one metric family. Callers hold r.mu.
func (r *Registry) writeFamilyHeader(w io.Writer, name, typ string) error {
	if help := r.help[name]; help != "" {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n", name, escapeHelp(help)); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "# TYPE %s %s\n", name, typ)
	return err
}

// WritePrometheus writes every metric in the Prometheus text exposition
// format (version 0.0.4): counters, gauges, then histograms with
// cumulative le-labelled buckets and _sum/_count series.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, name := range sortedNames(r.counters) {
		if err := r.writeFamilyHeader(w, name, "counter"); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %d\n", name, r.counters[name].Value()); err != nil {
			return err
		}
	}
	for _, name := range sortedNames(r.gauges) {
		if err := r.writeFamilyHeader(w, name, "gauge"); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %s\n", name, formatFloat(r.gauges[name].Value())); err != nil {
			return err
		}
	}
	for _, name := range sortedNames(r.histograms) {
		h := r.histograms[name]
		cum, count, sum := h.snapshot()
		if err := r.writeFamilyHeader(w, name, "histogram"); err != nil {
			return err
		}
		for i, bound := range h.bounds {
			if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, formatFloat(bound), cum[i]); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum[len(cum)-1]); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n", name, formatFloat(sum), name, count); err != nil {
			return err
		}
	}
	return nil
}

// HistogramSnapshot is the JSON shape of one histogram. Mean and the
// quantiles are derived at snapshot time: quantiles interpolate linearly
// within the bucket containing the target rank, which is the standard
// fixed-bucket estimate — exact at bucket boundaries, bounded by bucket
// width inside them.
type HistogramSnapshot struct {
	Count   int64             `json:"count"`
	Sum     float64           `json:"sum"`
	Mean    float64           `json:"mean"`
	P50     float64           `json:"p50"`
	P90     float64           `json:"p90"`
	P99     float64           `json:"p99"`
	Buckets []HistogramBucket `json:"buckets"`
}

// HistogramBucket is one cumulative le-labelled bucket.
type HistogramBucket struct {
	LE         string `json:"le"`
	Cumulative int64  `json:"cumulative"`
}

// quantile estimates the q-quantile (0 < q < 1) from cumulative bucket
// counts aligned with bounds plus the trailing +Inf bucket. The rank is
// located by binary search and interpolated linearly across the containing
// bucket; ranks landing in the +Inf bucket clamp to the last finite bound,
// which has no upper edge to interpolate toward.
func quantile(bounds []float64, cum []int64, q float64) float64 {
	total := cum[len(cum)-1]
	if total == 0 || len(bounds) == 0 {
		return 0
	}
	rank := q * float64(total)
	idx := sort.Search(len(cum), func(i int) bool { return float64(cum[i]) >= rank })
	if idx >= len(bounds) {
		return bounds[len(bounds)-1]
	}
	lo, clo := 0.0, int64(0)
	if idx > 0 {
		lo, clo = bounds[idx-1], cum[idx-1]
	}
	hi := bounds[idx]
	in := cum[idx] - clo
	if in == 0 {
		return hi
	}
	return lo + (hi-lo)*(rank-float64(clo))/float64(in)
}

// histogramSnapshot builds the JSON shape for one histogram, deriving the
// mean and interpolated quantiles from the captured bucket state.
func histogramSnapshot(h *Histogram) HistogramSnapshot {
	cum, count, sum := h.snapshot()
	hj := HistogramSnapshot{Count: count, Sum: sum}
	if count > 0 {
		hj.Mean = sum / float64(count)
		hj.P50 = quantile(h.bounds, cum, 0.50)
		hj.P90 = quantile(h.bounds, cum, 0.90)
		hj.P99 = quantile(h.bounds, cum, 0.99)
	}
	for i, bound := range h.bounds {
		hj.Buckets = append(hj.Buckets, HistogramBucket{LE: formatFloat(bound), Cumulative: cum[i]})
	}
	hj.Buckets = append(hj.Buckets, HistogramBucket{LE: "+Inf", Cumulative: cum[len(cum)-1]})
	return hj
}

// MetricsSnapshot is a point-in-time export of a full registry — the JSON
// metrics dump, the /metrics.json payload, and the final-metrics section
// of a run manifest all share this shape.
type MetricsSnapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot captures every metric's current value.
func (r *Registry) Snapshot() MetricsSnapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := MetricsSnapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]float64, len(r.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(r.histograms)),
	}
	for name, c := range r.counters {
		out.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		out.Gauges[name] = g.Value()
	}
	for name, h := range r.histograms {
		out.Histograms[name] = histogramSnapshot(h)
	}
	return out
}

// WriteJSON writes every metric as one JSON document (keys sorted by
// encoding/json's map ordering, so the output is deterministic).
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}
