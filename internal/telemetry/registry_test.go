package telemetry

import (
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("mnsim_test_total")
	c.Inc()
	c.Add(41)
	c.Add(-5) // counters only go up
	if got := c.Value(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	if r.Counter("mnsim_test_total") != c {
		t.Fatal("re-registration returned a different counter")
	}
	g := r.Gauge("mnsim_test_gauge")
	g.Set(2.5)
	g.Add(-0.5)
	if got := g.Value(); got != 2 {
		t.Fatalf("gauge = %g, want 2", got)
	}
}

func TestHistogramBucketing(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("mnsim_test_hist", []float64{1, 2, 5})
	for _, v := range []float64{0.5, 1, 1.5, 2, 5, 100} {
		h.Observe(v)
	}
	cum, count, sum := h.snapshot()
	// le is inclusive: le=1 holds {0.5, 1}, le=2 adds {1.5, 2}, le=5 adds
	// {5}, +Inf adds {100}.
	want := []int64{2, 4, 5, 6}
	for i, w := range want {
		if cum[i] != w {
			t.Fatalf("cumulative[%d] = %d, want %d (all %v)", i, cum[i], w, cum)
		}
	}
	if count != 6 || sum != 110 {
		t.Fatalf("count %d sum %g, want 6 and 110", count, sum)
	}
}

func TestInvalidNamesAndBoundsPanic(t *testing.T) {
	r := NewRegistry()
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		f()
	}
	mustPanic("empty name", func() { r.Counter("") })
	mustPanic("space in name", func() { r.Gauge("bad name") })
	mustPanic("leading digit", func() { r.Counter("9lives") })
	mustPanic("descending bounds", func() { r.Histogram("mnsim_bad_bounds", []float64{2, 1}) })
}

// The registry is shared mutable state hammered from every solver hot
// path; this test exists to fail under -race if any update path loses its
// atomicity.
func TestConcurrentHammer(t *testing.T) {
	r := NewRegistry()
	const goroutines = 16
	const perG = 2000
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := r.Counter("mnsim_hammer_total")
			g := r.Gauge("mnsim_hammer_gauge")
			h := r.Histogram("mnsim_hammer_hist", []float64{1, 10, 100})
			for k := 0; k < perG; k++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(k % 200))
			}
		}(i)
	}
	wg.Wait()
	if got := r.Counter("mnsim_hammer_total").Value(); got != goroutines*perG {
		t.Fatalf("counter = %d, want %d", got, goroutines*perG)
	}
	if got := r.Gauge("mnsim_hammer_gauge").Value(); got != goroutines*perG {
		t.Fatalf("gauge = %g, want %d", got, goroutines*perG)
	}
	if got := r.Histogram("mnsim_hammer_hist", nil).Count(); got != goroutines*perG {
		t.Fatalf("histogram count = %d, want %d", got, goroutines*perG)
	}
}

func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("mnsim_solves_total").Add(3)
	r.Gauge("mnsim_rate").Set(1.5)
	h := r.Histogram("mnsim_iters", []float64{1, 5})
	h.Observe(1)
	h.Observe(4)
	h.Observe(9)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# TYPE mnsim_solves_total counter
mnsim_solves_total 3
# TYPE mnsim_rate gauge
mnsim_rate 1.5
# TYPE mnsim_iters histogram
mnsim_iters_bucket{le="1"} 1
mnsim_iters_bucket{le="5"} 2
mnsim_iters_bucket{le="+Inf"} 3
mnsim_iters_sum 14
mnsim_iters_count 3
`
	if sb.String() != want {
		t.Fatalf("Prometheus export mismatch:\n--- got ---\n%s--- want ---\n%s", sb.String(), want)
	}
}

func TestWriteJSONGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("mnsim_solves_total").Add(2)
	r.Gauge("mnsim_rate").Set(0.25)
	h := r.Histogram("mnsim_iters", []float64{10})
	h.Observe(7)
	var sb strings.Builder
	if err := r.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var got MetricsSnapshot
	if err := json.Unmarshal([]byte(sb.String()), &got); err != nil {
		t.Fatalf("export is not valid JSON: %v\n%s", err, sb.String())
	}
	if got.Counters["mnsim_solves_total"] != 2 {
		t.Errorf("counter = %d, want 2", got.Counters["mnsim_solves_total"])
	}
	if got.Gauges["mnsim_rate"] != 0.25 {
		t.Errorf("gauge = %g, want 0.25", got.Gauges["mnsim_rate"])
	}
	hj, ok := got.Histograms["mnsim_iters"]
	if !ok {
		t.Fatal("histogram missing from JSON export")
	}
	if hj.Count != 1 || hj.Sum != 7 {
		t.Errorf("histogram count %d sum %g, want 1 and 7", hj.Count, hj.Sum)
	}
	if len(hj.Buckets) != 2 || hj.Buckets[0].LE != "10" || hj.Buckets[1].LE != "+Inf" {
		t.Errorf("buckets = %+v", hj.Buckets)
	}
	if hj.Buckets[0].Cumulative != 1 || hj.Buckets[1].Cumulative != 1 {
		t.Errorf("cumulative counts = %+v", hj.Buckets)
	}
}

func TestRegistryReset(t *testing.T) {
	r := NewRegistry()
	r.Counter("mnsim_gone_total").Inc()
	r.Reset()
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if sb.Len() != 0 {
		t.Fatalf("export after Reset: %q", sb.String())
	}
}

func TestBucketHelpers(t *testing.T) {
	lin := LinearBuckets(1, 2, 3)
	if lin[0] != 1 || lin[1] != 3 || lin[2] != 5 {
		t.Fatalf("LinearBuckets = %v", lin)
	}
	exp := ExponentialBuckets(2, 4, 3)
	if exp[0] != 2 || exp[1] != 8 || exp[2] != 32 {
		t.Fatalf("ExponentialBuckets = %v", exp)
	}
}

// TestHistogramQuantiles pins the snapshot's derived statistics on a
// hand-computable distribution: 100 uniform samples over (0, 10] in buckets
// {1,..,10} put exactly 10 in each, so interpolated quantiles are exact.
func TestHistogramQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("mnsim_test_quant", LinearBuckets(1, 1, 10))
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i) / 10)
	}
	hj := histogramSnapshot(h)
	if hj.Count != 100 {
		t.Fatalf("count = %d, want 100", hj.Count)
	}
	if got, want := hj.Mean, 5.05; math.Abs(got-want) > 1e-9 {
		t.Errorf("mean = %g, want %g", got, want)
	}
	for _, tc := range []struct {
		name string
		got  float64
		want float64
	}{{"p50", hj.P50, 5}, {"p90", hj.P90, 9}, {"p99", hj.P99, 9.9}} {
		if math.Abs(tc.got-tc.want) > 1e-9 {
			t.Errorf("%s = %g, want %g", tc.name, tc.got, tc.want)
		}
	}
}

// TestHistogramQuantileEdges: empty histograms report zeros, single-bucket
// mass interpolates from the bucket's lower edge, and ranks landing in the
// +Inf bucket clamp to the last finite bound.
func TestHistogramQuantileEdges(t *testing.T) {
	r := NewRegistry()
	empty := r.Histogram("mnsim_test_quant_empty", []float64{1, 2})
	ej := histogramSnapshot(empty)
	if ej.Mean != 0 || ej.P50 != 0 || ej.P99 != 0 {
		t.Errorf("empty histogram stats nonzero: %+v", ej)
	}

	// All mass in the first bucket: p50 interpolates across (0, 4].
	first := r.Histogram("mnsim_test_quant_first", []float64{4, 8})
	for i := 0; i < 10; i++ {
		first.Observe(2)
	}
	fj := histogramSnapshot(first)
	if got, want := fj.P50, 2.0; math.Abs(got-want) > 1e-9 {
		t.Errorf("first-bucket p50 = %g, want %g", got, want)
	}

	// Mass beyond the last bound clamps to it rather than extrapolating
	// into the unbounded +Inf bucket.
	inf := r.Histogram("mnsim_test_quant_inf", []float64{1, 2})
	for i := 0; i < 10; i++ {
		inf.Observe(50)
	}
	ij := histogramSnapshot(inf)
	if ij.P50 != 2 || ij.P99 != 2 {
		t.Errorf("+Inf-bucket quantiles = %g/%g, want clamp to 2", ij.P50, ij.P99)
	}
}
