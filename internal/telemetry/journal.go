package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// The flight recorder: an append-only JSONL event journal plus a bounded
// in-memory ring buffer. Where the metrics registry aggregates ("1 of
// 10,220 candidates failed") and the tracer aggregates wall time, the
// journal keeps the *individual* events — this solve diverged at iteration
// 50 with this residual trajectory, that candidate failed with this error —
// so a bad run can be diagnosed and replayed after the fact.
//
// Crash safety: every event is marshalled to one complete line and written
// with a single Write call on an append-only file, so a crash can lose at
// most the line in flight; ReadJournalFile tolerates a truncated final
// line. Numerical neutrality: the journal only observes — enabling it must
// never change any computed output, only record it.

// JournalSchemaVersion identifies the event layout; bump it on any
// incompatible change so replay tooling can refuse journals it does not
// understand. The version is recorded in the journal's first event
// (type "journal", data.schema_version).
//
// Version history:
//
//	1 — PR 4: initial flight-recorder layout.
//	2 — PR 8: "span" events (causal trace records) and trace/span/parent
//	    ID stamps on solve/candidate/trial events. Version-1 journals
//	    still read cleanly (the additions are new events and new data
//	    keys); readers refuse versions *newer* than they understand.
//	    PR 9 added "resource_sample"/"watchdog_stall"/"mem_pressure"
//	    WITHOUT a version bump: new event types within a supported schema
//	    version are forward-compatible by contract — readers must carry
//	    unknown event types through untouched and skip them in typed
//	    processing, never error. Bump the version only when the envelope
//	    (seq/t_ns/type/id/data) or an existing event's meaning changes.
const JournalSchemaVersion = 2

// SchemaVersionError reports a journal written by a newer tool than the
// reader: its header schema_version exceeds what this build understands.
type SchemaVersionError struct {
	Path    string
	Version int
}

func (e *SchemaVersionError) Error() string {
	return fmt.Sprintf("telemetry: journal %s has schema version %d, newer than supported version %d — upgrade the reading tool",
		e.Path, e.Version, JournalSchemaVersion)
}

// EventType enumerates the typed journal events.
type EventType string

const (
	// EvJournal is the self-describing header event every journal file
	// starts with.
	EvJournal EventType = "journal"
	// EvSolveStart marks the beginning of one circuit-level solve.
	EvSolveStart EventType = "solve_start"
	// EvNewtonIter records one Newton iteration of a circuit solve: the
	// max node-voltage update and the inner CG iteration count.
	EvNewtonIter EventType = "newton_iter"
	// EvSolveEnd marks the end of one circuit-level solve, success or not;
	// on divergence it carries the snapshot path when one was written.
	EvSolveEnd EventType = "solve_end"
	// EvTransientSettle records the outcome of one transient settling run.
	EvTransientSettle EventType = "transient_settle"
	// EvCandidateEval records the outcome of one DSE grid-point evaluation.
	EvCandidateEval EventType = "candidate_eval"
	// EvMCTrial records one Monte-Carlo accuracy trial.
	EvMCTrial EventType = "mc_trial"
	// EvPhase records progress-phase boundaries (start/finish) and
	// experiment summaries.
	EvPhase EventType = "phase"
	// EvSpan records one completed trace span (schema v2): name, path,
	// trace/span/parent IDs in hex wire form, start_us and dur_us.
	EvSpan EventType = "span"
	// EvResourceSample records one resource-sampler observation: heap,
	// allocation totals, goroutines, GC pause/CPU, scheduler latency.
	EvResourceSample EventType = "resource_sample"
	// EvWatchdogStall records a stall-watchdog firing: no journal/progress
	// activity for the configured window; carries the quiet duration and
	// the goroutine-profile capture path.
	EvWatchdogStall EventType = "watchdog_stall"
	// EvMemPressure records a soft-memory-watermark crossing: live heap at
	// or above -mem-soft-limit; carries the heap size, the limit, and the
	// heap-profile capture path.
	EvMemPressure EventType = "mem_pressure"
)

// Event is one journal record. Data keys are event-type specific; the
// envelope (seq, t_ns, type, id) is shared. JSON key order is stable
// (struct fields in order, map keys sorted by encoding/json), which the
// schema golden test relies on.
type Event struct {
	// Seq is the process-wide monotonically increasing event number.
	Seq int64 `json:"seq"`
	// TNS is the event wall-clock time in Unix nanoseconds.
	TNS int64 `json:"t_ns"`
	// Type is the event type.
	Type EventType `json:"type"`
	// ID correlates events of one logical operation (e.g. all newton_iter
	// events of solve "solve-17").
	ID string `json:"id,omitempty"`
	// Data carries the event-type specific payload.
	Data map[string]any `json:"data,omitempty"`
}

// DefaultJournalRing is the default ring-buffer capacity: enough to hold
// the tail of a large sweep without unbounded memory.
const DefaultJournalRing = 4096

// Journal is the event recorder. All methods are safe for concurrent use.
// A Journal records into its ring buffer always, and additionally appends
// JSONL to a backing file when opened with Open. The zero-value-disabled
// default instance is reached through the package-level helpers
// (EmitEvent, JournalOn); instrumented packages use those, so enabling the
// default journal is enough to capture events process-wide.
type Journal struct {
	enabled atomic.Bool

	mu      sync.Mutex
	f       *os.File
	path    string
	seq     int64
	total   int64
	dropped int64
	ring    []Event
	ringCap int
	tool    string
	seed    *int64
	snaps   int
}

// NewJournal returns a disabled journal with the given ring capacity
// (<= 0 selects DefaultJournalRing).
func NewJournal(ringCap int) *Journal {
	if ringCap <= 0 {
		ringCap = DefaultJournalRing
	}
	return &Journal{ringCap: ringCap}
}

var defaultJournal = NewJournal(DefaultJournalRing)

// DefaultJournal returns the process-wide journal instance.
func DefaultJournal() *Journal { return defaultJournal }

// JournalOn reports whether the default journal is recording. Hot paths
// (per-Newton-iteration, per-MC-trial) check it before building an event
// payload, so a disabled journal costs one atomic load.
func JournalOn() bool { return defaultJournal.Enabled() }

// EmitEvent records an event in the default journal; a no-op while the
// journal is disabled.
func EmitEvent(typ EventType, id string, data map[string]any) {
	defaultJournal.Emit(typ, id, data)
}

// Enabled reports whether the journal is recording.
func (j *Journal) Enabled() bool { return j.enabled.Load() }

// Open starts recording to path (truncating any previous file) and writes
// the self-describing header event. Snapshots (SaveSnapshot) land next to
// the file.
func (j *Journal) Open(path string) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("telemetry: journal open: %w", err)
	}
	j.mu.Lock()
	if j.f != nil {
		_ = j.f.Close() // replacing the handle; the old file's fate is not actionable
	}
	j.f = f
	j.path = path
	j.snaps = 0
	j.mu.Unlock()
	j.enabled.Store(true)
	j.Emit(EvJournal, "", map[string]any{
		"schema_version": JournalSchemaVersion,
		"pid":            os.Getpid(),
	})
	return nil
}

// EnableRing starts ring-only recording (no backing file): events are
// served live at /events but not persisted and no snapshots are written.
// Open supersedes it.
func (j *Journal) EnableRing() { j.enabled.Store(true) }

// Close stops recording and closes the backing file, if any. The ring
// buffer is kept so /events stays inspectable during -serve-hold.
func (j *Journal) Close() error {
	j.enabled.Store(false)
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	j.path = ""
	return err
}

// SetMeta records run identity (tool name, seed) stamped into snapshots.
func (j *Journal) SetMeta(tool string, seed *int64) {
	j.mu.Lock()
	j.tool = tool
	if seed != nil {
		s := *seed
		j.seed = &s
	}
	j.mu.Unlock()
}

// Meta returns the run identity previously set with SetMeta; instrumented
// packages use it to stamp provenance into the snapshots they build.
func (j *Journal) Meta() (tool string, seed *int64) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.tool, j.seed
}

// Emit records one event: appended to the ring buffer and, when a file is
// open, written as one complete JSONL line in a single Write call (the
// crash-safety contract). A failed file write is logged once and recording
// continues ring-only.
func (j *Journal) Emit(typ EventType, id string, data map[string]any) {
	if !j.enabled.Load() {
		return
	}
	// Journal traffic is the stall watchdog's primary liveness signal: a
	// journaled run that stops emitting has stopped doing observable work.
	// The sampler's own events are excluded — periodic resource samples
	// would otherwise re-arm the watchdog forever.
	switch typ {
	case EvResourceSample, EvWatchdogStall, EvMemPressure:
	default:
		noteActivity()
	}
	now := time.Now().UnixNano()
	j.mu.Lock()
	j.seq++
	ev := Event{Seq: j.seq, TNS: now, Type: typ, ID: id, Data: data}
	j.total++
	if len(j.ring) < j.ringCap {
		j.ring = append(j.ring, ev)
	} else {
		// Overwrite the oldest slot; ring order is reconstructed from Seq.
		copy(j.ring, j.ring[1:])
		j.ring[len(j.ring)-1] = ev
		j.dropped++
	}
	f := j.f
	var line []byte
	var merr error
	if f != nil {
		line, merr = json.Marshal(ev)
	}
	j.mu.Unlock()
	if f == nil {
		return
	}
	if merr != nil {
		Log().Warn("journal event marshal failed", "type", string(typ), "err", merr)
		return
	}
	line = append(line, '\n')
	if _, err := f.Write(line); err != nil {
		Log().Warn("journal write failed, continuing ring-only", "err", err)
		j.mu.Lock()
		if j.f == f {
			_ = j.f.Close() // already degrading to ring-only after a failed write
			j.f = nil
		}
		j.mu.Unlock()
	}
}

// Path returns the backing file path ("" when ring-only).
func (j *Journal) Path() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.path
}

// SaveSnapshot writes payload as an indented JSON document next to the
// journal file, named <journal>.snap-<n>.<kind>.json, atomically (temp
// file + rename). It returns "" with a nil error when the journal has no
// backing file — ring-only recording has nowhere durable to put state.
func (j *Journal) SaveSnapshot(kind string, payload any) (string, error) {
	j.mu.Lock()
	if j.f == nil || j.path == "" {
		j.mu.Unlock()
		return "", nil
	}
	j.snaps++
	path := fmt.Sprintf("%s.snap-%d.%s.json", j.path, j.snaps, kind)
	j.mu.Unlock()
	err := writeFileAtomic(path, func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(payload)
	})
	if err != nil {
		return "", fmt.Errorf("telemetry: snapshot write: %w", err)
	}
	return path, nil
}

// eventsJSON is the /events payload.
type eventsJSON struct {
	Enabled bool    `json:"enabled"`
	Total   int64   `json:"total"`
	Dropped int64   `json:"dropped"`
	Events  []Event `json:"events"`
}

// WriteEventsJSON writes the ring buffer (oldest first) with total and
// dropped counts — the /events endpoint body.
func (j *Journal) WriteEventsJSON(w io.Writer) error {
	j.mu.Lock()
	out := eventsJSON{
		Enabled: j.enabled.Load(),
		Total:   j.total,
		Dropped: j.dropped,
		Events:  append([]Event(nil), j.ring...),
	}
	j.mu.Unlock()
	if out.Events == nil {
		out.Events = []Event{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// Reset clears the ring buffer and counters of a closed journal; test
// helper, not part of the recording lifecycle.
func (j *Journal) Reset() {
	j.mu.Lock()
	j.ring, j.seq, j.total, j.dropped, j.snaps = nil, 0, 0, 0, 0
	j.tool, j.seed = "", nil
	j.mu.Unlock()
}

// ReadJournalFile parses a JSONL journal. A truncated final line — the
// signature of a crash mid-write — is skipped silently; any other malformed
// line is an error, because a valid journal contains only complete JSON
// lines.
func ReadJournalFile(path string) ([]Event, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var events []Event
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lastComplete := true
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var ev Event
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			lastComplete = false
			continue
		}
		if !lastComplete {
			// A malformed line in the middle of the file is corruption,
			// not crash truncation.
			return nil, fmt.Errorf("telemetry: journal %s: malformed line before seq %d", path, ev.Seq)
		}
		if len(events) == 0 && ev.Type == EvJournal {
			if v, ok := ev.Data["schema_version"].(float64); ok && int(v) > JournalSchemaVersion {
				return nil, &SchemaVersionError{Path: path, Version: int(v)}
			}
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("telemetry: journal %s: %w", path, err)
	}
	return events, nil
}

// JournalSnapshotPaths extracts the snapshot file paths referenced by a
// journal's events (data.snapshot) in event order. A recorded path that no
// longer resolves (the journal moved since recording) is retried next to
// the journal file, where SaveSnapshot put it.
func JournalSnapshotPaths(journalPath string, events []Event) []string {
	var out []string
	for _, ev := range events {
		s, ok := ev.Data["snapshot"].(string)
		if !ok || s == "" {
			continue
		}
		if _, err := os.Stat(s); err != nil {
			if moved := filepath.Join(filepath.Dir(journalPath), filepath.Base(s)); moved != s {
				if _, err := os.Stat(moved); err == nil {
					s = moved
				}
			}
		}
		out = append(out, s)
	}
	return out
}
