package telemetry

import (
	"fmt"
	"io"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Level is a log severity. Records below a logger's minimum level are
// dropped before formatting.
type Level int32

const (
	// LevelDebug is per-iteration detail (off by default).
	LevelDebug Level = iota
	// LevelInfo is run-level progress.
	LevelInfo
	// LevelWarn is recoverable anomalies (e.g. a diverged solve that the
	// caller handles).
	LevelWarn
	// LevelError is failures surfaced to the user.
	LevelError
	// LevelOff disables the logger entirely.
	LevelOff
)

// String implements fmt.Stringer.
func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	case LevelError:
		return "error"
	case LevelOff:
		return "off"
	default:
		return fmt.Sprintf("level(%d)", int(l))
	}
}

// ParseLevel maps a level name (debug, info, warn, error, off) to a Level.
func ParseLevel(s string) (Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return LevelDebug, nil
	case "info":
		return LevelInfo, nil
	case "warn", "warning":
		return LevelWarn, nil
	case "error":
		return LevelError, nil
	case "off", "none":
		return LevelOff, nil
	default:
		return LevelOff, fmt.Errorf("telemetry: unknown log level %q", s)
	}
}

// Logger is a leveled key-value line logger. One record is one line:
//
//	2026-08-05T10:00:00Z level=info msg="dse sweep done" candidates=10220
//
// Values that contain spaces or quotes are %q-quoted; everything else is
// printed bare. Safe for concurrent use.
type Logger struct {
	mu  sync.Mutex
	w   io.Writer
	min atomic.Int32
	now func() time.Time // injectable for tests
}

// NewLogger returns a logger writing records at or above min to w.
func NewLogger(w io.Writer, min Level) *Logger {
	l := &Logger{w: w, now: time.Now}
	l.min.Store(int32(min))
	return l
}

// SetLevel changes the minimum level.
func (l *Logger) SetLevel(min Level) { l.min.Store(int32(min)) }

// SetOutput redirects the logger.
func (l *Logger) SetOutput(w io.Writer) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.w = w
}

// Debug logs at LevelDebug.
func (l *Logger) Debug(msg string, kv ...any) { l.log(LevelDebug, msg, kv...) }

// Info logs at LevelInfo.
func (l *Logger) Info(msg string, kv ...any) { l.log(LevelInfo, msg, kv...) }

// Warn logs at LevelWarn.
func (l *Logger) Warn(msg string, kv ...any) { l.log(LevelWarn, msg, kv...) }

// Error logs at LevelError.
func (l *Logger) Error(msg string, kv ...any) { l.log(LevelError, msg, kv...) }

func (l *Logger) log(lv Level, msg string, kv ...any) {
	if lv < Level(l.min.Load()) {
		return
	}
	var b strings.Builder
	b.WriteString(l.now().UTC().Format(time.RFC3339))
	b.WriteString(" level=")
	b.WriteString(lv.String())
	b.WriteString(" msg=")
	b.WriteString(quoteValue(msg))
	for i := 0; i < len(kv); i += 2 {
		b.WriteString(" ")
		if i+1 >= len(kv) {
			// Odd trailing value: keep it visible rather than dropping it.
			b.WriteString("!BADKEY=")
			b.WriteString(quoteValue(fmt.Sprint(kv[i])))
			break
		}
		b.WriteString(fmt.Sprint(kv[i]))
		b.WriteString("=")
		b.WriteString(quoteValue(fmt.Sprint(kv[i+1])))
	}
	b.WriteString("\n")
	l.mu.Lock()
	defer l.mu.Unlock()
	fmt.Fprint(l.w, b.String())
}

func quoteValue(s string) string {
	if strings.ContainsAny(s, " \t\n\"=") || s == "" {
		return fmt.Sprintf("%q", s)
	}
	return s
}

// defaultLogger writes to stderr at LevelWarn, so instrumented library
// packages stay silent in normal runs and CLI output is unchanged unless a
// user raises verbosity with SetLogLevel.
var defaultLogger = NewLogger(os.Stderr, LevelWarn)

// Log returns the process-wide default logger.
func Log() *Logger { return defaultLogger }

// SetLogLevel adjusts the default logger's minimum level.
func SetLogLevel(min Level) { defaultLogger.SetLevel(min) }
