package telemetry

import (
	"context"
	"encoding/json"
	"flag"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

// startServe parses the given flag args and starts the observability
// server, failing the test on error and cleaning up on exit.
func startServe(t *testing.T, ctx context.Context, args ...string) *Flags {
	t.Helper()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	f := AddFlags(fs)
	if err := fs.Parse(args); err != nil {
		t.Fatal(err)
	}
	if err := f.StartContext(ctx); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Finish() })
	return f
}

func get(t *testing.T, url string) (status int, contentType, body string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header.Get("Content-Type"), string(b)
}

func TestServeEndpoints(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	f := startServe(t, ctx, "-serve", "localhost:0")
	if f.Addr() == "" {
		t.Fatal("no resolved -serve address")
	}
	base := "http://" + f.Addr()

	GetCounter("mnsim_servetest_total").Inc()
	_, sp := StartSpan(context.Background(), "servetest.span")
	sp.End()
	ph := StartPhase("servetest.phase", 10)
	ph.Add(4)

	status, ct, body := get(t, base+"/metrics")
	if status != http.StatusOK || !strings.Contains(ct, "text/plain") {
		t.Fatalf("/metrics status %d content-type %q", status, ct)
	}
	if !strings.Contains(body, "mnsim_servetest_total 1") {
		t.Fatalf("/metrics missing counter:\n%s", body)
	}

	status, ct, body = get(t, base+"/metrics.json")
	if status != http.StatusOK || !strings.Contains(ct, "application/json") {
		t.Fatalf("/metrics.json status %d content-type %q", status, ct)
	}
	if !strings.Contains(body, `"counters"`) {
		t.Fatalf("/metrics.json malformed:\n%s", body)
	}

	status, _, body = get(t, base+"/trace")
	if status != http.StatusOK || !strings.Contains(body, "servetest.span") {
		t.Fatalf("/trace status %d body:\n%s", status, body)
	}

	status, _, body = get(t, base+"/progress")
	if status != http.StatusOK {
		t.Fatalf("/progress status %d", status)
	}
	var prog struct {
		Phases []PhaseStatus `json:"phases"`
	}
	if err := json.Unmarshal([]byte(body), &prog); err != nil {
		t.Fatalf("/progress malformed: %v\n%s", err, body)
	}
	found := false
	for _, p := range prog.Phases {
		if p.Name == "servetest.phase" && p.Done == 4 && p.Total == 10 {
			found = true
		}
	}
	if !found {
		t.Fatalf("/progress missing live phase: %s", body)
	}

	status, _, body = get(t, base+"/runinfo")
	if status != http.StatusOK || !strings.Contains(body, `"go_version"`) {
		t.Fatalf("/runinfo status %d body:\n%s", status, body)
	}

	status, _, body = get(t, base+"/healthz")
	if status != http.StatusOK || strings.TrimSpace(body) != "ok" {
		t.Fatalf("/healthz status %d body %q", status, body)
	}

	status, _, body = get(t, base+"/debug/pprof/")
	if status != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/ status %d", status)
	}

	// Cancelling the CLI context shuts the server down gracefully.
	cancel()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := http.Get(base + "/healthz"); err != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("server still up after context cancel")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestPprofAliasServesOnlyPprof(t *testing.T) {
	f := startServe(t, context.Background(), "-pprof", "localhost:0")
	addr := f.PprofListenAddr()
	if addr == "" {
		t.Fatal("no resolved -pprof address")
	}
	status, _, _ := get(t, "http://"+addr+"/debug/pprof/")
	if status != http.StatusOK {
		t.Fatalf("/debug/pprof/ status %d", status)
	}
	// The deprecated alias must NOT expose the full observability surface.
	status, _, _ = get(t, "http://"+addr+"/metrics")
	if status != http.StatusNotFound {
		t.Fatalf("/metrics on -pprof server: status %d, want 404", status)
	}
}

func TestServePprofOverlapRejected(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	f := AddFlags(fs)
	if err := fs.Parse([]string{"-serve", "localhost:7171", "-pprof", "localhost:7171"}); err != nil {
		t.Fatal(err)
	}
	err := f.StartContext(context.Background())
	if err == nil {
		f.Finish()
		t.Fatal("same -serve/-pprof address accepted")
	}
	if !strings.Contains(err.Error(), "deprecated") {
		t.Fatalf("overlap error %q should point at the deprecation", err)
	}
}

func TestServeBothServersDistinctAddrs(t *testing.T) {
	f := startServe(t, context.Background(), "-serve", "localhost:0", "-pprof", "localhost:0")
	if f.Addr() == "" || f.PprofListenAddr() == "" || f.Addr() == f.PprofListenAddr() {
		t.Fatalf("addrs serve=%q pprof=%q", f.Addr(), f.PprofListenAddr())
	}
	if status, _, _ := get(t, "http://"+f.Addr()+"/healthz"); status != http.StatusOK {
		t.Fatal("-serve server not healthy")
	}
	if status, _, _ := get(t, "http://"+f.PprofListenAddr()+"/debug/pprof/"); status != http.StatusOK {
		t.Fatal("-pprof server not serving pprof")
	}
}
