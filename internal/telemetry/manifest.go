package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"time"
)

// ManifestSchemaVersion identifies the run.json layout; bump it on any
// incompatible change so downstream consumers (mnsim-runs, the bench
// trajectory) can refuse records they do not understand.
const ManifestSchemaVersion = 1

// RunInfo collects the identity of the current process run: which tool is
// running, with which arguments, seed, worker count, and configuration
// fingerprint. The CLIs fill it in after flag parsing; the /runinfo
// endpoint serves it live and the run manifest freezes it on exit.
type RunInfo struct {
	mu         sync.Mutex
	tool       string
	args       []string
	start      time.Time
	configHash string
	seed       *int64
	workers    int
	runErr     error
	artifacts  map[string]string
	resources  *ResourceRollup
}

// NewRunInfo returns a RunInfo stamped with the current time and the
// process name (overridable with SetTool).
func NewRunInfo() *RunInfo {
	tool := ""
	if len(os.Args) > 0 {
		tool = filepath.Base(os.Args[0])
	}
	return &RunInfo{tool: tool, start: time.Now()}
}

// SetTool names the running CLI.
func (r *RunInfo) SetTool(tool string) {
	r.mu.Lock()
	r.tool = tool
	r.mu.Unlock()
}

// SetArgs records the command-line arguments.
func (r *RunInfo) SetArgs(args []string) {
	r.mu.Lock()
	r.args = append([]string(nil), args...)
	r.mu.Unlock()
}

// SetConfigHash records the configuration fingerprint (HashBytes /
// HashStrings of whatever defines the run's workload).
func (r *RunInfo) SetConfigHash(h string) {
	r.mu.Lock()
	r.configHash = h
	r.mu.Unlock()
}

// SetSeed records the run's random seed.
func (r *RunInfo) SetSeed(seed int64) {
	r.mu.Lock()
	r.seed = &seed
	r.mu.Unlock()
}

// SetWorkers records the resolved worker count.
func (r *RunInfo) SetWorkers(n int) {
	r.mu.Lock()
	r.workers = n
	r.mu.Unlock()
}

// SetArtifact records a file the run produced (kind → path: "journal",
// "trace_events", "metrics", "trace", ...), so the manifest makes a run
// directory self-describing and mnsim-runs show can list them.
func (r *RunInfo) SetArtifact(kind, path string) {
	r.mu.Lock()
	if r.artifacts == nil {
		r.artifacts = map[string]string{}
	}
	r.artifacts[kind] = path
	r.mu.Unlock()
}

// SetResources records the resource sampler's run-level rollup (peak heap,
// max goroutines, GC totals); nil leaves the manifest's resources block
// absent, as for any unsampled run.
func (r *RunInfo) SetResources(res *ResourceRollup) {
	r.mu.Lock()
	r.resources = res
	r.mu.Unlock()
}

// SetError records the run's terminal error (nil for success); it becomes
// the manifest's exit_status/error fields.
func (r *RunInfo) SetError(err error) {
	r.mu.Lock()
	r.runErr = err
	r.mu.Unlock()
}

// runInfoJSON is the live /runinfo payload.
type runInfoJSON struct {
	Tool           string    `json:"tool"`
	Args           []string  `json:"args"`
	PID            int       `json:"pid"`
	StartTime      time.Time `json:"start_time"`
	ElapsedSeconds float64   `json:"elapsed_seconds"`
	GoVersion      string    `json:"go_version"`
	OS             string    `json:"os"`
	Arch           string    `json:"arch"`
	Hostname       string    `json:"hostname,omitempty"`
	ConfigHash     string    `json:"config_hash,omitempty"`
	Seed           *int64    `json:"seed,omitempty"`
	Workers        int       `json:"workers,omitempty"`
}

func (r *RunInfo) snapshot() runInfoJSON {
	r.mu.Lock()
	defer r.mu.Unlock()
	host, _ := os.Hostname()
	return runInfoJSON{
		Tool:           r.tool,
		Args:           append([]string(nil), r.args...),
		PID:            os.Getpid(),
		StartTime:      r.start,
		ElapsedSeconds: time.Since(r.start).Seconds(),
		GoVersion:      runtime.Version(),
		OS:             runtime.GOOS,
		Arch:           runtime.GOARCH,
		Hostname:       host,
		ConfigHash:     r.configHash,
		Seed:           r.seed,
		Workers:        r.workers,
	}
}

// WriteJSON writes the live run info document.
func (r *RunInfo) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.snapshot())
}

// Manifest is the durable, self-describing record of one CLI run — the
// NVSim/CACTI-style machine-readable result record that downstream tools
// (mnsim-runs diff, the bench trajectory) consume. Phases carries the
// per-span wall-time aggregates, Metrics the final registry snapshot.
type Manifest struct {
	SchemaVersion int       `json:"schema_version"`
	Tool          string    `json:"tool"`
	Args          []string  `json:"args"`
	ConfigHash    string    `json:"config_hash,omitempty"`
	Seed          *int64    `json:"seed,omitempty"`
	Workers       int       `json:"workers,omitempty"`
	GoVersion     string    `json:"go_version"`
	OS            string    `json:"os"`
	Arch          string    `json:"arch"`
	Hostname      string    `json:"hostname,omitempty"`
	StartTime     time.Time `json:"start_time"`
	WallSeconds   float64   `json:"wall_seconds"`
	ExitStatus    int       `json:"exit_status"`
	Error         string    `json:"error,omitempty"`

	// Artifacts maps the run's output files by kind ("journal",
	// "trace_events", "metrics", "trace"), as requested on the command
	// line, so a run directory is self-describing.
	Artifacts map[string]string `json:"artifacts,omitempty"`

	Phases  []SpanStat      `json:"phases"`
	Metrics MetricsSnapshot `json:"metrics"`

	// Resources is the resource sampler's run-level rollup; absent (nil)
	// for runs that never sampled. Adding it stays within manifest schema
	// version 1: consumers that predate it ignore the extra key.
	Resources *ResourceRollup `json:"resources,omitempty"`
}

// Manifest freezes the run info plus the default tracer's span aggregates
// and the default registry's metrics into a manifest.
func (r *RunInfo) Manifest() Manifest {
	info := r.snapshot()
	m := Manifest{
		SchemaVersion: ManifestSchemaVersion,
		Tool:          info.Tool,
		Args:          info.Args,
		ConfigHash:    info.ConfigHash,
		Seed:          info.Seed,
		Workers:       info.Workers,
		GoVersion:     info.GoVersion,
		OS:            info.OS,
		Arch:          info.Arch,
		Hostname:      info.Hostname,
		StartTime:     info.StartTime,
		WallSeconds:   info.ElapsedSeconds,
		Phases:        defaultTracer.Stats(),
		Metrics:       defaultRegistry.Snapshot(),
	}
	r.mu.Lock()
	if r.runErr != nil {
		m.ExitStatus = 1
		m.Error = r.runErr.Error()
	}
	if len(r.artifacts) > 0 {
		m.Artifacts = make(map[string]string, len(r.artifacts))
		for k, v := range r.artifacts {
			m.Artifacts[k] = v
		}
	}
	if r.resources != nil {
		res := *r.resources
		m.Resources = &res
	}
	r.mu.Unlock()
	return m
}

// Validate checks the fields every schema-conformant manifest must carry.
func (m Manifest) Validate() error {
	switch {
	case m.SchemaVersion != ManifestSchemaVersion:
		return fmt.Errorf("telemetry: manifest schema_version %d, want %d", m.SchemaVersion, ManifestSchemaVersion)
	case m.Tool == "":
		return fmt.Errorf("telemetry: manifest missing tool")
	case m.GoVersion == "" || m.OS == "" || m.Arch == "":
		return fmt.Errorf("telemetry: manifest missing go_version/os/arch")
	case m.StartTime.IsZero():
		return fmt.Errorf("telemetry: manifest missing start_time")
	case m.WallSeconds < 0:
		return fmt.Errorf("telemetry: negative wall_seconds %g", m.WallSeconds)
	case m.Metrics.Counters == nil && m.Metrics.Gauges == nil && m.Metrics.Histograms == nil:
		return fmt.Errorf("telemetry: manifest missing metrics snapshot")
	}
	return nil
}

// WriteManifestFile writes r's manifest to path atomically (temp file +
// rename), so a crash mid-write never leaves a truncated record.
func WriteManifestFile(path string, r *RunInfo) error {
	m := r.Manifest()
	return writeFileAtomic(path, func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(m)
	})
}

// LoadManifest reads and schema-validates a run manifest.
func LoadManifest(path string) (Manifest, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return Manifest{}, err
	}
	var m Manifest
	if err := json.Unmarshal(b, &m); err != nil {
		return Manifest{}, fmt.Errorf("telemetry: manifest %s: %w", path, err)
	}
	if err := m.Validate(); err != nil {
		return Manifest{}, fmt.Errorf("%w (in %s)", err, path)
	}
	return m, nil
}
