package telemetry

import (
	"context"
	"math"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"runtime/metrics"
	"strings"
	"testing"
	"time"
)

// startTestSampler starts the default sampler with the given config and
// guarantees it is stopped at test end.
func startTestSampler(t *testing.T, cfg ResourceConfig) {
	t.Helper()
	if err := defaultResources.Start(context.Background(), cfg); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(defaultResources.Stop)
}

// waitFor polls until cond holds or the deadline passes — the sampler is
// timing-driven, so assertions poll instead of sleeping fixed amounts.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestResourceSamplerSamples(t *testing.T) {
	startTestSampler(t, ResourceConfig{Interval: 5 * time.Millisecond})
	waitFor(t, 5*time.Second, "two samples", func() bool {
		return len(defaultResources.Samples()) >= 2
	})
	defaultResources.Stop()
	samples := defaultResources.Samples()
	last := samples[len(samples)-1]
	if last.HeapLiveBytes == 0 || last.HeapGoalBytes == 0 {
		t.Fatalf("empty heap stats: %+v", last)
	}
	if last.Goroutines <= 0 {
		t.Fatalf("goroutines = %d", last.Goroutines)
	}
	if last.TotalAllocBytes == 0 {
		t.Fatalf("no allocation total: %+v", last)
	}
	for i := 1; i < len(samples); i++ {
		if samples[i].TNS < samples[i-1].TNS {
			t.Fatalf("samples out of order at %d", i)
		}
		if samples[i].TotalAllocBytes < samples[i-1].TotalAllocBytes {
			t.Fatalf("cumulative alloc total went backwards at %d", i)
		}
	}
	r := defaultResources.Rollup()
	if r == nil {
		t.Fatal("nil rollup after a sampled run")
	}
	if r.Samples != int64(defaultResources.total) || r.PeakHeapLiveBytes == 0 || r.MaxGoroutines <= 0 {
		t.Fatalf("rollup not filled: %+v", r)
	}
	// Registry export: the gauges carry the last sample.
	if got := telHeapLive.Value(); got != float64(last.HeapLiveBytes) {
		t.Fatalf("heap gauge %v, want %v", got, last.HeapLiveBytes)
	}
	if telAllocBytes.Value() <= 0 {
		t.Fatal("alloc counter never advanced")
	}
}

// Stop must flush one final sample even when the interval never elapsed —
// the clean-shutdown contract.
func TestResourceSamplerFinalFlush(t *testing.T) {
	j, path := newTestJournal(t, 64)
	old := defaultJournal
	defaultJournal = j
	t.Cleanup(func() { defaultJournal = old })

	startTestSampler(t, ResourceConfig{Interval: time.Hour, Journal: true})
	defaultResources.Stop()
	if n := len(defaultResources.Samples()); n != 1 {
		t.Fatalf("got %d samples, want exactly the final flush", n)
	}
	j.Close()
	events, err := ReadJournalFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var saw bool
	for _, ev := range events {
		if ev.Type == EvResourceSample {
			saw = true
			if ev.Data["heap_live_bytes"].(float64) <= 0 {
				t.Fatalf("resource_sample without heap data: %v", ev.Data)
			}
		}
	}
	if !saw {
		t.Fatal("no resource_sample event journaled on shutdown")
	}
}

// The sampler and its watchdogs must leave no goroutines behind after
// Stop, across repeated start/stop cycles and context cancellation.
func TestResourceSamplerGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 3; i++ {
		if err := defaultResources.Start(context.Background(), ResourceConfig{Interval: time.Millisecond}); err != nil {
			t.Fatal(err)
		}
		time.Sleep(5 * time.Millisecond)
		defaultResources.Stop()
	}
	// Cancellation path: the loop must exit on ctx alone.
	ctx, cancel := context.WithCancel(context.Background())
	if err := defaultResources.Start(ctx, ResourceConfig{Interval: time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	cancel()
	waitFor(t, 5*time.Second, "loop exit on cancel", func() bool {
		defaultResources.mu.Lock()
		defer defaultResources.mu.Unlock()
		return !defaultResources.running
	})
	waitFor(t, 5*time.Second, "goroutine count to settle", func() bool {
		return runtime.NumGoroutine() <= before
	})
}

// A double start must fail, and Stop on a stopped sampler is a no-op.
func TestResourceSamplerLifecycle(t *testing.T) {
	defaultResources.Stop() // no-op on a stopped sampler
	startTestSampler(t, ResourceConfig{Interval: time.Hour})
	if err := defaultResources.Start(context.Background(), ResourceConfig{Interval: time.Hour}); err == nil {
		t.Fatal("second Start succeeded on a running sampler")
	}
	defaultResources.Stop()
	defaultResources.Stop() // idempotent
}

// A tiny soft limit must fire mem_pressure exactly once (no re-arm while
// the heap stays above 90% of the limit), journal the event, capture a
// heap profile next to the journal, and count into the rollup.
func TestResourceSamplerMemPressure(t *testing.T) {
	j, path := newTestJournal(t, 256)
	old := defaultJournal
	defaultJournal = j
	t.Cleanup(func() { defaultJournal = old })

	startTestSampler(t, ResourceConfig{
		Interval:          3 * time.Millisecond,
		MemSoftLimitBytes: 1, // any live heap crosses this
		Journal:           true,
	})
	waitFor(t, 5*time.Second, "several samples", func() bool {
		return len(defaultResources.Samples()) >= 4
	})
	defaultResources.Stop()
	r := defaultResources.Rollup()
	if r.MemPressureEvents != 1 {
		t.Fatalf("mem pressure fired %d times, want exactly 1 (hysteresis)", r.MemPressureEvents)
	}
	j.Close()
	events, err := ReadJournalFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var ev *Event
	for i := range events {
		if events[i].Type == EvMemPressure {
			ev = &events[i]
			break
		}
	}
	if ev == nil {
		t.Fatal("no mem_pressure event journaled")
	}
	if ev.Data["limit_bytes"].(float64) != 1 {
		t.Fatalf("mem_pressure limit %v", ev.Data["limit_bytes"])
	}
	prof, _ := ev.Data["heap_profile"].(string)
	if prof == "" {
		t.Fatal("mem_pressure event carries no heap profile path")
	}
	if fi, err := os.Stat(prof); err != nil || fi.Size() == 0 {
		t.Fatalf("heap profile %s missing or empty: %v", prof, err)
	}
	if filepath.Dir(prof) != filepath.Dir(path) {
		t.Fatalf("capture %s not next to journal %s", prof, path)
	}
}

// With no journal/progress activity the stall watchdog must fire, capture
// a goroutine profile, and journal watchdog_stall; the sampler's own
// resource_sample events must not count as activity.
func TestResourceSamplerStallWatchdog(t *testing.T) {
	j, path := newTestJournal(t, 256)
	old := defaultJournal
	defaultJournal = j
	t.Cleanup(func() { defaultJournal = old })

	startTestSampler(t, ResourceConfig{
		Interval:     3 * time.Millisecond,
		StallTimeout: 15 * time.Millisecond,
		Journal:      true,
	})
	waitFor(t, 5*time.Second, "stall to fire", func() bool {
		return defaultResources.Rollup().WatchdogStalls >= 1
	})
	defaultResources.Stop()
	j.Close()
	events, err := ReadJournalFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var ev *Event
	for i := range events {
		if events[i].Type == EvWatchdogStall {
			ev = &events[i]
			break
		}
	}
	if ev == nil {
		t.Fatal("no watchdog_stall event journaled")
	}
	if q, ok := ev.Data["quiet_ms"].(float64); !ok || q < 10 {
		t.Fatalf("watchdog_stall quiet_ms = %v", ev.Data["quiet_ms"])
	}
	prof, _ := ev.Data["goroutine_profile"].(string)
	if prof == "" {
		t.Fatal("watchdog_stall carries no goroutine profile path")
	}
	b, err := os.ReadFile(prof)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), "goroutine") {
		t.Fatalf("goroutine profile %s does not look like a dump", prof)
	}
}

// Activity (journal or progress traffic) must hold the stall watchdog off.
func TestResourceSamplerStallSuppressedByActivity(t *testing.T) {
	j, _ := newTestJournal(t, 256)
	old := defaultJournal
	defaultJournal = j
	t.Cleanup(func() { defaultJournal = old })

	startTestSampler(t, ResourceConfig{
		Interval:     2 * time.Millisecond,
		StallTimeout: 20 * time.Millisecond,
		Journal:      true,
	})
	deadline := time.Now().Add(100 * time.Millisecond)
	for time.Now().Before(deadline) {
		j.Emit(EvPhase, "busy", nil) // keeps the activity counter moving
		time.Sleep(2 * time.Millisecond)
	}
	defaultResources.Stop()
	if n := defaultResources.Rollup().WatchdogStalls; n != 0 {
		t.Fatalf("watchdog fired %d times despite continuous activity", n)
	}
}

// Continuous profiling must produce rotating CPU profiles and a final heap
// profile under -profile-dir, and report them as artifacts.
func TestResourceSamplerContinuousProfiling(t *testing.T) {
	dir := t.TempDir()
	arts := map[string]string{}
	startTestSampler(t, ResourceConfig{
		Interval:        3 * time.Millisecond,
		ProfileDir:      dir,
		ProfileInterval: 10 * time.Millisecond,
		Artifact:        func(kind, path string) { arts[kind] = path },
	})
	waitFor(t, 5*time.Second, "profile rotation", func() bool {
		m, _ := filepath.Glob(filepath.Join(dir, "cpu-*.pprof"))
		return len(m) >= 2
	})
	defaultResources.Stop()
	cpus, _ := filepath.Glob(filepath.Join(dir, "cpu-*.pprof"))
	heaps, _ := filepath.Glob(filepath.Join(dir, "heap-*.pprof"))
	if len(cpus) < 2 {
		t.Fatalf("want >= 2 rotated cpu profiles, got %v", cpus)
	}
	if len(heaps) < 1 {
		t.Fatalf("want a heap profile, got %v", heaps)
	}
	if arts["profile_cpu"] == "" || arts["profile_heap"] == "" {
		t.Fatalf("profile artifacts not recorded: %v", arts)
	}
}

func TestResourcesEndpoint(t *testing.T) {
	startTestSampler(t, ResourceConfig{Interval: 3 * time.Millisecond})
	waitFor(t, 5*time.Second, "a sample", func() bool {
		return len(defaultResources.Samples()) >= 1
	})
	srv := httptest.NewServer(NewServeMux(nil))
	defer srv.Close()
	status, _, body := get(t, srv.URL+"/resources.json")
	if status != 200 {
		t.Fatalf("/resources.json status %d", status)
	}
	if !strings.Contains(body, `"enabled": true`) {
		t.Fatalf("/resources.json not live:\n%s", body)
	}
	if !strings.Contains(body, "heap_live_bytes") || !strings.Contains(body, "rollup") {
		t.Fatalf("/resources.json missing fields:\n%s", body)
	}
}

// The flag layer end to end: resource flags start the sampler, Finish
// stops it and lands the rollup in the manifest.
func TestFlagsResourceRollupInManifest(t *testing.T) {
	dir := t.TempDir()
	runOut := filepath.Join(dir, "run.json")
	f := &Flags{
		RunOut:           runOut,
		ResourceInterval: 3 * time.Millisecond,
		Run:              NewRunInfo(),
	}
	f.Run.SetTool("resources-test")
	if err := f.StartContext(context.Background()); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, "samples", func() bool {
		return len(defaultResources.Samples()) >= 2
	})
	if err := f.Finish(); err != nil {
		t.Fatal(err)
	}
	m, err := LoadManifest(runOut)
	if err != nil {
		t.Fatal(err)
	}
	if m.Resources == nil {
		t.Fatal("manifest has no resources rollup")
	}
	if m.Resources.Samples < 2 || m.Resources.PeakHeapLiveBytes == 0 || m.Resources.MaxGoroutines <= 0 {
		t.Fatalf("rollup not populated: %+v", m.Resources)
	}
}

func TestParseByteSize(t *testing.T) {
	cases := []struct {
		in   string
		want uint64
		err  bool
	}{
		{"", 0, false},
		{"0", 0, false},
		{"1234", 1234, false},
		{"64MiB", 64 << 20, false},
		{"64mib", 64 << 20, false},
		{"1 GiB", 1 << 30, false},
		{"512KiB", 512 << 10, false},
		{"2KB", 2000, false},
		{"3MB", 3000000, false},
		{"1GB", 1000000000, false},
		{"64M", 64 << 20, false},
		{"2k", 2 << 10, false},
		{"1g", 1 << 30, false},
		{"100B", 100, false},
		{"1.5MiB", 3 << 19, false},
		{"-1", 0, true},
		{"howmuch", 0, true},
		{"MiB", 0, true},
	}
	for _, c := range cases {
		got, err := ParseByteSize(c.in)
		if c.err != (err != nil) {
			t.Errorf("ParseByteSize(%q) err = %v, want err=%v", c.in, err, c.err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseByteSize(%q) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestFormatByteSize(t *testing.T) {
	cases := []struct {
		in   uint64
		want string
	}{
		{512, "512 B"},
		{64 << 20, "64.0 MiB"},
		{1 << 30, "1.0 GiB"},
		{1536, "1.5 KiB"},
	}
	for _, c := range cases {
		if got := FormatByteSize(c.in); got != c.want {
			t.Errorf("FormatByteSize(%d) = %q, want %q", c.in, got, c.want)
		}
	}
}

// The histogram helpers against a hand-built runtime/metrics histogram,
// including the open-ended edge buckets.
func TestRuntimeHistogramHelpers(t *testing.T) {
	h := &metrics.Float64Histogram{
		Counts:  []uint64{2, 6, 2},
		Buckets: []float64{0, 10, 20, 30},
	}
	// midpoints 5, 15, 25 → 2·5 + 6·15 + 2·25 = 150
	if got := histogramSum(h); got != 150 {
		t.Fatalf("histogramSum = %v, want 150", got)
	}
	// p50: target = 5 of 10 → bucket [10,20), 3 of 6 into it → 15.
	if got := histogramQuantile(h, 0.5); got != 15 {
		t.Fatalf("p50 = %v, want 15", got)
	}
	inf := math.Inf(1)
	edge := &metrics.Float64Histogram{
		Counts:  []uint64{1, 1},
		Buckets: []float64{-inf, 5, inf},
	}
	// -Inf bucket contributes its finite edge (5), +Inf likewise (5).
	if got := histogramSum(edge); got != 10 {
		t.Fatalf("edge sum = %v, want 10", got)
	}
	if got := histogramQuantile(edge, 0.99); got != 5 {
		t.Fatalf("edge p99 = %v, want 5", got)
	}
	if got := histogramQuantile(&metrics.Float64Histogram{Counts: []uint64{0}, Buckets: []float64{0, 1}}, 0.5); got != 0 {
		t.Fatalf("empty histogram quantile = %v", got)
	}
}

// Every runtime/metrics series the sampler reads must exist on the current
// toolchain — a rename in a future Go release should fail loudly here, not
// silently sample zeros.
func TestResourceMetricNamesSupported(t *testing.T) {
	known := map[string]bool{}
	for _, d := range metrics.All() {
		known[d.Name] = true
	}
	for _, name := range resourceMetricNames {
		if !known[name] {
			t.Errorf("runtime/metrics series %q not supported by this toolchain", name)
		}
	}
}
