package telemetry

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func TestFormatParseIDRoundTrip(t *testing.T) {
	for _, id := range []uint64{0, 1, 0xdeadbeef, ^uint64(0), mix64(42)} {
		s := FormatID(id)
		if len(s) != 16 {
			t.Fatalf("FormatID(%d) = %q, want 16 hex chars", id, s)
		}
		back, err := ParseID(s)
		if err != nil {
			t.Fatal(err)
		}
		if back != id {
			t.Fatalf("round trip %d -> %q -> %d", id, s, back)
		}
	}
	if _, err := ParseID("not-hex"); err == nil {
		t.Fatal("ParseID accepted garbage")
	}
}

// Trace and span IDs must be pure functions of the seed and the span's
// position in the call tree — two identical runs produce identical IDs.
func TestSpanIDsDeterministic(t *testing.T) {
	runOnce := func() []SpanRecord {
		tr := NewTracer()
		tr.SetTraceSeed(1234)
		tr.EnableTraceEvents(64)
		ctx, root := tr.StartSpan(context.Background(), "dse.explore")
		for i := 0; i < 3; i++ {
			cctx, cand := tr.StartSpanKeyed(ctx, "candidate", fmt.Sprintf("cand-%d", i))
			_, solve := tr.StartSpan(cctx, "circuit.solve")
			solve.End()
			cand.End()
		}
		root.End()
		recs, _ := tr.TraceEvents()
		return recs
	}
	a, b := runOnce(), runOnce()
	if len(a) != 7 || len(b) != 7 {
		t.Fatalf("got %d / %d records, want 7 each", len(a), len(b))
	}
	for i := range a {
		if a[i].TraceID != b[i].TraceID || a[i].SpanID != b[i].SpanID || a[i].ParentID != b[i].ParentID {
			t.Fatalf("record %d IDs differ across identical runs:\n a: %+v\n b: %+v", i, a[i], b[i])
		}
		if a[i].TraceID != a[0].TraceID {
			t.Fatalf("record %d trace ID %x, want run-wide %x", i, a[i].TraceID, a[0].TraceID)
		}
		if a[i].SpanID == 0 {
			t.Fatalf("record %d has zero span ID", i)
		}
	}
	// A different seed yields a different trace ID.
	tr := NewTracer()
	tr.SetTraceSeed(5678)
	if tr.currentTraceID() == a[0].TraceID {
		t.Fatal("different seeds produced the same trace ID")
	}
}

// Keyed sibling spans must derive identical IDs regardless of start order —
// the property that keeps parallel sweeps' traces stable across worker
// counts and scheduling.
func TestKeyedSpanIDsOrderIndependent(t *testing.T) {
	ids := func(order []int) map[string]uint64 {
		tr := NewTracer()
		tr.SetTraceSeed(99)
		ctx, root := tr.StartSpan(context.Background(), "sweep")
		defer root.End()
		out := map[string]uint64{}
		for _, i := range order {
			key := fmt.Sprintf("cand-%d", i)
			_, s := tr.StartSpanKeyed(ctx, "candidate", key)
			out[key] = s.SpanID()
			s.End()
		}
		return out
	}
	fwd := ids([]int{0, 1, 2, 3})
	rev := ids([]int{3, 2, 1, 0})
	for k, v := range fwd {
		if rev[k] != v {
			t.Fatalf("span ID for %s depends on start order: %x vs %x", k, v, rev[k])
		}
	}
	seen := map[uint64]bool{}
	for _, v := range fwd {
		if seen[v] {
			t.Fatal("keyed siblings collided")
		}
		seen[v] = true
	}
}

// Concurrent keyed spans under one parent: IDs stay deterministic and the
// ring absorbs all records (run with -race).
func TestConcurrentKeyedSpans(t *testing.T) {
	tr := NewTracer()
	tr.SetTraceSeed(7)
	tr.EnableTraceEvents(128)
	ctx, root := tr.StartSpan(context.Background(), "sweep")
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, s := tr.StartSpanKeyed(ctx, "candidate", fmt.Sprintf("cand-%d", i))
			s.End()
		}(i)
	}
	wg.Wait()
	root.End()
	recs, dropped := tr.TraceEvents()
	if dropped != 0 || len(recs) != 17 {
		t.Fatalf("got %d records (%d dropped), want 17/0", len(recs), dropped)
	}
	for _, r := range recs {
		if r.Name == "candidate" && r.ParentID != root.SpanID() {
			t.Fatalf("candidate span parent %x, want root %x", r.ParentID, root.SpanID())
		}
	}
}

// The span-record ring is bounded: overflow keeps the newest records and
// counts the drops.
func TestTraceEventRingBounded(t *testing.T) {
	tr := NewTracer()
	tr.EnableTraceEvents(4)
	for i := 0; i < 10; i++ {
		_, s := tr.StartSpanKeyed(context.Background(), "tick", fmt.Sprintf("%d", i))
		s.End()
	}
	recs, dropped := tr.TraceEvents()
	if len(recs) != 4 || dropped != 6 {
		t.Fatalf("ring holds %d (%d dropped), want 4/6", len(recs), dropped)
	}
	// Oldest-first order survives the wraparound.
	for i := 1; i < len(recs); i++ {
		if recs[i].StartNS < recs[i-1].StartNS {
			t.Fatalf("ring out of order at %d", i)
		}
	}
}

// Disabled trace events: End records nothing (the aggregate still counts).
func TestTraceEventsOffRecordsNothing(t *testing.T) {
	tr := NewTracer()
	_, s := tr.StartSpan(context.Background(), "quiet")
	s.End()
	if recs, _ := tr.TraceEvents(); len(recs) != 0 {
		t.Fatalf("disabled tracer retained %d records", len(recs))
	}
	if _, ok := tr.Stat("quiet"); !ok {
		t.Fatal("aggregate lost when events off")
	}
}

// The Chrome trace-event export must be valid JSON in the documented
// shape: complete "X" events, µs timestamps relative to the earliest span,
// IDs in wire form, concurrent root chains on distinct lanes.
func TestWriteTraceEventsFormat(t *testing.T) {
	recs := []SpanRecord{
		{Name: "sweep", Path: "sweep", TraceID: 1, SpanID: 10, StartNS: 1000, DurNS: 9000},
		{Name: "candidate", Path: "sweep/candidate", TraceID: 1, SpanID: 11, ParentID: 10, StartNS: 2000, DurNS: 3000},
		// A second root chain overlapping the first → its own lane.
		{Name: "other", Path: "other", TraceID: 1, SpanID: 20, StartNS: 1500, DurNS: 4000},
	}
	var sb strings.Builder
	if err := WriteTraceEventsTo(&sb, recs); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string         `json:"name"`
			Cat  string         `json:"cat"`
			Ph   string         `json:"ph"`
			TS   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			PID  int            `json:"pid"`
			TID  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v\n%s", err, sb.String())
	}
	if doc.DisplayTimeUnit != "ms" || len(doc.TraceEvents) != 3 {
		t.Fatalf("doc shape: unit %q, %d events", doc.DisplayTimeUnit, len(doc.TraceEvents))
	}
	byName := map[string]int{}
	for i, ev := range doc.TraceEvents {
		if ev.Ph != "X" || ev.PID != 1 || ev.TID < 1 {
			t.Fatalf("event %d envelope: %+v", i, ev)
		}
		if _, err := ParseID(ev.Args["span_id"].(string)); err != nil {
			t.Fatalf("event %d span_id: %v", i, err)
		}
		byName[ev.Name] = i
	}
	sweep := doc.TraceEvents[byName["sweep"]]
	cand := doc.TraceEvents[byName["candidate"]]
	other := doc.TraceEvents[byName["other"]]
	if sweep.TS != 0 || cand.TS != 1 || cand.Dur != 3 {
		t.Fatalf("timestamps not µs-relative: sweep %v cand %v/%v", sweep.TS, cand.TS, cand.Dur)
	}
	if cand.TID != sweep.TID {
		t.Fatalf("child on lane %d, parent on %d", cand.TID, sweep.TID)
	}
	if other.TID == sweep.TID {
		t.Fatal("overlapping root chains share a lane")
	}
	if cand.Args["parent_id"].(string) != FormatID(10) {
		t.Fatalf("candidate parent_id %v", cand.Args["parent_id"])
	}
}

// Ending a span on the default tracer with events on and the journal
// recording must emit a "span" event that reconstructs to the same record
// (the mnsim-journal export path).
func TestSpanJournalRoundTrip(t *testing.T) {
	defaultJournal.Reset()
	defaultTracer.ResetTraceEvents()
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	if err := defaultJournal.Open(path); err != nil {
		t.Fatal(err)
	}
	defer func() {
		defaultJournal.Close()
		defaultJournal.Reset()
		defaultTracer.ResetTraceEvents()
	}()
	SetTraceSeed(42)
	EnableTraceEvents(16)
	ctx, parent := StartSpan(context.Background(), "run")
	_, child := StartSpanKeyed(ctx, "candidate", "cand-8x2@45")
	child.End()
	parent.End()
	DisableTraceEvents()
	if err := defaultJournal.Close(); err != nil {
		t.Fatal(err)
	}
	events, err := ReadJournalFile(path)
	if err != nil {
		t.Fatal(err)
	}
	recs := SpanRecordsFromEvents(events)
	if len(recs) != 2 {
		t.Fatalf("got %d span records from journal, want 2", len(recs))
	}
	// Spans journal at End, so the child lands first.
	got := recs[0]
	if got.Name != "candidate" || got.Path != "run/candidate" {
		t.Fatalf("child record %+v", got)
	}
	if got.TraceID != child.TraceID() || got.SpanID != child.SpanID() || got.ParentID != parent.SpanID() {
		t.Fatalf("IDs did not survive the journal: %+v (want trace %x span %x parent %x)",
			got, child.TraceID(), child.SpanID(), parent.SpanID())
	}
	if got.DurNS < 0 || got.StartNS <= 0 {
		t.Fatalf("timing did not survive: %+v", got)
	}
	// The live ring and the journal reconstruction agree on identity.
	live, _ := defaultTracer.TraceEvents()
	if len(live) != 2 || live[0].SpanID != recs[0].SpanID || live[1].SpanID != recs[1].SpanID {
		t.Fatalf("ring/journal disagree: ring %+v journal %+v", live, recs)
	}
}

// A reader must refuse a journal written by a newer schema with the typed
// error, so stale tooling fails loudly instead of misparsing.
func TestReadJournalRefusesNewerSchema(t *testing.T) {
	path := filepath.Join(t.TempDir(), "future.jsonl")
	lines := fmt.Sprintf(`{"seq":1,"t_ns":1,"type":"journal","data":{"schema_version":%d}}
{"seq":2,"t_ns":2,"type":"solve_start","id":"solve-1"}
`, JournalSchemaVersion+1)
	if err := os.WriteFile(path, []byte(lines), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := ReadJournalFile(path)
	var sv *SchemaVersionError
	if !errors.As(err, &sv) {
		t.Fatalf("got %v, want *SchemaVersionError", err)
	}
	if sv.Version != JournalSchemaVersion+1 {
		t.Fatalf("error version %d, want %d", sv.Version, JournalSchemaVersion+1)
	}
	if !strings.Contains(sv.Error(), "newer than supported") {
		t.Fatalf("error text %q", sv.Error())
	}
	// Current and older versions still read.
	for _, v := range []int{JournalSchemaVersion, 1} {
		ok := fmt.Sprintf(`{"seq":1,"t_ns":1,"type":"journal","data":{"schema_version":%d}}`+"\n", v)
		if err := os.WriteFile(path, []byte(ok), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := ReadJournalFile(path); err != nil {
			t.Fatalf("version %d refused: %v", v, err)
		}
	}
}

// EmitEventCtx stamps the enclosing trace/span IDs into event payloads —
// the join key between the event stream and the span timeline.
func TestEmitEventCtxStampsIDs(t *testing.T) {
	defaultJournal.Reset()
	defaultTracer.ResetTraceEvents()
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	if err := defaultJournal.Open(path); err != nil {
		t.Fatal(err)
	}
	defer func() {
		defaultJournal.Close()
		defaultJournal.Reset()
		defaultTracer.ResetTraceEvents()
	}()
	SetTraceSeed(5)
	ctx, sp := StartSpan(context.Background(), "solve")
	EmitEventCtx(ctx, EvSolveStart, "solve-1", map[string]any{"m": 4})
	// No span in scope → trace ID only.
	EmitEventCtx(context.Background(), EvPhase, "", map[string]any{"phase": "done"})
	sp.End()
	defaultJournal.Close()
	events, err := ReadJournalFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 3 { // header + 2
		t.Fatalf("got %d events", len(events))
	}
	ev := events[1]
	if ev.Data["trace_id"] != FormatID(sp.TraceID()) || ev.Data["span_id"] != FormatID(sp.SpanID()) {
		t.Fatalf("solve_start not stamped: %v", ev.Data)
	}
	if ev.Data["m"].(float64) != 4 {
		t.Fatalf("payload lost: %v", ev.Data)
	}
	if events[2].Data["trace_id"] != FormatID(sp.TraceID()) {
		t.Fatalf("spanless event missing trace ID: %v", events[2].Data)
	}
	if _, ok := events[2].Data["span_id"]; ok {
		t.Fatalf("spanless event has span ID: %v", events[2].Data)
	}
}

// The /trace.json endpoint serves the same Chrome trace-event document the
// -trace-events flag writes.
func TestServeMuxTraceJSON(t *testing.T) {
	defaultTracer.ResetTraceEvents()
	defer defaultTracer.ResetTraceEvents()
	SetTraceSeed(11)
	EnableTraceEvents(16)
	_, s := StartSpan(context.Background(), "probe")
	s.End()
	srv := httptest.NewServer(NewServeMux(nil))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/trace.json")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 || resp.Header.Get("Content-Type") != "application/json" {
		t.Fatalf("status %d type %q", resp.StatusCode, resp.Header.Get("Content-Type"))
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
		} `json:"traceEvents"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.TraceEvents) != 1 || doc.TraceEvents[0].Name != "probe" {
		t.Fatalf("trace.json payload %+v", doc)
	}
}
