package telemetry

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"runtime/metrics"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// The resource sampler: a background observer over Go's runtime/metrics
// that turns the process's physical footprint — heap, GC, goroutines,
// scheduler latency — into the same surfaces every other telemetry layer
// uses: registry gauges/counters, journal events, a /resources.json
// endpoint, and peak/total rollups in the run manifest. Two watchdogs ride
// on the same tick: a stall watchdog that captures a goroutine profile
// when no journal/progress activity happens for a configured window, and a
// soft memory watermark that journals mem_pressure and captures a heap
// profile when live heap crosses it. Everything here is observational:
// enabling the sampler never changes a computed float, and a disabled
// sampler costs nothing on the solve hot path (no goroutine, no atomics
// beyond the watchdog activity counter the journal already pays for).

// resourceMetricNames are the runtime/metrics series one sample reads, in
// the order the sampler's metrics.Sample buffer holds them.
var resourceMetricNames = []string{
	// Heap in use is /memory/classes/heap/objects (the HeapAlloc
	// equivalent), not /gc/heap/live: the latter reads zero until the
	// first GC cycle completes, which would blind the memory watermark for
	// a run's whole ramp-up.
	"/memory/classes/heap/objects:bytes",
	"/gc/heap/goal:bytes",
	"/gc/heap/allocs:bytes",
	"/gc/heap/allocs:objects",
	"/sched/goroutines:goroutines",
	"/gc/cycles/total:gc-cycles",
	"/sched/pauses/total/gc:seconds",
	"/cpu/classes/gc/total:cpu-seconds",
	"/cpu/classes/total:cpu-seconds",
	"/sched/latencies:seconds",
}

// Indices into resourceMetricNames / the sample buffer.
const (
	rmHeapLive = iota
	rmHeapGoal
	rmAllocBytes
	rmAllocObjects
	rmGoroutines
	rmGCCycles
	rmGCPauses
	rmGCCPU
	rmTotalCPU
	rmSchedLat
)

// ResourceSample is one sampler observation. Totals (alloc bytes/objects,
// GC cycles/pause) are process-lifetime cumulative, matching the
// runtime/metrics semantics; deltas belong to the reader.
type ResourceSample struct {
	// TNS is the sample wall-clock time in Unix nanoseconds.
	TNS int64 `json:"t_ns"`
	// HeapLiveBytes is the heap occupied by objects (live plus
	// dead-not-yet-swept — the runtime's HeapAlloc); HeapGoalBytes is the
	// pacer's current target.
	HeapLiveBytes uint64 `json:"heap_live_bytes"`
	HeapGoalBytes uint64 `json:"heap_goal_bytes"`
	// TotalAllocBytes / TotalAllocObjects are cumulative allocation totals.
	TotalAllocBytes   uint64 `json:"total_alloc_bytes"`
	TotalAllocObjects uint64 `json:"total_alloc_objects"`
	Goroutines        int64  `json:"goroutines"`
	GCCycles          uint64 `json:"gc_cycles"`
	// GCPauseTotalNS approximates cumulative stop-the-world pause time from
	// the runtime's pause histogram (bucket-midpoint sum).
	GCPauseTotalNS int64 `json:"gc_pause_total_ns"`
	// GCCPUFraction is the cumulative fraction of available CPU time spent
	// in the garbage collector.
	GCCPUFraction float64 `json:"gc_cpu_fraction"`
	// SchedLatency percentiles (µs) of the goroutine run-queue wait
	// distribution, cumulative since process start.
	SchedLatencyP50US float64 `json:"sched_latency_p50_us"`
	SchedLatencyP99US float64 `json:"sched_latency_p99_us"`
}

// ResourceRollup is the run-level summary the manifest records: peaks and
// run-scoped totals (deltas between the first and last sample, so a
// manifest answers "what did *this run* allocate", not "what has this
// process ever allocated").
type ResourceRollup struct {
	Samples           int64   `json:"samples"`
	IntervalMS        int64   `json:"interval_ms"`
	PeakHeapLiveBytes uint64  `json:"peak_heap_live_bytes"`
	MaxGoroutines     int64   `json:"max_goroutines"`
	TotalAllocBytes   uint64  `json:"total_alloc_bytes"`
	TotalAllocObjects uint64  `json:"total_alloc_objects"`
	GCCycles          uint64  `json:"gc_cycles"`
	GCPauseTotalNS    int64   `json:"gc_pause_total_ns"`
	GCCPUFraction     float64 `json:"gc_cpu_fraction"`
	MemPressureEvents int64   `json:"mem_pressure_events,omitempty"`
	WatchdogStalls    int64   `json:"watchdog_stalls,omitempty"`
}

// ResourceConfig tunes StartResourceSampler.
type ResourceConfig struct {
	// Interval is the sampling cadence; <= 0 disables periodic sampling
	// unless a watchdog or profiler needs a tick, in which case it defaults
	// to DefaultResourceInterval.
	Interval time.Duration
	// RingCap bounds the in-memory sample ring (<= 0 selects
	// DefaultResourceRing).
	RingCap int
	// MemSoftLimitBytes, when > 0, arms the soft memory watermark: live
	// heap at or above it journals mem_pressure and captures a heap
	// profile; the watchdog re-arms when live heap falls back under 90%.
	MemSoftLimitBytes uint64
	// StallTimeout, when > 0, arms the stall watchdog: no journal/progress
	// activity for this long journals watchdog_stall and captures a
	// goroutine profile; it re-arms on the next activity.
	StallTimeout time.Duration
	// ProfileDir, when set, enables continuous profiling: rotating CPU
	// profiles plus periodic heap profiles written under this directory
	// every ProfileInterval (default DefaultProfileInterval). Watchdog
	// captures land here too (falling back to the journal's directory,
	// then to none, when unset).
	ProfileDir string
	// ProfileInterval is the profile rotation cadence.
	ProfileInterval time.Duration
	// Journal enables resource_sample/watchdog_stall/mem_pressure journal
	// events (the sampler checks JournalOn per tick regardless, so this
	// only suppresses them for embedded users who want ring-only samples).
	Journal bool
	// Artifact, when non-nil, is called for every file the sampler writes
	// (profiles, watchdog captures) so the run manifest can index them;
	// wired to RunInfo.SetArtifact by the flag layer.
	Artifact func(kind, path string)
}

// Defaults for ResourceConfig zero values.
const (
	DefaultResourceInterval = 1 * time.Second
	DefaultResourceRing     = 512
	DefaultProfileInterval  = 30 * time.Second
)

// activityCounter counts externally visible liveness: journal events and
// progress bumps. The stall watchdog watches it; a counter that stops
// moving means the process stopped doing observable work.
var activityCounter atomic.Int64

// noteActivity records one unit of observable liveness. Called from the
// journal emit and progress add paths — one atomic add, cheap enough for
// both.
func noteActivity() { activityCounter.Add(1) }

// Registry series the sampler maintains. Gauges carry the latest sample;
// counters carry cumulative totals (advanced by delta, staying monotonic).
var (
	telHeapLive    = GetGauge("mnsim_proc_heap_live_bytes")
	telHeapGoal    = GetGauge("mnsim_proc_heap_goal_bytes")
	telGoroutines  = GetGauge("mnsim_proc_goroutines")
	telGCFraction  = GetGauge("mnsim_proc_gc_cpu_fraction")
	telSchedP99    = GetGauge("mnsim_proc_sched_latency_p99_us")
	telAllocBytes  = GetCounter("mnsim_proc_alloc_bytes_total")
	telAllocObjs   = GetCounter("mnsim_proc_alloc_objects_total")
	telGCCycles    = GetCounter("mnsim_proc_gc_cycles_total")
	telGCPauseNS   = GetCounter("mnsim_proc_gc_pause_ns_total")
	telMemPressure = GetCounter("mnsim_proc_mem_pressure_total")
	telStalls      = GetCounter("mnsim_proc_watchdog_stalls_total")
)

// ResourceSampler owns the sampling goroutine and its bounded ring. The
// zero value is a stopped sampler; the package-level default instance
// backs /resources.json and the flag layer.
type ResourceSampler struct {
	mu      sync.Mutex
	cfg     ResourceConfig
	ring    []ResourceSample
	total   int64
	rollup  ResourceRollup
	first   *ResourceSample // baseline for run-scoped totals
	ran     bool
	running bool
	stop    chan struct{}
	done    chan struct{}

	// Sampling state, owned by the loop goroutine while running.
	buf []metrics.Sample
	// prev* are the last tick's cumulative counter values, for registry
	// deltas.
	prevAllocB, prevAllocO, prevCycles uint64
	prevPauseNS                        int64
	// Watchdog state.
	memArmed      bool
	lastActivity  int64
	lastChangeNS  int64
	stallArmed    bool
	captureSeq    int
	cpuProfile    *os.File
	cpuProfileSeq int
	lastProfileNS int64
}

var defaultResources = &ResourceSampler{}

// DefaultResourceSampler returns the process-wide sampler instance — the
// one the telemetry flags start and /resources.json serves.
func DefaultResourceSampler() *ResourceSampler { return defaultResources }

// Start launches the sampling loop; it runs until Stop or ctx
// cancellation, whichever comes first, and flushes one final sample on the
// way out. Starting a running sampler is an error.
func (s *ResourceSampler) Start(ctx context.Context, cfg ResourceConfig) error {
	if cfg.Interval <= 0 {
		cfg.Interval = DefaultResourceInterval
	}
	if cfg.RingCap <= 0 {
		cfg.RingCap = DefaultResourceRing
	}
	if cfg.ProfileInterval <= 0 {
		cfg.ProfileInterval = DefaultProfileInterval
	}
	s.mu.Lock()
	if s.running {
		s.mu.Unlock()
		return fmt.Errorf("telemetry: resource sampler already running")
	}
	s.cfg = cfg
	s.ring = s.ring[:0]
	s.total = 0
	s.rollup = ResourceRollup{IntervalMS: cfg.Interval.Milliseconds()}
	s.first = nil
	s.ran = true
	s.running = true
	s.stop = make(chan struct{})
	s.done = make(chan struct{})
	s.buf = make([]metrics.Sample, len(resourceMetricNames))
	for i, name := range resourceMetricNames {
		s.buf[i].Name = name
	}
	s.prevAllocB, s.prevAllocO, s.prevCycles, s.prevPauseNS = 0, 0, 0, 0
	s.memArmed = cfg.MemSoftLimitBytes > 0
	s.stallArmed = cfg.StallTimeout > 0
	s.lastActivity = activityCounter.Load()
	s.lastChangeNS = time.Now().UnixNano()
	s.captureSeq = 0
	s.cpuProfileSeq = 0
	s.lastProfileNS = s.lastChangeNS
	s.mu.Unlock()

	if cfg.ProfileDir != "" {
		if err := os.MkdirAll(cfg.ProfileDir, 0o755); err != nil {
			s.mu.Lock()
			s.running = false
			s.mu.Unlock()
			return fmt.Errorf("telemetry: profile dir: %w", err)
		}
		s.startCPUProfile()
	}
	// Sampling goroutine. Termination edges: loop selects on s.stop
	// (closed by Stop, which then joins on s.done) and on ctx.Done, so
	// cancelling the run context or stopping the sampler both end it.
	go s.loop(ctx)
	return nil
}

// Stop ends the sampling loop and waits for it to flush its final sample
// and exit; safe to call on a stopped (or never-started) sampler.
func (s *ResourceSampler) Stop() {
	s.mu.Lock()
	if !s.running {
		s.mu.Unlock()
		return
	}
	stop, done := s.stop, s.done
	s.mu.Unlock()
	close(stop)
	<-done
}

// loop is the sampling goroutine: one ticker drives sampling, both
// watchdogs, and profile rotation, so stopping the sampler stops
// everything and leaves no goroutines behind.
func (s *ResourceSampler) loop(ctx context.Context) {
	defer close(s.done)
	tick := time.NewTicker(s.cfg.Interval)
	defer tick.Stop()
	for {
		select {
		case <-s.stop:
			s.finish()
			return
		case <-ctx.Done():
			s.finish()
			return
		case <-tick.C:
			s.tick(time.Now())
		}
	}
}

// finish takes the final sample, closes any open CPU profile, and marks
// the sampler stopped — the clean-shutdown flush the journal contract
// promises.
func (s *ResourceSampler) finish() {
	s.tick(time.Now())
	s.stopCPUProfile(true)
	if s.cfg.ProfileDir != "" {
		s.writeHeapProfile("heap", "profile_heap")
	}
	s.mu.Lock()
	s.running = false
	s.mu.Unlock()
}

// tick takes one sample, updates the registry and rollup, runs the
// watchdogs, and rotates profiles.
func (s *ResourceSampler) tick(now time.Time) {
	metrics.Read(s.buf)
	smp := ResourceSample{
		TNS:               now.UnixNano(),
		HeapLiveBytes:     s.buf[rmHeapLive].Value.Uint64(),
		HeapGoalBytes:     s.buf[rmHeapGoal].Value.Uint64(),
		TotalAllocBytes:   s.buf[rmAllocBytes].Value.Uint64(),
		TotalAllocObjects: s.buf[rmAllocObjects].Value.Uint64(),
		Goroutines:        int64(s.buf[rmGoroutines].Value.Uint64()),
		GCCycles:          s.buf[rmGCCycles].Value.Uint64(),
	}
	if h := s.buf[rmGCPauses].Value.Float64Histogram(); h != nil {
		smp.GCPauseTotalNS = int64(histogramSum(h) * 1e9)
	}
	gcCPU := s.buf[rmGCCPU].Value.Float64()
	totCPU := s.buf[rmTotalCPU].Value.Float64()
	if totCPU > 0 {
		smp.GCCPUFraction = gcCPU / totCPU
	}
	if h := s.buf[rmSchedLat].Value.Float64Histogram(); h != nil {
		smp.SchedLatencyP50US = histogramQuantile(h, 0.50) * 1e6
		smp.SchedLatencyP99US = histogramQuantile(h, 0.99) * 1e6
	}

	// Registry: gauges take the latest value, counters advance by delta so
	// they stay monotonic across sampler restarts.
	telHeapLive.Set(float64(smp.HeapLiveBytes))
	telHeapGoal.Set(float64(smp.HeapGoalBytes))
	telGoroutines.Set(float64(smp.Goroutines))
	telGCFraction.Set(smp.GCCPUFraction)
	telSchedP99.Set(smp.SchedLatencyP99US)
	telAllocBytes.Add(int64(smp.TotalAllocBytes - s.prevAllocB))
	telAllocObjs.Add(int64(smp.TotalAllocObjects - s.prevAllocO))
	telGCCycles.Add(int64(smp.GCCycles - s.prevCycles))
	telGCPauseNS.Add(smp.GCPauseTotalNS - s.prevPauseNS)
	s.prevAllocB, s.prevAllocO = smp.TotalAllocBytes, smp.TotalAllocObjects
	s.prevCycles, s.prevPauseNS = smp.GCCycles, smp.GCPauseTotalNS

	s.mu.Lock()
	if len(s.ring) < s.cfg.RingCap {
		s.ring = append(s.ring, smp)
	} else {
		copy(s.ring, s.ring[1:])
		s.ring[len(s.ring)-1] = smp
	}
	s.total++
	if s.first == nil {
		f := smp
		s.first = &f
	}
	r := &s.rollup
	r.Samples = s.total
	if smp.HeapLiveBytes > r.PeakHeapLiveBytes {
		r.PeakHeapLiveBytes = smp.HeapLiveBytes
	}
	if smp.Goroutines > r.MaxGoroutines {
		r.MaxGoroutines = smp.Goroutines
	}
	r.TotalAllocBytes = smp.TotalAllocBytes - s.first.TotalAllocBytes
	r.TotalAllocObjects = smp.TotalAllocObjects - s.first.TotalAllocObjects
	r.GCCycles = smp.GCCycles - s.first.GCCycles
	r.GCPauseTotalNS = smp.GCPauseTotalNS - s.first.GCPauseTotalNS
	r.GCCPUFraction = smp.GCCPUFraction
	journal := s.cfg.Journal
	s.mu.Unlock()

	if journal && JournalOn() {
		EmitEvent(EvResourceSample, "", map[string]any{
			"heap_live_bytes":      smp.HeapLiveBytes,
			"heap_goal_bytes":      smp.HeapGoalBytes,
			"total_alloc_bytes":    smp.TotalAllocBytes,
			"total_alloc_objects":  smp.TotalAllocObjects,
			"goroutines":           smp.Goroutines,
			"gc_cycles":            smp.GCCycles,
			"gc_pause_total_ns":    smp.GCPauseTotalNS,
			"gc_cpu_fraction":      jsonFiniteF(smp.GCCPUFraction),
			"sched_latency_p99_us": jsonFiniteF(smp.SchedLatencyP99US),
		})
	}
	s.checkMemPressure(smp)
	s.checkStall(now, smp)
	s.rotateProfiles(now)
}

// checkMemPressure fires the soft memory watermark: one mem_pressure event
// plus one heap-profile capture per crossing, re-armed when live heap
// falls back under 90% of the limit (hysteresis, so a run hovering at the
// limit does not spam captures).
func (s *ResourceSampler) checkMemPressure(smp ResourceSample) {
	limit := s.cfg.MemSoftLimitBytes
	if limit == 0 {
		return
	}
	if !s.memArmed {
		if smp.HeapLiveBytes < limit-limit/10 {
			s.memArmed = true
		}
		return
	}
	if smp.HeapLiveBytes < limit {
		return
	}
	s.memArmed = false
	telMemPressure.Inc()
	s.mu.Lock()
	s.rollup.MemPressureEvents++
	s.mu.Unlock()
	path := s.writeHeapProfile("heap-pressure", "mem_pressure_heap_profile")
	Log().Warn("soft memory limit crossed",
		"heap_live_bytes", smp.HeapLiveBytes, "limit_bytes", limit, "heap_profile", path)
	if s.cfg.Journal && JournalOn() {
		EmitEvent(EvMemPressure, "", map[string]any{
			"heap_live_bytes": smp.HeapLiveBytes,
			"limit_bytes":     limit,
			"heap_profile":    path,
		})
	}
}

// checkStall fires the stall watchdog: when the activity counter has not
// moved for StallTimeout, capture a goroutine profile and journal
// watchdog_stall; re-arm on the next activity.
func (s *ResourceSampler) checkStall(now time.Time, smp ResourceSample) {
	if s.cfg.StallTimeout <= 0 {
		return
	}
	act := activityCounter.Load()
	if act != s.lastActivity {
		s.lastActivity = act
		s.lastChangeNS = now.UnixNano()
		s.stallArmed = true
		return
	}
	quiet := now.UnixNano() - s.lastChangeNS
	if !s.stallArmed || quiet < int64(s.cfg.StallTimeout) {
		return
	}
	s.stallArmed = false
	telStalls.Inc()
	s.mu.Lock()
	s.rollup.WatchdogStalls++
	s.mu.Unlock()
	path := s.writeGoroutineProfile()
	Log().Warn("stall watchdog fired: no journal/progress activity",
		"quiet", time.Duration(quiet), "goroutines", smp.Goroutines, "goroutine_profile", path)
	if s.cfg.Journal && JournalOn() {
		EmitEvent(EvWatchdogStall, "", map[string]any{
			"quiet_ms":          quiet / 1e6,
			"goroutines":        smp.Goroutines,
			"goroutine_profile": path,
		})
	}
}

// rotateProfiles closes and restarts the continuous CPU profile and writes
// a heap profile every ProfileInterval.
func (s *ResourceSampler) rotateProfiles(now time.Time) {
	if s.cfg.ProfileDir == "" {
		return
	}
	if now.UnixNano()-s.lastProfileNS < int64(s.cfg.ProfileInterval) {
		return
	}
	s.lastProfileNS = now.UnixNano()
	s.stopCPUProfile(false)
	s.startCPUProfile()
	s.writeHeapProfile("heap", "profile_heap")
}

// captureDir resolves where watchdog/profile captures go: -profile-dir
// when set, else next to the journal file, else nowhere.
func (s *ResourceSampler) captureDir() string {
	if s.cfg.ProfileDir != "" {
		return s.cfg.ProfileDir
	}
	if p := defaultJournal.Path(); p != "" {
		return filepath.Dir(p)
	}
	return ""
}

// startCPUProfile begins the next rotating CPU profile segment. A failure
// (including another CPU profile already running, e.g. under go test
// -cpuprofile) is logged and skipped — profiling is best-effort.
func (s *ResourceSampler) startCPUProfile() {
	path := filepath.Join(s.cfg.ProfileDir, fmt.Sprintf("cpu-%03d.pprof", s.cpuProfileSeq))
	f, err := os.Create(path)
	if err != nil {
		Log().Warn("cpu profile create failed", "path", path, "err", err)
		return
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		Log().Warn("cpu profile start failed", "path", path, "err", err)
		_ = f.Close() // profile never started; nothing useful in the file
		_ = os.Remove(path)
		return
	}
	s.cpuProfile = f
	s.cpuProfileSeq++
}

// stopCPUProfile ends the current CPU profile segment and records it as an
// artifact. final marks the last segment of the run.
func (s *ResourceSampler) stopCPUProfile(final bool) {
	if s.cpuProfile == nil {
		return
	}
	pprof.StopCPUProfile()
	path := s.cpuProfile.Name()
	if err := s.cpuProfile.Close(); err != nil {
		Log().Warn("cpu profile close failed", "path", path, "err", err)
	}
	s.cpuProfile = nil
	s.recordArtifact("profile_cpu", path)
	_ = final
}

// writeHeapProfile captures a heap profile into the capture directory and
// records it as an artifact of the given kind. Returns the path ("" when
// there is no capture directory or the write failed).
func (s *ResourceSampler) writeHeapProfile(prefix, artifactKind string) string {
	dir := s.captureDir()
	if dir == "" {
		return ""
	}
	s.captureSeq++
	path := filepath.Join(dir, fmt.Sprintf("%s-%03d.pprof", prefix, s.captureSeq))
	f, err := os.Create(path)
	if err != nil {
		Log().Warn("heap profile create failed", "path", path, "err", err)
		return ""
	}
	err = pprof.Lookup("heap").WriteTo(f, 0)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		Log().Warn("heap profile write failed", "path", path, "err", err)
		return ""
	}
	s.recordArtifact(artifactKind, path)
	return path
}

// writeGoroutineProfile captures a textual goroutine dump (pprof debug=1)
// into the capture directory.
func (s *ResourceSampler) writeGoroutineProfile() string {
	dir := s.captureDir()
	if dir == "" {
		return ""
	}
	s.captureSeq++
	path := filepath.Join(dir, fmt.Sprintf("goroutine-stall-%03d.pprof", s.captureSeq))
	f, err := os.Create(path)
	if err != nil {
		Log().Warn("goroutine profile create failed", "path", path, "err", err)
		return ""
	}
	err = pprof.Lookup("goroutine").WriteTo(f, 1)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		Log().Warn("goroutine profile write failed", "path", path, "err", err)
		return ""
	}
	s.recordArtifact("watchdog_goroutine_profile", path)
	return path
}

func (s *ResourceSampler) recordArtifact(kind, path string) {
	if s.cfg.Artifact != nil {
		s.cfg.Artifact(kind, path)
	}
}

// Rollup returns the run-level summary, or nil when the sampler never ran
// — the manifest omits the resources block entirely for unsampled runs.
func (s *ResourceSampler) Rollup() *ResourceRollup {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.ran {
		return nil
	}
	r := s.rollup
	return &r
}

// Samples returns a copy of the ring (oldest first).
func (s *ResourceSampler) Samples() []ResourceSample {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]ResourceSample(nil), s.ring...)
}

// resourcesJSON is the /resources.json payload.
type resourcesJSON struct {
	Enabled bool             `json:"enabled"`
	Rollup  *ResourceRollup  `json:"rollup,omitempty"`
	Samples []ResourceSample `json:"samples"`
}

// WriteJSON writes the sampler state — the /resources.json endpoint body.
func (s *ResourceSampler) WriteJSON(w io.Writer) error {
	s.mu.Lock()
	out := resourcesJSON{
		Enabled: s.running,
		Samples: append([]ResourceSample(nil), s.ring...),
	}
	if s.ran {
		r := s.rollup
		out.Rollup = &r
	}
	s.mu.Unlock()
	if out.Samples == nil {
		out.Samples = []ResourceSample{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// histogramSum approximates the total of a runtime/metrics histogram by
// summing count × bucket midpoint; the open-ended edge buckets use their
// finite boundary. Good to a bucket width — plenty for pause-time totals.
func histogramSum(h *metrics.Float64Histogram) float64 {
	sum := 0.0
	for i, count := range h.Counts {
		if count == 0 {
			continue
		}
		lo, hi := h.Buckets[i], h.Buckets[i+1]
		var mid float64
		switch {
		case math.IsInf(lo, -1):
			mid = hi
		case math.IsInf(hi, +1):
			mid = lo
		default:
			mid = (lo + hi) / 2
		}
		sum += float64(count) * mid
	}
	return sum
}

// histogramQuantile returns the q-quantile of a runtime/metrics histogram
// by linear interpolation within the containing bucket.
func histogramQuantile(h *metrics.Float64Histogram, q float64) float64 {
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	target := q * float64(total)
	var cum float64
	for i, c := range h.Counts {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if next >= target {
			lo, hi := h.Buckets[i], h.Buckets[i+1]
			if math.IsInf(lo, -1) {
				return hi
			}
			if math.IsInf(hi, +1) {
				return lo
			}
			frac := (target - cum) / float64(c)
			return lo + (hi-lo)*frac
		}
		cum = next
	}
	// Fell off the end (rounding); return the highest finite edge.
	for i := len(h.Buckets) - 1; i >= 0; i-- {
		if !math.IsInf(h.Buckets[i], +1) {
			return h.Buckets[i]
		}
	}
	return 0
}

// jsonFiniteF clamps non-finite floats for JSON payloads (encoding/json
// rejects NaN/Inf inside map[string]any).
func jsonFiniteF(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return v
}

// ParseByteSize parses human-friendly byte sizes: a plain integer is
// bytes; suffixes KB/MB/GB (decimal, 1000-based) and KiB/MiB/GiB (binary,
// 1024-based) scale it, case-insensitively; "64M" means 64 MiB (the
// conventional shorthand). The empty string is 0.
func ParseByteSize(s string) (uint64, error) {
	t := strings.TrimSpace(s)
	if t == "" {
		return 0, nil
	}
	upper := strings.ToUpper(t)
	mult := uint64(1)
	for _, suf := range []struct {
		name string
		mult uint64
	}{
		{"KIB", 1 << 10}, {"MIB", 1 << 20}, {"GIB", 1 << 30},
		{"KB", 1000}, {"MB", 1000 * 1000}, {"GB", 1000 * 1000 * 1000},
		{"K", 1 << 10}, {"M", 1 << 20}, {"G", 1 << 30},
		{"B", 1},
	} {
		if strings.HasSuffix(upper, suf.name) {
			mult = suf.mult
			upper = strings.TrimSpace(strings.TrimSuffix(upper, suf.name))
			break
		}
	}
	n, err := strconv.ParseFloat(upper, 64)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("telemetry: invalid byte size %q", s)
	}
	return uint64(n * float64(mult)), nil
}

// FormatByteSize renders bytes human-readably (binary units), for tables.
func FormatByteSize(b uint64) string {
	const unit = 1024
	if b < unit {
		return fmt.Sprintf("%d B", b)
	}
	div, exp := uint64(unit), 0
	for n := b / unit; n >= unit; n /= unit {
		div *= unit
		exp++
	}
	return fmt.Sprintf("%.1f %ciB", float64(b)/float64(div), "KMGTPE"[exp])
}

// SortSamplesByTime orders samples oldest-first by timestamp — journal
// readers reconstructing a timeline use it after merging sources.
func SortSamplesByTime(samples []ResourceSample) {
	sort.Slice(samples, func(i, j int) bool { return samples[i].TNS < samples[j].TNS })
}
