package telemetry

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestFlagsRegisterAndDump(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	f := AddFlags(fs)
	dir := t.TempDir()
	prom := filepath.Join(dir, "m.prom")
	js := filepath.Join(dir, "m.json")
	trace := filepath.Join(dir, "t.json")
	if err := fs.Parse([]string{"-metrics-out", prom, "-trace-out", trace}); err != nil {
		t.Fatal(err)
	}
	GetCounter("mnsim_flagtest_total").Inc()
	if err := f.Start(); err != nil {
		t.Fatal(err)
	}
	if err := f.Finish(); err != nil {
		t.Fatal(err)
	}
	promBody, err := os.ReadFile(prom)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(promBody), "mnsim_flagtest_total 1") {
		t.Fatalf("Prometheus dump missing counter:\n%s", promBody)
	}
	traceBody, err := os.ReadFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(traceBody), `"spans"`) {
		t.Fatalf("trace dump malformed:\n%s", traceBody)
	}
	// A .json metrics path selects the JSON exporter.
	f.MetricsOut, f.TraceOut = js, ""
	if err := f.Finish(); err != nil {
		t.Fatal(err)
	}
	jsBody, err := os.ReadFile(js)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(jsBody), `"counters"`) {
		t.Fatalf("JSON dump malformed:\n%s", jsBody)
	}
}

func TestFlagsBadPprofAddr(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	f := AddFlags(fs)
	if err := fs.Parse([]string{"-pprof", "256.256.256.256:99999"}); err != nil {
		t.Fatal(err)
	}
	if err := f.Start(); err == nil {
		f.Finish()
		t.Fatal("bad pprof address accepted")
	}
}

func TestFlagsBadLogLevel(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	f := AddFlags(fs)
	if err := fs.Parse([]string{"-log-level", "shouty"}); err != nil {
		t.Fatal(err)
	}
	if err := f.Start(); err == nil {
		t.Fatal("bad log level accepted")
	}
}
