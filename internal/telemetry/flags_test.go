package telemetry

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestFlagsRegisterAndDump(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	f := AddFlags(fs)
	dir := t.TempDir()
	prom := filepath.Join(dir, "m.prom")
	js := filepath.Join(dir, "m.json")
	trace := filepath.Join(dir, "t.json")
	if err := fs.Parse([]string{"-metrics-out", prom, "-trace-out", trace}); err != nil {
		t.Fatal(err)
	}
	GetCounter("mnsim_flagtest_total").Inc()
	if err := f.Start(); err != nil {
		t.Fatal(err)
	}
	if err := f.Finish(); err != nil {
		t.Fatal(err)
	}
	promBody, err := os.ReadFile(prom)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(promBody), "mnsim_flagtest_total 1") {
		t.Fatalf("Prometheus dump missing counter:\n%s", promBody)
	}
	traceBody, err := os.ReadFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(traceBody), `"spans"`) {
		t.Fatalf("trace dump malformed:\n%s", traceBody)
	}
	// A .json metrics path selects the JSON exporter.
	f.MetricsOut, f.TraceOut = js, ""
	if err := f.Finish(); err != nil {
		t.Fatal(err)
	}
	jsBody, err := os.ReadFile(js)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(jsBody), `"counters"`) {
		t.Fatalf("JSON dump malformed:\n%s", jsBody)
	}
}

func TestFlagsBadPprofAddr(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	f := AddFlags(fs)
	if err := fs.Parse([]string{"-pprof", "256.256.256.256:99999"}); err != nil {
		t.Fatal(err)
	}
	if err := f.Start(); err == nil {
		f.Finish()
		t.Fatal("bad pprof address accepted")
	}
}

func TestFlagsBadLogLevel(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	f := AddFlags(fs)
	if err := fs.Parse([]string{"-log-level", "shouty"}); err != nil {
		t.Fatal(err)
	}
	if err := f.Start(); err == nil {
		t.Fatal("bad log level accepted")
	}
}

func TestFlagsBadServeAddr(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	f := AddFlags(fs)
	if err := fs.Parse([]string{"-serve", "256.256.256.256:99999"}); err != nil {
		t.Fatal(err)
	}
	// The listen must fail synchronously in Start, not asynchronously in a
	// serve goroutine after the run is already underway.
	if err := f.Start(); err == nil {
		f.Finish()
		t.Fatal("bad -serve address accepted")
	}
}

func TestFlagsFinishKeepsWritingAfterFailure(t *testing.T) {
	dir := t.TempDir()
	f := &Flags{
		MetricsOut: filepath.Join(dir, "no-such-subdir", "m.prom"), // unwritable
		TraceOut:   filepath.Join(dir, "t.json"),
		RunOut:     filepath.Join(dir, "run.json"),
		Run:        NewRunInfo(),
	}
	f.Run.SetTool("mnsim-test")
	err := f.Finish()
	if err == nil {
		t.Fatal("unwritable -metrics-out did not surface an error")
	}
	// The later dumps must still have been written.
	if _, serr := os.Stat(f.TraceOut); serr != nil {
		t.Errorf("trace dump skipped after metrics failure: %v", serr)
	}
	if _, serr := os.Stat(f.RunOut); serr != nil {
		t.Errorf("run manifest skipped after metrics failure: %v", serr)
	}
	if m, lerr := LoadManifest(f.RunOut); lerr != nil || m.Tool != "mnsim-test" {
		t.Errorf("manifest after failure = %+v, %v", m, lerr)
	}
}

// lockedBuffer is a Writer safe for the progress goroutine + test reader.
type lockedBuffer struct {
	mu sync.Mutex
	b  strings.Builder
}

func (l *lockedBuffer) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.Write(p)
}

func (l *lockedBuffer) String() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.String()
}

func TestFlagsProgressPrinter(t *testing.T) {
	var buf lockedBuffer
	f := &Flags{Progress: true, ProgressOut: &buf, ProgressInterval: 5 * time.Millisecond}
	if err := f.Start(); err != nil {
		t.Fatal(err)
	}
	p := StartPhase("flagstest.progress", 50)
	p.Add(20)
	deadline := time.Now().Add(2 * time.Second)
	for !strings.Contains(buf.String(), "flagstest.progress") {
		if time.Now().After(deadline) {
			t.Fatalf("progress line never printed; output: %q", buf.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
	p.Finish()
	if err := f.Finish(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "20/50") {
		t.Errorf("progress output missing done/total: %q", out)
	}
	// Non-TTY writer: plain changed-line prints, no ANSI rewriting.
	if strings.Contains(out, "\r") || strings.Contains(out, "\x1b[") {
		t.Errorf("non-TTY progress used terminal escapes: %q", out)
	}
}
