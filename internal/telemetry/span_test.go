package telemetry

import (
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNestedSpanAggregation(t *testing.T) {
	tr := NewTracer()
	ctx := context.Background()
	ctx, sweep := tr.StartSpan(ctx, "dse.explore")
	for i := 0; i < 3; i++ {
		_, c := tr.StartSpan(ctx, "candidate")
		time.Sleep(time.Millisecond)
		if d := c.End(); d <= 0 {
			t.Fatalf("candidate %d: non-positive duration %v", i, d)
		}
	}
	sweep.End()

	stats := tr.Stats()
	if len(stats) != 2 {
		t.Fatalf("got %d span names, want 2: %+v", len(stats), stats)
	}
	cand, ok := tr.Stat("dse.explore/candidate")
	if !ok {
		t.Fatal("nested span not aggregated under parent/child path")
	}
	if cand.Count != 3 {
		t.Fatalf("candidate count = %d, want 3", cand.Count)
	}
	if cand.MinUS <= 0 || cand.MinUS > cand.MaxUS || cand.AvgUS < cand.MinUS || cand.AvgUS > cand.MaxUS {
		t.Fatalf("inconsistent aggregate: %+v", cand)
	}
	top, _ := tr.Stat("dse.explore")
	if top.Count != 1 {
		t.Fatalf("parent count = %d, want 1", top.Count)
	}
	// The parent span was open across all children, so its total wall time
	// bounds theirs.
	if top.TotalUS < cand.TotalUS {
		t.Fatalf("parent total %v below children total %v", top.TotalUS, cand.TotalUS)
	}
}

func TestDeeplyNestedPath(t *testing.T) {
	tr := NewTracer()
	ctx, a := tr.StartSpan(context.Background(), "a")
	ctx, b := tr.StartSpan(ctx, "b")
	_, c := tr.StartSpan(ctx, "c")
	c.End()
	b.End()
	a.End()
	if _, ok := tr.Stat("a/b/c"); !ok {
		t.Fatalf("three-level path missing: %+v", tr.Stats())
	}
}

func TestSpanEndIdempotentAndNilSafe(t *testing.T) {
	tr := NewTracer()
	_, s := tr.StartSpan(context.Background(), "once")
	if d := s.End(); d <= 0 {
		t.Fatalf("first End returned %v", d)
	}
	if d := s.End(); d != 0 {
		t.Fatalf("second End returned %v, want 0", d)
	}
	if st, _ := tr.Stat("once"); st.Count != 1 {
		t.Fatalf("count = %d after double End, want 1", st.Count)
	}
	var nilSpan *Span
	if d := nilSpan.End(); d != 0 {
		t.Fatalf("nil span End returned %v", d)
	}
	if nilSpan.Name() != "" {
		t.Fatal("nil span has a name")
	}
}

func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 500; k++ {
				_, s := tr.StartSpan(context.Background(), "hammer")
				s.End()
			}
		}()
	}
	wg.Wait()
	st, ok := tr.Stat("hammer")
	if !ok || st.Count != 8*500 {
		t.Fatalf("count = %d, want %d", st.Count, 8*500)
	}
}

func TestTraceJSONShape(t *testing.T) {
	tr := NewTracer()
	_, s := tr.StartSpan(context.Background(), "solve")
	s.End()
	var sb strings.Builder
	if err := tr.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Spans []SpanStat `json:"spans"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v\n%s", err, sb.String())
	}
	if len(doc.Spans) != 1 || doc.Spans[0].Name != "solve" || doc.Spans[0].Count != 1 {
		t.Fatalf("trace = %+v", doc.Spans)
	}
}
