package periph

import (
	"fmt"

	"mnsim/internal/tech"
)

// NeuronKind selects the non-linear neuron circuit cascaded after the adder
// tree (Section III.B.4). The reference designs are the sigmoid for DNN,
// integrate-and-fire for SNN, and ReLU for CNN.
type NeuronKind int

const (
	// NeuronSigmoid is a lookup-table sigmoid for DNN layers.
	NeuronSigmoid NeuronKind = iota
	// NeuronReLU is a comparator-and-mux rectifier for CNN layers.
	NeuronReLU
	// NeuronIntegrateFire is the accumulate-threshold-reset circuit for SNN
	// layers.
	NeuronIntegrateFire
)

// String implements fmt.Stringer.
func (k NeuronKind) String() string {
	switch k {
	case NeuronSigmoid:
		return "Sigmoid"
	case NeuronReLU:
		return "ReLU"
	case NeuronIntegrateFire:
		return "IntegrateFire"
	default:
		return fmt.Sprintf("NeuronKind(%d)", int(k))
	}
}

// Neuron returns the performance of one neuron circuit processing bits-wide
// values.
func Neuron(n tech.CMOSNode, kind NeuronKind, bits int) (Perf, error) {
	if err := checkBits("neuron", bits); err != nil {
		return Perf{}, err
	}
	fb := float64(bits)
	switch kind {
	case NeuronSigmoid:
		// LUT with 2^bits entries of bits-wide outputs plus address decode.
		entries := float64(int(1) << uint(bits))
		return Perf{
			Area:          entries*fb*0.4*n.GateArea() + fb*4*n.GateArea(),
			DynamicEnergy: fb*6*n.GateEnergy() + entries*0.02*n.GateEnergy(),
			StaticPower:   entries * fb * 0.05 * n.GateLeakage,
			Latency:       (float64(depthOf(bits)) + 2) * n.GateDelay,
		}, nil
	case NeuronReLU:
		// Sign comparator plus an output mux to zero.
		return Perf{
			Area:          fb * 3 * n.GateArea(),
			DynamicEnergy: fb * 2 * n.GateEnergy(),
			StaticPower:   fb * 3 * n.GateLeakage,
			Latency:       2 * n.GateDelay,
		}, nil
	case NeuronIntegrateFire:
		add, err := Adder(n, bits)
		if err != nil {
			return Perf{}, err
		}
		reg, err := Register(n, bits)
		if err != nil {
			return Perf{}, err
		}
		cmp := comparator(n)
		return Sum(add, reg, cmp), nil
	default:
		return Perf{}, fmt.Errorf("periph: unknown neuron kind %d", kind)
	}
}

// Register models a bits-wide register bank (one flip-flop per bit).
func Register(n tech.CMOSNode, bits int) (Perf, error) {
	if bits < 1 {
		return Perf{}, fmt.Errorf("periph: register width %d invalid", bits)
	}
	fb := float64(bits)
	return Perf{
		Area:          fb * n.RegArea,
		DynamicEnergy: fb * n.RegEnergy,
		StaticPower:   fb * 0.3 * n.GateLeakage,
		Latency:       n.GateDelay,
	}, nil
}

// LineBuffer models the shift-register line buffer of Fig. 1(f): length
// stages of width-bit registers. One Push operation shifts every stage, so
// the dynamic energy covers all stages.
func LineBuffer(n tech.CMOSNode, length, width int) (Perf, error) {
	if length < 1 {
		return Perf{}, fmt.Errorf("periph: line buffer length %d invalid", length)
	}
	reg, err := Register(n, width)
	if err != nil {
		return Perf{}, err
	}
	p := reg.Scale(length)
	p.Latency = reg.Latency // all stages shift concurrently
	return p, nil
}

// MaxPool models the k×k spatial max-pooling comparator tree
// (Section III.B.3): k²−1 comparators arranged in a binary tree.
func MaxPool(n tech.CMOSNode, k, bits int) (Perf, error) {
	if k < 1 {
		return Perf{}, fmt.Errorf("periph: pooling size %d invalid", k)
	}
	if err := checkBits("pooling", bits); err != nil {
		return Perf{}, err
	}
	inputs := k * k
	cmp := comparator(n)
	sel, err := Mux(n, 2, bits)
	if err != nil {
		return Perf{}, err
	}
	stage := cmp.Plus(sel)
	p := stage.Scale(inputs - 1)
	depth := ceilLog2(inputs)
	if depth < 1 {
		depth = 1
	}
	p.Latency = float64(depth) * stage.Latency
	return p, nil
}

// IOInterface models the accelerator's input or output buffer module
// (Section III.A): width-bit ports backed by sampleBits of buffering, which
// serialises a full sample over limited bus lines.
func IOInterface(n tech.CMOSNode, ports, sampleBits int) (Perf, error) {
	if ports < 1 {
		return Perf{}, fmt.Errorf("periph: interface needs at least 1 port, got %d", ports)
	}
	if sampleBits < 1 {
		return Perf{}, fmt.Errorf("periph: sample size %d invalid", sampleBits)
	}
	buf, err := Register(n, sampleBits)
	if err != nil {
		return Perf{}, err
	}
	ctrl, err := Counter(n, ceilLog2((sampleBits+ports-1)/ports)+1)
	if err != nil {
		return Perf{}, err
	}
	p := Sum(buf, ctrl)
	// Transfers of a full sample take ceil(sampleBits/ports) bus cycles; a
	// bus cycle is taken as 10 gate delays.
	cycles := (sampleBits + ports - 1) / ports
	p.Latency = float64(cycles) * 10 * n.GateDelay
	p.DynamicEnergy += float64(sampleBits) * 2 * n.GateEnergy()
	return p, nil
}
