package periph

import (
	"fmt"

	"mnsim/internal/tech"
)

// SelectADC chooses the cheapest-area ADC design whose conversion rate
// matches the crossbar's computing speed — the Section V.C sizing rule:
// "the frequency of ADC should match the speed of memristor-based computing
// structure" (the paper picks an ADC above 10 MHz for 10–100 ns memristor
// reads). maxLatency is the crossbar settle interval the converter must
// keep up with.
func SelectADC(n tech.CMOSNode, bits int, maxLatency float64) (ADCKind, Perf, error) {
	if err := checkBits("ADC", bits); err != nil {
		return 0, Perf{}, err
	}
	if maxLatency <= 0 {
		return 0, Perf{}, fmt.Errorf("periph: ADC latency budget must be positive")
	}
	best := ADCKind(-1)
	var bestPerf Perf
	for _, kind := range []ADCKind{ADCVariableSA, ADCSAR, ADCFlash} {
		p, err := ADC(n, kind, bits)
		if err != nil {
			return 0, Perf{}, err
		}
		if p.Latency > maxLatency {
			continue
		}
		if best < 0 || p.Area < bestPerf.Area {
			best, bestPerf = kind, p
		}
	}
	if best < 0 {
		return 0, Perf{}, fmt.Errorf("periph: no ADC design converts %d bits within %.3g s", bits, maxLatency)
	}
	return best, bestPerf, nil
}
