package periph

import (
	"fmt"
	"math"

	"mnsim/internal/tech"
)

// Decoder models the row/column address decoder of a crossbar (Fig. 4).
// lines is the number of crossbar lines to select among. When
// computeOriented is true the design is the paper's modified decoder of
// Fig. 4(b): a NOR gate per line lets a single control signal turn on every
// transfer gate at once for the COMPUTE instruction, at the cost of one
// extra gate level and one NOR plus control routing per line.
func Decoder(n tech.CMOSNode, lines int, computeOriented bool) (Perf, error) {
	if lines < 1 {
		return Perf{}, fmt.Errorf("periph: decoder needs at least 1 line, got %d", lines)
	}
	addrBits := ceilLog2(lines)
	if addrBits == 0 {
		addrBits = 1
	}
	ga, ge, gl, gd := n.GateArea(), n.GateEnergy(), n.GateLeakage, n.GateDelay
	fl := float64(lines)
	// Per line: an address AND tree (~addrBits gates) plus a transfer gate.
	p := Perf{
		Area:          fl * (float64(addrBits)*ga + 2*ga),
		DynamicEnergy: float64(addrBits)*ge + 2*ge, // one line switches in READ/WRITE
		StaticPower:   fl * float64(addrBits+1) * 0.5 * gl,
		Latency:       float64(depthOf(addrBits)) * gd,
	}
	if computeOriented {
		p.Area += fl * ga              // one NOR per line
		p.DynamicEnergy += fl * ge     // COMPUTE flips every line
		p.StaticPower += fl * 0.5 * gl // NOR leakage
		p.Latency += gd                // one extra gate level
	}
	return p, nil
}

// depthOf is the AND-tree depth for the given address width.
func depthOf(addrBits int) int {
	d := ceilLog2(addrBits)
	if d < 1 {
		d = 1
	}
	return d + 1
}

// Adder models a bits-wide ripple-carry adder (~5 gates per full adder).
func Adder(n tech.CMOSNode, bits int) (Perf, error) {
	if err := checkBits("adder", bits); err != nil {
		return Perf{}, err
	}
	fb := float64(bits)
	return Perf{
		Area:          fb * 5 * n.GateArea(),
		DynamicEnergy: fb * 5 * n.GateEnergy(),
		StaticPower:   fb * 5 * n.GateLeakage,
		Latency:       fb * 2 * n.GateDelay, // carry ripple
	}, nil
}

// Subtractor models a bits-wide subtractor: an adder plus an inverter row,
// used to merge the two crossbars of a signed-weight computation unit
// (Section III.C.1 method 1).
func Subtractor(n tech.CMOSNode, bits int) (Perf, error) {
	add, err := Adder(n, bits)
	if err != nil {
		return Perf{}, err
	}
	fb := float64(bits)
	return add.Plus(Perf{
		Area:          fb * n.GateArea(),
		DynamicEnergy: fb * n.GateEnergy(),
		StaticPower:   fb * n.GateLeakage,
	}), nil
}

// Shifter models a barrel shifter with shift range maxShift, used with the
// adder tree to merge the bit-sliced crossbars holding high and low weight
// bits (Section III.B.2).
func Shifter(n tech.CMOSNode, bits, maxShift int) (Perf, error) {
	if err := checkBits("shifter", bits); err != nil {
		return Perf{}, err
	}
	if maxShift < 0 {
		return Perf{}, fmt.Errorf("periph: negative shift range %d", maxShift)
	}
	stages := ceilLog2(maxShift + 1)
	if stages < 1 {
		stages = 1
	}
	fs, fb := float64(stages), float64(bits)
	return Perf{
		Area:          fs * fb * 3 * n.GateArea(),
		DynamicEnergy: fs * fb * 3 * n.GateEnergy(),
		StaticPower:   fs * fb * 3 * n.GateLeakage,
		Latency:       fs * n.GateDelay,
	}, nil
}

// AdderTree models the binary merge tree of Fig. 1(c): inputs operands of
// the given bit width are summed pairwise. The result width grows by one
// bit per level; the latency is the sum of the per-level adder delays.
func AdderTree(n tech.CMOSNode, inputs, bits int) (Perf, error) {
	if inputs < 1 {
		return Perf{}, fmt.Errorf("periph: adder tree needs at least 1 input, got %d", inputs)
	}
	if err := checkBits("adder tree", bits); err != nil {
		return Perf{}, err
	}
	var out Perf
	width := bits
	remaining := inputs
	for remaining > 1 {
		adders := remaining / 2
		a, err := Adder(n, width)
		if err != nil {
			return Perf{}, err
		}
		level := a.Scale(adders)
		out.Area += level.Area
		out.DynamicEnergy += level.DynamicEnergy
		out.StaticPower += level.StaticPower
		out.Latency += a.Latency
		remaining = adders + remaining%2
		if width < 64 {
			width++
		}
	}
	return out, nil
}

// Mux models a ways-to-1 multiplexer of the given data width; the read
// circuit's control module routes crossbar columns to the shared ADCs with
// these (Section III.C.4).
func Mux(n tech.CMOSNode, ways, bits int) (Perf, error) {
	if ways < 1 {
		return Perf{}, fmt.Errorf("periph: mux needs at least 1 way, got %d", ways)
	}
	if err := checkBits("mux", bits); err != nil {
		return Perf{}, err
	}
	stages := ceilLog2(ways)
	if stages < 1 {
		stages = 1
	}
	f := float64((ways - 1) * bits)
	return Perf{
		Area:          f * 2 * n.GateArea(),
		DynamicEnergy: float64(bits*stages) * 2 * n.GateEnergy(),
		StaticPower:   f * 2 * n.GateLeakage,
		Latency:       float64(stages) * n.GateDelay,
	}, nil
}

// Counter models the digital counter that sequences the column groups when
// the computation parallelism degree is below the column count
// (Section III.C.4).
func Counter(n tech.CMOSNode, bits int) (Perf, error) {
	if err := checkBits("counter", bits); err != nil {
		return Perf{}, err
	}
	fb := float64(bits)
	return Perf{
		Area:          fb*n.RegArea + fb*3*n.GateArea(),
		DynamicEnergy: fb*n.RegEnergy + fb*n.GateEnergy(),
		StaticPower:   fb * 4 * n.GateLeakage,
		Latency:       2 * n.GateDelay,
	}, nil
}

func ceilLog2(v int) int {
	if v <= 1 {
		return 0
	}
	return int(math.Ceil(math.Log2(float64(v))))
}
