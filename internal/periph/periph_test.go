package periph

import (
	"math"
	"testing"
	"testing/quick"

	"mnsim/internal/tech"
)

var n45 = tech.MustNode(45)

func TestPerfPlus(t *testing.T) {
	a := Perf{1, 2, 3, 4}
	b := Perf{10, 20, 30, 40}
	got := a.Plus(b)
	want := Perf{11, 22, 33, 44}
	if got != want {
		t.Fatalf("Plus = %+v", got)
	}
}

func TestPerfScaleRepeat(t *testing.T) {
	p := Perf{1, 2, 3, 4}
	s := p.Scale(3)
	if s != (Perf{3, 6, 9, 4}) {
		t.Fatalf("Scale = %+v", s)
	}
	r := p.Repeat(3)
	if r != (Perf{1, 6, 3, 12}) {
		t.Fatalf("Repeat = %+v", r)
	}
}

func TestSumAndParallel(t *testing.T) {
	a := Perf{1, 1, 1, 5}
	b := Perf{2, 2, 2, 3}
	s := Sum(a, b)
	if s.Latency != 8 || s.Area != 3 {
		t.Fatalf("Sum = %+v", s)
	}
	p := Parallel(a, b)
	if p.Latency != 5 || p.Area != 3 || p.DynamicEnergy != 3 {
		t.Fatalf("Parallel = %+v", p)
	}
	if got := Sum(); got != (Perf{}) {
		t.Fatalf("empty Sum = %+v", got)
	}
}

// Property: Sum is associative in all fields.
func TestSumAssociative(t *testing.T) {
	f := func(a1, a2, a3, b1, b2, b3 float64) bool {
		for _, v := range []float64{a1, a2, a3, b1, b2, b3} {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e30 {
				return true
			}
		}
		x := Perf{a1, a2, a3, b1}
		y := Perf{a2, a3, b1, b2}
		z := Perf{a3, b1, b2, b3}
		l := Sum(Sum(x, y), z)
		r := Sum(x, Sum(y, z))
		near := func(p, q float64) bool { return math.Abs(p-q) <= 1e-9*(1+math.Abs(p)) }
		return near(l.Area, r.Area) && near(l.DynamicEnergy, r.DynamicEnergy) &&
			near(l.StaticPower, r.StaticPower) && near(l.Latency, r.Latency)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func allPositive(t *testing.T, name string, p Perf) {
	t.Helper()
	if p.Area <= 0 || p.DynamicEnergy <= 0 || p.StaticPower <= 0 || p.Latency <= 0 {
		t.Errorf("%s has non-positive field: %+v", name, p)
	}
}

func TestDAC(t *testing.T) {
	p, err := DAC(n45, 8)
	if err != nil {
		t.Fatal(err)
	}
	allPositive(t, "DAC", p)
	small, _ := DAC(n45, 4)
	if small.Area >= p.Area {
		t.Error("DAC area should grow with precision")
	}
	if _, err := DAC(n45, 0); err == nil {
		t.Error("0-bit DAC should fail")
	}
	if _, err := DAC(n45, 65); err == nil {
		t.Error("65-bit DAC should fail")
	}
}

func TestADCKinds(t *testing.T) {
	for _, k := range []ADCKind{ADCVariableSA, ADCSAR, ADCFlash} {
		p, err := ADC(n45, k, 8)
		if err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		allPositive(t, k.String(), p)
	}
	if _, err := ADC(n45, ADCKind(9), 8); err == nil {
		t.Error("unknown kind should fail")
	}
	if _, err := ADC(n45, ADCSAR, 0); err == nil {
		t.Error("0-bit ADC should fail")
	}
}

func TestADCTradeOffs(t *testing.T) {
	sar, _ := ADC(n45, ADCSAR, 8)
	flash, _ := ADC(n45, ADCFlash, 8)
	if flash.Latency >= sar.Latency {
		t.Error("flash should be faster than SAR")
	}
	if flash.Area <= sar.Area {
		t.Error("flash should be larger than SAR")
	}
	vsa, _ := ADC(n45, ADCVariableSA, 8)
	if vsa.Latency != 20e-9 {
		t.Errorf("reference SA latency = %v, want 20ns (50 MHz)", vsa.Latency)
	}
}

func TestParseADCKind(t *testing.T) {
	for s, want := range map[string]ADCKind{"VariableSA": ADCVariableSA, "SA": ADCVariableSA, "SAR": ADCSAR, "Flash": ADCFlash} {
		got, err := ParseADCKind(s)
		if err != nil || got != want {
			t.Errorf("ParseADCKind(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseADCKind("Sigma"); err == nil {
		t.Error("unknown spelling should fail")
	}
	if s := ADCKind(9).String(); s != "ADCKind(9)" {
		t.Errorf("String = %q", s)
	}
}

// The computation-oriented decoder (Fig. 4b) adds a NOR per line: slightly
// larger and one gate slower than the memory-oriented one, and its COMPUTE
// operation drives all lines.
func TestDecoderComputeOriented(t *testing.T) {
	mem, err := Decoder(n45, 128, false)
	if err != nil {
		t.Fatal(err)
	}
	comp, err := Decoder(n45, 128, true)
	if err != nil {
		t.Fatal(err)
	}
	if comp.Area <= mem.Area {
		t.Error("compute decoder should be larger")
	}
	if comp.Latency <= mem.Latency {
		t.Error("compute decoder should be slower")
	}
	if comp.DynamicEnergy <= mem.DynamicEnergy {
		t.Error("compute decoder COMPUTE energy should exceed single-line select")
	}
	if _, err := Decoder(n45, 0, true); err == nil {
		t.Error("0-line decoder should fail")
	}
	if _, err := Decoder(n45, 1, false); err != nil {
		t.Errorf("1-line decoder: %v", err)
	}
}

func TestAdderAndSubtractor(t *testing.T) {
	a, err := Adder(n45, 8)
	if err != nil {
		t.Fatal(err)
	}
	allPositive(t, "adder", a)
	a16, _ := Adder(n45, 16)
	if a16.Latency <= a.Latency || a16.Area <= a.Area {
		t.Error("wider adder should be larger and slower")
	}
	s, err := Subtractor(n45, 8)
	if err != nil {
		t.Fatal(err)
	}
	if s.Area <= a.Area {
		t.Error("subtractor should exceed adder area")
	}
	if _, err := Adder(n45, -1); err == nil {
		t.Error("negative width should fail")
	}
	if _, err := Subtractor(n45, 0); err == nil {
		t.Error("0-bit subtractor should fail")
	}
}

func TestAdderTree(t *testing.T) {
	// 1 input: no adders at all.
	one, err := AdderTree(n45, 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	if one != (Perf{}) {
		t.Fatalf("1-input tree = %+v, want zero", one)
	}
	// 8 inputs: 7 adders in 3 levels with widths 8,9,10.
	tree, err := AdderTree(n45, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	a8, _ := Adder(n45, 8)
	a9, _ := Adder(n45, 9)
	a10, _ := Adder(n45, 10)
	wantArea := 4*a8.Area + 2*a9.Area + 1*a10.Area
	if math.Abs(tree.Area-wantArea)/wantArea > 1e-12 {
		t.Errorf("tree area = %v, want %v", tree.Area, wantArea)
	}
	wantLat := a8.Latency + a9.Latency + a10.Latency
	if math.Abs(tree.Latency-wantLat)/wantLat > 1e-12 {
		t.Errorf("tree latency = %v, want %v", tree.Latency, wantLat)
	}
	// Odd input counts pass the straggler up a level: 5 inputs -> 4 adders.
	odd, err := AdderTree(n45, 5, 8)
	if err != nil {
		t.Fatal(err)
	}
	a9b, _ := Adder(n45, 9)
	wantOdd := 2*a8.Area + a9b.Area + a10.Area
	if math.Abs(odd.Area-wantOdd)/wantOdd > 1e-12 {
		t.Errorf("odd tree area = %v, want %v", odd.Area, wantOdd)
	}
	if _, err := AdderTree(n45, 0, 8); err == nil {
		t.Error("0-input tree should fail")
	}
	if _, err := AdderTree(n45, 4, 0); err == nil {
		t.Error("0-bit tree should fail")
	}
}

func TestAdderTreeWidthClamp(t *testing.T) {
	// A giant tree must not request >64-bit adders.
	if _, err := AdderTree(n45, 1<<20, 60); err != nil {
		t.Fatalf("wide tree: %v", err)
	}
}

func TestMuxAndCounter(t *testing.T) {
	m, err := Mux(n45, 16, 8)
	if err != nil {
		t.Fatal(err)
	}
	allPositive(t, "mux", m)
	m2, _ := Mux(n45, 2, 8)
	if m2.Area >= m.Area {
		t.Error("wider mux should be larger")
	}
	if _, err := Mux(n45, 0, 8); err == nil {
		t.Error("0-way mux should fail")
	}
	if _, err := Mux(n45, 2, 0); err == nil {
		t.Error("0-bit mux should fail")
	}
	c, err := Counter(n45, 8)
	if err != nil {
		t.Fatal(err)
	}
	allPositive(t, "counter", c)
	if _, err := Counter(n45, 0); err == nil {
		t.Error("0-bit counter should fail")
	}
}

func TestNeurons(t *testing.T) {
	sig, err := Neuron(n45, NeuronSigmoid, 8)
	if err != nil {
		t.Fatal(err)
	}
	relu, err := Neuron(n45, NeuronReLU, 8)
	if err != nil {
		t.Fatal(err)
	}
	inf, err := Neuron(n45, NeuronIntegrateFire, 8)
	if err != nil {
		t.Fatal(err)
	}
	for name, p := range map[string]Perf{"sigmoid": sig, "relu": relu, "iaf": inf} {
		allPositive(t, name, p)
	}
	// ReLU is by far the cheapest neuron — the reason CNNs use it.
	if relu.Area >= sig.Area || relu.Area >= inf.Area {
		t.Error("ReLU should be the smallest neuron")
	}
	if _, err := Neuron(n45, NeuronKind(9), 8); err == nil {
		t.Error("unknown neuron should fail")
	}
	if _, err := Neuron(n45, NeuronSigmoid, 0); err == nil {
		t.Error("0-bit neuron should fail")
	}
	for k, want := range map[NeuronKind]string{NeuronSigmoid: "Sigmoid", NeuronReLU: "ReLU", NeuronIntegrateFire: "IntegrateFire"} {
		if k.String() != want {
			t.Errorf("String(%d) = %q", int(k), k.String())
		}
	}
	if NeuronKind(9).String() != "NeuronKind(9)" {
		t.Error("unknown neuron String")
	}
}

func TestRegisterAndLineBuffer(t *testing.T) {
	r, err := Register(n45, 8)
	if err != nil {
		t.Fatal(err)
	}
	allPositive(t, "register", r)
	lb, err := LineBuffer(n45, 10, 8)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lb.Area-10*r.Area)/lb.Area > 1e-12 {
		t.Errorf("line buffer area = %v, want %v", lb.Area, 10*r.Area)
	}
	if lb.Latency != r.Latency {
		t.Error("shift is concurrent: latency should equal one register")
	}
	if math.Abs(lb.DynamicEnergy-10*r.DynamicEnergy)/lb.DynamicEnergy > 1e-12 {
		t.Error("all stages shift per push")
	}
	if _, err := Register(n45, 0); err == nil {
		t.Error("0-bit register should fail")
	}
	if _, err := LineBuffer(n45, 0, 8); err == nil {
		t.Error("0-length buffer should fail")
	}
	if _, err := LineBuffer(n45, 4, 0); err == nil {
		t.Error("0-width buffer should fail")
	}
}

func TestMaxPool(t *testing.T) {
	p, err := MaxPool(n45, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	allPositive(t, "maxpool", p)
	p3, _ := MaxPool(n45, 3, 8)
	if p3.Area <= p.Area {
		t.Error("3x3 pooling should be larger than 2x2")
	}
	if _, err := MaxPool(n45, 0, 8); err == nil {
		t.Error("0-size pooling should fail")
	}
	if _, err := MaxPool(n45, 2, 0); err == nil {
		t.Error("0-bit pooling should fail")
	}
}

func TestIOInterface(t *testing.T) {
	p, err := IOInterface(n45, 128, 224*224*8)
	if err != nil {
		t.Fatal(err)
	}
	allPositive(t, "io", p)
	// Fewer ports -> more cycles -> longer latency.
	slow, _ := IOInterface(n45, 16, 224*224*8)
	if slow.Latency <= p.Latency {
		t.Error("narrower interface should be slower")
	}
	if _, err := IOInterface(n45, 0, 64); err == nil {
		t.Error("0-port interface should fail")
	}
	if _, err := IOInterface(n45, 8, 0); err == nil {
		t.Error("0-bit sample should fail")
	}
}

// All modules shrink monotonically with technology scaling.
func TestModulesScaleWithNode(t *testing.T) {
	n90 := tech.MustNode(90)
	build := func(n tech.CMOSNode) []Perf {
		dac, _ := DAC(n, 8)
		adc, _ := ADC(n, ADCSAR, 8)
		dec, _ := Decoder(n, 128, true)
		add, _ := Adder(n, 8)
		neu, _ := Neuron(n, NeuronSigmoid, 8)
		return []Perf{dac, adc, dec, add, neu}
	}
	old, cur := build(n90), build(n45)
	for i := range old {
		if cur[i].Area >= old[i].Area {
			t.Errorf("module %d area did not shrink from 90nm to 45nm", i)
		}
		if cur[i].DynamicEnergy >= old[i].DynamicEnergy {
			t.Errorf("module %d energy did not shrink", i)
		}
	}
}

func TestShifter(t *testing.T) {
	s, err := Shifter(n45, 8, 7)
	if err != nil {
		t.Fatal(err)
	}
	allPositive(t, "shifter", s)
	// Larger shift range needs more mux stages.
	wide, err := Shifter(n45, 8, 63)
	if err != nil {
		t.Fatal(err)
	}
	if wide.Area <= s.Area || wide.Latency <= s.Latency {
		t.Error("wider shift range should cost more")
	}
	// Zero range still instantiates one stage (pass-through wiring).
	zero, err := Shifter(n45, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	allPositive(t, "zero-shift", zero)
	if _, err := Shifter(n45, 0, 4); err == nil {
		t.Error("0-bit shifter accepted")
	}
	if _, err := Shifter(n45, 8, -1); err == nil {
		t.Error("negative range accepted")
	}
}
