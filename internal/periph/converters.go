package periph

import (
	"fmt"

	"mnsim/internal/tech"
)

// DAC models the input peripheral circuit's digital-to-analog converter: a
// binary-weighted resistor ladder with one transfer-gate switch per bit
// (Section III.C.3). One DAC drives one crossbar row.
func DAC(n tech.CMOSNode, bits int) (Perf, error) {
	if err := checkBits("DAC", bits); err != nil {
		return Perf{}, err
	}
	ga := n.GateArea()
	ge := n.GateEnergy()
	units := float64(int(1) << uint(bits))
	return Perf{
		Area:          0.3*units*ga + 6*float64(bits)*ga,
		DynamicEnergy: float64(bits)*ge + 4*ge, // switch network + output driver
		StaticPower:   float64(bits) * n.GateLeakage,
		Latency:       4 * n.GateDelay, // output settling
	}, nil
}

// ADCKind selects one of the read-circuit designs integrated in MNSIM
// (Section V.C: "the performance models of some popular ADC designs have
// been integrated into MNSIM").
type ADCKind int

const (
	// ADCVariableSA is the reference design: the reconfigurable multi-level
	// sense amplifier of Li et al. (IMW'11) operated at 50 MHz.
	ADCVariableSA ADCKind = iota
	// ADCSAR is a successive-approximation converter: one comparator cycle
	// per output bit.
	ADCSAR
	// ADCFlash is a flash converter: 2^bits − 1 parallel comparators, fast
	// but area- and power-hungry.
	ADCFlash
)

// String implements fmt.Stringer.
func (k ADCKind) String() string {
	switch k {
	case ADCVariableSA:
		return "VariableSA"
	case ADCSAR:
		return "SAR"
	case ADCFlash:
		return "Flash"
	default:
		return fmt.Sprintf("ADCKind(%d)", int(k))
	}
}

// ParseADCKind converts a configuration-file spelling into an ADCKind.
func ParseADCKind(s string) (ADCKind, error) {
	switch s {
	case "VariableSA", "SA":
		return ADCVariableSA, nil
	case "SAR":
		return ADCSAR, nil
	case "Flash":
		return ADCFlash, nil
	default:
		return 0, fmt.Errorf("periph: unknown ADC kind %q (want VariableSA, SAR, or Flash)", s)
	}
}

// comparator is the analog building block shared by the ADC designs.
func comparator(n tech.CMOSNode) Perf {
	return Perf{
		Area:          20 * n.GateArea(),
		DynamicEnergy: 12 * n.GateEnergy(),
		StaticPower:   8 * n.GateLeakage,
		Latency:       6 * n.GateDelay,
	}
}

// ADC models one read-circuit converter of the selected kind and precision.
// The reference VariableSA runs at a fixed 50 MHz conversion rate, matching
// the paper's choice ("MNSIM uses a variable-level SA with 50MHz frequency
// as the reference ADC design"): its latency is one 20 ns conversion
// regardless of node, with area/energy scaling by level count.
func ADC(n tech.CMOSNode, kind ADCKind, bits int) (Perf, error) {
	if err := checkBits("ADC", bits); err != nil {
		return Perf{}, err
	}
	cmp := comparator(n)
	levels := float64(int(1) << uint(bits))
	switch kind {
	case ADCVariableSA:
		return Perf{
			Area:          cmp.Area + 2.5*levels*n.GateArea(), // level-reference ladder
			DynamicEnergy: float64(bits)*cmp.DynamicEnergy + levels*0.25*n.GateEnergy(),
			StaticPower:   cmp.StaticPower + levels*0.1*n.GateLeakage,
			Latency:       20e-9, // one conversion at 50 MHz
		}, nil
	case ADCSAR:
		capArray := 15 * levels * n.GateArea() / 16 // scaled unit-cap array
		logic := 30 * float64(bits) * n.GateArea()
		return Perf{
			Area:          cmp.Area + capArray + logic,
			DynamicEnergy: float64(bits) * (cmp.DynamicEnergy + 8*n.GateEnergy()),
			StaticPower:   cmp.StaticPower + float64(bits)*4*n.GateLeakage,
			Latency:       float64(bits) * (cmp.Latency + 4*n.GateDelay),
		}, nil
	case ADCFlash:
		comps := levels - 1
		return Perf{
			Area:          comps*cmp.Area + comps*2*n.GateArea(), // comparators + thermometer decode
			DynamicEnergy: comps * cmp.DynamicEnergy,
			StaticPower:   comps * cmp.StaticPower,
			Latency:       cmp.Latency + 4*n.GateDelay,
		}, nil
	default:
		return Perf{}, fmt.Errorf("periph: unknown ADC kind %d", kind)
	}
}
