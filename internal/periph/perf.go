// Package periph provides the transistor-level reference designs of every
// peripheral module in MNSIM's hierarchical accelerator (Section III and V
// of the paper): DACs, ADCs/sense amplifiers, the memory- and
// computation-oriented decoders of Fig. 4, adders and adder trees with
// shifters, subtractors, multiplexers, the non-linear neuron circuits
// (sigmoid, ReLU, integrate-and-fire), registers, the line buffers of
// Fig. 1(f), pooling modules, and the accelerator I/O interface.
//
// Every module is summarised as a Perf record (area, dynamic energy per
// operation, static power, latency) derived from the CMOS node parameters in
// package tech — the same role the CACTI/NVSim/PTM tables play in the
// original MNSIM. A customized module (Section III.E.3) is just a
// caller-provided Perf.
package periph

import "fmt"

// Perf is the behaviour-level performance summary of one circuit module.
type Perf struct {
	// Area is the layout area in square micrometres.
	Area float64
	// DynamicEnergy is the energy of one operation in joules.
	DynamicEnergy float64
	// StaticPower is the leakage power in watts.
	StaticPower float64
	// Latency is the delay of one operation in seconds.
	Latency float64
}

// Plus returns the series composition of two modules: areas, energies and
// static powers add, and latency accumulates (the second module operates
// after the first).
func (p Perf) Plus(q Perf) Perf {
	return Perf{
		Area:          p.Area + q.Area,
		DynamicEnergy: p.DynamicEnergy + q.DynamicEnergy,
		StaticPower:   p.StaticPower + q.StaticPower,
		Latency:       p.Latency + q.Latency,
	}
}

// Scale returns the module replicated n times operating in parallel: area,
// energy and static power multiply, latency is unchanged.
func (p Perf) Scale(n int) Perf {
	f := float64(n)
	return Perf{
		Area:          p.Area * f,
		DynamicEnergy: p.DynamicEnergy * f,
		StaticPower:   p.StaticPower * f,
		Latency:       p.Latency,
	}
}

// Repeat returns the module operated n times sequentially: energy and
// latency multiply, area and static power are unchanged.
func (p Perf) Repeat(n int) Perf {
	f := float64(n)
	return Perf{
		Area:          p.Area,
		DynamicEnergy: p.DynamicEnergy * f,
		StaticPower:   p.StaticPower,
		Latency:       p.Latency * f,
	}
}

// Sum composes modules in series (see Plus).
func Sum(ps ...Perf) Perf {
	var out Perf
	for _, p := range ps {
		out = out.Plus(p)
	}
	return out
}

// Parallel composes modules operating concurrently: area, energy and static
// power add; latency is the maximum.
func Parallel(ps ...Perf) Perf {
	var out Perf
	for _, p := range ps {
		out.Area += p.Area
		out.DynamicEnergy += p.DynamicEnergy
		out.StaticPower += p.StaticPower
		if p.Latency > out.Latency {
			out.Latency = p.Latency
		}
	}
	return out
}

// checkBits validates a bit-width parameter.
func checkBits(what string, bits int) error {
	if bits < 1 || bits > 64 {
		return fmt.Errorf("periph: %s bit width %d outside [1,64]", what, bits)
	}
	return nil
}
