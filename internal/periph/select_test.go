package periph

import "testing"

func TestSelectADCRelaxedBudget(t *testing.T) {
	// With a generous budget the small SAR (or reference SA) wins on area.
	kind, p, err := SelectADC(n45, 8, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if kind == ADCFlash {
		t.Fatalf("relaxed budget picked the flash converter")
	}
	if p.Area <= 0 {
		t.Fatalf("perf: %+v", p)
	}
}

func TestSelectADCTightBudgetNeedsFlash(t *testing.T) {
	sar, _ := ADC(n45, ADCSAR, 8)
	vsa, _ := ADC(n45, ADCVariableSA, 8)
	flash, _ := ADC(n45, ADCFlash, 8)
	budget := flash.Latency * 1.1
	if budget >= sar.Latency || budget >= vsa.Latency {
		t.Skip("model latencies no longer separate the designs")
	}
	kind, _, err := SelectADC(n45, 8, budget)
	if err != nil {
		t.Fatal(err)
	}
	if kind != ADCFlash {
		t.Fatalf("tight budget picked %v, want Flash", kind)
	}
}

func TestSelectADCImpossible(t *testing.T) {
	if _, _, err := SelectADC(n45, 8, 1e-15); err == nil {
		t.Fatal("impossible budget accepted")
	}
	if _, _, err := SelectADC(n45, 0, 1e-6); err == nil {
		t.Fatal("0-bit selection accepted")
	}
	if _, _, err := SelectADC(n45, 8, -1); err == nil {
		t.Fatal("negative budget accepted")
	}
}
