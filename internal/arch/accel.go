package arch

import (
	"context"
	"fmt"

	"mnsim/internal/periph"
	"mnsim/internal/telemetry"
)

// Report-building telemetry: evaluation count and wall time per report
// (microseconds). A DSE sweep performs one evaluation per candidate, so
// this histogram is the behaviour-model cost distribution of the sweep.
var (
	telEvaluations = telemetry.GetCounter("mnsim_arch_evaluations_total")
	telEvalUS      = telemetry.GetHistogram("mnsim_arch_evaluate_us", telemetry.ExponentialBuckets(1, 4, 10))
)

// Accelerator is the top hierarchy level (Section III.A, Fig. 1b): the
// input interface, one computation bank per neuromorphic layer, and the
// output interface. Multi-layer accelerators are pipelined, so throughput
// is set by the slowest bank while a single sample's latency is the sum of
// the stages (Section IV.A).
type Accelerator struct {
	Design *Design
	Banks  []*Bank
	// InIface and OutIface are the accelerator interface modules buffering
	// a full sample over the limited bus lines.
	InIface, OutIface periph.Perf
}

// NewAccelerator builds the module tree for the given layer stack, mirroring
// the recursive generation of the software flow (Fig. 3). interfaceLines is
// the paper's Interface_Number pair.
func NewAccelerator(d *Design, layers []LayerDims, interfaceLines [2]int) (*Accelerator, error) {
	if len(layers) == 0 {
		return nil, fmt.Errorf("arch: accelerator needs at least one layer")
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	a := &Accelerator{Design: d}
	for i, l := range layers {
		b, err := NewBank(d, l)
		if err != nil {
			return nil, fmt.Errorf("arch: bank %d: %w", i, err)
		}
		a.Banks = append(a.Banks, b)
	}
	inBits := layers[0].Rows * d.DataBits
	outBits := layers[len(layers)-1].Cols * d.DataBits
	var err error
	a.InIface, err = periph.IOInterface(d.CMOS, interfaceLines[0], inBits)
	if err != nil {
		return nil, err
	}
	a.OutIface, err = periph.IOInterface(d.CMOS, interfaceLines[1], outBits)
	if err != nil {
		return nil, err
	}
	return a, nil
}

// Report is the accelerator-level performance summary printed by the
// simulator — the metric set of the paper's case-study tables.
type Report struct {
	// AreaMM2 is the total layout area in mm².
	AreaMM2 float64
	// EnergyPerSample is the dynamic energy of one input sample in joules.
	EnergyPerSample float64
	// SampleLatency is one sample's end-to-end latency in seconds.
	SampleLatency float64
	// PipelineCycle is the pipelined per-sample interval (the slowest
	// bank's pass latency) in seconds.
	PipelineCycle float64
	// Power is the average power at full pipeline utilisation in watts.
	Power float64
	// ErrorWorst and ErrorAvg are the final-layer digital error rates from
	// the behaviour-level accuracy model.
	ErrorWorst, ErrorAvg float64
}

// Evaluate aggregates the accelerator's performance bottom-up and runs the
// layer-by-layer accuracy propagation (Eq. 15). It is EvaluateContext with
// a background context.
func (a *Accelerator) Evaluate() (Report, error) {
	return a.EvaluateContext(context.Background())
}

// EvaluateContext is Evaluate with a caller-supplied context: the
// evaluation span nests under any span already open in ctx (so a DSE sweep
// attributes the time to the candidate that spent it), and a cancelled
// context aborts the evaluation between banks with a wrapped ctx.Err().
func (a *Accelerator) EvaluateContext(ctx context.Context) (Report, error) {
	// Keep the derived context: anything evaluated beneath (and any events
	// emitted with it) chains under this span in the causal trace.
	ctx, sp := telemetry.StartSpan(ctx, "arch.evaluate")
	defer func() {
		telEvaluations.Inc()
		telEvalUS.Observe(float64(sp.End().Microseconds()))
	}()
	var r Report
	areaUM2 := a.InIface.Area + a.OutIface.Area
	staticPower := a.InIface.StaticPower + a.OutIface.StaticPower
	r.SampleLatency = a.InIface.Latency + a.OutIface.Latency
	deltaAvg, deltaWorst := 0.0, 0.0
	for _, b := range a.Banks {
		if err := ctx.Err(); err != nil {
			return Report{}, fmt.Errorf("arch: evaluation aborted: %w", err)
		}
		areaUM2 += b.PassPerf.Area
		staticPower += b.PassPerf.StaticPower
		r.EnergyPerSample += b.SampleEnergy
		r.SampleLatency += b.SampleLatency
		if b.PassPerf.Latency > r.PipelineCycle {
			r.PipelineCycle = b.PassPerf.Latency
		}
		repAvg, err := b.Accuracy(deltaAvg)
		if err != nil {
			return Report{}, err
		}
		repWorst, err := b.Accuracy(deltaWorst)
		if err != nil {
			return Report{}, err
		}
		deltaAvg = repAvg.AvgRate
		deltaWorst = repWorst.WorstRate
	}
	r.EnergyPerSample += a.InIface.DynamicEnergy + a.OutIface.DynamicEnergy
	r.AreaMM2 = areaUM2 * 1e-6
	r.Power = a.pipelineDynPower(r.PipelineCycle) + staticPower
	r.ErrorWorst = deltaWorst
	r.ErrorAvg = deltaAvg
	return r, nil
}

// pipelineDynPower sums the banks' dynamic power at full pipeline
// utilisation, where every bank runs one pass per pipeline cycle.
func (a *Accelerator) pipelineDynPower(cycle float64) float64 {
	p := 0.0
	for _, b := range a.Banks {
		p += b.PassPerf.DynamicEnergy / cycle
	}
	return p
}

// TotalCrossbars returns the physical crossbar count of the accelerator.
func (a *Accelerator) TotalCrossbars() int {
	total := 0
	for _, b := range a.Banks {
		total += b.Units * b.Design.CrossbarsPerUnit()
	}
	return total
}

// TotalUnits returns the computation-unit count.
func (a *Accelerator) TotalUnits() int {
	total := 0
	for _, b := range a.Banks {
		total += b.Units
	}
	return total
}
