package arch

import (
	"fmt"

	"mnsim/internal/crossbar"
	"mnsim/internal/periph"
)

// Unit is one Computation Unit (Section III.C, Fig. 1d): one or two
// memristor crossbars with their address decoders, input peripheral
// circuit (DACs and transfer gates), and read circuits (ADCs, column MUXes,
// and the optional subtractors for signed weights).
type Unit struct {
	Design *Design
	// Rows and Cols are the logical weight-block shape handled by this unit
	// (≤ CrossbarSize on each axis).
	Rows, Cols int
	// PhysCols is the number of physical crossbar columns in use:
	// Cols × CellsPerWeight.
	PhysCols int
	// ReadCircuits is the resolved parallelism degree p.
	ReadCircuits int
	// Cycles is ⌈PhysCols / p⌉ — the sequential read passes per compute.
	Cycles int
	// Xbar is the behavioural crossbar model of one physical crossbar.
	Xbar crossbar.Params

	// Compute is the per-COMPUTE-operation performance of the whole unit;
	// Area and StaticPower cover the unit, DynamicEnergy and Latency cover
	// one full matrix-vector multiplication over all columns.
	Compute periph.Perf
	// FrontLatency (decode + DAC + crossbar settle), ReadPassLatency (one
	// MUX+ADC pass), and MergeLatency (subtract / shift-add) break the
	// compute latency into the stages the inner-layer pipeline registers:
	// Compute.Latency = FrontLatency + Cycles·ReadPassLatency + MergeLatency.
	FrontLatency, ReadPassLatency, MergeLatency float64
	// ReadOp and WriteOp are the per-cell memory-operation performances
	// used by the instruction model.
	ReadOp, WriteOp periph.Perf
}

// NewUnit builds a computation unit for a weight block of the given logical
// shape.
func NewUnit(d *Design, rows, cols int) (*Unit, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	if rows < 1 || rows > d.CrossbarSize || cols < 1 {
		return nil, fmt.Errorf("arch: unit block %dx%d incompatible with crossbar size %d", rows, cols, d.CrossbarSize)
	}
	physCols := cols * d.CellsPerWeight()
	if physCols > d.CrossbarSize {
		return nil, fmt.Errorf("arch: block needs %d physical columns, crossbar has %d", physCols, d.CrossbarSize)
	}
	u := &Unit{
		Design:   d,
		Rows:     rows,
		Cols:     cols,
		PhysCols: physCols,
		Xbar:     d.Crossbar(d.CrossbarSize, d.CrossbarSize),
	}
	u.ReadCircuits = d.EffectiveParallelism(physCols)
	u.Cycles = (physCols + u.ReadCircuits - 1) / u.ReadCircuits

	n := d.CMOS
	nXbar := d.CrossbarsPerUnit()

	// Input peripheral circuit: one DAC per active row (Section III.C.3),
	// shared by both crossbars of a signed pair.
	dac, err := periph.DAC(n, d.DataBits)
	if err != nil {
		return nil, err
	}
	dacs := dac.Scale(rows)

	// Decoders: each crossbar needs a row and a column decoder for
	// READ/WRITE; the row decoder is the computation-oriented design of
	// Fig. 4(b) so COMPUTE can select all rows at once.
	rowDec, err := periph.Decoder(n, d.CrossbarSize, true)
	if err != nil {
		return nil, err
	}
	colDec, err := periph.Decoder(n, d.CrossbarSize, false)
	if err != nil {
		return nil, err
	}
	decoders := periph.Parallel(rowDec.Scale(nXbar), colDec.Scale(nXbar))

	// Read circuits: p ADCs per crossbar behind column MUXes sequenced by a
	// counter (Section III.C.4).
	adc, err := periph.ADC(n, d.ADC, d.ADCBits())
	if err != nil {
		return nil, err
	}
	mux, err := periph.Mux(n, u.Cycles, 1)
	if err != nil {
		return nil, err
	}
	ctr, err := periph.Counter(n, bitsFor(u.Cycles))
	if err != nil {
		return nil, err
	}
	readPath := periph.Sum(mux, adc)
	readCircuits := readPath.Scale(u.ReadCircuits * nXbar)

	// Signed-weight merging.
	var merge periph.Perf
	if d.WeightPolarity == 2 {
		sub, err := periph.Subtractor(n, d.DataBits)
		if err != nil {
			return nil, err
		}
		merge = sub.Scale(u.ReadCircuits)
	}
	// Bit-slice merging: shift-and-add of BitSlices() slices per weight.
	if s := d.BitSlices(); s > 1 {
		sh, err := periph.Shifter(n, d.DataBits+s, d.Dev.LevelBits*(s-1))
		if err != nil {
			return nil, err
		}
		tree, err := periph.AdderTree(n, s, d.DataBits)
		if err != nil {
			return nil, err
		}
		merge = merge.Plus(periph.Sum(sh, tree).Scale(u.ReadCircuits))
	}

	// Crossbar arrays.
	xbarArea := u.Xbar.Area() * d.AreaCoefficient * float64(nXbar)
	xbarSettle := u.Xbar.Latency()

	// Assemble one COMPUTE: decode, drive, settle, then Cycles sequential
	// read passes, then merge. The crossbar conducts (and burns analog
	// power) for the whole settle-plus-read window; every read circuit
	// converts once per pass.
	u.Compute = periph.Perf{
		Area: xbarArea + dacs.Area + decoders.Area + readCircuits.Area +
			merge.Area + ctr.Area,
		StaticPower: dacs.StaticPower + decoders.StaticPower +
			readCircuits.StaticPower + merge.StaticPower + ctr.StaticPower,
	}
	u.FrontLatency = rowDec.Latency + dacs.Latency + xbarSettle
	u.ReadPassLatency = readPath.Latency
	u.MergeLatency = merge.Latency
	u.Compute.Latency = u.FrontLatency +
		float64(u.Cycles)*u.ReadPassLatency + u.MergeLatency
	u.Compute.DynamicEnergy = rowDec.DynamicEnergy + dacs.DynamicEnergy*float64(rows) +
		u.Xbar.ComputePower()*float64(nXbar)*(xbarSettle+float64(u.Cycles)*readPath.Latency) +
		readPath.DynamicEnergy*float64(u.ReadCircuits*nXbar*u.Cycles) +
		merge.DynamicEnergy + ctr.DynamicEnergy*float64(u.Cycles)

	// Memory operations exercise one cell through the decoders.
	u.ReadOp = periph.Perf{
		Area:          u.Compute.Area,
		StaticPower:   u.Compute.StaticPower,
		Latency:       rowDec.Latency + colDec.Latency + xbarSettle + adc.Latency,
		DynamicEnergy: rowDec.DynamicEnergy + colDec.DynamicEnergy + u.Xbar.ReadPower()/float64(u.Xbar.Cols)*xbarSettle + adc.DynamicEnergy,
	}
	u.WriteOp = periph.Perf{
		Area:          u.Compute.Area,
		StaticPower:   u.Compute.StaticPower,
		Latency:       rowDec.Latency + colDec.Latency + d.Dev.WriteLatency,
		DynamicEnergy: rowDec.DynamicEnergy + colDec.DynamicEnergy + d.Dev.WriteEnergy(),
	}
	return u, nil
}

// ComputePower returns the unit's average power while computing
// continuously: per-op energy over per-op latency plus leakage.
func (u *Unit) ComputePower() float64 {
	return u.Compute.DynamicEnergy/u.Compute.Latency + u.Compute.StaticPower
}

func bitsFor(v int) int {
	b := 1
	for 1<<uint(b) < v {
		b++
	}
	return b
}
