package arch

import "fmt"

// Opcode is one of the three basic instructions of an application-specific
// memristor accelerator (Section III.D). Customized instruction sets extend
// the controller by registering extra opcodes with their performance.
type Opcode int

const (
	// OpWrite programs weight cells (one instruction covers Count cells).
	OpWrite Opcode = iota
	// OpRead reads cells back for verification (Count cells).
	OpRead
	// OpCompute runs one full matrix-vector multiplication pass on every
	// unit of the bank selected by Bank.
	OpCompute
)

// String implements fmt.Stringer.
func (o Opcode) String() string {
	switch o {
	case OpWrite:
		return "WRITE"
	case OpRead:
		return "READ"
	case OpCompute:
		return "COMPUTE"
	default:
		return fmt.Sprintf("Opcode(%d)", int(o))
	}
}

// Instruction is one controller operation.
type Instruction struct {
	Op Opcode
	// Bank selects the target computation bank.
	Bank int
	// Count is the cell count for READ/WRITE (ignored for COMPUTE).
	Count int
}

// ExecStats summarises a program run.
type ExecStats struct {
	// Time is the sequential execution time in seconds.
	Time float64
	// Energy is the dynamic energy in joules.
	Energy float64
	// Instructions counts executed instructions.
	Instructions int
}

// Controller executes basic-instruction programs against an accelerator's
// performance model. It is the reference control model; customized designs
// provide their own instruction sets without changing the simulation flow.
type Controller struct {
	Accel *Accelerator
}

// Run executes a program sequentially and accumulates time and energy.
func (c *Controller) Run(program []Instruction) (ExecStats, error) {
	var st ExecStats
	for i, ins := range program {
		if ins.Bank < 0 || ins.Bank >= len(c.Accel.Banks) {
			return st, fmt.Errorf("arch: instruction %d targets bank %d of %d", i, ins.Bank, len(c.Accel.Banks))
		}
		b := c.Accel.Banks[ins.Bank]
		switch ins.Op {
		case OpCompute:
			st.Time += b.PassPerf.Latency
			st.Energy += b.PassPerf.DynamicEnergy
		case OpRead:
			if ins.Count < 1 {
				return st, fmt.Errorf("arch: instruction %d READ count %d invalid", i, ins.Count)
			}
			st.Time += b.Unit.ReadOp.Latency * float64(ins.Count)
			st.Energy += b.Unit.ReadOp.DynamicEnergy * float64(ins.Count)
		case OpWrite:
			if ins.Count < 1 {
				return st, fmt.Errorf("arch: instruction %d WRITE count %d invalid", i, ins.Count)
			}
			st.Time += b.Unit.WriteOp.Latency * float64(ins.Count)
			st.Energy += b.Unit.WriteOp.DynamicEnergy * float64(ins.Count)
		default:
			return st, fmt.Errorf("arch: instruction %d has unknown opcode %d", i, int(ins.Op))
		}
		st.Instructions++
	}
	return st, nil
}

// ProgramNetwork returns the WRITE program that loads every weight of the
// accelerator (executed once at deployment — the paper's observation that
// compute never rewrites cells afterwards).
func ProgramNetwork(a *Accelerator) []Instruction {
	var prog []Instruction
	for i, b := range a.Banks {
		cells := b.Layer.Rows * b.Layer.Cols * b.Design.CellsPerWeight() * b.Design.CrossbarsPerUnit()
		prog = append(prog, Instruction{Op: OpWrite, Bank: i, Count: cells})
	}
	return prog
}

// InferSample returns the COMPUTE program of one input sample: every bank
// runs its per-sample pass count.
func InferSample(a *Accelerator) []Instruction {
	var prog []Instruction
	for i, b := range a.Banks {
		for p := 0; p < b.Layer.Passes; p++ {
			prog = append(prog, Instruction{Op: OpCompute, Bank: i})
		}
	}
	return prog
}
