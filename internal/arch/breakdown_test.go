package arch

import (
	"math"
	"testing"
)

func TestBreakdownReconciles(t *testing.T) {
	b, err := NewBank(refDesign(128, 0), LayerDims{Rows: 2048, Cols: 1024, Passes: 1})
	if err != nil {
		t.Fatal(err)
	}
	bd, err := b.Breakdown()
	if err != nil {
		t.Fatal(err)
	}
	if len(bd) != len(Classes()) {
		t.Fatalf("breakdown has %d classes", len(bd))
	}
	totalArea := 0.0
	for _, c := range Classes() {
		p, ok := bd[c]
		if !ok {
			t.Fatalf("class %s missing", c)
		}
		if p.Area < 0 || p.DynamicEnergy < 0 {
			t.Fatalf("class %s negative: %+v", c, p)
		}
		totalArea += p.Area
	}
	// The breakdown must reconcile with the aggregated bank area within a
	// couple percent (counters and pipeline registers are not classed).
	if rel := math.Abs(totalArea-b.PassPerf.Area) / b.PassPerf.Area; rel > 0.02 {
		t.Fatalf("breakdown area %v vs bank %v (%.1f%% apart)", totalArea, b.PassPerf.Area, rel*100)
	}
}

// Section V.C: the read circuits dominate — "ADC circuits take about half
// of the area and energy consumptions in memristor-based DNNs and CNNs".
func TestADCDominatesAtFullParallelism(t *testing.T) {
	b, err := NewBank(refDesign(128, 0), LayerDims{Rows: 2048, Cols: 1024, Passes: 1})
	if err != nil {
		t.Fatal(err)
	}
	bd, err := b.Breakdown()
	if err != nil {
		t.Fatal(err)
	}
	share := ShareOf(bd, ClassADC)
	if share < 0.3 {
		t.Fatalf("ADC area share %.2f, want the dominant fraction", share)
	}
	if SortedByArea(bd)[0] != ClassADC {
		t.Fatalf("largest class = %s, want adc", SortedByArea(bd)[0])
	}
	// Reducing the parallelism degree slashes the ADC share — the Fig. 7
	// area trade-off mechanism.
	serial, err := NewBank(refDesign(128, 1), LayerDims{Rows: 2048, Cols: 1024, Passes: 1})
	if err != nil {
		t.Fatal(err)
	}
	bdSerial, err := serial.Breakdown()
	if err != nil {
		t.Fatal(err)
	}
	if ShareOf(bdSerial, ClassADC) >= share {
		t.Fatalf("serial ADC share %.2f not below parallel %.2f", ShareOf(bdSerial, ClassADC), share)
	}
}

func TestShareOfEmpty(t *testing.T) {
	if ShareOf(nil, ClassADC) != 0 {
		t.Fatal("empty breakdown share should be 0")
	}
}

func TestBreakdownCNNHasBuffers(t *testing.T) {
	d := refDesign(128, 0)
	conv := LayerDims{Rows: 1152, Cols: 256, Passes: 196, PoolK: 2, OutBufLen: 30, OutChannels: 256}
	b, err := NewBank(d, conv)
	if err != nil {
		t.Fatal(err)
	}
	bd, err := b.Breakdown()
	if err != nil {
		t.Fatal(err)
	}
	fc, err := NewBank(d, LayerDims{Rows: 1152, Cols: 256, Passes: 1})
	if err != nil {
		t.Fatal(err)
	}
	bdFC, err := fc.Breakdown()
	if err != nil {
		t.Fatal(err)
	}
	if bd[ClassBuffer].Area <= bdFC[ClassBuffer].Area {
		t.Fatal("CNN pooling chain should grow the buffer class")
	}
}
