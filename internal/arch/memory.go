package arch

import (
	"fmt"

	"mnsim/internal/periph"
)

// MemoryReport summarises the same crossbar array operated as a plain
// non-volatile memory — the Section II.C contrast between memristor NVM
// (one cell selected per access, memory-oriented decoders) and the
// computing structure (all cells selected, computation-oriented decoders
// plus peripheral compute modules). It is also the NVSim-comparable view of
// the array (Section III.E.4).
type MemoryReport struct {
	// CapacityBits is the stored capacity (cells × bits per cell).
	CapacityBits int
	// AreaMM2 is the macro area: arrays plus the memory-oriented decoders
	// and one sense amplifier per crossbar.
	AreaMM2 float64
	// ReadLatency / WriteLatency are per-word access times.
	ReadLatency, WriteLatency float64
	// ReadEnergy / WriteEnergy are per-bit access energies.
	ReadEnergy, WriteEnergy float64
	// ReadBandwidth is bits per second at full streaming.
	ReadBandwidth float64
}

// MemoryMode evaluates a memory macro built from `crossbars` arrays of the
// design's size and device. Each array has memory-oriented row and column
// decoders (no NOR stage) and one sense amplifier; accesses select a single
// cell per array, wordBits arrays operating in parallel per word.
func MemoryMode(d *Design, crossbars, wordBits int) (MemoryReport, error) {
	if err := d.Validate(); err != nil {
		return MemoryReport{}, err
	}
	if crossbars < 1 {
		return MemoryReport{}, fmt.Errorf("arch: memory mode needs at least one crossbar")
	}
	if wordBits < 1 || wordBits > crossbars*d.Dev.LevelBits {
		return MemoryReport{}, fmt.Errorf("arch: word width %d incompatible with %d arrays", wordBits, crossbars)
	}
	n := d.CMOS
	xp := d.Crossbar(d.CrossbarSize, d.CrossbarSize)
	rowDec, err := periph.Decoder(n, d.CrossbarSize, false)
	if err != nil {
		return MemoryReport{}, err
	}
	colDec, err := periph.Decoder(n, d.CrossbarSize, false)
	if err != nil {
		return MemoryReport{}, err
	}
	sa, err := periph.ADC(n, periph.ADCVariableSA, d.Dev.LevelBits)
	if err != nil {
		return MemoryReport{}, err
	}
	perArray := xp.Area()*d.AreaCoefficient + rowDec.Area + colDec.Area + sa.Area
	rep := MemoryReport{
		CapacityBits: crossbars * d.CrossbarSize * d.CrossbarSize * d.Dev.LevelBits,
		AreaMM2:      perArray * float64(crossbars) * 1e-6,
	}
	// One access: decode row + column, settle one cell against the sense
	// load, convert. A word reads ceil(wordBits / LevelBits) arrays in
	// parallel, so word latency equals cell latency.
	cellSettle := xp.Latency()
	rep.ReadLatency = rowDec.Latency + colDec.Latency + cellSettle + sa.Latency
	rep.WriteLatency = rowDec.Latency + colDec.Latency + d.Dev.WriteLatency
	cellsPerWord := (wordBits + d.Dev.LevelBits - 1) / d.Dev.LevelBits
	readEnergyPerCell := rowDec.DynamicEnergy + colDec.DynamicEnergy +
		xp.ReadPower()/float64(d.CrossbarSize)*cellSettle + sa.DynamicEnergy
	rep.ReadEnergy = readEnergyPerCell * float64(cellsPerWord) / float64(wordBits)
	writeEnergyPerCell := rowDec.DynamicEnergy + colDec.DynamicEnergy + d.Dev.WriteEnergy()
	rep.WriteEnergy = writeEnergyPerCell * float64(cellsPerWord) / float64(wordBits)
	rep.ReadBandwidth = float64(wordBits) / rep.ReadLatency
	return rep, nil
}
