package arch

import (
	"math"
	"testing"
)

// The inner-layer pipeline (future-work feature) must shrink the bank's
// cycle to its slowest stage, add register area, and stretch a single
// pass's fill latency across Stages cycles.
func TestInnerPipelineBank(t *testing.T) {
	layer := LayerDims{Rows: 2048, Cols: 1024, Passes: 196, PoolK: 2}
	pb, err := NewBank(refDesign(128, 0), layer)
	if err != nil {
		t.Fatal(err)
	}
	piped := refDesign(128, 0)
	piped.InnerPipeline = true
	ib, err := NewBank(piped, layer)
	if err != nil {
		t.Fatal(err)
	}
	if pb.Stages != 1 {
		t.Errorf("plain bank stages = %d", pb.Stages)
	}
	if ib.Stages < 6 {
		t.Errorf("pipelined bank stages = %d, want >= 6", ib.Stages)
	}
	if ib.PassPerf.Latency >= pb.PassPerf.Latency {
		t.Errorf("pipeline interval %v not below chain latency %v", ib.PassPerf.Latency, pb.PassPerf.Latency)
	}
	if ib.PassPerf.Area <= pb.PassPerf.Area {
		t.Error("pipeline registers should add area")
	}
	// Throughput: many passes stream through faster.
	if ib.SampleLatency >= pb.SampleLatency {
		t.Errorf("pipelined sample latency %v not below %v", ib.SampleLatency, pb.SampleLatency)
	}
	// The sample drains after passes·readCycles plus the fill.
	cycle := ib.PassPerf.Latency / float64(ib.Unit.Cycles)
	wantCycles := float64(layer.Passes*ib.Unit.Cycles + ib.Stages - 1)
	if math.Abs(ib.SampleLatency/cycle-wantCycles) > 1e-6 {
		t.Errorf("sample cycles = %v, want %v", ib.SampleLatency/cycle, wantCycles)
	}
}

// The pipeline is throughput-neutral for single-pass FC layers (fill
// overhead only), so energy per pass must not change materially.
func TestInnerPipelineEnergyOverheadSmall(t *testing.T) {
	layer := LayerDims{Rows: 512, Cols: 512, Passes: 1}
	plain, err := NewBank(refDesign(128, 0), layer)
	if err != nil {
		t.Fatal(err)
	}
	piped := refDesign(128, 0)
	piped.InnerPipeline = true
	pb, err := NewBank(piped, layer)
	if err != nil {
		t.Fatal(err)
	}
	overhead := pb.PassPerf.DynamicEnergy/plain.PassPerf.DynamicEnergy - 1
	if overhead < 0 || overhead > 0.10 {
		t.Fatalf("pipeline energy overhead %v outside [0, 10%%]", overhead)
	}
}

func TestTrainingPlanValidate(t *testing.T) {
	good := TrainingPlan{Epochs: 1, SamplesPerEpoch: 10, UpdateFraction: 0.1}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []TrainingPlan{
		{Epochs: 0, SamplesPerEpoch: 1, UpdateFraction: 0.1},
		{Epochs: 1, SamplesPerEpoch: 0, UpdateFraction: 0.1},
		{Epochs: 1, SamplesPerEpoch: 1, UpdateFraction: -0.1},
		{Epochs: 1, SamplesPerEpoch: 1, UpdateFraction: 1.1},
	}
	for i, p := range bad {
		p := p
		if err := p.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestTrainingCost(t *testing.T) {
	d := refDesign(128, 0)
	a, err := NewAccelerator(d, []LayerDims{{Rows: 512, Cols: 512, Passes: 1}}, [2]int{128, 128})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := TrainingCost(a, TrainingPlan{Epochs: 10, SamplesPerEpoch: 1000, UpdateFraction: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Time <= 0 || rep.Energy <= 0 {
		t.Fatalf("report: %+v", rep)
	}
	// The high-writing-cost problem: updates dominate the energy budget.
	if rep.WriteEnergy <= rep.ComputeEnergy {
		t.Errorf("write energy %v should dominate compute energy %v", rep.WriteEnergy, rep.ComputeEnergy)
	}
	if math.Abs(rep.WritesPerCell-0.05*10*1000) > 1e-9 {
		t.Errorf("writes per cell = %v", rep.WritesPerCell)
	}
	if rep.EnduranceConsumed <= 0 {
		t.Errorf("endurance consumed = %v", rep.EnduranceConsumed)
	}
	// A longer run consumes proportionally more endurance.
	rep2, err := TrainingCost(a, TrainingPlan{Epochs: 20, SamplesPerEpoch: 1000, UpdateFraction: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rep2.EnduranceConsumed/rep.EnduranceConsumed-2) > 1e-9 {
		t.Errorf("endurance not linear in epochs: %v vs %v", rep2.EnduranceConsumed, rep.EnduranceConsumed)
	}
	if _, err := TrainingCost(a, TrainingPlan{}); err == nil {
		t.Error("invalid plan accepted")
	}
}

// Endurance guard: zero endurance disables the ratio rather than dividing
// by zero.
func TestTrainingCostZeroEndurance(t *testing.T) {
	d := refDesign(64, 0)
	d.Dev.Endurance = 0
	a, err := NewAccelerator(d, []LayerDims{{Rows: 64, Cols: 64, Passes: 1}}, [2]int{128, 128})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := TrainingCost(a, TrainingPlan{Epochs: 1, SamplesPerEpoch: 1, UpdateFraction: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.EnduranceConsumed != 0 {
		t.Fatalf("endurance consumed = %v, want 0", rep.EnduranceConsumed)
	}
}
