// Package arch implements MNSIM's hierarchical accelerator structure
// (Section III of the paper): Computation Units assemble crossbars with
// their input/output peripherals, Computation Banks tile units over one
// network layer and merge them through the adder tree, pooling, neuron and
// buffer stages, and the Accelerator cascades one bank per layer behind the
// I/O interface modules.
//
// Performance aggregates bottom-up (Fig. 3): each level sums the area,
// energy and static power of its children and accumulates worst-case
// latency, the estimation policy of Section IV.A.
package arch

import (
	"fmt"

	"mnsim/internal/config"
	"mnsim/internal/crossbar"
	"mnsim/internal/device"
	"mnsim/internal/periph"
	"mnsim/internal/tech"
)

// Design carries the unit-level design parameters shared by every
// computation unit of an accelerator.
type Design struct {
	// CrossbarSize is the (square) crossbar dimension.
	CrossbarSize int
	// Parallelism is the computation parallelism degree p: the number of
	// read circuits per crossbar. 0 means fully parallel (one per column).
	Parallelism int
	// WeightPolarity is 1 for unsigned weights or 2 for signed.
	WeightPolarity int
	// TwoCrossbarSigned selects signed-weight method (1) of Section III.C.1
	// (a positive and a negative crossbar merged by subtractors). When
	// false, method (2) stores both polarities in one crossbar on paired
	// columns.
	TwoCrossbarSigned bool
	// WeightBits and DataBits set the algorithm precision.
	WeightBits, DataBits int
	// CMOS is the logic technology node for all peripheral modules.
	CMOS tech.CMOSNode
	// Wire is the crossbar interconnect technology.
	Wire tech.WireTech
	// Dev is the memristor device model.
	Dev device.Model
	// ADC selects the read-circuit design.
	ADC periph.ADCKind
	// Neuron selects the non-linear neuron circuit (by network type).
	Neuron periph.NeuronKind
	// AreaCoefficient multiplies estimated crossbar array area; the Fig. 6
	// layout validation supplies the reference value (>1 for routing slack).
	AreaCoefficient float64
	// InnerPipeline enables the ISAAC-style inner-layer pipeline the paper
	// lists as future work: the bank's merge chain (unit → adder tree →
	// pooling → neuron → buffer) is registered between stages, so the
	// bank's cycle shrinks to its slowest stage while a single pass takes
	// Stages cycles to fill.
	InnerPipeline bool
}

// Validate checks the design parameters.
func (d *Design) Validate() error {
	switch {
	case d.CrossbarSize < 2:
		return fmt.Errorf("arch: crossbar size %d too small", d.CrossbarSize)
	case d.Parallelism < 0 || d.Parallelism > d.CrossbarSize:
		return fmt.Errorf("arch: parallelism %d outside [0,%d]", d.Parallelism, d.CrossbarSize)
	case d.WeightPolarity != 1 && d.WeightPolarity != 2:
		return fmt.Errorf("arch: weight polarity %d must be 1 or 2", d.WeightPolarity)
	case d.WeightBits < 1 || d.DataBits < 1:
		return fmt.Errorf("arch: invalid precisions %d/%d", d.WeightBits, d.DataBits)
	case d.AreaCoefficient <= 0:
		return fmt.Errorf("arch: area coefficient %g must be positive", d.AreaCoefficient)
	}
	return d.Dev.Validate()
}

// CellsPerWeight returns how many memristor cells along a row store one
// weight: bit-slicing spreads WeightBits over cells of Dev.LevelBits each
// (Section III.B.2), and signed method (2) doubles the columns.
func (d *Design) CellsPerWeight() int {
	slices := (d.WeightBits + d.Dev.LevelBits - 1) / d.Dev.LevelBits
	if d.WeightPolarity == 2 && !d.TwoCrossbarSigned {
		return 2 * slices
	}
	return slices
}

// BitSlices returns the number of weight bit slices (shift-add merged).
func (d *Design) BitSlices() int {
	return (d.WeightBits + d.Dev.LevelBits - 1) / d.Dev.LevelBits
}

// CrossbarsPerUnit returns the physical crossbar count of one computation
// unit: two for the two-crossbar signed mapping, one otherwise.
func (d *Design) CrossbarsPerUnit() int {
	if d.WeightPolarity == 2 && d.TwoCrossbarSigned {
		return 2
	}
	return 1
}

// EffectiveParallelism resolves Parallelism to a concrete read-circuit
// count for a crossbar with physCols active columns.
func (d *Design) EffectiveParallelism(physCols int) int {
	p := d.Parallelism
	if p == 0 || p > physCols {
		p = physCols
	}
	return p
}

// Crossbar returns the behavioural crossbar parameters of this design for
// a block of the given logical shape.
func (d *Design) Crossbar(rows, cols int) crossbar.Params {
	return crossbar.New(rows, cols, d.Dev, d.Wire)
}

// ADCBits returns the read-circuit precision, set by the algorithm data
// precision following the ISAAC rule cited in Section V.C.
func (d *Design) ADCBits() int {
	return crossbar.RequiredADCBits(d.DataBits, d.Dev.LevelBits, d.CrossbarSize, d.DataBits)
}

// FromConfig builds a Design plus the per-layer dimensions from a parsed
// configuration (the module-generation step of the software flow, Fig. 3).
func FromConfig(cfg config.Config) (Design, []LayerDims, error) {
	if err := cfg.Validate(); err != nil {
		return Design{}, nil, err
	}
	node, err := tech.Node(cfg.CMOSTech)
	if err != nil {
		return Design{}, nil, err
	}
	wire, err := tech.Interconnect(cfg.InterconnectTech)
	if err != nil {
		return Design{}, nil, err
	}
	dev, err := device.ByName(cfg.MemristorModel)
	if err != nil {
		return Design{}, nil, err
	}
	cellType, err := device.ParseCellType(cfg.CellType)
	if err != nil {
		return Design{}, nil, err
	}
	dev.Type = cellType
	dev.RMin, dev.RMax = cfg.ResistanceRange[0], cfg.ResistanceRange[1]
	dev.Variation = cfg.Variation
	adc, err := periph.ParseADCKind(cfg.ADCDesign)
	if err != nil {
		return Design{}, nil, err
	}
	var neuron periph.NeuronKind
	switch cfg.NetworkType {
	case "ANN":
		neuron = periph.NeuronSigmoid
	case "SNN":
		neuron = periph.NeuronIntegrateFire
	case "CNN":
		neuron = periph.NeuronReLU
	}
	d := Design{
		CrossbarSize:      cfg.CrossbarSize,
		Parallelism:       cfg.ParallelismDegree,
		WeightPolarity:    cfg.WeightPolarity,
		TwoCrossbarSigned: cfg.WeightPolarity == 2,
		WeightBits:        cfg.WeightBits,
		DataBits:          cfg.DataBits,
		CMOS:              node,
		Wire:              wire,
		Dev:               dev,
		ADC:               adc,
		Neuron:            neuron,
		AreaCoefficient:   DefaultAreaCoefficient,
		InnerPipeline:     cfg.InnerPipeline,
	}
	if err := d.Validate(); err != nil {
		return Design{}, nil, err
	}
	layers := make([]LayerDims, len(cfg.NetworkScale))
	for i, s := range cfg.NetworkScale {
		layers[i] = LayerDims{Rows: s.Rows, Cols: s.Cols, Passes: 1}
		if cfg.NetworkType == "CNN" {
			layers[i].PoolK = cfg.PoolingSize
		}
	}
	return d, layers, nil
}

// DefaultAreaCoefficient is the crossbar-area correction factor: the
// paper's Fig. 6 layout validation found the fabricated 130 nm 32×32 1T1R
// array about 1.5× larger than its estimate (routing slack), and MNSIM
// folds that coefficient back into area estimation. The Fig. 6 bench
// recomputes the coefficient with this library's own models; users supply
// their own value for other technologies.
const DefaultAreaCoefficient = 1.5

// LayerDims describes one neuromorphic layer to be mapped onto a
// computation bank. For a fully-connected layer Rows×Cols is the weight
// matrix and Passes is 1; for a convolutional layer the kernel stack is
// flattened to (kw·kh·Cin)×Cout and Passes is the number of output pixels
// (Section II.B.3).
type LayerDims struct {
	// Rows and Cols give the flattened weight-matrix shape.
	Rows, Cols int
	// Passes is the number of compute passes per input sample.
	Passes int
	// PoolK is the pooling window size after this layer (0 = no pooling).
	PoolK int
	// OutBufLen is the line-buffer length of Eq. 6 for CNN layers
	// (0 = plain output registers, one per column).
	OutBufLen int
	// OutChannels is the number of separate line buffers (CNN feature
	// maps); ignored when OutBufLen is 0.
	OutChannels int
}

// Validate checks the layer dimensions.
func (l *LayerDims) Validate() error {
	if l.Rows < 1 || l.Cols < 1 {
		return fmt.Errorf("arch: layer shape %dx%d invalid", l.Rows, l.Cols)
	}
	if l.Passes < 1 {
		return fmt.Errorf("arch: layer passes %d invalid", l.Passes)
	}
	if l.PoolK < 0 || l.OutBufLen < 0 || l.OutChannels < 0 {
		return fmt.Errorf("arch: negative layer field")
	}
	return nil
}
