package arch

import "fmt"

// TrainingPlan describes an on-chip training workload — the future-work
// feature of Section VIII. Each training sample runs a forward COMPUTE pass
// through every bank plus a backward pass of equal compute cost, then
// rewrites UpdateFraction of the weight cells.
type TrainingPlan struct {
	// Epochs and SamplesPerEpoch size the workload.
	Epochs, SamplesPerEpoch int
	// UpdateFraction is the fraction of cells rewritten per sample (sparse
	// updates rewrite only the weights whose quantized value changed).
	UpdateFraction float64
}

// Validate checks the plan.
func (p *TrainingPlan) Validate() error {
	if p.Epochs < 1 || p.SamplesPerEpoch < 1 {
		return fmt.Errorf("arch: training plan needs positive epochs and samples, got %d×%d", p.Epochs, p.SamplesPerEpoch)
	}
	if p.UpdateFraction < 0 || p.UpdateFraction > 1 {
		return fmt.Errorf("arch: update fraction %g outside [0,1]", p.UpdateFraction)
	}
	return nil
}

// TrainingReport summarises an on-chip training cost estimate.
type TrainingReport struct {
	// Time and Energy are the total training cost.
	Time, Energy float64
	// ComputeEnergy and WriteEnergy split the energy between the
	// forward/backward passes and the weight updates.
	ComputeEnergy, WriteEnergy float64
	// WritesPerCell is the expected number of rewrites each weight cell
	// sees over the whole run.
	WritesPerCell float64
	// EnduranceConsumed is WritesPerCell over the device endurance; a value
	// above 1 means training alone wears the cells out.
	EnduranceConsumed float64
}

// TrainingCost estimates the cost of training the accelerator's network on
// chip. It exposes the high-writing-cost problem the paper cites as the
// reason memristor accelerators deploy fixed weights: even modest training
// runs are dominated by write energy and eat into device endurance.
func TrainingCost(a *Accelerator, plan TrainingPlan) (TrainingReport, error) {
	if err := plan.Validate(); err != nil {
		return TrainingReport{}, err
	}
	samples := float64(plan.Epochs * plan.SamplesPerEpoch)
	var rep TrainingReport
	for _, b := range a.Banks {
		// Forward plus backward compute.
		rep.Time += 2 * b.SampleLatency * samples
		rep.ComputeEnergy += 2 * b.SampleEnergy * samples
		cells := float64(b.Layer.Rows*b.Layer.Cols) * float64(b.Design.CellsPerWeight()*b.Design.CrossbarsPerUnit())
		writes := cells * plan.UpdateFraction * samples
		// Cells are programmed one write operation at a time per unit, all
		// units in parallel.
		rep.Time += writes / float64(b.Units) * b.Unit.WriteOp.Latency
		rep.WriteEnergy += writes * b.Unit.WriteOp.DynamicEnergy
	}
	rep.Energy = rep.ComputeEnergy + rep.WriteEnergy
	rep.WritesPerCell = plan.UpdateFraction * samples
	if e := a.Design.Dev.Endurance; e > 0 {
		rep.EnduranceConsumed = rep.WritesPerCell / e
	}
	return rep, nil
}
