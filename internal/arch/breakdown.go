package arch

import (
	"sort"

	"mnsim/internal/periph"
)

// ModuleClass names one class of circuit module in a breakdown.
type ModuleClass string

// Breakdown module classes.
const (
	ClassCrossbar ModuleClass = "crossbar"
	ClassDAC      ModuleClass = "dac"
	ClassADC      ModuleClass = "adc"
	ClassDecoder  ModuleClass = "decoder"
	ClassMerge    ModuleClass = "merge" // subtractors, shifters, adder trees
	ClassNeuron   ModuleClass = "neuron"
	ClassBuffer   ModuleClass = "buffer" // pooling/line/output buffers
)

// Breakdown returns the bank's area and per-pass dynamic energy split by
// module class. It re-derives the same module set NewBank assembled, so the
// totals reconcile with PassPerf; the read-circuit share reproduces the
// paper's Section V.C observation that ADCs take about half of the area and
// energy of memristor-based DNNs/CNNs.
func (b *Bank) Breakdown() (map[ModuleClass]periph.Perf, error) {
	d := b.Design
	n := d.CMOS
	u := b.Unit
	nXbar := d.CrossbarsPerUnit()
	out := map[ModuleClass]periph.Perf{}

	// Crossbar arrays.
	xbar := periph.Perf{
		Area:          u.Xbar.Area() * d.AreaCoefficient * float64(nXbar),
		DynamicEnergy: u.Xbar.ComputePower() * float64(nXbar) * (u.FrontLatency + float64(u.Cycles)*u.ReadPassLatency),
	}
	out[ClassCrossbar] = xbar.Scale(b.Units)

	dac, err := periph.DAC(n, d.DataBits)
	if err != nil {
		return nil, err
	}
	dacs := dac.Scale(u.Rows)
	dacs.DynamicEnergy = dac.DynamicEnergy * float64(u.Rows)
	out[ClassDAC] = dacs.Scale(b.Units)

	adc, err := periph.ADC(n, d.ADC, d.ADCBits())
	if err != nil {
		return nil, err
	}
	mux, err := periph.Mux(n, u.Cycles, 1)
	if err != nil {
		return nil, err
	}
	readPath := periph.Sum(mux, adc)
	adcs := periph.Perf{
		Area:          readPath.Area * float64(u.ReadCircuits*nXbar),
		DynamicEnergy: readPath.DynamicEnergy * float64(u.ReadCircuits*nXbar*u.Cycles),
		StaticPower:   readPath.StaticPower * float64(u.ReadCircuits*nXbar),
	}
	out[ClassADC] = adcs.Scale(b.Units)

	rowDec, err := periph.Decoder(n, d.CrossbarSize, true)
	if err != nil {
		return nil, err
	}
	colDec, err := periph.Decoder(n, d.CrossbarSize, false)
	if err != nil {
		return nil, err
	}
	dec := periph.Parallel(rowDec.Scale(nXbar), colDec.Scale(nXbar))
	out[ClassDecoder] = dec.Scale(b.Units)

	tree, err := periph.AdderTree(n, b.RowBlocks, d.DataBits)
	if err != nil {
		return nil, err
	}
	merge := tree.Scale(maxInt(b.OutputsPerPass, 1))
	if d.WeightPolarity == 2 {
		sub, err := periph.Subtractor(n, d.DataBits)
		if err != nil {
			return nil, err
		}
		merge = merge.Plus(sub.Scale(u.ReadCircuits * b.Units))
	}
	out[ClassMerge] = merge

	neuron, err := periph.Neuron(n, d.Neuron, d.DataBits)
	if err != nil {
		return nil, err
	}
	neuronCount := b.Layer.Cols
	if b.Layer.PoolK > 1 {
		neuronCount = maxInt(b.Layer.Cols/(b.Layer.PoolK*b.Layer.PoolK), 1)
	}
	out[ClassNeuron] = neuron.Scale(neuronCount)

	var buffers periph.Perf
	if b.Layer.OutBufLen > 0 {
		lb, err := periph.LineBuffer(n, b.Layer.OutBufLen, d.DataBits)
		if err != nil {
			return nil, err
		}
		buffers = lb.Scale(maxInt(b.Layer.OutChannels, 1))
	} else {
		reg, err := periph.Register(n, d.DataBits)
		if err != nil {
			return nil, err
		}
		buffers = reg.Scale(b.Layer.Cols)
	}
	if b.Layer.PoolK > 1 {
		pool, err := periph.MaxPool(n, b.Layer.PoolK, d.DataBits)
		if err != nil {
			return nil, err
		}
		pb, err := periph.LineBuffer(n, b.Layer.PoolK*b.Layer.PoolK, d.DataBits)
		if err != nil {
			return nil, err
		}
		buffers = buffers.Plus(pool.Scale(maxInt(b.OutputsPerPass/(b.Layer.PoolK*b.Layer.PoolK), 1)))
		buffers = buffers.Plus(pb.Scale(maxInt(b.OutputsPerPass, 1)))
	}
	out[ClassBuffer] = buffers
	return out, nil
}

// Classes lists the breakdown classes in presentation order.
func Classes() []ModuleClass {
	return []ModuleClass{ClassCrossbar, ClassDAC, ClassADC, ClassDecoder, ClassMerge, ClassNeuron, ClassBuffer}
}

// ShareOf returns the class's fraction of the breakdown's total area.
func ShareOf(bd map[ModuleClass]periph.Perf, class ModuleClass) float64 {
	total := 0.0
	for _, p := range bd {
		total += p.Area
	}
	if total == 0 {
		return 0
	}
	return bd[class].Area / total
}

// SortedByArea returns the classes ordered by descending area.
func SortedByArea(bd map[ModuleClass]periph.Perf) []ModuleClass {
	classes := make([]ModuleClass, 0, len(bd))
	for c := range bd {
		classes = append(classes, c)
	}
	sort.Slice(classes, func(i, j int) bool { return bd[classes[i]].Area > bd[classes[j]].Area })
	return classes
}
