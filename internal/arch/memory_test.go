package arch

import "testing"

func TestMemoryMode(t *testing.T) {
	d := refDesign(128, 0)
	rep, err := MemoryMode(d, 16, 32)
	if err != nil {
		t.Fatal(err)
	}
	if rep.CapacityBits != 16*128*128*d.Dev.LevelBits {
		t.Errorf("capacity = %d", rep.CapacityBits)
	}
	if rep.AreaMM2 <= 0 || rep.ReadBandwidth <= 0 {
		t.Fatalf("report: %+v", rep)
	}
	// The non-volatile asymmetry: writes far slower and costlier than reads.
	if rep.WriteLatency <= rep.ReadLatency {
		t.Error("write should be slower than read")
	}
	if rep.WriteEnergy <= rep.ReadEnergy {
		t.Error("write should cost more than read")
	}
}

// Section II.C: the computing structure costs more than the memory macro at
// equal array count — the computation-oriented decoders, DACs, ADCs per
// column group, and merge logic are all additions.
func TestComputeCostsMoreThanMemory(t *testing.T) {
	d := refDesign(128, 0)
	mem, err := MemoryMode(d, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	// A unit holding the same two crossbars (signed pair).
	u, err := NewUnit(d, 128, 128)
	if err != nil {
		t.Fatal(err)
	}
	if u.Compute.Area <= mem.AreaMM2*1e6 {
		t.Errorf("compute unit area %v should exceed the 2-array memory macro %v", u.Compute.Area, mem.AreaMM2*1e6)
	}
}

func TestMemoryModeErrors(t *testing.T) {
	d := refDesign(128, 0)
	if _, err := MemoryMode(d, 0, 8); err == nil {
		t.Error("0 crossbars accepted")
	}
	if _, err := MemoryMode(d, 1, 0); err == nil {
		t.Error("0-bit words accepted")
	}
	if _, err := MemoryMode(d, 1, 1<<20); err == nil {
		t.Error("word wider than the macro accepted")
	}
	bad := refDesign(128, 0)
	bad.WeightBits = 0
	if _, err := MemoryMode(bad, 1, 8); err == nil {
		t.Error("invalid design accepted")
	}
}
