package arch

import (
	"fmt"

	"mnsim/internal/accuracy"
	"mnsim/internal/periph"
)

// Bank is one Computation Bank (Section III.B, Fig. 1c): the computation
// units tiling one neuromorphic layer's weight matrix (grouped into synapse
// sub-banks sharing inputs), the adder tree merging the row blocks, and the
// peripheral chain (pooling module and buffer for CNN, non-linear neuron
// module, output buffer).
type Bank struct {
	Design *Design
	Layer  LayerDims

	// RowBlocks × ColBlocks units tile the weight matrix; units in the same
	// column of blocks share inputs and form a synapse sub-bank.
	RowBlocks, ColBlocks int
	Units                int
	Unit                 *Unit

	// OutputsPerPass is the number of layer outputs finished per compute
	// pass (bounded by the read parallelism).
	OutputsPerPass int

	// PassPerf is the performance of one compute pass through the whole
	// bank chain; Area and StaticPower cover the entire bank. With the
	// inner-layer pipeline enabled, Latency is the pipeline cycle (the
	// slowest stage) rather than the full chain traversal.
	PassPerf periph.Perf
	// Stages is the depth of the bank's merge chain (1 when the chain runs
	// combinationally in one pass).
	Stages int
	// SampleEnergy and SampleLatency cover one full input sample
	// (Layer.Passes compute passes, plus pipeline fill when enabled).
	SampleEnergy  float64
	SampleLatency float64
}

// NewBank tiles one layer onto computation units and assembles the merge
// and peripheral chain.
func NewBank(d *Design, layer LayerDims) (*Bank, error) {
	if err := layer.Validate(); err != nil {
		return nil, err
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	s := d.CrossbarSize
	logicalCols := s / d.CellsPerWeight()
	if logicalCols < 1 {
		return nil, fmt.Errorf("arch: crossbar size %d cannot hold one %d-bit weight (%d cells)", s, d.WeightBits, d.CellsPerWeight())
	}
	b := &Bank{Design: d, Layer: layer}
	b.RowBlocks = ceilDiv(layer.Rows, s)
	b.ColBlocks = ceilDiv(layer.Cols, logicalCols)
	b.Units = b.RowBlocks * b.ColBlocks

	blockRows := minInt(layer.Rows, s)
	blockCols := minInt(layer.Cols, logicalCols)
	u, err := NewUnit(d, blockRows, blockCols)
	if err != nil {
		return nil, err
	}
	b.Unit = u
	b.OutputsPerPass = minInt(layer.Cols, b.ColBlocks*u.ReadCircuits)

	n := d.CMOS

	// Adder tree: each finished output merges RowBlocks partial sums
	// (Eq. 5); OutputsPerPass trees operate in parallel per read cycle.
	tree, err := periph.AdderTree(n, b.RowBlocks, d.DataBits)
	if err != nil {
		return nil, err
	}
	trees := tree.Scale(maxInt(b.OutputsPerPass, 1))

	// Pooling module and pooling line buffer (CNN only).
	var pool, poolBuf periph.Perf
	if layer.PoolK > 1 {
		pool, err = periph.MaxPool(n, layer.PoolK, d.DataBits)
		if err != nil {
			return nil, err
		}
		pool = pool.Scale(maxInt(b.OutputsPerPass/(layer.PoolK*layer.PoolK), 1))
		poolBuf, err = periph.LineBuffer(n, layer.PoolK*layer.PoolK, d.DataBits)
		if err != nil {
			return nil, err
		}
		poolBuf = poolBuf.Scale(maxInt(b.OutputsPerPass, 1))
	}

	// Neuron modules: one per output neuron, each wired to its output
	// register (Section III.B.5) — the count does not shrink with the read
	// parallelism, which is what limits the area gain of reducing read
	// circuits at large crossbar sizes (Fig. 7). Pooling (a monotone max)
	// runs before the neurons to cut the neuron operation count
	// (Section III.B.4).
	neuron, err := periph.Neuron(n, d.Neuron, d.DataBits)
	if err != nil {
		return nil, err
	}
	neuronCount := layer.Cols
	if layer.PoolK > 1 {
		neuronCount = maxInt(layer.Cols/(layer.PoolK*layer.PoolK), 1)
	}
	neurons := neuron.Scale(neuronCount)
	// Per pass only the finished outputs fire their neurons.
	neurons.DynamicEnergy = neuron.DynamicEnergy * float64(maxInt(b.OutputsPerPass, 1))

	// Output buffer: plain registers for fully-connected layers, the line
	// buffers of Eq. 6 for cascaded Conv layers.
	var outBuf periph.Perf
	if layer.OutBufLen > 0 {
		lb, err := periph.LineBuffer(n, layer.OutBufLen, d.DataBits)
		if err != nil {
			return nil, err
		}
		outBuf = lb.Scale(maxInt(layer.OutChannels, 1))
	} else {
		reg, err := periph.Register(n, d.DataBits)
		if err != nil {
			return nil, err
		}
		outBuf = reg.Scale(layer.Cols)
	}

	units := u.Compute.Scale(b.Units)
	b.PassPerf = periph.Perf{
		Area:        units.Area + trees.Area + pool.Area + poolBuf.Area + neurons.Area + outBuf.Area,
		StaticPower: units.StaticPower + trees.StaticPower + pool.StaticPower + poolBuf.StaticPower + neurons.StaticPower + outBuf.StaticPower,
		DynamicEnergy: units.DynamicEnergy + trees.DynamicEnergy +
			pool.DynamicEnergy + poolBuf.DynamicEnergy +
			neurons.DynamicEnergy + outBuf.DynamicEnergy,
	}
	if d.InnerPipeline {
		// The ISAAC-style inner-layer pipeline of Section VIII (future
		// work): the unit's sequential read passes stream down a registered
		// merge chain instead of waiting for the full matrix-vector product.
		// Stage set: front (decode+DAC+settle), one read pass, unit merge,
		// adder tree, [pooling], neuron, output buffer.
		reg, err := periph.Register(n, d.DataBits)
		if err != nil {
			return nil, err
		}
		stageLat := []float64{u.FrontLatency, u.ReadPassLatency, u.MergeLatency,
			tree.Latency, neuron.Latency, outBuf.Latency}
		if layer.PoolK > 1 {
			stageLat = append(stageLat, pool.Latency)
		}
		b.Stages = len(stageLat)
		bound := reg.Scale(maxInt(b.OutputsPerPass, 1) * (b.Stages - 1))
		b.PassPerf.Area += bound.Area
		b.PassPerf.StaticPower += bound.StaticPower
		b.PassPerf.DynamicEnergy += bound.DynamicEnergy
		cycle := reg.Latency
		for _, l := range stageLat {
			if l+reg.Latency > cycle {
				cycle = l + reg.Latency
			}
		}
		// One pass issues u.Cycles read-pass stages back to back; the pass
		// initiation interval (the accelerator-level pipeline cycle) is
		// u.Cycles pipeline cycles, and a sample drains after the fill.
		b.PassPerf.Latency = cycle * float64(u.Cycles)
		b.SampleLatency = cycle * (float64(layer.Passes*u.Cycles) + float64(b.Stages-1))
	} else {
		// One pass: all units compute concurrently, then the merge chain
		// runs combinationally.
		b.Stages = 1
		b.PassPerf.Latency = u.Compute.Latency + tree.Latency + pool.Latency +
			neuron.Latency + outBuf.Latency
		b.SampleLatency = b.PassPerf.Latency * float64(layer.Passes)
	}
	b.SampleEnergy = b.PassPerf.DynamicEnergy * float64(layer.Passes)
	return b, nil
}

// Power returns the bank's average power while streaming computation.
func (b *Bank) Power() float64 {
	return b.PassPerf.DynamicEnergy/b.PassPerf.Latency + b.PassPerf.StaticPower
}

// Accuracy evaluates the bank's crossbar computing error with the
// behaviour-level accuracy model: the merged worst/average voltage error
// rates of the layer's tiled crossbars, before quantization.
func (b *Bank) Accuracy(inDelta float64) (accuracy.LayerReport, error) {
	k := 1 << uint(b.Design.ADCBits())
	return accuracy.EvalLayer(b.Unit.Xbar, b.Layer.Rows, b.Layer.Cols, k, inDelta)
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
