package arch

import (
	"math"
	"strings"
	"testing"

	"mnsim/internal/config"
	"mnsim/internal/device"
	"mnsim/internal/periph"
	"mnsim/internal/tech"
)

func refDesign(size, p int) *Design {
	return &Design{
		CrossbarSize:      size,
		Parallelism:       p,
		WeightPolarity:    2,
		TwoCrossbarSigned: true,
		WeightBits:        4,
		DataBits:          8,
		CMOS:              tech.MustNode(45),
		Wire:              tech.MustInterconnect(45),
		Dev:               device.RRAM(),
		ADC:               periph.ADCVariableSA,
		Neuron:            periph.NeuronSigmoid,
		AreaCoefficient:   DefaultAreaCoefficient,
	}
}

func TestDesignValidate(t *testing.T) {
	if err := refDesign(128, 0).Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []func(*Design){
		func(d *Design) { d.CrossbarSize = 1 },
		func(d *Design) { d.Parallelism = -1 },
		func(d *Design) { d.Parallelism = d.CrossbarSize + 1 },
		func(d *Design) { d.WeightPolarity = 3 },
		func(d *Design) { d.WeightBits = 0 },
		func(d *Design) { d.DataBits = 0 },
		func(d *Design) { d.AreaCoefficient = 0 },
		func(d *Design) { d.Dev.RMin = -1 },
	}
	for i, mutate := range cases {
		d := refDesign(128, 0)
		mutate(d)
		if err := d.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestCellsPerWeight(t *testing.T) {
	d := refDesign(128, 0) // 4-bit weights on 7-bit cells, signed two-crossbar
	if got := d.CellsPerWeight(); got != 1 {
		t.Fatalf("CellsPerWeight = %d, want 1", got)
	}
	if got := d.CrossbarsPerUnit(); got != 2 {
		t.Fatalf("CrossbarsPerUnit = %d, want 2", got)
	}
	// Same-crossbar signed mapping doubles the columns instead.
	d.TwoCrossbarSigned = false
	if got := d.CellsPerWeight(); got != 2 {
		t.Fatalf("same-crossbar CellsPerWeight = %d, want 2", got)
	}
	if got := d.CrossbarsPerUnit(); got != 1 {
		t.Fatalf("same-crossbar CrossbarsPerUnit = %d, want 1", got)
	}
	// 8-bit weights on 7-bit cells need two slices (PRIME-style splitting).
	d2 := refDesign(128, 0)
	d2.WeightBits = 8
	if got := d2.BitSlices(); got != 2 {
		t.Fatalf("BitSlices = %d, want 2", got)
	}
	if got := d2.CellsPerWeight(); got != 2 {
		t.Fatalf("8-bit CellsPerWeight = %d, want 2", got)
	}
	// Unsigned weights never double.
	d3 := refDesign(128, 0)
	d3.WeightPolarity = 1
	d3.TwoCrossbarSigned = false
	if got := d3.CrossbarsPerUnit(); got != 1 {
		t.Fatalf("unsigned CrossbarsPerUnit = %d", got)
	}
}

func TestEffectiveParallelism(t *testing.T) {
	d := refDesign(128, 0)
	if got := d.EffectiveParallelism(128); got != 128 {
		t.Fatalf("p=0 -> %d, want all 128", got)
	}
	d.Parallelism = 16
	if got := d.EffectiveParallelism(128); got != 16 {
		t.Fatalf("p=16 -> %d", got)
	}
	if got := d.EffectiveParallelism(8); got != 8 {
		t.Fatalf("p above cols -> %d, want clamp to 8", got)
	}
}

func TestNewUnitBasics(t *testing.T) {
	d := refDesign(128, 16)
	u, err := NewUnit(d, 128, 128)
	if err != nil {
		t.Fatal(err)
	}
	if u.PhysCols != 128 || u.ReadCircuits != 16 || u.Cycles != 8 {
		t.Fatalf("unit: physCols %d p %d cycles %d", u.PhysCols, u.ReadCircuits, u.Cycles)
	}
	if u.Compute.Area <= 0 || u.Compute.DynamicEnergy <= 0 || u.Compute.Latency <= 0 {
		t.Fatalf("compute perf: %+v", u.Compute)
	}
	if u.ComputePower() <= 0 {
		t.Fatal("compute power must be positive")
	}
	// Block larger than the crossbar is rejected.
	if _, err := NewUnit(d, 129, 128); err == nil {
		t.Error("oversized rows accepted")
	}
	if _, err := NewUnit(d, 0, 4); err == nil {
		t.Error("zero rows accepted")
	}
	// Physical column overflow: 128 logical cols × 2 cells with the
	// same-crossbar mapping needs 256 > 128.
	d2 := refDesign(128, 0)
	d2.TwoCrossbarSigned = false
	if _, err := NewUnit(d2, 128, 128); err == nil {
		t.Error("column overflow accepted")
	}
	bad := refDesign(128, 0)
	bad.WeightBits = 0
	if _, err := NewUnit(bad, 4, 4); err == nil {
		t.Error("invalid design accepted")
	}
}

// Fewer read circuits means more sequential cycles: latency up, ADC area down.
func TestUnitParallelismTradeOff(t *testing.T) {
	full, err := NewUnit(refDesign(128, 0), 128, 128)
	if err != nil {
		t.Fatal(err)
	}
	serial, err := NewUnit(refDesign(128, 1), 128, 128)
	if err != nil {
		t.Fatal(err)
	}
	if serial.Compute.Latency <= full.Compute.Latency {
		t.Error("serial unit should be slower")
	}
	if serial.Compute.Area >= full.Compute.Area {
		t.Error("serial unit should be smaller")
	}
	if serial.Cycles != 128 || full.Cycles != 1 {
		t.Errorf("cycles: serial %d full %d", serial.Cycles, full.Cycles)
	}
}

// Writes are far more expensive than reads — the high-writing-cost problem
// that makes fixed-weight inference the memristor sweet spot.
func TestUnitWriteCostExceedsRead(t *testing.T) {
	u, err := NewUnit(refDesign(128, 0), 128, 128)
	if err != nil {
		t.Fatal(err)
	}
	if u.WriteOp.Latency <= u.ReadOp.Latency {
		t.Error("write should be slower than read")
	}
	if u.WriteOp.DynamicEnergy <= u.ReadOp.DynamicEnergy {
		t.Error("write should cost more energy than read")
	}
}

func TestNewBankTiling(t *testing.T) {
	d := refDesign(128, 0)
	b, err := NewBank(d, LayerDims{Rows: 2048, Cols: 1024, Passes: 1})
	if err != nil {
		t.Fatal(err)
	}
	if b.RowBlocks != 16 || b.ColBlocks != 8 || b.Units != 128 {
		t.Fatalf("tiling: %d x %d = %d", b.RowBlocks, b.ColBlocks, b.Units)
	}
	if b.PassPerf.Area <= 0 || b.SampleEnergy <= 0 || b.SampleLatency <= 0 {
		t.Fatalf("bank perf: %+v", b.PassPerf)
	}
	if b.Power() <= 0 {
		t.Fatal("bank power must be positive")
	}
	// A small layer fits one unit (the Fig. 2a small-network case).
	small, err := NewBank(d, LayerDims{Rows: 64, Cols: 16, Passes: 1})
	if err != nil {
		t.Fatal(err)
	}
	if small.Units != 1 {
		t.Fatalf("small layer should need 1 unit, got %d", small.Units)
	}
	if _, err := NewBank(d, LayerDims{Rows: 0, Cols: 4, Passes: 1}); err == nil {
		t.Error("bad layer accepted")
	}
	if _, err := NewBank(d, LayerDims{Rows: 4, Cols: 4, Passes: 0}); err == nil {
		t.Error("zero passes accepted")
	}
	bad := refDesign(128, 0)
	bad.DataBits = 0
	if _, err := NewBank(bad, LayerDims{Rows: 4, Cols: 4, Passes: 1}); err == nil {
		t.Error("invalid design accepted")
	}
}

// Wide weights can overflow the crossbar entirely.
func TestNewBankWeightOverflow(t *testing.T) {
	d := refDesign(2, 0)
	d.WeightBits = 16
	d.TwoCrossbarSigned = false // 16-bit weights need 3 slices x2 = 6 cells > 2
	if _, err := NewBank(d, LayerDims{Rows: 2, Cols: 2, Passes: 1}); err == nil {
		t.Error("weight overflow accepted")
	}
}

// A CNN layer multiplies energy and latency by its pass count and adds the
// pooling chain.
func TestBankCNNPassesAndPooling(t *testing.T) {
	d := refDesign(128, 0)
	d.Neuron = periph.NeuronReLU
	fc := LayerDims{Rows: 1152, Cols: 256, Passes: 1}
	conv := LayerDims{Rows: 1152, Cols: 256, Passes: 196, PoolK: 2, OutBufLen: 30, OutChannels: 256}
	bFC, err := NewBank(d, fc)
	if err != nil {
		t.Fatal(err)
	}
	bConv, err := NewBank(d, conv)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(bConv.SampleEnergy/bConv.PassPerf.DynamicEnergy-196) > 1e-9 {
		t.Error("conv sample energy should be passes x pass energy")
	}
	if bConv.PassPerf.Area <= bFC.PassPerf.Area {
		t.Error("pooling chain should add area")
	}
}

func TestBankAccuracy(t *testing.T) {
	b, err := NewBank(refDesign(128, 0), LayerDims{Rows: 2048, Cols: 1024, Passes: 1})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := b.Accuracy(0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.WorstRate <= 0 {
		t.Fatalf("worst rate %v", rep.WorstRate)
	}
	dirty, err := b.Accuracy(0.05)
	if err != nil {
		t.Fatal(err)
	}
	if dirty.WorstRate <= rep.WorstRate {
		t.Error("input error should compound")
	}
}

func TestAcceleratorEvaluate(t *testing.T) {
	d := refDesign(128, 0)
	layers := []LayerDims{
		{Rows: 128, Cols: 128, Passes: 1},
		{Rows: 128, Cols: 128, Passes: 1},
		{Rows: 128, Cols: 10, Passes: 1},
	}
	a, err := NewAccelerator(d, layers, [2]int{128, 128})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Banks) != 3 {
		t.Fatalf("%d banks", len(a.Banks))
	}
	r, err := a.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	if r.AreaMM2 <= 0 || r.Power <= 0 || r.EnergyPerSample <= 0 {
		t.Fatalf("report: %+v", r)
	}
	// Pipeline cycle is the max bank pass latency; sample latency covers
	// all banks plus the interfaces, so it must exceed the cycle.
	if r.SampleLatency <= r.PipelineCycle {
		t.Error("sample latency should exceed the pipeline cycle")
	}
	want := 0.0
	for _, b := range a.Banks {
		if b.PassPerf.Latency > want {
			want = b.PassPerf.Latency
		}
	}
	if math.Abs(r.PipelineCycle-want) > 1e-18 {
		t.Errorf("pipeline cycle %v, want max bank latency %v", r.PipelineCycle, want)
	}
	if r.ErrorWorst <= 0 || r.ErrorWorst > 1 {
		t.Errorf("worst error %v", r.ErrorWorst)
	}
	if a.TotalUnits() != 3 || a.TotalCrossbars() != 6 {
		t.Errorf("units %d crossbars %d", a.TotalUnits(), a.TotalCrossbars())
	}
}

func TestAcceleratorErrors(t *testing.T) {
	d := refDesign(128, 0)
	if _, err := NewAccelerator(d, nil, [2]int{128, 128}); err == nil {
		t.Error("empty layer stack accepted")
	}
	if _, err := NewAccelerator(d, []LayerDims{{Rows: 0, Cols: 1, Passes: 1}}, [2]int{128, 128}); err == nil {
		t.Error("bad layer accepted")
	}
	bad := refDesign(128, 0)
	bad.WeightBits = 0
	if _, err := NewAccelerator(bad, []LayerDims{{Rows: 4, Cols: 4, Passes: 1}}, [2]int{128, 128}); err == nil {
		t.Error("bad design accepted")
	}
	if _, err := NewAccelerator(d, []LayerDims{{Rows: 4, Cols: 4, Passes: 1}}, [2]int{0, 1}); err == nil {
		t.Error("bad interface accepted")
	}
}

// Multi-layer error accumulates across banks (Eq. 15): a deeper stack of
// the same layer has a larger final worst error.
func TestErrorAccumulatesAcrossLayers(t *testing.T) {
	d := refDesign(128, 0)
	layer := LayerDims{Rows: 512, Cols: 512, Passes: 1}
	one, err := NewAccelerator(d, []LayerDims{layer}, [2]int{128, 128})
	if err != nil {
		t.Fatal(err)
	}
	three, err := NewAccelerator(d, []LayerDims{layer, layer, layer}, [2]int{128, 128})
	if err != nil {
		t.Fatal(err)
	}
	r1, err := one.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	r3, err := three.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	if r3.ErrorWorst <= r1.ErrorWorst {
		t.Fatalf("3-layer worst %v not above 1-layer %v", r3.ErrorWorst, r1.ErrorWorst)
	}
}

func TestControllerRun(t *testing.T) {
	d := refDesign(128, 0)
	a, err := NewAccelerator(d, []LayerDims{{Rows: 128, Cols: 64, Passes: 1}}, [2]int{128, 128})
	if err != nil {
		t.Fatal(err)
	}
	ctl := &Controller{Accel: a}
	prog := append(ProgramNetwork(a), InferSample(a)...)
	st, err := ctl.Run(prog)
	if err != nil {
		t.Fatal(err)
	}
	if st.Instructions != len(prog) || st.Time <= 0 || st.Energy <= 0 {
		t.Fatalf("stats: %+v", st)
	}
	// Loading weights costs much more than one inference (the paper's
	// motivation for fixed weights).
	write, err := ctl.Run(ProgramNetwork(a))
	if err != nil {
		t.Fatal(err)
	}
	infer, err := ctl.Run(InferSample(a))
	if err != nil {
		t.Fatal(err)
	}
	if write.Energy <= infer.Energy {
		t.Errorf("write energy %v should exceed inference energy %v", write.Energy, infer.Energy)
	}
	// Error paths.
	if _, err := ctl.Run([]Instruction{{Op: OpCompute, Bank: 7}}); err == nil {
		t.Error("bad bank accepted")
	}
	if _, err := ctl.Run([]Instruction{{Op: OpRead, Bank: 0, Count: 0}}); err == nil {
		t.Error("zero-count read accepted")
	}
	if _, err := ctl.Run([]Instruction{{Op: OpWrite, Bank: 0, Count: 0}}); err == nil {
		t.Error("zero-count write accepted")
	}
	if _, err := ctl.Run([]Instruction{{Op: Opcode(9), Bank: 0}}); err == nil {
		t.Error("unknown opcode accepted")
	}
}

func TestOpcodeString(t *testing.T) {
	for op, want := range map[Opcode]string{OpWrite: "WRITE", OpRead: "READ", OpCompute: "COMPUTE"} {
		if op.String() != want {
			t.Errorf("%d -> %q", int(op), op.String())
		}
	}
	if Opcode(9).String() != "Opcode(9)" {
		t.Error("unknown opcode String")
	}
}

func TestFromConfig(t *testing.T) {
	src := `
Network_Type = CNN
Network_Scale = 1152x256, 256x10
Crossbar_Size = 64
CMOS_Tech = 45
Interconnect_Tech = 45
Parallelism_Degree = 8
Weight_Bits = 4
Data_Bits = 8
`
	cfg, err := config.Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	d, layers, err := FromConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if d.CrossbarSize != 64 || d.Parallelism != 8 {
		t.Errorf("design: %+v", d)
	}
	if d.Neuron != periph.NeuronReLU {
		t.Errorf("CNN should select ReLU, got %v", d.Neuron)
	}
	if len(layers) != 2 || layers[0].Rows != 1152 || layers[0].PoolK != cfg.PoolingSize {
		t.Errorf("layers: %+v", layers)
	}
	// The whole chain builds and evaluates.
	a, err := NewAccelerator(&d, layers, [2]int(cfg.InterfaceNumber))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Evaluate(); err != nil {
		t.Fatal(err)
	}
}

func TestFromConfigNeuronByType(t *testing.T) {
	for typ, want := range map[string]periph.NeuronKind{
		"ANN": periph.NeuronSigmoid,
		"SNN": periph.NeuronIntegrateFire,
		"CNN": periph.NeuronReLU,
	} {
		cfg := config.Default()
		cfg.NetworkType = typ
		cfg.NetworkScale = []config.LayerShape{{Rows: 64, Cols: 64}}
		d, _, err := FromConfig(cfg)
		if err != nil {
			t.Fatalf("%s: %v", typ, err)
		}
		if d.Neuron != want {
			t.Errorf("%s -> %v, want %v", typ, d.Neuron, want)
		}
	}
}

func TestFromConfigErrors(t *testing.T) {
	base := func() config.Config {
		cfg := config.Default()
		cfg.NetworkScale = []config.LayerShape{{Rows: 64, Cols: 64}}
		return cfg
	}
	cases := []func(*config.Config){
		func(c *config.Config) { c.NetworkScale = nil },
		func(c *config.Config) { c.CMOSTech = 77 },
		func(c *config.Config) { c.InterconnectTech = 77 },
		func(c *config.Config) { c.MemristorModel = "FeFET" },
		func(c *config.Config) { c.CellType = "2T2R" },
		func(c *config.Config) { c.ADCDesign = "Sigma" },
	}
	for i, mutate := range cases {
		cfg := base()
		mutate(&cfg)
		if _, _, err := FromConfig(cfg); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestLayerDimsValidate(t *testing.T) {
	good := LayerDims{Rows: 4, Cols: 4, Passes: 1}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []LayerDims{
		{Rows: 0, Cols: 4, Passes: 1},
		{Rows: 4, Cols: 0, Passes: 1},
		{Rows: 4, Cols: 4, Passes: 0},
		{Rows: 4, Cols: 4, Passes: 1, PoolK: -1},
		{Rows: 4, Cols: 4, Passes: 1, OutBufLen: -1},
		{Rows: 4, Cols: 4, Passes: 1, OutChannels: -1},
	}
	for i, l := range bad {
		l := l
		if err := l.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestFromConfigInnerPipeline(t *testing.T) {
	cfg := config.Default()
	cfg.NetworkScale = []config.LayerShape{{Rows: 64, Cols: 64}}
	cfg.InnerPipeline = true
	d, _, err := FromConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !d.InnerPipeline {
		t.Fatal("InnerPipeline not propagated")
	}
}

// Property: bank area and energy are monotone in the layer width (more
// output columns can only add units, neurons, and buffers).
func TestBankMonotoneInWidth(t *testing.T) {
	d := refDesign(128, 0)
	prevArea, prevEnergy := 0.0, 0.0
	for _, cols := range []int{64, 128, 512, 1024, 2048} {
		b, err := NewBank(d, LayerDims{Rows: 512, Cols: cols, Passes: 1})
		if err != nil {
			t.Fatal(err)
		}
		if b.PassPerf.Area <= prevArea {
			t.Fatalf("cols %d: area %v not above %v", cols, b.PassPerf.Area, prevArea)
		}
		if b.PassPerf.DynamicEnergy <= prevEnergy {
			t.Fatalf("cols %d: energy %v not above %v", cols, b.PassPerf.DynamicEnergy, prevEnergy)
		}
		prevArea, prevEnergy = b.PassPerf.Area, b.PassPerf.DynamicEnergy
	}
}

// Property: halving the crossbar size at fixed layer roughly doubles the
// bank area (the Table V scaling law).
func TestBankAreaScalingLaw(t *testing.T) {
	layer := LayerDims{Rows: 2048, Cols: 1024, Passes: 1}
	var prev float64
	for _, size := range []int{512, 256, 128, 64, 32, 16} {
		b, err := NewBank(refDesign(size, 0), layer)
		if err != nil {
			t.Fatal(err)
		}
		if prev > 0 {
			ratio := b.PassPerf.Area / prev
			if ratio < 1.4 || ratio > 3.0 {
				t.Fatalf("size %d: area grew %.2fx on halving, want ~2x", size, ratio)
			}
		}
		prev = b.PassPerf.Area
	}
}
