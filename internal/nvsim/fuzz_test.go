package nvsim

import (
	"strings"
	"testing"
)

// FuzzImport checks the NVSim report parser never panics, and that accepted
// inputs survive an Export/Import cycle.
func FuzzImport(f *testing.F) {
	f.Add("[a]\nArea = 1 um^2\n")
	f.Add("[sub]\nRead Latency : 2.5 ns\nLeakage Power = 1 mW\n")
	f.Add("# comment\n[x]\nDynamic Energy = 3 pJ\nUnknown Row = 7\n")
	f.Add("[m]\nArea = 0.5 mm^2\nLatency = 1 us\n")
	f.Fuzz(func(t *testing.T, src string) {
		mods, err := Import(strings.NewReader(src))
		if err != nil {
			return
		}
		var sb strings.Builder
		if err := Export(&sb, mods); err != nil {
			return // reserved characters in fuzzer-chosen names are rejected
		}
		back, err := Import(strings.NewReader(sb.String()))
		if err != nil {
			t.Fatalf("Export output failed to re-Import: %v\n%s", err, sb.String())
		}
		if len(back) != len(mods) {
			t.Fatalf("module count drifted: %d vs %d", len(back), len(mods))
		}
	})
}
