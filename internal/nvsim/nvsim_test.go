package nvsim

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"mnsim/internal/periph"
	"mnsim/internal/tech"
)

func TestExportImportRoundTrip(t *testing.T) {
	n := tech.MustNode(45)
	sig, err := periph.Neuron(n, periph.NeuronSigmoid, 8)
	if err != nil {
		t.Fatal(err)
	}
	adc, err := periph.ADC(n, periph.ADCSAR, 8)
	if err != nil {
		t.Fatal(err)
	}
	in := map[string]periph.Perf{"sigmoid": sig, "sar_adc": adc}
	var sb strings.Builder
	if err := Export(&sb, in); err != nil {
		t.Fatal(err)
	}
	out, err := Import(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("round trip produced %d modules", len(out))
	}
	for name, want := range in {
		got, ok := out[name]
		if !ok {
			t.Fatalf("module %q lost", name)
		}
		near := func(a, b float64) bool { return math.Abs(a-b) <= 1e-9*(1+math.Abs(b)) }
		if !near(got.Area, want.Area) || !near(got.DynamicEnergy, want.DynamicEnergy) ||
			!near(got.StaticPower, want.StaticPower) || !near(got.Latency, want.Latency) {
			t.Fatalf("%s: got %+v, want %+v", name, got, want)
		}
	}
}

// Property: round trip preserves any positive Perf to relative 1e-9.
func TestRoundTripProperty(t *testing.T) {
	f := func(a, e, p, l float64) bool {
		perf := periph.Perf{
			Area:          math.Abs(a),
			DynamicEnergy: math.Abs(e) * 1e-12,
			StaticPower:   math.Abs(p) * 1e-6,
			Latency:       math.Abs(l) * 1e-9,
		}
		for _, v := range []float64{perf.Area, perf.DynamicEnergy, perf.StaticPower, perf.Latency} {
			if math.IsNaN(v) || math.IsInf(v, 0) || v > 1e30 {
				return true
			}
		}
		var sb strings.Builder
		if err := Export(&sb, map[string]periph.Perf{"m": perf}); err != nil {
			return false
		}
		out, err := Import(strings.NewReader(sb.String()))
		if err != nil {
			return false
		}
		got := out["m"]
		near := func(x, y float64) bool { return math.Abs(x-y) <= 1e-9*(1+math.Abs(y)) }
		return near(got.Area, perf.Area) && near(got.DynamicEnergy, perf.DynamicEnergy) &&
			near(got.StaticPower, perf.StaticPower) && near(got.Latency, perf.Latency)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestImportRealNVSimStyle(t *testing.T) {
	src := `
# NVSim-style output with extra rows MNSIM ignores
[subarray]
Area = 0.5 mm^2
Read Latency : 2.5 ns
Read Dynamic Energy = 12 pJ
Leakage Power = 1.5 mW
Write Latency : 10 ns
Number of Banks : 4
`
	out, err := Import(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	p := out["subarray"]
	if p.Area != 0.5e6 {
		t.Errorf("area = %v um², want 5e5", p.Area)
	}
	if math.Abs(p.Latency-2.5e-9) > 1e-18 {
		t.Errorf("latency = %v", p.Latency)
	}
	if math.Abs(p.DynamicEnergy-12e-12) > 1e-21 {
		t.Errorf("energy = %v", p.DynamicEnergy)
	}
	if math.Abs(p.StaticPower-1.5e-3) > 1e-12 {
		t.Errorf("power = %v", p.StaticPower)
	}
}

func TestImportErrors(t *testing.T) {
	cases := map[string]string{
		"empty":            "",
		"no section":       "Area = 1 um^2\n",
		"malformed header": "[oops\nArea = 1 um^2\n",
		"empty section":    "[]\n",
		"duplicate":        "[a]\nArea=1 um^2\n[a]\n",
		"no separator":     "[a]\nArea 1\n",
		"bad number":       "[a]\nArea = x um^2\n",
		"bad unit":         "[a]\nArea = 1 parsec\n",
		"empty value":      "[a]\nArea =\n",
	}
	for name, src := range cases {
		if _, err := Import(strings.NewReader(src)); err == nil {
			t.Errorf("%s: accepted %q", name, src)
		}
	}
}

func TestExportRejectsReservedNames(t *testing.T) {
	var sb strings.Builder
	if err := Export(&sb, map[string]periph.Perf{"a]b": {}}); err == nil {
		t.Fatal("reserved name accepted")
	}
}

func TestExportSortedSections(t *testing.T) {
	var sb strings.Builder
	err := Export(&sb, map[string]periph.Perf{"zeta": {}, "alpha": {}})
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if strings.Index(out, "[alpha]") > strings.Index(out, "[zeta]") {
		t.Fatalf("sections not sorted:\n%s", out)
	}
}

func TestUnitlessValue(t *testing.T) {
	out, err := Import(strings.NewReader("[a]\nArea = 42\n"))
	if err != nil {
		t.Fatal(err)
	}
	if out["a"].Area != 42 {
		t.Fatalf("area = %v", out["a"].Area)
	}
}
