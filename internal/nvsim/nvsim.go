// Package nvsim implements the cooperation interface of Section III.E.4:
// MNSIM's computation-oriented modules can be exported in NVSim's
// sectioned key = value report format, and NVSim-style results can be
// imported back as customized module performance records. This lets users
// "easily introduce some NVSim results into MNSIM; or use MNSIM results in
// NVSim by adding the circuit models".
package nvsim

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"mnsim/internal/periph"
)

// Export writes the named modules in the NVSim report format. Modules are
// emitted in sorted name order for reproducible files.
func Export(w io.Writer, modules map[string]periph.Perf) error {
	names := make([]string, 0, len(modules))
	for name := range modules {
		if strings.ContainsAny(name, "[]\n") {
			return fmt.Errorf("nvsim: module name %q contains reserved characters", name)
		}
		names = append(names, name)
	}
	sort.Strings(names)
	bw := bufio.NewWriter(w)
	for _, name := range names {
		p := modules[name]
		fmt.Fprintf(bw, "[%s]\n", name)
		fmt.Fprintf(bw, "Area = %g um^2\n", p.Area)
		fmt.Fprintf(bw, "Dynamic Energy = %g pJ\n", p.DynamicEnergy*1e12)
		fmt.Fprintf(bw, "Leakage Power = %g uW\n", p.StaticPower*1e6)
		fmt.Fprintf(bw, "Latency = %g ns\n", p.Latency*1e9)
		fmt.Fprintln(bw)
	}
	return bw.Flush()
}

// Import parses an NVSim-style report into module performance records.
// Recognised keys are Area, Dynamic Energy, Leakage Power, and Latency with
// the unit spellings NVSim prints (mm^2/um^2, nJ/pJ, mW/uW, us/ns/ps).
// Unknown keys are ignored so real NVSim output (which carries many more
// rows) imports cleanly.
func Import(r io.Reader) (map[string]periph.Perf, error) {
	out := map[string]periph.Perf{}
	sc := bufio.NewScanner(r)
	var current string
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if strings.HasPrefix(line, "[") {
			if !strings.HasSuffix(line, "]") {
				return nil, fmt.Errorf("nvsim: line %d: malformed section %q", lineNo, line)
			}
			current = strings.TrimSuffix(strings.TrimPrefix(line, "["), "]")
			if current == "" {
				return nil, fmt.Errorf("nvsim: line %d: empty section name", lineNo)
			}
			if _, dup := out[current]; dup {
				return nil, fmt.Errorf("nvsim: line %d: duplicate section %q", lineNo, current)
			}
			out[current] = periph.Perf{}
			continue
		}
		if current == "" {
			return nil, fmt.Errorf("nvsim: line %d: value outside any section", lineNo)
		}
		key, val, ok := strings.Cut(line, "=")
		if !ok {
			// NVSim also prints "key : value" rows.
			key, val, ok = strings.Cut(line, ":")
			if !ok {
				return nil, fmt.Errorf("nvsim: line %d: no separator in %q", lineNo, line)
			}
		}
		key = strings.TrimSpace(key)
		v, err := parseQuantity(strings.TrimSpace(val))
		if err != nil {
			return nil, fmt.Errorf("nvsim: line %d: %w", lineNo, err)
		}
		p := out[current]
		switch strings.ToLower(key) {
		case "area":
			p.Area = v
		case "dynamic energy", "read dynamic energy":
			p.DynamicEnergy = v
		case "leakage power", "static power":
			p.StaticPower = v
		case "latency", "read latency":
			p.Latency = v
		default:
			// ignore rows MNSIM does not consume
		}
		out[current] = p
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("nvsim: no sections found")
	}
	return out, nil
}

// parseQuantity converts "12.3 pJ" style values into SI base units (areas
// into um², matching periph.Perf conventions).
func parseQuantity(s string) (float64, error) {
	fields := strings.Fields(s)
	if len(fields) == 0 {
		return 0, fmt.Errorf("empty value")
	}
	v, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return 0, fmt.Errorf("bad number %q", fields[0])
	}
	if len(fields) == 1 {
		return v, nil
	}
	mult, ok := unitScale[fields[1]]
	if !ok {
		return 0, fmt.Errorf("unknown unit %q", fields[1])
	}
	return v * mult, nil
}

var unitScale = map[string]float64{
	// areas normalise to um² (the periph.Perf convention)
	"mm^2": 1e6, "um^2": 1, "mm2": 1e6, "um2": 1,
	// energies to joules
	"J": 1, "mJ": 1e-3, "uJ": 1e-6, "nJ": 1e-9, "pJ": 1e-12, "fJ": 1e-15,
	// powers to watts
	"W": 1, "mW": 1e-3, "uW": 1e-6, "nW": 1e-9,
	// times to seconds
	"s": 1, "ms": 1e-3, "us": 1e-6, "ns": 1e-9, "ps": 1e-12,
}
