package device

import (
	"math"
	"math/rand"
	"testing"
)

func TestMeanConductanceMatchesHarmonicMean(t *testing.T) {
	m := RRAM()
	want := 1 / m.HarmonicMeanR()
	if got := m.MeanConductance(); math.Abs(got-want)/want > 1e-12 {
		t.Fatalf("MeanConductance = %v, want %v", got, want)
	}
}

// The analytic conductance moments must match Monte-Carlo estimates over
// the uniform level population.
func TestConductanceMomentsMatchSampling(t *testing.T) {
	m := RRAM()
	rng := rand.New(rand.NewSource(1))
	const trials = 200000
	var s1, s2 float64
	for i := 0; i < trials; i++ {
		g, err := m.LevelConductance(rng.Intn(m.Levels()))
		if err != nil {
			t.Fatal(err)
		}
		s1 += g
		s2 += g * g
	}
	s1 /= trials
	s2 /= trials
	if math.Abs(s1-m.MeanConductance())/m.MeanConductance() > 0.01 {
		t.Errorf("sampled mean %v vs analytic %v", s1, m.MeanConductance())
	}
	if math.Abs(s2-m.MeanSquareConductance())/m.MeanSquareConductance() > 0.02 {
		t.Errorf("sampled second moment %v vs analytic %v", s2, m.MeanSquareConductance())
	}
}

func TestAvgPowerFactorLimits(t *testing.T) {
	m := RRAM()
	// Degenerate drive returns the neutral factor.
	if got := m.AvgPowerFactor(0); got != 1 {
		t.Fatalf("AvgPowerFactor(0) = %v", got)
	}
	// Linear device limit: factor -> 1.
	lin := m
	lin.NonlinearVc = 1e6
	if got := lin.AvgPowerFactor(0.3); math.Abs(got-1) > 1e-6 {
		t.Fatalf("linear limit = %v", got)
	}
	// The reference device straddles its calibration point, conducting
	// slightly more on average than the linear prediction.
	f := m.AvgPowerFactor(2 * m.ReadVoltage)
	if f <= 1 || f > 1.3 {
		t.Fatalf("factor = %v, want slightly above 1", f)
	}
}

// The analytic factor must match numerical integration of v·I(v).
func TestAvgPowerFactorMatchesIntegral(t *testing.T) {
	m := RRAM()
	vmax := 0.3
	const steps = 20000
	var num float64
	r := 1.0 // cancels
	for i := 0; i < steps; i++ {
		v := vmax * (float64(i) + 0.5) / steps
		num += v * m.Current(v, r)
	}
	num *= vmax / steps
	linear := vmax * vmax * vmax / 3 / r
	want := num / linear
	if got := m.AvgPowerFactor(vmax); math.Abs(got-want)/want > 1e-4 {
		t.Fatalf("factor %v vs integral %v", got, want)
	}
}
