package device

import (
	"math"
	"testing"
	"testing/quick"
)

func TestBuiltinModelsValid(t *testing.T) {
	for _, m := range []Model{RRAM(), PCM()} {
		if err := m.Validate(); err != nil {
			t.Errorf("%s: %v", m.Name, err)
		}
	}
}

func TestByName(t *testing.T) {
	if m, err := ByName("RRAM"); err != nil || m.Name != "RRAM" {
		t.Fatalf("ByName(RRAM) = %v, %v", m.Name, err)
	}
	if m, err := ByName("PCM"); err != nil || m.Name != "PCM" {
		t.Fatalf("ByName(PCM) = %v, %v", m.Name, err)
	}
	if _, err := ByName("FeFET"); err == nil {
		t.Fatal("ByName(FeFET) should fail")
	}
}

func TestParseCellType(t *testing.T) {
	for s, want := range map[string]CellType{"1T1R": Cell1T1R, "0T1R": Cell0T1R} {
		got, err := ParseCellType(s)
		if err != nil || got != want {
			t.Errorf("ParseCellType(%q) = %v, %v", s, got, err)
		}
		if got.String() != s {
			t.Errorf("String() = %q, want %q", got.String(), s)
		}
	}
	if _, err := ParseCellType("2T2R"); err == nil {
		t.Fatal("ParseCellType(2T2R) should fail")
	}
	if s := CellType(9).String(); s != "CellType(9)" {
		t.Fatalf("unknown CellType String = %q", s)
	}
}

func TestValidateRejectsBadModels(t *testing.T) {
	bad := []func(*Model){
		func(m *Model) { m.RMin = -1 },
		func(m *Model) { m.RMax = m.RMin / 2 },
		func(m *Model) { m.LevelBits = 0 },
		func(m *Model) { m.LevelBits = 11 },
		func(m *Model) { m.ReadVoltage = 0 },
		func(m *Model) { m.NonlinearVc = 0 },
		func(m *Model) { m.Variation = 0.6 },
		func(m *Model) { m.FeatureNM = 0 },
	}
	for i, mutate := range bad {
		m := RRAM()
		mutate(&m)
		if err := m.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted invalid model", i)
		}
	}
}

func TestLevelResistanceEndpoints(t *testing.T) {
	m := RRAM()
	r0, err := m.LevelResistance(0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r0-m.RMax)/m.RMax > 1e-12 {
		t.Errorf("level 0 = %v, want RMax %v", r0, m.RMax)
	}
	rTop, err := m.LevelResistance(m.Levels() - 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rTop-m.RMin)/m.RMin > 1e-12 {
		t.Errorf("top level = %v, want RMin %v", rTop, m.RMin)
	}
	if _, err := m.LevelResistance(-1); err == nil {
		t.Error("negative level should fail")
	}
	if _, err := m.LevelResistance(m.Levels()); err == nil {
		t.Error("overflow level should fail")
	}
}

// Levels are uniform in conductance: the weight stored by level i must be
// linear in i, which is what makes the crossbar an analog MVM engine.
func TestLevelsLinearInConductance(t *testing.T) {
	m := RRAM()
	g0, _ := m.LevelConductance(0)
	g1, _ := m.LevelConductance(1)
	step := g1 - g0
	for i := 2; i < m.Levels(); i++ {
		gi, err := m.LevelConductance(i)
		if err != nil {
			t.Fatal(err)
		}
		want := g0 + float64(i)*step
		if math.Abs(gi-want)/want > 1e-9 {
			t.Fatalf("level %d conductance %v, want %v", i, gi, want)
		}
	}
}

func TestHarmonicMean(t *testing.T) {
	m := Model{RMin: 500, RMax: 500e3}
	want := 2 / (1/500.0 + 1/500e3)
	if got := m.HarmonicMeanR(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("HarmonicMeanR = %v, want %v", got, want)
	}
}

// The I-V calibration contract: at the read voltage the secant resistance
// equals the programmed state exactly.
func TestEffectiveRCalibratedAtReadVoltage(t *testing.T) {
	m := RRAM()
	for _, r := range []float64{m.RMin, 1e3, 10e3, m.RMax} {
		got := m.EffectiveR(m.ReadVoltage, r)
		if math.Abs(got-r)/r > 1e-12 {
			t.Errorf("EffectiveR(Vread, %v) = %v", r, got)
		}
	}
}

// Below the read voltage the sinh device looks more resistive; above, less.
func TestEffectiveRMonotoneInVoltage(t *testing.T) {
	m := RRAM()
	r := 10e3
	low := m.EffectiveR(m.ReadVoltage/4, r)
	high := m.EffectiveR(m.ReadVoltage*1.5, r)
	if low <= r {
		t.Errorf("EffectiveR at low V = %v, want > %v", low, r)
	}
	if high >= r {
		t.Errorf("EffectiveR at high V = %v, want < %v", high, r)
	}
}

func TestEffectiveRZeroVoltageLimit(t *testing.T) {
	m := RRAM()
	r := 10e3
	atZero := m.EffectiveR(0, r)
	near := m.EffectiveR(1e-9, r)
	if math.Abs(atZero-near)/near > 1e-6 {
		t.Fatalf("zero-voltage limit %v disagrees with V→0 value %v", atZero, near)
	}
}

// Property: the I-V law is odd-symmetric and strictly increasing.
func TestCurrentOddAndMonotone(t *testing.T) {
	m := RRAM()
	f := func(v float64) bool {
		v = math.Mod(math.Abs(v), 1.0) // keep in a sane voltage range
		i1 := m.Current(v, 10e3)
		i2 := m.Current(-v, 10e3)
		if math.Abs(i1+i2) > 1e-15 {
			return false
		}
		return m.Current(v+0.01, 10e3) > i1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: conductance dI/dV matches the numerical derivative of Current.
func TestConductanceMatchesDerivative(t *testing.T) {
	m := RRAM()
	const h = 1e-7
	for _, v := range []float64{-0.4, -0.1, 0, 0.05, 0.2, 0.45} {
		num := (m.Current(v+h, 10e3) - m.Current(v-h, 10e3)) / (2 * h)
		ana := m.Conductance(v, 10e3)
		if math.Abs(num-ana)/math.Abs(ana) > 1e-5 {
			t.Errorf("V=%v: dI/dV numeric %v vs analytic %v", v, num, ana)
		}
	}
}

func TestWorstCaseR(t *testing.T) {
	m := RRAM()
	m.Variation = 0.2
	if got := m.WorstCaseR(1000, +1); math.Abs(got-1200) > 1e-9 {
		t.Errorf("+sigma: %v", got)
	}
	if got := m.WorstCaseR(1000, -1); math.Abs(got-800) > 1e-9 {
		t.Errorf("-sigma: %v", got)
	}
}

func TestCellArea(t *testing.T) {
	m := RRAM() // 1T1R, W/L=2, F=45nm
	f := 0.045
	want := 3 * (2.0 + 1) * f * f
	if got := m.CellArea(); math.Abs(got-want)/want > 1e-12 {
		t.Errorf("1T1R area = %v, want %v", got, want)
	}
	m.Type = Cell0T1R
	want = 4 * f * f
	if got := m.CellArea(); math.Abs(got-want)/want > 1e-12 {
		t.Errorf("0T1R area = %v, want %v", got, want)
	}
	// Cross-point cells are denser than MOS-accessed cells.
	m2 := RRAM()
	if m.CellArea() >= m2.CellArea() {
		t.Error("cross-point cell should be smaller than 1T1R")
	}
}

func TestQuantizeWeight(t *testing.T) {
	m := RRAM()
	lvl, r, err := m.QuantizeWeight(0)
	if err != nil || lvl != 0 || math.Abs(r-m.RMax)/m.RMax > 1e-12 {
		t.Fatalf("QuantizeWeight(0) = %d, %v, %v", lvl, r, err)
	}
	lvl, r, err = m.QuantizeWeight(1)
	if err != nil || lvl != m.Levels()-1 || math.Abs(r-m.RMin)/m.RMin > 1e-12 {
		t.Fatalf("QuantizeWeight(1) = %d, %v, %v", lvl, r, err)
	}
	if _, _, err := m.QuantizeWeight(1.5); err == nil {
		t.Fatal("QuantizeWeight(1.5) should fail")
	}
	if _, _, err := m.QuantizeWeight(-0.1); err == nil {
		t.Fatal("QuantizeWeight(-0.1) should fail")
	}
}

// Property: quantization is monotone — larger weights never map to lower levels.
func TestQuantizeMonotone(t *testing.T) {
	m := RRAM()
	f := func(a, b float64) bool {
		a, b = math.Abs(math.Mod(a, 1)), math.Abs(math.Mod(b, 1))
		if a > b {
			a, b = b, a
		}
		la, _, err1 := m.QuantizeWeight(a)
		lb, _, err2 := m.QuantizeWeight(b)
		return err1 == nil && err2 == nil && la <= lb
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEnergies(t *testing.T) {
	m := RRAM()
	if e := m.ReadEnergy(10e-9); e <= 0 {
		t.Errorf("ReadEnergy = %v", e)
	}
	if e := m.WriteEnergy(); e <= m.ReadEnergy(10e-9) {
		t.Errorf("WriteEnergy %v should exceed a 10ns ReadEnergy %v (high-writing-cost problem)", e, m.ReadEnergy(10e-9))
	}
}
