// Package device models the memristor cell: its programmable resistance
// states, non-linear I–V characteristic, stochastic variation, and layout
// area. It corresponds to the Memristor_Model, Cell_Type, and
// Resistance_Range entries of MNSIM's configuration list (Table I) and to
// the area models of Section V.A (Eq. 7–8 of the paper).
package device

import (
	"fmt"
	"math"
)

// CellType selects the cell access structure.
type CellType int

const (
	// Cell1T1R is a MOS-accessed cell (one transistor, one memristor).
	Cell1T1R CellType = iota
	// Cell0T1R is a cross-point cell without an access device.
	Cell0T1R
)

// String implements fmt.Stringer.
func (c CellType) String() string {
	switch c {
	case Cell1T1R:
		return "1T1R"
	case Cell0T1R:
		return "0T1R"
	default:
		return fmt.Sprintf("CellType(%d)", int(c))
	}
}

// ParseCellType converts the configuration-file spelling into a CellType.
func ParseCellType(s string) (CellType, error) {
	switch s {
	case "1T1R":
		return Cell1T1R, nil
	case "0T1R":
		return Cell0T1R, nil
	default:
		return 0, fmt.Errorf("device: unknown cell type %q (want 1T1R or 0T1R)", s)
	}
}

// Model describes one memristor device technology. The zero value is not
// usable; construct models with RRAM, PCM, or New.
type Model struct {
	// Name identifies the technology ("RRAM", "PCM", ...).
	Name string
	// RMin and RMax bound the programmable resistance range in ohms
	// (Table I default [500, 500k]).
	RMin, RMax float64
	// LevelBits is the programming precision of one cell in bits; the cell
	// stores 2^LevelBits distinguishable resistance levels. The large-bank
	// case study uses the 7-bit device of Gao et al.
	LevelBits int
	// ReadVoltage is the calibration voltage in volts: programming verifies
	// each resistance level at this bias, so the level is exact there and
	// deviates elsewhere through the non-linear I–V law. The reference
	// crossbar design drives inputs at twice this value (program-verify at
	// half bias), so a cell's operating point moves across the calibration
	// point as the crossbar size changes — the mechanism behind the
	// U-shaped error-versus-size curve of Table V.
	ReadVoltage float64
	// WriteVoltage and WriteLatency characterise programming; they matter
	// for the WRITE instruction only since compute never rewrites cells.
	WriteVoltage float64
	WriteLatency float64
	// SwitchLatency is the intrinsic cell read/compute response time from
	// the device datasheet (not captured by the wire-RC transient model).
	SwitchLatency float64
	// CellCap is the parasitic capacitance one cell presents to its column
	// node in farads (cell plus access-device junction).
	CellCap float64
	// NonlinearVc is the characteristic voltage of the sinh-shaped I–V curve
	// I(V) = A·sinh(V/Vc). Smaller Vc means a more non-linear device.
	NonlinearVc float64
	// Endurance is the number of write cycles a cell survives; it bounds
	// on-chip training (Section VIII future work) and motivates the
	// fixed-weight inference deployment the paper analyses.
	Endurance float64
	// Variation is the maximum fractional resistance deviation sigma
	// (0 … 0.3 across published devices); 0 reproduces the paper's
	// noise-free reference results.
	Variation float64
	// FeatureNM is the memristor feature size F in nanometres used by the
	// cell area models.
	FeatureNM float64
	// AccessWL is the W/L ratio of the access transistor for 1T1R cells.
	AccessWL float64
	// Type selects 1T1R or 0T1R.
	Type CellType
}

// RRAM returns the reference RRAM model used throughout the experiments:
// a computing-oriented high-resistance-state device (100 kΩ – 10 MΩ) with
// 7-bit programmable levels. The paper's configuration table lists a
// memory-style [500 Ω, 500 kΩ] default; a physical crossbar solve with
// shared-wire IR drop shows such low-resistance states are unusable for
// computation at the paper's crossbar sizes, so — like the follow-on
// MNSIM 2.0 and NeuroSim platforms — the compute reference device uses
// high-resistance states. The substitution is recorded in DESIGN.md.
func RRAM() Model {
	return Model{
		Name:          "RRAM",
		RMin:          100e3,
		RMax:          10e6,
		LevelBits:     7,
		ReadVoltage:   0.15,
		WriteVoltage:  2.0,
		WriteLatency:  100e-9, // program-and-verify pulse train
		SwitchLatency: 0.5e-9,
		CellCap:       2e-15,
		Endurance:     1e9,
		NonlinearVc:   0.40,
		Variation:     0,
		FeatureNM:     45,
		AccessWL:      2,
		Type:          Cell1T1R,
	}
}

// PCM returns a phase-change-memory model: higher resistance window, slower
// and more energetic writes than RRAM.
func PCM() Model {
	return Model{
		Name:          "PCM",
		RMin:          500e3,
		RMax:          50e6,
		LevelBits:     4,
		ReadVoltage:   0.10,
		WriteVoltage:  3.0,
		WriteLatency:  100e-9,
		SwitchLatency: 5e-9,
		CellCap:       3e-15,
		Endurance:     1e8,
		NonlinearVc:   0.40,
		Variation:     0,
		FeatureNM:     45,
		AccessWL:      4,
		Type:          Cell1T1R,
	}
}

// ByName returns the built-in model with the given configuration-file name.
func ByName(name string) (Model, error) {
	switch name {
	case "RRAM":
		return RRAM(), nil
	case "PCM":
		return PCM(), nil
	default:
		return Model{}, fmt.Errorf("device: unknown memristor model %q (want RRAM or PCM)", name)
	}
}

// Validate reports whether the model parameters are physically meaningful.
func (m Model) Validate() error {
	switch {
	case m.RMin <= 0 || m.RMax <= m.RMin:
		return fmt.Errorf("device %s: resistance range [%g, %g] invalid", m.Name, m.RMin, m.RMax)
	case m.LevelBits < 1 || m.LevelBits > 10:
		return fmt.Errorf("device %s: level bits %d out of range [1,10]", m.Name, m.LevelBits)
	case m.ReadVoltage <= 0:
		return fmt.Errorf("device %s: read voltage must be positive", m.Name)
	case m.NonlinearVc <= 0:
		return fmt.Errorf("device %s: non-linear Vc must be positive", m.Name)
	case m.Variation < 0 || m.Variation > 0.5:
		return fmt.Errorf("device %s: variation %g out of range [0,0.5]", m.Name, m.Variation)
	case m.FeatureNM <= 0:
		return fmt.Errorf("device %s: feature size must be positive", m.Name)
	}
	return nil
}

// Levels returns the number of programmable resistance levels, 2^LevelBits.
func (m Model) Levels() int { return 1 << uint(m.LevelBits) }

// LevelResistance returns the calibrated resistance of programming level
// lvl in [0, Levels()-1]. Level 0 is RMax (weight 0, minimum conductance)
// and the top level is RMin; intermediate levels are spaced uniformly in
// conductance so that the stored weight is linear in conductance, matching
// the analog matrix-vector product of Eq. 1–2.
func (m Model) LevelResistance(lvl int) (float64, error) {
	n := m.Levels()
	if lvl < 0 || lvl >= n {
		return 0, fmt.Errorf("device %s: level %d out of range [0,%d)", m.Name, lvl, n)
	}
	gMin, gMax := 1/m.RMax, 1/m.RMin
	g := gMin + (gMax-gMin)*float64(lvl)/float64(n-1)
	return 1 / g, nil
}

// LevelConductance is the conductance of programming level lvl in siemens.
func (m Model) LevelConductance(lvl int) (float64, error) {
	r, err := m.LevelResistance(lvl)
	if err != nil {
		return 0, err
	}
	return 1 / r, nil
}

// HarmonicMeanR returns the harmonic mean of RMin and RMax. MNSIM uses it
// as the average-case resistance of all cells when estimating computation
// power (Section V.A).
func (m Model) HarmonicMeanR() float64 {
	return 2 / (1/m.RMin + 1/m.RMax)
}

// Current returns the device current in amperes at voltage v when the cell
// is programmed to calibrated resistance rState. The I–V law is
//
//	I(V) = A · sinh(V/Vc),  A chosen so that V_read / I(V_read) = rState,
//
// i.e. the programmed level is exact at the calibration (read) voltage and
// deviates away from it — the behaviour the accuracy model's R_act term
// captures (Section VI.A). The law is odd-symmetric in V.
func (m Model) Current(v, rState float64) float64 {
	a := m.ReadVoltage / (rState * math.Sinh(m.ReadVoltage/m.NonlinearVc))
	return a * math.Sinh(v/m.NonlinearVc)
}

// Conductance returns the small-signal conductance dI/dV at voltage v for a
// cell programmed to rState; the Newton linearisation of the circuit solver
// stamps this value.
func (m Model) Conductance(v, rState float64) float64 {
	a := m.ReadVoltage / (rState * math.Sinh(m.ReadVoltage/m.NonlinearVc))
	return a / m.NonlinearVc * math.Cosh(v/m.NonlinearVc)
}

// EffectiveR returns the secant (large-signal) resistance V/I(V) of a cell
// programmed to rState when operated at voltage v. At v = ReadVoltage it
// equals rState exactly; at lower operating voltages the sinh law makes the
// device look more resistive. For |v| → 0 the analytic limit is returned.
func (m Model) EffectiveR(v, rState float64) float64 {
	if v == 0 {
		// lim V→0 V / (A sinh(V/Vc)) = Vc/A
		a := m.ReadVoltage / (rState * math.Sinh(m.ReadVoltage/m.NonlinearVc))
		return m.NonlinearVc / a
	}
	return v / m.Current(v, rState)
}

// WorstCaseR applies the maximum device-variation deviation to a calibrated
// resistance: (1 ± Variation) · r, choosing the sign that moves the value
// away from the ideal in the requested direction (+1 or -1).
func (m Model) WorstCaseR(r float64, sign int) float64 {
	if sign >= 0 {
		return r * (1 + m.Variation)
	}
	return r * (1 - m.Variation)
}

// CellArea returns the layout area of one cell in square micrometres,
// following the paper's Eq. 7 (MOS-accessed) and Eq. 8 (cross-point):
//
//	AREA_mos-accessed = 3·(W/L + 1)·F²
//	AREA_cross-point  = 4·F²
func (m Model) CellArea() float64 {
	f := m.FeatureNM * 1e-3 // um
	switch m.Type {
	case Cell1T1R:
		return 3 * (m.AccessWL + 1) * f * f
	default:
		return 4 * f * f
	}
}

// ReadEnergy returns the energy of reading (computing through) one cell for
// duration dt at the read voltage, assuming average-case resistance.
func (m Model) ReadEnergy(dt float64) float64 {
	return m.ReadVoltage * m.ReadVoltage / m.HarmonicMeanR() * dt
}

// WriteEnergy returns the programming energy of one cell, V²/R·t at the
// write voltage against the harmonic-mean resistance.
func (m Model) WriteEnergy() float64 {
	return m.WriteVoltage * m.WriteVoltage / m.HarmonicMeanR() * m.WriteLatency
}

// MeanConductance returns the mean cell conductance of a uniformly
// distributed level population, (g_min + g_max)/2 — the reciprocal of the
// harmonic-mean resistance used by the average-case models.
func (m Model) MeanConductance() float64 {
	return (1/m.RMin + 1/m.RMax) / 2
}

// MeanSquareConductance returns E[g²] of a uniform conductance population,
// (g_max³ − g_min³) / (3·(g_max − g_min)); the second moment feeds the
// decorrelated average-case power model.
func (m Model) MeanSquareConductance() float64 {
	gMax, gMin := 1/m.RMin, 1/m.RMax
	return (gMax*gMax*gMax - gMin*gMin*gMin) / (3 * (gMax - gMin))
}

// AvgPowerFactor returns the ratio of the true average conduction power of
// the sinh device to the linear-resistor prediction, for a drive voltage
// uniformly distributed over [0, vmax]:
//
//	E[v·I(v)] / (E[v²]/R) = 3·Vread / (vmax³·sinh(Vread/Vc)) ·
//	                        [Vc·vmax·cosh(vmax/Vc) − Vc²·sinh(vmax/Vc)]
//
// using the closed form ∫ v·sinh(v/c) dv = c·v·cosh(v/c) − c²·sinh(v/c).
// The factor tends to 1 in the linear limit Vc → ∞; the power models apply
// it to fold the non-linear conduction into the average-case estimate.
func (m Model) AvgPowerFactor(vmax float64) float64 {
	if vmax <= 0 {
		return 1
	}
	c := m.NonlinearVc
	var integral float64
	if vmax/c < 0.01 {
		// The closed form subtracts two nearly equal terms in the linear
		// limit; switch to the series
		// ∫ v·sinh(v/c) dv = V³/(3c) + V⁵/(30c³) + V⁷/(840c⁵) + …
		v3 := vmax * vmax * vmax
		integral = v3/(3*c) + v3*vmax*vmax/(30*c*c*c) + v3*v3*vmax/(840*c*c*c*c*c)
	} else {
		integral = c*vmax*math.Cosh(vmax/c) - c*c*math.Sinh(vmax/c)
	}
	// sinh(x)/x → 1 as x → 0; compute the prefactor the same stable way.
	x := m.ReadVoltage / c
	sinhOverX := math.Sinh(x) / x
	if x < 1e-4 {
		sinhOverX = 1 + x*x/6
	}
	return 3 / (vmax * vmax * vmax * sinhOverX / c) * integral
}

// QuantizeWeight maps an unsigned fixed-point weight w in [0,1] onto the
// nearest programmable level and returns the level index and the calibrated
// resistance. This is the mapping step of the software flow (Fig. 3).
func (m Model) QuantizeWeight(w float64) (lvl int, r float64, err error) {
	if w < 0 || w > 1 {
		return 0, 0, fmt.Errorf("device %s: weight %g outside [0,1]", m.Name, w)
	}
	n := m.Levels()
	lvl = int(math.Round(w * float64(n-1)))
	r, err = m.LevelResistance(lvl)
	return lvl, r, err
}
