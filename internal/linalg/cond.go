package linalg

import "math"

// Cheap spectral condition estimation for the solver diagnostics. The MNA
// conductance matrices are SPD, so the extreme Rayleigh quotients of a few
// (inverse) power iterations bracket the spectrum well enough to tell a
// benign solve (κ ~ 10²) from a pathological one (κ ~ 10⁸, the signature
// of a diverging Newton linearisation with exploding cell conductances).
// This is a diagnostic estimate, not a bound: fixed iteration counts and a
// loose inner tolerance keep it to a small fraction of one Newton solve.

const (
	condPowerIters   = 16
	condInverseIters = 6
	condInnerTol     = 1e-4
	condInnerMaxIter = 400
)

// condStartVector returns the deterministic, non-degenerate start vector
// the estimators iterate from: mixed magnitudes so no eigenvector of a
// structured MNA matrix is exactly orthogonal to it, and fixed so the
// estimate is reproducible run to run (the replay contract).
func condStartVector(n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = 1 + 0.1*float64(i%7)
	}
	return v
}

// rayleigh returns v·Av / v·v.
func rayleigh(a *CSR, v, av []float64, ops *OpCount) float64 {
	a.MulVec(v, av)
	ops.CountSpMV(len(a.Vals), a.N)
	vv := Dot(v, v)
	ops.CountDot(a.N)
	if vv == 0 {
		return 0
	}
	ops.CountDot(a.N)
	ops.CountFlops(1)
	return Dot(v, av) / vv
}

// normalize scales v to unit 2-norm; returns false for a zero vector.
func normalize(v []float64, ops *OpCount) bool {
	n := Norm2(v)
	ops.CountNorm(len(v))
	if n == 0 || math.IsNaN(n) || math.IsInf(n, 0) {
		return false
	}
	for i := range v {
		v[i] /= n
	}
	ops.CountVecOp(len(v), 1)
	return true
}

// ExtremeEigenEstimates estimates the smallest and largest eigenvalues of
// an SPD CSR matrix: λmax by power iteration, λmin by inverse power
// iteration with one loose inner CG solve per step. Both run a fixed,
// deterministic number of iterations from a fixed start vector.
func ExtremeEigenEstimates(a *CSR) (lmin, lmax float64) {
	return ExtremeEigenEstimatesOps(a, nil)
}

// ExtremeEigenEstimatesOps is ExtremeEigenEstimates with operation
// accounting: the power iterations, the inner CG solves, and the Rayleigh
// quotients all land in ops.
func ExtremeEigenEstimatesOps(a *CSR, ops *OpCount) (lmin, lmax float64) {
	n := a.N
	nnz := len(a.Vals)
	av := make([]float64, n)

	v := condStartVector(n)
	for i := 0; i < condPowerIters; i++ {
		a.MulVec(v, av)
		ops.CountSpMV(nnz, n)
		copy(v, av)
		ops.CountBytes(16 * int64(n))
		if !normalize(v, ops) {
			return 0, 0
		}
	}
	lmax = rayleigh(a, v, av, ops)

	w := condStartVector(n)
	normalize(w, ops)
	for i := 0; i < condInverseIters; i++ {
		// One loose CG solve approximates w ← A⁻¹·w; ErrNoConvergence is
		// fine here — the partial iterate still amplifies the small-λ
		// components, which is all inverse iteration needs.
		x, _, err := SolveCG(a, w, nil, CGOptions{Tol: condInnerTol, MaxIter: condInnerMaxIter, Ops: ops})
		if err != nil && x == nil {
			return 0, lmax
		}
		copy(w, x)
		ops.CountBytes(16 * int64(n))
		if !normalize(w, ops) {
			return 0, lmax
		}
	}
	lmin = rayleigh(a, w, av, ops)
	return lmin, lmax
}

// EstimateCond returns the estimated spectral condition number λmax/λmin
// of an SPD matrix, or +Inf when the smallest-eigenvalue estimate
// degenerates to zero (numerically singular as far as the estimator can
// tell).
func EstimateCond(a *CSR) float64 {
	return EstimateCondOps(a, nil)
}

// EstimateCondOps is EstimateCond with operation accounting.
func EstimateCondOps(a *CSR, ops *OpCount) float64 {
	lmin, lmax := ExtremeEigenEstimatesOps(a, ops)
	if lmin <= 0 {
		return math.Inf(1)
	}
	return lmax / lmin
}
