package linalg

import "testing"

// testTridiag builds the SPD tridiagonal test matrix (4 on the diagonal,
// −1 off) used by the analytic op-count assertions.
func testTridiag(t *testing.T, n int) *CSR {
	t.Helper()
	var trips []Coord
	for i := 0; i < n; i++ {
		trips = append(trips, Coord{Row: i, Col: i, Val: 4})
		if i+1 < n {
			trips = append(trips, Coord{Row: i, Col: i + 1, Val: -1})
			trips = append(trips, Coord{Row: i + 1, Col: i, Val: -1})
		}
	}
	m, err := NewCSR(n, trips)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestSolveCGOpCountAnalytic pins the accounting contract documented on
// CGOptions.Ops: for a solve converging in k iterations, SpMVs = k+1,
// Dots = 3k+1, Axpys = 2k, and the flop/byte totals follow the per-kernel
// cost model exactly.
func TestSolveCGOpCountAnalytic(t *testing.T) {
	const n = 32
	a := testTridiag(t, n)
	nnz := len(a.Vals)
	b := make([]float64, n)
	for i := range b {
		b[i] = 1 + float64(i%5)
	}
	var ops OpCount
	_, k, err := SolveCG(a, b, nil, CGOptions{Ops: &ops})
	if err != nil {
		t.Fatal(err)
	}
	if k == 0 {
		t.Fatal("converged in zero iterations; test matrix degenerate")
	}
	if got, want := ops.SpMVs, int64(k+1); got != want {
		t.Errorf("SpMVs = %d, want %d (k = %d)", got, want, k)
	}
	if got, want := ops.Dots, int64(3*k+1); got != want {
		t.Errorf("Dots = %d, want %d (k = %d)", got, want, k)
	}
	if got, want := ops.Axpys, int64(2*k); got != want {
		t.Errorf("Axpys = %d, want %d (k = %d)", got, want, k)
	}
	nn, zz, kk := int64(n), int64(nnz), int64(k)
	wantFlops := (2*zz + 7*nn + 1) + kk*(2*zz+8*nn+3) + (kk-1)*(5*nn+1)
	if ops.Flops != wantFlops {
		t.Errorf("Flops = %d, want %d (n %d nnz %d k %d)", ops.Flops, wantFlops, n, nnz, k)
	}
	wantBytes := (40*zz + 128*nn) + kk*(24*zz+88*nn) + (kk-1)*64*nn
	if ops.Bytes != wantBytes {
		t.Errorf("Bytes = %d, want %d (n %d nnz %d k %d)", ops.Bytes, wantBytes, n, nnz, k)
	}
	if ops.Factorizations != 0 {
		t.Errorf("Factorizations = %d, want 0", ops.Factorizations)
	}
}

// TestSolveCGOpsBitIdentical asserts accounting is purely observational:
// the solution vector with accounting enabled is bit-identical to the one
// without.
func TestSolveCGOpsBitIdentical(t *testing.T) {
	const n = 24
	a := testTridiag(t, n)
	b := make([]float64, n)
	for i := range b {
		b[i] = 0.5 + float64(i%3)
	}
	plain, k1, err := SolveCG(a, b, nil, CGOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var ops OpCount
	counted, k2, err := SolveCG(a, b, nil, CGOptions{Ops: &ops})
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Fatalf("iteration counts differ: %d vs %d", k1, k2)
	}
	for i := range plain {
		//lint:ignore nofloateq accounting neutrality is an exact-equality contract by design
		if plain[i] != counted[i] {
			t.Fatalf("x[%d] differs with accounting: %v vs %v", i, plain[i], counted[i])
		}
	}
	if ops.Flops == 0 || ops.SpMVs == 0 {
		t.Errorf("accounting recorded nothing: %+v", ops)
	}
}

// TestOpCountNilSafe: every Count* method must be a no-op on a nil
// receiver — kernels thread possibly-nil pointers unconditionally.
func TestOpCountNilSafe(t *testing.T) {
	var o *OpCount
	o.CountSpMV(10, 5)
	o.CountDot(5)
	o.CountNorm(5)
	o.CountAxpy(5)
	o.CountVecOp(5, 2)
	o.CountFlops(7)
	o.CountBytes(7)
	o.CountFactorLU(4)
	o.CountLUSolve(4)
	o.Add(&OpCount{Flops: 1})
	var dst OpCount
	dst.Add(nil)
	if dst != (OpCount{}) {
		t.Errorf("Add(nil) mutated receiver: %+v", dst)
	}
}

// TestDenseOpCount pins the dense accounting: FactorLU's exact elimination
// flop count and the substitution pair.
func TestDenseOpCount(t *testing.T) {
	const n = 5
	a := NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			v := 1.0 / float64(1+i+j)
			if i == j {
				v += float64(n)
			}
			a.Set(i, j, v)
		}
	}
	b := []float64{1, 2, 3, 4, 5}
	var ops OpCount
	if _, err := SolveDenseOps(a, b, &ops); err != nil {
		t.Fatal(err)
	}
	if ops.Factorizations != 1 {
		t.Errorf("Factorizations = %d, want 1", ops.Factorizations)
	}
	// Σ_{j=1}^{n-1} (j + 2j²) for n=5: (1+2)+(2+8)+(3+18)+(4+32) = 70,
	// plus the substitution pair 2n²−n = 45.
	if want := int64(70 + 45); ops.Flops != want {
		t.Errorf("Flops = %d, want %d", ops.Flops, want)
	}
}

// TestEstimateCondOpsAccumulates: the condition estimator's power and
// inverse iterations must land in the accumulator.
func TestEstimateCondOpsAccumulates(t *testing.T) {
	a := testTridiag(t, 16)
	var ops OpCount
	plain := EstimateCond(a)
	counted := EstimateCondOps(a, &ops)
	//lint:ignore nofloateq accounting neutrality is an exact-equality contract by design
	if plain != counted {
		t.Errorf("estimate changed with accounting: %v vs %v", plain, counted)
	}
	if ops.SpMVs < condPowerIters {
		t.Errorf("SpMVs = %d, want at least the %d power iterations", ops.SpMVs, condPowerIters)
	}
	if ops.Flops == 0 || ops.Dots == 0 {
		t.Errorf("accounting recorded nothing: %+v", ops)
	}
}
