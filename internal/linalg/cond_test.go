package linalg

import (
	"math"
	"testing"
)

func diagCSR(t *testing.T, d []float64) *CSR {
	t.Helper()
	trips := make([]Coord, len(d))
	for i, v := range d {
		trips[i] = Coord{Row: i, Col: i, Val: v}
	}
	m, err := NewCSR(len(d), trips)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// A diagonal matrix has a known spectrum: the estimate must land close.
func TestEstimateCondDiagonal(t *testing.T) {
	d := make([]float64, 10)
	for i := range d {
		d[i] = float64(i + 1) // spectrum 1..10, κ = 10
	}
	cond := EstimateCond(diagCSR(t, d))
	if cond < 7 || cond > 13 {
		t.Fatalf("diagonal κ estimate %.3g, want ~10", cond)
	}
}

// The 1-D Laplacian tridiag(-1, 2, -1) with n = 8 has
// λ_k = 2 − 2·cos(kπ/9): λmin ≈ 0.1206, λmax ≈ 3.879, κ ≈ 32.2.
func TestEstimateCondTridiagonal(t *testing.T) {
	const n = 8
	var trips []Coord
	for i := 0; i < n; i++ {
		trips = append(trips, Coord{Row: i, Col: i, Val: 2})
		if i+1 < n {
			trips = append(trips,
				Coord{Row: i, Col: i + 1, Val: -1},
				Coord{Row: i + 1, Col: i, Val: -1})
		}
	}
	m, err := NewCSR(n, trips)
	if err != nil {
		t.Fatal(err)
	}
	lmin, lmax := ExtremeEigenEstimates(m)
	wantMin := 2 - 2*math.Cos(math.Pi/9)
	wantMax := 2 - 2*math.Cos(8*math.Pi/9)
	if lmax < 0.9*wantMax || lmax > 1.1*wantMax {
		t.Fatalf("λmax estimate %.4g, want ~%.4g", lmax, wantMax)
	}
	if lmin < 0.7*wantMin || lmin > 1.3*wantMin {
		t.Fatalf("λmin estimate %.4g, want ~%.4g", lmin, wantMin)
	}
	cond := EstimateCond(m)
	want := wantMax / wantMin
	if cond < 0.6*want || cond > 1.6*want {
		t.Fatalf("κ estimate %.4g, want ~%.4g", cond, want)
	}
}

// The estimate is deterministic: identical inputs give identical bits —
// the replay contract extends to diagnostics.
func TestEstimateCondDeterministic(t *testing.T) {
	d := []float64{3, 1, 4, 1, 5, 9, 2, 6}
	a := EstimateCond(diagCSR(t, d))
	b := EstimateCond(diagCSR(t, d))
	if a != b {
		t.Fatalf("estimate not deterministic: %v vs %v", a, b)
	}
}
