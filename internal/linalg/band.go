package linalg

import (
	"fmt"
	"math"
)

// ErrNotSPD is returned when a Cholesky factorisation meets a pivot that is
// not strictly positive — the matrix is not (numerically) symmetric
// positive definite.
var ErrNotSPD = fmt.Errorf("linalg: matrix not symmetric positive definite")

// BandChol is the Cholesky factorisation L·Lᵀ of a symmetric
// positive-definite banded matrix, held in row-wise lower-band storage:
// slot i·(bw+1)+k is element (i, i−bw+k), so slot i·(bw+1)+bw is the
// diagonal. Crossbar MNA sub-blocks (one wire chain of nodes) are
// tridiagonal, bw = 1, and factor in O(n); the storage and the
// factorisation support any small bandwidth.
type BandChol struct {
	n  int
	bw int
	// l is the factor in the same band layout the input used; Factor works
	// in place on the caller's band slice, so refactoring a block reuses
	// its storage allocation-free.
	l []float64
	// rdiag caches 1/L[i,i]. Substitution is a loop-carried dependency
	// chain, so replacing its per-element division with a multiply by the
	// cached reciprocal is the difference between ~30 and ~8 cycles per
	// element; the one extra rounding it introduces is far inside CG's
	// convergence tolerance.
	rdiag []float64
}

// FactorBandChol factors a symmetric positive-definite banded matrix given
// in row-wise lower-band storage (len n·(bw+1); out-of-range slots of the
// first bw rows are ignored). The factorisation overwrites ab — the caller
// keeps ownership of the slice and can refill + refactor it in place. A
// non-positive (or NaN) pivot returns ErrNotSPD.
func FactorBandChol(n, bw int, ab []float64, ops *OpCount) (*BandChol, error) {
	if n <= 0 || bw < 0 {
		return nil, fmt.Errorf("linalg: invalid band shape n=%d bw=%d", n, bw)
	}
	w1 := bw + 1
	if len(ab) != n*w1 {
		return nil, fmt.Errorf("linalg: band storage %d, want %d", len(ab), n*w1)
	}
	ops.CountBandFactor(n, bw)
	rdiag := make([]float64, n)
	if err := factorBandLoop(n, bw, ab, rdiag); err != nil {
		return nil, err
	}
	return &BandChol{n: n, bw: bw, l: ab, rdiag: rdiag}, nil
}

// Refactor re-runs the factorisation on refilled band storage, reusing the
// receiver's reciprocal-diagonal allocation when the shape matches. A nil
// receiver or a shape change falls back to FactorBandChol; either way the
// returned factor is the one to keep. This is what lets a preconditioner
// refresh every solve without re-allocating a factor per block.
func (f *BandChol) Refactor(n, bw int, ab []float64, ops *OpCount) (*BandChol, error) {
	if f == nil || f.n != n || f.bw != bw {
		return FactorBandChol(n, bw, ab, ops)
	}
	if len(ab) != n*(bw+1) {
		return nil, fmt.Errorf("linalg: band storage %d, want %d", len(ab), n*(bw+1))
	}
	ops.CountBandFactor(n, bw)
	if err := factorBandLoop(n, bw, ab, f.rdiag); err != nil {
		return nil, err
	}
	f.l = ab
	return f, nil
}

// factorBandLoop is the factorisation core shared by FactorBandChol and
// Refactor: it overwrites ab with the banded Cholesky factor and fills
// rdiag (len n) with the reciprocal pivots. On ErrNotSPD both are left
// partially overwritten — callers discard the factor.
func factorBandLoop(n, bw int, ab, rdiag []float64) error {
	w1 := bw + 1
	for i := 0; i < n; i++ {
		lo := i - bw
		if lo < 0 {
			lo = 0
		}
		for j := lo; j <= i; j++ {
			s := ab[i*w1+j-i+bw]
			for k := lo; k < j; k++ {
				s -= ab[i*w1+k-i+bw] * ab[j*w1+k-j+bw]
			}
			if j < i {
				ab[i*w1+j-i+bw] = s / ab[j*w1+bw]
				continue
			}
			if !(s > 0) || math.IsNaN(s) {
				return fmt.Errorf("%w (pivot %g at row %d)", ErrNotSPD, s, i)
			}
			d := math.Sqrt(s)
			ab[i*w1+bw] = d
			rdiag[i] = 1 / d
		}
	}
	return nil
}

// N returns the factored dimension.
func (f *BandChol) N() int { return f.n }

// SolveInPlace overwrites b with A⁻¹·b via forward and back substitution
// against the banded factor.
//
// Runs once per block per preconditioner apply: hot path, in-place by
// construction.
//
//lint:hotpath
func (f *BandChol) SolveInPlace(b []float64, ops *OpCount) {
	if len(b) != f.n {
		//lint:ignore noalloc panic-guard Sprintf boxes its args on the crash path only
		panic(fmt.Sprintf("linalg: band solve rhs length %d, want %d", len(b), f.n))
	}
	ops.CountBandSolve(f.n, f.bw)
	n, bw, w1, l, rd := f.n, f.bw, f.bw+1, f.l, f.rdiag
	if bw == 1 {
		// Tridiagonal fast path — every crossbar wire-chain block lands
		// here. Same operation order as the generic loops below, minus the
		// per-row band-window bookkeeping that dominates at bw = 1.
		b[0] *= rd[0]
		for i := 1; i < n; i++ {
			b[i] = (b[i] - l[2*i]*b[i-1]) * rd[i]
		}
		b[n-1] *= rd[n-1]
		for i := n - 2; i >= 0; i-- {
			b[i] = (b[i] - l[2*i+2]*b[i+1]) * rd[i]
		}
		return
	}
	// L·y = b
	for i := 0; i < n; i++ {
		s := b[i]
		lo := i - bw
		if lo < 0 {
			lo = 0
		}
		for k := lo; k < i; k++ {
			s -= l[i*w1+k-i+bw] * b[k]
		}
		b[i] = s * rd[i]
	}
	// Lᵀ·x = y
	for i := n - 1; i >= 0; i-- {
		s := b[i]
		hi := i + bw
		if hi > n-1 {
			hi = n - 1
		}
		for k := i + 1; k <= hi; k++ {
			s -= l[k*w1+i-k+bw] * b[k]
		}
		b[i] = s * rd[i]
	}
}
