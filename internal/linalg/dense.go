// Package linalg provides the small numerical core used by the circuit-level
// solver: dense LU factorisation for small systems and a sparse
// conjugate-gradient solver for the large symmetric positive-definite
// conductance matrices produced by modified nodal analysis of crossbars.
//
// Only the standard library is used; the routines are tuned for the matrix
// shapes MNSIM produces (dense up to a few hundred unknowns, sparse grids up
// to a few hundred thousand).
package linalg

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when a factorisation encounters an (numerically)
// singular matrix.
var ErrSingular = errors.New("linalg: singular matrix")

// Dense is a row-major dense matrix.
type Dense struct {
	Rows, Cols int
	Data       []float64 // len Rows*Cols
}

// NewDense allocates a zero Rows×Cols matrix.
func NewDense(rows, cols int) *Dense {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("linalg: invalid dense shape %dx%d", rows, cols))
	}
	return &Dense{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns element (i,j).
func (m *Dense) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i,j).
func (m *Dense) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Add accumulates v into element (i,j); the natural operation for MNA
// stamping.
func (m *Dense) Add(i, j int, v float64) { m.Data[i*m.Cols+j] += v }

// Clone returns a deep copy.
func (m *Dense) Clone() *Dense {
	c := NewDense(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// MulVec computes y = M·x.
func (m *Dense) MulVec(x []float64) []float64 {
	if len(x) != m.Cols {
		panic(fmt.Sprintf("linalg: MulVec shape mismatch %d vs %d", len(x), m.Cols))
	}
	y := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		s := 0.0
		for j, v := range row {
			s += v * x[j]
		}
		y[i] = s
	}
	return y
}

// LU holds an LU factorisation with partial pivoting of a square matrix.
type LU struct {
	n    int
	lu   []float64
	piv  []int
	sign int
}

// FactorLU computes the LU factorisation of a square matrix with partial
// pivoting. The input is not modified.
func FactorLU(m *Dense) (*LU, error) {
	return FactorLUOps(m, nil)
}

// FactorLUOps is FactorLU with operation accounting: a non-nil ops
// accumulates the factorization's exact elimination flop count
// (OpCount.CountFactorLU). Accounting is observational only — it never
// changes a computed float.
func FactorLUOps(m *Dense, ops *OpCount) (*LU, error) {
	if m.Rows != m.Cols {
		return nil, fmt.Errorf("linalg: LU needs a square matrix, got %dx%d", m.Rows, m.Cols)
	}
	n := m.Rows
	telLUFactorsTotal.Inc()
	ops.CountFactorLU(n)
	f := &LU{n: n, lu: make([]float64, n*n), piv: make([]int, n), sign: 1}
	copy(f.lu, m.Data)
	for i := range f.piv {
		f.piv[i] = i
	}
	for k := 0; k < n; k++ {
		// Pivot: largest magnitude in column k at or below the diagonal.
		p, maxv := k, math.Abs(f.lu[k*n+k])
		for i := k + 1; i < n; i++ {
			if a := math.Abs(f.lu[i*n+k]); a > maxv {
				p, maxv = i, a
			}
		}
		if maxv == 0 || math.IsNaN(maxv) {
			return nil, ErrSingular
		}
		if p != k {
			for j := 0; j < n; j++ {
				f.lu[p*n+j], f.lu[k*n+j] = f.lu[k*n+j], f.lu[p*n+j]
			}
			f.piv[p], f.piv[k] = f.piv[k], f.piv[p]
			f.sign = -f.sign
		}
		pivot := f.lu[k*n+k]
		for i := k + 1; i < n; i++ {
			l := f.lu[i*n+k] / pivot
			f.lu[i*n+k] = l
			if l == 0 {
				continue
			}
			rowI := f.lu[i*n : i*n+n]
			rowK := f.lu[k*n : k*n+n]
			for j := k + 1; j < n; j++ {
				rowI[j] -= l * rowK[j]
			}
		}
	}
	return f, nil
}

// Solve computes x such that A·x = b for the factored matrix A.
func (f *LU) Solve(b []float64) ([]float64, error) {
	return f.SolveOps(b, nil)
}

// SolveOps is Solve with operation accounting (OpCount.CountLUSolve).
func (f *LU) SolveOps(b []float64, ops *OpCount) ([]float64, error) {
	if len(b) != f.n {
		return nil, fmt.Errorf("linalg: rhs length %d, want %d", len(b), f.n)
	}
	n := f.n
	ops.CountLUSolve(n)
	x := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = b[f.piv[i]]
	}
	// Forward substitution with unit lower triangle.
	for i := 1; i < n; i++ {
		row := f.lu[i*n : i*n+n]
		s := x[i]
		for j := 0; j < i; j++ {
			s -= row[j] * x[j]
		}
		x[i] = s
	}
	// Back substitution.
	for i := n - 1; i >= 0; i-- {
		row := f.lu[i*n : i*n+n]
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= row[j] * x[j]
		}
		x[i] = s / row[i]
	}
	return x, nil
}

// Det returns the determinant of the factored matrix.
func (f *LU) Det() float64 {
	d := float64(f.sign)
	for i := 0; i < f.n; i++ {
		d *= f.lu[i*f.n+i]
	}
	return d
}

// SolveDense is a convenience wrapper: factor A and solve A·x = b once.
func SolveDense(a *Dense, b []float64) ([]float64, error) {
	return SolveDenseOps(a, b, nil)
}

// SolveDenseOps is SolveDense with operation accounting: one factorization
// plus one substitution pair land in ops.
func SolveDenseOps(a *Dense, b []float64, ops *OpCount) ([]float64, error) {
	f, err := FactorLUOps(a, ops)
	if err != nil {
		return nil, err
	}
	return f.SolveOps(b, ops)
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float64) float64 {
	s := 0.0
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// NormInf returns the maximum-magnitude element of v.
func NormInf(v []float64) float64 {
	m := 0.0
	for _, x := range v {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}

// Dot returns the inner product of a and b.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("linalg: Dot length mismatch")
	}
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// AXPY computes y += alpha*x in place.
func AXPY(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic("linalg: AXPY length mismatch")
	}
	for i := range x {
		y[i] += alpha * x[i]
	}
}
