package linalg

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

// bandToDense expands row-wise lower-band storage into a symmetric dense
// matrix for reference arithmetic.
func bandToDense(n, bw int, ab []float64) *Dense {
	d := NewDense(n, n)
	for i := 0; i < n; i++ {
		for k := 0; k <= bw; k++ {
			j := i - bw + k
			if j < 0 {
				continue
			}
			d.Set(i, j, ab[i*(bw+1)+k])
			d.Set(j, i, ab[i*(bw+1)+k])
		}
	}
	return d
}

// spdBand builds a random diagonally-dominant SPD band.
func spdBand(n, bw int, rng *rand.Rand) []float64 {
	ab := make([]float64, n*(bw+1))
	for i := 0; i < n; i++ {
		for k := 0; k < bw; k++ {
			if i-bw+k >= 0 {
				ab[i*(bw+1)+k] = -rng.Float64()
			}
		}
		ab[i*(bw+1)+bw] = 2*float64(bw) + 1 + rng.Float64()
	}
	return ab
}

// TestBandCholSolveMatchesDense cross-checks the banded Cholesky solve
// against the dense LU path on random SPD bands of several shapes.
func TestBandCholSolveMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, shape := range [][2]int{{1, 0}, {2, 1}, {5, 1}, {9, 2}, {16, 3}, {33, 1}} {
		n, bw := shape[0], shape[1]
		ab := spdBand(n, bw, rng)
		dense := bandToDense(n, bw, ab)
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		want, err := SolveDense(dense, b)
		if err != nil {
			t.Fatalf("n=%d bw=%d dense: %v", n, bw, err)
		}
		f, err := FactorBandChol(n, bw, ab, nil)
		if err != nil {
			t.Fatalf("n=%d bw=%d factor: %v", n, bw, err)
		}
		x := append([]float64(nil), b...)
		f.SolveInPlace(x, nil)
		for i := range x {
			if math.Abs(x[i]-want[i]) > 1e-9*(1+math.Abs(want[i])) {
				t.Fatalf("n=%d bw=%d x[%d] = %v, dense %v", n, bw, i, x[i], want[i])
			}
		}
	}
}

// TestBandCholRejectsIndefinite: a matrix with a negative pivot must fail
// with ErrNotSPD rather than factor garbage.
func TestBandCholRejectsIndefinite(t *testing.T) {
	// diag(1, -1): second pivot negative.
	ab := []float64{0, 1, 0, -1}
	if _, err := FactorBandChol(2, 1, ab, nil); !errors.Is(err, ErrNotSPD) {
		t.Fatalf("indefinite factor err = %v, want ErrNotSPD", err)
	}
}

// TestBandCholRefactorInPlace: refilling the same band slice and
// refactoring must reuse storage and track the new values.
func TestBandCholRefactorInPlace(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n, bw := 8, 1
	ab := spdBand(n, bw, rng)
	if _, err := FactorBandChol(n, bw, ab, nil); err != nil {
		t.Fatal(err)
	}
	// Refill with a fresh SPD band in the same slice and refactor.
	fresh := spdBand(n, bw, rng)
	copy(ab, fresh)
	dense := bandToDense(n, bw, ab)
	f, err := FactorBandChol(n, bw, ab, nil)
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, n)
	for i := range b {
		b[i] = 1 + float64(i)
	}
	want, err := SolveDense(dense, b)
	if err != nil {
		t.Fatal(err)
	}
	f.SolveInPlace(b, nil)
	for i := range b {
		if math.Abs(b[i]-want[i]) > 1e-9*(1+math.Abs(want[i])) {
			t.Fatalf("refactored x[%d] = %v, dense %v", i, b[i], want[i])
		}
	}
}

// countBandFactorRef re-derives the factorization flop count by walking the
// same loop structure the kernel uses — the oracle for the closed formula.
func countBandFactorRef(n, bw int) int64 {
	var flops int64
	for i := 0; i < n; i++ {
		lo := i - bw
		if lo < 0 {
			lo = 0
		}
		for j := lo; j <= i; j++ {
			flops += 2*int64(j-lo) + 1 // multiply-subtract pairs + div/sqrt
		}
	}
	return flops
}

// countBandSolveRef mirrors SolveInPlace's loop structure.
func countBandSolveRef(n, bw int) int64 {
	var flops int64
	for i := 0; i < n; i++ {
		lo := i - bw
		if lo < 0 {
			lo = 0
		}
		flops += 2*int64(i-lo) + 1
		hi := i + bw
		if hi > n-1 {
			hi = n - 1
		}
		flops += 2*int64(hi-i) + 1
	}
	return flops
}

// TestBandOpCountFormulas pins the closed-form band accounting against
// loop-structure oracles across shapes, including n ≤ bw edge cases.
func TestBandOpCountFormulas(t *testing.T) {
	for _, shape := range [][2]int{{1, 0}, {1, 3}, {2, 1}, {3, 5}, {8, 1}, {17, 2}, {64, 1}} {
		n, bw := shape[0], shape[1]
		var f, s OpCount
		f.CountBandFactor(n, bw)
		s.CountBandSolve(n, bw)
		if want := countBandFactorRef(n, bw); f.Flops != want {
			t.Errorf("n=%d bw=%d factor flops = %d, want %d", n, bw, f.Flops, want)
		}
		if want := countBandSolveRef(n, bw); s.Flops != want {
			t.Errorf("n=%d bw=%d solve flops = %d, want %d", n, bw, s.Flops, want)
		}
		if f.BandFactorizations != 1 {
			t.Errorf("n=%d bw=%d BandFactorizations = %d, want 1", n, bw, f.BandFactorizations)
		}
	}
}
