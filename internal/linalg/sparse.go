package linalg

import (
	"errors"
	"fmt"
	"math"

	"mnsim/internal/telemetry"
)

// Linear-core telemetry: every CG solve in the process lands here, whatever
// the caller, so the iteration totals behind a sweep are recoverable from
// one export.
var (
	telCGSolves       = telemetry.GetCounter("mnsim_linalg_cg_solves_total")
	telCGItersTotal   = telemetry.GetCounter("mnsim_linalg_cg_iterations_total")
	telCGIterHist     = telemetry.GetHistogram("mnsim_linalg_cg_iterations", telemetry.ExponentialBuckets(1, 2, 14))
	telCGNoConverge   = telemetry.GetCounter("mnsim_linalg_cg_no_convergence_total")
	telCGBreakdowns   = telemetry.GetCounter("mnsim_linalg_cg_breakdowns_total")
	telLUFactorsTotal = telemetry.GetCounter("mnsim_linalg_lu_factorizations_total")
)

// Coord is one (row, col, value) triplet used while assembling a sparse
// matrix; duplicate coordinates are summed, matching MNA stamping semantics.
type Coord struct {
	Row, Col int
	Val      float64
}

// CSR is a compressed-sparse-row matrix. Build one from triplets with
// NewCSR; the circuit solver re-stamps values each Newton iteration via
// UpdateValues without re-deriving the sparsity pattern.
type CSR struct {
	N       int // square dimension
	RowPtr  []int
	ColIdx  []int
	Vals    []float64
	permMap []int // triplet index -> position in Vals (for UpdateValues)
}

// NewCSR assembles an n×n CSR matrix from triplets, summing duplicates.
// The mapping from each input triplet to its merged slot is retained so the
// same triplet slice (with updated Vals) can refresh the matrix in place.
func NewCSR(n int, trips []Coord) (*CSR, error) {
	if n <= 0 {
		return nil, fmt.Errorf("linalg: invalid CSR dimension %d", n)
	}
	for _, t := range trips {
		if t.Row < 0 || t.Row >= n || t.Col < 0 || t.Col >= n {
			return nil, fmt.Errorf("linalg: triplet (%d,%d) outside %d×%d", t.Row, t.Col, n, n)
		}
	}
	// Order triplet indices by (row, col) to find unique slots: an O(nnz)
	// counting pass buckets by row, then each row's handful of entries is
	// insertion-sorted by column (stable, so duplicate summation order is
	// the deterministic input order). MNA rows hold ~4–8 entries, so this
	// stays linear where a global comparison sort would dominate the
	// assembly of large crossbars.
	rowStart := make([]int, n+1)
	for _, t := range trips {
		rowStart[t.Row+1]++
	}
	for r := 0; r < n; r++ {
		rowStart[r+1] += rowStart[r]
	}
	order := make([]int, len(trips))
	next := make([]int, n)
	copy(next, rowStart[:n])
	for i, t := range trips {
		order[next[t.Row]] = i
		next[t.Row]++
	}
	for r := 0; r < n; r++ {
		seg := order[rowStart[r]:rowStart[r+1]]
		for i := 1; i < len(seg); i++ {
			for j := i; j > 0 && trips[seg[j]].Col < trips[seg[j-1]].Col; j-- {
				seg[j], seg[j-1] = seg[j-1], seg[j]
			}
		}
	}
	m := &CSR{N: n, RowPtr: make([]int, n+1), permMap: make([]int, len(trips))}
	// len(trips) bounds the merged slot count, so the append streams below
	// never reallocate.
	m.ColIdx = make([]int, 0, len(trips))
	m.Vals = make([]float64, 0, len(trips))
	prevRow, prevCol := -1, -1
	for _, idx := range order {
		t := trips[idx]
		if t.Row != prevRow || t.Col != prevCol {
			m.ColIdx = append(m.ColIdx, t.Col)
			m.Vals = append(m.Vals, 0)
			for r := prevRow + 1; r <= t.Row; r++ {
				m.RowPtr[r] = len(m.Vals) - 1
			}
			prevRow, prevCol = t.Row, t.Col
		}
		slot := len(m.Vals) - 1
		m.Vals[slot] += t.Val
		m.permMap[idx] = slot
	}
	for r := prevRow + 1; r <= n; r++ {
		m.RowPtr[r] = len(m.Vals)
	}
	return m, nil
}

// UpdateValues re-stamps the matrix from a triplet slice with the same
// sparsity pattern (same rows/cols in the same order) as the one passed to
// NewCSR. Only the values are read.
func (m *CSR) UpdateValues(trips []Coord) error {
	if len(trips) != len(m.permMap) {
		return fmt.Errorf("linalg: UpdateValues got %d triplets, pattern has %d", len(trips), len(m.permMap))
	}
	for i := range m.Vals {
		m.Vals[i] = 0
	}
	for i, t := range trips {
		m.Vals[m.permMap[i]] += t.Val
	}
	return nil
}

// MulVec computes y = M·x, reusing y if it has the right length.
func (m *CSR) MulVec(x, y []float64) []float64 {
	if len(x) != m.N {
		panic(fmt.Sprintf("linalg: CSR MulVec got %d, want %d", len(x), m.N))
	}
	if len(y) != m.N {
		y = make([]float64, m.N)
	}
	for i := 0; i < m.N; i++ {
		s := 0.0
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			s += m.Vals[k] * x[m.ColIdx[k]]
		}
		y[i] = s
	}
	return y
}

// Diagonal extracts the matrix diagonal (zero where absent).
func (m *CSR) Diagonal() []float64 {
	d := make([]float64, m.N)
	for i := 0; i < m.N; i++ {
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			if m.ColIdx[k] == i {
				d[i] = m.Vals[k]
				break
			}
		}
	}
	return d
}

// ErrNoConvergence is returned when an iterative solve exhausts its
// iteration budget before reaching the requested tolerance.
var ErrNoConvergence = errors.New("linalg: iterative solver did not converge")

// BreakdownError is the typed form of a CG breakdown: the Krylov recurrence
// met a direction with non-positive curvature (p·A·p ≤ 0 — the matrix is
// not SPD, usually a bad stamp) or a non-finite scalar. errors.Is matches
// ErrNoConvergence, so existing no-convergence handling catches breakdowns
// too; errors.As recovers the iteration index and offending curvature.
type BreakdownError struct {
	// Iter is the iteration (1-based) at which the breakdown was detected.
	Iter int
	// PAp is the curvature p·A·p that triggered the guard (may be a
	// finite non-positive value or NaN/Inf).
	PAp float64
}

func (e *BreakdownError) Error() string {
	return fmt.Sprintf("linalg: CG breakdown at iteration %d (p·A·p = %g; matrix not SPD?)", e.Iter, e.PAp)
}

// Unwrap makes errors.Is(err, ErrNoConvergence) hold.
func (e *BreakdownError) Unwrap() error { return ErrNoConvergence }

// CGOptions tunes SolveCG.
type CGOptions struct {
	// Tol is the relative residual target ‖b−Ax‖/‖b‖; default 1e-10.
	Tol float64
	// MaxIter bounds iterations; default 10·N.
	MaxIter int
	// Precond supplies the preconditioner; nil selects the classic Jacobi
	// (diagonal) fallback built from the matrix. Structure-aware callers
	// (the crossbar solver) pass a BlockJacobi over their wire chains.
	Precond Preconditioner
	// Ops, when non-nil, accumulates the solve's operation counts. The
	// accounting is exact and purely observational: enabling it never
	// changes a computed float. On the default Jacobi path the setup costs
	// one SpMV, two dots (‖b‖ and r·z), the diagonal scan and inversion,
	// and three streaming vector passes; each of the k iterations costs one
	// SpMV, one dot, one norm, two AXPYs and two scalar divisions, and
	// every iteration except a converged last one adds the preconditioner
	// apply, one more dot, and the direction update. In totals:
	// SpMVs = k+1, Dots = 3k+1, Axpys = 2k. A non-nil x0 adds one norm
	// (the warm-start early-exit check); a custom Precond charges its own
	// apply cost and bumps PrecondApplies.
	Ops *OpCount
	// Work, when non-nil, supplies reusable scratch for the solve's working
	// vectors, eliminating the five length-N allocations a cold call makes.
	// See CGWork for the aliasing contract on the returned solution.
	Work *CGWork
}

// CGWork is reusable scratch storage for SolveCG: the five length-N working
// vectors a solve needs (solution, residual, preconditioned residual,
// search direction, A·p). With CGOptions.Work set, the solution SolveCG
// returns aliases Work storage; successive solves alternate between two
// solution buffers, so the previous result stays valid across exactly one
// further call — the v/vNew ping-pong a Newton loop needs. Callers keeping
// a solution longer than that must copy it. Like every solver structure in
// this package, a CGWork serves one goroutine at a time.
type CGWork struct {
	xs          [2][]float64
	flip        int
	r, z, p, ap []float64
}

// take returns the working vectors sized n, growing the underlying buffers
// as needed; x is zeroed, matching a fresh allocation. A nil receiver
// returns all nils, and SolveCG falls back to per-call allocation.
func (w *CGWork) take(n int) (x, r, z, p, ap []float64) {
	if w == nil {
		return nil, nil, nil, nil, nil
	}
	w.xs[w.flip] = growVec(w.xs[w.flip], n)
	x = w.xs[w.flip]
	w.flip ^= 1
	for i := range x {
		x[i] = 0
	}
	w.r = growVec(w.r, n)
	w.z = growVec(w.z, n)
	w.p = growVec(w.p, n)
	w.ap = growVec(w.ap, n)
	return x, w.r, w.z, w.p, w.ap
}

// growVec returns buf resized to n, reallocating only when capacity is
// short. Contents are unspecified — every SolveCG use fully overwrites the
// vector before reading it, which is what keeps buffer reuse bit-identical
// to fresh allocation.
func growVec(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}

// SolveCG solves A·x = b for a symmetric positive-definite CSR matrix with
// preconditioned conjugate gradients (CGOptions.Precond; Jacobi fallback).
// Resistor-network conductance matrices are SPD and strongly diagonally
// dominant, so CG converges in far fewer iterations than N. x0 may be nil;
// a non-nil x0 that already meets the tolerance is returned bit-unchanged
// after zero iterations — the contract warm-started re-solves rely on.
//
// The iteration loop is the simulator's hottest code: with CGWork
// scratch it runs allocation-free (PR 9's bench gate pins allocs/op),
// and the //lint:hotpath annotation makes the compiler's escape analysis
// enforce that. The remaining suppressions below mark the deliberate
// cold paths: error formatting, the Work==nil fallback allocations, and
// breakdown error construction.
//
//lint:hotpath
func SolveCG(a *CSR, b, x0 []float64, opt CGOptions) ([]float64, int, error) {
	n := a.N
	if len(b) != n {
		//lint:ignore noalloc error-path fmt args box once per misuse, never in the solve loop
		return nil, 0, fmt.Errorf("linalg: rhs length %d, want %d", len(b), n)
	}
	if opt.Tol <= 0 {
		opt.Tol = 1e-10
	}
	if opt.MaxIter <= 0 {
		opt.MaxIter = 10 * n
	}
	ops := opt.Ops
	nnz := len(a.Vals)
	// With scratch the vectors come pre-sized from the work pool (x zeroed);
	// without it each is allocated at its historical site below, so cold
	// early-exit paths stay as cheap as they always were.
	x, wr, wz, wp, wap := opt.Work.take(n)
	if x == nil {
		//lint:ignore noalloc cold fallback when no CGWork scratch is supplied
		x = make([]float64, n)
	}
	if x0 != nil {
		copy(x, x0)
		ops.CountBytes(16 * int64(n))
	}
	pre := opt.Precond
	if pre == nil {
		jp, err := newJacobiPrecond(a, ops)
		if err != nil {
			return nil, 0, err
		}
		pre = jp
	}
	r := wr
	if r == nil {
		//lint:ignore noalloc cold fallback when no CGWork scratch is supplied
		r = make([]float64, n)
	}
	a.MulVec(x, r)
	ops.CountSpMV(nnz, n)
	for i := range r {
		r[i] = b[i] - r[i]
	}
	ops.CountVecOp(n, 1) // r = b − A·x
	normB := Norm2(b)
	ops.CountNorm(n)
	if normB == 0 {
		// b = 0 → the unique SPD solution is x = 0. Never echo a non-zero
		// x0 back: a warm-started solve against a zero RHS must not return
		// the stale warm start.
		for i := range x {
			x[i] = 0
		}
		observeCG(0)
		return x, 0, nil
	}
	if x0 != nil {
		// Warm-start early exit: an x0 already inside the tolerance is the
		// answer, returned bit-unchanged.
		res0 := Norm2(r) / normB
		ops.CountNorm(n)
		ops.CountFlops(1)
		if res0 < opt.Tol {
			observeCG(0)
			return x, 0, nil
		}
	}
	z := wz
	if z == nil {
		//lint:ignore noalloc cold fallback when no CGWork scratch is supplied
		z = make([]float64, n)
	}
	pre.Apply(r, z, ops)
	p := wp
	if p == nil {
		//lint:ignore noalloc cold fallback when no CGWork scratch is supplied
		p = make([]float64, n)
	}
	copy(p, z)
	ops.CountBytes(16 * int64(n))
	rz := Dot(r, z)
	ops.CountDot(n)
	ap := wap
	if ap == nil {
		//lint:ignore noalloc cold fallback when no CGWork scratch is supplied
		ap = make([]float64, n)
	}
	for it := 1; it <= opt.MaxIter; it++ {
		a.MulVec(p, ap)
		ops.CountSpMV(nnz, n)
		pap := Dot(p, ap)
		ops.CountDot(n)
		alpha := rz / pap
		ops.CountFlops(1) // α division
		if pap <= 0 || math.IsNaN(alpha) || math.IsInf(alpha, 0) {
			// Breakdown guard: non-positive curvature means the matrix is
			// not SPD (a bad stamp); without this guard α goes NaN and no
			// exit condition ever fires until MaxIter.
			observeCG(it)
			telCGBreakdowns.Inc()
			//lint:ignore noalloc breakdown error allocates once on the failure path only
			return x, it, &BreakdownError{Iter: it, PAp: pap}
		}
		AXPY(alpha, p, x)
		AXPY(-alpha, ap, r)
		ops.CountAxpy(n)
		ops.CountAxpy(n)
		res := Norm2(r) / normB
		ops.CountNorm(n)
		ops.CountFlops(1) // relative-residual division
		if math.IsNaN(res) || math.IsInf(res, 0) {
			observeCG(it)
			telCGBreakdowns.Inc()
			//lint:ignore noalloc breakdown error allocates once on the failure path only
			return x, it, &BreakdownError{Iter: it, PAp: pap}
		}
		if res < opt.Tol {
			observeCG(it)
			return x, it, nil
		}
		pre.Apply(r, z, ops)
		rzNew := Dot(r, z)
		ops.CountDot(n)
		beta := rzNew / rz
		ops.CountFlops(1) // β division
		rz = rzNew
		for i := range p {
			p[i] = z[i] + beta*p[i]
		}
		ops.CountVecOp(n, 2) // direction update p = z + β·p
	}
	observeCG(opt.MaxIter)
	telCGNoConverge.Inc()
	return x, opt.MaxIter, ErrNoConvergence
}

// observeCG folds one finished CG solve into the package metrics.
func observeCG(iters int) {
	telCGSolves.Inc()
	telCGItersTotal.Add(int64(iters))
	telCGIterHist.Observe(float64(iters))
}

// IsSymmetric reports whether the matrix is numerically symmetric within
// tolerance tol; used by tests and solver self-checks.
func (m *CSR) IsSymmetric(tol float64) bool {
	for i := 0; i < m.N; i++ {
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			j := m.ColIdx[k]
			if j < i {
				continue
			}
			if math.Abs(m.Vals[k]-m.at(j, i)) > tol {
				return false
			}
		}
	}
	return true
}

func (m *CSR) at(i, j int) float64 {
	for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
		if m.ColIdx[k] == j {
			return m.Vals[k]
		}
	}
	return 0
}
