package linalg

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"mnsim/internal/telemetry"
)

// Linear-core telemetry: every CG solve in the process lands here, whatever
// the caller, so the iteration totals behind a sweep are recoverable from
// one export.
var (
	telCGSolves       = telemetry.GetCounter("mnsim_linalg_cg_solves_total")
	telCGItersTotal   = telemetry.GetCounter("mnsim_linalg_cg_iterations_total")
	telCGIterHist     = telemetry.GetHistogram("mnsim_linalg_cg_iterations", telemetry.ExponentialBuckets(1, 2, 14))
	telCGNoConverge   = telemetry.GetCounter("mnsim_linalg_cg_no_convergence_total")
	telLUFactorsTotal = telemetry.GetCounter("mnsim_linalg_lu_factorizations_total")
)

// Coord is one (row, col, value) triplet used while assembling a sparse
// matrix; duplicate coordinates are summed, matching MNA stamping semantics.
type Coord struct {
	Row, Col int
	Val      float64
}

// CSR is a compressed-sparse-row matrix. Build one from triplets with
// NewCSR; the circuit solver re-stamps values each Newton iteration via
// UpdateValues without re-deriving the sparsity pattern.
type CSR struct {
	N       int // square dimension
	RowPtr  []int
	ColIdx  []int
	Vals    []float64
	permMap []int // triplet index -> position in Vals (for UpdateValues)
}

// NewCSR assembles an n×n CSR matrix from triplets, summing duplicates.
// The mapping from each input triplet to its merged slot is retained so the
// same triplet slice (with updated Vals) can refresh the matrix in place.
func NewCSR(n int, trips []Coord) (*CSR, error) {
	if n <= 0 {
		return nil, fmt.Errorf("linalg: invalid CSR dimension %d", n)
	}
	for _, t := range trips {
		if t.Row < 0 || t.Row >= n || t.Col < 0 || t.Col >= n {
			return nil, fmt.Errorf("linalg: triplet (%d,%d) outside %d×%d", t.Row, t.Col, n, n)
		}
	}
	// Sort triplet indices by (row, col) to find unique slots.
	order := make([]int, len(trips))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ta, tb := trips[order[a]], trips[order[b]]
		if ta.Row != tb.Row {
			return ta.Row < tb.Row
		}
		return ta.Col < tb.Col
	})
	m := &CSR{N: n, RowPtr: make([]int, n+1), permMap: make([]int, len(trips))}
	prevRow, prevCol := -1, -1
	for _, idx := range order {
		t := trips[idx]
		if t.Row != prevRow || t.Col != prevCol {
			m.ColIdx = append(m.ColIdx, t.Col)
			m.Vals = append(m.Vals, 0)
			for r := prevRow + 1; r <= t.Row; r++ {
				m.RowPtr[r] = len(m.Vals) - 1
			}
			prevRow, prevCol = t.Row, t.Col
		}
		slot := len(m.Vals) - 1
		m.Vals[slot] += t.Val
		m.permMap[idx] = slot
	}
	for r := prevRow + 1; r <= n; r++ {
		m.RowPtr[r] = len(m.Vals)
	}
	return m, nil
}

// UpdateValues re-stamps the matrix from a triplet slice with the same
// sparsity pattern (same rows/cols in the same order) as the one passed to
// NewCSR. Only the values are read.
func (m *CSR) UpdateValues(trips []Coord) error {
	if len(trips) != len(m.permMap) {
		return fmt.Errorf("linalg: UpdateValues got %d triplets, pattern has %d", len(trips), len(m.permMap))
	}
	for i := range m.Vals {
		m.Vals[i] = 0
	}
	for i, t := range trips {
		m.Vals[m.permMap[i]] += t.Val
	}
	return nil
}

// MulVec computes y = M·x, reusing y if it has the right length.
func (m *CSR) MulVec(x, y []float64) []float64 {
	if len(x) != m.N {
		panic(fmt.Sprintf("linalg: CSR MulVec got %d, want %d", len(x), m.N))
	}
	if len(y) != m.N {
		y = make([]float64, m.N)
	}
	for i := 0; i < m.N; i++ {
		s := 0.0
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			s += m.Vals[k] * x[m.ColIdx[k]]
		}
		y[i] = s
	}
	return y
}

// Diagonal extracts the matrix diagonal (zero where absent).
func (m *CSR) Diagonal() []float64 {
	d := make([]float64, m.N)
	for i := 0; i < m.N; i++ {
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			if m.ColIdx[k] == i {
				d[i] = m.Vals[k]
				break
			}
		}
	}
	return d
}

// ErrNoConvergence is returned when an iterative solve exhausts its
// iteration budget before reaching the requested tolerance.
var ErrNoConvergence = errors.New("linalg: iterative solver did not converge")

// CGOptions tunes SolveCG.
type CGOptions struct {
	// Tol is the relative residual target ‖b−Ax‖/‖b‖; default 1e-10.
	Tol float64
	// MaxIter bounds iterations; default 10·N.
	MaxIter int
	// Ops, when non-nil, accumulates the solve's operation counts. The
	// accounting is exact and purely observational: enabling it never
	// changes a computed float. Per solve the setup costs one SpMV, two
	// dots (‖b‖ and r·z), the diagonal scan and inversion, and three
	// streaming vector passes; each of the k iterations costs one SpMV,
	// one dot, one norm, two AXPYs and two scalar divisions, and every
	// iteration except a converged last one adds the preconditioner
	// apply, one more dot, and the direction update. In totals:
	// SpMVs = k+1, Dots = 3k+1, Axpys = 2k.
	Ops *OpCount
}

// SolveCG solves A·x = b for a symmetric positive-definite CSR matrix with
// Jacobi-preconditioned conjugate gradients. Resistor-network conductance
// matrices are SPD and strongly diagonally dominant, so CG converges in far
// fewer iterations than N. x0 may be nil.
func SolveCG(a *CSR, b, x0 []float64, opt CGOptions) ([]float64, int, error) {
	n := a.N
	if len(b) != n {
		return nil, 0, fmt.Errorf("linalg: rhs length %d, want %d", len(b), n)
	}
	if opt.Tol <= 0 {
		opt.Tol = 1e-10
	}
	if opt.MaxIter <= 0 {
		opt.MaxIter = 10 * n
	}
	ops := opt.Ops
	nnz := len(a.Vals)
	x := make([]float64, n)
	if x0 != nil {
		copy(x, x0)
		ops.CountBytes(16 * int64(n))
	}
	diag := a.Diagonal()
	ops.CountBytes(16 * int64(nnz)) // diagonal scan over Vals + ColIdx
	inv := make([]float64, n)
	for i, d := range diag {
		if d == 0 {
			return nil, 0, fmt.Errorf("linalg: zero diagonal at %d, Jacobi preconditioner undefined", i)
		}
		inv[i] = 1 / d
	}
	ops.CountVecOp(n, 1) // diagonal inversion
	r := make([]float64, n)
	a.MulVec(x, r)
	ops.CountSpMV(nnz, n)
	for i := range r {
		r[i] = b[i] - r[i]
	}
	ops.CountVecOp(n, 1) // r = b − A·x
	normB := Norm2(b)
	ops.CountNorm(n)
	if normB == 0 {
		observeCG(0)
		return x, 0, nil // b = 0 → x = 0 (or x0-projected; zero is the SPD solution)
	}
	z := make([]float64, n)
	for i := range z {
		z[i] = inv[i] * r[i]
	}
	ops.CountVecOp(n, 1) // preconditioner apply
	p := make([]float64, n)
	copy(p, z)
	ops.CountBytes(16 * int64(n))
	rz := Dot(r, z)
	ops.CountDot(n)
	ap := make([]float64, n)
	for it := 1; it <= opt.MaxIter; it++ {
		a.MulVec(p, ap)
		ops.CountSpMV(nnz, n)
		alpha := rz / Dot(p, ap)
		ops.CountDot(n)
		ops.CountFlops(1) // α division
		AXPY(alpha, p, x)
		AXPY(-alpha, ap, r)
		ops.CountAxpy(n)
		ops.CountAxpy(n)
		res := Norm2(r) / normB
		ops.CountNorm(n)
		ops.CountFlops(1) // relative-residual division
		if res < opt.Tol {
			observeCG(it)
			return x, it, nil
		}
		for i := range z {
			z[i] = inv[i] * r[i]
		}
		ops.CountVecOp(n, 1) // preconditioner apply
		rzNew := Dot(r, z)
		ops.CountDot(n)
		beta := rzNew / rz
		ops.CountFlops(1) // β division
		rz = rzNew
		for i := range p {
			p[i] = z[i] + beta*p[i]
		}
		ops.CountVecOp(n, 2) // direction update p = z + β·p
	}
	observeCG(opt.MaxIter)
	telCGNoConverge.Inc()
	return x, opt.MaxIter, ErrNoConvergence
}

// observeCG folds one finished CG solve into the package metrics.
func observeCG(iters int) {
	telCGSolves.Inc()
	telCGItersTotal.Add(int64(iters))
	telCGIterHist.Observe(float64(iters))
}

// IsSymmetric reports whether the matrix is numerically symmetric within
// tolerance tol; used by tests and solver self-checks.
func (m *CSR) IsSymmetric(tol float64) bool {
	for i := 0; i < m.N; i++ {
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			j := m.ColIdx[k]
			if j < i {
				continue
			}
			if math.Abs(m.Vals[k]-m.at(j, i)) > tol {
				return false
			}
		}
	}
	return true
}

func (m *CSR) at(i, j int) float64 {
	for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
		if m.ColIdx[k] == j {
			return m.Vals[k]
		}
	}
	return 0
}
