package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDenseBasics(t *testing.T) {
	m := NewDense(2, 3)
	m.Set(0, 0, 1)
	m.Add(0, 0, 2)
	m.Set(1, 2, -4)
	if m.At(0, 0) != 3 || m.At(1, 2) != -4 || m.At(1, 1) != 0 {
		t.Fatalf("unexpected contents: %+v", m)
	}
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) != 3 {
		t.Fatal("Clone aliases the original")
	}
}

func TestNewDensePanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewDense(0,1) should panic")
		}
	}()
	NewDense(0, 1)
}

func TestMulVec(t *testing.T) {
	m := NewDense(2, 2)
	m.Set(0, 0, 1)
	m.Set(0, 1, 2)
	m.Set(1, 0, 3)
	m.Set(1, 1, 4)
	y := m.MulVec([]float64{1, 1})
	if y[0] != 3 || y[1] != 7 {
		t.Fatalf("MulVec = %v", y)
	}
}

func TestLUSolveKnown(t *testing.T) {
	// 2x + y = 5 ; x + 3y = 10  =>  x = 1, y = 3
	a := NewDense(2, 2)
	a.Set(0, 0, 2)
	a.Set(0, 1, 1)
	a.Set(1, 0, 1)
	a.Set(1, 1, 3)
	x, err := SolveDense(a, []float64{5, 10})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-1) > 1e-12 || math.Abs(x[1]-3) > 1e-12 {
		t.Fatalf("solution %v, want [1 3]", x)
	}
}

func TestLUSingular(t *testing.T) {
	a := NewDense(2, 2)
	a.Set(0, 0, 1)
	a.Set(0, 1, 2)
	a.Set(1, 0, 2)
	a.Set(1, 1, 4)
	if _, err := SolveDense(a, []float64{1, 2}); err != ErrSingular {
		t.Fatalf("want ErrSingular, got %v", err)
	}
}

func TestLUNonSquare(t *testing.T) {
	if _, err := FactorLU(NewDense(2, 3)); err == nil {
		t.Fatal("non-square LU should fail")
	}
}

func TestLUNeedsPivoting(t *testing.T) {
	// Zero pivot in the (0,0) position requires row exchange.
	a := NewDense(2, 2)
	a.Set(0, 0, 0)
	a.Set(0, 1, 1)
	a.Set(1, 0, 1)
	a.Set(1, 1, 0)
	x, err := SolveDense(a, []float64{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-3) > 1e-12 || math.Abs(x[1]-2) > 1e-12 {
		t.Fatalf("solution %v, want [3 2]", x)
	}
}

func TestLUDet(t *testing.T) {
	a := NewDense(2, 2)
	a.Set(0, 0, 3)
	a.Set(0, 1, 1)
	a.Set(1, 0, 4)
	a.Set(1, 1, 2)
	f, err := FactorLU(a)
	if err != nil {
		t.Fatal(err)
	}
	if d := f.Det(); math.Abs(d-2) > 1e-12 {
		t.Fatalf("Det = %v, want 2", d)
	}
}

func TestLUSolveWrongRHS(t *testing.T) {
	a := NewDense(2, 2)
	a.Set(0, 0, 1)
	a.Set(1, 1, 1)
	f, err := FactorLU(a)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Solve([]float64{1}); err == nil {
		t.Fatal("short rhs should fail")
	}
}

// Property: for random diagonally dominant systems, A·Solve(A,b) ≈ b.
func TestLURandomResidual(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 25; trial++ {
		n := 2 + rng.Intn(30)
		a := NewDense(n, n)
		for i := 0; i < n; i++ {
			rowSum := 0.0
			for j := 0; j < n; j++ {
				if i != j {
					v := rng.NormFloat64()
					a.Set(i, j, v)
					rowSum += math.Abs(v)
				}
			}
			a.Set(i, i, rowSum+1) // strict diagonal dominance → nonsingular
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x, err := SolveDense(a, b)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		r := a.MulVec(x)
		for i := range r {
			r[i] -= b[i]
		}
		if Norm2(r) > 1e-9*(1+Norm2(b)) {
			t.Fatalf("trial %d: residual %v too large", trial, Norm2(r))
		}
	}
}

func TestVectorHelpers(t *testing.T) {
	if Norm2([]float64{3, 4}) != 5 {
		t.Error("Norm2")
	}
	if NormInf([]float64{-7, 2}) != 7 {
		t.Error("NormInf")
	}
	if Dot([]float64{1, 2}, []float64{3, 4}) != 11 {
		t.Error("Dot")
	}
	y := []float64{1, 1}
	AXPY(2, []float64{1, 2}, y)
	if y[0] != 3 || y[1] != 5 {
		t.Errorf("AXPY = %v", y)
	}
}

func TestDotPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Dot length mismatch should panic")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}

func TestAXPYPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("AXPY length mismatch should panic")
		}
	}()
	AXPY(1, []float64{1}, []float64{1, 2})
}

// Property: Norm2 is absolutely homogeneous: ‖αv‖ = |α|·‖v‖.
func TestNorm2Homogeneous(t *testing.T) {
	f := func(a, b, c, alpha float64) bool {
		for _, v := range []float64{a, b, c, alpha} {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e100 {
				return true
			}
		}
		v := []float64{a, b, c}
		scaled := []float64{alpha * a, alpha * b, alpha * c}
		want := math.Abs(alpha) * Norm2(v)
		got := Norm2(scaled)
		return math.Abs(got-want) <= 1e-9*(1+want)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
